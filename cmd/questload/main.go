// Command questload drives a running questd. Two uses:
//
// Load mode (default) submits a batch of jobs at a fixed concurrency,
// polls them to completion, and records the latency distribution plus
// overload behaviour (429 sheds, submit retries, server counters) into
// a JSON report:
//
//	questload -addr 127.0.0.1:8177 -n 32 -c 8 -out BENCH_serve.json
//
// Client mode performs one step each — the building blocks of the
// serve-smoke recovery check:
//
//	questload -addr ... -submit -algo ghz -qubits 3   # prints a job id
//	questload -addr ... -wait j-00000001              # blocks until terminal
//	questload -addr ... -fetch j-00000001             # result JSON to stdout
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/algos"
	"repro/internal/circuit"
	"repro/internal/jobs"
	"repro/internal/qasm"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8177", "questd address (host:port or a file written by questd -addr-file, prefixed with @)")
		algo      = flag.String("algo", "ghz", "benchmark circuit family: ghz or qft")
		qubits    = flag.Int("qubits", 3, "benchmark circuit size")
		epsilon   = flag.Float64("eps", 0, "per-job ε override (0 = server default)")
		samples   = flag.Int("samples", 0, "per-job M override (0 = server default)")
		objective = flag.String("objective", "", "per-job selection objective (cnot, fidelity[:<backend>], hybrid:<w>[:<backend>]; empty = server default)")
		tenant    = flag.String("tenant", "", "tenant attribution for submissions")

		submit = flag.Bool("submit", false, "client mode: submit one job and print its id")
		wait   = flag.String("wait", "", "client mode: poll this job id until terminal (exit 0 only on done)")
		fetch  = flag.String("fetch", "", "client mode: print this job's result JSON")

		n       = flag.Int("n", 32, "load mode: jobs to submit")
		conc    = flag.Int("c", 8, "load mode: submission concurrency")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall driver deadline")
		out     = flag.String("out", "BENCH_serve.json", "load mode: JSON report path")
	)
	flag.Parse()

	cl := &client{base: "http://" + resolveAddr(*addr), deadline: time.Now().Add(*timeout)}
	src, err := buildQASM(*algo, *qubits)
	if err != nil {
		fatal(err)
	}
	req := serve.SubmitRequest{
		QASM:   src,
		Tenant: *tenant,
		Params: jobs.Params{Epsilon: *epsilon, MaxSamples: *samples, Objective: *objective},
	}

	switch {
	case *submit:
		j, _, err := cl.submit(req)
		if err != nil {
			fatal(err)
		}
		fmt.Println(j.ID)
	case *wait != "":
		j, err := cl.waitTerminal(*wait)
		if err != nil {
			fatal(err)
		}
		if j.State != jobs.Done {
			fatal(fmt.Errorf("job %s ended %s: %s", j.ID, j.State, j.Error))
		}
		fmt.Println(j.State)
	case *fetch != "":
		body, err := cl.fetchResult(*fetch)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(body)
	default:
		if err := runLoad(cl, req, *n, *conc, *out); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "questload:", err)
	os.Exit(1)
}

// resolveAddr reads "@file" addresses from disk (questd -addr-file).
func resolveAddr(addr string) string {
	if len(addr) > 1 && addr[0] == '@' {
		data, err := os.ReadFile(addr[1:])
		if err != nil {
			fatal(err)
		}
		return string(bytes.TrimSpace(data))
	}
	return addr
}

func buildQASM(algo string, qubits int) (string, error) {
	var c *circuit.Circuit
	switch algo {
	case "ghz":
		c = algos.GHZ(qubits)
	case "qft":
		c = algos.QFT(qubits)
	default:
		return "", fmt.Errorf("unknown -algo %q (ghz or qft)", algo)
	}
	return qasm.Write(c), nil
}

// client is a minimal questd API client with shed-aware submission.
type client struct {
	base     string
	deadline time.Time
}

// submit posts one job, retrying politely on 429 (honouring
// Retry-After) and reporting how many sheds it absorbed.
func (cl *client) submit(req serve.SubmitRequest) (jobs.Job, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return jobs.Job{}, 0, err
	}
	sheds := 0
	for {
		resp, err := http.Post(cl.base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return jobs.Job{}, sheds, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var j jobs.Job
			err := json.NewDecoder(resp.Body).Decode(&j)
			resp.Body.Close()
			return j, sheds, err
		case http.StatusTooManyRequests:
			resp.Body.Close()
			sheds++
			if time.Now().After(cl.deadline) {
				return jobs.Job{}, sheds, fmt.Errorf("driver deadline exceeded while shed (%d times)", sheds)
			}
			wait := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				wait = time.Duration(s) * time.Second
			}
			time.Sleep(wait)
		default:
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return jobs.Job{}, sheds, fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(msg))
		}
	}
}

func (cl *client) waitTerminal(id string) (jobs.Job, error) {
	for {
		resp, err := http.Get(cl.base + "/v1/jobs/" + id)
		if err != nil {
			return jobs.Job{}, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return jobs.Job{}, fmt.Errorf("status %s: %s", id, resp.Status)
		}
		var j jobs.Job
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			return jobs.Job{}, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		if time.Now().After(cl.deadline) {
			return j, fmt.Errorf("driver deadline exceeded waiting for %s (state %s)", id, j.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (cl *client) fetchResult(id string) ([]byte, error) {
	resp, err := http.Get(cl.base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result %s: %s: %s", id, resp.Status, bytes.TrimSpace(body))
	}
	return body, nil
}

func (cl *client) health() (jobs.Stats, error) {
	resp, err := http.Get(cl.base + "/healthz")
	if err != nil {
		return jobs.Stats{}, err
	}
	defer resp.Body.Close()
	var st jobs.Stats
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// report is the BENCH_serve.json schema.
type report struct {
	Jobs        int   `json:"jobs"`
	Concurrency int   `json:"concurrency"`
	Done        int   `json:"done"`
	Failed      int   `json:"failed"`
	Sheds       int   `json:"sheds_429"`
	WallMS      int64 `json:"wall_ms"`

	Latency   latencySummary `json:"latency_ms"`
	Histogram []histoBucket  `json:"histogram_ms"`
	Server    jobs.Counters  `json:"server_counters"`
}

type latencySummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type histoBucket struct {
	LE    float64 `json:"le"` // upper bound, milliseconds (+Inf encoded as -1)
	Count int     `json:"count"`
}

// runLoad submits n jobs at the given concurrency, waits them all to a
// terminal state, and writes the report.
func runLoad(cl *client, req serve.SubmitRequest, n, conc int, out string) error {
	if conc < 1 {
		conc = 1
	}
	start := time.Now()
	type outcome struct {
		latency time.Duration
		sheds   int
		failed  bool
		err     error
	}
	outcomes := make([]outcome, n)
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			j, sheds, err := cl.submit(req)
			outcomes[i].sheds = sheds
			if err != nil {
				outcomes[i].err = err
				return
			}
			fin, err := cl.waitTerminal(j.ID)
			if err != nil {
				outcomes[i].err = err
				return
			}
			outcomes[i].latency = time.Since(t0)
			outcomes[i].failed = fin.State != jobs.Done
		}(i)
	}
	wg.Wait()

	rep := report{Jobs: n, Concurrency: conc, WallMS: time.Since(start).Milliseconds()}
	var lats []float64
	for _, o := range outcomes {
		if o.err != nil {
			return o.err
		}
		rep.Sheds += o.sheds
		if o.failed {
			rep.Failed++
			continue
		}
		rep.Done++
		lats = append(lats, float64(o.latency.Microseconds())/1000)
	}
	sort.Float64s(lats)
	rep.Latency = summarize(lats)
	rep.Histogram = histogram(lats)
	if st, err := cl.health(); err == nil {
		rep.Server = st.Counters
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("questload: %d jobs (%d failed, %d sheds) in %dms: p50 %.1fms p90 %.1fms p99 %.1fms → %s\n",
		rep.Done+rep.Failed, rep.Failed, rep.Sheds, rep.WallMS,
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, out)
	return nil
}

func summarize(sorted []float64) latencySummary {
	if len(sorted) == 0 {
		return latencySummary{}
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return latencySummary{
		P50: q(0.50),
		P90: q(0.90),
		P99: q(0.99),
		Max: sorted[len(sorted)-1],
	}
}

// histogram buckets latencies into a fixed exponential grid (ms).
func histogram(lats []float64) []histoBucket {
	bounds := []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}
	buckets := make([]histoBucket, len(bounds)+1)
	for i, b := range bounds {
		buckets[i].LE = b
	}
	buckets[len(bounds)].LE = -1 // +Inf
	for _, l := range lats {
		placed := false
		for i, b := range bounds {
			if l <= b {
				buckets[i].Count++
				placed = true
				break
			}
		}
		if !placed {
			buckets[len(bounds)].Count++
		}
	}
	return buckets
}
