// Command benchjson converts `go test -bench` output into a JSON file so
// the performance trajectory of the hot kernels is machine-readable
// across PRs (see BENCH_synth.json and the Makefile bench target).
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./internal/... | benchjson -out BENCH_synth.json -section after
//	quest -corpus examples/circuits/corpus | benchjson -corpus -out BENCH_corpus.json -section overlap
//
// The file holds named sections; -section replaces one section and
// leaves the others untouched, so before/after snapshots of the same
// benchmarks can live side by side. With -corpus, stdin is `quest
// -corpus` output instead: the greppable `corpus <file> k=v ...` lines
// become per-circuit records (plus a "total" record per pass) in
// BENCH_corpus.json, so the staged-serial baseline and the overlapped
// batch driver can be compared machine-readably across PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
)

func main() {
	var section sectionFlag
	out := flag.String("out", "BENCH_synth.json", "output JSON file (merged if it exists)")
	corpus := flag.Bool("corpus", false, "parse `quest -corpus` output instead of `go test -bench` output")
	flag.Var(&section, "section", "section name to (re)write in the output file (non-empty, at most once; default \"current\")")
	flag.Parse()

	if *corpus {
		results, err := parseCorpus(bufio.NewScanner(os.Stdin))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if len(results) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: no corpus lines on stdin")
			os.Exit(1)
		}
		if err := writeCorpusSection(*out, section.Get(), results); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: wrote %d corpus records to section %q of %s\n", len(results), section.Get(), *out)
		return
	}

	benches, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	doc := document{Sections: map[string][]benchResult{}}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s is not valid: %v\n", *out, err)
			os.Exit(1)
		}
		if doc.Sections == nil {
			doc.Sections = map[string][]benchResult{}
		}
	}
	doc.GOOS, doc.GOARCH = runtime.GOOS, runtime.GOARCH
	doc.Sections[section.Get()] = benches

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to section %q of %s\n", len(benches), section.Get(), *out)
}
