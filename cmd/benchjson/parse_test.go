package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro/internal/synth
BenchmarkObjectiveGradient3Q-8   	   12000	     98543 ns/op	       0 B/op	       0 allocs/op
BenchmarkApplyLeft1Q-8           	 5000000	       214.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkSynthesizeHit           	  300000	      4012 ns/op
PASS
ok  	repro/internal/synth	4.2s
`
	got, err := parseBench(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d lines, want 3: %+v", len(got), got)
	}
	first := got[0]
	if first.Name != "BenchmarkObjectiveGradient3Q" || first.Iterations != 12000 ||
		first.NsPerOp != 98543 || first.BytesPerOp != 0 || first.AllocsPerOp != 0 {
		t.Errorf("first = %+v", first)
	}
	if got[1].NsPerOp != 214.7 {
		t.Errorf("fractional ns/op parsed as %g", got[1].NsPerOp)
	}
	// No -benchmem columns: allocs/bytes are marked absent, and the
	// un-suffixed name (no -N GOMAXPROCS) parses too.
	if got[2].Name != "BenchmarkSynthesizeHit" || got[2].AllocsPerOp != -1 || got[2].BytesPerOp != -1 {
		t.Errorf("third = %+v", got[2])
	}
}

func TestParseBenchScientificAndPartialColumns(t *testing.T) {
	// Regression: slow benchmarks print ns/op in scientific notation
	// (testing's prettyPrint switches format above ~1e6 with a fractional
	// part), and lines can carry B/op without allocs/op. Both used to fail
	// the line regex and be silently dropped from BENCH_synth.json.
	in := `goos: linux
BenchmarkSynthesizeHarvest3Q-8   	      24	 4.896910e+07 ns/op	   81920 B/op	     512 allocs/op
BenchmarkThroughput-8            	    1000	 1.25e+06 ns/op	 512.00 MB/s
BenchmarkBytesOnly-8             	 2000000	       812 ns/op	      64 B/op
BenchmarkTinyOp-8                	2000000000	         0.25 ns/op
PASS
`
	got, err := parseBench(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d lines, want 4: %+v", len(got), got)
	}
	if got[0].NsPerOp != 4.896910e+07 || got[0].BytesPerOp != 81920 || got[0].AllocsPerOp != 512 {
		t.Errorf("scientific ns/op with benchmem = %+v", got[0])
	}
	if got[1].NsPerOp != 1.25e+06 || got[1].BytesPerOp != -1 || got[1].AllocsPerOp != -1 {
		t.Errorf("scientific ns/op with MB/s = %+v", got[1])
	}
	if got[2].NsPerOp != 812 || got[2].BytesPerOp != 64 || got[2].AllocsPerOp != -1 {
		t.Errorf("B/op without allocs/op = %+v", got[2])
	}
	if got[3].NsPerOp != 0.25 || got[3].Iterations != 2000000000 {
		t.Errorf("sub-ns op = %+v", got[3])
	}
}
