package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro/internal/synth
BenchmarkObjectiveGradient3Q-8   	   12000	     98543 ns/op	       0 B/op	       0 allocs/op
BenchmarkApplyLeft1Q-8           	 5000000	       214.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkSynthesizeHit           	  300000	      4012 ns/op
PASS
ok  	repro/internal/synth	4.2s
`
	got, err := parseBench(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d lines, want 3: %+v", len(got), got)
	}
	first := got[0]
	if first.Name != "BenchmarkObjectiveGradient3Q" || first.Iterations != 12000 ||
		first.NsPerOp != 98543 || first.BytesPerOp != 0 || first.AllocsPerOp != 0 {
		t.Errorf("first = %+v", first)
	}
	if got[1].NsPerOp != 214.7 {
		t.Errorf("fractional ns/op parsed as %g", got[1].NsPerOp)
	}
	// No -benchmem columns: allocs/bytes are marked absent, and the
	// un-suffixed name (no -N GOMAXPROCS) parses too.
	if got[2].Name != "BenchmarkSynthesizeHit" || got[2].AllocsPerOp != -1 || got[2].BytesPerOp != -1 {
		t.Errorf("third = %+v", got[2])
	}
}
