package main

import (
	"bufio"
	"regexp"
	"strconv"
)

// document is the BENCH_synth.json layout.
type document struct {
	GOOS     string                   `json:"goos"`
	GOARCH   string                   `json:"goarch"`
	Sections map[string][]benchResult `json:"sections"`
}

// benchResult is one benchmark line. AllocsPerOp/BytesPerOp are -1 when
// the run did not use -benchmem.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkObjectiveGradient3Q-8  12345  98.7 ns/op  16 B/op  1 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so results compare across hosts.
// ns/op (and MB/s) accept scientific notation — the testing package emits
// e.g. 4.896910e+07 for slow benchmarks — and the -benchmem columns are
// each independently optional, so a line carrying B/op without allocs/op
// (or neither) still parses instead of being silently dropped.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+(` + floatPat + `) ns/op(?:\s+` + floatPat + ` MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// floatPat matches the decimal and scientific forms go test prints.
const floatPat = `[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?`

// parseBench extracts benchmark results from `go test -bench` output,
// ignoring non-benchmark lines (package headers, PASS/ok, logs).
func parseBench(sc *bufio.Scanner) ([]benchResult, error) {
	var out []benchResult
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := benchResult{Name: m[1], Iterations: iters, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out = append(out, r)
	}
	return out, sc.Err()
}
