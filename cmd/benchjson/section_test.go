package main

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func TestSectionFlagDefault(t *testing.T) {
	var s sectionFlag
	if got := s.Get(); got != "current" {
		t.Errorf("unset Get() = %q, want %q", got, "current")
	}
	if got := s.String(); got != "current" {
		t.Errorf("unset String() = %q, want %q", got, "current")
	}
}

func TestSectionFlagSetOnce(t *testing.T) {
	var s sectionFlag
	if err := s.Set("after"); err != nil {
		t.Fatalf("Set(after) = %v", err)
	}
	if got := s.Get(); got != "after" {
		t.Errorf("Get() = %q, want %q", got, "after")
	}
}

func TestSectionFlagRejectsEmpty(t *testing.T) {
	for _, v := range []string{"", "   ", "\t"} {
		var s sectionFlag
		if err := s.Set(v); err == nil {
			t.Errorf("Set(%q) accepted an empty section name", v)
		}
	}
}

func TestSectionFlagRejectsDuplicate(t *testing.T) {
	var s sectionFlag
	if err := s.Set("before"); err != nil {
		t.Fatal(err)
	}
	err := s.Set("after")
	if err == nil {
		t.Fatal("second Set succeeded; duplicate -section must be rejected")
	}
	if !strings.Contains(err.Error(), "duplicate") || !strings.Contains(err.Error(), "before") {
		t.Errorf("duplicate error %q should name the flag and the first value", err)
	}
	if got := s.Get(); got != "before" {
		t.Errorf("Get() after rejected duplicate = %q, want the first value", got)
	}
}

// TestSectionFlagThroughFlagSet exercises the flag through an actual
// FlagSet, as main wires it: repeated or empty -section must fail the
// parse, a single one must land in Get().
func TestSectionFlagThroughFlagSet(t *testing.T) {
	parse := func(args ...string) (*sectionFlag, error) {
		var s sectionFlag
		fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		fs.Var(&s, "section", "")
		return &s, fs.Parse(args)
	}

	if s, err := parse("-section", "after"); err != nil || s.Get() != "after" {
		t.Errorf("parse(-section after) = %q, %v", s.Get(), err)
	}
	if s, err := parse(); err != nil || s.Get() != "current" {
		t.Errorf("parse() = %q, %v; want default", s.Get(), err)
	}
	if _, err := parse("-section", "a", "-section", "b"); err == nil {
		t.Error("repeated -section parsed cleanly; want an error")
	}
	if _, err := parse("-section", ""); err == nil {
		t.Error("empty -section parsed cleanly; want an error")
	}
}
