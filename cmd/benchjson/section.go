package main

import (
	"errors"
	"fmt"
	"strings"
)

// sectionFlag is the -section flag: a section name that must be
// non-empty and may be set at most once. A plain flag.String silently
// keeps the LAST of repeated -section flags — an easy way to clobber the
// wrong snapshot in a copy-pasted command line — so repetition is a hard
// error instead.
type sectionFlag struct {
	name string
	set  bool
}

// Get returns the effective section name (the default when the flag was
// never passed).
func (s *sectionFlag) Get() string {
	if !s.set {
		return "current"
	}
	return s.name
}

func (s *sectionFlag) String() string {
	if s == nil {
		return "current"
	}
	return s.Get()
}

func (s *sectionFlag) Set(v string) error {
	if s.set {
		return fmt.Errorf("duplicate -section flag (already %q)", s.name)
	}
	if strings.TrimSpace(v) == "" {
		return errors.New("section name must not be empty")
	}
	s.name = v
	s.set = true
	return nil
}
