package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const corpusOutput = `
input adder_8: 8 qubits, 23 ops, 49 CNOTs, depth 19

corpus pass 1 (overlap, workers=1, jobs=4)
circuit           qubits  blocks    cnots   approx  reduction    deg      M         wall
qft_8                  8      17       68       55      19.1%      0      4        231ms
corpus qft_8 pass=1 qubits=8 ops=40 blocks=17 cnots=68 approx_cnots=55 reduction_pct=19.12 samples=4 degradations=0 wall_ns=230516375
corpus tfim_16 pass=1 qubits=16 ops=124 blocks=32 cnots=120 approx_cnots=120 reduction_pct=0.00 samples=1 degradations=0 wall_ns=130459055
corpus-total mode=overlap pass=1 workers=1 jobs=4 circuits=12 degradations=0 cache_hits=190 cache_misses=127 wall_ns=20918444071
PASS
`

func TestParseCorpus(t *testing.T) {
	results, err := parseCorpus(bufio.NewScanner(strings.NewReader(corpusOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d records, want 3: %+v", len(results), results)
	}
	if results[0].Name != "qft_8" || results[1].Name != "tfim_16" || results[2].Name != "total" {
		t.Fatalf("names = %s/%s/%s", results[0].Name, results[1].Name, results[2].Name)
	}
	if got := results[0].Values["cnots"]; got != float64(68) {
		t.Errorf("qft_8 cnots = %v (%T)", got, got)
	}
	if got := results[0].Values["reduction_pct"]; got != 19.12 {
		t.Errorf("qft_8 reduction_pct = %v", got)
	}
	if got := results[2].Values["mode"]; got != "overlap" {
		t.Errorf("total mode = %v (%T), want string", got, got)
	}
	if got := results[2].Values["wall_ns"]; got != float64(20918444071) {
		t.Errorf("total wall_ns = %v", got)
	}
}

func TestWriteCorpusSectionMerges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_corpus.json")
	first := []corpusResult{{Name: "qft_8", Values: map[string]any{"wall_ns": 1.0}}}
	if err := writeCorpusSection(path, "staged-serial", first); err != nil {
		t.Fatal(err)
	}
	second := []corpusResult{{Name: "qft_8", Values: map[string]any{"wall_ns": 2.0}}}
	if err := writeCorpusSection(path, "overlap", second); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc corpusDocument
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Sections) != 2 {
		t.Fatalf("sections = %v, want both staged-serial and overlap", doc.Sections)
	}
	if doc.Sections["staged-serial"][0].Values["wall_ns"] != 1.0 ||
		doc.Sections["overlap"][0].Values["wall_ns"] != 2.0 {
		t.Fatalf("section contents wrong: %+v", doc.Sections)
	}
}

func TestParseCorpusRejectsGarbage(t *testing.T) {
	results, err := parseCorpus(bufio.NewScanner(strings.NewReader("corpus broken no-equals-here\ncorpus\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("garbage parsed as %+v", results)
	}
}
