package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// corpusDocument is the BENCH_corpus.json layout: named sections (one per
// corpus driver mode, e.g. "staged-serial" and "overlap") of per-circuit
// compilation records plus the corpus-total batch line.
type corpusDocument struct {
	GOOS     string                    `json:"goos"`
	GOARCH   string                    `json:"goarch"`
	Sections map[string][]corpusResult `json:"sections"`
}

// corpusResult is one `corpus <name> k=v ...` (or `corpus-total k=v ...`)
// line from the corpus driver. Values parse as numbers where possible
// (wall_ns, cnots, ...) and stay strings otherwise (mode).
type corpusResult struct {
	Name   string         `json:"name"`
	Values map[string]any `json:"values"`
}

// parseCorpus extracts corpus records from `quest -corpus` output,
// ignoring every other line (tables, logs). The total line is recorded
// under the name "total".
func parseCorpus(sc *bufio.Scanner) ([]corpusResult, error) {
	var out []corpusResult
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		var name string
		switch fields[0] {
		case "corpus":
			name = fields[1]
			fields = fields[2:]
		case "corpus-total":
			name = "total"
			fields = fields[1:]
		default:
			continue
		}
		values := make(map[string]any, len(fields))
		ok := true
		for _, f := range fields {
			k, v, found := strings.Cut(f, "=")
			if !found || k == "" {
				ok = false
				break
			}
			if n, err := strconv.ParseFloat(v, 64); err == nil {
				values[k] = n
			} else {
				values[k] = v
			}
		}
		if !ok || len(values) == 0 {
			continue
		}
		out = append(out, corpusResult{Name: name, Values: values})
	}
	return out, sc.Err()
}

// writeCorpusSection merges one section of corpus results into the JSON
// file at path, mirroring the bench-section merge semantics: other
// sections survive, the named one is replaced.
func writeCorpusSection(path, section string, results []corpusResult) error {
	doc := corpusDocument{Sections: map[string][]corpusResult{}}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("existing %s is not valid: %w", path, err)
		}
		if doc.Sections == nil {
			doc.Sections = map[string][]corpusResult{}
		}
	}
	doc.GOOS, doc.GOARCH = runtime.GOOS, runtime.GOARCH
	doc.Sections[section] = results
	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}
