// Command experiments regenerates the figures of the QUEST evaluation
// (Sec. 4) as text tables. See EXPERIMENTS.md for the recorded outputs and
// the paper-vs-measured comparison.
//
// Usage:
//
//	experiments -fig 8            # one figure, full scale
//	experiments -fig 8 -quick     # one figure, reduced scale
//	experiments -all -quick       # every figure
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/ucache"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure number to regenerate")
		all       = flag.Bool("all", false, "regenerate every figure")
		ablation  = flag.String("ablation", "", "run an ablation study instead (or 'all')")
		quick     = flag.Bool("quick", false, "reduced workload sizes and search budgets")
		objective = flag.String("objective", "", "selection objective: cnot, fidelity[:<backend>] or hybrid:<w>[:<backend>] (empty = cnot)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("parallelism", 0, "worker goroutines for the pipeline and the noisy simulator (0 = all CPUs; results are identical for any value)")

		timeout      = flag.Duration("timeout", 0, "per-run pipeline deadline; timed-out blocks degrade to exact sub-circuits (0 = none)")
		blockTimeout = flag.Duration("block-timeout", 0, "per-attempt block synthesis deadline (0 = none)")
		maxRestarts  = flag.Int("max-restarts", 0, "synthesis retries per block (0 = pipeline default, -1 = none)")

		cacheSize = flag.Int("synth-cache", 1024, "synthesis cache entries shared across a figure's runs (0 = disabled)")
		cacheTol  = flag.Float64("synth-cache-tol", 0, "cache match tolerance; 0 = strict (bit-reproducible), >0 reuses near-identical blocks with inflated distance bounds")
		cacheDir  = flag.String("synth-cache-dir", "", "persist the synthesis cache in this directory so repeated figure runs reuse prior synthesis (empty = in-memory only)")
	)
	flag.Parse()

	var cache *ucache.Cache
	if *cacheSize > 0 {
		if *cacheDir != "" {
			var err error
			cache, err = ucache.OpenDisk(*cacheDir, *cacheSize, *cacheTol)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v; continuing with an in-memory cache\n", err)
				cache = ucache.New(*cacheSize, *cacheTol)
			}
		} else {
			cache = ucache.New(*cacheSize, *cacheTol)
		}
		defer func() {
			if err := cache.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}
	cfg := experiments.Config{
		Quick:        *quick,
		Objective:    *objective,
		Seed:         *seed,
		Parallelism:  *workers,
		Timeout:      *timeout,
		BlockTimeout: *blockTimeout,
		MaxRestarts:  *maxRestarts,
		SynthCache:   cache,
		Out:          os.Stdout,
	}
	cacheReport := func(scope string, before ucache.Stats) {
		if cache == nil {
			return
		}
		d := cache.Stats().Sub(before)
		fmt.Printf("[%s synthesis cache: %d hits, %d misses, %d evictions]\n",
			scope, d.Hits, d.Misses, d.Evictions)
	}
	if *ablation != "" {
		names := experiments.Ablations()
		if *ablation != "all" {
			names = []string{*ablation}
		}
		for _, name := range names {
			start := time.Now()
			var before ucache.Stats
			if cache != nil {
				before = cache.Stats()
			}
			if err := experiments.RunAblation(name, cfg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: ablation %s: %v\n", name, err)
				os.Exit(1)
			}
			cacheReport("ablation "+name, before)
			fmt.Printf("[ablation %s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
		return
	}
	figs := experiments.Figures()
	if !*all {
		if *fig == 0 {
			fmt.Fprintf(os.Stderr, "experiments: need -fig N, -ablation NAME, or -all (figures: %v; ablations: %v)\n",
				figs, experiments.Ablations())
			os.Exit(1)
		}
		figs = []int{*fig}
	}
	for _, f := range figs {
		start := time.Now()
		var before ucache.Stats
		if cache != nil {
			before = cache.Stats()
		}
		if err := experiments.Run(f, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %d: %v\n", f, err)
			os.Exit(1)
		}
		cacheReport(fmt.Sprintf("figure %d", f), before)
		fmt.Printf("[figure %d done in %v]\n", f, time.Since(start).Round(time.Millisecond))
	}
}
