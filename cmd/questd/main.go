// Command questd is the crash-safe QUEST compilation service: submit a
// circuit over HTTP, poll its status, fetch the approximated result.
// Jobs survive the process — every transition is journaled, so a
// kill -9 mid-synthesis recovers on restart: queued jobs re-enqueue,
// running jobs restart with a retry budget and exponential backoff, and
// completed results re-serve bit-identically from the content-addressed
// artifact store.
//
// Usage:
//
//	questd -dir /var/lib/questd [-addr 127.0.0.1:8177] [pipeline flags]
//
// SIGINT/SIGTERM starts a graceful drain: readiness flips to 503, new
// submissions bounce, in-flight jobs get -drain-timeout to finish, and
// whatever is still running is journaled for the next start. See
// internal/serve for the API and internal/jobs for the job lifecycle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/ucache"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8177", "listen address")
		addrFile = flag.String("addr-file", "", "write the bound address to this file once listening (lets scripts discover a :0 port)")
		dir      = flag.String("dir", "questd-data", "data directory (job journal + artifact store)")

		workers      = flag.Int("workers", 0, "synthesis worker pool size (0 = default)")
		queueCap     = flag.Int("queue-cap", 256, "maximum queued jobs before submissions shed with 429")
		tenantCap    = flag.Int("tenant-cap", 0, "per-tenant queue bound (0 = the full queue)")
		maxRetries   = flag.Int("max-retries", 3, "extra attempts after a crash or transient failure (-1 = none)")
		jobTimeout   = flag.Duration("job-timeout", 10*time.Minute, "default per-job deadline")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight jobs")

		blockSize = flag.Int("blocksize", 3, "default maximum partition block size")
		epsilon   = flag.Float64("eps", 0.05, "default per-block process-distance budget")
		samples   = flag.Int("samples", 16, "default maximum number of dissimilar approximations (M)")
		objective = flag.String("objective", "cnot", "default selection objective: cnot, fidelity[:<backend>] or hybrid:<w>[:<backend>] (submissions may override per job)")
		seed      = flag.Int64("seed", 1, "default random seed")
		cacheSize = flag.Int("synth-cache", 1024, "per-block synthesis cache entries, shared across jobs (0 = disabled)")

		chaosStall = flag.Duration("chaos-stall", 0, "chaos testing: hold every worker run at the jobs.worker.run fault site for this long, so an external kill is guaranteed to land mid-job (see make serve-smoke)")
	)
	flag.Parse()

	if *chaosStall > 0 {
		defer faultinject.Set("jobs.worker.run", faultinject.Stall(*chaosStall))()
		log.Printf("questd: chaos: stalling every worker run %v", *chaosStall)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	obj, err := backend.Objective(*objective)
	if err != nil {
		log.Fatalf("questd: %v", err)
	}
	cfg := pipeline.Config{
		BlockSize:  *blockSize,
		Epsilon:    *epsilon,
		MaxSamples: *samples,
		Objective:  obj,
		Seed:       *seed,
	}
	if *cacheSize > 0 {
		cfg.SynthCache = ucache.New(*cacheSize, 0)
	}
	m, err := jobs.Open(jobs.Options{
		Dir:            *dir,
		Workers:        *workers,
		QueueCap:       *queueCap,
		TenantCap:      *tenantCap,
		MaxRetries:     *maxRetries,
		DefaultTimeout: *jobTimeout,
		Pipeline:       cfg,
	})
	if err != nil {
		log.Fatalf("questd: %v", err)
	}
	st := m.Stats()
	log.Printf("questd: data dir %s: %d jobs recovered, queue depth %d",
		*dir, st.Counters.Recovered, st.QueueDepth)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("questd: %v", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("questd: write addr file: %v", err)
		}
	}
	srv := &http.Server{Handler: serve.New(m).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("questd: listening on %s", ln.Addr())

	select {
	case <-ctx.Done():
	case err := <-errc:
		log.Fatalf("questd: %v", err)
	}
	stop() // a second signal falls through to the default handler

	log.Printf("questd: draining (up to %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("questd: http shutdown: %v", err)
	}
	if err := m.Close(dctx); err != nil {
		log.Printf("questd: close: %v", err)
		os.Exit(1)
	}
	fin := m.Stats()
	fmt.Printf("questd: drained: %d done, %d failed, %d cancelled, %d retried, %d shed, queue depth %d journaled for next start\n",
		fin.Counters.Done, fin.Counters.Failed, fin.Counters.Cancelled,
		fin.Counters.Retried, fin.Counters.Shed, fin.QueueDepth)
}
