// Command quest runs the QUEST approximation pipeline on a circuit and
// writes the selected approximations as OpenQASM 2.0 files.
//
// Usage:
//
//	quest -in circuit.qasm [-out dir] [flags]
//	quest -algo tfim -n 4 [-out dir] [flags]
//	quest -corpus examples/circuits/corpus [-corpus-mode overlap] [flags]
//
// With -out unset, a summary table is printed and no files are written.
//
// -corpus compiles every .qasm file in a directory as one batch: each
// circuit runs the streaming (overlapped) pipeline and all of them share
// one cross-circuit synthesis scheduler and one synthesis cache, so the
// machine stays exactly -parallelism blocks busy regardless of how the
// work is spread across circuits. -corpus-mode staged-serial keeps the
// historical one-circuit-at-a-time staged driver as a benchmark baseline
// (identical results, more wall time).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	quest "repro"
	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/qasm"
	"repro/internal/sim"
	"repro/internal/ucache"
)

func main() {
	var (
		inFile    = flag.String("in", "", "input OpenQASM 2.0 file")
		algo      = flag.String("algo", "", "generate a Table-1 benchmark instead of reading a file")
		qubits    = flag.Int("n", 4, "benchmark size (with -algo)")
		outDir    = flag.String("out", "", "directory for the approximate .qasm files")
		artDir    = flag.String("artifact", "", "directory for the full artifact layout (blocks, candidates, solutions)")
		blockSize = flag.Int("blocksize", 3, "maximum partition block size")
		epsilon   = flag.Float64("eps", 0.05, "per-block process-distance budget")
		samples   = flag.Int("samples", 16, "maximum number of dissimilar approximations (M)")
		cxWeight  = flag.Float64("cx-weight", 0.5, "selection objective weight: α·CNOTs + (1-α)·dissimilarity (0 = pure dissimilarity)")
		objective = flag.String("objective", "cnot", "selection objective: cnot, fidelity[:<backend>] or hybrid:<w>[:<backend>]")
		seed      = flag.Int64("seed", 1, "random seed")
		bspec     = flag.String("backend", "ideal", "execution backend for the ensemble report: one of "+strings.Join(quest.Backends(), ", ")+" (name[:arg], e.g. noisy:0.005; empty disables the report)")
		shots     = flag.Int("shots", 0, "measurement shots for the ensemble report (0 = exact probabilities)")

		timeout      = flag.Duration("timeout", 0, "whole-pipeline deadline (0 = none)")
		blockTimeout = flag.Duration("block-timeout", 0, "per-attempt block synthesis deadline (0 = none)")
		maxRestarts  = flag.Int("max-restarts", 2, "synthesis retries per block before degrading (-1 = none)")
		degraded     = flag.Bool("allow-degraded", false, "on budget exhaustion, substitute exact blocks instead of failing")

		cacheSize = flag.Int("synth-cache", 1024, "synthesis cache entries; repeated block unitaries (Trotter steps, mirrored subcircuits) synthesize once (0 = disabled)")
		cacheTol  = flag.Float64("synth-cache-tol", 0, "cache match tolerance; 0 = strict (bit-reproducible), >0 reuses near-identical blocks with inflated distance bounds")
		cacheDir  = flag.String("synth-cache-dir", "", "persist the synthesis cache in this directory so warm hits survive across runs (empty = in-memory only)")

		corpusDir   = flag.String("corpus", "", "compile every .qasm file in this directory as one scheduled batch")
		corpusMode  = flag.String("corpus-mode", experiments.ModeOverlapped, "corpus driver: overlap (streaming pipeline, shared scheduler) or staged-serial (baseline)")
		jobs        = flag.Int("jobs", 0, "concurrent circuit compilations in corpus overlap mode (0 = min(4, circuits))")
		parallelism = flag.Int("parallelism", 0, "machine-wide synthesis worker slots (0 = NumCPU)")
		passes      = flag.Int("passes", 1, "corpus compilation passes against the shared cache (2 measures warm-cache serving)")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancels the pipeline instead of killing the process
	// mid-write; a second signal falls through to the default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *corpusDir != "" {
		_, err := experiments.RunCorpus(ctx, experiments.CorpusOptions{
			Dir:        *corpusDir,
			Mode:       *corpusMode,
			Jobs:       *jobs,
			Workers:    *parallelism,
			Passes:     *passes,
			BlockSize:  *blockSize,
			Epsilon:    *epsilon,
			MaxSamples: *samples,
			Seed:       *seed,
			CacheSize:  *cacheSize,
			Timeout:    *timeout,
			Out:        os.Stdout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "quest:", err)
			os.Exit(1)
		}
		return
	}

	c, name, err := loadCircuit(*inFile, *algo, *qubits)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quest:", err)
		os.Exit(1)
	}

	obj, err := quest.SelectionObjective(*objective)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quest:", err)
		os.Exit(1)
	}

	fmt.Printf("input %s: %d qubits, %d ops, %d CNOTs, depth %d\n",
		name, c.NumQubits, c.Size(), c.CNOTCount(), c.Depth())

	var cache *ucache.Cache
	if *cacheSize > 0 {
		if *cacheDir != "" {
			cache, err = ucache.OpenDisk(*cacheDir, *cacheSize, *cacheTol)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quest: %v; continuing with an in-memory cache\n", err)
				cache = ucache.New(*cacheSize, *cacheTol)
			}
		} else {
			cache = ucache.New(*cacheSize, *cacheTol)
		}
		defer func() {
			if err := cache.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "quest:", err)
			}
		}()
	}

	start := time.Now()
	res, err := quest.ApproximateCtx(ctx, c, quest.Config{
		BlockSize:     *blockSize,
		Epsilon:       *epsilon,
		MaxSamples:    *samples,
		CXWeight:      *cxWeight,
		CXWeightSet:   true,
		Objective:     obj,
		Seed:          *seed,
		Timeout:       *timeout,
		BlockTimeout:  *blockTimeout,
		MaxRestarts:   *maxRestarts,
		AllowDegraded: *degraded,
		SynthCache:    cache,
	})
	if err != nil {
		switch {
		case errors.Is(err, quest.ErrDeadline):
			fmt.Fprintf(os.Stderr, "quest: budget exhausted after %v (rerun with a larger -timeout, or -allow-degraded for a partial result): %v\n",
				time.Since(start).Round(time.Millisecond), err)
		case errors.Is(err, quest.ErrCancelled):
			fmt.Fprintln(os.Stderr, "quest: interrupted:", err)
		default:
			fmt.Fprintln(os.Stderr, "quest:", err)
		}
		os.Exit(1)
	}

	fmt.Printf("partitioned into %d blocks (threshold Σε ≤ %.3f)\n", len(res.Blocks), res.Threshold)
	for _, d := range res.Degradations {
		fmt.Printf("degraded block %d (qubits %v) to its exact sub-circuit after %d attempts: %s\n",
			d.Block, d.Qubits, d.Attempts, d.Reason)
	}
	fmt.Printf("selected %d dissimilar approximations:\n", len(res.Selected))
	fmt.Printf("%8s %8s %12s\n", "sample", "CNOTs", "bound Σε")
	for i, a := range res.Selected {
		fmt.Printf("%8d %8d %12.4f\n", i, a.CNOTs, a.EpsilonSum)
	}
	fmt.Printf("timing: partition %v, synthesis %v, annealing %v\n",
		res.Timing.Partition, res.Timing.Synthesis, res.Timing.Annealing)
	if cache != nil {
		fmt.Printf("synthesis cache: %d hits, %d misses, %d evictions\n",
			res.CacheStats.Hits, res.CacheStats.Misses, res.CacheStats.Evictions)
	}

	if *bspec != "" && c.NumQubits <= 12 {
		be, err := quest.GetBackend(*bspec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "quest:", err)
			os.Exit(1)
		}
		if max := be.Capabilities().MaxQubits; max > 0 && c.NumQubits > max {
			fmt.Fprintf(os.Stderr, "quest: backend %s supports at most %d qubits, circuit has %d\n",
				be.Name(), max, c.NumQubits)
			os.Exit(1)
		}
		truth := sim.Probabilities(c)
		ens, err := res.EnsembleProbabilitiesCtx(ctx, quest.BackendRunnerCtx(be, *shots, *seed), 0)
		if err == nil {
			fmt.Printf("%s ensemble TVD = %.4f, JSD = %.4f\n",
				be.Name(), metrics.TVD(truth, ens), metrics.JSD(truth, ens))
		}
	}

	if *artDir != "" {
		if err := artifact.Write(*artDir, res); err != nil {
			fmt.Fprintln(os.Stderr, "quest:", err)
			os.Exit(1)
		}
		if err := artifact.Verify(*artDir); err != nil {
			fmt.Fprintln(os.Stderr, "quest: artifact self-check:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote and verified artifact layout under %s\n", *artDir)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "quest:", err)
			os.Exit(1)
		}
		for i, a := range res.Selected {
			path := filepath.Join(*outDir, fmt.Sprintf("%s_approx_%02d.qasm", name, i))
			if err := os.WriteFile(path, []byte(qasm.Write(a.Circuit)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "quest:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %d files to %s\n", len(res.Selected), *outDir)
	}
}

func loadCircuit(inFile, algo string, qubits int) (*quest.Circuit, string, error) {
	switch {
	case inFile != "":
		src, err := os.ReadFile(inFile)
		if err != nil {
			return nil, "", err
		}
		c, err := quest.ParseQASM(string(src))
		if err != nil {
			return nil, "", err
		}
		base := filepath.Base(inFile)
		return c, base[:len(base)-len(filepath.Ext(base))], nil
	case algo != "":
		c, err := quest.GenerateBenchmark(algo, qubits)
		if err != nil {
			return nil, "", err
		}
		return c, fmt.Sprintf("%s_%d", algo, c.NumQubits), nil
	}
	return nil, "", fmt.Errorf("need -in or -algo (benchmarks: %v)", quest.Benchmarks())
}
