// Command questsim is the repro of the artifact's
// generate_simulation_results step: it executes circuits (QASM files or
// generated benchmarks) on the ideal simulator, the noisy Pauli simulator
// at a chosen p_gate, or the Manila-class device model, and reports the
// output distribution and its TVD/JSD against the ideal output.
//
// Usage:
//
//	questsim -in circuit.qasm -noise 0.01 -shots 8192
//	questsim -algo tfim -n 4 -device manila
//	questsim -in a.qasm -in-ref b.qasm          # compare two circuits
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	quest "repro"
	"repro/internal/qasm"
)

func main() {
	var (
		inFile   = flag.String("in", "", "input OpenQASM 2.0 file")
		refFile  = flag.String("in-ref", "", "optional reference QASM file (defaults to the input's ideal run)")
		algo     = flag.String("algo", "", "generate a Table-1 benchmark instead of reading a file")
		qubits   = flag.Int("n", 4, "benchmark size (with -algo)")
		noiseLvl = flag.Float64("noise", 0, "uniform Pauli noise level p_gate (0 = ideal)")
		device   = flag.String("device", "", "run on a device model instead (\"manila\")")
		shots    = flag.Int("shots", 0, "measurement shots (0 = exact probabilities)")
		trajs    = flag.Int("trajectories", 0, "Monte-Carlo trajectory budget (0 = default 100)")
		workers  = flag.Int("parallelism", 0, "trajectory worker goroutines (0 = all CPUs; output is identical for any value)")
		seed     = flag.Int64("seed", 1, "random seed")
		top      = flag.Int("top", 8, "how many basis states to print")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM cancels the trajectory sweep instead of killing
	// the process mid-run; a second signal falls through to the default
	// handler (same discipline as cmd/quest).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	c, err := loadCircuit(*inFile, *algo, *qubits)
	if err != nil {
		fmt.Fprintln(os.Stderr, "questsim:", err)
		os.Exit(1)
	}

	ref := quest.Simulate(c)
	if *refFile != "" {
		src, err := os.ReadFile(*refFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "questsim:", err)
			os.Exit(1)
		}
		rc, err := quest.ParseQASM(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "questsim:", err)
			os.Exit(1)
		}
		ref = quest.Simulate(rc)
	}

	simOpts := quest.SimOptions{
		Shots: *shots, Trajectories: *trajs, Seed: *seed, Parallelism: *workers,
	}
	var out []float64
	switch {
	case *device == "manila":
		out, err = quest.RunOnDeviceCtx(ctx, quest.Manila(), c, simOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "questsim:", err)
			os.Exit(1)
		}
	case *device != "":
		fmt.Fprintf(os.Stderr, "questsim: unknown device %q\n", *device)
		os.Exit(1)
	case *noiseLvl > 0:
		out, err = quest.SimulateNoisyCtx(ctx, c, quest.UniformNoise(*noiseLvl), simOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "questsim:", err)
			os.Exit(1)
		}
	default:
		out = ref
	}

	fmt.Printf("circuit: %d qubits, %d ops, %d CNOTs, depth %d\n",
		c.NumQubits, c.Size(), c.CNOTCount(), c.Depth())
	fmt.Printf("TVD vs reference = %.4f, JSD = %.4f\n", quest.TVD(ref, out), quest.JSD(ref, out))

	type entry struct {
		state int
		p     float64
	}
	entries := make([]entry, 0, len(out))
	for k, p := range out {
		if p > 1e-9 {
			entries = append(entries, entry{k, p})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].p > entries[j].p })
	if len(entries) > *top {
		entries = entries[:*top]
	}
	fmt.Printf("top %d states:\n", len(entries))
	for _, e := range entries {
		fmt.Printf("  |%0*b>  %.4f\n", c.NumQubits, e.state, e.p)
	}
}

func loadCircuit(inFile, algo string, qubits int) (*quest.Circuit, error) {
	switch {
	case inFile != "":
		src, err := os.ReadFile(inFile)
		if err != nil {
			return nil, err
		}
		return qasm.Parse(string(src))
	case algo != "":
		return quest.GenerateBenchmark(algo, qubits)
	}
	return nil, fmt.Errorf("need -in or -algo (benchmarks: %v)", quest.Benchmarks())
}
