package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// runLint invokes the driver exactly as main does, capturing both
// streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func badmodRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("testdata/badmod")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRepoIsLintClean is the enforcement test: the repo's own tree must
// carry zero unsuppressed findings. When this fails, either fix the
// finding or suppress it with a written justification — see DESIGN.md.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full module")
	}
	code, stdout, stderr := runLint(t, "-root", repoRoot(t), "./...")
	if code != 0 {
		t.Fatalf("questlint on this repo: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no output on a clean tree, got:\n%s", stdout)
	}
}

// TestRepoIgnoresNameExistingChecks audits the tree's suppression
// directives: -list-ignores must succeed and every listed row must name
// a registered check.
func TestRepoIgnoresNameExistingChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full module")
	}
	code, stdout, stderr := runLint(t, "-list-ignores", "-root", repoRoot(t))
	if code != 0 {
		t.Fatalf("-list-ignores: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) == 0 || !strings.HasSuffix(lines[len(lines)-1], "suppression(s)") {
		t.Fatalf("missing trailing count line:\n%s", stdout)
	}
	for _, line := range lines[:len(lines)-1] {
		// Rows print as file:line: check: reason.
		parts := strings.SplitN(line, ": ", 3)
		if len(parts) != 3 {
			t.Fatalf("unparseable -list-ignores row %q", line)
		}
		if check := parts[1]; !analysis.KnownCheck(check) {
			t.Errorf("suppression %q names unknown check %q", line, check)
		}
		if strings.TrimSpace(parts[2]) == "" {
			t.Errorf("suppression %q has an empty reason", line)
		}
	}
}

func TestSeededViolationsFailTheRun(t *testing.T) {
	code, stdout, stderr := runLint(t, "-root", badmodRoot(t))
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, want := range []string{
		"determinism: time.Now reads the wall clock",
		"floateq:",
		`lint: lint:ignore names unknown check "floatqe"`,
		"goroleak: goroutine is neither joined nor cancellation-bounded",
		"lockflow: return may leave mu held",
		"fsyncorder: f written but not synced on this path before returning success",
		"poolnonest: pool slot callback re-enters the pool",
		"lint: stale lint:ignore: goroleak reports nothing here anymore",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
	// Quiet's time.Now is validly suppressed: exactly one determinism
	// finding (Stamp) remains.
	if n := strings.Count(stdout, "determinism:"); n != 1 {
		t.Errorf("determinism findings = %d, want 1 (valid suppression must hold):\n%s", n, stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr missing summary count: %q", stderr)
	}
}

func TestListIgnoresRejectsUnknownCheck(t *testing.T) {
	code, stdout, stderr := runLint(t, "-list-ignores", "-root", badmodRoot(t))
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (typoed directive must fail the audit)\nstderr:\n%s", code, stderr)
	}
	// Both directives are still listed before the failure.
	if !strings.Contains(stdout, "determinism: fixture: exercises a valid suppression") {
		t.Errorf("valid directive missing from listing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "floatqe: typoed check name") {
		t.Errorf("typoed directive missing from listing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "goroleak: fixture: stale directive") {
		t.Errorf("stale directive missing from listing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "3 suppression(s)") {
		t.Errorf("count line wrong:\n%s", stdout)
	}
	if !strings.Contains(stderr, `unknown check "floatqe"`) {
		t.Errorf("stderr missing unknown-check diagnostic: %q", stderr)
	}
}

func TestChecksFlagSubsets(t *testing.T) {
	code, stdout, _ := runLint(t, "-root", badmodRoot(t), "-checks", "floateq")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stdout, "determinism:") {
		t.Errorf("-checks floateq still ran determinism:\n%s", stdout)
	}
	if !strings.Contains(stdout, "floateq:") {
		t.Errorf("-checks floateq reported nothing:\n%s", stdout)
	}
	// The stale goroleak directive must NOT be reported when goroleak did
	// not run: a subset invocation cannot judge other checks' directives.
	if strings.Contains(stdout, "stale lint:ignore") {
		t.Errorf("-checks floateq flagged a goroleak directive as stale:\n%s", stdout)
	}
}

// TestJSONOutput checks the machine-readable mode: a parseable array
// whose entries carry root-relative paths and the seeded checks.
func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runLint(t, "-root", badmodRoot(t), "-json")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout)
	}
	byCheck := map[string]int{}
	for _, d := range diags {
		byCheck[d.Check]++
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("diagnostic path %q is absolute; want root-relative", d.File)
		}
	}
	for _, check := range []string{"determinism", "floateq", "goroleak", "lockflow", "fsyncorder", "poolnonest", "lint"} {
		if byCheck[check] == 0 {
			t.Errorf("-json output missing check %q: %v", check, byCheck)
		}
	}
}

// TestJSONOutputCleanTreeIsEmptyArray pins the zero-finding shape so
// consumers can always json.Unmarshal the output.
func TestJSONOutputCleanTreeIsEmptyArray(t *testing.T) {
	// A pattern matching nothing selects no packages, hence no findings.
	code, stdout, _ := runLint(t, "-root", badmodRoot(t), "-json", "./nosuch/...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout)
	}
}

// TestGitHubAnnotations checks the CI annotation mode: one ::error
// command per finding, carrying file/line/check.
func TestGitHubAnnotations(t *testing.T) {
	code, stdout, _ := runLint(t, "-root", badmodRoot(t), "-github")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	for _, line := range lines {
		if !strings.HasPrefix(line, "::error file=") {
			t.Errorf("non-annotation line in -github output: %q", line)
		}
	}
	want := "::error file=internal/sim/conc.go,line=16,col=2,title=questlint goroleak::"
	if !strings.Contains(stdout, want) {
		t.Errorf("missing annotation %q:\n%s", want, stdout)
	}
}

func TestChecksFlagRejectsUnknownName(t *testing.T) {
	code, _, stderr := runLint(t, "-root", badmodRoot(t), "-checks", "nosuch")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown check "nosuch"`) {
		t.Errorf("stderr missing unknown-check error: %q", stderr)
	}
}

func TestPatternFiltering(t *testing.T) {
	// A pattern matching nothing leaves no packages, hence no findings.
	code, stdout, stderr := runLint(t, "-root", badmodRoot(t), "./nosuch/...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (no packages selected)\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	// An explicit subtree pattern still finds the seeded violations.
	code, stdout, _ = runLint(t, "-root", badmodRoot(t), "./internal/...")
	if code != 1 || !strings.Contains(stdout, "floateq:") {
		t.Fatalf("./internal/... filtering lost the findings (exit %d):\n%s", code, stdout)
	}
}
