// Package sim is a questlint end-to-end fixture: a module with seeded
// violations of the determinism and floateq invariants, one valid
// suppression, and one typoed suppression that must fail validation.
package sim

import "time"

// Stamp reads the wall clock inside a deterministic-scope package.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Close compares floats with ==.
func Close(a, b float64) bool {
	return a == b
}

// Quiet carries a well-formed suppression and must NOT be reported.
func Quiet() int64 {
	// lint:ignore determinism fixture: exercises a valid suppression
	return time.Now().UnixNano()
}

// Typo carries a directive naming a check that does not exist; the
// directive fails validation AND the finding below it still reports.
func Typo(a, b float64) bool {
	// lint:ignore floatqe typoed check name
	return a == b
}
