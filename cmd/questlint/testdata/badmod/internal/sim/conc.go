// Seeded concurrency violations for the flow-sensitive checks, plus one
// stale suppression the driver must report.
package sim

import (
	"context"
	"sync"

	"badmod/internal/par"
)

func work() {}

// Spawn leaks a goroutine: no ctx, no done channel, no WaitGroup.
func Spawn() {
	go func() {
		work()
	}()
}

// Hold returns with the mutex still locked.
func Hold(mu *sync.Mutex) int {
	mu.Lock()
	return 1
}

func unit(ctx context.Context, i int) error { return nil }

// Nested re-enters the pool from inside a slot callback.
func Nested(ctx context.Context, p *par.Pool) error {
	return p.ForEachErr(ctx, 4, func(ctx context.Context, i int) error {
		return p.ForEachErr(ctx, 2, unit)
	})
}

// Stale carries a directive whose check reports nothing on its line; the
// stale-suppression audit must flag the directive itself.
func Stale() int {
	// lint:ignore goroleak fixture: stale directive, excuses nothing
	return 2
}
