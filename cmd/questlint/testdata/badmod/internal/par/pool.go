// Package par impersonates the repo's bounded slot pool so the badmod
// end-to-end fixture can seed a no-nesting violation; the pool itself is
// clean.
package par

import "context"

type Pool struct {
	slots chan struct{}
}

func NewPool(n int) *Pool {
	p := &Pool{slots: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		p.slots <- struct{}{}
	}
	return p
}

func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case <-p.slots:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) Release() { p.slots <- struct{}{} }

func (p *Pool) ForEachErr(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	for i := 0; i < n; i++ {
		if err := p.Acquire(ctx); err != nil {
			return err
		}
		err := fn(ctx, i)
		p.Release()
		if err != nil {
			return err
		}
	}
	return nil
}
