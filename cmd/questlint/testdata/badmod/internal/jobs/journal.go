// Package jobs seeds an fsync-before-ack violation: the record is
// written but never synced before the success return.
package jobs

import "os"

// Append acknowledges a journal record that may still be sitting in the
// page cache.
func Append(f *os.File, rec []byte) error {
	if _, err := f.Write(rec); err != nil {
		return err
	}
	return nil
}
