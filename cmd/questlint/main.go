// Command questlint runs the project's static-analysis suite
// (internal/analysis) over the module: the invariants PRs 1–4
// established by hand — determinism, context propagation, budget-error
// wrapping, the zero-value sentinel convention, float-equality hygiene —
// enforced at `make verify` time instead of discovered by golden tests.
//
// Usage:
//
//	questlint [flags] [patterns]
//
// Patterns are ./...-style package patterns relative to the module root
// ("./...", "./internal/...", "./internal/pipeline"); the default is
// every package in the module. Diagnostics print as
// file:line:col: check: message, and the exit status is 1 when any
// unsuppressed finding (or malformed/unknown lint:ignore directive)
// remains, 2 on internal errors.
//
// Flags:
//
//	-checks a,b     run only the named checks (default: all)
//	-list-ignores   print every lint:ignore directive (file:line,
//	                check, reason) instead of linting
//	-json           print diagnostics as a JSON array of
//	                {file,line,col,check,message} objects
//	-github         print diagnostics as GitHub Actions ::error
//	                annotations (the CI lint step's format)
//
// A finding is suppressed with `// lint:ignore <check> <reason>` on the
// offending line or the line directly above; the reason is mandatory and
// must name a real check, and -list-ignores is the audit trail. A
// directive whose check runs but reports nothing on its line is itself a
// finding (stale suppression), so excuses cannot outlive their reason.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("questlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checks      = fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
		listIgnores = fs.Bool("list-ignores", false, "print every lint:ignore directive and exit")
		rootFlag    = fs.String("root", "", "module root to lint (default: discovered from the working directory)")
		jsonOut     = fs.Bool("json", false, "print diagnostics as JSON")
		githubOut   = fs.Bool("github", false, "print diagnostics as GitHub Actions ::error annotations")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root := *rootFlag
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "questlint:", err)
			return 2
		}
	}
	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "questlint:", err)
		return 2
	}

	loader, err := analysis.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "questlint:", err)
		return 2
	}
	pkgs, err := loader.LoadTree(loader.Module)
	if err != nil {
		fmt.Fprintln(stderr, "questlint:", err)
		return 2
	}
	pkgs = filterPackages(pkgs, loader.Module, fs.Args())

	if *listIgnores {
		printIgnores(stdout, root, pkgs)
		// Unknown check names still fail the listing: the audit trail
		// must not contain directives that suppress nothing.
		if diags := analysis.ValidateIgnores(pkgs, analysis.KnownCheck); len(diags) > 0 {
			printDiagnostics(stderr, root, diags)
			return 1
		}
		return 0
	}

	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, "questlint:", err)
		return 2
	}
	diags = append(diags, analysis.ValidateIgnores(pkgs, analysis.KnownCheck)...)
	// A suppression whose check ran and excused nothing is itself a
	// finding; -checks subsets leave the other checks' directives alone.
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	diags = append(diags, analysis.StaleIgnores(pkgs, func(name string) bool { return ran[name] })...)
	if *jsonOut {
		printJSON(stdout, root, diags)
		if len(diags) == 0 {
			return 0
		}
		fmt.Fprintf(stderr, "questlint: %d finding(s)\n", len(diags))
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	if *githubOut {
		printGitHub(stdout, root, diags)
	} else {
		printDiagnostics(stdout, root, diags)
	}
	fmt.Fprintf(stderr, "questlint: %d finding(s)\n", len(diags))
	return 1
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	all := analysis.Registry()
	if names == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have: %s)", name, checkNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func checkNames(as []*analysis.Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// filterPackages applies ./...-style patterns (relative to the module
// root) to the loaded package set. No patterns, "." or "./..." keep
// everything.
func filterPackages(pkgs []*analysis.Package, module string, patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		return pkgs
	}
	keep := func(path string) bool {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, module), "/")
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			if pat == "..." || pat == "." || pat == "" {
				return true
			}
			if sub, ok := strings.CutSuffix(pat, "/..."); ok {
				if rel == sub || strings.HasPrefix(rel, sub+"/") {
					return true
				}
				continue
			}
			if rel == pat {
				return true
			}
		}
		return false
	}
	var out []*analysis.Package
	for _, p := range pkgs {
		if keep(p.Path) {
			out = append(out, p)
		}
	}
	return out
}

// relPath shortens an absolute diagnostic path to be root-relative, so
// output is stable across checkouts.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

func printDiagnostics(w io.Writer, root string, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n",
			relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
}

// printJSON emits the machine-readable form: a JSON array (empty on a
// clean tree) of {file,line,col,check,message}, one object per finding.
func printJSON(w io.Writer, root string, diags []analysis.Diagnostic) {
	type jsonDiag struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Check:   d.Check,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An Encoder error here means the pipe is gone; there is no better
	// place to report it than the write that just failed.
	_ = enc.Encode(out)
}

// printGitHub emits GitHub Actions workflow annotations: each finding
// becomes an ::error command the runner attaches to the PR diff.
func printGitHub(w io.Writer, root string, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=questlint %s::%s\n",
			relPath(root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
}

func printIgnores(w io.Writer, root string, pkgs []*analysis.Package) {
	type row struct {
		file   string
		line   int
		check  string
		reason string
	}
	var rows []row
	for _, p := range pkgs {
		for _, ig := range p.Ignores {
			rows = append(rows, row{relPath(root, ig.Pos.Filename), ig.Pos.Line, ig.Check, ig.Reason})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].file != rows[j].file {
			return rows[i].file < rows[j].file
		}
		return rows[i].line < rows[j].line
	})
	for _, r := range rows {
		fmt.Fprintf(w, "%s:%d: %s: %s\n", r.file, r.line, r.check, r.reason)
	}
	fmt.Fprintf(w, "%d suppression(s)\n", len(rows))
}
