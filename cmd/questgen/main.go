// Command questgen emits the paper's Table-1 benchmark circuits as
// OpenQASM 2.0, either one algorithm to stdout or the whole suite to a
// directory (mirroring the artifact's input_qasm_files layout).
//
// Usage:
//
//	questgen -algo qft -n 5            # one circuit to stdout
//	questgen -all -out input_qasm_files
//	questgen -corpus -out examples/circuits/corpus
//
// -corpus regenerates the committed benchmark corpus (the 8-20 qubit
// QASMBench-style workload set defined in internal/algos.CorpusSpecs)
// plus a manifest.json with per-circuit stats; the output is
// deterministic, so a regeneration of an unchanged definition is a
// byte-identical no-op.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"

	quest "repro"
	"repro/internal/algos"
)

func main() {
	var (
		algo   = flag.String("algo", "", "benchmark name")
		qubits = flag.Int("n", 4, "approximate qubit count")
		all    = flag.Bool("all", false, "emit every benchmark")
		corpus = flag.Bool("corpus", false, "emit the committed benchmark corpus (with manifest.json)")
		outDir = flag.String("out", "", "output directory (required with -all / -corpus)")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM stops the suite loop between files rather than
	// leaving a half-written directory (same discipline as cmd/quest).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *corpus:
		if *outDir == "" {
			fmt.Fprintln(os.Stderr, "questgen: -corpus requires -out")
			os.Exit(1)
		}
		if err := writeCorpus(ctx, *outDir); err != nil {
			fmt.Fprintln(os.Stderr, "questgen:", err)
			os.Exit(1)
		}
	case *all:
		if *outDir == "" {
			fmt.Fprintln(os.Stderr, "questgen: -all requires -out")
			os.Exit(1)
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "questgen:", err)
			os.Exit(1)
		}
		for _, name := range quest.Benchmarks() {
			if err := ctx.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "questgen: interrupted:", err)
				os.Exit(1)
			}
			c, err := quest.GenerateBenchmark(name, *qubits)
			if err != nil {
				fmt.Fprintln(os.Stderr, "questgen:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, fmt.Sprintf("%s_%d.qasm", name, c.NumQubits))
			if err := os.WriteFile(path, []byte(quest.WriteQASM(c)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "questgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d qubits, %d CNOTs)\n", path, c.NumQubits, c.CNOTCount())
		}
	case *algo != "":
		c, err := quest.GenerateBenchmark(*algo, *qubits)
		if err != nil {
			fmt.Fprintln(os.Stderr, "questgen:", err)
			os.Exit(1)
		}
		fmt.Print(quest.WriteQASM(c))
	default:
		fmt.Fprintf(os.Stderr, "questgen: need -algo, -all or -corpus (benchmarks: %v)\n", quest.Benchmarks())
		os.Exit(1)
	}
}

// manifestEntry is one circuit's row in the corpus manifest.json.
type manifestEntry struct {
	File   string `json:"file"`
	Algo   string `json:"algo"`
	Qubits int    `json:"qubits"`
	Ops    int    `json:"ops"`
	CNOTs  int    `json:"cnots"`
	Depth  int    `json:"depth"`
}

// writeCorpus emits the committed benchmark corpus: every CorpusSpecs
// circuit as OpenQASM plus a manifest.json describing the set. Both the
// circuits and the manifest are deterministic.
func writeCorpus(ctx context.Context, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	byFile := map[string]string{} // file -> algo name
	for _, spec := range algos.CorpusSpecs() {
		c, err := algos.Generate(spec.Name, spec.Qubits)
		if err != nil {
			return err
		}
		byFile[fmt.Sprintf("%s_%d.qasm", spec.Name, c.NumQubits)] = spec.Name
	}
	circuits, err := algos.GenerateCorpus()
	if err != nil {
		return err
	}
	files := make([]string, 0, len(circuits))
	for f := range circuits {
		files = append(files, f)
	}
	sort.Strings(files)
	manifest := make([]manifestEntry, 0, len(files))
	for _, f := range files {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted: %w", err)
		}
		c := circuits[f]
		if err := os.WriteFile(filepath.Join(dir, f), []byte(quest.WriteQASM(c)), 0o644); err != nil {
			return err
		}
		manifest = append(manifest, manifestEntry{
			File:   f,
			Algo:   byFile[f],
			Qubits: c.NumQubits,
			Ops:    c.Size(),
			CNOTs:  c.CNOTCount(),
			Depth:  c.Depth(),
		})
		fmt.Printf("wrote %s (%d qubits, %d ops, %d CNOTs)\n", filepath.Join(dir, f), c.NumQubits, c.Size(), c.CNOTCount())
	}
	enc, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), append(enc, '\n'), 0o644)
}
