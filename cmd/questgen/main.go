// Command questgen emits the paper's Table-1 benchmark circuits as
// OpenQASM 2.0, either one algorithm to stdout or the whole suite to a
// directory (mirroring the artifact's input_qasm_files layout).
//
// Usage:
//
//	questgen -algo qft -n 5            # one circuit to stdout
//	questgen -all -out input_qasm_files
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	quest "repro"
)

func main() {
	var (
		algo   = flag.String("algo", "", "benchmark name")
		qubits = flag.Int("n", 4, "approximate qubit count")
		all    = flag.Bool("all", false, "emit every benchmark")
		outDir = flag.String("out", "", "output directory (required with -all)")
	)
	flag.Parse()

	// Ctrl-C / SIGTERM stops the suite loop between files rather than
	// leaving a half-written directory (same discipline as cmd/quest).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *all:
		if *outDir == "" {
			fmt.Fprintln(os.Stderr, "questgen: -all requires -out")
			os.Exit(1)
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "questgen:", err)
			os.Exit(1)
		}
		for _, name := range quest.Benchmarks() {
			if err := ctx.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "questgen: interrupted:", err)
				os.Exit(1)
			}
			c, err := quest.GenerateBenchmark(name, *qubits)
			if err != nil {
				fmt.Fprintln(os.Stderr, "questgen:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, fmt.Sprintf("%s_%d.qasm", name, c.NumQubits))
			if err := os.WriteFile(path, []byte(quest.WriteQASM(c)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "questgen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d qubits, %d CNOTs)\n", path, c.NumQubits, c.CNOTCount())
		}
	case *algo != "":
		c, err := quest.GenerateBenchmark(*algo, *qubits)
		if err != nil {
			fmt.Fprintln(os.Stderr, "questgen:", err)
			os.Exit(1)
		}
		fmt.Print(quest.WriteQASM(c))
	default:
		fmt.Fprintf(os.Stderr, "questgen: need -algo or -all (benchmarks: %v)\n", quest.Benchmarks())
		os.Exit(1)
	}
}
