package quest

// The benchmark harness: one testing.B benchmark per figure of the QUEST
// evaluation (Sec. 4), each regenerating the figure's data in quick mode,
// plus micro-benchmarks for the pipeline's hot kernels. Run with:
//
//	go test -bench=. -benchmem
//
// For the full-scale figures use the experiments command instead:
//
//	go run ./cmd/experiments -fig 8
//
// The per-figure tables themselves are written to EXPERIMENTS.md; these
// benchmarks measure the cost of regenerating them.

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

func benchFig(b *testing.B, fig int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := experiments.Config{Quick: true, Seed: 3, Out: io.Discard}
		if err := experiments.Run(fig, cfg); err != nil {
			b.Fatalf("figure %d: %v", fig, err)
		}
	}
}

// BenchmarkFig01Motivation regenerates Fig. 1 (motivation: noisy Qiskit
// output vs ground truth for TFIM/Heisenberg).
func BenchmarkFig01Motivation(b *testing.B) { benchFig(b, 1) }

// BenchmarkFig04ExactSynthScatter regenerates Fig. 4 (exact synthesis
// CNOTs-vs-TVD scatter).
func BenchmarkFig04ExactSynthScatter(b *testing.B) { benchFig(b, 4) }

// BenchmarkFig07BoundVsActual regenerates Fig. 7 (theoretical bound vs
// actual process distance).
func BenchmarkFig07BoundVsActual(b *testing.B) { benchFig(b, 7) }

// BenchmarkFig08CNOTReduction regenerates Fig. 8 (% CNOT reduction).
func BenchmarkFig08CNOTReduction(b *testing.B) { benchFig(b, 8) }

// BenchmarkFig09IdealOutputDistance regenerates Fig. 9 (ideal TVD/JSD of
// the QUEST ensemble).
func BenchmarkFig09IdealOutputDistance(b *testing.B) { benchFig(b, 9) }

// BenchmarkFig10Manila regenerates Fig. 10 (TVD on the Manila-class
// device).
func BenchmarkFig10Manila(b *testing.B) { benchFig(b, 10) }

// BenchmarkFig11NoiseSweep regenerates Fig. 11 (% TVD reduction at 1%,
// 0.5%, 0.1% noise).
func BenchmarkFig11NoiseSweep(b *testing.B) { benchFig(b, 11) }

// BenchmarkFig12Overhead regenerates Fig. 12 (pipeline cost breakdown).
func BenchmarkFig12Overhead(b *testing.B) { benchFig(b, 12) }

// BenchmarkFig13CaseStudy regenerates Fig. 13 (TFIM/Heisenberg evolution
// on the Manila-class device).
func BenchmarkFig13CaseStudy(b *testing.B) { benchFig(b, 13) }

// BenchmarkFig14CaseStudyNoise regenerates Fig. 14 (case study under the
// noise sweep).
func BenchmarkFig14CaseStudyNoise(b *testing.B) { benchFig(b, 14) }

// BenchmarkFig15CircuitIllustration regenerates Fig. 15 (CNOT count of
// baseline vs one QUEST approximation).
func BenchmarkFig15CircuitIllustration(b *testing.B) { benchFig(b, 15) }

// BenchmarkFig16ThresholdSweep regenerates Fig. 16 (threshold
// sensitivity).
func BenchmarkFig16ThresholdSweep(b *testing.B) { benchFig(b, 16) }

// BenchmarkAblationSelection measures the dissimilar-vs-random selection
// ablation study (the Sec. 3.6 design-choice validation).
func BenchmarkAblationSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Config{Quick: true, Seed: 3, Out: io.Discard}
		if err := experiments.RunAblation("selection", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEnsembleSize measures the ensemble-size ablation.
func BenchmarkAblationEnsembleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.Config{Quick: true, Seed: 3, Out: io.Discard}
		if err := experiments.RunAblation("ensemble-size", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineTFIM4 measures one full QUEST pipeline run on the
// 4-qubit TFIM benchmark (the paper's flagship workload).
func BenchmarkPipelineTFIM4(b *testing.B) {
	c, err := GenerateBenchmark("tfim", 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := Approximate(c, Config{MaxSamples: 4, AnnealIterations: 150, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQiskitBaselineHeisenberg4 measures the Qiskit-style transpiler
// baseline on heisenberg-4 (lower + 2q resynthesis + local passes).
func BenchmarkQiskitBaselineHeisenberg4(b *testing.B) {
	c, err := GenerateBenchmark("heisenberg", 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimizeQiskitStyle(c)
	}
}

// BenchmarkIdealSimulation10Q measures statevector simulation of a
// 10-qubit TFIM circuit.
func BenchmarkIdealSimulation10Q(b *testing.B) {
	c, err := GenerateBenchmark("tfim", 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(c)
	}
}

// BenchmarkNoisySimulation compares the trajectory simulator's cost on the
// 4-qubit Heisenberg benchmark at 100 trajectories.
func BenchmarkNoisySimulation(b *testing.B) {
	c, err := GenerateBenchmark("heisenberg", 4)
	if err != nil {
		b.Fatal(err)
	}
	m := UniformNoise(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateNoisy(c, m, 0, int64(i+1))
	}
}
