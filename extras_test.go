package quest

import (
	"math"
	"testing"
)

func TestPublicHamiltonianWorkflow(t *testing.T) {
	h := NewTFIMHamiltonian(3, 1, 1)
	c1 := Trotterize(h, 4, 0.1)
	c2 := Trotterize2(h, 4, 0.1)
	if c1.Size() == 0 || c2.Size() == 0 {
		t.Fatal("empty Trotter circuits")
	}
	// Second order uses roughly twice the gates per step.
	if c2.Size() <= c1.Size() {
		t.Errorf("Trotter2 (%d ops) not deeper than Trotter (%d ops)", c2.Size(), c1.Size())
	}
	// Energy from |000>: all ZZ bonds aligned contributes -2J; the X
	// field contributes 0 in expectation.
	e := ExpectationEnergy(h, New(3))
	if math.Abs(e-(-2)) > 1e-9 {
		t.Errorf("TFIM |000> energy = %g, want -2", e)
	}
}

func TestPublicKAKAnalysis(t *testing.T) {
	c := New(2)
	c.CX(0, 1)
	n, err := TwoQubitMinCNOTs(c)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("CX MinCNOTs = %d", n)
	}
	a, b, cc, err := TwoQubitWeylCoordinates(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-math.Pi/4) > 1e-6 || b > 1e-6 || cc > 1e-6 {
		t.Errorf("CX Weyl = (%g,%g,%g)", a, b, cc)
	}
	// Wrong width is rejected.
	if _, err := TwoQubitMinCNOTs(New(3)); err == nil {
		t.Error("3-qubit circuit accepted by KAK analysis")
	}
}

func TestPublicMitigation(t *testing.T) {
	c := New(2)
	c.X(0)
	m := NoiseModel{ReadoutError: 0.1}
	noisy := SimulateNoisy(c, m, 0, 3)
	fixed, err := MitigateReadout(noisy, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tvd := TVD(Simulate(c), fixed); tvd > 1e-9 {
		t.Errorf("mitigated TVD = %g", tvd)
	}
}

func TestPublicCircuitUnitary(t *testing.T) {
	c := New(1)
	c.X(0)
	u := CircuitUnitary(c)
	if u.Rows != 2 || u.At(0, 1) != 1 {
		t.Errorf("CircuitUnitary(X) wrong: %v", u)
	}
}
