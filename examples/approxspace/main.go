// Approximation-space exploration (paper Fig. 4/6): synthesize one VQE
// circuit at every CNOT depth and print the (CNOTs, process distance)
// frontier, then show that exactly synthesized solutions with virtually
// identical process distances still differ in CNOT count and in output
// TVD when run under noise — the observation motivating QUEST's
// dissimilar-ensemble design.
//
// Run with: go run ./examples/approxspace
package main

import (
	"fmt"
	"log"

	quest "repro"
	"repro/internal/algos"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/synth"
)

func main() {
	c := algos.VQE(3, 2, 11)
	target := sim.Unitary(c)
	ideal := quest.Simulate(c)
	m := quest.UniformNoise(0.01)
	fmt.Printf("VQE-3 (2 layers): %d CNOTs\n\n", c.CNOTCount())

	// Part 1: the approximation space — best process distance available
	// at each CNOT count (QUEST's raw material), with the ideal TVD each
	// approximation would incur.
	res, err := synth.Synthesize(target, synth.Options{
		HarvestAll: true,
		MaxCNOTs:   c.CNOTCount() + 2,
		Threshold:  1e-6,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("approximation frontier (CNOTs -> best process distance, ideal TVD):")
	best := map[int]synth.Candidate{}
	for _, cand := range res.Candidates {
		if prev, ok := best[cand.CNOTs]; !ok || cand.Distance < prev.Distance {
			best[cand.CNOTs] = cand
		}
	}
	for k := 0; k <= c.CNOTCount()+2; k++ {
		cand, ok := best[k]
		if !ok {
			continue
		}
		tvd := quest.TVD(ideal, quest.Simulate(cand.Circuit))
		fmt.Printf("  %2d CNOTs: distance %.5f, TVD %.4f\n", k, cand.Distance, tvd)
	}

	// Part 2: several "exact" solutions from different search seeds — the
	// same process-distance class, yet different CNOT counts and
	// different TVDs once gate noise enters (paper Fig. 4).
	fmt.Println("\nexact solutions from different seeds at 1% gate noise:")
	for seed := int64(1); seed <= 5; seed++ {
		r, err := synth.Synthesize(target, synth.Options{
			Threshold: 1e-5,
			Seed:      seed * 31,
			Beam:      1 + int(seed)%3,
		})
		if err != nil {
			log.Fatal(err)
		}
		noisy := quest.SimulateNoisy(r.Best.Circuit, m, 8192, seed)
		tvd := metrics.TVD(ideal, noisy)
		fmt.Printf("  seed %d: %d CNOTs, distance %.2e, noisy TVD %.4f\n",
			seed, r.Best.CNOTs, r.Best.Distance, tvd)
	}
	fmt.Println("\nnote how the minimum-CNOT exact solution need not minimize noisy TVD.")
}
