// Spin-chain study combining the supporting substrates: build a Heisenberg
// Hamiltonian, compare first- vs second-order Trotterization, compress the
// evolution circuit with QUEST, and run it on the noisy device with and
// without readout-error mitigation.
//
// Run with: go run ./examples/spinchain
package main

import (
	"fmt"
	"log"

	quest "repro"
	"repro/internal/metrics"
)

func main() {
	const (
		n     = 4
		steps = 3
		dt    = 0.1
		shots = 8192
	)
	h := NewNeelHeisenberg(n)

	// Part 1: Trotter order comparison (gate cost vs accuracy trade-off).
	c1 := withNeelPrep(n, quest.Trotterize(h, steps, dt))
	c2 := withNeelPrep(n, quest.Trotterize2(h, steps, dt))
	fmt.Println("Trotter order comparison (Heisenberg-4, Néel start):")
	fmt.Printf("  1st order: %3d ops, %3d CNOTs\n", c1.Size(), c1.CNOTCount())
	fmt.Printf("  2nd order: %3d ops, %3d CNOTs\n", c2.Size(), c2.CNOTCount())

	truth := metrics.StaggeredMagnetization(quest.Simulate(c1), n)
	fmt.Printf("  staggered magnetization (1st order, ideal): %.4f\n\n", truth)

	// Part 2: QUEST compression of the first-order circuit.
	res, err := quest.Approximate(c1, quest.Config{MaxSamples: 6, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QUEST: %d -> %d CNOTs (best of %d dissimilar samples)\n\n",
		c1.CNOTCount(), res.BestCNOTs(), len(res.Selected))

	// Part 3: run the ensemble on the Manila-class device, with and
	// without readout mitigation.
	dev := quest.Manila()
	raw, err := res.EnsembleProbabilities(func(a *quest.Circuit) ([]float64, error) {
		return quest.RunOnDevice(dev, quest.OptimizeQiskitStyle(a), shots, 23)
	})
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := quest.MitigateReadout(raw, n, dev.Model.ReadoutError)
	if err != nil {
		log.Fatal(err)
	}
	mRaw := metrics.StaggeredMagnetization(raw, n)
	mFixed := metrics.StaggeredMagnetization(fixed, n)
	fmt.Println("device run (QUEST ensemble):")
	fmt.Printf("  unmitigated: magnetization %.4f (|Δ| = %.4f)\n", mRaw, abs(truth-mRaw))
	fmt.Printf("  mitigated:   magnetization %.4f (|Δ| = %.4f)\n", mFixed, abs(truth-mFixed))
}

// NewNeelHeisenberg builds the case-study Hamiltonian.
func NewNeelHeisenberg(n int) *quest.Hamiltonian {
	return quest.NewHeisenbergHamiltonian(n, 1, 0.5)
}

// withNeelPrep prepends Néel-state preparation (X on odd qubits).
func withNeelPrep(n int, evo *quest.Circuit) *quest.Circuit {
	c := quest.New(n)
	for q := 1; q < n; q += 2 {
		c.X(q)
	}
	c.MustAppendCircuit(evo, nil)
	return c
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
