// TFIM case study (paper Fig. 1/13): track the average magnetization of a
// four-spin transverse-field Ising model over its time evolution, on a
// noisy Manila-class device, comparing the Qiskit-style baseline against
// QUEST + Qiskit. Every timestep is a separate circuit that QUEST compiles
// independently — exactly the paper's workflow.
//
// Run with: go run ./examples/tfim
package main

import (
	"fmt"
	"log"

	quest "repro"
	"repro/internal/algos"
	"repro/internal/metrics"
)

func main() {
	const (
		n     = 4
		dt    = 0.05
		shots = 8192
	)
	dev := quest.Manila()

	fmt.Println("TFIM-4 time evolution on a Manila-class noisy device")
	fmt.Printf("%6s %8s %10s %10s %14s\n", "step", "CNOTs", "truth", "qiskit", "quest+qiskit")

	for _, steps := range []int{1, 2, 3, 4, 6, 8} {
		c := algos.TFIM(n, steps, dt, 1, 1)
		truth := metrics.AverageMagnetization(quest.Simulate(c), n)

		// Baseline: Qiskit-style optimization, run on the device.
		opt := quest.OptimizeQiskitStyle(c)
		pQiskit, err := quest.RunOnDevice(dev, opt, shots, int64(steps))
		if err != nil {
			log.Fatal(err)
		}
		mQiskit := metrics.AverageMagnetization(pQiskit, n)

		// QUEST: approximate, then run the ensemble on the device with
		// Qiskit-style optimization applied to each approximation.
		res, err := quest.Approximate(c, quest.Config{MaxSamples: 8, Seed: int64(steps)})
		if err != nil {
			log.Fatal(err)
		}
		ens, err := res.EnsembleProbabilities(func(a *quest.Circuit) ([]float64, error) {
			return quest.RunOnDevice(dev, quest.OptimizeQiskitStyle(a), shots, int64(steps)+99)
		})
		if err != nil {
			log.Fatal(err)
		}
		mQuest := metrics.AverageMagnetization(ens, n)

		fmt.Printf("%6d %8d %10.4f %10.4f %14.4f\n",
			steps, c.CNOTCount(), truth, mQiskit, mQuest)
	}
	fmt.Println("\nquest+qiskit should track 'truth' more closely than 'qiskit'.")
}
