// Heisenberg case study (paper Fig. 13/14): staggered magnetization of a
// four-spin Heisenberg chain evolved from the Néel state, under the
// paper's Pauli noise sweep (1%, 0.5%, 0.1%). The deeper the circuit, the
// more the baseline decays toward zero magnetization while QUEST's
// low-CNOT ensemble stays near the ground truth.
//
// Run with: go run ./examples/heisenberg
package main

import (
	"fmt"
	"log"

	quest "repro"
	"repro/internal/algos"
	"repro/internal/metrics"
)

func main() {
	const (
		n     = 4
		dt    = 0.05
		steps = 4
		shots = 8192
	)
	c := algos.HeisenbergNeel(n, steps, dt, 1, 0.5)
	truth := metrics.StaggeredMagnetization(quest.Simulate(c), n)
	fmt.Printf("Heisenberg-4 (Néel start), %d Trotter steps, %d CNOTs\n", steps, c.CNOTCount())
	fmt.Printf("ground-truth staggered magnetization: %.4f\n\n", truth)

	res, err := quest.Approximate(c, quest.Config{MaxSamples: 8, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QUEST selected %d approximations, best %d CNOTs\n\n",
		len(res.Selected), res.BestCNOTs())

	fmt.Printf("%8s %12s %16s\n", "noise", "qiskit |Δ|", "quest+qiskit |Δ|")
	for _, p := range []float64{0.01, 0.005, 0.001} {
		m := quest.UniformNoise(p)

		opt := quest.OptimizeQiskitStyle(c)
		mQiskit := metrics.StaggeredMagnetization(
			quest.SimulateNoisy(opt, m, shots, 21), n)

		ens, err := res.EnsembleProbabilities(func(a *quest.Circuit) ([]float64, error) {
			return quest.SimulateNoisy(quest.OptimizeQiskitStyle(a), m, shots, 22), nil
		})
		if err != nil {
			log.Fatal(err)
		}
		mQuest := metrics.StaggeredMagnetization(ens, n)

		fmt.Printf("%7.1f%% %12.4f %16.4f\n",
			p*100, abs(truth-mQiskit), abs(truth-mQuest))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
