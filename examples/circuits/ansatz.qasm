// Hardware-efficient ansatz layer expressed as a user-defined gate,
// broadcast-applied over a register and closed with an entangling chain.
OPENQASM 2.0;
qreg q[4];
gate layer(a,b) x,y { ry(a) x; rz(b) y; cx x,y; }
u3(0.3,0.1,0.2) q;
layer(0.5,1.25) q[0],q[1];
layer(pi/3,-pi/7) q[2],q[3];
cx q[1],q[2];
rx(1.0e-1) q[0];
ccx q[0],q[1],q[2];
