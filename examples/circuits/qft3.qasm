// 3-qubit quantum Fourier transform with controlled-phase rotations.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cu1(pi/2) q[1],q[0];
cu1(pi/4) q[2],q[0];
h q[1];
cu1(pi/2) q[2],q[1];
h q[2];
swap q[0],q[2];
