// Quickstart: approximate a small benchmark circuit with QUEST and check
// that the ensemble output matches the original while using fewer CNOTs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	quest "repro"
)

func main() {
	// Build a 4-qubit transverse-field Ising model evolution circuit —
	// one of the paper's materials-simulation workloads.
	c, err := quest.GenerateBenchmark("tfim", 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original circuit: %d qubits, %d ops, %d CNOTs\n",
		c.NumQubits, c.Size(), c.CNOTCount())

	// Run the QUEST pipeline: partition -> approximate synthesis ->
	// dual-annealing selection of dissimilar low-CNOT approximations.
	res, err := quest.Approximate(c, quest.Config{MaxSamples: 8, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QUEST: %d blocks, %d approximations selected\n",
		len(res.Blocks), len(res.Selected))
	for i, a := range res.Selected {
		fmt.Printf("  sample %d: %d CNOTs (process-distance bound %.4f)\n",
			i, a.CNOTs, a.EpsilonSum)
	}

	// The ensemble output (average over the approximations) should track
	// the original circuit's ideal output.
	truth := quest.Simulate(c)
	ens, err := res.EnsembleProbabilities(quest.IdealRunner())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CNOTs: %d -> %d best sample\n", c.CNOTCount(), res.BestCNOTs())
	fmt.Printf("ideal ensemble TVD = %.4f, JSD = %.4f\n",
		quest.TVD(truth, ens), quest.JSD(truth, ens))

	// Export the first approximation as OpenQASM 2.0.
	fmt.Println("\nfirst approximation as QASM:")
	fmt.Println(quest.WriteQASM(res.Selected[0].Circuit))
}
