package quest

// Integration tests: the full artifact workflow of the paper's appendix —
// QASM circuit files in, partitioning + synthesis + dual annealing,
// approximate QASM circuits out — driven purely through the public API.

import (
	"math"
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/sim"
)

// TestWorkflowQASMToApproximations mirrors the artifact's
// generate_post_partitioning_files → generate_post_synthesis_files →
// generate_dual_annealing_solutions → generate_simulation_results chain.
func TestWorkflowQASMToApproximations(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
rz(0.3) q[1];
cx q[1],q[2];
ry(0.7) q[2];
cx q[2],q[3];
cx q[0],q[1];
rz(-0.4) q[3];
cx q[2],q[3];
measure q -> c;
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Approximate(c, Config{MaxSamples: 4, AnnealIterations: 150, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	truth := Simulate(c)
	for i, a := range res.Selected {
		// Round-trip each approximation through QASM.
		out := WriteQASM(a.Circuit)
		if !strings.Contains(out, "OPENQASM 2.0;") {
			t.Fatalf("approximation %d: bad QASM header", i)
		}
		back, err := ParseQASM(out)
		if err != nil {
			t.Fatalf("approximation %d: reparse: %v", i, err)
		}
		if back.CNOTCount() != a.CNOTs {
			t.Errorf("approximation %d: CNOT count changed in round trip: %d vs %d",
				i, back.CNOTCount(), a.CNOTs)
		}
		// The Sec. 3.8 bound holds for the reparsed circuit too.
		d := linalg.HSDistance(sim.Unitary(c), sim.Unitary(back))
		if d > a.EpsilonSum+1e-6 {
			t.Errorf("approximation %d: distance %g > bound %g", i, d, a.EpsilonSum)
		}
	}

	ens, err := res.EnsembleProbabilities(IdealRunner())
	if err != nil {
		t.Fatal(err)
	}
	if tvd := TVD(truth, ens); tvd > 0.2 {
		t.Errorf("ensemble TVD = %g", tvd)
	}
}

// TestWorkflowNoisyComparison checks the headline property end to end: on
// a noisy backend, the QUEST ensemble of a deep circuit tracks the ideal
// output at least as well as the Qiskit-style baseline.
func TestWorkflowNoisyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full pipeline plus noisy simulations")
	}
	// A deep TFIM-like evolution where gate noise dominates.
	c := New(4)
	for s := 0; s < 10; s++ {
		for q := 0; q+1 < 4; q++ {
			c.RZZ(q, q+1, -0.1)
		}
		for q := 0; q < 4; q++ {
			c.RX(q, -0.1)
		}
	}
	truth := Simulate(c)
	m := UniformNoise(0.01)

	baseline := OptimizeQiskitStyle(c)
	baseTVD := TVD(truth, SimulateNoisy(baseline, m, 0, 5))

	res, err := Approximate(c, Config{MaxSamples: 8, Seed: 5, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := res.EnsembleProbabilities(func(a *Circuit) ([]float64, error) {
		return SimulateNoisy(OptimizeQiskitStyle(a), m, 0, 5), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	questTVD := TVD(truth, ens)
	t.Logf("deep TFIM: baseline %d CNOTs TVD %.4f; QUEST mean CNOTs over %d samples, TVD %.4f",
		baseline.CNOTCount(), baseTVD, len(res.Selected), questTVD)
	if questTVD > baseTVD+0.05 {
		t.Errorf("QUEST ensemble (%.4f) clearly worse than baseline (%.4f) under noise", questTVD, baseTVD)
	}
}

// TestWorkflowDeviceEndToEnd runs the Manila path through the public API.
func TestWorkflowDeviceEndToEnd(t *testing.T) {
	c, err := GenerateBenchmark("xy", 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Approximate(c, Config{MaxSamples: 3, AnnealIterations: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dev := Manila()
	ens, err := res.EnsembleProbabilities(DeviceRunner(dev, 2048, 3))
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, v := range ens {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("device ensemble sums to %g", s)
	}
}
