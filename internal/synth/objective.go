package synth

import (
	"math/cmplx"

	"repro/internal/linalg"
)

// The gate-application kernels live in internal/linalg (shared with the
// simulator). The free functions below dispatch by gate arity: the ansatz
// only ever contains 1- and 2-qubit ops, which hit the fully unrolled
// kernels; the generic ScatterTab path remains as the fallback and the
// correctness oracle for larger gates.

// applyLeft computes m ← G_full · m in place, where g is a small gate
// matrix on the listed qubits (first listed = most significant local bit).
func applyLeft(m *linalg.Matrix, g *linalg.Matrix, qubits []int) {
	switch len(qubits) {
	case 1:
		linalg.ApplyLeft1(m, (*[4]complex128)(g.Data), qubits[0])
	case 2:
		linalg.ApplyLeft2(m, (*[16]complex128)(g.Data), qubits[0], qubits[1])
	default:
		linalg.ApplyLeftTab(m, g.Data, linalg.NewScatterTab(qubits))
	}
}

// applyRight computes m ← m · G_full in place.
func applyRight(m *linalg.Matrix, g *linalg.Matrix, qubits []int) {
	switch len(qubits) {
	case 1:
		linalg.ApplyRight1(m, (*[4]complex128)(g.Data), qubits[0])
	case 2:
		linalg.ApplyRight2(m, (*[16]complex128)(g.Data), qubits[0], qubits[1])
	default:
		linalg.ApplyRightTab(m, g.Data, linalg.NewScatterTab(qubits))
	}
}

// subspaceTrace returns Tr(A · G_full) where g is a small matrix on the
// listed qubits, without expanding G to the full space.
func subspaceTrace(a *linalg.Matrix, g *linalg.Matrix, qubits []int) complex128 {
	switch len(qubits) {
	case 1:
		return linalg.SubspaceTrace1(a, (*[4]complex128)(g.Data), qubits[0])
	case 2:
		return linalg.SubspaceTrace2(a, (*[16]complex128)(g.Data), qubits[0], qubits[1])
	default:
		return linalg.SubspaceTraceTab(a, g.Data, linalg.NewScatterTab(qubits))
	}
}

// objective evaluates f(θ) = 1 - |Tr(U†V(θ))|²/N² and its gradient for an
// ansatz against a target unitary. It owns scratch buffers (including the
// per-op gate buffer gbuf), so one objective instance must not be shared
// across goroutines. The evaluation loop is allocation-free after
// construction: gate and derivative matrices are written into gbuf, and
// every index table is either unrolled into the k=1/k=2 kernels or
// precomputed at construction.
type objective struct {
	a      *ansatz
	target *linalg.Matrix // U
	mdag   *linalg.Matrix // U†
	dim    int
	fwd    []*linalg.Matrix // fwd[k] = G_k···G_1, fwd[0] = I
	bwd    *linalg.Matrix   // scratch: R = U†·G_K···G_{k+1}
	vbuf   *linalg.Matrix   // scratch identity/product for value()
	tbuf   []complex128     // gathered 2x2 blocks of F_{k-1}·R_k
	gbuf   [16]complex128   // current op's gate matrix
	dbuf   [16]complex128   // current op's derivative matrix
}

func newObjective(a *ansatz, target *linalg.Matrix) *objective {
	dim := target.Rows
	o := &objective{
		a:      a,
		target: target,
		mdag:   target.Dagger(),
		dim:    dim,
		bwd:    linalg.New(dim, dim),
		vbuf:   linalg.New(dim, dim),
		tbuf:   make([]complex128, 2*dim),
	}
	o.fwd = make([]*linalg.Matrix, len(a.ops)+1)
	for i := range o.fwd {
		o.fwd[i] = linalg.New(dim, dim)
	}
	return o
}

// setIdentity resets m to the identity without allocating.
func setIdentity(m *linalg.Matrix) {
	for i := range m.Data {
		m.Data[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] = 1
	}
}

// applyOpLeft computes m ← G_full·m for an ansatz op whose small matrix is
// in g, dispatching to the unrolled kernel for the op's arity.
func applyOpLeft(m *linalg.Matrix, op aop, g *[16]complex128) {
	if op.kind == opCX {
		linalg.ApplyLeft2(m, g, op.q1, op.q2)
	} else {
		linalg.ApplyLeft1(m, (*[4]complex128)(g[:4]), op.q1)
	}
}

// applyOpRight computes m ← m·G_full for an ansatz op.
func applyOpRight(m *linalg.Matrix, op aop, g *[16]complex128) {
	if op.kind == opCX {
		linalg.ApplyRight2(m, g, op.q1, op.q2)
	} else {
		linalg.ApplyRight1(m, (*[4]complex128)(g[:4]), op.q1)
	}
}

// value returns f(θ) without gradient work.
func (o *objective) value(params []float64) float64 {
	v := o.vbuf
	setIdentity(v)
	for _, op := range o.a.ops {
		op.matrixInto(params, o.gbuf[:])
		applyOpLeft(v, op, &o.gbuf)
	}
	t := linalg.HSInner(o.target, v)
	return o.distanceSq(t)
}

func (o *objective) distanceSq(t complex128) float64 {
	n := float64(o.dim)
	f := 1 - (real(t)*real(t)+imag(t)*imag(t))/(n*n)
	if f < 0 {
		return 0
	}
	return f
}

// valueGrad evaluates f and writes ∂f/∂θ into grad.
func (o *objective) valueGrad(params, grad []float64) float64 {
	ops := o.a.ops
	// Forward pass: fwd[0] = I, fwd[k] = G_k···G_1.
	setIdentity(o.fwd[0])
	for k, op := range ops {
		o.fwd[k].CopyInto(o.fwd[k+1])
		op.matrixInto(params, o.gbuf[:])
		applyOpLeft(o.fwd[k+1], op, &o.gbuf)
	}
	vFull := o.fwd[len(ops)]
	t := linalg.HSInner(o.target, vFull)
	f := o.distanceSq(t)

	// Backward pass: R starts at U† and absorbs gates from the end.
	o.mdag.CopyInto(o.bwd)
	n2 := float64(o.dim) * float64(o.dim)
	tconj := cmplx.Conj(t)
	for k := len(ops) - 1; k >= 0; k-- {
		op := ops[k]
		if np := op.nparams(); np > 0 {
			// ∂T/∂θ_j = Tr(F_{k-1}·R_k·dG) (cyclic rearrangement of
			// Tr(R dG F)). All parameterized ansatz ops are 1-qubit, so
			// only the 2x2 subspace blocks of the product are needed:
			// gather them once per op and reuse for every parameter.
			// (Multi-qubit parameterized ops would fall back to the full
			// product: MulInto(o.scratch, ...) + traceOp.)
			linalg.GatherProdBlocks1(o.tbuf, o.fwd[k], o.bwd, op.q1)
			for j := 0; j < np; j++ {
				op.derivInto(params, j, o.dbuf[:])
				dT := linalg.TraceBlocks1(o.tbuf, (*[4]complex128)(o.dbuf[:4]))
				// f = 1 - T T̄ / N² ⇒ ∂f = -2 Re(T̄ ∂T)/N².
				grad[op.pidx+j] = -2 * real(tconj*dT) / n2
			}
		}
		op.matrixInto(params, o.gbuf[:])
		applyOpRight(o.bwd, op, &o.gbuf)
	}
	return f
}
