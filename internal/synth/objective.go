package synth

import (
	"math/cmplx"

	"repro/internal/linalg"
)

// applyLeft computes m ← G_full · m in place, where g is a small gate
// matrix on the listed qubits (first listed = most significant local bit).
// This corresponds to applying the gate to every column of m.
func applyLeft(m *linalg.Matrix, g *linalg.Matrix, qubits []int) {
	k := len(qubits)
	dim := 1 << k
	pos := make([]int, k)
	for i, q := range qubits {
		pos[k-1-i] = q
	}
	var mask int
	for _, p := range pos {
		mask |= 1 << p
	}
	rows := make([]int, dim)
	in := make([]complex128, dim)
	for base := 0; base < m.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < dim; l++ {
			r := base
			for j := 0; j < k; j++ {
				if l&(1<<j) != 0 {
					r |= 1 << pos[j]
				}
			}
			rows[l] = r
		}
		for col := 0; col < m.Cols; col++ {
			for l := 0; l < dim; l++ {
				in[l] = m.Data[rows[l]*m.Cols+col]
			}
			for r := 0; r < dim; r++ {
				grow := g.Data[r*dim : (r+1)*dim]
				var s complex128
				for l, v := range in {
					if grow[l] != 0 {
						s += grow[l] * v
					}
				}
				m.Data[rows[r]*m.Cols+col] = s
			}
		}
	}
}

// applyRight computes m ← m · G_full in place.
func applyRight(m *linalg.Matrix, g *linalg.Matrix, qubits []int) {
	k := len(qubits)
	dim := 1 << k
	pos := make([]int, k)
	for i, q := range qubits {
		pos[k-1-i] = q
	}
	var mask int
	for _, p := range pos {
		mask |= 1 << p
	}
	cols := make([]int, dim)
	in := make([]complex128, dim)
	for base := 0; base < m.Cols; base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < dim; l++ {
			c := base
			for j := 0; j < k; j++ {
				if l&(1<<j) != 0 {
					c |= 1 << pos[j]
				}
			}
			cols[l] = c
		}
		for row := 0; row < m.Rows; row++ {
			off := row * m.Cols
			for l := 0; l < dim; l++ {
				in[l] = m.Data[off+cols[l]]
			}
			// (m·G)[row][col(lj)] = Σ_lm in[lm] · g[lm][lj]
			for lj := 0; lj < dim; lj++ {
				var s complex128
				for lm := 0; lm < dim; lm++ {
					gv := g.Data[lm*dim+lj]
					if gv != 0 {
						s += in[lm] * gv
					}
				}
				m.Data[off+cols[lj]] = s
			}
		}
	}
}

// subspaceTrace returns Tr(A · G_full) where g is a small matrix on the
// listed qubits, without expanding G to the full space.
func subspaceTrace(a *linalg.Matrix, g *linalg.Matrix, qubits []int) complex128 {
	k := len(qubits)
	dim := 1 << k
	pos := make([]int, k)
	for i, q := range qubits {
		pos[k-1-i] = q
	}
	var mask int
	for _, p := range pos {
		mask |= 1 << p
	}
	idx := make([]int, dim)
	var t complex128
	for base := 0; base < a.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < dim; l++ {
			r := base
			for j := 0; j < k; j++ {
				if l&(1<<j) != 0 {
					r |= 1 << pos[j]
				}
			}
			idx[l] = r
		}
		// Tr(A·G) = Σ_{i,j} A[i][j]·G[j][i]; with i=idx[li], j=idx[lj].
		for li := 0; li < dim; li++ {
			arow := a.Data[idx[li]*a.Cols:]
			for lj := 0; lj < dim; lj++ {
				gv := g.Data[lj*dim+li]
				if gv != 0 {
					t += arow[idx[lj]] * gv
				}
			}
		}
	}
	return t
}

// objective evaluates f(θ) = 1 - |Tr(U†V(θ))|²/N² and its gradient for an
// ansatz against a target unitary. It owns scratch buffers, so one
// objective instance must not be shared across goroutines.
type objective struct {
	a       *ansatz
	target  *linalg.Matrix // U
	mdag    *linalg.Matrix // U†
	dim     int
	fwd     []*linalg.Matrix // fwd[k] = G_k···G_1, fwd[0] = I
	bwd     *linalg.Matrix   // scratch: R = U†·G_K···G_{k+1}
	scratch *linalg.Matrix
}

func newObjective(a *ansatz, target *linalg.Matrix) *objective {
	dim := target.Rows
	o := &objective{
		a:       a,
		target:  target,
		mdag:    target.Dagger(),
		dim:     dim,
		bwd:     linalg.New(dim, dim),
		scratch: linalg.New(dim, dim),
	}
	o.fwd = make([]*linalg.Matrix, len(a.ops)+1)
	for i := range o.fwd {
		o.fwd[i] = linalg.New(dim, dim)
	}
	return o
}

// value returns f(θ) without gradient work.
func (o *objective) value(params []float64) float64 {
	v := linalg.Identity(o.dim)
	for _, op := range o.a.ops {
		applyLeft(v, op.smallMatrix(params), op.qubits())
	}
	t := linalg.HSInner(o.target, v)
	return o.distanceSq(t)
}

func (o *objective) distanceSq(t complex128) float64 {
	n := float64(o.dim)
	f := 1 - (real(t)*real(t)+imag(t)*imag(t))/(n*n)
	if f < 0 {
		return 0
	}
	return f
}

// valueGrad evaluates f and writes ∂f/∂θ into grad.
func (o *objective) valueGrad(params, grad []float64) float64 {
	ops := o.a.ops
	// Forward pass: fwd[0] = I, fwd[k] = G_k···G_1.
	id := o.fwd[0]
	for i := range id.Data {
		id.Data[i] = 0
	}
	for i := 0; i < o.dim; i++ {
		id.Data[i*o.dim+i] = 1
	}
	for k, op := range ops {
		o.fwd[k].CopyInto(o.fwd[k+1])
		applyLeft(o.fwd[k+1], op.smallMatrix(params), op.qubits())
	}
	vFull := o.fwd[len(ops)]
	t := linalg.HSInner(o.target, vFull)
	f := o.distanceSq(t)

	// Backward pass: R starts at U† and absorbs gates from the end.
	o.mdag.CopyInto(o.bwd)
	n2 := float64(o.dim) * float64(o.dim)
	tconj := cmplx.Conj(t)
	for k := len(ops) - 1; k >= 0; k-- {
		op := ops[k]
		if np := op.nparams(); np > 0 {
			// A = F_{k-1} · R_k  (cyclic rearrangement of Tr(R dG F)).
			linalg.MulInto(o.scratch, o.fwd[k], o.bwd)
			for j := 0; j < np; j++ {
				dT := subspaceTrace(o.scratch, op.smallDeriv(params, j), op.qubits())
				// f = 1 - T T̄ / N² ⇒ ∂f = -2 Re(T̄ ∂T)/N².
				grad[op.pidx+j] = -2 * real(tconj*dT) / n2
			}
		}
		applyRight(o.bwd, op.smallMatrix(params), op.qubits())
	}
	return f
}
