package synth

import (
	"math"
	"math/cmplx"

	"repro/internal/linalg"
)

// The gate-application kernels live in internal/linalg (shared with the
// simulator). The free functions below dispatch by gate arity: k=1..4 hit
// the fully unrolled kernels; the generic ScatterTab path remains as the
// fallback and the correctness oracle for larger gates.

// applyLeft computes m ← G_full · m in place, where g is a small gate
// matrix on the listed qubits (first listed = most significant local bit).
func applyLeft(m *linalg.Matrix, g *linalg.Matrix, qubits []int) {
	switch len(qubits) {
	case 1:
		linalg.ApplyLeft1(m, (*[4]complex128)(g.Data), qubits[0])
	case 2:
		linalg.ApplyLeft2(m, (*[16]complex128)(g.Data), qubits[0], qubits[1])
	case 3:
		linalg.ApplyLeft3(m, (*[64]complex128)(g.Data), qubits[0], qubits[1], qubits[2])
	case 4:
		linalg.ApplyLeft4(m, (*[256]complex128)(g.Data), qubits[0], qubits[1], qubits[2], qubits[3])
	default:
		linalg.ApplyLeftTab(m, g.Data, linalg.NewScatterTab(qubits))
	}
}

// applyRight computes m ← m · G_full in place.
func applyRight(m *linalg.Matrix, g *linalg.Matrix, qubits []int) {
	switch len(qubits) {
	case 1:
		linalg.ApplyRight1(m, (*[4]complex128)(g.Data), qubits[0])
	case 2:
		linalg.ApplyRight2(m, (*[16]complex128)(g.Data), qubits[0], qubits[1])
	case 3:
		linalg.ApplyRight3(m, (*[64]complex128)(g.Data), qubits[0], qubits[1], qubits[2])
	case 4:
		linalg.ApplyRight4(m, (*[256]complex128)(g.Data), qubits[0], qubits[1], qubits[2], qubits[3])
	default:
		linalg.ApplyRightTab(m, g.Data, linalg.NewScatterTab(qubits))
	}
}

// subspaceTrace returns Tr(A · G_full) where g is a small matrix on the
// listed qubits, without expanding G to the full space.
func subspaceTrace(a *linalg.Matrix, g *linalg.Matrix, qubits []int) complex128 {
	switch len(qubits) {
	case 1:
		return linalg.SubspaceTrace1(a, (*[4]complex128)(g.Data), qubits[0])
	case 2:
		return linalg.SubspaceTrace2(a, (*[16]complex128)(g.Data), qubits[0], qubits[1])
	case 3:
		return linalg.SubspaceTrace3(a, (*[64]complex128)(g.Data), qubits[0], qubits[1], qubits[2])
	case 4:
		return linalg.SubspaceTrace4(a, (*[256]complex128)(g.Data), qubits[0], qubits[1], qubits[2], qubits[3])
	default:
		return linalg.SubspaceTraceTab(a, g.Data, linalg.NewScatterTab(qubits))
	}
}

// segment is one fused evaluation unit of the objective. The ansatz emits
// each LEAP layer as five ops — CX(c,t) then RY,RZ on c then RY,RZ on t —
// and evaluating them separately costs five full-matrix passes forward and
// backward plus four 1-qubit gradient gathers. Since the four rotations
// act on the CX's own qubits, the whole layer collapses into a single 4x4
// gate L = (RZ_c·RY_c ⊗ RZ_t·RY_t)·CX, and right-multiplying by CX is a
// free column swap. A layer segment therefore costs one 4x4 pass in each
// direction and ONE 2-qubit gradient gather shared by all four parameters
// (GatherProdBlocks2/TraceBlocks2). Ops that don't form a full layer (the
// seed U3s, or hand-built templates) map 1:1 onto op segments and take the
// original per-op path.
type segment struct {
	layer bool
	op    aop // valid when !layer
	c, t  int // layer CX control/target (control = most significant bit)
	pidx  int // first of the layer's 4 params: θ_c, φ_c, θ_t, φ_t
}

// isLayer reports whether ops[0:5] is exactly one withLayer expansion with
// contiguous parameter indices (required so the fused gradient can write
// grad[pidx..pidx+3]).
func isLayer(ops []aop) bool {
	cx := ops[0]
	if cx.kind != opCX {
		return false
	}
	c, t := cx.q1, cx.q2
	p := ops[1].pidx
	want := [4]struct {
		kind opKind
		q    int
	}{{opRY, c}, {opRZ, c}, {opRY, t}, {opRZ, t}}
	for i, w := range want {
		o := ops[1+i]
		if o.kind != w.kind || o.q1 != w.q || o.pidx != p+i {
			return false
		}
	}
	return true
}

// compileSegments fuses LEAP layers and appends the segments to buf.
func compileSegments(ops []aop, buf []segment) []segment {
	for k := 0; k < len(ops); {
		if k+4 < len(ops) && isLayer(ops[k:k+5]) {
			buf = append(buf, segment{
				layer: true,
				c:     ops[k].q1,
				t:     ops[k].q2,
				pidx:  ops[k+1].pidx,
			})
			k += 5
			continue
		}
		buf = append(buf, segment{op: ops[k]})
		k++
	}
	return buf
}

// segTrig caches, per segment and per evaluation, the trig shared by the
// segment matrix and its derivatives: one Sincos per rotation (e^{iφ/2}
// is the conjugate of e^{-iφ/2}, which is exact in IEEE arithmetic), where
// the unfused path recomputed it for every matrixInto/derivInto call.
type segTrig struct {
	// Layer segments: control (C) and target (T) rotation trig.
	cC, sC   float64    // cos/sin of θ_c/2
	emC, epC complex128 // e^{∓iφ_c/2}
	cT, sT   float64
	emT, epT complex128
	rC, rT   [4]complex128 // RZ·RY per qubit, reused by the derivatives
	// U3 segments: cC/sC hold cos/sin of θ/2, and
	el, eph, ephl complex128 // e^{iλ}, e^{iφ}, e^{i(φ+λ)}
}

// rotInto writes RZ(φ)·RY(θ) = [[e^{-iφ/2}c, -e^{-iφ/2}s], [e^{iφ/2}s,
// e^{iφ/2}c]] from cached trig.
func rotInto(dst *[4]complex128, c, s float64, em, ep complex128) {
	dst[0] = em * complex(c, 0)
	dst[1] = em * complex(-s, 0)
	dst[2] = ep * complex(s, 0)
	dst[3] = ep * complex(c, 0)
}

// dRotRYInto writes ∂(RZ·RY)/∂θ = RZ·(-i/2)Y·RY.
func dRotRYInto(dst *[4]complex128, c, s float64, em, ep complex128) {
	dst[0] = em * complex(-s/2, 0)
	dst[1] = em * complex(-c/2, 0)
	dst[2] = ep * complex(c/2, 0)
	dst[3] = ep * complex(-s/2, 0)
}

// dRotRZInto writes ∂(RZ·RY)/∂φ = (-i/2)Z·RZ·RY.
func dRotRZInto(dst *[4]complex128, c, s float64, em, ep complex128) {
	mi, pi := complex(0, -0.5), complex(0, 0.5)
	dst[0] = mi * em * complex(c, 0)
	dst[1] = mi * em * complex(-s, 0)
	dst[2] = pi * ep * complex(s, 0)
	dst[3] = pi * ep * complex(c, 0)
}

// kron2Into writes the Kronecker product a ⊗ b (a on the most significant
// local bit) into dst.
func kron2Into(dst *[16]complex128, a, b *[4]complex128) {
	for ic := 0; ic < 2; ic++ {
		for it := 0; it < 2; it++ {
			r := (ic*2 + it) * 4
			for jc := 0; jc < 2; jc++ {
				av := a[ic*2+jc]
				dst[r+jc*2] = av * b[it*2]
				dst[r+jc*2+1] = av * b[it*2+1]
			}
		}
	}
}

// swapCols23 right-multiplies a 4x4 matrix by CX (control = MSB) in place:
// CX permutes basis states 2 and 3, so M·CX just swaps columns 2 and 3.
func swapCols23(dst *[16]complex128) {
	for r := 0; r < 16; r += 4 {
		dst[r+2], dst[r+3] = dst[r+3], dst[r+2]
	}
}

// objPool amortizes objective scratch across the nodes of one synthesis
// run. Both search strategies call optimizeNode sequentially and every
// node shares the same target, so the U† copy and the dim×dim matrix
// chain are built once per Synthesize instead of once per node. A pool
// (and the objectives borrowing from it) must not be shared across
// goroutines.
type objPool struct {
	target *linalg.Matrix
	mdag   *linalg.Matrix
	dim    int
	ident  *linalg.Matrix   // constant identity: fwd[0] of every objective
	mats   []*linalg.Matrix // reusable fwd[1..] chain, grown on demand
	bwd    *linalg.Matrix
	vbuf   *linalg.Matrix
	tbuf   []complex128
	segs   []segment
	trig   []segTrig
	gmats  [][16]complex128
	fwd    []*linalg.Matrix
}

func newObjPool(target *linalg.Matrix) *objPool {
	dim := target.Rows
	p := &objPool{
		target: target,
		mdag:   target.Dagger(),
		dim:    dim,
		ident:  linalg.New(dim, dim),
		bwd:    linalg.New(dim, dim),
		vbuf:   linalg.New(dim, dim),
		tbuf:   make([]complex128, 4*dim),
	}
	setIdentity(p.ident)
	return p
}

// objective evaluates f(θ) = 1 - |Tr(U†V(θ))|²/N² and its gradient for an
// ansatz against a target unitary. It borrows scratch from an objPool, so
// one objective instance must not be shared across goroutines and becomes
// invalid once the next objective is built from the same pool. The
// evaluation loop is allocation-free: segment matrices are written into
// pool-owned buffers, computed once per evaluation in the forward pass and
// reused by the backward pass, and every index table is unrolled into the
// k=1/k=2 kernels.
type objective struct {
	a      *ansatz
	target *linalg.Matrix // U
	mdag   *linalg.Matrix // U†
	dim    int
	segs   []segment
	trig   []segTrig        // per-segment trig cache (layer segments only)
	gmats  [][16]complex128 // per-segment gate matrix, fwd → bwd reuse
	fwd    []*linalg.Matrix // fwd[k] = S_k···S_1, fwd[0] = I (pool constant)
	bwd    *linalg.Matrix   // scratch: R = U†·S_K···S_{k+1}
	vbuf   *linalg.Matrix   // scratch product for value()
	tbuf   []complex128     // gathered product blocks (up to 4*dim)
	dbuf   [16]complex128   // current segment's derivative matrix
	rbuf   [4]complex128    // 2x2 derivative factor scratch
}

func newObjective(a *ansatz, target *linalg.Matrix) *objective {
	return newObjectiveFrom(newObjPool(target), a)
}

func newObjectiveFrom(p *objPool, a *ansatz) *objective {
	p.segs = compileSegments(a.ops, p.segs[:0])
	ns := len(p.segs)
	for len(p.trig) < ns {
		p.trig = append(p.trig, segTrig{})
	}
	for len(p.gmats) < ns {
		p.gmats = append(p.gmats, [16]complex128{})
	}
	for len(p.mats) < ns {
		p.mats = append(p.mats, linalg.New(p.dim, p.dim))
	}
	p.fwd = append(p.fwd[:0], p.ident)
	p.fwd = append(p.fwd, p.mats[:ns]...)
	return &objective{
		a:      a,
		target: p.target,
		mdag:   p.mdag,
		dim:    p.dim,
		segs:   p.segs,
		trig:   p.trig[:ns],
		gmats:  p.gmats[:ns],
		fwd:    p.fwd,
		bwd:    p.bwd,
		vbuf:   p.vbuf,
		tbuf:   p.tbuf,
	}
}

// setIdentity resets m to the identity without allocating.
func setIdentity(m *linalg.Matrix) {
	for i := range m.Data {
		m.Data[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] = 1
	}
}

// applyOpLeft computes m ← G_full·m for an ansatz op whose small matrix is
// in g, dispatching to the unrolled kernel for the op's arity.
func applyOpLeft(m *linalg.Matrix, op aop, g *[16]complex128) {
	if op.kind == opCX {
		linalg.ApplyLeft2(m, g, op.q1, op.q2)
	} else {
		linalg.ApplyLeft1(m, (*[4]complex128)(g[:4]), op.q1)
	}
}

// applyOpRight computes m ← m·G_full for an ansatz op.
func applyOpRight(m *linalg.Matrix, op aop, g *[16]complex128) {
	if op.kind == opCX {
		linalg.ApplyRight2(m, g, op.q1, op.q2)
	} else {
		linalg.ApplyRight1(m, (*[4]complex128)(g[:4]), op.q1)
	}
}

// segMatrix computes segment k's gate matrix into gmats[k] (and, for
// layer/U3 segments, fills the trig cache reused by the backward pass).
func (o *objective) segMatrix(k int, params []float64) {
	sg := &o.segs[k]
	if !sg.layer {
		if sg.op.kind == opU3 {
			o.u3Matrix(k, params)
		} else {
			sg.op.matrixInto(params, o.gmats[k][:])
		}
		return
	}
	tr := &o.trig[k]
	tr.sC, tr.cC = math.Sincos(params[sg.pidx] / 2)
	tr.emC = expi(-params[sg.pidx+1] / 2)
	tr.epC = complex(real(tr.emC), -imag(tr.emC))
	tr.sT, tr.cT = math.Sincos(params[sg.pidx+2] / 2)
	tr.emT = expi(-params[sg.pidx+3] / 2)
	tr.epT = complex(real(tr.emT), -imag(tr.emT))
	rotInto(&tr.rC, tr.cC, tr.sC, tr.emC, tr.epC)
	rotInto(&tr.rT, tr.cT, tr.sT, tr.emT, tr.epT)
	kron2Into(&o.gmats[k], &tr.rC, &tr.rT)
	swapCols23(&o.gmats[k])
}

// u3Matrix computes a U3 segment's 2x2 matrix with one Sincos per angle
// (e^{i(φ+λ)} = e^{iφ}·e^{iλ}), caching the trig so the backward pass
// derives all three parameter derivatives without recomputing it.
func (o *objective) u3Matrix(k int, params []float64) {
	sg := &o.segs[k]
	tr := &o.trig[k]
	p := sg.op.pidx
	tr.sC, tr.cC = math.Sincos(params[p] / 2)
	tr.el = expi(params[p+2])
	tr.eph = expi(params[p+1])
	tr.ephl = tr.eph * tr.el
	g := &o.gmats[k]
	g[0] = complex(tr.cC, 0)
	g[1] = -tr.el * complex(tr.sC, 0)
	g[2] = tr.eph * complex(tr.sC, 0)
	g[3] = tr.ephl * complex(tr.cC, 0)
}

// u3Deriv writes ∂U3/∂θ_j into dst from the cached trig (same formulas as
// aop.derivInto, with the exponentials reused).
func (o *objective) u3Deriv(k, j int, dst *[4]complex128) {
	tr := &o.trig[k]
	c, s := tr.cC, tr.sC
	switch j {
	case 0: // d/dθ
		dst[0] = complex(-s/2, 0)
		dst[1] = -tr.el * complex(c/2, 0)
		dst[2] = tr.eph * complex(c/2, 0)
		dst[3] = tr.ephl * complex(-s/2, 0)
	case 1: // d/dφ
		dst[0] = 0
		dst[1] = 0
		dst[2] = 1i * tr.eph * complex(s, 0)
		dst[3] = 1i * tr.ephl * complex(c, 0)
	case 2: // d/dλ
		dst[0] = 0
		dst[1] = -1i * tr.el * complex(s, 0)
		dst[2] = 0
		dst[3] = 1i * tr.ephl * complex(c, 0)
	default:
		panic("synth: u3 derivative index out of range")
	}
}

// trace2 contracts a 2x2 partial trace (from LayerGradContract) against a
// 2x2 derivative factor: Σ w[i][j]·x[j][i].
func trace2(w, x *[4]complex128) complex128 {
	return w[0]*x[0] + w[1]*x[2] + w[2]*x[1] + w[3]*x[3]
}

// applySegLeft computes m ← S_full·m in place for segment k.
func (o *objective) applySegLeft(m *linalg.Matrix, k int) {
	sg := &o.segs[k]
	if sg.layer {
		linalg.ApplyLeft2(m, &o.gmats[k], sg.c, sg.t)
	} else {
		applyOpLeft(m, sg.op, &o.gmats[k])
	}
}

// applySegLeftInto computes dst ← S_full·src for segment k, fusing the
// copy and the apply of the forward pass.
func (o *objective) applySegLeftInto(dst, src *linalg.Matrix, k int) {
	sg := &o.segs[k]
	switch {
	case sg.layer:
		linalg.ApplyLeft2Into(dst, src, &o.gmats[k], sg.c, sg.t)
	case sg.op.kind == opCX:
		linalg.ApplyLeft2Into(dst, src, &o.gmats[k], sg.op.q1, sg.op.q2)
	default:
		if src == o.fwd[0] {
			// fwd[0] is the pool's constant identity, so S·I is just the
			// embedding of the gate — no dense multiply needed.
			linalg.EmbedGate1(dst, (*[4]complex128)(o.gmats[k][:4]), sg.op.q1)
		} else {
			linalg.ApplyLeft1Into(dst, src, (*[4]complex128)(o.gmats[k][:4]), sg.op.q1)
		}
	}
}

// applySegRight computes m ← m·S_full in place for segment k, reusing the
// gate matrix computed by the forward pass.
func (o *objective) applySegRight(m *linalg.Matrix, k int) {
	sg := &o.segs[k]
	if sg.layer {
		linalg.ApplyRight2(m, &o.gmats[k], sg.c, sg.t)
	} else {
		applyOpRight(m, sg.op, &o.gmats[k])
	}
}

// value returns f(θ) without gradient work.
func (o *objective) value(params []float64) float64 {
	v := o.vbuf
	setIdentity(v)
	for k := range o.segs {
		o.segMatrix(k, params)
		o.applySegLeft(v, k)
	}
	t := linalg.HSInner(o.target, v)
	return o.distanceSq(t)
}

func (o *objective) distanceSq(t complex128) float64 {
	n := float64(o.dim)
	f := 1 - (real(t)*real(t)+imag(t)*imag(t))/(n*n)
	if f < 0 {
		return 0
	}
	return f
}

// valueGrad evaluates f and writes ∂f/∂θ into grad.
func (o *objective) valueGrad(params, grad []float64) float64 {
	segs := o.segs
	// Forward pass: fwd[0] = I, fwd[k] = S_k···S_1. Segment matrices land
	// in gmats and are reused by the backward pass.
	for k := range segs {
		o.segMatrix(k, params)
		o.applySegLeftInto(o.fwd[k+1], o.fwd[k], k)
	}
	vFull := o.fwd[len(segs)]
	t := linalg.HSInner(o.target, vFull)
	f := o.distanceSq(t)

	// Backward pass: R starts at U† and absorbs segments from the end.
	o.mdag.CopyInto(o.bwd)
	n2 := float64(o.dim) * float64(o.dim)
	tconj := cmplx.Conj(t)
	for k := len(segs) - 1; k >= 0; k-- {
		sg := &segs[k]
		if sg.layer {
			// ∂T/∂θ_j = Tr(F_{k-1}·R_k·dL) (cyclic rearrangement of
			// Tr(R dL F)). Every dL factors as (dA⊗B)·CX or (A⊗dB)·CX, so
			// one fused gather+contract serves all four layer parameters
			// and each derivative reduces to a 2x2 trace.
			tr := &o.trig[k]
			var w, v [4]complex128
			linalg.LayerGradContract(o.fwd[k], o.bwd, sg.c, sg.t, &tr.rC, &tr.rT, &w, &v)
			// f = 1 - T T̄ / N² ⇒ ∂f = -2 Re(T̄ ∂T)/N².
			dRotRYInto(&o.rbuf, tr.cC, tr.sC, tr.emC, tr.epC)
			grad[sg.pidx] = -2 * real(tconj*trace2(&w, &o.rbuf)) / n2
			dRotRZInto(&o.rbuf, tr.cC, tr.sC, tr.emC, tr.epC)
			grad[sg.pidx+1] = -2 * real(tconj*trace2(&w, &o.rbuf)) / n2
			dRotRYInto(&o.rbuf, tr.cT, tr.sT, tr.emT, tr.epT)
			grad[sg.pidx+2] = -2 * real(tconj*trace2(&v, &o.rbuf)) / n2
			dRotRZInto(&o.rbuf, tr.cT, tr.sT, tr.emT, tr.epT)
			grad[sg.pidx+3] = -2 * real(tconj*trace2(&v, &o.rbuf)) / n2
		} else if np := sg.op.nparams(); np > 0 {
			// Non-layer parameterized ops are 1-qubit (seed U3s): gather
			// the 2x2 blocks once and reuse for every parameter. For the
			// first segment fwd[0] = I, so the gather is a plain copy.
			if k == 0 {
				linalg.GatherIdentityBlocks1(o.tbuf[:2*o.dim], o.bwd, sg.op.q1)
			} else {
				linalg.GatherProdBlocks1(o.tbuf[:2*o.dim], o.fwd[k], o.bwd, sg.op.q1)
			}
			for j := 0; j < np; j++ {
				if sg.op.kind == opU3 {
					o.u3Deriv(k, j, &o.rbuf)
				} else {
					sg.op.derivInto(params, j, o.dbuf[:])
					o.rbuf = *(*[4]complex128)(o.dbuf[:4])
				}
				dT := linalg.TraceBlocks1(o.tbuf[:2*o.dim], &o.rbuf)
				grad[sg.op.pidx+j] = -2 * real(tconj*dT) / n2
			}
		}
		if k > 0 {
			// After the first segment's gradient the accumulator is dead;
			// skip the final absorb.
			o.applySegRight(o.bwd, k)
		}
	}
	return f
}
