package synth

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func benchObjective3Q(b *testing.B) (*objective, []float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	target := linalg.RandomUnitary(8, rng)
	a := newSeedAnsatz(3).withLayer(0, 1).withLayer(1, 2).withLayer(0, 2)
	obj := newObjective(a, target)
	params := make([]float64, a.nparams)
	grad := make([]float64, a.nparams)
	for i := range params {
		params[i] = rng.Float64()
	}
	return obj, params, grad
}

func BenchmarkObjectiveGradient3Q(b *testing.B) {
	obj, params, grad := benchObjective3Q(b)
	obj.valueGrad(params, grad) // warm up scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.valueGrad(params, grad)
	}
}

func BenchmarkObjectiveValue3Q(b *testing.B) {
	obj, params, _ := benchObjective3Q(b)
	obj.value(params)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.value(params)
	}
}

func BenchmarkApplyLeft1Q(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := linalg.RandomUnitary(16, rng)
	g := linalg.RandomUnitary(2, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.ApplyLeft1(m, (*[4]complex128)(g.Data), 2)
	}
}

func BenchmarkApplyLeft2Q(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := linalg.RandomUnitary(16, rng)
	g := linalg.RandomUnitary(4, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.ApplyLeft2(m, (*[16]complex128)(g.Data), 3, 1)
	}
}

func BenchmarkSynthesizeExact2Q(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	target := linalg.RandomUnitary(4, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(target, Options{Threshold: 1e-6, MaxCNOTs: 3, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesizeHarvest3Q(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	target := linalg.RandomUnitary(8, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(target, Options{
			Threshold: 0.05, MaxCNOTs: 6, HarvestAll: true, Beam: 1, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
