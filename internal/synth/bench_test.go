package synth

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func BenchmarkObjectiveGradient3Q(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	target := linalg.RandomUnitary(8, rng)
	a := newSeedAnsatz(3).withLayer(0, 1).withLayer(1, 2).withLayer(0, 2)
	obj := newObjective(a, target)
	params := make([]float64, a.nparams)
	grad := make([]float64, a.nparams)
	for i := range params {
		params[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.valueGrad(params, grad)
	}
}

func BenchmarkSynthesizeExact2Q(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	target := linalg.RandomUnitary(4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(target, Options{Threshold: 1e-6, MaxCNOTs: 3, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSynthesizeHarvest3Q(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	target := linalg.RandomUnitary(8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(target, Options{
			Threshold: 0.05, MaxCNOTs: 6, HarvestAll: true, Beam: 1, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
