package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/sim"
)

// randomAnsatz grows a random LEAP ansatz with the given number of CNOT
// layers on n qubits.
func randomAnsatz(n, layers int, rng *rand.Rand) *ansatz {
	a := newSeedAnsatz(n)
	for i := 0; i < layers; i++ {
		c := rng.Intn(n)
		t := rng.Intn(n)
		for t == c {
			t = rng.Intn(n)
		}
		a = a.withLayer(c, t)
	}
	return a
}

func randomParams(n int, rng *rand.Rand) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = rng.Float64()*2*math.Pi - math.Pi
	}
	return p
}

func TestAnsatzMatrixIntoMatchesGate(t *testing.T) {
	// matrixInto must reproduce the gate-registry matrices exactly: the
	// objective optimizes with matrixInto but candidates are instantiated
	// through toCircuit/package gate, so any drift between the two would
	// make reported distances disagree with the emitted circuits.
	rng := rand.New(rand.NewSource(41))
	a := randomAnsatz(3, 4, rng)
	params := randomParams(a.nparams, rng)
	var buf [16]complex128
	for _, op := range a.ops {
		op.matrixInto(params, buf[:])
		want := opGateMatrix(op, params)
		d := op.dim()
		for i := 0; i < d*d; i++ {
			if diff := buf[i] - want.Data[i]; real(diff) != 0 || imag(diff) != 0 {
				t.Fatalf("op kind=%d entry %d: matrixInto %v != gate %v", op.kind, i, buf[i], want.Data[i])
			}
		}
	}
}

// opGateMatrix builds the op's matrix through the gate registry (the path
// toCircuit-instantiated candidates take).
func opGateMatrix(o aop, params []float64) *linalg.Matrix {
	c := (&ansatz{n: 2, ops: []aop{{kind: o.kind, q1: 0, q2: 1, pidx: o.pidx}}}).toCircuit(params)
	return sim.OpMatrix(c.Ops[0])
}

func TestAnsatzDerivIntoMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomAnsatz(2, 2, rng)
	params := randomParams(a.nparams, rng)
	const h = 1e-6
	var d, p, m [16]complex128
	for _, op := range a.ops {
		for j := 0; j < op.nparams(); j++ {
			op.derivInto(params, j, d[:])
			orig := params[op.pidx+j]
			params[op.pidx+j] = orig + h
			op.matrixInto(params, p[:])
			params[op.pidx+j] = orig - h
			op.matrixInto(params, m[:])
			params[op.pidx+j] = orig
			dim := op.dim()
			for i := 0; i < dim*dim; i++ {
				num := (p[i] - m[i]) / (2 * h)
				if diff := num - d[i]; math.Hypot(real(diff), imag(diff)) > 1e-8 {
					t.Errorf("op kind=%d param %d entry %d: derivInto %v, numeric %v", op.kind, j, i, d[i], num)
				}
			}
		}
	}
}

func TestObjectiveValueMatchesSimulatedCircuit(t *testing.T) {
	// The allocation-free evaluation path must agree with the ground
	// truth: instantiate the circuit, build its unitary with the
	// simulator, compute the HS distance directly.
	for _, n := range []int{3, 4, 5} {
		rng := rand.New(rand.NewSource(int64(50 + n)))
		target := linalg.RandomUnitary(1<<n, rng)
		a := randomAnsatz(n, 3, rng)
		obj := newObjective(a, target)
		for trial := 0; trial < 3; trial++ {
			params := randomParams(a.nparams, rng)
			got := obj.value(params)
			u := sim.Unitary(a.toCircuit(params))
			d := linalg.HSDistance(target, u)
			want := d * d
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("n=%d trial %d: value=%g, simulated %g", n, trial, got, want)
			}
			grad := make([]float64, a.nparams)
			if f := obj.valueGrad(params, grad); math.Abs(f-got) > 1e-12 {
				t.Errorf("n=%d trial %d: valueGrad f=%g != value %g", n, trial, f, got)
			}
		}
	}
}

func TestObjectiveGradientMatchesNumeric345(t *testing.T) {
	// Analytic gradients vs central finite differences on random 3-5
	// qubit targets (the 2-qubit case is TestObjectiveGradientMatchesNumeric).
	for _, n := range []int{3, 4, 5} {
		rng := rand.New(rand.NewSource(int64(60 + n)))
		target := linalg.RandomUnitary(1<<n, rng)
		a := randomAnsatz(n, 2, rng)
		obj := newObjective(a, target)
		params := randomParams(a.nparams, rng)
		grad := make([]float64, a.nparams)
		obj.valueGrad(params, grad)
		const h = 1e-6
		for i := range params {
			orig := params[i]
			params[i] = orig + h
			fp := obj.value(params)
			params[i] = orig - h
			fm := obj.value(params)
			params[i] = orig
			num := (fp - fm) / (2 * h)
			if math.Abs(num-grad[i]) > 1e-5 {
				t.Errorf("n=%d grad[%d] = %g, numeric %g", n, i, grad[i], num)
			}
		}
	}
}

func TestObjectiveAllocationFree(t *testing.T) {
	// The tentpole claim: steady-state objective evaluation performs zero
	// heap allocations.
	rng := rand.New(rand.NewSource(70))
	target := linalg.RandomUnitary(8, rng)
	a := randomAnsatz(3, 3, rng)
	obj := newObjective(a, target)
	params := randomParams(a.nparams, rng)
	grad := make([]float64, a.nparams)
	obj.valueGrad(params, grad) // warm up
	if allocs := testing.AllocsPerRun(50, func() {
		obj.value(params)
	}); allocs != 0 {
		t.Errorf("value allocates %v times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		obj.valueGrad(params, grad)
	}); allocs != 0 {
		t.Errorf("valueGrad allocates %v times per call, want 0", allocs)
	}
}
