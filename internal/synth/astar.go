package synth

import (
	"container/heap"

	"repro/internal/linalg"
)

// Strategy selects the tree-search policy used by Synthesize.
type Strategy int

const (
	// StrategyBeam keeps the best Beam nodes per depth with LEAP-style
	// prefix reseeding (the default; cheap and predictable).
	StrategyBeam Strategy = iota
	// StrategyAStar is LEAP's actual mechanism: a best-first search over
	// the layer tree ordered by process distance, bounded by NodeBudget
	// expansions.
	StrategyAStar
)

// aStarNode is one frontier entry of the best-first search.
type aStarNode struct {
	node
	depth int
	index int // heap bookkeeping
}

// nodeQueue is a min-heap on (distance, depth): among equal distances,
// shallower circuits first (fewer CNOTs preferred).
type nodeQueue []*aStarNode

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	// lint:ignore floateq heap comparator tie-break: only bitwise-equal distances fall through to depth; a tolerance here would break the strict weak ordering heap.Interface requires
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].depth < q[j].depth
}
func (q nodeQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *nodeQueue) Push(x any) {
	n := x.(*aStarNode)
	n.index = len(*q)
	*q = append(*q, n)
}
func (q *nodeQueue) Pop() any {
	old := *q
	n := old[len(old)-1]
	old[len(old)-1] = nil
	*q = old[:len(old)-1]
	return n
}

// searchAStar runs LEAP-style best-first search. optimizeNode evaluates a
// template (with warm-start parameters) and h harvests every optimized
// node; an optimizeNode error (cancellation, injected fault) aborts the
// search and is returned with the harvest left intact. The search stops
// when the threshold is met (unless harvestAll), the node budget is
// exhausted, or the frontier empties.
func searchAStar(
	target *linalg.Matrix,
	pairs [][2]int,
	opts Options,
	optimizeNode func(a *ansatz, warm []float64) (node, error),
	h *harvester,
) error {
	n := 0
	for 1<<n < target.Rows {
		n++
	}
	budget := opts.NodeBudget
	root, err := optimizeNode(newSeedAnsatz(n), nil)
	h.add(root, target)
	if err != nil {
		return err
	}
	if root.dist < opts.Threshold && !opts.HarvestAll {
		return nil
	}

	frontier := &nodeQueue{}
	heap.Init(frontier)
	heap.Push(frontier, &aStarNode{node: root, depth: 0})
	expanded := 0

	for frontier.Len() > 0 && expanded < budget {
		cur := heap.Pop(frontier).(*aStarNode)
		if cur.depth >= opts.MaxCNOTs {
			continue
		}
		expanded++
		for _, pr := range pairs {
			child := cur.a.withLayer(pr[0], pr[1])
			nd, err := optimizeNode(child, cur.params)
			h.add(nd, target)
			if err != nil {
				return err
			}
			if nd.dist < opts.Threshold && !opts.HarvestAll {
				return nil
			}
			heap.Push(frontier, &aStarNode{node: nd, depth: cur.depth + 1})
		}
		// Frontier cap: keep the best half when it grows too large
		// (bounds memory like LEAP's periodic re-rooting).
		if frontier.Len() > 4*budget {
			trimmed := append(nodeQueue(nil), (*frontier)[:2*budget]...)
			frontier = &trimmed
			heap.Init(frontier)
		}
	}
	return nil
}
