package synth

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/linalg"
)

func TestTiming3Qubit(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	rng := rand.New(rand.NewSource(42))
	target := linalg.RandomUnitary(8, rng)
	start := time.Now()
	res, err := Synthesize(target, Options{Seed: 1, MaxCNOTs: 8, HarvestAll: true, Threshold: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("3q random: best dist=%g cnots=%d, %d candidates, evals=%d, took %v\n",
		res.Best.Distance, res.Best.CNOTs, len(res.Candidates), res.Evaluations, time.Since(start))
}
