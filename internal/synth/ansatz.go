// Package synth implements LEAP-style bottom-up approximate circuit
// synthesis (QUEST Sec. 3.2-3.5): a layered CNOT + rotation ansatz grown
// one layer at a time, with rotation angles fitted by L-BFGS against the
// Hilbert-Schmidt process distance using analytic gradients, and a beam
// search over CNOT placements that harvests MULTIPLE approximate solutions
// of different CNOT counts — QUEST's modification of the LEAP compiler.
package synth

import (
	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
)

// opKind enumerates the ansatz building blocks.
type opKind uint8

const (
	opU3 opKind = iota // 3 params
	opRY               // 1 param
	opRZ               // 1 param
	opCX               // 0 params
)

// aop is one slot in the ansatz template.
type aop struct {
	kind opKind
	q1   int // single-qubit target, or CX control
	q2   int // CX target
	pidx int // offset of this op's parameters in the parameter vector
}

func (o aop) nparams() int {
	switch o.kind {
	case opU3:
		return 3
	case opRY, opRZ:
		return 1
	}
	return 0
}

// ansatz is a parameterized circuit template on n qubits.
type ansatz struct {
	n       int
	ops     []aop
	nparams int
}

// newSeedAnsatz returns the root template: one U3 on every qubit.
func newSeedAnsatz(n int) *ansatz {
	a := &ansatz{n: n}
	for q := 0; q < n; q++ {
		a.ops = append(a.ops, aop{kind: opU3, q1: q, pidx: a.nparams})
		a.nparams += 3
	}
	return a
}

// withLayer returns a copy of a extended by one LEAP layer: CX(c,t)
// followed by RY and RZ rotations on both qubits (Fig. 5 of the paper).
func (a *ansatz) withLayer(c, t int) *ansatz {
	b := &ansatz{n: a.n, nparams: a.nparams}
	b.ops = append(append([]aop(nil), a.ops...),
		aop{kind: opCX, q1: c, q2: t})
	for _, q := range []int{c, t} {
		b.ops = append(b.ops,
			aop{kind: opRY, q1: q, pidx: b.nparams},
			aop{kind: opRZ, q1: q, pidx: b.nparams + 1})
		b.nparams += 2
	}
	return b
}

// cnotCount returns the number of CX slots in the template.
func (a *ansatz) cnotCount() int {
	var n int
	for _, o := range a.ops {
		if o.kind == opCX {
			n++
		}
	}
	return n
}

// toCircuit instantiates the template with concrete parameters.
func (a *ansatz) toCircuit(params []float64) *circuit.Circuit {
	c := circuit.New(a.n)
	for _, o := range a.ops {
		switch o.kind {
		case opU3:
			c.U3(o.q1, params[o.pidx], params[o.pidx+1], params[o.pidx+2])
		case opRY:
			c.RY(o.q1, params[o.pidx])
		case opRZ:
			c.RZ(o.q1, params[o.pidx])
		case opCX:
			c.CX(o.q1, o.q2)
		}
	}
	return c
}

// smallMatrix returns the 2x2 or 4x4 matrix for the op at the given params.
func (o aop) smallMatrix(params []float64) *linalg.Matrix {
	switch o.kind {
	case opU3:
		return gate.U3Matrix(params[o.pidx], params[o.pidx+1], params[o.pidx+2])
	case opRY:
		return gate.RYMatrix(params[o.pidx])
	case opRZ:
		return gate.RZMatrix(params[o.pidx])
	case opCX:
		return cxMatrix
	}
	panic("synth: unknown op kind")
}

// smallDeriv returns d(matrix)/d(param j) for parameterized ops.
func (o aop) smallDeriv(params []float64, j int) *linalg.Matrix {
	switch o.kind {
	case opU3:
		return gate.MustLookup("u3").Deriv(params[o.pidx:o.pidx+3], j)
	case opRY:
		return gate.MustLookup("ry").Deriv(params[o.pidx:o.pidx+1], 0)
	case opRZ:
		return gate.MustLookup("rz").Deriv(params[o.pidx:o.pidx+1], 0)
	}
	panic("synth: derivative of parameterless op")
}

// qubits returns the op's qubit list in gate-operand order.
func (o aop) qubits() []int {
	if o.kind == opCX {
		return []int{o.q1, o.q2}
	}
	return []int{o.q1}
}

var cxMatrix = gate.MustLookup("cx").Build(nil)
