// Package synth implements LEAP-style bottom-up approximate circuit
// synthesis (QUEST Sec. 3.2-3.5): a layered CNOT + rotation ansatz grown
// one layer at a time, with rotation angles fitted by L-BFGS against the
// Hilbert-Schmidt process distance using analytic gradients, and a beam
// search over CNOT placements that harvests MULTIPLE approximate solutions
// of different CNOT counts — QUEST's modification of the LEAP compiler.
package synth

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/gate"
)

// opKind enumerates the ansatz building blocks.
type opKind uint8

const (
	opU3 opKind = iota // 3 params
	opRY               // 1 param
	opRZ               // 1 param
	opCX               // 0 params
)

// aop is one slot in the ansatz template.
type aop struct {
	kind opKind
	q1   int // single-qubit target, or CX control
	q2   int // CX target
	pidx int // offset of this op's parameters in the parameter vector
}

func (o aop) nparams() int {
	switch o.kind {
	case opU3:
		return 3
	case opRY, opRZ:
		return 1
	}
	return 0
}

// ansatz is a parameterized circuit template on n qubits.
type ansatz struct {
	n       int
	ops     []aop
	nparams int
}

// newSeedAnsatz returns the root template: one U3 on every qubit.
func newSeedAnsatz(n int) *ansatz {
	a := &ansatz{n: n}
	for q := 0; q < n; q++ {
		a.ops = append(a.ops, aop{kind: opU3, q1: q, pidx: a.nparams})
		a.nparams += 3
	}
	return a
}

// withLayer returns a copy of a extended by one LEAP layer: CX(c,t)
// followed by RY and RZ rotations on both qubits (Fig. 5 of the paper).
func (a *ansatz) withLayer(c, t int) *ansatz {
	b := &ansatz{n: a.n, nparams: a.nparams}
	b.ops = append(append([]aop(nil), a.ops...),
		aop{kind: opCX, q1: c, q2: t})
	for _, q := range []int{c, t} {
		b.ops = append(b.ops,
			aop{kind: opRY, q1: q, pidx: b.nparams},
			aop{kind: opRZ, q1: q, pidx: b.nparams + 1})
		b.nparams += 2
	}
	return b
}

// cnotCount returns the number of CX slots in the template.
func (a *ansatz) cnotCount() int {
	var n int
	for _, o := range a.ops {
		if o.kind == opCX {
			n++
		}
	}
	return n
}

// toCircuit instantiates the template with concrete parameters.
func (a *ansatz) toCircuit(params []float64) *circuit.Circuit {
	c := circuit.New(a.n)
	for _, o := range a.ops {
		switch o.kind {
		case opU3:
			c.U3(o.q1, params[o.pidx], params[o.pidx+1], params[o.pidx+2])
		case opRY:
			c.RY(o.q1, params[o.pidx])
		case opRZ:
			c.RZ(o.q1, params[o.pidx])
		case opCX:
			c.CX(o.q1, o.q2)
		}
	}
	return c
}

// expi returns e^{i t}. It matches gate.e bit-for-bit (cmplx.Exp with a
// zero real part reduces to cos + i sin).
func expi(t float64) complex128 {
	s, c := math.Sincos(t)
	return complex(c, s)
}

// matrixInto writes the op's 2x2 or 4x4 matrix (row-major) into dst
// without allocating. dst must have room for dim²; see aop.dim. The
// formulas match package gate's constructors (gate.U3Matrix etc.) exactly;
// gate stays the source of truth and the equivalence is enforced by
// TestAnsatzMatrixIntoMatchesGate.
func (o aop) matrixInto(params []float64, dst []complex128) {
	switch o.kind {
	case opU3:
		theta, phi, lambda := params[o.pidx], params[o.pidx+1], params[o.pidx+2]
		c, s := math.Cos(theta/2), math.Sin(theta/2)
		dst[0] = complex(c, 0)
		dst[1] = -expi(lambda) * complex(s, 0)
		dst[2] = expi(phi) * complex(s, 0)
		dst[3] = expi(phi+lambda) * complex(c, 0)
	case opRY:
		c, s := math.Cos(params[o.pidx]/2), math.Sin(params[o.pidx]/2)
		dst[0] = complex(c, 0)
		dst[1] = complex(-s, 0)
		dst[2] = complex(s, 0)
		dst[3] = complex(c, 0)
	case opRZ:
		theta := params[o.pidx]
		dst[0] = expi(-theta / 2)
		dst[1] = 0
		dst[2] = 0
		dst[3] = expi(theta / 2)
	case opCX:
		copy(dst, cxData[:])
	default:
		panic("synth: unknown op kind")
	}
}

// derivInto writes d(matrix)/d(param j) into dst without allocating.
func (o aop) derivInto(params []float64, j int, dst []complex128) {
	switch o.kind {
	case opU3:
		theta, phi, lambda := params[o.pidx], params[o.pidx+1], params[o.pidx+2]
		c, s := math.Cos(theta/2), math.Sin(theta/2)
		switch j {
		case 0: // d/dθ
			dst[0] = complex(-s/2, 0)
			dst[1] = -expi(lambda) * complex(c/2, 0)
			dst[2] = expi(phi) * complex(c/2, 0)
			dst[3] = expi(phi+lambda) * complex(-s/2, 0)
		case 1: // d/dφ
			dst[0] = 0
			dst[1] = 0
			dst[2] = 1i * expi(phi) * complex(s, 0)
			dst[3] = 1i * expi(phi+lambda) * complex(c, 0)
		case 2: // d/dλ
			dst[0] = 0
			dst[1] = -1i * expi(lambda) * complex(s, 0)
			dst[2] = 0
			dst[3] = 1i * expi(phi+lambda) * complex(c, 0)
		default:
			panic("synth: u3 derivative index out of range")
		}
	case opRY:
		// (-i/2)·Y·RY(θ).
		c, s := math.Cos(params[o.pidx]/2), math.Sin(params[o.pidx]/2)
		dst[0] = complex(-s/2, 0)
		dst[1] = complex(-c/2, 0)
		dst[2] = complex(c/2, 0)
		dst[3] = complex(-s/2, 0)
	case opRZ:
		// (-i/2)·Z·RZ(θ).
		theta := params[o.pidx]
		dst[0] = complex(0, -0.5) * expi(-theta/2)
		dst[1] = 0
		dst[2] = 0
		dst[3] = complex(0, 0.5) * expi(theta/2)
	default:
		panic("synth: derivative of parameterless op")
	}
}

// dim returns the op's small-matrix dimension (2 or 4).
func (o aop) dim() int {
	if o.kind == opCX {
		return 4
	}
	return 2
}

// qubits returns the op's qubit list in gate-operand order. The hot path
// dispatches on kind/q1/q2 directly; this remains for instantiation and
// tests.
func (o aop) qubits() []int {
	if o.kind == opCX {
		return []int{o.q1, o.q2}
	}
	return []int{o.q1}
}

// cxData is the row-major CX matrix (first qubit = control = MSB).
var cxData = func() (d [16]complex128) {
	copy(d[:], gate.MustLookup("cx").Build(nil).Data)
	return
}()
