package synth

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/budget"
	"repro/internal/circuit"
	"repro/internal/faultinject"
	"repro/internal/linalg"
	"repro/internal/opt"
)

// Candidate is one synthesized circuit for a target unitary, with its
// Hilbert-Schmidt process distance and CNOT count. Candidates at many
// different CNOT counts are the raw material of QUEST's approximation
// space (Sec. 3.5).
type Candidate struct {
	// Circuit implements the approximation on local qubits 0..n-1.
	Circuit *circuit.Circuit
	// Distance is the HS process distance to the target.
	Distance float64
	// CNOTs is the circuit's CNOT count.
	CNOTs int
}

// Result is the outcome of a synthesis run.
type Result struct {
	// Best is the candidate with the smallest process distance
	// (ties broken by fewer CNOTs).
	Best Candidate
	// Candidates holds every harvested solution, sorted by (CNOTs,
	// Distance). It always contains Best.
	Candidates []Candidate
	// Evaluations counts objective evaluations across the search.
	Evaluations int
}

// Options configures Synthesize. The zero value gives exact-style
// synthesis with defaults matching the paper's setup.
type Options struct {
	// Threshold is the HS-distance success threshold ε. Once a solution
	// below it is found the tree stops growing (unless HarvestAll).
	// Default 1e-6 ("exact" synthesis).
	Threshold float64
	// MaxCNOTs bounds the tree depth: no candidate will have more CNOTs
	// than this. 0 selects a universal default budget for n qubits; a
	// negative value means "no CNOT layers at all" (rotation-only seed).
	MaxCNOTs int
	// Beam is the number of tree nodes kept per depth. Default 2.
	Beam int
	// ReseedEvery implements LEAP prefix reseeding: every this many
	// layers the beam collapses to its best node. Default 3.
	ReseedEvery int
	// Restarts is the number of extra random-restart optimizations per
	// node beyond the warm start. Default 1.
	Restarts int
	// CouplingPairs restricts CNOT placement to the listed (control,
	// target) pairs. Nil allows every ordered pair with control < target.
	CouplingPairs [][2]int
	// HarvestAll keeps growing the tree to MaxCNOTs even after the
	// threshold is met, collecting approximations at every CNOT count —
	// QUEST's modification of LEAP.
	HarvestAll bool
	// KeepPerDepth is how many candidates are retained per CNOT count
	// (best by distance). Default 4.
	KeepPerDepth int
	// Seed makes the search deterministic. Default 1.
	Seed int64
	// Strategy selects the search policy: StrategyBeam (default) or
	// StrategyAStar (LEAP's best-first search).
	Strategy Strategy
	// NodeBudget bounds the number of node expansions for StrategyAStar
	// (default 40).
	NodeBudget int
}

// Canonical returns the options with every default resolved for an
// n-qubit target — the exact configuration SynthesizeCtx runs with.
// Callers that memoize synthesis results (internal/ucache) fingerprint
// this canonical form so that, e.g., Beam:0 and Beam:2 map to the same
// cache entry.
func (o Options) Canonical(n int) Options {
	o.defaults(n)
	return o
}

func (o *Options) defaults(n int) {
	if o.Threshold == 0 {
		o.Threshold = 1e-6
	}
	switch {
	case o.MaxCNOTs == 0:
		// A generous universal budget: 3·(4^n - 3n - 1)/4 CNOTs suffice
		// for any n-qubit unitary; round up a little.
		o.MaxCNOTs = (1<<(2*n))*3/4 + 1
	case o.MaxCNOTs < 0:
		o.MaxCNOTs = 0
	}
	if o.Beam == 0 {
		o.Beam = 2
	}
	if o.ReseedEvery == 0 {
		o.ReseedEvery = 3
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
	if o.KeepPerDepth == 0 {
		o.KeepPerDepth = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.NodeBudget == 0 {
		o.NodeBudget = 40
	}
}

type node struct {
	a      *ansatz
	params []float64
	dist   float64
}

// Synthesize searches for circuits implementing the target unitary.
// The target dimension must be a power of two (2^n for n qubits, n ≥ 1).
func Synthesize(target *linalg.Matrix, opts Options) (Result, error) {
	return SynthesizeCtx(context.Background(), target, opts)
}

// SynthesizeCtx is Synthesize under a context. Cancellation is checked
// at every search-tree node and inside the optimizer inner loops; when
// ctx expires the candidates harvested so far are returned together with
// a typed, wrapped budget error (errors.Is ErrDeadline / ErrCancelled),
// so callers can keep partial approximation sets. When nothing was
// harvested yet, only the error is returned.
func SynthesizeCtx(ctx context.Context, target *linalg.Matrix, opts Options) (Result, error) {
	if !target.IsSquare() {
		return Result{}, fmt.Errorf("synth: target is %dx%d, want square", target.Rows, target.Cols)
	}
	n := 0
	for 1<<n < target.Rows {
		n++
	}
	if 1<<n != target.Rows || n < 1 {
		return Result{}, fmt.Errorf("synth: target dimension %d is not 2^n", target.Rows)
	}
	if !target.IsUnitary(1e-8) {
		return Result{}, fmt.Errorf("synth: target is not unitary")
	}
	opts.defaults(n)
	rng := rand.New(rand.NewSource(opts.Seed))

	pairs := opts.CouplingPairs
	if pairs == nil {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}

	h := &harvester{keep: opts.KeepPerDepth}
	evals := 0
	// One scratch pool serves every node: the searches optimize nodes
	// sequentially, so U† and the forward-chain matrices are shared.
	pool := newObjPool(target)

	optimizeNode := func(a *ansatz, warm []float64) (node, error) {
		best := node{a: a, dist: math.Inf(1)}
		if err := budget.Check(ctx); err != nil {
			return best, err
		}
		if err := faultinject.Fire("synth.optimize"); err != nil {
			return best, err
		}
		obj := newObjectiveFrom(pool, a)
		starts := 1 + opts.Restarts
		for s := 0; s < starts; s++ {
			x0 := make([]float64, a.nparams)
			if s == 0 && warm != nil {
				copy(x0, warm)
				// Perturb the fresh (uninitialized) tail slightly so new
				// rotations start near identity but break symmetry.
				for i := len(warm); i < len(x0); i++ {
					x0[i] = rng.NormFloat64() * 0.1
				}
			} else {
				for i := range x0 {
					x0[i] = rng.Float64()*2*math.Pi - math.Pi
				}
			}
			res, err := opt.LBFGSCtx(ctx, obj.valueGrad, x0, opt.LBFGSOptions{MaxIterations: 150})
			evals += res.Evaluations
			if res.F < best.dist*best.dist || best.params == nil {
				d := math.Sqrt(math.Max(0, res.F))
				if d < best.dist {
					best.dist = d
					best.params = res.X
				}
			}
			if err != nil {
				return best, err
			}
		}
		return best, nil
	}

	finish := func(stopErr error) (Result, error) {
		res, ok := h.result()
		res.Evaluations = evals
		if stopErr != nil {
			if !ok {
				return Result{}, fmt.Errorf("synth: %w", stopErr)
			}
			return res, fmt.Errorf("synth: %w", stopErr)
		}
		if !ok {
			return Result{}, fmt.Errorf("synth: no candidates produced")
		}
		return res, nil
	}

	if opts.Strategy == StrategyAStar {
		return finish(searchAStar(target, pairs, opts, optimizeNode, h))
	}

	// Depth 0: rotation-only seed.
	root, stopErr := optimizeNode(newSeedAnsatz(n), nil)
	h.add(root, target)
	if stopErr != nil {
		return finish(stopErr)
	}
	beam := []node{root}
	found := root.dist < opts.Threshold

depths:
	for depth := 1; depth <= opts.MaxCNOTs; depth++ {
		if found && !opts.HarvestAll {
			break
		}
		var children []node
		for _, parent := range beam {
			for _, pr := range pairs {
				child := parent.a.withLayer(pr[0], pr[1])
				nd, err := optimizeNode(child, parent.params)
				h.add(nd, target)
				if err != nil {
					stopErr = err
					break depths
				}
				children = append(children, nd)
				if nd.dist < opts.Threshold {
					found = true
				}
			}
		}
		sort.Slice(children, func(i, j int) bool { return children[i].dist < children[j].dist })
		width := opts.Beam
		if depth%opts.ReseedEvery == 0 {
			width = 1 // LEAP-style prefix fixing
		}
		if width > len(children) {
			width = len(children)
		}
		beam = children[:width]
	}

	return finish(stopErr)
}

// harvester retains the best candidates per CNOT count.
type harvester struct {
	keep    int
	byDepth map[int][]Candidate
}

func (h *harvester) add(nd node, target *linalg.Matrix) {
	if nd.params == nil {
		return
	}
	if h.byDepth == nil {
		h.byDepth = map[int][]Candidate{}
	}
	c := Candidate{
		Circuit:  nd.a.toCircuit(nd.params),
		Distance: nd.dist,
		CNOTs:    nd.a.cnotCount(),
	}
	lst := append(h.byDepth[c.CNOTs], c)
	sort.Slice(lst, func(i, j int) bool { return lst[i].Distance < lst[j].Distance })
	if len(lst) > h.keep {
		lst = lst[:h.keep]
	}
	h.byDepth[c.CNOTs] = lst
}

// result assembles the harvested candidates. ok is false when nothing
// was harvested (e.g. the search was cancelled before the first node
// finished optimizing).
func (h *harvester) result() (_ Result, ok bool) {
	var all []Candidate
	for _, lst := range h.byDepth {
		all = append(all, lst...)
	}
	if len(all) == 0 {
		return Result{}, false
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].CNOTs != all[j].CNOTs {
			return all[i].CNOTs < all[j].CNOTs
		}
		return all[i].Distance < all[j].Distance
	})
	best := all[0]
	for _, c := range all[1:] {
		if c.Distance < best.Distance-1e-15 {
			best = c
		}
	}
	return Result{Best: best, Candidates: all}, true
}
