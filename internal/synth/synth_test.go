package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/sim"
)

func TestApplyLeftMatchesFullProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := linalg.RandomUnitary(8, rng)
	g := linalg.RandomUnitary(4, rng)
	got := m.Copy()
	applyLeft(got, g, []int{2, 0})
	// Full G: acts on qubits 2 (MSB of gate) and 0; expand manually via
	// a 3-qubit circuit application to identity columns.
	full := linalg.Identity(8)
	applyLeft(full, g, []int{2, 0})
	want := linalg.Mul(full, m)
	if !linalg.EqualApprox(got, want, 1e-9) {
		t.Error("applyLeft != G_full · m")
	}
}

func TestApplyRightMatchesFullProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := linalg.RandomUnitary(8, rng)
	g := linalg.RandomUnitary(4, rng)
	full := linalg.Identity(8)
	applyLeft(full, g, []int{1, 2})
	want := linalg.Mul(m, full)
	got := m.Copy()
	applyRight(got, g, []int{1, 2})
	if !linalg.EqualApprox(got, want, 1e-9) {
		t.Error("applyRight != m · G_full")
	}
}

func TestSubspaceTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := linalg.RandomUnitary(8, rng)
	g := linalg.RandomUnitary(4, rng)
	full := linalg.Identity(8)
	applyLeft(full, g, []int{2, 1})
	want := linalg.Mul(a, full).Trace()
	got := subspaceTrace(a, g, []int{2, 1})
	if d := want - got; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
		t.Errorf("subspaceTrace = %v, want %v", got, want)
	}
}

func TestObjectiveGradientMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	target := linalg.RandomUnitary(4, rng)
	a := newSeedAnsatz(2).withLayer(0, 1).withLayer(0, 1)
	obj := newObjective(a, target)
	params := make([]float64, a.nparams)
	for i := range params {
		params[i] = rng.Float64()*2 - 1
	}
	grad := make([]float64, a.nparams)
	f := obj.valueGrad(params, grad)
	if math.Abs(f-obj.value(params)) > 1e-12 {
		t.Errorf("valueGrad f=%g != value %g", f, obj.value(params))
	}
	const h = 1e-6
	for i := range params {
		orig := params[i]
		params[i] = orig + h
		fp := obj.value(params)
		params[i] = orig - h
		fm := obj.value(params)
		params[i] = orig
		num := (fp - fm) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-5 {
			t.Errorf("grad[%d] = %g, numeric %g", i, grad[i], num)
		}
	}
}

func TestSynthesizeOneQubit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	target := linalg.RandomUnitary(2, rng)
	res, err := Synthesize(target, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Distance > 1e-6 {
		t.Errorf("1-qubit distance = %g", res.Best.Distance)
	}
	if res.Best.CNOTs != 0 {
		t.Errorf("1-qubit CNOTs = %d", res.Best.CNOTs)
	}
	// Verify the circuit actually implements the target.
	u := sim.Unitary(res.Best.Circuit)
	if d := linalg.HSDistance(target, u); d > 1e-6 {
		t.Errorf("reconstructed distance = %g", d)
	}
}

func TestSynthesizeCNOTTarget(t *testing.T) {
	target := gate.MustLookup("cx").Build(nil)
	res, err := Synthesize(target, Options{Seed: 3, MaxCNOTs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Distance > 1e-5 {
		t.Errorf("CX synthesis distance = %g", res.Best.Distance)
	}
	if res.Best.CNOTs > 1 {
		t.Errorf("CX synthesized with %d CNOTs, want <= 1", res.Best.CNOTs)
	}
}

func TestSynthesizeRandomTwoQubit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	target := linalg.RandomUnitary(4, rng)
	res, err := Synthesize(target, Options{Seed: 11, MaxCNOTs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Any 2-qubit unitary needs at most 3 CNOTs.
	if res.Best.Distance > 1e-4 {
		t.Errorf("2-qubit synthesis distance = %g with %d CNOTs", res.Best.Distance, res.Best.CNOTs)
	}
	u := sim.Unitary(res.Best.Circuit)
	if d := linalg.HSDistance(target, u); math.Abs(d-res.Best.Distance) > 1e-6 {
		t.Errorf("reported distance %g != recomputed %g", res.Best.Distance, d)
	}
}

func TestSynthesizeHarvestAllCollectsMultipleDepths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	target := linalg.RandomUnitary(4, rng)
	res, err := Synthesize(target, Options{Seed: 13, MaxCNOTs: 4, HarvestAll: true, Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	depths := map[int]bool{}
	for _, c := range res.Candidates {
		depths[c.CNOTs] = true
	}
	if len(depths) < 3 {
		t.Errorf("HarvestAll produced candidates at %d depths, want >= 3", len(depths))
	}
	// Candidates sorted by (CNOTs, Distance).
	for i := 1; i < len(res.Candidates); i++ {
		a, b := res.Candidates[i-1], res.Candidates[i]
		if a.CNOTs > b.CNOTs || (a.CNOTs == b.CNOTs && a.Distance > b.Distance) {
			t.Fatal("candidates not sorted")
		}
	}
}

func TestSynthesizeDistancesDecreaseWithDepth(t *testing.T) {
	// Deeper trees have more degrees of freedom: the best distance at
	// depth d+1 should not be much worse than at depth d.
	rng := rand.New(rand.NewSource(8))
	target := linalg.RandomUnitary(4, rng)
	res, err := Synthesize(target, Options{Seed: 17, MaxCNOTs: 3, HarvestAll: true})
	if err != nil {
		t.Fatal(err)
	}
	best := map[int]float64{}
	for _, c := range res.Candidates {
		if d, ok := best[c.CNOTs]; !ok || c.Distance < d {
			best[c.CNOTs] = c.Distance
		}
	}
	if best[3] > best[0] {
		t.Errorf("distance at depth 3 (%g) worse than depth 0 (%g)", best[3], best[0])
	}
}

func TestSynthesizeRespectsCoupling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	target := linalg.RandomUnitary(8, rng)
	res, err := Synthesize(target, Options{
		Seed: 19, MaxCNOTs: 2, HarvestAll: true, Threshold: 1e-12,
		CouplingPairs: [][2]int{{0, 1}, {1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		for _, op := range c.Circuit.Ops {
			if op.Name != "cx" {
				continue
			}
			pr := [2]int{op.Qubits[0], op.Qubits[1]}
			if pr != [2]int{0, 1} && pr != [2]int{1, 2} {
				t.Fatalf("CNOT on disallowed pair %v", pr)
			}
		}
	}
}

func TestSynthesizeRejectsBadTargets(t *testing.T) {
	if _, err := Synthesize(linalg.New(3, 3), Options{}); err == nil {
		t.Error("non-power-of-two dimension accepted")
	}
	if _, err := Synthesize(linalg.New(4, 2), Options{}); err == nil {
		t.Error("non-square accepted")
	}
	notU := linalg.Identity(4)
	notU.Set(0, 0, 2)
	if _, err := Synthesize(notU, Options{}); err == nil {
		t.Error("non-unitary accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	target := linalg.RandomUnitary(4, rng)
	r1, err1 := Synthesize(target, Options{Seed: 23, MaxCNOTs: 2, HarvestAll: true})
	r2, err2 := Synthesize(target, Options{Seed: 23, MaxCNOTs: 2, HarvestAll: true})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(r1.Candidates) != len(r2.Candidates) || r1.Best.Distance != r2.Best.Distance {
		t.Error("Synthesize not deterministic for fixed seed")
	}
}

func TestSynthesizeKnownCircuitReduces(t *testing.T) {
	// A wasteful circuit: CX;CX cancels to identity — synthesis should
	// find a 0-CNOT solution.
	c := circuit.New(2)
	c.CX(0, 1)
	c.CX(0, 1)
	c.RZ(0, 0.3)
	target := sim.Unitary(c)
	res, err := Synthesize(target, Options{Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CNOTs != 0 || res.Best.Distance > 1e-6 {
		t.Errorf("redundant-CX circuit: best %d CNOTs at distance %g, want 0 CNOTs",
			res.Best.CNOTs, res.Best.Distance)
	}
}

func TestSynthesizeNegativeMaxCNOTs(t *testing.T) {
	// MaxCNOTs < 0 means rotation-only: every candidate has zero CNOTs.
	target := linalg.Kron(gate.RZMatrix(0.4), gate.RYMatrix(0.8))
	res, err := Synthesize(target, Options{MaxCNOTs: -1, HarvestAll: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.CNOTs != 0 {
			t.Fatalf("rotation-only synthesis produced %d CNOTs", c.CNOTs)
		}
	}
	if res.Best.Distance > 1e-6 {
		t.Errorf("separable target not reached: %g", res.Best.Distance)
	}
}

func TestAStarFindsExactTwoQubit(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	target := linalg.RandomUnitary(4, rng)
	res, err := Synthesize(target, Options{
		Strategy: StrategyAStar, Threshold: 1e-5, MaxCNOTs: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Distance > 1e-4 {
		t.Errorf("A* 2-qubit distance = %g (%d CNOTs)", res.Best.Distance, res.Best.CNOTs)
	}
}

func TestAStarHarvestMatchesDepthRange(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	target := linalg.RandomUnitary(4, rng)
	res, err := Synthesize(target, Options{
		Strategy: StrategyAStar, MaxCNOTs: 3, HarvestAll: true,
		Threshold: 0.1, NodeBudget: 15, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.CNOTs > 3 {
			t.Fatalf("A* candidate exceeds MaxCNOTs: %d", c.CNOTs)
		}
	}
	depths := map[int]bool{}
	for _, c := range res.Candidates {
		depths[c.CNOTs] = true
	}
	if len(depths) < 2 {
		t.Errorf("A* harvested only %d depths", len(depths))
	}
}

func TestAStarDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	target := linalg.RandomUnitary(4, rng)
	opts := Options{Strategy: StrategyAStar, MaxCNOTs: 2, HarvestAll: true, NodeBudget: 10, Seed: 5}
	r1, err1 := Synthesize(target, opts)
	r2, err2 := Synthesize(target, opts)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Best.Distance != r2.Best.Distance || len(r1.Candidates) != len(r2.Candidates) {
		t.Error("A* not deterministic for fixed seed")
	}
}

func TestAStarRotationOnly(t *testing.T) {
	target := linalg.Kron(gate.RYMatrix(0.3), gate.RZMatrix(0.9))
	res, err := Synthesize(target, Options{Strategy: StrategyAStar, MaxCNOTs: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.CNOTs != 0 || res.Best.Distance > 1e-6 {
		t.Errorf("A* rotation-only: %d CNOTs at %g", res.Best.CNOTs, res.Best.Distance)
	}
}
