// Package clifford implements an Aaronson-Gottesman stabilizer-tableau
// simulator. Clifford circuits (H, S, CX and friends) simulate in
// polynomial time and space, so benchmarks like HLF can be checked at the
// paper's full 32-qubit scale where the statevector simulator cannot go.
package clifford

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
)

// Simulator is a stabilizer tableau over n qubits: rows 0..n-1 are the
// destabilizers, rows n..2n-1 the stabilizers, each row a Pauli string
// with X/Z bit vectors and a sign bit.
type Simulator struct {
	n int
	x [][]bool // x[i][j]: row i has X on qubit j
	z [][]bool // z[i][j]: row i has Z on qubit j
	r []bool   // phase bit per row (true = -1)
}

// New returns the tableau of |0...0>.
func New(n int) *Simulator {
	s := &Simulator{
		n: n,
		x: make([][]bool, 2*n),
		z: make([][]bool, 2*n),
		r: make([]bool, 2*n),
	}
	for i := range s.x {
		s.x[i] = make([]bool, n)
		s.z[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		s.x[i][i] = true   // destabilizer X_i
		s.z[n+i][i] = true // stabilizer Z_i
	}
	return s
}

// Clone deep-copies the tableau.
func (s *Simulator) Clone() *Simulator {
	c := &Simulator{n: s.n, x: make([][]bool, 2*s.n), z: make([][]bool, 2*s.n), r: append([]bool(nil), s.r...)}
	for i := range s.x {
		c.x[i] = append([]bool(nil), s.x[i]...)
		c.z[i] = append([]bool(nil), s.z[i]...)
	}
	return c
}

// H applies a Hadamard on qubit q.
func (s *Simulator) H(q int) {
	for i := 0; i < 2*s.n; i++ {
		s.r[i] = s.r[i] != (s.x[i][q] && s.z[i][q])
		s.x[i][q], s.z[i][q] = s.z[i][q], s.x[i][q]
	}
}

// S applies the phase gate on qubit q.
func (s *Simulator) S(q int) {
	for i := 0; i < 2*s.n; i++ {
		s.r[i] = s.r[i] != (s.x[i][q] && s.z[i][q])
		s.z[i][q] = s.z[i][q] != s.x[i][q]
	}
}

// CX applies a CNOT with the given control and target.
func (s *Simulator) CX(control, target int) {
	for i := 0; i < 2*s.n; i++ {
		s.r[i] = s.r[i] != (s.x[i][control] && s.z[i][target] &&
			(s.x[i][target] == s.z[i][control]))
		s.x[i][target] = s.x[i][target] != s.x[i][control]
		s.z[i][control] = s.z[i][control] != s.z[i][target]
	}
}

// Apply applies one circuit operation, decomposing derived Clifford gates
// into H/S/CX. Non-Clifford gates return an error.
func (s *Simulator) Apply(op circuit.Op) error {
	q := op.Qubits
	switch op.Name {
	case "h":
		s.H(q[0])
	case "s":
		s.S(q[0])
	case "sdg":
		s.S(q[0])
		s.S(q[0])
		s.S(q[0])
	case "z":
		s.S(q[0])
		s.S(q[0])
	case "x":
		s.H(q[0])
		s.S(q[0])
		s.S(q[0])
		s.H(q[0])
	case "y":
		// Y = S X S† (up to global phase, irrelevant for stabilizers).
		s.S(q[0])
		s.H(q[0])
		s.S(q[0])
		s.S(q[0])
		s.H(q[0])
		s.S(q[0])
		s.S(q[0])
		s.S(q[0])
	case "sx":
		// SX = H S H up to phase.
		s.H(q[0])
		s.S(q[0])
		s.H(q[0])
	case "sxdg":
		s.H(q[0])
		s.S(q[0])
		s.S(q[0])
		s.S(q[0])
		s.H(q[0])
	case "id":
	case "cx":
		s.CX(q[0], q[1])
	case "cz":
		s.H(q[1])
		s.CX(q[0], q[1])
		s.H(q[1])
	case "swap":
		s.CX(q[0], q[1])
		s.CX(q[1], q[0])
		s.CX(q[0], q[1])
	default:
		return fmt.Errorf("clifford: gate %q is not Clifford", op.Name)
	}
	return nil
}

// Run evolves |0...0> through a Clifford circuit.
func Run(c *circuit.Circuit) (*Simulator, error) {
	s := New(c.NumQubits)
	for i, op := range c.Ops {
		if err := s.Apply(op); err != nil {
			return nil, fmt.Errorf("clifford: op %d: %w", i, err)
		}
	}
	return s, nil
}

// IsClifford reports whether every gate in the circuit is supported.
func IsClifford(c *circuit.Circuit) bool {
	for _, op := range c.Ops {
		switch op.Name {
		case "h", "s", "sdg", "z", "x", "y", "sx", "sxdg", "id", "cx", "cz", "swap":
		default:
			return false
		}
	}
	return true
}

// rowsum implements the Aaronson-Gottesman rowsum operation: row h ← row h
// composed with row i, tracking the phase.
func (s *Simulator) rowsum(h, i int) {
	// Phase exponent arithmetic mod 4: 2*r + Σ g(x_i,z_i,x_h,z_h).
	sum := 0
	if s.r[h] {
		sum += 2
	}
	if s.r[i] {
		sum += 2
	}
	for j := 0; j < s.n; j++ {
		sum += g(s.x[i][j], s.z[i][j], s.x[h][j], s.z[h][j])
	}
	sum = ((sum % 4) + 4) % 4
	s.r[h] = sum == 2 // sum must be 0 or 2 for valid tableaux
	for j := 0; j < s.n; j++ {
		s.x[h][j] = s.x[h][j] != s.x[i][j]
		s.z[h][j] = s.z[h][j] != s.z[i][j]
	}
}

// g is the phase function of Pauli multiplication.
func g(x1, z1, x2, z2 bool) int {
	switch {
	case !x1 && !z1: // I
		return 0
	case x1 && z1: // Y
		return b2i(z2) - b2i(x2)
	case x1 && !z1: // X
		return b2i(z2) * (2*b2i(x2) - 1)
	default: // Z
		return b2i(x2) * (1 - 2*b2i(z2))
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// MeasureZ measures qubit q in the computational basis, collapsing the
// tableau, and returns the outcome bit. Random outcomes draw from rng.
func (s *Simulator) MeasureZ(q int, rng *rand.Rand) int {
	n := s.n
	// Case 1: some stabilizer anticommutes with Z_q (x bit set) —
	// outcome is random.
	p := -1
	for i := n; i < 2*n; i++ {
		if s.x[i][q] {
			p = i
			break
		}
	}
	if p >= 0 {
		for i := 0; i < 2*n; i++ {
			if i != p && s.x[i][q] {
				s.rowsum(i, p)
			}
		}
		// Destabilizer row p-n becomes old stabilizer p; stabilizer p
		// becomes ±Z_q.
		copy(s.x[p-n], s.x[p])
		copy(s.z[p-n], s.z[p])
		s.r[p-n] = s.r[p]
		for j := 0; j < n; j++ {
			s.x[p][j] = false
			s.z[p][j] = false
		}
		s.z[p][q] = true
		outcome := rng.Intn(2)
		s.r[p] = outcome == 1
		return outcome
	}
	// Case 2: outcome deterministic. Accumulate into a scratch row.
	scratch := 2 * n // conceptual extra row
	_ = scratch
	sx := make([]bool, n)
	sz := make([]bool, n)
	sr := false
	for i := 0; i < n; i++ {
		if s.x[i][q] {
			// rowsum of scratch with stabilizer i+n, inlined.
			sum := 0
			if sr {
				sum += 2
			}
			if s.r[i+n] {
				sum += 2
			}
			for j := 0; j < n; j++ {
				sum += g(s.x[i+n][j], s.z[i+n][j], sx[j], sz[j])
			}
			sum = ((sum % 4) + 4) % 4
			sr = sum == 2
			for j := 0; j < n; j++ {
				sx[j] = sx[j] != s.x[i+n][j]
				sz[j] = sz[j] != s.z[i+n][j]
			}
		}
	}
	if sr {
		return 1
	}
	return 0
}

// Sample measures every qubit (collapsing a clone, so the simulator state
// is preserved) and returns the outcome as a bitmask with qubit 0 as the
// least significant bit. Supports up to 64 qubits.
func (s *Simulator) Sample(rng *rand.Rand) uint64 {
	if s.n > 64 {
		panic("clifford: Sample supports at most 64 qubits")
	}
	c := s.Clone()
	var out uint64
	for q := 0; q < c.n; q++ {
		if c.MeasureZ(q, rng) == 1 {
			out |= 1 << q
		}
	}
	return out
}

// SampleCounts draws `shots` full-register samples and returns the counts.
func (s *Simulator) SampleCounts(shots int, rng *rand.Rand) map[uint64]int {
	counts := make(map[uint64]int)
	for i := 0; i < shots; i++ {
		counts[s.Sample(rng)]++
	}
	return counts
}
