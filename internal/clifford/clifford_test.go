package clifford

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/algos"
	"repro/internal/circuit"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func randomCliffordCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	names := []string{"h", "s", "sdg", "x", "y", "z", "sx"}
	for i := 0; i < ops; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			c.MustAppend(names[rng.Intn(len(names))], []int{rng.Intn(n)}, nil)
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			if rng.Intn(2) == 0 {
				c.CX(a, b)
			} else {
				c.CZ(a, b)
			}
		}
	}
	return c
}

// sampledTVD compares tableau samples against the exact statevector
// distribution.
func sampledTVD(t *testing.T, c *circuit.Circuit, shots int, seed int64) float64 {
	t.Helper()
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	counts := s.SampleCounts(shots, rng)
	emp := make([]float64, 1<<c.NumQubits)
	for k, v := range counts {
		emp[k] = float64(v) / float64(shots)
	}
	return metrics.TVD(emp, sim.Probabilities(c))
}

func TestZeroState(t *testing.T) {
	s := New(3)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		if out := s.Sample(rng); out != 0 {
			t.Fatalf("|000> sampled %b", out)
		}
	}
}

func TestGHZSampling(t *testing.T) {
	c := algos.GHZ(4)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := s.SampleCounts(4000, rng)
	if len(counts) != 2 {
		t.Fatalf("GHZ samples hit %d distinct states, want 2", len(counts))
	}
	all0, all1 := counts[0], counts[15]
	if all0+all1 != 4000 {
		t.Fatal("GHZ sampled a non-GHZ state")
	}
	if math.Abs(float64(all0)/4000-0.5) > 0.05 {
		t.Errorf("GHZ balance off: %d vs %d", all0, all1)
	}
}

func TestDeterministicMeasurement(t *testing.T) {
	// X|0> = |1>: deterministic outcome 1.
	c := circuit.New(2)
	c.X(0)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		if out := s.Sample(rng); out != 1 {
			t.Fatalf("X|00> sampled %b, want 01", out)
		}
	}
}

func TestMatchesStatevectorOnRandomCliffords(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		c := randomCliffordCircuit(4, 30, rng)
		if tvd := sampledTVD(t, c, 20000, int64(trial+10)); tvd > 0.03 {
			t.Errorf("trial %d: tableau vs statevector TVD = %g", trial, tvd)
		}
	}
}

func TestMatchesStatevectorOnHLF(t *testing.T) {
	c := algos.HLF(5, 42)
	if !IsClifford(c) {
		t.Fatal("HLF is not recognized as Clifford")
	}
	if tvd := sampledTVD(t, c, 20000, 7); tvd > 0.03 {
		t.Errorf("HLF tableau vs statevector TVD = %g", tvd)
	}
}

func TestRejectsNonClifford(t *testing.T) {
	c := circuit.New(1)
	c.T(0)
	if _, err := Run(c); err == nil {
		t.Error("T gate accepted by Clifford simulator")
	}
	if IsClifford(c) {
		t.Error("IsClifford accepted a T gate")
	}
}

func TestHLF32QubitsScales(t *testing.T) {
	// The paper evaluates up to 32 qubits; the statevector simulator
	// cannot reach that but the tableau does in milliseconds.
	c := algos.HLF(32, 99)
	start := time.Now()
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	counts := s.SampleCounts(100, rng)
	if time.Since(start) > 5*time.Second {
		t.Errorf("HLF-32 tableau run too slow: %v", time.Since(start))
	}
	total := 0
	for _, v := range counts {
		total += v
	}
	if total != 100 {
		t.Errorf("lost samples: %d", total)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(2)
	s.H(0)
	c := s.Clone()
	c.CX(0, 1)
	// Sampling s must still show qubit 1 at 0 always.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		if out := s.Sample(rng); out&2 != 0 {
			t.Fatal("Clone mutation leaked into original")
		}
	}
}

func TestSwapViaTableau(t *testing.T) {
	c := circuit.New(2)
	c.X(0)
	c.Swap(0, 1)
	s, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	if out := s.Sample(rng); out != 2 {
		t.Fatalf("SWAP·X|00> sampled %b, want 10", out)
	}
}
