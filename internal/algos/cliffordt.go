package algos

import (
	"math/rand"

	"repro/internal/circuit"
)

// cliffordTSingles are the single-qubit gates the random Clifford+T
// benchmark draws from: the Clifford generators plus T/T† for universality
// (the QASMBench "square random" recipe).
var cliffordTSingles = []func(c *circuit.Circuit, q int){
	(*circuit.Circuit).H,
	(*circuit.Circuit).S,
	(*circuit.Circuit).Sdg,
	(*circuit.Circuit).T,
	(*circuit.Circuit).Tdg,
	(*circuit.Circuit).X,
	(*circuit.Circuit).Z,
}

// CliffordT returns a random n-qubit Clifford+T circuit of the given
// layer depth, deterministic in seed. Each layer pairs the qubits by a
// random permutation; a pair becomes a CX (random direction) with
// probability ~0.4 and independent random single-qubit gates otherwise,
// so entanglement spreads across the whole register without any
// nearest-neighbor structure the scan partitioner could exploit — the
// adversarial counterpart to the Trotterized chains.
func CliffordT(n, layers int, seed int64) *circuit.Circuit {
	if n < 2 {
		panic("algos: CliffordT needs at least 2 qubits")
	}
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	single := func(q int) {
		cliffordTSingles[rng.Intn(len(cliffordTSingles))](c, q)
	}
	for l := 0; l < layers; l++ {
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			a, b := perm[i], perm[i+1]
			if rng.Float64() < 0.4 {
				if rng.Intn(2) == 1 {
					a, b = b, a
				}
				c.CX(a, b)
			} else {
				single(a)
				single(b)
			}
		}
		if n%2 == 1 {
			single(perm[n-1])
		}
	}
	return c
}
