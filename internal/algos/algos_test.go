package algos

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// measuredValue finds the (single) basis state with probability ~1 and
// returns it, or -1 if the output is not computational.
func measuredValue(t *testing.T, p []float64) int {
	t.Helper()
	for k, v := range p {
		if v > 0.999 {
			return k
		}
	}
	t.Fatalf("no deterministic output state: %v", p)
	return -1
}

func TestAdderAllValues2Bit(t *testing.T) {
	const bits = 2
	for a := uint64(0); a < 1<<bits; a++ {
		for b := uint64(0); b < 1<<bits; b++ {
			c := Adder(bits, a, b)
			p := sim.Probabilities(c)
			k := measuredValue(t, p)
			// layout: cin(1) | a(bits) | b(bits) | cout(1)
			gotA := (k >> 1) & (1<<bits - 1)
			gotB := (k >> (1 + bits)) & (1<<bits - 1)
			gotCout := (k >> (1 + 2*bits)) & 1
			sum := a + b
			if uint64(gotA) != a {
				t.Errorf("Adder(%d,%d): a register corrupted: %d", a, b, gotA)
			}
			if uint64(gotB) != sum&(1<<bits-1) {
				t.Errorf("Adder(%d,%d): b = %d, want %d", a, b, gotB, sum&(1<<bits-1))
			}
			if uint64(gotCout) != sum>>bits {
				t.Errorf("Adder(%d,%d): cout = %d, want %d", a, b, gotCout, sum>>bits)
			}
		}
	}
}

func TestAdder3Bit(t *testing.T) {
	c := Adder(3, 5, 6)
	p := sim.Probabilities(c)
	k := measuredValue(t, p)
	gotB := (k >> 4) & 7
	gotCout := (k >> 7) & 1
	if gotB != 3 || gotCout != 1 { // 5+6=11 = 0b1011
		t.Errorf("Adder(3,5,6): b=%d cout=%d, want 3,1", gotB, gotCout)
	}
}

func TestMultiplier1Bit(t *testing.T) {
	for a := uint64(0); a < 2; a++ {
		for b := uint64(0); b < 2; b++ {
			c := Multiplier(1, a, b)
			p := sim.Probabilities(c)
			k := measuredValue(t, p)
			gotP := (k >> 2) & 3
			if uint64(gotP) != a*b {
				t.Errorf("Multiplier(1,%d,%d): p = %d, want %d", a, b, gotP, a*b)
			}
		}
	}
}

func TestMultiplier2Bit(t *testing.T) {
	cases := [][2]uint64{{2, 3}, {3, 3}, {1, 2}, {0, 3}}
	for _, tc := range cases {
		a, b := tc[0], tc[1]
		c := Multiplier(2, a, b)
		if c.NumQubits != 8 {
			t.Fatalf("Multiplier(2) qubits = %d, want 8", c.NumQubits)
		}
		p := sim.Probabilities(c)
		k := measuredValue(t, p)
		gotP := (k >> 4) & 15
		if uint64(gotP) != a*b {
			t.Errorf("Multiplier(2,%d,%d): p = %d, want %d", a, b, gotP, a*b)
		}
	}
}

func TestQFTMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		c := QFT(n)
		u := sim.Unitary(c)
		dim := 1 << n
		want := linalg.New(dim, dim)
		norm := 1 / math.Sqrt(float64(dim))
		for x := 0; x < dim; x++ {
			for y := 0; y < dim; y++ {
				theta := 2 * math.Pi * float64(x*y) / float64(dim)
				want.Set(x, y, complex(norm*math.Cos(theta), norm*math.Sin(theta)))
			}
		}
		if !linalg.EqualApprox(u, want, 1e-9) {
			t.Errorf("QFT(%d) != DFT matrix (max diff %g)", n, linalg.MaxAbsDiff(u, want))
		}
	}
}

func TestInverseQFT(t *testing.T) {
	c := QFT(3)
	c.MustAppendCircuit(InverseQFT(3), nil)
	u := sim.Unitary(c)
	if !linalg.EqualApprox(u, linalg.Identity(8), 1e-9) {
		t.Error("QFT · QFT^-1 != I")
	}
}

func TestTFIMSingleStepUnitary(t *testing.T) {
	// One Trotter step on 2 qubits: RZZ(-2Jdt) then RX each qubit.
	dt, j, h := 0.1, 1.0, 1.0
	c := TFIM(2, 1, dt, j, h)
	u := sim.Unitary(c)
	rzz := gate.RZZMatrix(-2 * j * dt)
	rx := gate.RXMatrix(-2 * h * dt)
	want := linalg.Mul(linalg.Kron(rx, rx), rzz)
	if !linalg.EqualApprox(u, want, 1e-9) {
		t.Errorf("TFIM step unitary mismatch (%g)", linalg.MaxAbsDiff(u, want))
	}
}

func TestTFIMMagnetizationSmallDt(t *testing.T) {
	// With tiny dt the state stays near |0...0>, magnetization near +1.
	c := TFIM(4, 2, 0.01, 1, 1)
	p := sim.Probabilities(c)
	if m := metrics.AverageMagnetization(p, 4); m < 0.99 {
		t.Errorf("TFIM small-dt magnetization = %g, want ~1", m)
	}
}

func TestHeisenbergConservesMagnetizationSector(t *testing.T) {
	// The isotropic Heisenberg Hamiltonian commutes with total Z, so
	// evolution from |0000> (max magnetization sector, an eigenstate of
	// each XX+YY+ZZ term's total-spin structure) keeps magnetization 1.
	c := Heisenberg(4, 3, 0.2, 1, 0.5)
	p := sim.Probabilities(c)
	if m := metrics.AverageMagnetization(p, 4); math.Abs(m-1) > 1e-9 {
		t.Errorf("Heisenberg from |0..0> magnetization = %g, want 1", m)
	}
}

func TestXYConservesMagnetizationFromZero(t *testing.T) {
	// XX+YY also commutes with total Z.
	c := XY(4, 3, 0.2, 1)
	p := sim.Probabilities(c)
	if m := metrics.AverageMagnetization(p, 4); math.Abs(m-1) > 1e-9 {
		t.Errorf("XY from |0..0> magnetization = %g, want 1", m)
	}
}

func TestHLFDeterministicAndClifford(t *testing.T) {
	a := HLF(5, 42)
	b := HLF(5, 42)
	if a.String() != b.String() {
		t.Error("HLF not deterministic in seed")
	}
	cdiff := HLF(5, 43)
	if a.String() == cdiff.String() {
		t.Error("HLF ignores seed")
	}
	for _, op := range a.Ops {
		switch op.Name {
		case "h", "cz", "s":
		default:
			t.Errorf("HLF contains non-Clifford gate %s", op.Name)
		}
	}
}

func TestQAOAStructure(t *testing.T) {
	c := QAOA(5, 2, 7)
	counts := c.GateCounts()
	if counts["h"] != 5 {
		t.Errorf("QAOA h count = %d, want 5", counts["h"])
	}
	if counts["rx"] != 10 {
		t.Errorf("QAOA rx count = %d, want 10", counts["rx"])
	}
	if counts["rzz"] == 0 {
		t.Error("QAOA has no rzz gates")
	}
	// Output must be a normalized distribution.
	p := sim.Probabilities(c)
	var s float64
	for _, v := range p {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("QAOA output sums to %g", s)
	}
}

func TestVQEStructure(t *testing.T) {
	c := VQE(4, 2, 3)
	counts := c.GateCounts()
	if counts["cx"] != 6 { // 2 layers × 3 chain CNOTs
		t.Errorf("VQE cx count = %d, want 6", counts["cx"])
	}
	if counts["ry"] != 12 || counts["rz"] != 12 { // 3 rotation layers × 4 qubits
		t.Errorf("VQE rotation counts = %v", counts)
	}
}

func TestGenerateAllNames(t *testing.T) {
	for _, name := range Names() {
		c, err := Generate(name, 4)
		if err != nil {
			t.Errorf("Generate(%s, 4): %v", name, err)
			continue
		}
		if c.Size() == 0 {
			t.Errorf("Generate(%s, 4) is empty", name)
		}
		if c.NumQubits < 2 {
			t.Errorf("Generate(%s, 4) has %d qubits", name, c.NumQubits)
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", 4); err == nil {
		t.Error("Generate accepted unknown benchmark")
	}
	if _, err := Generate("qft", 1); err == nil {
		t.Error("Generate accepted 1 qubit")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, _ := Generate(name, 5)
		b, _ := Generate(name, 5)
		if a.String() != b.String() {
			t.Errorf("Generate(%s) not deterministic", name)
		}
	}
}

func TestRandomGraphConnectedEdges(t *testing.T) {
	edges := randomGraph(6, 9)
	if len(edges) < 5 {
		t.Fatalf("graph has %d edges, want >= n-1", len(edges))
	}
	// union-find connectivity
	parent := make([]int, 6)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Errorf("edge not ordered: %v", e)
		}
		parent[find(e[0])] = find(e[1])
	}
	root := find(0)
	for i := 1; i < 6; i++ {
		if find(i) != root {
			t.Error("graph not connected")
		}
	}
}

func TestQFTOutputUniformFromZero(t *testing.T) {
	// QFT|0> is the uniform superposition.
	c := QFT(3)
	state := sim.Run(c)
	want := complex(1/math.Sqrt(8), 0)
	for i, amp := range state {
		if cmplx.Abs(amp-want) > 1e-9 {
			t.Fatalf("QFT|0>[%d] = %v, want %v", i, amp, want)
		}
	}
}
