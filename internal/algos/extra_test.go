package algos

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestGHZState(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		p := sim.Probabilities(GHZ(n))
		if math.Abs(p[0]-0.5) > 1e-9 || math.Abs(p[1<<n-1]-0.5) > 1e-9 {
			t.Errorf("GHZ(%d) probabilities wrong: P(0)=%g P(all1)=%g", n, p[0], p[1<<n-1])
		}
		for k := 1; k < 1<<n-1; k++ {
			if p[k] > 1e-9 {
				t.Fatalf("GHZ(%d) leaks to state %d: %g", n, k, p[k])
			}
		}
	}
}

func TestWState(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		p := sim.Probabilities(WState(n))
		want := 1 / float64(n)
		for k := 0; k < 1<<n; k++ {
			ones := 0
			for q := 0; q < n; q++ {
				if k&(1<<q) != 0 {
					ones++
				}
			}
			if ones == 1 {
				if math.Abs(p[k]-want) > 1e-9 {
					t.Errorf("W(%d): P(%b) = %g, want %g", n, k, p[k], want)
				}
			} else if p[k] > 1e-9 {
				t.Errorf("W(%d): non-single-excitation state %b has %g", n, k, p[k])
			}
		}
	}
}

func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	for _, secret := range []uint64{0b0000, 0b1011, 0b1111, 0b0100} {
		n := 4
		c := BernsteinVazirani(n, secret)
		p := sim.Probabilities(c)
		// Marginal over the ancilla: the counting register must be the
		// secret with probability 1.
		var got float64
		for k, v := range p {
			if uint64(k)&(1<<n-1) == secret {
				got += v
			}
		}
		if math.Abs(got-1) > 1e-9 {
			t.Errorf("BV secret %04b recovered with probability %g", secret, got)
		}
	}
}

func TestGroverAmplifiesMarked(t *testing.T) {
	for _, tc := range []struct {
		n, marked int
		minP      float64
	}{
		{2, 3, 0.99}, // 1 iteration is exact for n=2
		{3, 5, 0.90},
		{3, 0, 0.90},
	} {
		c := Grover(tc.n, tc.marked)
		p := sim.Probabilities(c)
		if p[tc.marked] < tc.minP {
			t.Errorf("Grover(%d, %d): P(marked) = %g, want > %g",
				tc.n, tc.marked, p[tc.marked], tc.minP)
		}
	}
}

func TestGroverPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Grover(5) did not panic")
		}
	}()
	Grover(5, 1)
}

func TestQPEExactPhase(t *testing.T) {
	// φ = k/2^bits is exactly representable: the counting register reads
	// k with probability 1.
	bits := 3
	for _, k := range []int{0, 1, 3, 5, 7} {
		phi := float64(k) / 8
		c := QPE(bits, phi)
		p := sim.Probabilities(c)
		var got float64
		for idx, v := range p {
			if idx&(1<<bits-1) == k {
				got += v
			}
		}
		if math.Abs(got-1) > 1e-9 {
			t.Errorf("QPE(φ=%d/8): P(read %d) = %g", k, k, got)
		}
	}
}

func TestQPEInexactPhaseConcentrates(t *testing.T) {
	// φ between grid points: probability concentrates on the two
	// neighbours.
	bits := 3
	phi := 0.3 // between 2/8 and 3/8
	p := sim.Probabilities(QPE(bits, phi))
	var nearby float64
	for idx, v := range p {
		k := idx & (1<<bits - 1)
		if k == 2 || k == 3 {
			nearby += v
		}
	}
	if nearby < 0.8 {
		t.Errorf("QPE(φ=0.3): neighbours carry only %g probability", nearby)
	}
}
