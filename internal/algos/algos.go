// Package algos generates the benchmark circuits of QUEST Table 1:
// Adder (Cuccaro ripple carry), Heisenberg/TFIM/XY Trotterized spin-chain
// evolution, HLF (hidden linear function), QFT, QAOA (MaxCut ansatz),
// Multiplier (Draper/Fourier multiplier) and VQE (hardware-efficient
// ansatz). All generators are deterministic given their arguments.
package algos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/circuit"
)

// QFT returns the n-qubit quantum Fourier transform circuit whose unitary
// equals the DFT matrix F[x][y] = ω^{xy}/√N with ω = e^{2πi/N} and qubit 0
// the least significant bit (final swaps included).
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n)
	for i := n - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			c.CP(j, i, math.Pi/math.Pow(2, float64(i-j)))
		}
	}
	for i := 0; i < n/2; i++ {
		c.Swap(i, n-1-i)
	}
	return c
}

// InverseQFT returns the inverse of QFT(n).
func InverseQFT(n int) *circuit.Circuit { return QFT(n).Inverse() }

// maj appends the Cuccaro majority block: after it, z holds the carry.
func maj(c *circuit.Circuit, x, y, z int) {
	c.CX(z, y)
	c.CX(z, x)
	c.CCX(x, y, z)
}

// uma appends the Cuccaro un-majority-and-add block.
func uma(c *circuit.Circuit, x, y, z int) {
	c.CCX(x, y, z)
	c.CX(z, x)
	c.CX(x, y)
}

// Adder returns the Cuccaro ripple-carry adder on 2*bits+2 qubits, with
// the inputs a and b loaded by X gates. Qubit layout: cin, a[0..bits),
// b[0..bits), cout. After the circuit, the b register holds (a+b) mod
// 2^bits and cout holds the carry.
func Adder(bits int, a, b uint64) *circuit.Circuit {
	if bits < 1 {
		panic("algos: Adder needs at least 1 bit")
	}
	n := 2*bits + 2
	c := circuit.New(n)
	cin := 0
	aq := func(i int) int { return 1 + i }
	bq := func(i int) int { return 1 + bits + i }
	cout := n - 1

	for i := 0; i < bits; i++ {
		if a&(1<<i) != 0 {
			c.X(aq(i))
		}
		if b&(1<<i) != 0 {
			c.X(bq(i))
		}
	}

	maj(c, cin, bq(0), aq(0))
	for i := 1; i < bits; i++ {
		maj(c, aq(i-1), bq(i), aq(i))
	}
	c.CX(aq(bits-1), cout)
	for i := bits - 1; i >= 1; i-- {
		uma(c, aq(i-1), bq(i), aq(i))
	}
	uma(c, cin, bq(0), aq(0))
	return c
}

// ccp appends a doubly controlled phase gate CCP(θ) on (c1, c2, target)
// decomposed into cp and cx gates.
func ccp(c *circuit.Circuit, c1, c2, target int, theta float64) {
	c.CP(c2, target, theta/2)
	c.CX(c1, c2)
	c.CP(c2, target, -theta/2)
	c.CX(c1, c2)
	c.CP(c1, target, theta/2)
}

// Multiplier returns a Draper-style Fourier multiplier on 4*bits qubits:
// registers a[0..bits), b[0..bits) loaded with the given values by X gates,
// and a 2*bits product register computed as a*b. Qubit layout: a, b, p.
func Multiplier(bits int, a, b uint64) *circuit.Circuit {
	if bits < 1 {
		panic("algos: Multiplier needs at least 1 bit")
	}
	m := 2 * bits
	n := 2*bits + m
	c := circuit.New(n)
	aq := func(i int) int { return i }
	bq := func(i int) int { return bits + i }
	pq := func(i int) int { return 2*bits + i }

	for i := 0; i < bits; i++ {
		if a&(1<<i) != 0 {
			c.X(aq(i))
		}
		if b&(1<<i) != 0 {
			c.X(bq(i))
		}
	}
	// Fourier basis of p=0 is the uniform superposition.
	for k := 0; k < m; k++ {
		c.H(pq(k))
	}
	// Phase-add a*b: for every partial product a_i b_j of weight 2^{i+j},
	// rotate product qubit k by 2π·2^{i+j+k}/2^m.
	for i := 0; i < bits; i++ {
		for j := 0; j < bits; j++ {
			for k := 0; k < m; k++ {
				if i+j+k >= m {
					// Phase 2π·2^{i+j+k}/2^m is a multiple of 2π.
					continue
				}
				theta := 2 * math.Pi * math.Pow(2, float64(i+j+k-m))
				ccp(c, aq(i), bq(j), pq(k), theta)
			}
		}
	}
	// Inverse Fourier transform on the product register.
	c.MustAppendCircuit(InverseQFT(m), pqMap(2*bits, m))
	return c
}

func pqMap(offset, m int) []int {
	qm := make([]int, m)
	for i := range qm {
		qm[i] = offset + i
	}
	return qm
}

// TFIM returns `steps` first-order Trotter steps of transverse-field Ising
// time evolution exp(-iHt), H = -J Σ Z_i Z_{i+1} - h Σ X_i, on an n-qubit
// open chain with dt per step. Matches the materials-simulation workloads
// of ArQTiC used in the paper.
func TFIM(n, steps int, dt, j, h float64) *circuit.Circuit {
	c := circuit.New(n)
	for s := 0; s < steps; s++ {
		for q := 0; q+1 < n; q++ {
			c.RZZ(q, q+1, -2*j*dt)
		}
		for q := 0; q < n; q++ {
			c.RX(q, -2*h*dt)
		}
	}
	return c
}

// XY returns Trotterized time evolution of the XY spin chain,
// H = -J Σ (X_i X_{i+1} + Y_i Y_{i+1}).
func XY(n, steps int, dt, j float64) *circuit.Circuit {
	c := circuit.New(n)
	for s := 0; s < steps; s++ {
		for q := 0; q+1 < n; q++ {
			c.RXX(q, q+1, -2*j*dt)
			c.RYY(q, q+1, -2*j*dt)
		}
	}
	return c
}

// Heisenberg returns Trotterized time evolution of the isotropic
// Heisenberg chain H = -J Σ (X X + Y Y + Z Z) - h Σ Z.
func Heisenberg(n, steps int, dt, j, h float64) *circuit.Circuit {
	c := circuit.New(n)
	for s := 0; s < steps; s++ {
		for q := 0; q+1 < n; q++ {
			c.RXX(q, q+1, -2*j*dt)
			c.RYY(q, q+1, -2*j*dt)
			c.RZZ(q, q+1, -2*j*dt)
		}
		if h != 0 {
			for q := 0; q < n; q++ {
				c.RZ(q, -2*h*dt)
			}
		}
	}
	return c
}

// HeisenbergNeel returns the Heisenberg case-study circuit: Néel-state
// preparation (X on every odd qubit) followed by Trotterized Heisenberg
// evolution. From the Néel state the staggered magnetization evolves
// nontrivially, which is the observable the paper's Fig. 1/13/14 track.
func HeisenbergNeel(n, steps int, dt, j, h float64) *circuit.Circuit {
	c := circuit.New(n)
	for q := 1; q < n; q += 2 {
		c.X(q)
	}
	c.MustAppendCircuit(Heisenberg(n, steps, dt, j, h), nil)
	return c
}

// HLF returns a hidden-linear-function circuit (Bravyi-Gosset-König) for a
// random symmetric binary matrix drawn from the seed: H on all qubits, CZ
// wherever A[i][j]=1 (i<j), S wherever A[i][i]=1, then H on all qubits.
func HLF(n int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(2) == 1 {
				c.CZ(i, j)
			}
		}
	}
	for q := 0; q < n; q++ {
		if rng.Intn(2) == 1 {
			c.S(q)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// randomGraph returns a connected random graph on n vertices with extra
// random edges, as edge pairs (i<j), deterministic in seed.
func randomGraph(n int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	edges := map[[2]int]bool{}
	// Random spanning path for connectivity.
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		a, b := perm[i], perm[i+1]
		if a > b {
			a, b = b, a
		}
		edges[[2]int{a, b}] = true
	}
	extra := n / 2
	for k := 0; k < extra; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		edges[[2]int{a, b}] = true
	}
	out := make([][2]int, 0, len(edges))
	for e := range edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// QAOA returns a `layers`-deep quantum alternating operator ansatz for
// MaxCut on a random connected graph: H on all qubits, then per layer
// RZZ(γ) on every edge and RX(2β) on every qubit. Angles are drawn
// deterministically from the seed.
func QAOA(n, layers int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	edges := randomGraph(n, seed+1)
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for l := 0; l < layers; l++ {
		gamma := rng.Float64() * math.Pi
		beta := rng.Float64() * math.Pi
		for _, e := range edges {
			c.RZZ(e[0], e[1], gamma)
		}
		for q := 0; q < n; q++ {
			c.RX(q, 2*beta)
		}
	}
	return c
}

// VQE returns a hardware-efficient variational ansatz: `layers` repetitions
// of RY+RZ rotations on every qubit followed by a linear chain of CNOTs,
// with a final rotation layer. Angles are deterministic in the seed.
func VQE(n, layers int, seed int64) *circuit.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(n)
	rot := func() {
		for q := 0; q < n; q++ {
			c.RY(q, rng.Float64()*2*math.Pi)
			c.RZ(q, rng.Float64()*2*math.Pi)
		}
	}
	for l := 0; l < layers; l++ {
		rot()
		for q := 0; q+1 < n; q++ {
			c.CX(q, q+1)
		}
	}
	rot()
	return c
}

// Names lists the Table-1 benchmark names accepted by Generate.
func Names() []string {
	return []string{"adder", "cliffordt", "heisenberg", "hlf", "qft", "qaoa", "multiplier", "tfim", "vqe", "xy"}
}

// Generate builds a named Table-1 benchmark on (approximately) n qubits
// with the paper-like default parameters. Adder requires n = 2k+2 ≥ 4;
// Multiplier requires n = 4k ≥ 4. The returned circuit's NumQubits may
// therefore differ from n for those two.
func Generate(name string, n int) (*circuit.Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("algos: need at least 2 qubits, got %d", n)
	}
	// Trotter evolutions use 4 steps; the deep-circuit regime (the
	// paper's case studies run to timestep 100) is exercised separately
	// by the Fig. 13-15 experiments, which build per-timestep circuits.
	const (
		seed  = 20220228 // ASPLOS'22 opening day
		steps = 4
		dt    = 0.1
	)
	switch name {
	case "adder":
		bits := (n - 2) / 2
		if bits < 1 {
			bits = 1
		}
		return Adder(bits, 0b101&((1<<bits)-1), 0b011&((1<<bits)-1)), nil
	case "cliffordt":
		return CliffordT(n, 8, seed), nil
	case "heisenberg":
		return Heisenberg(n, steps, dt, 1, 1), nil
	case "hlf":
		return HLF(n, seed), nil
	case "qft":
		return QFT(n), nil
	case "qaoa":
		return QAOA(n, 2, seed), nil
	case "multiplier":
		bits := n / 4
		if bits < 1 {
			bits = 1
		}
		mask := uint64(1<<bits - 1)
		return Multiplier(bits, mask, (mask>>1)|1), nil
	case "tfim":
		return TFIM(n, steps, dt, 1, 1), nil
	case "vqe":
		return VQE(n, 2, seed), nil
	case "xy":
		return XY(n, steps, dt, 1), nil
	}
	return nil, fmt.Errorf("algos: unknown benchmark %q", name)
}
