package algos

import (
	"math"

	"repro/internal/circuit"
)

// Extra benchmark circuits beyond Table 1. These exercise the library on
// oracle-style and state-preparation workloads and give users a richer
// default suite; they are verified functionally in the tests.

// GHZ returns the n-qubit GHZ state preparation circuit
// (|0...0> + |1...1>)/√2.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(0)
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	return c
}

// WState returns an n-qubit W-state preparation circuit: the uniform
// superposition of all single-excitation basis states. Construction: a
// cascade of controlled rotations distributing amplitude 1/√n to each
// qubit (using ry + cx building blocks).
func WState(n int) *circuit.Circuit {
	if n < 1 {
		panic("algos: WState needs at least 1 qubit")
	}
	c := circuit.New(n)
	c.X(0)
	// Move amplitude from qubit k to qubit k+1 with a controlled
	// rotation: after step k the excitation is distributed over qubits
	// 0..k+1 with the right weights.
	for k := 0; k+1 < n; k++ {
		// Rotation angle so that P(excitation moves on) = (n-k-1)/(n-k).
		remain := float64(n - k)
		theta := 2 * math.Acos(math.Sqrt(1/remain))
		// Controlled-RY(theta) with control k, target k+1, built from
		// two half-angle RYs and two CNOTs.
		c.RY(k+1, theta/2)
		c.CX(k, k+1)
		c.RY(k+1, -theta/2)
		c.CX(k, k+1)
		// Transfer: excitation on k moves to k+1 when rotation fired.
		c.CX(k+1, k)
	}
	return c
}

// BernsteinVazirani returns the Bernstein-Vazirani circuit for the given
// n-bit secret: one oracle query recovers the secret exactly. The final
// qubit is the oracle ancilla; measuring the first n qubits yields the
// secret with probability 1 on an ideal machine.
func BernsteinVazirani(n int, secret uint64) *circuit.Circuit {
	c := circuit.New(n + 1)
	anc := n
	c.X(anc)
	c.H(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		if secret&(1<<q) != 0 {
			c.CX(q, anc)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// Grover returns a Grover search circuit on n qubits for the single
// marked basis state, running the optimal ⌊π/4·√N⌋ iterations. The
// oracle and diffuser use a multi-controlled Z built recursively from
// Toffolis (requires n ≥ 2; n ≤ 3 needs no ancilla).
func Grover(n int, marked int) *circuit.Circuit {
	if n < 2 || n > 3 {
		panic("algos: Grover implemented for 2-3 qubits (no-ancilla MCZ)")
	}
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	iters := int(math.Floor(math.Pi / 4 * math.Sqrt(float64(int(1)<<n))))
	if iters < 1 {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		// Oracle: flip the phase of |marked>.
		phaseFlip(c, n, marked)
		// Diffuser: H^n · phase-flip of |0...0> · H^n.
		for q := 0; q < n; q++ {
			c.H(q)
		}
		phaseFlip(c, n, 0)
		for q := 0; q < n; q++ {
			c.H(q)
		}
	}
	return c
}

// phaseFlip applies a phase of -1 to the given basis state using X
// conjugation and a multi-controlled Z.
func phaseFlip(c *circuit.Circuit, n, state int) {
	for q := 0; q < n; q++ {
		if state&(1<<q) == 0 {
			c.X(q)
		}
	}
	switch n {
	case 2:
		c.CZ(0, 1)
	case 3:
		// CCZ = H(target) CCX H(target).
		c.H(2)
		c.CCX(0, 1, 2)
		c.H(2)
	}
	for q := 0; q < n; q++ {
		if state&(1<<q) == 0 {
			c.X(q)
		}
	}
}

// QPE returns a quantum-phase-estimation circuit with `bits` counting
// qubits estimating the phase φ of the eigenvalue e^{2πiφ} of a
// single-qubit phase gate P(2πφ) applied to the prepared eigenstate |1>.
// Counting qubits are 0..bits-1; the eigenstate qubit is the last one.
// Ideal measurement of the counting register yields round(φ·2^bits).
func QPE(bits int, phi float64) *circuit.Circuit {
	n := bits + 1
	c := circuit.New(n)
	eigen := bits
	c.X(eigen) // |1> eigenstate of the phase gate
	for q := 0; q < bits; q++ {
		c.H(q)
	}
	// Controlled powers: counting qubit q applies P(2πφ·2^q).
	for q := 0; q < bits; q++ {
		angle := 2 * math.Pi * phi * math.Pow(2, float64(q))
		c.CP(q, eigen, angle)
	}
	// Inverse QFT on the counting register.
	c.MustAppendCircuit(InverseQFT(bits), countingMap(bits))
	return c
}

func countingMap(bits int) []int {
	m := make([]int, bits)
	for i := range m {
		m[i] = i
	}
	return m
}
