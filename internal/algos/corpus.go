package algos

import (
	"fmt"

	"repro/internal/circuit"
)

// CorpusSpec names one entry of the committed benchmark corpus
// (examples/circuits/corpus): a Generate benchmark at a specific size.
// The corpus is the QASMBench-style multi-circuit workload the corpus
// driver (cmd/quest -corpus) compiles and benchmarks end to end — big
// enough (8-20 qubits) that partitioning, synthesis scheduling, and
// cross-circuit cache reuse all matter, unlike the 4-qubit figure
// workloads.
type CorpusSpec struct {
	// Name is the Generate benchmark name.
	Name string
	// Qubits is the requested size; the generated circuit's NumQubits
	// may differ for the arithmetic circuits (see Generate).
	Qubits int
}

// CorpusSpecs returns the committed corpus definition, sorted by
// (Name, Qubits). Arithmetic (adder), structured (qft), Trotterized
// chains (heisenberg, tfim, xy), variational ansatz (qaoa, vqe) and
// unstructured random Clifford+T circuits each appear at a small and a
// large size, so the corpus spans both block-structure regimes the scan
// partitioner sees.
func CorpusSpecs() []CorpusSpec {
	return []CorpusSpec{
		{Name: "adder", Qubits: 8},
		{Name: "adder", Qubits: 18},
		{Name: "cliffordt", Qubits: 12},
		{Name: "cliffordt", Qubits: 20},
		{Name: "heisenberg", Qubits: 12},
		{Name: "qaoa", Qubits: 14},
		{Name: "qft", Qubits: 8},
		{Name: "qft", Qubits: 16},
		{Name: "tfim", Qubits: 16},
		{Name: "vqe", Qubits: 10},
		{Name: "vqe", Qubits: 16},
		{Name: "xy", Qubits: 20},
	}
}

// GenerateCorpus materializes every corpus entry. The returned file names
// (<name>_<actual qubits>.qasm) are the committed layout questgen -corpus
// writes and the corpus driver reads.
func GenerateCorpus() (map[string]*circuit.Circuit, error) {
	out := make(map[string]*circuit.Circuit, len(CorpusSpecs()))
	for _, spec := range CorpusSpecs() {
		c, err := Generate(spec.Name, spec.Qubits)
		if err != nil {
			return nil, fmt.Errorf("algos: corpus %s-%d: %w", spec.Name, spec.Qubits, err)
		}
		file := fmt.Sprintf("%s_%d.qasm", spec.Name, c.NumQubits)
		if prev, dup := out[file]; dup && prev.String() != c.String() {
			return nil, fmt.Errorf("algos: corpus file %s generated twice with different contents", file)
		}
		out[file] = c
	}
	return out, nil
}
