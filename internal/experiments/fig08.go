package experiments

import (
	"fmt"

	"repro/internal/transpile"
)

// Fig08CNOTReduction reproduces Fig. 8: percent CNOT reduction over the
// Baseline circuit for Qiskit-style optimization alone, QUEST, and
// QUEST + Qiskit, across the Table-1 benchmarks. The paper reports 30-80%
// for QUEST on most algorithms, with Qiskit alone near zero except for
// Heisenberg-style circuits.
func Fig08CNOTReduction(cfg Config) error {
	cfg.defaults()
	ws, err := workloads(cfg)
	if err != nil {
		return err
	}
	cfg.section("Fig 8: % CNOT reduction over Baseline")
	cfg.printf("%16s %10s %10s %10s %14s\n", "algorithm", "baseline", "qiskit%", "quest%", "quest+qiskit%")

	for _, w := range ws {
		base := float64(w.circuit.CNOTCount())
		if base == 0 {
			continue
		}
		qiskit := float64(transpile.Optimize(w.circuit).CNOTCount())
		res, err := questRun(w, cfg)
		if err != nil {
			return fmt.Errorf("fig8 %s: %w", w.label(), err)
		}
		quest := meanCNOTs(res, false)
		questQiskit := meanCNOTs(res, true)
		cfg.printf("%16s %10.0f %10.1f %10.1f %14.1f\n",
			w.label(), base,
			reductionPct(base, qiskit),
			reductionPct(base, quest),
			reductionPct(base, questQiskit))
	}
	return nil
}
