package experiments

import (
	"repro/internal/transpile"
)

// Fig08CNOTReduction reproduces Fig. 8: percent CNOT reduction over the
// Baseline circuit for Qiskit-style optimization alone, QUEST, and
// QUEST + Qiskit, across the Table-1 benchmarks. The paper reports 30-80%
// for QUEST on most algorithms, with Qiskit alone near zero except for
// Heisenberg-style circuits.
func Fig08CNOTReduction(cfg Config) error {
	cfg.defaults()
	prep, err := preparedWorkloads(cfg, "fig8", sweepOpts{
		filter: func(w workload) bool { return w.circuit.CNOTCount() > 0 },
	})
	if err != nil {
		return err
	}
	cfg.section("Fig 8: % CNOT reduction over Baseline")
	cfg.printf("%16s %10s %10s %10s %14s\n", "algorithm", "baseline", "qiskit%", "quest%", "quest+qiskit%")

	for _, pr := range prep {
		w, res := pr.w, pr.res
		base := float64(w.circuit.CNOTCount())
		qiskit := float64(transpile.Optimize(w.circuit).CNOTCount())
		quest := meanCNOTs(res, false)
		questQiskit := meanCNOTs(res, true)
		cfg.printf("%16s %10.0f %10.1f %10.1f %14.1f\n",
			w.label(), base,
			reductionPct(base, qiskit),
			reductionPct(base, quest),
			reductionPct(base, questQiskit))
	}
	return nil
}
