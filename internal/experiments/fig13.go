package experiments

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/sim"
	"repro/internal/transpile"
)

// Fig13CaseStudy reproduces Fig. 13: the TFIM and Heisenberg time
// evolutions on the Manila-class device. Every timestep is a separate
// circuit compiled separately with QUEST, exactly as in the paper. The
// QUEST + Qiskit curve should track the ground truth much more closely
// than the Qiskit-only curve.
func Fig13CaseStudy(cfg Config) error {
	cfg.defaults()
	dev := noise.Manila()
	const shots = 8192

	run := func(c *circuit.Circuit, seed int64) ([]float64, error) {
		return dev.Run(transpile.Optimize(c), noise.Options{Shots: shots, Seed: seed})
	}
	return caseStudy(cfg, "Fig 13 (Manila-class device)", run)
}

// caseStudy renders a ground-truth / Qiskit / QUEST+Qiskit observable
// table over the time evolution for both case-study algorithms, using the
// provided noisy runner.
func caseStudy(cfg Config, title string, run func(*circuit.Circuit, int64) ([]float64, error)) error {
	for _, cs := range caseStudyAlgos() {
		cfg.section(fmt.Sprintf("%s: %s-4 %s", title, cs.name, cs.obsName))
		cfg.printf("%6s %10s %10s %14s %10s %10s\n",
			"step", "truth", "qiskit", "quest+qiskit", "qiskit|Δ|", "quest|Δ|")

		for _, steps := range caseStudySteps(cfg) {
			c := cs.build(steps)
			n := c.NumQubits
			truth := cs.observable(sim.Probabilities(c), n)

			qp, err := run(c, cfg.Seed+int64(steps))
			if err != nil {
				return err
			}
			qiskitObs := cs.observable(qp, n)

			res, err := core.Run(c, pipelineConfig(cfg))
			if err != nil {
				return fmt.Errorf("case study %s step %d: %w", cs.name, steps, err)
			}
			ens, err := res.EnsembleProbabilities(func(a *circuit.Circuit) ([]float64, error) {
				return run(a, cfg.Seed+int64(steps)+101)
			})
			if err != nil {
				return err
			}
			questObs := cs.observable(ens, n)

			cfg.printf("%6d %10.4f %10.4f %14.4f %10.4f %10.4f\n",
				steps, truth, qiskitObs, questObs,
				abs(truth-qiskitObs), abs(truth-questObs))
		}
	}
	return nil
}
