package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
	"repro/internal/transpile"
)

// noiseLevels is the paper's p_gate sweep: 1%, 0.5%, 0.1%.
var noiseLevels = []float64{0.01, 0.005, 0.001}

// Fig11NoiseSweep reproduces Fig. 11: percent TVD reduction relative to
// the noisy Baseline run, for Qiskit and QUEST + Qiskit, at decreasing
// hardware noise (projecting QUEST onto future NISQ devices).
func Fig11NoiseSweep(cfg Config) error {
	cfg.defaults()
	shots := 8192
	trajectories := 100
	if cfg.Quick {
		trajectories = 60
	}

	// The pipeline output is noise-independent; run it once per workload.
	prep, err := preparedWorkloads(cfg, "fig11", sweepOpts{maxQubits: 8})
	if err != nil {
		return err
	}

	for _, p := range noiseLevels {
		m := noise.Uniform(p)
		cfg.section(fmt.Sprintf("Fig 11: %% TVD reduction vs noisy Baseline at noise %.1f%%", p*100))
		cfg.printf("%16s %14s %12s %16s\n", "algorithm", "baseline TVD", "qiskit %", "quest+qiskit %")

		for _, pr := range prep {
			w := pr.w
			ideal := sim.Probabilities(w.circuit)
			opts := noise.Options{
				Shots: shots, Trajectories: trajectories, Seed: cfg.Seed,
				Parallelism: cfg.Parallelism,
			}

			baseTVD := metrics.TVD(ideal, m.Run(transpile.Lower(w.circuit), opts))
			qiskitTVD := metrics.TVD(ideal, m.Run(transpile.Optimize(w.circuit), opts))

			ens, err := pr.res.EnsembleProbabilitiesWorkers(
				noisyRunner(m, shots, cfg.Seed+7, true), cfg.Parallelism)
			if err != nil {
				return err
			}
			questTVD := metrics.TVD(ideal, ens)

			cfg.printf("%16s %14.4f %12.1f %16.1f\n",
				w.label(), baseTVD,
				reductionPct(baseTVD, qiskitTVD),
				reductionPct(baseTVD, questTVD))
		}
	}
	return nil
}
