package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
)

// Fig16ThresholdSweep reproduces Fig. 16: sweeping the dual annealing
// engine's process-distance threshold. Small-to-moderate thresholds give
// good output over a wide range; a threshold that is too large admits
// coarse approximations and the output error spikes.
//
// The sweep synthesizes each circuit ONCE at the tightest ε of the sweep
// (the synthesis stage dominates the pipeline cost, Fig. 12) and re-runs
// only the selection stage per ε-point over the shared
// pipeline.SynthesisArtifact. The tightest point drives the most retry
// widening per block, so its harvest satisfies every wider threshold too
// (see pipeline.Reselect for the contract); absolute numbers can differ
// slightly from per-point full runs, the Σε ≤ threshold bound still holds
// exactly at every point, and the comparative shape — the reproduction
// target — is unchanged.
func Fig16ThresholdSweep(cfg Config) error {
	cfg.defaults()
	epsilons := []float64{0.01, 0.03, 0.05, 0.1, 0.2, 0.4, 0.8}
	steps := 3
	if !cfg.Quick {
		steps = 8
	}
	m := noise.Uniform(0.01)

	for _, cs := range caseStudyAlgos() {
		c := cs.build(steps)
		ideal := sim.Probabilities(c)
		truth := cs.observable(ideal, c.NumQubits)

		cfg.section(fmt.Sprintf("Fig 16: %s-4 output vs process-distance threshold", cs.name))
		cfg.printf("%12s %10s %10s %12s %14s\n",
			"eps/block", "samples", "meanCNOTs", "ideal TVD", "noisy obs |Δ|")

		base := pipelineConfig(cfg)
		base.Epsilon = epsilons[0]
		// The sweep studies the raw proportional threshold; lift the
		// safety cap so large ε values are actually exercised.
		base.ThresholdCap = 1e9
		variants := make([]core.Config, len(epsilons))
		for i, eps := range epsilons {
			variants[i] = base
			variants[i].Epsilon = eps
		}
		err := reselectSweep(c, base, variants, func(i int, res *core.Result) error {
			ens, err := res.EnsembleProbabilities(idealProbabilities)
			if err != nil {
				return err
			}
			noisyEns, err := res.EnsembleProbabilities(noisyRunner(m, 8192, cfg.Seed+5, true))
			if err != nil {
				return err
			}
			obs := cs.observable(noisyEns, c.NumQubits)
			cfg.printf("%12.2f %10d %10.1f %12.4f %14.4f\n",
				epsilons[i], len(res.Selected), meanCNOTs(res, false),
				metrics.TVD(ideal, ens), abs(truth-obs))
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
