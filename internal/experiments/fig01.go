package experiments

import (
	"repro/internal/algos"
	"repro/internal/circuit"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
	"repro/internal/transpile"
)

// caseStudyAlgos returns the two Fig. 1/13/14 case-study circuit builders:
// TFIM-4 (average magnetization) and Heisenberg-4 from the Néel state
// (staggered magnetization), as functions of the timestep count.
func caseStudyAlgos() []struct {
	name       string
	build      func(steps int) *circuit.Circuit
	observable func(p []float64, n int) float64
	obsName    string
} {
	const (
		n  = 4
		dt = 0.05
	)
	return []struct {
		name       string
		build      func(steps int) *circuit.Circuit
		observable func(p []float64, n int) float64
		obsName    string
	}{
		{
			name:       "TFIM",
			build:      func(steps int) *circuit.Circuit { return algos.TFIM(n, steps, dt, 1, 1) },
			observable: metrics.AverageMagnetization,
			obsName:    "avg magnetization",
		},
		{
			name:       "Heisenberg",
			build:      func(steps int) *circuit.Circuit { return algos.HeisenbergNeel(n, steps, dt, 1, 0.5) },
			observable: metrics.StaggeredMagnetization,
			obsName:    "staggered magnetization",
		},
	}
}

func caseStudySteps(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 2, 3, 4}
	}
	return []int{1, 2, 4, 6, 8, 10, 12, 16, 20}
}

// Fig01Motivation reproduces Fig. 1: the output of TFIM and Heisenberg on
// a noisy Manila-class device with all Qiskit-style optimizations applied
// is far from the ground truth.
func Fig01Motivation(cfg Config) error {
	cfg.defaults()
	dev := noise.Manila()
	shots := 8192

	for _, cs := range caseStudyAlgos() {
		cfg.section("Fig 1: " + cs.name + "-4 " + cs.obsName + " (ground truth vs Qiskit on noisy device)")
		cfg.printf("%8s %14s %14s %10s\n", "step", "truth", "qiskit+noise", "|error|")
		for _, steps := range caseStudySteps(cfg) {
			c := cs.build(steps)
			truth := cs.observable(sim.Probabilities(c), c.NumQubits)
			opt := transpile.Optimize(c)
			p, err := dev.Run(opt, noise.Options{Shots: shots, Seed: cfg.Seed + int64(steps)})
			if err != nil {
				return err
			}
			noisy := cs.observable(p, c.NumQubits)
			cfg.printf("%8d %14.4f %14.4f %10.4f\n", steps, truth, noisy, abs(truth-noisy))
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
