package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func runAblation(t *testing.T, name string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := RunAblation(name, Config{Quick: true, Seed: 3, Out: &buf}); err != nil {
		t.Fatalf("ablation %s: %v", name, err)
	}
	if buf.Len() == 0 {
		t.Fatalf("ablation %s produced no output", name)
	}
	return buf.String()
}

func TestAblationsList(t *testing.T) {
	if len(Ablations()) != 4 {
		t.Errorf("Ablations() = %v", Ablations())
	}
	if err := RunAblation("nope", Config{Quick: true}); err == nil {
		t.Error("unknown ablation accepted")
	}
}

func TestAblationSelection(t *testing.T) {
	out := runAblation(t, "selection")
	if !strings.Contains(out, "QUEST (dissimilar") || !strings.Contains(out, "random") {
		t.Errorf("selection ablation output:\n%s", out)
	}
}

func TestAblationEnsembleSize(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline four times")
	}
	out := runAblation(t, "ensemble-size")
	if !strings.Contains(out, "noisy TVD") {
		t.Errorf("ensemble-size ablation output:\n%s", out)
	}
}

func TestAblationWeight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline five times")
	}
	out := runAblation(t, "weight")
	if !strings.Contains(out, "cx weight") {
		t.Errorf("weight ablation output:\n%s", out)
	}
}

func TestAblationBlockSize(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline per block size")
	}
	out := runAblation(t, "blocksize")
	if !strings.Contains(out, "blocks") {
		t.Errorf("blocksize ablation output:\n%s", out)
	}
}
