package experiments

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/pipeline"
)

// This file is the shared sweep driver behind the figures. Two patterns
// recur across the evaluation:
//
//  1. Per-workload preparation — run the pipeline once per benchmark and
//     evaluate the result many ways (Figs. 7, 8, 9, 10, 11, 12). Every
//     figure used to carry its own copy of the workloads/questRun/error-
//     wrap loop; preparedWorkloads is that loop, written once.
//  2. Selection-only sweeps — evaluate many configurations that differ
//     only in selection-stage parameters (ε, M, CXWeight). The synthesis
//     stage dominates the cost (Fig. 12) and does not depend on those
//     parameters, so reselectSweep computes one pipeline.SynthesisArtifact
//     and re-runs selection per point (Fig. 16, the ensemble-size
//     ablation). BENCH_pipeline.json records the resulting speedup.

// prepared pairs a workload with its pipeline result.
type prepared struct {
	w   workload
	res *core.Result
}

// sweepOpts filters and adjusts a per-workload preparation pass.
type sweepOpts struct {
	// maxQubits skips workloads above this size (0 = no cap).
	maxQubits int
	// filter, when non-nil, additionally restricts the workload set.
	filter func(w workload) bool
	// mutate, when non-nil, adjusts the pipeline config before the runs.
	mutate func(pc *core.Config)
}

// preparedWorkloads runs the QUEST pipeline once over every eligible
// benchmark workload. Errors are wrapped with the figure label so the
// caller can return them unadorned.
func preparedWorkloads(cfg Config, fig string, opt sweepOpts) ([]prepared, error) {
	ws, err := workloads(cfg)
	if err != nil {
		return nil, err
	}
	pc := pipelineConfig(cfg)
	if opt.mutate != nil {
		opt.mutate(&pc)
	}
	var out []prepared
	for _, w := range ws {
		if opt.maxQubits > 0 && w.circuit.NumQubits > opt.maxQubits {
			continue
		}
		if opt.filter != nil && !opt.filter(w) {
			continue
		}
		res, err := core.Run(w.circuit, pc)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", fig, w.label(), err)
		}
		if len(res.Degradations) > 0 {
			cfg.printf("  [%s: %d of %d blocks degraded to exact sub-circuits under the time budget]\n",
				w.label(), len(res.Degradations), len(res.Blocks))
		}
		out = append(out, prepared{w, res})
	}
	return out, nil
}

// reselectSweep synthesizes a circuit once under base and re-runs the
// selection stage for each variant config, invoking fn with every result
// in order. Variants may change any selection-stage parameter (Epsilon,
// MaxSamples, CXWeight, AnnealIterations, ...) but must keep base's
// BlockSize. For ε sweeps, base should carry the tightest ε of the sweep:
// the tight threshold drives the most per-block retry widening, so the
// shared harvest satisfies every wider point too (see pipeline.Reselect
// for the reuse contract). M/weight sweeps at base's own ε are
// bit-identical to full per-point runs.
func reselectSweep(c *circuit.Circuit, base core.Config, variants []core.Config, fn func(i int, res *core.Result) error) error {
	ctx := context.Background()
	art, err := pipeline.Synthesize(ctx, c, base)
	if err != nil {
		return fmt.Errorf("sweep synthesis: %w", err)
	}
	for i, v := range variants {
		res, err := pipeline.Reselect(ctx, art, v)
		if err != nil {
			return fmt.Errorf("sweep point %d: %w", i, err)
		}
		if err := fn(i, res); err != nil {
			return err
		}
	}
	return nil
}
