package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/sim"
)

// Fig07BoundVsActual reproduces Fig. 7: the Sec. 3.8 theoretical upper
// bound Σ_k ε_k always dominates — and reasonably tracks — the actual
// process distance of the assembled full-circuit approximation.
func Fig07BoundVsActual(cfg Config) error {
	cfg.defaults()
	// A representative subset keeps the full-unitary comparison cheap;
	// the bound is additionally property-tested in internal/pipeline.
	subset := map[string]bool{"tfim": true, "xy": true, "qft": true, "adder": true}
	prep, err := preparedWorkloads(cfg, "fig7", sweepOpts{
		maxQubits: 6,
		filter:    func(w workload) bool { return subset[w.name] },
	})
	if err != nil {
		return err
	}
	cfg.section("Fig 7: theoretical upper bound vs actual full-circuit process distance")
	cfg.printf("%16s %8s %12s %12s %8s\n", "algorithm", "sample", "bound Σε", "actual HS", "ok")

	violations := 0
	checked := 0
	for _, pr := range prep {
		w, res := pr.w, pr.res
		orig := sim.Unitary(w.circuit)
		for i, a := range res.Selected {
			actual := linalg.HSDistance(orig, sim.Unitary(a.Circuit))
			bound := a.EpsilonSum
			// 1e-6 tolerance: HS distances near zero amplify float
			// round-off through the square root.
			ok := actual <= bound+1e-6
			checked++
			if !ok {
				violations++
			}
			cfg.printf("%16s %8d %12.5f %12.5f %8v\n", w.label(), i, bound, actual, ok)
		}
	}
	cfg.printf("bound respected in %d/%d samples\n", checked-violations, checked)
	if violations > 0 {
		return fmt.Errorf("fig7: bound violated on %d samples", violations)
	}
	_ = core.UpperBound // the bound helper under test
	return nil
}
