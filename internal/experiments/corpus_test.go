package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/algos"
	"repro/internal/qasm"
)

// miniCorpus writes a small 3-circuit corpus so the driver tests stay
// fast; the committed examples/circuits/corpus is exercised end-to-end by
// `make corpus-smoke`.
func miniCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, gen := range map[string]string{
		"tfim_5.qasm": "tfim",
		"qft_4.qasm":  "qft",
		"vqe_5.qasm":  "vqe",
	} {
		n := 5
		if gen == "qft" {
			n = 4
		}
		c, err := algos.Generate(gen, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(qasm.Write(c)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func corpusOpts(dir, mode string) CorpusOptions {
	return CorpusOptions{
		Dir:              dir,
		Mode:             mode,
		Workers:          4,
		Jobs:             3,
		MaxSamples:       4,
		AnnealIterations: 100,
		CacheSize:        256,
	}
}

// TestCorpusModesProduceIdenticalResults is the corpus-level determinism
// claim: the overlapped+scheduled driver must compile every circuit to
// exactly the same CNOT counts, block structure, sample count, and
// degradations as the staged-serial baseline — only wall time may differ.
func TestCorpusModesProduceIdenticalResults(t *testing.T) {
	dir := miniCorpus(t)
	serial, err := RunCorpus(context.Background(), corpusOpts(dir, ModeStagedSerial))
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := RunCorpus(context.Background(), corpusOpts(dir, ModeOverlapped))
	if err != nil {
		t.Fatal(err)
	}
	sc, oc := serial.Passes[0].Circuits, overlap.Passes[0].Circuits
	if len(sc) != len(oc) {
		t.Fatalf("circuit counts differ: %d vs %d", len(sc), len(oc))
	}
	for i := range sc {
		a, b := sc[i], oc[i]
		if a.File != b.File || a.Blocks != b.Blocks || a.CNOTs != b.CNOTs ||
			a.ApproxCNOTs != b.ApproxCNOTs || a.Samples != b.Samples ||
			a.Degradations != b.Degradations {
			t.Errorf("%s: staged-serial %+v != overlapped %+v", a.File, a, b)
		}
	}
}

// TestCorpusSecondPassHitsCache: a second pass over the same corpus with
// the shared cache must be served (at least partly) from it.
func TestCorpusSecondPassHitsCache(t *testing.T) {
	dir := miniCorpus(t)
	opts := corpusOpts(dir, ModeOverlapped)
	opts.Passes = 2
	rep, err := RunCorpus(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) != 2 {
		t.Fatalf("passes = %d, want 2", len(rep.Passes))
	}
	second := rep.Passes[1].CacheStats
	if second.Hits == 0 {
		t.Fatalf("second pass had no cache hits: %+v", second)
	}
	if second.Misses != 0 {
		t.Errorf("second pass missed the cache %d times", second.Misses)
	}
	if rep.Degradations() != 0 {
		t.Errorf("corpus degraded %d blocks", rep.Degradations())
	}
}

// TestCorpusOutputLines: the greppable corpus lines benchjson and
// corpus-smoke consume must be present and well-formed.
func TestCorpusOutputLines(t *testing.T) {
	dir := miniCorpus(t)
	var buf strings.Builder
	opts := corpusOpts(dir, ModeOverlapped)
	opts.Out = &buf
	if _, err := RunCorpus(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"corpus tfim_5 pass=1 ",
		"corpus qft_4 pass=1 ",
		"corpus vqe_5 pass=1 ",
		"corpus-total mode=overlap pass=1 ",
		"degradations=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("corpus output missing %q:\n%s", want, out)
		}
	}
}

// TestCorpusRejectsUnknownMode and empty directories.
func TestCorpusBadInputs(t *testing.T) {
	dir := miniCorpus(t)
	opts := corpusOpts(dir, "warp")
	if _, err := RunCorpus(context.Background(), opts); err == nil {
		t.Error("unknown mode accepted")
	}
	empty := t.TempDir()
	if _, err := RunCorpus(context.Background(), corpusOpts(empty, ModeOverlapped)); err == nil {
		t.Error("empty corpus accepted")
	}
}
