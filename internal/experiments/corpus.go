package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/qasm"
	"repro/internal/ucache"
)

// Corpus compilation modes. StagedSerial reproduces the pre-batch
// driver — compiling a directory used to mean one `quest` invocation per
// file, so each circuit runs the staged pipeline serially with a private
// per-run worker pool and its own cold synthesis cache. Overlapped is
// the batch path this driver exists for: every circuit uses the
// streaming partition+synthesis fusion, several circuits compile
// concurrently, and all of them draw synthesis slots from one shared
// scheduler pool and share one synthesis cache, so a block unitary
// appearing anywhere in the corpus is synthesized exactly once
// machine-wide (singleflight coalesces even concurrent duplicates).
const (
	ModeStagedSerial = "staged-serial"
	ModeOverlapped   = "overlap"
)

// CorpusOptions configures RunCorpus.
type CorpusOptions struct {
	// Dir holds the corpus .qasm files (every *.qasm in it is compiled,
	// in sorted order).
	Dir string
	// Mode is ModeOverlapped (default) or ModeStagedSerial.
	Mode string
	// Jobs is the number of circuits compiled concurrently in overlapped
	// mode (default min(4, number of circuits); staged-serial is always 1).
	Jobs int
	// Workers is the machine-wide synthesis slot budget: the shared
	// scheduler pool size in overlapped mode, the per-run Parallelism in
	// staged-serial mode (0 = NumCPU). Results are identical either way.
	Workers int
	// Passes compiles the corpus this many times against one shared
	// synthesis cache (default 1); a second pass measures warm-cache
	// serving and must show hits.
	Passes int
	// BlockSize, Epsilon, MaxSamples, AnnealIterations, Seed override the
	// pipeline defaults (zero keeps each default).
	BlockSize        int
	Epsilon          float64
	MaxSamples       int
	AnnealIterations int
	Seed             int64
	// CacheSize bounds the shared synthesis cache (0 disables caching).
	CacheSize int
	// Timeout bounds each circuit's compilation (0 = none); expired runs
	// degrade rather than fail (AllowDegraded).
	Timeout time.Duration
	// Out receives the result table and the greppable `corpus ...` lines
	// benchjson -corpus parses; nil means io.Discard.
	Out io.Writer
}

// CorpusCircuit is one circuit's compilation outcome within a pass.
type CorpusCircuit struct {
	File         string        `json:"file"`
	Qubits       int           `json:"qubits"`
	Ops          int           `json:"ops"`
	Blocks       int           `json:"blocks"`
	CNOTs        int           `json:"cnots"`
	ApproxCNOTs  int           `json:"approx_cnots"`
	ReductionPct float64       `json:"reduction_pct"`
	Samples      int           `json:"samples"`
	Degradations int           `json:"degradations"`
	Wall         time.Duration `json:"wall_ns"`
}

// CorpusPass is one full compilation of the corpus.
type CorpusPass struct {
	Pass       int             `json:"pass"`
	Circuits   []CorpusCircuit `json:"circuits"`
	Wall       time.Duration   `json:"wall_ns"`
	CacheStats ucache.Stats    `json:"cache_stats"`
}

// CorpusReport is RunCorpus's result.
type CorpusReport struct {
	Mode    string       `json:"mode"`
	Workers int          `json:"workers"`
	Jobs    int          `json:"jobs"`
	Passes  []CorpusPass `json:"passes"`
}

// Degradations sums degradations across every pass and circuit.
func (r *CorpusReport) Degradations() int {
	total := 0
	for _, p := range r.Passes {
		for _, c := range p.Circuits {
			total += c.Degradations
		}
	}
	return total
}

// RunCorpus compiles every .qasm circuit in opts.Dir through the QUEST
// pipeline and reports per-circuit CNOT reduction, wall time, and cache
// activity. The two modes produce bit-identical compilation results
// (asserted by tests); only scheduling differs, which is exactly what the
// corpus benchmark measures.
func RunCorpus(ctx context.Context, opts CorpusOptions) (*CorpusReport, error) {
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	if opts.Mode == "" {
		opts.Mode = ModeOverlapped
	}
	if opts.Mode != ModeOverlapped && opts.Mode != ModeStagedSerial {
		return nil, fmt.Errorf("experiments: unknown corpus mode %q (have %s, %s)",
			opts.Mode, ModeOverlapped, ModeStagedSerial)
	}
	if opts.Passes <= 0 {
		opts.Passes = 1
	}

	files, err := filepath.Glob(filepath.Join(opts.Dir, "*.qasm"))
	if err != nil {
		return nil, fmt.Errorf("experiments: corpus: %w", err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("experiments: no .qasm files in %s", opts.Dir)
	}
	sort.Strings(files)
	circuits := make([]*qasmCircuit, len(files))
	for i, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("experiments: corpus: %w", err)
		}
		c, err := qasm.Parse(string(src))
		if err != nil {
			return nil, fmt.Errorf("experiments: corpus %s: %w", filepath.Base(f), err)
		}
		name := strings.TrimSuffix(filepath.Base(f), ".qasm")
		circuits[i] = &qasmCircuit{name: name, circuit: c}
	}

	// Overlapped mode shares one cache across the whole batch;
	// staged-serial gives every circuit a cold private cache, exactly like
	// the per-invocation runs it models. Caching never changes results
	// (strict mode), so the two modes still compile identically.
	var cache *ucache.Cache
	if opts.CacheSize > 0 && opts.Mode == ModeOverlapped {
		cache = ucache.New(opts.CacheSize, 0)
	}
	workers := par.Workers(opts.Workers)
	jobs := 1
	var pool *par.Pool
	if opts.Mode == ModeOverlapped {
		pool = par.NewPool(workers)
		jobs = opts.Jobs
		if jobs <= 0 {
			jobs = 4
		}
		if jobs > len(files) {
			jobs = len(files)
		}
	}

	report := &CorpusReport{Mode: opts.Mode, Workers: workers, Jobs: jobs}
	for pass := 1; pass <= opts.Passes; pass++ {
		var statsBefore ucache.Stats
		if cache != nil {
			statsBefore = cache.Stats()
		}
		results := make([]CorpusCircuit, len(circuits))
		var perPass ucache.Stats // staged-serial: summed per-circuit stats
		compile := func(cctx context.Context, i int) error {
			qc := circuits[i]
			runCache := cache
			if runCache == nil && opts.CacheSize > 0 {
				runCache = ucache.New(opts.CacheSize, 0)
			}
			cfg := pipeline.Config{
				BlockSize:        opts.BlockSize,
				Epsilon:          opts.Epsilon,
				MaxSamples:       opts.MaxSamples,
				AnnealIterations: opts.AnnealIterations,
				Seed:             opts.Seed,
				Timeout:          opts.Timeout,
				AllowDegraded:    opts.Timeout > 0,
				SynthCache:       runCache,
				Parallelism:      workers,
				Overlap:          opts.Mode == ModeOverlapped,
				Scheduler:        pool,
			}
			start := time.Now()
			res, err := pipeline.RunCtx(cctx, qc.circuit, cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", qc.name, err)
			}
			if cache == nil && runCache != nil {
				// Serial loop: no concurrent writers of perPass.
				perPass.Hits += res.CacheStats.Hits
				perPass.Misses += res.CacheStats.Misses
				perPass.Evictions += res.CacheStats.Evictions
			}
			orig := qc.circuit.CNOTCount()
			best := res.BestCNOTs()
			red := 0.0
			if orig > 0 {
				red = 100 * float64(orig-best) / float64(orig)
			}
			results[i] = CorpusCircuit{
				File:         qc.name,
				Qubits:       qc.circuit.NumQubits,
				Ops:          qc.circuit.Size(),
				Blocks:       len(res.Blocks),
				CNOTs:        orig,
				ApproxCNOTs:  best,
				ReductionPct: red,
				Samples:      len(res.Selected),
				Degradations: len(res.Degradations),
				Wall:         time.Since(start),
			}
			return nil
		}
		passStart := time.Now()
		if jobs == 1 {
			for i := range circuits {
				if err := compile(ctx, i); err != nil {
					return nil, fmt.Errorf("experiments: corpus: %w", err)
				}
			}
		} else if err := par.ForEachErr(ctx, jobs, len(circuits), compile); err != nil {
			return nil, fmt.Errorf("experiments: corpus: %w", err)
		}
		p := CorpusPass{Pass: pass, Circuits: results, Wall: time.Since(passStart)}
		if cache != nil {
			p.CacheStats = cache.Stats().Sub(statsBefore)
		} else {
			p.CacheStats = perPass
		}
		report.Passes = append(report.Passes, p)
		printCorpusPass(out, report, p)
	}
	return report, nil
}

type qasmCircuit struct {
	name    string
	circuit *circuit.Circuit
}

// printCorpusPass writes one pass's human table followed by the greppable
// machine lines (`corpus <file> k=v ...` / `corpus-total ...`) that
// cmd/benchjson -corpus turns into BENCH_corpus.json sections and
// `make corpus-smoke` asserts on.
func printCorpusPass(w io.Writer, r *CorpusReport, p CorpusPass) {
	fmt.Fprintf(w, "\ncorpus pass %d (%s, workers=%d, jobs=%d)\n", p.Pass, r.Mode, r.Workers, r.Jobs)
	fmt.Fprintf(w, "%-16s %7s %7s %8s %8s %10s %6s %6s %12s\n",
		"circuit", "qubits", "blocks", "cnots", "approx", "reduction", "deg", "M", "wall")
	totalDeg := 0
	for _, c := range p.Circuits {
		fmt.Fprintf(w, "%-16s %7d %7d %8d %8d %9.1f%% %6d %6d %12v\n",
			c.File, c.Qubits, c.Blocks, c.CNOTs, c.ApproxCNOTs, c.ReductionPct,
			c.Degradations, c.Samples, c.Wall.Round(time.Millisecond))
		totalDeg += c.Degradations
	}
	fmt.Fprintf(w, "pass wall %v, cache %d hits / %d misses, %d degradations\n",
		p.Wall.Round(time.Millisecond), p.CacheStats.Hits, p.CacheStats.Misses, totalDeg)
	for _, c := range p.Circuits {
		fmt.Fprintf(w, "corpus %s pass=%d qubits=%d ops=%d blocks=%d cnots=%d approx_cnots=%d reduction_pct=%.2f samples=%d degradations=%d wall_ns=%d\n",
			c.File, p.Pass, c.Qubits, c.Ops, c.Blocks, c.CNOTs, c.ApproxCNOTs,
			c.ReductionPct, c.Samples, c.Degradations, c.Wall.Nanoseconds())
	}
	fmt.Fprintf(w, "corpus-total mode=%s pass=%d workers=%d jobs=%d circuits=%d degradations=%d cache_hits=%d cache_misses=%d wall_ns=%d\n",
		r.Mode, p.Pass, r.Workers, r.Jobs, len(p.Circuits), totalDeg,
		p.CacheStats.Hits, p.CacheStats.Misses, p.Wall.Nanoseconds())
}
