package experiments

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Fig09IdealOutputDistance reproduces Fig. 9: the QUEST ensemble output
// stays close to the Baseline's ideal output even in a noiseless
// environment — (a) TVD and (b) JSD per benchmark.
func Fig09IdealOutputDistance(cfg Config) error {
	cfg.defaults()
	prep, err := preparedWorkloads(cfg, "fig9", sweepOpts{maxQubits: 10})
	if err != nil {
		return err
	}
	cfg.section("Fig 9: ideal-simulation output distance of the QUEST ensemble")
	cfg.printf("%16s %10s %10s %10s\n", "algorithm", "samples", "TVD", "JSD")

	for _, pr := range prep {
		w, res := pr.w, pr.res
		ideal := sim.Probabilities(w.circuit)
		ens, err := res.EnsembleProbabilities(idealProbabilities)
		if err != nil {
			return err
		}
		cfg.printf("%16s %10d %10.4f %10.4f\n",
			w.label(), len(res.Selected), metrics.TVD(ideal, ens), metrics.JSD(ideal, ens))
	}
	return nil
}
