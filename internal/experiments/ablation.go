package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
)

// Ablations lists the ablation studies available through RunAblation.
// Each targets one of the design choices DESIGN.md calls out:
//
//   - "selection":     dissimilar dual-annealing selection vs random
//     sampling of the approximation space (Sec. 3.6's motivating claim).
//   - "ensemble-size": output quality as the number of averaged samples M
//     grows (the Fig. 6 intuition).
//   - "weight":        the CNOT-vs-dissimilarity objective weight (the
//     paper fixes it at ½/½).
//   - "blocksize":     partition block size (the paper uses 4; this
//     reproduction defaults to 3).
func Ablations() []string {
	return []string{"selection", "ensemble-size", "weight", "blocksize"}
}

// RunAblation runs one named ablation study.
func RunAblation(which string, cfg Config) error {
	cfg.defaults()
	if err := cfg.resolveObjective(); err != nil {
		return err
	}
	switch which {
	case "selection":
		return ablateSelection(cfg)
	case "ensemble-size":
		return ablateEnsembleSize(cfg)
	case "weight":
		return ablateWeight(cfg)
	case "blocksize":
		return ablateBlockSize(cfg)
	}
	return fmt.Errorf("experiments: unknown ablation %q (have %v)", which, Ablations())
}

// ablationCircuit returns the study workload: the TFIM-4 evolution.
func ablationCircuit(cfg Config) *workload {
	steps := 3
	if !cfg.Quick {
		steps = 6
	}
	c := algos.TFIM(4, steps, 0.05, 1, 1)
	return &workload{name: "tfim", qubits: 4, circuit: c}
}

// randomFeasibleChoice draws a uniform random choice vector whose summed
// block distance respects the threshold (up to maxTries attempts; returns
// ok=false if none found).
func randomFeasibleChoice(blocks []core.BlockApproximations, threshold float64, rng *rand.Rand, enforce bool) ([]int, bool) {
	const maxTries = 2000
	for try := 0; try < maxTries; try++ {
		choice := make([]int, len(blocks))
		var epsSum float64
		for b, ba := range blocks {
			i := rng.Intn(len(ba.Candidates))
			choice[b] = i
			epsSum += ba.Candidates[i].Distance
		}
		if !enforce || epsSum <= threshold {
			return choice, true
		}
	}
	return nil, false
}

// ablateSelection compares QUEST's apriori-controlled dissimilar
// selection with naive random sampling of the full approximation space —
// the paper's claim (Sec. 3.6) is that random sampling produces poor
// outputs (> 0.1 TVD) because the space mixes approximations of very
// different fidelities and CNOT counts.
func ablateSelection(cfg Config) error {
	w := ablationCircuit(cfg)
	ideal := sim.Probabilities(w.circuit)

	// QUEST at its normal threshold.
	res, err := questRun(*w, cfg)
	if err != nil {
		return err
	}
	m := len(res.Selected)
	if m < 2 {
		m = 2
	}
	questEns, err := res.EnsembleProbabilities(idealProbabilities)
	if err != nil {
		return err
	}

	// The raw approximation space: a pipeline run with a very permissive
	// per-block budget, so coarse approximations stay available — this is
	// what naive random sampling would draw from.
	widePC := pipelineConfig(cfg)
	widePC.Epsilon = 0.4
	widePC.ThresholdCap = 1e9 // raw space: no safety cap, no pruning
	widePC.MaxSamples = 1     // selection result unused; we only need Blocks
	wide, err := core.Run(w.circuit, widePC)
	if err != nil {
		return err
	}

	cfg.section("Ablation: dissimilar selection vs random sampling (TFIM-4, ideal sim)")
	cfg.printf("%34s %10s %10s\n", "strategy", "samples", "TVD")
	cfg.printf("%34s %10d %10.4f\n", "QUEST (dissimilar, Σε bounded)", len(res.Selected), metrics.TVD(ideal, questEns))

	rng := rand.New(rand.NewSource(cfg.Seed + 41))
	for _, mode := range []struct {
		name      string
		blocks    []core.BlockApproximations
		threshold float64
		enforce   bool
	}{
		{"random (within QUEST threshold)", res.Blocks, res.Threshold, true},
		{"random (full approx. space)", wide.Blocks, 0, false},
	} {
		const repeats = 5
		var worst, sum float64
		for r := 0; r < repeats; r++ {
			var dists [][]float64
			for s := 0; s < m; s++ {
				choice, ok := randomFeasibleChoice(mode.blocks, mode.threshold, rng, mode.enforce)
				if !ok {
					return fmt.Errorf("ablation: no feasible random choice found")
				}
				a, err := core.Assemble(w.circuit.NumQubits, mode.blocks, choice)
				if err != nil {
					return err
				}
				dists = append(dists, sim.Probabilities(a.Circuit))
			}
			tvd := metrics.TVD(ideal, metrics.AverageDistributions(dists...))
			sum += tvd
			if tvd > worst {
				worst = tvd
			}
		}
		cfg.printf("%34s %10d %10.4f (worst %.4f over %d trials)\n",
			mode.name, m, sum/repeats, worst, repeats)
	}
	return nil
}

// ablateEnsembleSize sweeps the maximum ensemble size M.
func ablateEnsembleSize(cfg Config) error {
	w := ablationCircuit(cfg)
	ideal := sim.Probabilities(w.circuit)
	nm := noise.Uniform(0.01)

	// Heisenberg approximations deviate individually (unlike TFIM's,
	// which are individually accurate), so the Fig. 6 averaging effect
	// is visible here.
	steps := 3
	if !cfg.Quick {
		steps = 6
	}
	hc := algos.HeisenbergNeel(4, steps, 0.05, 1, 0.5)
	w = &workload{name: "heisenberg", qubits: 4, circuit: hc}
	ideal = sim.Probabilities(w.circuit)

	cfg.section("Ablation: ensemble size M (Heisenberg-4)")
	cfg.printf("%6s %10s %12s %12s\n", "M", "selected", "ideal TVD", "noisy TVD")
	// MaxSamples is a selection-stage parameter: synthesize once and
	// re-select per M. Each point is bit-identical to a full run at that
	// M (asserted by TestReselectAcrossMaxSamplesMatchesFullRuns).
	sizes := []int{1, 2, 4, 8}
	base := pipelineConfig(cfg)
	variants := make([]core.Config, len(sizes))
	for i, m := range sizes {
		variants[i] = base
		variants[i].MaxSamples = m
	}
	return reselectSweep(w.circuit, base, variants, func(i int, res *core.Result) error {
		ens, err := res.EnsembleProbabilities(idealProbabilities)
		if err != nil {
			return err
		}
		noisy, err := res.EnsembleProbabilities(noisyRunner(nm, 8192, cfg.Seed+5, true))
		if err != nil {
			return err
		}
		cfg.printf("%6d %10d %12.4f %12.4f\n",
			sizes[i], len(res.Selected), metrics.TVD(ideal, ens), metrics.TVD(ideal, noisy))
		return nil
	})
}

// ablateWeight sweeps the objective weight between CNOT count and
// dissimilarity.
func ablateWeight(cfg Config) error {
	w := ablationCircuit(cfg)
	ideal := sim.Probabilities(w.circuit)

	cfg.section("Ablation: CNOT-count weight in the Algorithm-1 objective (TFIM-4)")
	cfg.printf("%10s %10s %12s %12s\n", "cx weight", "samples", "mean CNOTs", "ideal TVD")
	for _, weight := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		pc := pipelineConfig(cfg)
		pc.CXWeight = weight
		res, err := core.Run(w.circuit, pc)
		if err != nil {
			return err
		}
		ens, err := res.EnsembleProbabilities(idealProbabilities)
		if err != nil {
			return err
		}
		cfg.printf("%10.2f %10d %12.1f %12.4f\n",
			weight, len(res.Selected), meanCNOTs(res, false), metrics.TVD(ideal, ens))
	}
	return nil
}

// ablateBlockSize compares partition block sizes.
func ablateBlockSize(cfg Config) error {
	w := ablationCircuit(cfg)
	ideal := sim.Probabilities(w.circuit)
	base := float64(w.circuit.CNOTCount())

	sizes := []int{2, 3}
	if !cfg.Quick {
		sizes = []int{2, 3, 4}
	}
	cfg.section("Ablation: partition block size (TFIM-4)")
	cfg.printf("%6s %8s %12s %12s %12s\n", "size", "blocks", "quest red%", "ideal TVD", "time")
	for _, size := range sizes {
		pc := pipelineConfig(cfg)
		pc.BlockSize = size
		res, err := core.Run(w.circuit, pc)
		if err != nil {
			return err
		}
		ens, err := res.EnsembleProbabilities(idealProbabilities)
		if err != nil {
			return err
		}
		cfg.printf("%6d %8d %12.1f %12.4f %12s\n",
			size, len(res.Blocks),
			reductionPct(base, meanCNOTs(res, false)),
			metrics.TVD(ideal, ens),
			res.Timing.Total().Round(1e6))
	}
	return nil
}
