// Package experiments regenerates every figure of the QUEST evaluation
// (Sec. 4) as a text table: the motivation study (Fig. 1), the exact-
// synthesis scatter (Fig. 4), the bound validation (Fig. 7), CNOT
// reduction (Fig. 8), ideal output distance (Fig. 9), the Manila hardware
// comparison (Fig. 10), the noise sweep (Fig. 11), pipeline overhead
// (Fig. 12), the TFIM/Heisenberg case studies (Fig. 13-15) and the
// threshold sensitivity study (Fig. 16).
//
// Each figure has a Quick variant (small circuits, small search budgets)
// used by the bench harness, and a full variant closer to the paper's
// parameters. Absolute numbers differ from the paper (different hardware,
// simulated devices — see DESIGN.md); the comparative shapes are the
// reproduction target and are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/algos"
	"repro/internal/backend"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/noise"
	"repro/internal/sim"
	"repro/internal/transpile"
	"repro/internal/ucache"
)

// Config selects the experiment scale and output sink.
type Config struct {
	// Quick selects reduced workload sizes and search budgets.
	Quick bool
	// Seed seeds every stochastic component (default 1).
	Seed int64
	// Parallelism bounds the worker goroutines used by the pipeline and
	// the noisy simulator (0 or negative selects runtime.NumCPU()).
	// Results are identical for every value.
	Parallelism int
	// Timeout bounds each pipeline run within a figure (0 = none). Runs
	// that exhaust it degrade unfinished blocks to their exact
	// sub-circuits rather than failing the figure, so a bounded sweep
	// always completes — degraded points are just closer to the baseline.
	Timeout time.Duration
	// BlockTimeout bounds each per-block synthesis attempt (0 = none).
	BlockTimeout time.Duration
	// MaxRestarts caps the synthesis retries per block (0 = pipeline
	// default, negative = no retries).
	MaxRestarts int
	// SynthCache, when non-nil, memoizes block synthesis across every
	// pipeline run of a figure (see internal/ucache): sweeps that revisit
	// the same circuit at many ε-points or noise levels synthesize each
	// distinct block once. A strict-mode cache leaves every figure's
	// numbers bit-identical; it only changes how fast they appear.
	SynthCache *ucache.Cache
	// Objective names the selection objective ("cnot",
	// "fidelity[:<backend>]", "hybrid:<w>[:<backend>]"); empty keeps the
	// paper's cnot objective. Figures that compare objectives internally
	// (Fig. 17) ignore it.
	Objective string
	// Out receives the result tables; nil means io.Discard. Callers that
	// want them printed typically set os.Stdout.
	Out io.Writer

	// objective is the resolved Objective spec (see resolveObjective).
	objective core.Objective
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

// resolveObjective turns the Objective spec into the pipeline objective
// pipelineConfig installs; the empty spec resolves to the cnot default.
func (c *Config) resolveObjective() error {
	if c.Objective == "" {
		c.objective = nil
		return nil
	}
	obj, err := backend.Objective(c.Objective)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	c.objective = obj
	return nil
}

func (c *Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

func (c *Config) section(title string) {
	fmt.Fprintf(c.Out, "\n== %s ==\n", title)
}

// Figures lists the figure numbers Run accepts.
func Figures() []int { return []int{1, 4, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17} }

// Run regenerates one figure of the paper.
func Run(fig int, cfg Config) error {
	cfg.defaults()
	if err := cfg.resolveObjective(); err != nil {
		return err
	}
	switch fig {
	case 1:
		return Fig01Motivation(cfg)
	case 4:
		return Fig04ExactSynthScatter(cfg)
	case 7:
		return Fig07BoundVsActual(cfg)
	case 8:
		return Fig08CNOTReduction(cfg)
	case 9:
		return Fig09IdealOutputDistance(cfg)
	case 10:
		return Fig10Manila(cfg)
	case 11:
		return Fig11NoiseSweep(cfg)
	case 12:
		return Fig12Overhead(cfg)
	case 13:
		return Fig13CaseStudy(cfg)
	case 14:
		return Fig14CaseStudyNoise(cfg)
	case 15:
		return Fig15CircuitIllustration(cfg)
	case 16:
		return Fig16ThresholdSweep(cfg)
	case 17:
		return Fig17ObjectiveComparison(cfg)
	}
	return fmt.Errorf("experiments: no figure %d (have %v)", fig, Figures())
}

// workload is one (algorithm, size) evaluation point.
type workload struct {
	name    string
	qubits  int
	circuit *circuit.Circuit
}

func (w workload) label() string { return fmt.Sprintf("%s-%d", w.name, w.circuit.NumQubits) }

// workloads returns the Fig. 8/9/11/12 benchmark set. Quick mode uses the
// 4-qubit instances; full mode adds larger ones (output-distance figures
// cap themselves at what the simulator can hold).
func workloads(cfg Config) ([]workload, error) {
	sizes := []int{4}
	if !cfg.Quick {
		sizes = []int{4, 5, 6}
	}
	var out []workload
	for _, name := range algos.Names() {
		for _, n := range sizes {
			c, err := algos.Generate(name, n)
			if err != nil {
				return nil, err
			}
			// Generate may round sizes (adder/multiplier); skip dups.
			dup := false
			for _, w := range out {
				if w.name == name && w.circuit.NumQubits == c.NumQubits {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			out = append(out, workload{name: name, qubits: n, circuit: c})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].circuit.NumQubits < out[j].circuit.NumQubits
	})
	return out, nil
}

// pipelineConfig returns the core.Config used by the experiments.
func pipelineConfig(cfg Config) core.Config {
	pc := core.Config{
		BlockSize:        3,
		Epsilon:          0.05,
		MaxSamples:       8,
		AnnealIterations: 250,
		Parallelism:      cfg.Parallelism,
		Seed:             cfg.Seed,
		Timeout:          cfg.Timeout,
		BlockTimeout:     cfg.BlockTimeout,
		MaxRestarts:      cfg.MaxRestarts,
		SynthCache:       cfg.SynthCache,
		Objective:        cfg.objective,
		// A figure with a time budget should still complete: degraded
		// blocks fall back to the exact sub-circuit (= baseline quality).
		AllowDegraded: cfg.Timeout > 0 || cfg.BlockTimeout > 0,
	}
	if cfg.Quick {
		pc.MaxSamples = 6
		pc.AnnealIterations = 200
		pc.SynthKeepPerDepth = 3
	} else {
		pc.MaxSamples = 16
		pc.AnnealIterations = 500
		pc.SynthRestarts = 2
	}
	return pc
}

// questRun runs the QUEST pipeline on a workload. Runs bounded by
// cfg.Timeout/cfg.BlockTimeout may degrade blocks to their exact
// sub-circuits instead of failing; any substitutions are noted in the
// figure output so a degraded data point is never silent.
func questRun(w workload, cfg Config) (*core.Result, error) {
	res, err := core.Run(w.circuit, pipelineConfig(cfg))
	if err == nil && len(res.Degradations) > 0 {
		cfg.printf("  [%s: %d of %d blocks degraded to exact sub-circuits under the time budget]\n",
			w.label(), len(res.Degradations), len(res.Blocks))
	}
	return res, err
}

// meanCNOTs returns the mean CNOT count of the selected approximations,
// optionally after applying the Qiskit-style optimizer to each.
func meanCNOTs(res *core.Result, withQiskit bool) float64 {
	var s float64
	for _, a := range res.Selected {
		c := a.Circuit
		if withQiskit {
			c = transpile.Optimize(c)
		}
		s += float64(c.CNOTCount())
	}
	return s / float64(len(res.Selected))
}

// reductionPct returns the percent reduction from base to v.
func reductionPct(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - v) / base
}

// idealProbabilities is the ground truth runner.
func idealProbabilities(c *circuit.Circuit) ([]float64, error) {
	return sim.Probabilities(c), nil
}

// noisyRunner returns a core.Runner for a uniform Pauli model, optionally
// applying the Qiskit-style optimizer before execution (the paper's
// "QUEST + Qiskit" configuration). The ensemble already fans out across
// approximations, so each run keeps its trajectories serial
// (Parallelism 1) rather than oversubscribing the worker budget.
func noisyRunner(m noise.Model, shots int, seed int64, qiskit bool) core.Runner {
	return func(c *circuit.Circuit) ([]float64, error) {
		if qiskit {
			c = transpile.Optimize(c)
		}
		return m.Run(c, noise.Options{Shots: shots, Seed: seed, Parallelism: 1}), nil
	}
}
