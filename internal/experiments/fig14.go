package experiments

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/noise"
	"repro/internal/transpile"
)

// Fig14CaseStudyNoise reproduces Fig. 14: the TFIM and Heisenberg case
// studies under the simulated Pauli noise sweep (1%, 0.5%, 0.1%) — as
// hardware noise decreases, QUEST's output approaches the ground truth.
func Fig14CaseStudyNoise(cfg Config) error {
	cfg.defaults()
	shots := 8192
	trajectories := 100
	if cfg.Quick {
		trajectories = 60
	}
	for _, p := range noiseLevels {
		m := noise.Uniform(p)
		run := func(c *circuit.Circuit, seed int64) ([]float64, error) {
			opt := transpile.Optimize(c)
			return m.Run(opt, noise.Options{
				Shots: shots, Trajectories: trajectories, Seed: seed,
				Parallelism: cfg.Parallelism,
			}), nil
		}
		if err := caseStudy(cfg, fmt.Sprintf("Fig 14 (noise %.1f%%)", p*100), run); err != nil {
			return err
		}
	}
	return nil
}
