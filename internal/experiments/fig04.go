package experiments

import (
	"sort"

	"repro/internal/algos"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
	"repro/internal/synth"
)

// Fig04ExactSynthScatter reproduces Fig. 4: many exactly synthesized
// solutions of a VQE circuit have similar (tiny) process distances but a
// wide range of CNOT counts and, when run on a noisy machine, a wide range
// of TVDs — and the minimum-CNOT solution is not the minimum-TVD solution.
// This motivates QUEST's ensemble design.
func Fig04ExactSynthScatter(cfg Config) error {
	cfg.defaults()
	nq := 3
	seeds := 6
	if !cfg.Quick {
		nq = 4
		seeds = 10
	}
	c := algos.VQE(nq, 2, 11)
	target := sim.Unitary(c)
	ideal := sim.Probabilities(c)
	m := noise.Uniform(0.01)

	cfg.section("Fig 4: exact synthesis solutions of a VQE circuit (CNOTs vs noisy TVD)")
	cfg.printf("original: %d CNOTs\n", c.CNOTCount())
	cfg.printf("%6s %8s %14s %10s\n", "seed", "CNOTs", "process dist", "TVD")

	var pts []synthPoint
	for s := 1; s <= seeds; s++ {
		res, err := synth.Synthesize(target, synth.Options{
			Threshold: 1e-5,
			Seed:      cfg.Seed + int64(s)*31,
			MaxCNOTs:  c.CNOTCount() + 4,
			Beam:      1 + s%3,
		})
		if err != nil {
			return err
		}
		// Pick the shallowest candidate that meets the exact threshold
		// (different seeds explore different branches, giving different
		// exact solutions as in the paper).
		best := res.Best
		for _, cand := range res.Candidates {
			if cand.Distance < 1e-5 {
				best = cand
				break
			}
		}
		noisy := m.Run(best.Circuit, noise.Options{Shots: 8192, Seed: cfg.Seed + int64(s)})
		tvd := metrics.TVD(ideal, noisy)
		pts = append(pts, synthPoint{best.CNOTs, tvd})
		cfg.printf("%6d %8d %14.2e %10.4f\n", s, best.CNOTs, best.Distance, tvd)
	}

	sort.Slice(pts, func(i, j int) bool { return pts[i].cnots < pts[j].cnots })
	if len(pts) > 1 {
		cfg.printf("min-CNOT solution: %d CNOTs at TVD %.4f; min TVD overall: %.4f\n",
			pts[0].cnots, pts[0].tvd, minTVD(pts))
	}
	return nil
}

// synthPoint is one exact-synthesis solution in the Fig. 4 scatter.
type synthPoint struct {
	cnots int
	tvd   float64
}

func minTVD(pts []synthPoint) float64 {
	m := pts[0].tvd
	for _, p := range pts {
		if p.tvd < m {
			m = p.tvd
		}
	}
	return m
}
