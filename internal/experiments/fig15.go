package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/transpile"
)

// Fig15CircuitIllustration reproduces Fig. 15: the CNOT count of the
// Baseline circuit structure vs one QUEST approximation, for a deep TFIM
// timestep and a deep Heisenberg timestep. The paper's example reduces a
// 900-CNOT Heisenberg circuit to 11 CNOTs.
func Fig15CircuitIllustration(cfg Config) error {
	cfg.defaults()
	deepSteps := 6
	if !cfg.Quick {
		deepSteps = 25
	}
	for _, cs := range caseStudyAlgos() {
		c := cs.build(deepSteps)
		cfg.section(fmt.Sprintf("Fig 15: %s-4 at timestep %d", cs.name, deepSteps))
		cfg.printf("baseline: %d ops, %d CNOTs, depth %d\n",
			c.Size(), c.CNOTCount(), c.Depth())

		res, err := core.Run(c, pipelineConfig(cfg))
		if err != nil {
			return err
		}
		best := res.Selected[0]
		for _, a := range res.Selected {
			if a.CNOTs < best.CNOTs {
				best = a
			}
		}
		opt := transpile.Optimize(best.Circuit)
		cfg.printf("QUEST approximation: %d ops, %d CNOTs, depth %d (bound Σε = %.4f)\n",
			best.Circuit.Size(), best.CNOTs, best.Circuit.Depth(), best.EpsilonSum)
		cfg.printf("QUEST + Qiskit:      %d ops, %d CNOTs, depth %d\n",
			opt.Size(), opt.CNOTCount(), opt.Depth())
		cfg.printf("reduction: %.1f%%\n", reductionPct(float64(c.CNOTCount()), float64(opt.CNOTCount())))
	}
	return nil
}
