package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// runFig executes one figure in quick mode and returns its output.
func runFig(t *testing.T, fig int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(fig, Config{Quick: true, Seed: 3, Out: &buf}); err != nil {
		t.Fatalf("figure %d: %v", fig, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("figure %d produced no output", fig)
	}
	return out
}

func TestRunUnknownFigure(t *testing.T) {
	if err := Run(2, Config{Quick: true}); err == nil {
		t.Error("figure 2 accepted (not an evaluation figure)")
	}
}

func TestFiguresList(t *testing.T) {
	if len(Figures()) != 13 {
		t.Errorf("Figures() = %v", Figures())
	}
}

func TestRunRejectsBadObjective(t *testing.T) {
	if err := Run(8, Config{Quick: true, Objective: "espresso"}); err == nil {
		t.Error("bad objective spec accepted")
	}
}

func TestWorkloadsCoverTable1(t *testing.T) {
	ws, err := workloads(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, w := range ws {
		seen[w.name] = true
	}
	for _, name := range []string{"adder", "heisenberg", "hlf", "qft", "qaoa", "multiplier", "tfim", "vqe", "xy"} {
		if !seen[name] {
			t.Errorf("workloads missing Table-1 benchmark %s", name)
		}
	}
}

func TestFig01(t *testing.T) {
	out := runFig(t, 1)
	if !strings.Contains(out, "TFIM") || !strings.Contains(out, "Heisenberg") {
		t.Errorf("Fig 1 output missing case studies:\n%s", out)
	}
}

func TestFig04(t *testing.T) {
	out := runFig(t, 4)
	if !strings.Contains(out, "CNOTs vs noisy TVD") {
		t.Errorf("Fig 4 output:\n%s", out)
	}
}

func TestFig07BoundAlwaysHolds(t *testing.T) {
	out := runFig(t, 7) // Run fails the test via error if any bound is violated
	if !strings.Contains(out, "bound respected") {
		t.Errorf("Fig 7 output:\n%s", out)
	}
}

func TestFig08(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 8 synthesizes every Table-1 workload")
	}
	out := runFig(t, 8)
	if !strings.Contains(out, "quest%") {
		t.Errorf("Fig 8 output:\n%s", out)
	}
}

func TestFig09(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 9 runs noisy ensembles for every Table-1 workload")
	}
	out := runFig(t, 9)
	if !strings.Contains(out, "JSD") {
		t.Errorf("Fig 9 output:\n%s", out)
	}
}

func TestFig10(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 10 runs 300-trajectory device ensembles for every <=5-qubit workload")
	}
	runFig(t, 10)
}

func TestFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 11 runs noisy ensembles at three trajectory counts")
	}
	out := runFig(t, 11)
	if strings.Count(out, "Fig 11") != 3 {
		t.Errorf("Fig 11 should sweep 3 noise levels:\n%s", out)
	}
}

func TestFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 12 synthesizes every Table-1 workload")
	}
	out := runFig(t, 12)
	if !strings.Contains(out, "synthesis%") {
		t.Errorf("Fig 12 output:\n%s", out)
	}
}

func TestFig13(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 13 re-synthesizes the case study at every timestep and runs device ensembles")
	}
	runFig(t, 13)
}

func TestFig14(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 14 runs the case study at three noise levels")
	}
	out := runFig(t, 14)
	if strings.Count(out, "Fig 14") < 3 {
		t.Errorf("Fig 14 should sweep 3 noise levels")
	}
}

func TestFig15(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 15 synthesizes every Table-1 workload with and without partitioning")
	}
	out := runFig(t, 15)
	if !strings.Contains(out, "reduction:") {
		t.Errorf("Fig 15 output:\n%s", out)
	}
}

func TestFig16(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 16 sweeps 7 thresholds x 2 algorithms")
	}
	out := runFig(t, 16)
	if !strings.Contains(out, "eps/block") {
		t.Errorf("Fig 16 output:\n%s", out)
	}
}

func TestFig17(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 17 runs 300-trajectory device ensembles under two objectives")
	}
	out := runFig(t, 17)
	if !strings.Contains(out, "fidelity objective changed the selection on") {
		t.Errorf("Fig 17 output:\n%s", out)
	}
}
