package experiments

import (
	"time"
)

// Fig12Overhead reproduces Fig. 12: QUEST's one-time compilation cost per
// algorithm and its breakdown across partitioning, synthesis and the dual
// annealing engine. (Absolute times depend on the host; the paper's claim
// is that the cost is a one-time, hours-scale overhead dominated by
// synthesis/partitioning, amortized across executions.)
func Fig12Overhead(cfg Config) error {
	cfg.defaults()
	prep, err := preparedWorkloads(cfg, "fig12", sweepOpts{})
	if err != nil {
		return err
	}
	cfg.section("Fig 12: QUEST one-time cost and stage breakdown")
	cfg.printf("%16s %12s %12s %12s %12s\n", "algorithm", "total", "partition%", "synthesis%", "annealing%")

	for _, pr := range prep {
		w, res := pr.w, pr.res
		tot := res.Timing.Total()
		pct := func(d time.Duration) float64 {
			if tot == 0 {
				return 0
			}
			return 100 * float64(d) / float64(tot)
		}
		cfg.printf("%16s %12s %12.1f %12.1f %12.1f\n",
			w.label(), tot.Round(time.Millisecond),
			pct(res.Timing.Partition), pct(res.Timing.Synthesis), pct(res.Timing.Annealing))
	}
	return nil
}
