package experiments

import (
	"fmt"
	"reflect"

	"repro/internal/backend"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fidelity"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
)

// Fig17ObjectiveComparison is the noise-aware-selection figure added by
// this reproduction (no paper counterpart): on the benchmarks that fit
// the 5-qubit Manila-class device, select once with the paper's cnot
// objective and once with the fidelity:manila objective from the same
// synthesis harvest, then simulate both ensembles on the device. The
// fidelity objective should pick a different ensemble on at least some
// circuits, and where it does, its simulated fidelity (1 − TVD) should
// be at least as good — that is the point of scoring selections with the
// device's own error model instead of a bare CNOT count.
func Fig17ObjectiveComparison(cfg Config) error {
	cfg.defaults()
	ws, err := workloads(cfg)
	if err != nil {
		return err
	}
	fidObj, err := backend.Objective("fidelity:manila")
	if err != nil {
		return err
	}
	dev := noise.Manila()
	const trajectories = 300

	// Device runs use the per-block budget of 0.1 identified by the
	// Fig. 16 threshold study (as Fig. 10 does): a loose-enough budget
	// that the approximation-vs-gate-error trade is live, which is where
	// the two objectives can disagree.
	base := pipelineConfig(cfg)
	base.Epsilon = 0.1
	fidCfg := base
	fidCfg.Objective = fidObj

	cfg.section("Fig 17: cnot vs fidelity:manila selection objective (Manila device)")
	cfg.printf("%16s %9s %10s %10s %10s %10s %8s\n",
		"algorithm", "differs", "cnot fid", "fid fid", "Δ (pts)", "pred cnot", "pred fid")

	differed, improved := 0, 0
	for _, w := range ws {
		if w.circuit.NumQubits > 5 {
			continue
		}
		ideal := sim.Probabilities(w.circuit)
		var results [2]*core.Result
		err := reselectSweep(w.circuit, base, []core.Config{base, fidCfg}, func(i int, res *core.Result) error {
			results[i] = res
			return nil
		})
		if err != nil {
			return fmt.Errorf("fig17 %s: %w", w.label(), err)
		}

		measured := [2]float64{}
		predicted := [2]float64{}
		for i, res := range results {
			ens, err := res.EnsembleProbabilitiesWorkers(func(c *circuit.Circuit) ([]float64, error) {
				return dev.Run(c, noise.Options{Trajectories: trajectories, Seed: cfg.Seed, Parallelism: 1})
			}, cfg.Parallelism)
			if err != nil {
				return fmt.Errorf("fig17 %s ensemble: %w", w.label(), err)
			}
			measured[i] = 1 - metrics.TVD(ideal, ens)
			for _, a := range res.Selected {
				f, err := fidelity.EstimateOnDevice(a.Circuit, dev)
				if err != nil {
					return fmt.Errorf("fig17 %s estimate: %w", w.label(), err)
				}
				predicted[i] += f
			}
			predicted[i] /= float64(len(res.Selected))
		}

		differs := selectionsDiffer(results[0], results[1])
		if differs {
			differed++
			if measured[1] > measured[0] {
				improved++
			}
		}
		cfg.printf("%16s %9v %10.4f %10.4f %10.4f %10.4f %8.4f\n",
			w.label(), differs, measured[0], measured[1], measured[1]-measured[0],
			predicted[0], predicted[1])
	}
	cfg.printf("fidelity objective changed the selection on %d circuits, improved simulated fidelity on %d\n",
		differed, improved)
	return nil
}

// selectionsDiffer reports whether two results picked different
// per-block candidate choices (order-sensitive: the ensembles are
// ordered by selection round).
func selectionsDiffer(a, b *core.Result) bool {
	if len(a.Selected) != len(b.Selected) {
		return true
	}
	for i := range a.Selected {
		if !reflect.DeepEqual(a.Selected[i].Choice, b.Selected[i].Choice) {
			return true
		}
	}
	return false
}
