package experiments

import (
	"fmt"

	"repro/internal/core"

	"repro/internal/circuit"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
	"repro/internal/transpile"
)

// Fig10Manila reproduces Fig. 10: TVD from ground truth on the (synthetic)
// IBMQ Manila device for Qiskit-only vs QUEST + Qiskit, on the benchmarks
// that fit the 5-qubit machine. QUEST + Qiskit should reduce the TVD, in
// some cases by tens of percentage points.
func Fig10Manila(cfg Config) error {
	cfg.defaults()
	// Device runs use a per-block budget of 0.1, the noisy-execution
	// optimum identified by the Fig. 16 threshold study (the paper
	// likewise selects its threshold constant from that sweep).
	prep, err := preparedWorkloads(cfg, "fig10", sweepOpts{
		maxQubits: 5,
		mutate:    func(pc *core.Config) { pc.Epsilon = 0.1 },
	})
	if err != nil {
		return err
	}
	dev := noise.Manila()
	const shots = 8192
	const trajectories = 300 // stabilize the trajectory average

	// Standalone runs parallelize across trajectories; ensemble runs keep
	// trajectories serial because the ensemble itself fans out.
	deviceRun := func(c *circuit.Circuit, seed int64, workers int) ([]float64, error) {
		opt := transpile.Optimize(c)
		return dev.Run(opt, noise.Options{
			Shots: shots, Trajectories: trajectories, Seed: seed, Parallelism: workers,
		})
	}

	cfg.section("Fig 10: TVD on the Manila-class device (Qiskit vs QUEST+Qiskit)")
	cfg.printf("%16s %12s %16s %12s\n", "algorithm", "qiskit TVD", "quest+qiskit TVD", "Δ (pts)")

	for _, pr := range prep {
		w, res := pr.w, pr.res
		ideal := sim.Probabilities(w.circuit)

		qp, err := deviceRun(w.circuit, cfg.Seed, cfg.Parallelism)
		if err != nil {
			return fmt.Errorf("fig10 %s qiskit: %w", w.label(), err)
		}
		qiskitTVD := metrics.TVD(ideal, qp)

		ens, err := res.EnsembleProbabilitiesWorkers(func(c *circuit.Circuit) ([]float64, error) {
			return deviceRun(c, cfg.Seed, 1)
		}, cfg.Parallelism)
		if err != nil {
			return err
		}
		questTVD := metrics.TVD(ideal, ens)
		cfg.printf("%16s %12.4f %16.4f %12.4f\n", w.label(), qiskitTVD, questTVD, qiskitTVD-questTVD)
	}
	return nil
}
