package opt

import (
	"context"
	"math"

	"repro/internal/budget"
)

// AdamOptions configures Adam. The zero value selects the standard
// hyperparameters (lr 0.01, β1 0.9, β2 0.999).
type AdamOptions struct {
	// MaxIterations bounds the update loop (default 500).
	MaxIterations int
	// LearningRate is the step size (default 0.01).
	LearningRate float64
	// Beta1 and Beta2 are the moment decay rates.
	Beta1, Beta2 float64
	// GradTolerance stops when the gradient inf-norm falls below it
	// (default 1e-8).
	GradTolerance float64
}

func (o *AdamOptions) defaults() {
	if o.MaxIterations == 0 {
		o.MaxIterations = 500
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.01
	}
	if o.Beta1 == 0 {
		o.Beta1 = 0.9
	}
	if o.Beta2 == 0 {
		o.Beta2 = 0.999
	}
	if o.GradTolerance == 0 {
		o.GradTolerance = 1e-8
	}
}

// Adam minimizes g with the Adam stochastic-gradient method. It is the
// robust-but-slow fallback next to LBFGS: useful on noisy or very
// ill-conditioned landscapes. x0 is not modified.
func Adam(g Gradient, x0 []float64, opts AdamOptions) Result {
	res, _ := AdamCtx(context.Background(), g, x0, opts)
	return res
}

// AdamCtx is Adam under a context: cancellation is checked at every
// iteration; when ctx expires the best point found so far is returned
// together with the typed budget error.
func AdamCtx(ctx context.Context, g Gradient, x0 []float64, opts AdamOptions) (Result, error) {
	opts.defaults()
	const eps = 1e-8
	n := len(x0)
	x := append([]float64(nil), x0...)
	grad := make([]float64, n)
	m := make([]float64, n)
	v := make([]float64, n)

	res := Result{X: append([]float64(nil), x...), F: math.Inf(1)}
	evals := 0
	b1t, b2t := 1.0, 1.0
	var stopErr error
	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		if stopErr = budget.Check(ctx); stopErr != nil {
			break
		}
		f := g(x, grad)
		evals++
		if f < res.F {
			res.F = f
			copy(res.X, x)
		}
		if infNorm(grad) < opts.GradTolerance {
			res.Converged = true
			break
		}
		b1t *= opts.Beta1
		b2t *= opts.Beta2
		for i := 0; i < n; i++ {
			m[i] = opts.Beta1*m[i] + (1-opts.Beta1)*grad[i]
			v[i] = opts.Beta2*v[i] + (1-opts.Beta2)*grad[i]*grad[i]
			mhat := m[i] / (1 - b1t)
			vhat := v[i] / (1 - b2t)
			x[i] -= opts.LearningRate * mhat / (math.Sqrt(vhat) + eps)
		}
	}
	// Final evaluation at the last point.
	if f := g(x, grad); f < res.F {
		res.F = f
		copy(res.X, x)
	}
	evals++
	res.Evaluations = evals
	return res, stopErr
}
