package opt

import (
	"math"
	"sync"
	"testing"
)

// quadratic: f(x) = Σ (x_i - i)^2, minimum at x_i = i.
func quadratic(x []float64) float64 {
	var s float64
	for i, v := range x {
		d := v - float64(i)
		s += d * d
	}
	return s
}

func quadraticGrad(x, grad []float64) float64 {
	var s float64
	for i, v := range x {
		d := v - float64(i)
		s += d * d
		grad[i] = 2 * d
	}
	return s
}

// rosenbrock: classic banana function, minimum 0 at (1,1).
func rosenbrock(x []float64) float64 {
	a := 1 - x[0]
	b := x[1] - x[0]*x[0]
	return a*a + 100*b*b
}

func rosenbrockGrad(x, grad []float64) float64 {
	a := 1 - x[0]
	b := x[1] - x[0]*x[0]
	grad[0] = -2*a - 400*x[0]*b
	grad[1] = 200 * b
	return a*a + 100*b*b
}

func TestLBFGSQuadratic(t *testing.T) {
	res := LBFGS(quadraticGrad, []float64{5, -3, 10, 0}, LBFGSOptions{})
	if res.F > 1e-10 {
		t.Errorf("LBFGS quadratic F = %g", res.F)
	}
	for i, v := range res.X {
		if math.Abs(v-float64(i)) > 1e-5 {
			t.Errorf("LBFGS x[%d] = %g, want %d", i, v, i)
		}
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	res := LBFGS(rosenbrockGrad, []float64{-1.2, 1}, LBFGSOptions{MaxIterations: 500})
	if res.F > 1e-8 {
		t.Errorf("LBFGS rosenbrock F = %g after %d iters", res.F, res.Iterations)
	}
}

func TestLBFGSDoesNotModifyX0(t *testing.T) {
	x0 := []float64{5, 5}
	LBFGS(quadraticGrad, x0, LBFGSOptions{})
	if x0[0] != 5 || x0[1] != 5 {
		t.Error("LBFGS modified x0")
	}
}

func TestLBFGSWithNumericGradient(t *testing.T) {
	g := NumericGradient(rosenbrock, 1e-7)
	res := LBFGS(g, []float64{-1.2, 1}, LBFGSOptions{MaxIterations: 500})
	if res.F > 1e-5 {
		t.Errorf("LBFGS numeric-grad rosenbrock F = %g", res.F)
	}
}

func TestNumericGradientAccuracy(t *testing.T) {
	g := NumericGradient(quadratic, 1e-6)
	x := []float64{3, 4}
	grad := make([]float64, 2)
	g(x, grad)
	if math.Abs(grad[0]-2*(3-0)) > 1e-4 || math.Abs(grad[1]-2*(4-1)) > 1e-4 {
		t.Errorf("NumericGradient = %v", grad)
	}
	// x must be restored.
	if x[0] != 3 || x[1] != 4 {
		t.Error("NumericGradient perturbed x")
	}
}

func TestNumericGradientNeverMutatesCallerSlice(t *testing.T) {
	// Regression: the perturbed evaluations used to run on the caller's
	// slice, so a concurrently-shared objective could observe x mid-edit.
	// Every evaluation must see the caller's slice untouched.
	callerX := []float64{3, 4}
	g := NumericGradient(func(x []float64) float64 {
		if callerX[0] != 3 || callerX[1] != 4 {
			t.Errorf("caller's slice mutated during evaluation: %v", callerX)
		}
		return quadratic(x)
	}, 1e-6)
	grad := make([]float64, 2)
	g(callerX, grad)
	if math.Abs(grad[0]-2*3) > 1e-4 || math.Abs(grad[1]-2*3) > 1e-4 {
		t.Errorf("gradient wrong after private-copy evaluation: %v", grad)
	}
}

func TestNumericGradientConcurrentUse(t *testing.T) {
	// The concurrency contract: one Gradient closure, one shared x,
	// many goroutines. Run under -race this fails if any evaluation
	// writes to the shared slice.
	g := NumericGradient(quadratic, 1e-6)
	x := []float64{3, 4}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			grad := make([]float64, 2)
			for i := 0; i < 50; i++ {
				g(x, grad)
			}
			if math.Abs(grad[0]-2*3) > 1e-4 || math.Abs(grad[1]-2*3) > 1e-4 {
				t.Errorf("concurrent gradient wrong: %v", grad)
			}
		}()
	}
	wg.Wait()
}

func TestNelderMeadQuadratic(t *testing.T) {
	res := NelderMead(quadratic, []float64{5, -3, 10}, NelderMeadOptions{})
	if res.F > 1e-6 {
		t.Errorf("NelderMead quadratic F = %g", res.F)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	res := NelderMead(rosenbrock, []float64{-1.2, 1}, NelderMeadOptions{MaxIterations: 5000})
	if res.F > 1e-6 {
		t.Errorf("NelderMead rosenbrock F = %g", res.F)
	}
}

func TestNelderMeadZeroDim(t *testing.T) {
	res := NelderMead(func(x []float64) float64 { return 7 }, nil, NelderMeadOptions{})
	if res.F != 7 || !res.Converged {
		t.Errorf("NelderMead zero-dim = %+v", res)
	}
}

func TestNelderMeadNonSmooth(t *testing.T) {
	// |x| + |y|: non-smooth at the minimum; NM should still find it.
	f := func(x []float64) float64 { return math.Abs(x[0]) + math.Abs(x[1]-2) }
	res := NelderMead(f, []float64{3, -3}, NelderMeadOptions{})
	if res.F > 1e-5 {
		t.Errorf("NelderMead non-smooth F = %g", res.F)
	}
}

func TestLBFGSTrigLandscape(t *testing.T) {
	// A smooth periodic landscape like the synthesis objective.
	g := func(x, grad []float64) float64 {
		f := 2.0
		for i, v := range x {
			f -= math.Cos(v - float64(i))
			grad[i] = math.Sin(v - float64(i))
		}
		return f
	}
	res := LBFGS(g, []float64{0.4, 1.7}, LBFGSOptions{})
	if res.F > 1e-9 {
		t.Errorf("LBFGS trig F = %g", res.F)
	}
}

func TestResultReportsEvaluations(t *testing.T) {
	res := LBFGS(quadraticGrad, []float64{5}, LBFGSOptions{})
	if res.Evaluations < 2 {
		t.Errorf("Evaluations = %d, want >= 2", res.Evaluations)
	}
	res2 := NelderMead(quadratic, []float64{5}, NelderMeadOptions{})
	if res2.Evaluations < 3 {
		t.Errorf("NM Evaluations = %d", res2.Evaluations)
	}
}

func TestAdamQuadratic(t *testing.T) {
	res := Adam(quadraticGrad, []float64{5, -3, 10}, AdamOptions{MaxIterations: 3000, LearningRate: 0.1})
	if res.F > 1e-4 {
		t.Errorf("Adam quadratic F = %g", res.F)
	}
}

func TestAdamTrigLandscape(t *testing.T) {
	g := func(x, grad []float64) float64 {
		f := 2.0
		for i, v := range x {
			f -= math.Cos(v - float64(i))
			grad[i] = math.Sin(v - float64(i))
		}
		return f
	}
	res := Adam(g, []float64{0.4, 1.7}, AdamOptions{MaxIterations: 2000, LearningRate: 0.05})
	if res.F > 1e-4 {
		t.Errorf("Adam trig F = %g", res.F)
	}
}

func TestAdamDoesNotModifyX0(t *testing.T) {
	x0 := []float64{5, 5}
	Adam(quadraticGrad, x0, AdamOptions{MaxIterations: 10})
	if x0[0] != 5 || x0[1] != 5 {
		t.Error("Adam modified x0")
	}
}

func TestAdamConvergedFlag(t *testing.T) {
	// Start at the optimum: gradient ~0 immediately.
	res := Adam(quadraticGrad, []float64{0, 1, 2}, AdamOptions{})
	if !res.Converged {
		t.Error("Adam at optimum did not report convergence")
	}
}
