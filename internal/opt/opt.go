// Package opt implements the numerical minimizers used by the synthesis
// engine and the dual annealing local-search phase: limited-memory BFGS
// with a weak-Wolfe line search, Nelder-Mead simplex search, the Adam
// stochastic-gradient method, and a finite-difference gradient fallback.
//
// Every minimizer has a context-aware form (LBFGSCtx, NelderMeadCtx,
// AdamCtx) that checks cancellation at iteration boundaries and, when cut
// short, returns the best point found so far together with the typed
// budget error — the pipeline's contract for partial results under
// deadlines.
package opt

import (
	"context"
	"math"
	"sort"

	"repro/internal/budget"
	"repro/internal/faultinject"
)

// Objective is a scalar function of a parameter vector.
type Objective func(x []float64) float64

// Gradient evaluates the objective and writes its gradient into grad,
// returning the function value.
type Gradient func(x, grad []float64) float64

// Result reports the outcome of a minimization.
type Result struct {
	// X is the best parameter vector found.
	X []float64
	// F is the objective value at X.
	F float64
	// Iterations is the number of outer iterations performed.
	Iterations int
	// Evaluations counts objective (or objective+gradient) evaluations.
	Evaluations int
	// Converged reports whether a convergence tolerance was met (as
	// opposed to hitting the iteration budget).
	Converged bool
}

// NumericGradient wraps an Objective as a Gradient using central
// differences with step h.
//
// Concurrency contract: perturbed evaluations happen on a private copy of
// x, so the caller's slice is never mutated — not even transiently — and
// the returned Gradient may be shared across goroutines as long as f
// itself is safe for concurrent use (objectives that own scratch buffers,
// like synth's, are not; see internal/synth/objective.go).
func NumericGradient(f Objective, h float64) Gradient {
	return func(x, grad []float64) float64 {
		fx := f(x)
		probe := append([]float64(nil), x...)
		for i := range probe {
			orig := probe[i]
			probe[i] = orig + h
			fp := f(probe)
			probe[i] = orig - h
			fm := f(probe)
			probe[i] = orig
			grad[i] = (fp - fm) / (2 * h)
		}
		return fx
	}
}

// LBFGSOptions configures LBFGS. The zero value selects sensible defaults.
type LBFGSOptions struct {
	// MaxIterations bounds the outer loop (default 200).
	MaxIterations int
	// GradTolerance stops when the gradient inf-norm falls below it
	// (default 1e-9).
	GradTolerance float64
	// FTolerance stops when the relative objective decrease falls below
	// it (default 1e-12).
	FTolerance float64
	// Memory is the number of correction pairs kept (default 8).
	Memory int
}

func (o *LBFGSOptions) defaults() {
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
	if o.GradTolerance == 0 {
		o.GradTolerance = 1e-9
	}
	if o.FTolerance == 0 {
		o.FTolerance = 1e-12
	}
	if o.Memory == 0 {
		o.Memory = 8
	}
}

// LBFGS minimizes g starting from x0 using limited-memory BFGS with a
// weak-Wolfe bisection line search. x0 is not modified.
func LBFGS(g Gradient, x0 []float64, opts LBFGSOptions) Result {
	res, _ := LBFGSCtx(context.Background(), g, x0, opts)
	return res
}

// LBFGSCtx is LBFGS under a context: cancellation is checked at every
// outer iteration and every line-search evaluation. When ctx expires the
// best point found so far is returned together with the typed budget
// error (ErrDeadline or ErrCancelled).
func LBFGSCtx(ctx context.Context, g Gradient, x0 []float64, opts LBFGSOptions) (Result, error) {
	opts.defaults()
	n := len(x0)
	x := append([]float64(nil), x0...)
	grad := make([]float64, n)
	f := g(x, grad)
	evals := 1

	type pair struct {
		s, y []float64
		rho  float64
	}
	var hist []pair
	dir := make([]float64, n)
	xNew := make([]float64, n)
	gradNew := make([]float64, n)
	alphas := make([]float64, 0, opts.Memory+1)
	// Evicted correction pairs are recycled for the next accepted step so
	// the steady-state iteration allocates nothing.
	var spareS, spareY []float64

	res := Result{X: append([]float64(nil), x...), F: f}
	var stopErr error
outer:
	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		if stopErr = budget.Check(ctx); stopErr == nil {
			stopErr = faultinject.Fire("opt.lbfgs")
		}
		if stopErr != nil {
			break
		}
		if infNorm(grad) < opts.GradTolerance {
			res.Converged = true
			break
		}
		// Two-loop recursion computes dir = -H grad.
		copy(dir, grad)
		alphas = alphas[:len(hist)]
		for i := len(hist) - 1; i >= 0; i-- {
			p := hist[i]
			alphas[i] = p.rho * dot(p.s, dir)
			axpy(dir, -alphas[i], p.y)
		}
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			gamma := dot(last.s, last.y) / dot(last.y, last.y)
			scale(dir, gamma)
		}
		for i := 0; i < len(hist); i++ {
			p := hist[i]
			beta := p.rho * dot(p.y, dir)
			axpy(dir, alphas[i]-beta, p.s)
		}
		neg(dir)

		d0 := dot(grad, dir)
		if d0 >= 0 {
			// Not a descent direction; reset to steepest descent.
			copy(dir, grad)
			neg(dir)
			d0 = -dot(grad, grad)
			hist = hist[:0]
		}

		// Weak-Wolfe bisection line search (guarantees s·y > 0 so the
		// curvature pairs are useful).
		const (
			c1 = 1e-4
			c2 = 0.9
		)
		lo, hi := 0.0, math.Inf(1)
		step := 1.0
		var fNew float64
		accepted := false
		for ls := 0; ls < 50; ls++ {
			if stopErr = budget.Check(ctx); stopErr != nil {
				break outer
			}
			for i := range x {
				xNew[i] = x[i] + step*dir[i]
			}
			fNew = g(xNew, gradNew)
			evals++
			if fNew > f+c1*step*d0 || math.IsNaN(fNew) {
				hi = step
				step = (lo + hi) / 2
				continue
			}
			if dot(gradNew, dir) < c2*d0 {
				lo = step
				if math.IsInf(hi, 1) {
					step *= 2
				} else {
					step = (lo + hi) / 2
				}
				continue
			}
			accepted = true
			break
		}
		if !accepted {
			if fNew >= f {
				res.Converged = true // no progress possible along dir
				break
			}
			// Wolfe failed but we still decreased; take the step.
		}

		// Update history.
		s, y := spareS, spareY
		spareS, spareY = nil, nil
		if s == nil {
			s = make([]float64, n)
			y = make([]float64, n)
		}
		for i := range x {
			s[i] = xNew[i] - x[i]
			y[i] = gradNew[i] - grad[i]
		}
		sy := dot(s, y)
		if sy > 1e-12 {
			hist = append(hist, pair{s: s, y: y, rho: 1 / sy})
			if len(hist) > opts.Memory {
				spareS, spareY = hist[0].s, hist[0].y
				hist = hist[1:]
			}
		} else {
			spareS, spareY = s, y
		}
		rel := math.Abs(f-fNew) / math.Max(1, math.Abs(f))
		copy(x, xNew)
		copy(grad, gradNew)
		f = fNew
		if f < res.F {
			res.F = f
			copy(res.X, x)
		}
		if rel < opts.FTolerance {
			res.Converged = true
			break
		}
	}
	if f < res.F {
		res.F = f
		copy(res.X, x)
	}
	res.Evaluations = evals
	return res, stopErr
}

// NelderMeadOptions configures NelderMead. The zero value selects defaults.
type NelderMeadOptions struct {
	// MaxIterations bounds the outer loop (default 400·dim).
	MaxIterations int
	// FTolerance stops when the simplex's objective spread falls below it
	// (default 1e-10).
	FTolerance float64
	// InitialStep is the simplex edge length (default 0.5).
	InitialStep float64
}

// NelderMead minimizes f with the downhill-simplex method starting from
// x0. x0 is not modified.
func NelderMead(f Objective, x0 []float64, opts NelderMeadOptions) Result {
	res, _ := NelderMeadCtx(context.Background(), f, x0, opts)
	return res
}

// NelderMeadCtx is NelderMead under a context: cancellation is checked at
// every outer iteration; when ctx expires the best simplex vertex found
// so far is returned together with the typed budget error.
func NelderMeadCtx(ctx context.Context, f Objective, x0 []float64, opts NelderMeadOptions) (Result, error) {
	n := len(x0)
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 400 * (n + 1)
	}
	if opts.FTolerance == 0 {
		opts.FTolerance = 1e-10
	}
	if opts.InitialStep == 0 {
		opts.InitialStep = 0.5
	}
	if n == 0 {
		return Result{X: nil, F: f(nil), Evaluations: 1, Converged: true}, nil
	}

	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].f = eval(simplex[0].x)
	for i := 1; i <= n; i++ {
		x := append([]float64(nil), x0...)
		x[i-1] += opts.InitialStep
		simplex[i] = vertex{x: x, f: eval(x)}
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	centroid := make([]float64, n)
	refl := make([]float64, n)
	exp2 := make([]float64, n)
	cont := make([]float64, n)

	var res Result
	var stopErr error
	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		if stopErr = budget.Check(ctx); stopErr != nil {
			break
		}
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		if math.Abs(simplex[n].f-simplex[0].f) < opts.FTolerance {
			res.Converged = true
			break
		}
		for i := range centroid {
			centroid[i] = 0
		}
		for _, v := range simplex[:n] {
			for i, xv := range v.x {
				centroid[i] += xv
			}
		}
		for i := range centroid {
			centroid[i] /= float64(n)
		}
		worst := simplex[n]
		for i := range refl {
			refl[i] = centroid[i] + alpha*(centroid[i]-worst.x[i])
		}
		fr := eval(refl)
		switch {
		case fr < simplex[0].f:
			for i := range exp2 {
				exp2[i] = centroid[i] + gamma*(refl[i]-centroid[i])
			}
			fe := eval(exp2)
			if fe < fr {
				copy(simplex[n].x, exp2)
				simplex[n].f = fe
			} else {
				copy(simplex[n].x, refl)
				simplex[n].f = fr
			}
		case fr < simplex[n-1].f:
			copy(simplex[n].x, refl)
			simplex[n].f = fr
		default:
			for i := range cont {
				cont[i] = centroid[i] + rho*(worst.x[i]-centroid[i])
			}
			fc := eval(cont)
			if fc < worst.f {
				copy(simplex[n].x, cont)
				simplex[n].f = fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	res.X = append([]float64(nil), simplex[0].x...)
	res.F = simplex[0].f
	res.Evaluations = evals
	return res, stopErr
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(dst []float64, a float64, x []float64) {
	for i := range dst {
		dst[i] += a * x[i]
	}
}

func scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

func neg(x []float64) {
	for i := range x {
		x[i] = -x[i]
	}
}

func infNorm(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
