package budget

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestCheckLiveContext(t *testing.T) {
	if err := Check(context.Background()); err != nil {
		t.Fatalf("Check(background) = %v, want nil", err)
	}
}

func TestCheckCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Check(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Check(cancelled) = %v, want ErrCancelled", err)
	}
}

func TestCheckDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := Check(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Check(expired) = %v, want ErrDeadline", err)
	}
}

func TestCauseMapping(t *testing.T) {
	if got := Cause(context.DeadlineExceeded); got != ErrDeadline {
		t.Errorf("Cause(DeadlineExceeded) = %v", got)
	}
	if got := Cause(context.Canceled); got != ErrCancelled {
		t.Errorf("Cause(Canceled) = %v", got)
	}
	other := errors.New("other")
	if got := Cause(other); got != other {
		t.Errorf("Cause(other) = %v", got)
	}
	if got := Cause(nil); got != nil {
		t.Errorf("Cause(nil) = %v", got)
	}
}

func TestTypedErrorsSurviveWrapping(t *testing.T) {
	wrapped := fmt.Errorf("core: synthesize block 3: %w", fmt.Errorf("synth: %w", ErrDeadline))
	if !errors.Is(wrapped, ErrDeadline) {
		t.Fatal("double-wrapped ErrDeadline not recognized by errors.Is")
	}
	if !Terminated(wrapped) {
		t.Fatal("Terminated(wrapped deadline) = false")
	}
	if Terminated(fmt.Errorf("block: %w", ErrNoConvergence)) {
		t.Fatal("ErrNoConvergence must not count as terminated (it is retryable)")
	}
}
