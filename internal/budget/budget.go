// Package budget defines the typed termination errors shared by every
// stage of the QUEST pipeline, plus the helpers that map context
// cancellation onto them. The contract, relied on from core.Run down to
// the optimizer inner loops: a stage that is cut short returns an error
// wrapping exactly one of the three sentinels below (so callers can
// errors.Is against them through any number of fmt.Errorf %w layers),
// together with whatever partial results it already produced.
package budget

import (
	"context"
	"errors"
)

var (
	// ErrDeadline reports that a stage stopped because its time budget
	// (context deadline) expired.
	ErrDeadline = errors.New("deadline exceeded")
	// ErrCancelled reports that a stage stopped because its context was
	// cancelled (caller abort, sibling failure, signal).
	ErrCancelled = errors.New("cancelled")
	// ErrNoConvergence reports that a stage ran its full budget without
	// reaching its quality threshold (for example a synthesis attempt
	// whose best candidate missed the block's distance budget).
	ErrNoConvergence = errors.New("no convergence")
)

// Cause maps the context package's sentinel errors onto this package's
// typed errors; any other error (including nil) is returned unchanged.
func Cause(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	case errors.Is(err, context.Canceled):
		return ErrCancelled
	}
	return err
}

// Check returns nil while ctx is live; once ctx is done it returns the
// typed sentinel (ErrDeadline or ErrCancelled). It is cheap enough to
// call at every loop boundary of an optimizer or search.
func Check(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return Cause(err)
	}
	return nil
}

// Terminated reports whether err is (or wraps) one of the cancellation
// sentinels — the errors that mean "stop doing work", as opposed to
// quality failures like ErrNoConvergence that a caller may retry.
func Terminated(err error) bool {
	return errors.Is(err, ErrDeadline) || errors.Is(err, ErrCancelled)
}
