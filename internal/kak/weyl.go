package kak

import (
	"math"
	"math/cmplx"

	"repro/internal/linalg"
)

// MinCNOTs returns the number of CNOT gates (0-3) required to implement a
// 4x4 unitary exactly, using the Makhlin-invariant tests of Shende,
// Bullock and Markov: with V the determinant-normalized magic-basis image
// of U and W = VᵀV,
//
//   - 0 CNOTs  iff Tr W = ±4             (W = ±I: U is a tensor product)
//   - 1 CNOT   iff Tr W = 0 ∧ Tr W² = -4 (CNOT local-equivalence class)
//   - 2 CNOTs  iff Tr W is real
//   - 3 CNOTs  otherwise.
//
// The quarter-root determinant branch only changes Tr W by a sign
// (V scales by i^k, W by ±1), which none of the tests depend on. Note
// SWAP has W = ±iI — |Tr W| = 4 but imaginary, hence 3 CNOTs.
func MinCNOTs(u *linalg.Matrix) int {
	const tol = 1e-6
	v := linalg.MulChain(magicDagger, u, magic)
	det := det4(v)
	phase := cmplx.Pow(det, 0.25)
	v = linalg.Scale(1/phase, v)
	w := linalg.Mul(v.Transpose(), v)
	t := w.Trace()
	switch {
	case math.Abs(imag(t)) < tol && math.Abs(math.Abs(real(t))-4) < tol:
		return 0
	case cmplx.Abs(t) < tol && cmplx.Abs(linalg.Mul(w, w).Trace()+4) < tol:
		return 1
	case math.Abs(imag(t)) < tol:
		return 2
	default:
		return 3
	}
}

// WeylCoordinates returns the canonical-class coordinates (a, b, c) of a
// two-qubit unitary, folded into the Weyl chamber
// π/4 ≥ a ≥ b ≥ |c|, a ≥ |c| ≥ 0 (best effort; coordinates are exact up
// to the chamber symmetries).
func WeylCoordinates(u *linalg.Matrix) (a, b, c float64, err error) {
	dec, err := Decompose(u)
	if err != nil {
		return 0, 0, 0, err
	}
	coords := []float64{dec.A, dec.B, dec.C}
	// Fold into [0, π/2) and reflect into [0, π/4].
	for i, x := range coords {
		x = math.Mod(x, math.Pi/2)
		if x < 0 {
			x += math.Pi / 2
		}
		if x > math.Pi/4 {
			x = math.Pi/2 - x
		}
		coords[i] = x
	}
	// Sort descending.
	if coords[0] < coords[1] {
		coords[0], coords[1] = coords[1], coords[0]
	}
	if coords[1] < coords[2] {
		coords[1], coords[2] = coords[2], coords[1]
	}
	if coords[0] < coords[1] {
		coords[0], coords[1] = coords[1], coords[0]
	}
	return coords[0], coords[1], coords[2], nil
}
