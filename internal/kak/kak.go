package kak

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/gate"
	"repro/internal/linalg"
)

// magic is the magic basis change matrix B (Makhlin convention): in this
// basis SU(2)⊗SU(2) becomes SO(4) and the canonical two-qubit gates
// become diagonal.
var magic = func() *linalg.Matrix {
	i := complex(0, 1)
	s := complex(math.Sqrt2/2, 0)
	return linalg.FromRows([][]complex128{
		{s, 0, 0, s * i},
		{0, s * i, s, 0},
		{0, s * i, -s, 0},
		{s, 0, 0, -s * i},
	})
}()

var magicDagger = magic.Dagger()

// det4 computes the determinant of a 4x4 complex matrix by cofactor
// expansion.
func det4(m *linalg.Matrix) complex128 {
	var det complex128
	for c := 0; c < 4; c++ {
		sign := complex128(1)
		if c%2 == 1 {
			sign = -1
		}
		det += sign * m.At(0, c) * det3(m, c)
	}
	return det
}

// det3 returns the minor determinant of m with row 0 and column skip
// removed.
func det3(m *linalg.Matrix, skip int) complex128 {
	var cols []int
	for c := 0; c < 4; c++ {
		if c != skip {
			cols = append(cols, c)
		}
	}
	a := m.At(1, cols[0])
	b := m.At(1, cols[1])
	c := m.At(1, cols[2])
	d := m.At(2, cols[0])
	e := m.At(2, cols[1])
	f := m.At(2, cols[2])
	g := m.At(3, cols[0])
	h := m.At(3, cols[1])
	i := m.At(3, cols[2])
	return a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
}

// Decomposition is the KAK form of a two-qubit unitary:
//
//	U = Phase · (L1 ⊗ L0) · N(A, B, C) · (R1 ⊗ R0)
//
// where N(a,b,c) = exp(i(a·XX + b·YY + c·ZZ)), L1/R1 act on the gate's
// first (most significant) qubit and L0/R0 on the second.
type Decomposition struct {
	Phase   complex128
	L1, L0  *linalg.Matrix
	A, B, C float64
	R1, R0  *linalg.Matrix
}

// Canonical returns the 4x4 matrix of N(a,b,c) = exp(i(aXX + bYY + cZZ)).
// The three terms commute, so it is the product of the gate library's
// interaction rotations: rxx(-2a)·ryy(-2b)·rzz(-2c).
func Canonical(a, b, c float64) *linalg.Matrix {
	return linalg.MulChain(
		gate.RXXMatrix(-2*a),
		gate.RYYMatrix(-2*b),
		gate.RZZMatrix(-2*c),
	)
}

// Reconstruct multiplies the decomposition back into a 4x4 unitary.
func (d *Decomposition) Reconstruct() *linalg.Matrix {
	left := linalg.Kron(d.L1, d.L0)
	right := linalg.Kron(d.R1, d.R0)
	u := linalg.MulChain(left, Canonical(d.A, d.B, d.C), right)
	return linalg.Scale(d.Phase, u)
}

// Decompose computes the KAK decomposition of a 4x4 unitary.
func Decompose(u *linalg.Matrix) (*Decomposition, error) {
	if u.Rows != 4 || u.Cols != 4 {
		return nil, fmt.Errorf("kak: need a 4x4 matrix, got %dx%d", u.Rows, u.Cols)
	}
	if !u.IsUnitary(1e-8) {
		return nil, fmt.Errorf("kak: matrix is not unitary")
	}

	// Move to the magic basis and normalize the determinant.
	v := linalg.MulChain(magicDagger, u, magic)
	det := det4(v)
	phase := cmplx.Pow(det, 0.25)
	v = linalg.Scale(1/phase, v) // det(v) = 1 (up to a 4th-root branch)

	// W = Vᵀ V is complex symmetric unitary; its real and imaginary
	// parts are commuting real symmetric matrices, so they diagonalize
	// simultaneously over the reals.
	w := linalg.Mul(v.Transpose(), v)
	p, err := simultaneousDiagonalize(w)
	if err != nil {
		return nil, err
	}

	// D = Pᵀ W P: diagonal with unit-modulus entries e^{2iθ_j}.
	pm := realToComplex(p)
	d := linalg.MulChain(pm.Transpose(), w, pm)
	theta := make([]float64, 4)
	for j := 0; j < 4; j++ {
		theta[j] = cmplx.Phase(d.At(j, j)) / 2
	}
	// Branch fixing: det Δ = e^{iΣθ} must be +1 so the left factor is
	// real orthogonal. Adjust θ_0 by π steps (Δ_00 sign flip).
	sum := theta[0] + theta[1] + theta[2] + theta[3]
	k := math.Round(sum / math.Pi)
	theta[0] -= k * math.Pi

	delta := linalg.New(4, 4)
	deltaInv := linalg.New(4, 4)
	for j := 0; j < 4; j++ {
		e := cmplx.Exp(complex(0, theta[j]))
		delta.Set(j, j, e)
		deltaInv.Set(j, j, 1/e)
	}

	// V = O1 · Δ · Pᵀ with O1 = V P Δ⁻¹ real orthogonal.
	o1 := linalg.MulChain(v, pm, deltaInv)
	if imagNorm(o1) > 1e-6 {
		return nil, fmt.Errorf("kak: left factor not real (residual %g)", imagNorm(o1))
	}

	// Back to the computational basis. Δ in the magic basis is the
	// canonical gate with θ = (a-b+c, a+b-c, -a-b-c, -a+b+c)
	// (verified against Canonical in the tests), so
	// a = (θ0+θ1)/2, b = (θ1+θ3)/2, c = (θ0+θ3)/2.
	a := (theta[0] + theta[1]) / 2
	b := (theta[1] + theta[3]) / 2
	c := (theta[0] + theta[3]) / 2

	left := linalg.MulChain(magic, o1, magicDagger)
	right := linalg.MulChain(magic, pm.Transpose(), magicDagger)

	l1, l0, lphase, err := factorTensor(left)
	if err != nil {
		return nil, fmt.Errorf("kak: left factor: %w", err)
	}
	r1, r0, rphase, err := factorTensor(right)
	if err != nil {
		return nil, fmt.Errorf("kak: right factor: %w", err)
	}

	dec := &Decomposition{
		Phase: phase * lphase * rphase,
		L1:    l1, L0: l0,
		A: a, B: b, C: c,
		R1: r1, R0: r0,
	}
	// Validate: the reconstruction must match. The quarter-root branch
	// of det makes the global phase ambiguous up to i^k; fix it by
	// comparison.
	rec := dec.Reconstruct()
	corr := phaseCorrection(u, rec)
	if corr == 0 {
		return nil, fmt.Errorf("kak: reconstruction degenerate")
	}
	dec.Phase *= corr
	rec = linalg.Scale(corr, rec)
	if linalg.MaxAbsDiff(rec, u) > 1e-6 {
		return nil, fmt.Errorf("kak: reconstruction error %g", linalg.MaxAbsDiff(rec, u))
	}
	return dec, nil
}

// phaseCorrection returns the unit phase c minimizing |c·rec - u|.
func phaseCorrection(u, rec *linalg.Matrix) complex128 {
	inner := linalg.HSInner(rec, u) // Tr(rec† u)
	if cmplx.Abs(inner) < 1e-9 {
		return 0
	}
	return inner / complex(cmplx.Abs(inner), 0)
}

// simultaneousDiagonalize finds a real orthogonal P diagonalizing both the
// real and imaginary parts of the complex symmetric unitary w. It
// diagonalizes Re(w) + t·Im(w) for a sequence of mixing values t until the
// other part also comes out diagonal (handles eigenvalue degeneracies).
func simultaneousDiagonalize(w *linalg.Matrix) ([]float64, error) {
	re := make([]float64, 16)
	im := make([]float64, 16)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			re[i*4+j] = real(w.At(i, j))
			im[i*4+j] = imag(w.At(i, j))
		}
	}
	mix := []float64{0.0, 1.0, 0.618033988749895, 2.414213562373095, 0.267949192431123, 5.0}
	for _, t := range mix {
		s := make([]float64, 16)
		for i := range s {
			s[i] = re[i] + t*im[i]
		}
		_, p := jacobiEigen(s, 4)
		if isDiagonalized(re, p) && isDiagonalized(im, p) {
			// Fix det(P) = +1 by flipping one column if needed.
			if det4Real(p) < 0 {
				for r := 0; r < 4; r++ {
					p[r*4] = -p[r*4]
				}
			}
			return p, nil
		}
	}
	return nil, fmt.Errorf("kak: simultaneous diagonalization failed")
}

// isDiagonalized reports whether Pᵀ S P is diagonal within tolerance.
func isDiagonalized(s, p []float64) bool {
	// m = Pᵀ S P
	var sp [16]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var acc float64
			for k := 0; k < 4; k++ {
				acc += s[i*4+k] * p[k*4+j]
			}
			sp[i*4+j] = acc
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			var acc float64
			for k := 0; k < 4; k++ {
				acc += p[k*4+i] * sp[k*4+j]
			}
			if math.Abs(acc) > 1e-8 {
				return false
			}
		}
	}
	return true
}

func det4Real(p []float64) float64 {
	m := linalg.New(4, 4)
	for i := range p {
		m.Data[i] = complex(p[i], 0)
	}
	return real(det4(m))
}

func realToComplex(p []float64) *linalg.Matrix {
	m := linalg.New(4, 4)
	for i, v := range p {
		m.Data[i] = complex(v, 0)
	}
	return m
}

func imagNorm(m *linalg.Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += imag(v) * imag(v)
	}
	return math.Sqrt(s)
}

// factorTensor factors a 4x4 matrix of the form phase·(A ⊗ B) into
// unit-determinant 2x2 factors and the scalar phase.
func factorTensor(g *linalg.Matrix) (a, b *linalg.Matrix, phase complex128, err error) {
	// Find the largest entry to anchor the factorization.
	var mi, mj int
	var best float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if v := cmplx.Abs(g.At(i, j)); v > best {
				best = v
				mi, mj = i, j
			}
		}
	}
	if best < 1e-9 {
		return nil, nil, 0, fmt.Errorf("kak: zero matrix in tensor factorization")
	}
	i0, j0 := mi>>1, mi&1
	k0, l0 := mj>>1, mj&1
	ap := linalg.New(2, 2)
	bp := linalg.New(2, 2)
	for i := 0; i < 2; i++ {
		for k := 0; k < 2; k++ {
			ap.Set(i, k, g.At(i<<1|j0, k<<1|l0))
		}
	}
	for j := 0; j < 2; j++ {
		for l := 0; l < 2; l++ {
			bp.Set(j, l, g.At(i0<<1|j, k0<<1|l))
		}
	}
	pivot := g.At(mi, mj)
	// g = (ap ⊗ bp) / pivot. Distribute the scale so both factors have
	// unit determinant.
	detA := ap.At(0, 0)*ap.At(1, 1) - ap.At(0, 1)*ap.At(1, 0)
	if cmplx.Abs(detA) < 1e-12 {
		return nil, nil, 0, fmt.Errorf("kak: singular tensor factor")
	}
	alpha := cmplx.Sqrt(detA)
	a = linalg.Scale(1/alpha, ap)
	b = linalg.Scale(alpha/pivot, bp)
	detB := b.At(0, 0)*b.At(1, 1) - b.At(0, 1)*b.At(1, 0)
	beta := cmplx.Sqrt(detB)
	if cmplx.Abs(beta) < 1e-12 {
		return nil, nil, 0, fmt.Errorf("kak: singular tensor factor")
	}
	b = linalg.Scale(1/beta, b)
	phase = beta
	// Sanity: a ⊗ b must reproduce g up to the returned phase.
	if linalg.MaxAbsDiff(linalg.Scale(phase, linalg.Kron(a, b)), g) > 1e-6 {
		return nil, nil, 0, fmt.Errorf("kak: tensor factorization residual too large")
	}
	return a, b, phase, nil
}
