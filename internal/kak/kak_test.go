package kak

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/sim"
)

func TestJacobiEigen(t *testing.T) {
	// Symmetric matrix with known eigenvalues.
	s := []float64{
		2, 1, 0, 0,
		1, 2, 0, 0,
		0, 0, 3, 0,
		0, 0, 0, 5,
	}
	vals, p := jacobiEigen(s, 4)
	// Verify S = P D Pᵀ.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var acc float64
			for k := 0; k < 4; k++ {
				acc += p[i*4+k] * vals[k] * p[j*4+k]
			}
			if math.Abs(acc-s[i*4+j]) > 1e-9 {
				t.Fatalf("PDPᵀ[%d][%d] = %g, want %g", i, j, acc, s[i*4+j])
			}
		}
	}
	// Eigenvalues {1,3,3,5} in some order.
	var sum, prod float64 = 0, 1
	for _, v := range vals {
		sum += v
		prod *= v
	}
	if math.Abs(sum-12) > 1e-9 || math.Abs(prod-45) > 1e-9 {
		t.Errorf("eigenvalues = %v", vals)
	}
}

func TestJacobiOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		s := make([]float64, 16)
		for i := 0; i < 4; i++ {
			for j := i; j < 4; j++ {
				v := rng.NormFloat64()
				s[i*4+j] = v
				s[j*4+i] = v
			}
		}
		_, p := jacobiEigen(s, 4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				var acc float64
				for k := 0; k < 4; k++ {
					acc += p[k*4+i] * p[k*4+j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(acc-want) > 1e-9 {
					t.Fatalf("PᵀP not identity at (%d,%d): %g", i, j, acc)
				}
			}
		}
	}
}

func TestMagicBasisUnitary(t *testing.T) {
	if !magic.IsUnitary(1e-12) {
		t.Fatal("magic basis matrix is not unitary")
	}
}

func TestCanonicalThetaPattern(t *testing.T) {
	// The code assumes M† N(a,b,c) M = diag(e^{iθ}) with
	// θ = (a-b+c, a+b-c, -a+b+c, -a-b-c). Verify numerically.
	a, b, c := 0.3, 0.2, 0.1
	n := Canonical(a, b, c)
	d := linalg.MulChain(magicDagger, n, magic)
	want := []float64{a - b + c, a + b - c, -a - b - c, -a + b + c}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && cmplx.Abs(d.At(i, j)) > 1e-9 {
				t.Fatalf("canonical gate not diagonal in magic basis at (%d,%d): %v", i, j, d.At(i, j))
			}
		}
		got := cmplx.Phase(d.At(i, i))
		if math.Abs(got-want[i]) > 1e-9 {
			t.Errorf("θ[%d] = %g, want %g", i, got, want[i])
		}
	}
}

func TestDecomposeRandomUnitaries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		u := linalg.RandomUnitary(4, rng)
		dec, err := Decompose(u)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rec := dec.Reconstruct()
		if d := linalg.MaxAbsDiff(rec, u); d > 1e-6 {
			t.Fatalf("trial %d: reconstruction error %g", trial, d)
		}
		for _, m := range []*linalg.Matrix{dec.L1, dec.L0, dec.R1, dec.R0} {
			if !m.IsUnitary(1e-7) {
				t.Fatalf("trial %d: non-unitary local factor", trial)
			}
		}
	}
}

func TestDecomposeKnownGates(t *testing.T) {
	for _, name := range []string{"cx", "cz", "swap", "id"} {
		var u *linalg.Matrix
		if name == "id" {
			u = linalg.Identity(4)
		} else {
			u = gate.MustLookup(name).Build(nil)
		}
		dec, err := Decompose(u)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := linalg.MaxAbsDiff(dec.Reconstruct(), u); d > 1e-6 {
			t.Errorf("%s: reconstruction error %g", name, d)
		}
	}
}

func TestDecomposeTensorProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		a := linalg.RandomUnitary(2, rng)
		b := linalg.RandomUnitary(2, rng)
		u := linalg.Kron(a, b)
		dec, err := Decompose(u)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := linalg.MaxAbsDiff(dec.Reconstruct(), u); d > 1e-6 {
			t.Fatalf("trial %d: reconstruction error %g", trial, d)
		}
	}
}

func TestDecomposeRejectsBadInput(t *testing.T) {
	if _, err := Decompose(linalg.Identity(2)); err == nil {
		t.Error("2x2 accepted")
	}
	notU := linalg.Identity(4)
	notU.Set(0, 0, 3)
	if _, err := Decompose(notU); err == nil {
		t.Error("non-unitary accepted")
	}
}

func TestMinCNOTsKnownClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// 0 CNOTs: tensor products.
	for trial := 0; trial < 5; trial++ {
		u := linalg.Kron(linalg.RandomUnitary(2, rng), linalg.RandomUnitary(2, rng))
		if got := MinCNOTs(u); got != 0 {
			t.Errorf("tensor product: MinCNOTs = %d", got)
		}
	}
	// 1 CNOT: CX and CZ (same class), also dressed with local gates.
	cx := gate.MustLookup("cx").Build(nil)
	if got := MinCNOTs(cx); got != 1 {
		t.Errorf("CX: MinCNOTs = %d", got)
	}
	cz := gate.MustLookup("cz").Build(nil)
	if got := MinCNOTs(cz); got != 1 {
		t.Errorf("CZ: MinCNOTs = %d", got)
	}
	dressed := linalg.MulChain(
		linalg.Kron(linalg.RandomUnitary(2, rng), linalg.RandomUnitary(2, rng)),
		cx,
		linalg.Kron(linalg.RandomUnitary(2, rng), linalg.RandomUnitary(2, rng)),
	)
	if got := MinCNOTs(dressed); got != 1 {
		t.Errorf("dressed CX: MinCNOTs = %d", got)
	}
	// 3 CNOTs: SWAP.
	swap := gate.MustLookup("swap").Build(nil)
	if got := MinCNOTs(swap); got != 3 {
		t.Errorf("SWAP: MinCNOTs = %d", got)
	}
	// 2 CNOTs: a circuit with exactly two CNOTs and generic rotations.
	c := circuit.New(2)
	c.CX(0, 1)
	c.RZ(1, 0.7)
	c.RY(0, 0.4)
	c.CX(0, 1)
	u2 := sim.Unitary(c)
	if got := MinCNOTs(u2); got != 2 {
		t.Errorf("2-CNOT circuit: MinCNOTs = %d", got)
	}
	// Generic random: almost surely 3.
	three := 0
	for trial := 0; trial < 10; trial++ {
		if MinCNOTs(linalg.RandomUnitary(4, rng)) == 3 {
			three++
		}
	}
	if three < 9 {
		t.Errorf("only %d/10 random unitaries classified as 3-CNOT", three)
	}
}

func TestMinCNOTsMatchesCircuitConstruction(t *testing.T) {
	// Circuits built with exactly k CNOTs must never be classified as
	// needing more than k.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		k := rng.Intn(4)
		c := circuit.New(2)
		c.U3(0, rng.Float64(), rng.Float64(), rng.Float64())
		c.U3(1, rng.Float64(), rng.Float64(), rng.Float64())
		for i := 0; i < k; i++ {
			c.CX(i%2, (i+1)%2)
			c.U3(0, rng.Float64(), rng.Float64(), rng.Float64())
			c.U3(1, rng.Float64(), rng.Float64(), rng.Float64())
		}
		u := sim.Unitary(c)
		if got := MinCNOTs(u); got > k {
			t.Errorf("trial %d: %d-CNOT circuit classified as needing %d", trial, k, got)
		}
	}
}

func TestWeylCoordinatesKnown(t *testing.T) {
	// CX class: (π/4, 0, 0).
	a, b, c, err := WeylCoordinates(gate.MustLookup("cx").Build(nil))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-math.Pi/4) > 1e-6 || math.Abs(b) > 1e-6 || math.Abs(c) > 1e-6 {
		t.Errorf("CX Weyl coords = (%g, %g, %g), want (π/4, 0, 0)", a, b, c)
	}
	// SWAP class: (π/4, π/4, π/4).
	a, b, c, err = WeylCoordinates(gate.MustLookup("swap").Build(nil))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-math.Pi/4) > 1e-6 || math.Abs(b-math.Pi/4) > 1e-6 || math.Abs(c-math.Pi/4) > 1e-6 {
		t.Errorf("SWAP Weyl coords = (%g, %g, %g), want (π/4, π/4, π/4)", a, b, c)
	}
	// Identity: (0,0,0).
	a, b, c, err = WeylCoordinates(linalg.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if a > 1e-6 || b > 1e-6 || c > 1e-6 {
		t.Errorf("I Weyl coords = (%g, %g, %g)", a, b, c)
	}
}

func TestDet4(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	u := linalg.RandomUnitary(4, rng)
	if d := cmplx.Abs(det4(u)); math.Abs(d-1) > 1e-9 {
		t.Errorf("|det(U)| = %g for unitary", d)
	}
	if d := det4(linalg.Identity(4)); cmplx.Abs(d-1) > 1e-12 {
		t.Errorf("det(I) = %v", d)
	}
	scaled := linalg.Scale(2, linalg.Identity(4))
	if d := det4(scaled); cmplx.Abs(d-16) > 1e-9 {
		t.Errorf("det(2I) = %v, want 16", d)
	}
}

func TestPropMinCNOTsLocalEquivalenceInvariant(t *testing.T) {
	// MinCNOTs is a local-equivalence-class invariant: dressing U with
	// arbitrary single-qubit gates on either side must not change it.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		u := linalg.RandomUnitary(4, rng)
		base := MinCNOTs(u)
		dressed := linalg.MulChain(
			linalg.Kron(linalg.RandomUnitary(2, rng), linalg.RandomUnitary(2, rng)),
			u,
			linalg.Kron(linalg.RandomUnitary(2, rng), linalg.RandomUnitary(2, rng)),
		)
		if got := MinCNOTs(dressed); got != base {
			t.Fatalf("trial %d: MinCNOTs changed under local dressing: %d -> %d", trial, base, got)
		}
	}
}

func TestPropWeylCoordsLocalEquivalenceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		u := linalg.RandomUnitary(4, rng)
		a1, b1, c1, err := WeylCoordinates(u)
		if err != nil {
			t.Fatal(err)
		}
		dressed := linalg.MulChain(
			linalg.Kron(linalg.RandomUnitary(2, rng), linalg.RandomUnitary(2, rng)),
			u,
			linalg.Kron(linalg.RandomUnitary(2, rng), linalg.RandomUnitary(2, rng)),
		)
		a2, b2, c2, err := WeylCoordinates(dressed)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a1-a2)+math.Abs(b1-b2)+math.Abs(c1-c2) > 1e-5 {
			t.Fatalf("trial %d: Weyl coords changed under local dressing: (%g,%g,%g) vs (%g,%g,%g)",
				trial, a1, b1, c1, a2, b2, c2)
		}
	}
}
