// Package kak implements the Cartan (KAK) decomposition of two-qubit
// unitaries via the magic basis: U = e^{iφ} (A1⊗A0) · N(a,b,c) · (B1⊗B0)
// with N(a,b,c) = exp(i(a·XX + b·YY + c·ZZ)), plus the Makhlin-invariant
// classification of how many CNOTs a two-qubit unitary requires (0-3).
// This is the analytic machinery behind Qiskit's two-qubit resynthesis;
// the transpile package uses it to ask the numerical synthesizer for
// exactly the minimal CNOT depth.
package kak

import (
	"math"
)

// jacobiEigen diagonalizes a real symmetric n x n matrix (given as a flat
// row-major slice) with cyclic Jacobi rotations. It returns the
// eigenvalues and the orthogonal eigenvector matrix P (columns are
// eigenvectors): S = P · diag(vals) · Pᵀ.
func jacobiEigen(s []float64, n int) (vals []float64, p []float64) {
	a := append([]float64(nil), s...)
	p = make([]float64, n*n)
	for i := 0; i < n; i++ {
		p[i*n+i] = 1
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i*n+j] * a[i*n+j]
			}
		}
		if off < 1e-26 {
			break
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				apq := a[i*n+j]
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app := a[i*n+i]
				aqq := a[j*n+j]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := t * c
				// Rotate rows/columns i and j of a.
				for k := 0; k < n; k++ {
					aik := a[i*n+k]
					ajk := a[j*n+k]
					a[i*n+k] = c*aik - sn*ajk
					a[j*n+k] = sn*aik + c*ajk
				}
				for k := 0; k < n; k++ {
					aki := a[k*n+i]
					akj := a[k*n+j]
					a[k*n+i] = c*aki - sn*akj
					a[k*n+j] = sn*aki + c*akj
				}
				// Accumulate the rotation into p.
				for k := 0; k < n; k++ {
					pki := p[k*n+i]
					pkj := p[k*n+j]
					p[k*n+i] = c*pki - sn*pkj
					p[k*n+j] = sn*pki + c*pkj
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i*n+i]
	}
	return vals, p
}
