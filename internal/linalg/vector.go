package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Vector is a dense complex vector (a quantum statevector when normalized).
type Vector []complex128

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// BasisVector returns the length-n computational basis state |k>.
func BasisVector(n, k int) Vector {
	if k < 0 || k >= n {
		panic(fmt.Sprintf("linalg: basis index %d out of range [0,%d)", k, n))
	}
	v := NewVector(n)
	v[k] = 1
	return v
}

// Copy returns a deep copy of v.
func (v Vector) Copy() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

// Normalize scales v in place to unit norm. A zero vector is left unchanged.
func (v Vector) Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range v {
		v[i] *= inv
	}
}

// Dot returns the inner product <a|b> (conjugating a).
func Dot(a, b Vector) complex128 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

// ApplyMatrix returns m*v.
func ApplyMatrix(m *Matrix, v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: ApplyMatrix shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s complex128
		for j, mv := range row {
			if mv != 0 {
				s += mv * v[j]
			}
		}
		out[i] = s
	}
	return out
}

// Probabilities returns |v_k|^2 for every amplitude.
func (v Vector) Probabilities() []float64 {
	p := make([]float64, len(v))
	for i, x := range v {
		p[i] = real(x)*real(x) + imag(x)*imag(x)
	}
	return p
}
