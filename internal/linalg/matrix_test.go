package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-10

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("Identity(3)[%d][%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestMulBasic(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]complex128{{19, 22}, {43, 50}})
	if !EqualApprox(got, want, tol) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := RandomUnitary(4, rng)
	if !EqualApprox(Mul(u, Identity(4)), u, tol) {
		t.Error("U*I != U")
	}
	if !EqualApprox(Mul(Identity(4), u), u, tol) {
		t.Error("I*U != U")
	}
}

func TestMulComplex(t *testing.T) {
	i := complex(0, 1)
	a := FromRows([][]complex128{{0, -i}, {i, 0}}) // Pauli Y
	got := Mul(a, a)
	if !EqualApprox(got, Identity(2), tol) {
		t.Errorf("Y*Y = %v, want I", got)
	}
}

func TestMulChain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b, c := RandomUnitary(3, rng), RandomUnitary(3, rng), RandomUnitary(3, rng)
	got := MulChain(a, b, c)
	want := Mul(Mul(a, b), c)
	if !EqualApprox(got, want, tol) {
		t.Error("MulChain(a,b,c) != (a*b)*c")
	}
}

func TestKronBasic(t *testing.T) {
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	id := Identity(2)
	// X ⊗ I
	got := Kron(x, id)
	want := FromRows([][]complex128{
		{0, 0, 1, 0},
		{0, 0, 0, 1},
		{1, 0, 0, 0},
		{0, 1, 0, 0},
	})
	if !EqualApprox(got, want, tol) {
		t.Errorf("X ⊗ I = %v, want %v", got, want)
	}
}

func TestKronMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	rng := rand.New(rand.NewSource(3))
	a, b := RandomUnitary(2, rng), RandomUnitary(3, rng)
	c, d := RandomUnitary(2, rng), RandomUnitary(3, rng)
	lhs := Mul(Kron(a, b), Kron(c, d))
	rhs := Kron(Mul(a, c), Mul(b, d))
	if !EqualApprox(lhs, rhs, 1e-9) {
		t.Error("Kron mixed-product identity violated")
	}
}

func TestTraceKron(t *testing.T) {
	// Tr(A⊗B) = Tr(A)Tr(B)
	rng := rand.New(rand.NewSource(4))
	a, b := RandomUnitary(2, rng), RandomUnitary(4, rng)
	lhs := Kron(a, b).Trace()
	rhs := a.Trace() * b.Trace()
	if cmplx.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("Tr(A⊗B)=%v, Tr(A)Tr(B)=%v", lhs, rhs)
	}
}

func TestDagger(t *testing.T) {
	i := complex(0, 1)
	m := FromRows([][]complex128{{1 + i, 2}, {3, 4 - i}})
	d := m.Dagger()
	want := FromRows([][]complex128{{1 - i, 3}, {2, 4 + i}})
	if !EqualApprox(d, want, tol) {
		t.Errorf("Dagger = %v, want %v", d, want)
	}
}

func TestDaggerInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := RandomUnitary(5, rng)
	if !EqualApprox(m.Dagger().Dagger(), m, tol) {
		t.Error("(M†)† != M")
	}
}

func TestUnitaryInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	u := RandomUnitary(8, rng)
	if !u.IsUnitary(1e-9) {
		t.Fatal("RandomUnitary not unitary")
	}
	if !EqualApprox(Mul(u, u.Dagger()), Identity(8), 1e-9) {
		t.Error("U U† != I")
	}
}

func TestHSDistanceSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := RandomUnitary(4, rng)
	if d := HSDistance(u, u); d > 1e-7 {
		t.Errorf("HSDistance(U,U) = %g, want ~0", d)
	}
}

func TestHSDistanceGlobalPhaseInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	u := RandomUnitary(4, rng)
	v := Scale(RandomPhase(rng), u)
	if d := HSDistance(u, v); d > 1e-7 {
		t.Errorf("HSDistance(U, e^{it}U) = %g, want ~0", d)
	}
}

func TestHSDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	u, v := RandomUnitary(4, rng), RandomUnitary(4, rng)
	if d1, d2 := HSDistance(u, v), HSDistance(v, u); math.Abs(d1-d2) > tol {
		t.Errorf("HSDistance asymmetric: %g vs %g", d1, d2)
	}
}

func TestHSDistanceRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 50; trial++ {
		u, v := RandomUnitary(4, rng), RandomUnitary(4, rng)
		d := HSDistance(u, v)
		if d < 0 || d > 1 {
			t.Fatalf("HSDistance out of [0,1]: %g", d)
		}
	}
}

func TestHSDistanceKronExtension(t *testing.T) {
	// Paper Sec 3.8: HS(U1⊗I, U1'⊗I) == HS(U1, U1').
	rng := rand.New(rand.NewSource(11))
	u, v := RandomUnitary(4, rng), RandomUnitary(4, rng)
	id := Identity(4)
	d1 := HSDistance(u, v)
	d2 := HSDistance(Kron(u, id), Kron(v, id))
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("HS distance not preserved under ⊗I: %g vs %g", d1, d2)
	}
}

func TestTraceCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a, b := RandomUnitary(4, rng), RandomUnitary(4, rng)
	lhs := Mul(a, b).Trace()
	rhs := Mul(b, a).Trace()
	if cmplx.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("Tr(AB)=%v != Tr(BA)=%v", lhs, rhs)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{4, 3}, {2, 1}})
	if got, want := Add(a, b), FromRows([][]complex128{{5, 5}, {5, 5}}); !EqualApprox(got, want, tol) {
		t.Errorf("Add = %v", got)
	}
	if got, want := Sub(a, b), FromRows([][]complex128{{-3, -1}, {1, 3}}); !EqualApprox(got, want, tol) {
		t.Errorf("Sub = %v", got)
	}
	if got, want := Scale(2, a), FromRows([][]complex128{{2, 4}, {6, 8}}); !EqualApprox(got, want, tol) {
		t.Errorf("Scale = %v", got)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]complex128{{3, 0}, {0, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > tol {
		t.Errorf("FrobeniusNorm = %g, want 5", got)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]complex128{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("Transpose shape = %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 {
		t.Errorf("Transpose[2][1] = %v, want 6", tr.At(2, 1))
	}
}

func TestMulIntoPanicsOnAlias(t *testing.T) {
	// Shape mismatch must panic (aliasing is documented away, shapes are checked).
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	a := New(2, 3)
	b := New(2, 3) // incompatible inner dims
	MulInto(New(2, 3), a, b)
}

// Property-based tests.

func TestPropMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := RandomUnitary(4, r), RandomUnitary(4, r), RandomUnitary(4, r)
		return EqualApprox(Mul(Mul(a, b), c), Mul(a, Mul(b, c)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropUnitaryClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := RandomUnitary(4, r), RandomUnitary(4, r)
		return Mul(a, b).IsUnitary(1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropKronUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := RandomUnitary(2, r), RandomUnitary(4, r)
		return Kron(a, b).IsUnitary(1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropHSDistanceTriangleish(t *testing.T) {
	// HS distance satisfies a weak triangle inequality per Wang-Zhang:
	// d(A,C) <= d(A,B) + d(B,C). This is the inequality the bound proof uses.
	rng := rand.New(rand.NewSource(16))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := RandomUnitary(4, r), RandomUnitary(4, r), RandomUnitary(4, r)
		return HSDistance(a, c) <= HSDistance(a, b)+HSDistance(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
