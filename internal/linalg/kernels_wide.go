// Wide-block kernels: k=3 (8x8) and k=4 (16x16) unrolled variants of the
// gate-application family in kernels.go, out-of-place Into forms of the
// k=1/k=2 left-application kernels, and the 2-qubit gradient gather used
// by the fused-layer synthesis objective. Same contract as kernels.go:
// caller-owned scratch, zero heap allocations, and bit-for-bit agreement
// with the generic ScatterTab path (the `gv != 0` zero-skip is kept so the
// accumulation order and the skipped terms match the oracle exactly).
package linalg

// offs8 expands the three gate-qubit bit positions (qA = most significant
// local bit) into the eight global offset patterns of a group.
func offs8(qA, qB, qC int) (offs [8]int, mask int) {
	a, b, c := 1<<qA, 1<<qB, 1<<qC
	mask = a | b | c
	for l := 0; l < 8; l++ {
		o := 0
		if l&4 != 0 {
			o |= a
		}
		if l&2 != 0 {
			o |= b
		}
		if l&1 != 0 {
			o |= c
		}
		offs[l] = o
	}
	return offs, mask
}

// offs16 expands four gate-qubit bit positions (qA = most significant
// local bit) into the sixteen global offset patterns of a group.
func offs16(qA, qB, qC, qD int) (offs [16]int, mask int) {
	a, b, c, d := 1<<qA, 1<<qB, 1<<qC, 1<<qD
	mask = a | b | c | d
	for l := 0; l < 16; l++ {
		o := 0
		if l&8 != 0 {
			o |= a
		}
		if l&4 != 0 {
			o |= b
		}
		if l&2 != 0 {
			o |= c
		}
		if l&1 != 0 {
			o |= d
		}
		offs[l] = o
	}
	return offs, mask
}

// ApplyLeft3 computes m <- G_full*m in place for an 8x8 gate g on qubits
// (qA, qB, qC), qA being the most significant local bit.
func ApplyLeft3(m *Matrix, g *[64]complex128, qA, qB, qC int) {
	offs, mask := offs8(qA, qB, qC)
	cols := m.Cols
	var rows [8][]complex128
	var in [8]complex128
	for base := 0; base < m.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < 8; l++ {
			r := (base | offs[l]) * cols
			rows[l] = m.Data[r : r+cols]
		}
		for j := 0; j < cols; j++ {
			for l := 0; l < 8; l++ {
				in[l] = rows[l][j]
			}
			for r := 0; r < 8; r++ {
				grow := g[r*8 : r*8+8]
				var s complex128
				for l, v := range in {
					if grow[l] != 0 {
						s += grow[l] * v
					}
				}
				rows[r][j] = s
			}
		}
	}
}

// ApplyLeft4 computes m <- G_full*m in place for a 16x16 gate g on qubits
// (qA, qB, qC, qD), qA being the most significant local bit.
func ApplyLeft4(m *Matrix, g *[256]complex128, qA, qB, qC, qD int) {
	offs, mask := offs16(qA, qB, qC, qD)
	cols := m.Cols
	var rows [16][]complex128
	var in [16]complex128
	for base := 0; base < m.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < 16; l++ {
			r := (base | offs[l]) * cols
			rows[l] = m.Data[r : r+cols]
		}
		for j := 0; j < cols; j++ {
			for l := 0; l < 16; l++ {
				in[l] = rows[l][j]
			}
			for r := 0; r < 16; r++ {
				grow := g[r*16 : r*16+16]
				var s complex128
				for l, v := range in {
					if grow[l] != 0 {
						s += grow[l] * v
					}
				}
				rows[r][j] = s
			}
		}
	}
}

// ApplyRight3 computes m <- m*G_full in place for an 8x8 gate g on qubits
// (qA, qB, qC).
func ApplyRight3(m *Matrix, g *[64]complex128, qA, qB, qC int) {
	offs, mask := offs8(qA, qB, qC)
	cols := m.Cols
	var idx [8]int
	var in [8]complex128
	for base := 0; base < cols; base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < 8; l++ {
			idx[l] = base | offs[l]
		}
		for off := 0; off < len(m.Data); off += cols {
			for l := 0; l < 8; l++ {
				in[l] = m.Data[off+idx[l]]
			}
			for lj := 0; lj < 8; lj++ {
				var s complex128
				for lm := 0; lm < 8; lm++ {
					gv := g[lm*8+lj]
					if gv != 0 {
						s += in[lm] * gv
					}
				}
				m.Data[off+idx[lj]] = s
			}
		}
	}
}

// ApplyRight4 computes m <- m*G_full in place for a 16x16 gate g on qubits
// (qA, qB, qC, qD).
func ApplyRight4(m *Matrix, g *[256]complex128, qA, qB, qC, qD int) {
	offs, mask := offs16(qA, qB, qC, qD)
	cols := m.Cols
	var idx [16]int
	var in [16]complex128
	for base := 0; base < cols; base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < 16; l++ {
			idx[l] = base | offs[l]
		}
		for off := 0; off < len(m.Data); off += cols {
			for l := 0; l < 16; l++ {
				in[l] = m.Data[off+idx[l]]
			}
			for lj := 0; lj < 16; lj++ {
				var s complex128
				for lm := 0; lm < 16; lm++ {
					gv := g[lm*16+lj]
					if gv != 0 {
						s += in[lm] * gv
					}
				}
				m.Data[off+idx[lj]] = s
			}
		}
	}
}

// SubspaceTrace3 returns Tr(A*G_full) for an 8x8 gate g on qubits
// (qA, qB, qC) without expanding G to the full space.
func SubspaceTrace3(a *Matrix, g *[64]complex128, qA, qB, qC int) complex128 {
	offs, mask := offs8(qA, qB, qC)
	cols := a.Cols
	var idx [8]int
	var tr complex128
	for base := 0; base < a.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < 8; l++ {
			idx[l] = base | offs[l]
		}
		for li := 0; li < 8; li++ {
			arow := a.Data[idx[li]*cols:]
			for lj := 0; lj < 8; lj++ {
				gv := g[lj*8+li]
				if gv != 0 {
					tr += arow[idx[lj]] * gv
				}
			}
		}
	}
	return tr
}

// SubspaceTrace4 returns Tr(A*G_full) for a 16x16 gate g on qubits
// (qA, qB, qC, qD) without expanding G to the full space.
func SubspaceTrace4(a *Matrix, g *[256]complex128, qA, qB, qC, qD int) complex128 {
	offs, mask := offs16(qA, qB, qC, qD)
	cols := a.Cols
	var idx [16]int
	var tr complex128
	for base := 0; base < a.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < 16; l++ {
			idx[l] = base | offs[l]
		}
		for li := 0; li < 16; li++ {
			arow := a.Data[idx[li]*cols:]
			for lj := 0; lj < 16; lj++ {
				gv := g[lj*16+li]
				if gv != 0 {
					tr += arow[idx[lj]] * gv
				}
			}
		}
	}
	return tr
}

// ApplyVec3 applies an 8x8 gate g to qubits (qA, qB, qC) of a statevector
// in place.
func ApplyVec3(state []complex128, g *[64]complex128, qA, qB, qC int) {
	offs, mask := offs8(qA, qB, qC)
	var idx [8]int
	var in [8]complex128
	for base := 0; base < len(state); base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < 8; l++ {
			gi := base | offs[l]
			idx[l] = gi
			in[l] = state[gi]
		}
		for r := 0; r < 8; r++ {
			grow := g[r*8 : r*8+8]
			var s complex128
			for l, v := range in {
				if grow[l] != 0 {
					s += grow[l] * v
				}
			}
			state[idx[r]] = s
		}
	}
}

// ApplyVec4 applies a 16x16 gate g to qubits (qA, qB, qC, qD) of a
// statevector in place.
func ApplyVec4(state []complex128, g *[256]complex128, qA, qB, qC, qD int) {
	offs, mask := offs16(qA, qB, qC, qD)
	var idx [16]int
	var in [16]complex128
	for base := 0; base < len(state); base++ {
		if base&mask != 0 {
			continue
		}
		for l := 0; l < 16; l++ {
			gi := base | offs[l]
			idx[l] = gi
			in[l] = state[gi]
		}
		for r := 0; r < 16; r++ {
			grow := g[r*16 : r*16+16]
			var s complex128
			for l, v := range in {
				if grow[l] != 0 {
					s += grow[l] * v
				}
			}
			state[idx[r]] = s
		}
	}
}

// ApplyLeft1Into computes dst <- G_full*src for a 2x2 gate g on qubit q.
// dst and src must be distinct, same-shape matrices; every entry of dst is
// written. The out-of-place form replaces the CopyInto+ApplyLeft1 pair in
// the synthesis forward pass, halving its memory traffic.
func ApplyLeft1Into(dst, src *Matrix, g *[4]complex128, q int) {
	bit := 1 << q
	a, b, c, d := g[0], g[1], g[2], g[3]
	cols := src.Cols
	for base := 0; base < src.Rows; base++ {
		if base&bit != 0 {
			continue
		}
		s0 := src.Data[base*cols : base*cols+cols]
		s1 := src.Data[(base|bit)*cols : (base|bit)*cols+cols]
		d0 := dst.Data[base*cols : base*cols+cols]
		d1 := dst.Data[(base|bit)*cols : (base|bit)*cols+cols]
		for j, v0 := range s0 {
			v1 := s1[j]
			d0[j] = a*v0 + b*v1
			d1[j] = c*v0 + d*v1
		}
	}
}

// ApplyLeft2Into computes dst <- G_full*src for a 4x4 gate g on qubits
// (qHi, qLo). dst and src must be distinct, same-shape matrices; every
// entry of dst is written.
func ApplyLeft2Into(dst, src *Matrix, g *[16]complex128, qHi, qLo int) {
	hi, lo := 1<<qHi, 1<<qLo
	mask := hi | lo
	cols := src.Cols
	// Hoist the gate entries: the compiler cannot prove g does not alias
	// dst.Data, so indexing g inside the loop reloads all 16 entries after
	// every store.
	g0, g1, g2, g3 := g[0], g[1], g[2], g[3]
	g4, g5, g6, g7 := g[4], g[5], g[6], g[7]
	g8, g9, g10, g11 := g[8], g[9], g[10], g[11]
	g12, g13, g14, g15 := g[12], g[13], g[14], g[15]
	for base := 0; base < src.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		s0 := src.Data[base*cols : base*cols+cols]
		s1 := src.Data[(base|lo)*cols : (base|lo)*cols+cols]
		s2 := src.Data[(base|hi)*cols : (base|hi)*cols+cols]
		s3 := src.Data[(base|mask)*cols : (base|mask)*cols+cols]
		d0 := dst.Data[base*cols : base*cols+cols]
		d1 := dst.Data[(base|lo)*cols : (base|lo)*cols+cols]
		d2 := dst.Data[(base|hi)*cols : (base|hi)*cols+cols]
		d3 := dst.Data[(base|mask)*cols : (base|mask)*cols+cols]
		for j, v0 := range s0 {
			v1, v2, v3 := s1[j], s2[j], s3[j]
			d0[j] = g0*v0 + g1*v1 + g2*v2 + g3*v3
			d1[j] = g4*v0 + g5*v1 + g6*v2 + g7*v3
			d2[j] = g8*v0 + g9*v1 + g10*v2 + g11*v3
			d3[j] = g12*v0 + g13*v1 + g14*v2 + g15*v3
		}
	}
}

// GatherProdBlocks2 is the 2-qubit analogue of GatherProdBlocks1: for each
// index group {base, base|lo, base|hi, base|hi|lo} of the product P = a*b
// it stores the 4x4 block P[i_li][i_lj] (row-major in (li, lj)) into dst in
// base order. dst must have length 4*Rows (Rows/4 groups x 16 entries).
// One gather serves every parameter of a fused 4x4 layer segment (see
// TraceBlocks2), which is what makes the layer-fused gradient cheaper than
// four 1-qubit gathers.
func GatherProdBlocks2(dst []complex128, a, b *Matrix, qHi, qLo int) {
	hi, lo := 1<<qHi, 1<<qLo
	mask := hi | lo
	cols := a.Cols
	bd := b.Data
	gi := 0
	for base := 0; base < a.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		i0, i1, i2, i3 := base, base|lo, base|hi, base|mask
		idx := [4]int{i0, i1, i2, i3}
		for li := 0; li < 4; li++ {
			arow := a.Data[idx[li]*cols : idx[li]*cols+cols]
			var p0, p1, p2, p3 complex128
			for m, av := range arow {
				off := m * cols
				p0 += av * bd[off+i0]
				p1 += av * bd[off+i1]
				p2 += av * bd[off+i2]
				p3 += av * bd[off+i3]
			}
			dst[gi] = p0
			dst[gi+1] = p1
			dst[gi+2] = p2
			dst[gi+3] = p3
			gi += 4
		}
	}
}

// TraceBlocks2 returns Tr(P*G_full) from blocks gathered by
// GatherProdBlocks2: Tr(P*G) = sum over groups of P[i][j]*G[j][i].
func TraceBlocks2(blocks []complex128, g *[16]complex128) complex128 {
	var t complex128
	for i := 0; i < len(blocks); i += 16 {
		blk := blocks[i : i+16]
		for li := 0; li < 4; li++ {
			t += blk[li*4]*g[li] + blk[li*4+1]*g[4+li] +
				blk[li*4+2]*g[8+li] + blk[li*4+3]*g[12+li]
		}
	}
	return t
}

// LayerGradContract fuses the gradient gather of a fused LEAP layer with
// the two partial contractions its four parameter derivatives share. The
// layer gate is L = (A ⊗ B)·CX with A = RZ·RY on the control (local MSB)
// and B = RZ·RY on the target, so every derivative has the form
// (dA ⊗ B)·CX or (A ⊗ dB)·CX. With P = a·b restricted to the (qHi, qLo)
// index groups and Tr(P·G·CX) = Tr(CX·P·G) — CX on the left is a free row
// swap of the block — the trace against any (X ⊗ Y)-shaped G factors
// through one of two 2x2 partial contractions:
//
//	w[ic][jc] = Σ_groups Σ_{it,jt} Pswap[(ic,it)][(jc,jt)] · rt[jt][it]
//	v[it][jt] = Σ_groups Σ_{ic,jc} Pswap[(ic,it)][(jc,jt)] · rc[jc][ic]
//
// so that Tr(P·(dA⊗B)·CX) = Σ dA[jc][ic]·w[ic][jc] and likewise for dB
// against v. One call serves all four layer parameters; the 4x4 blocks
// never touch memory (compare GatherProdBlocks2 + TraceBlocks2, which
// materialize them and re-walk them per parameter).
func LayerGradContract(a, b *Matrix, qHi, qLo int, rc, rt, w, v *[4]complex128) {
	hi, lo := 1<<qHi, 1<<qLo
	mask := hi | lo
	cols := a.Cols
	if cols > 16 {
		layerGradContractGeneric(a, b, hi, lo, mask, rc, rt, w, v)
		return
	}
	bd := b.Data
	rtv, rcv := *rt, *rc
	var wa, va [4]complex128
	// Stage b's four group columns once per index group: all four rows of
	// the 4x4 product block read the same 4*cols entries of b, so a single
	// gather into a stack buffer replaces four strided walks of b.Data and
	// their bounds checks. Synthesis blocks are at most 4 qubits, so the
	// hot path always has cols <= 16; anything larger takes the unstaged
	// generic loop above.
	var bc [16][4]complex128
	for base := 0; base < a.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		i0, i1, i2, i3 := base, base|lo, base|hi, base|mask
		for m := 0; m < cols; m++ {
			off := m * cols
			bc[m][0] = bd[off+i0]
			bc[m][1] = bd[off+i1]
			bc[m][2] = bd[off+i2]
			bc[m][3] = bd[off+i3]
		}
		idx := [4]int{i0, i1, i2, i3}
		for li := 0; li < 4; li++ {
			arow := a.Data[idx[li]*cols : idx[li]*cols+cols]
			var p0, p1, p2, p3 complex128
			for m, av := range arow {
				p0 += av * bc[m][0]
				p1 += av * bc[m][1]
				p2 += av * bc[m][2]
				p3 += av * bc[m][3]
			}
			bi := li
			if li == 2 {
				bi = 3
			} else if li == 3 {
				bi = 2
			}
			ic, it := bi>>1, bi&1
			wa[ic*2] += p0*rtv[it] + p1*rtv[2+it]
			wa[ic*2+1] += p2*rtv[it] + p3*rtv[2+it]
			va[it*2] += p0*rcv[ic] + p2*rcv[2+ic]
			va[it*2+1] += p1*rcv[ic] + p3*rcv[2+ic]
		}
	}
	*w = wa
	*v = va
}

// layerGradContractGeneric is the unstaged fallback for matrices wider than
// the 4-qubit stack buffer in LayerGradContract; semantics are identical.
func layerGradContractGeneric(a, b *Matrix, hi, lo, mask int, rc, rt, w, v *[4]complex128) {
	cols := a.Cols
	bd := b.Data
	rtv, rcv := *rt, *rc
	var wa, va [4]complex128
	for base := 0; base < a.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		i0, i1, i2, i3 := base, base|lo, base|hi, base|mask
		idx := [4]int{i0, i1, i2, i3}
		for li := 0; li < 4; li++ {
			arow := a.Data[idx[li]*cols : idx[li]*cols+cols]
			var p0, p1, p2, p3 complex128
			for m, av := range arow {
				off := m * cols
				p0 += av * bd[off+i0]
				p1 += av * bd[off+i1]
				p2 += av * bd[off+i2]
				p3 += av * bd[off+i3]
			}
			bi := li
			if li == 2 {
				bi = 3
			} else if li == 3 {
				bi = 2
			}
			ic, it := bi>>1, bi&1
			wa[ic*2] += p0*rtv[it] + p1*rtv[2+it]
			wa[ic*2+1] += p2*rtv[it] + p3*rtv[2+it]
			va[it*2] += p0*rcv[ic] + p2*rcv[2+ic]
			va[it*2+1] += p1*rcv[ic] + p3*rcv[2+ic]
		}
	}
	*w = wa
	*v = va
}

// GatherIdentityBlocks1 is GatherProdBlocks1 specialized to a = I: the
// product blocks are just b's entries at the group indices. The synthesis
// backward pass hits this for the first segment of every evaluation
// (fwd[0] is always the identity).
func GatherIdentityBlocks1(dst []complex128, b *Matrix, q int) {
	bit := 1 << q
	cols := b.Cols
	bd := b.Data
	gi := 0
	for base := 0; base < b.Rows; base++ {
		if base&bit != 0 {
			continue
		}
		r0, r1 := base, base|bit
		dst[gi] = bd[r0*cols+r0]
		dst[gi+1] = bd[r0*cols+r1]
		dst[gi+2] = bd[r1*cols+r0]
		dst[gi+3] = bd[r1*cols+r1]
		gi += 4
	}
}

// EmbedGate1 writes the full-space embedding of a 2x2 gate g on qubit q
// into dst (dst <- G_full). Replaces a dense ApplyLeft1Into when the
// source is known to be the identity: the result has just four gate
// entries per group, so embedding directly skips the dense multiply.
func EmbedGate1(dst *Matrix, g *[4]complex128, q int) {
	bit := 1 << q
	cols := dst.Cols
	d := dst.Data
	for i := range d {
		d[i] = 0
	}
	for base := 0; base < dst.Rows; base++ {
		if base&bit != 0 {
			continue
		}
		i0, i1 := base, base|bit
		d[i0*cols+i0] = g[0]
		d[i0*cols+i1] = g[1]
		d[i1*cols+i0] = g[2]
		d[i1*cols+i1] = g[3]
	}
}
