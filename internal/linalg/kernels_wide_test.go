package linalg

import (
	"math/rand"
	"sync"
	"testing"
)

// wideQubitSets returns random k-qubit placements (k=3 and k=4) on n
// qubits, in arbitrary order (the kernels must handle any permutation).
func wideQubitSets(n int, rng *rand.Rand) [][]int {
	pick := func(k int) []int {
		perm := rng.Perm(n)
		return append([]int(nil), perm[:k]...)
	}
	var sets [][]int
	for i := 0; i < 4; i++ {
		sets = append(sets, pick(3))
	}
	if n >= 4 {
		for i := 0; i < 4; i++ {
			sets = append(sets, pick(4))
		}
	}
	return sets
}

func applyLeftWide(m *Matrix, g *Matrix, qs []int) {
	if len(qs) == 3 {
		ApplyLeft3(m, (*[64]complex128)(g.Data), qs[0], qs[1], qs[2])
	} else {
		ApplyLeft4(m, (*[256]complex128)(g.Data), qs[0], qs[1], qs[2], qs[3])
	}
}

func applyRightWide(m *Matrix, g *Matrix, qs []int) {
	if len(qs) == 3 {
		ApplyRight3(m, (*[64]complex128)(g.Data), qs[0], qs[1], qs[2])
	} else {
		ApplyRight4(m, (*[256]complex128)(g.Data), qs[0], qs[1], qs[2], qs[3])
	}
}

func subspaceTraceWide(m *Matrix, g *Matrix, qs []int) complex128 {
	if len(qs) == 3 {
		return SubspaceTrace3(m, (*[64]complex128)(g.Data), qs[0], qs[1], qs[2])
	}
	return SubspaceTrace4(m, (*[256]complex128)(g.Data), qs[0], qs[1], qs[2], qs[3])
}

func applyVecWide(state []complex128, g *Matrix, qs []int) {
	if len(qs) == 3 {
		ApplyVec3(state, (*[64]complex128)(g.Data), qs[0], qs[1], qs[2])
	} else {
		ApplyVec4(state, (*[256]complex128)(g.Data), qs[0], qs[1], qs[2], qs[3])
	}
}

func TestWideKernelsMatchExpandedProduct(t *testing.T) {
	// k=3 and k=4 kernels vs the ground-truth full-matrix product.
	for _, n := range []int{4, 5, 6} {
		rng := rand.New(rand.NewSource(int64(400 + n)))
		m := RandomUnitary(1<<n, rng)
		for _, qs := range wideQubitSets(n, rng) {
			g := RandomUnitary(1<<len(qs), rng)
			full := expand(n, g, qs)

			left := m.Copy()
			applyLeftWide(left, g, qs)
			if d := MaxAbsDiff(left, Mul(full, m)); d > 1e-9 {
				t.Errorf("n=%d qubits=%v: ApplyLeft diff %g", n, qs, d)
			}

			right := m.Copy()
			applyRightWide(right, g, qs)
			if d := MaxAbsDiff(right, Mul(m, full)); d > 1e-9 {
				t.Errorf("n=%d qubits=%v: ApplyRight diff %g", n, qs, d)
			}

			tr := subspaceTraceWide(m, g, qs)
			want := Mul(m, full).Trace()
			if d := tr - want; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
				t.Errorf("n=%d qubits=%v: SubspaceTrace = %v, want %v", n, qs, tr, want)
			}
		}
	}
}

func TestWideKernelsMatchGenericTabExactly(t *testing.T) {
	// The ScatterTab path is the randomized correctness oracle. The wide
	// kernels replicate its accumulation order and zero-skip, so agreement
	// is bit-for-bit, not just within tolerance.
	for _, n := range []int{4, 5, 6} {
		rng := rand.New(rand.NewSource(int64(500 + n)))
		m := RandomUnitary(1<<n, rng)
		for _, qs := range wideQubitSets(n, rng) {
			g := RandomUnitary(1<<len(qs), rng)
			tab := NewScatterTab(qs)

			specL, genL := m.Copy(), m.Copy()
			applyLeftWide(specL, g, qs)
			ApplyLeftTab(genL, g.Data, tab)
			for i := range specL.Data {
				if specL.Data[i] != genL.Data[i] {
					t.Fatalf("n=%d qubits=%v: left entry %d: %v != %v", n, qs, i, specL.Data[i], genL.Data[i])
				}
			}

			specR, genR := m.Copy(), m.Copy()
			applyRightWide(specR, g, qs)
			ApplyRightTab(genR, g.Data, tab)
			for i := range specR.Data {
				if specR.Data[i] != genR.Data[i] {
					t.Fatalf("n=%d qubits=%v: right entry %d: %v != %v", n, qs, i, specR.Data[i], genR.Data[i])
				}
			}

			if spec, gen := subspaceTraceWide(m, g, qs), SubspaceTraceTab(m, g.Data, tab); spec != gen {
				t.Fatalf("n=%d qubits=%v: trace %v != %v", n, qs, spec, gen)
			}

			state := make([]complex128, 1<<n)
			for i := range state {
				state[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			specV := append([]complex128(nil), state...)
			genV := append([]complex128(nil), state...)
			applyVecWide(specV, g, qs)
			ApplyVecTab(genV, g.Data, tab)
			for i := range specV {
				if specV[i] != genV[i] {
					t.Fatalf("n=%d qubits=%v: vec entry %d: %v != %v", n, qs, i, specV[i], genV[i])
				}
			}
		}
	}
}

func TestApplyLeftIntoMatchesInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(510))
	for n := 3; n <= 5; n++ {
		m := RandomUnitary(1<<n, rng)
		g1 := RandomUnitary(2, rng)
		g2 := RandomUnitary(4, rng)

		dst := New(1<<n, 1<<n)
		ApplyLeft1Into(dst, m, (*[4]complex128)(g1.Data), n-1)
		inplace := m.Copy()
		ApplyLeft1(inplace, (*[4]complex128)(g1.Data), n-1)
		for i := range dst.Data {
			if dst.Data[i] != inplace.Data[i] {
				t.Fatalf("n=%d: ApplyLeft1Into entry %d: %v != %v", n, i, dst.Data[i], inplace.Data[i])
			}
		}

		ApplyLeft2Into(dst, m, (*[16]complex128)(g2.Data), n-1, 0)
		inplace = m.Copy()
		ApplyLeft2(inplace, (*[16]complex128)(g2.Data), n-1, 0)
		for i := range dst.Data {
			if dst.Data[i] != inplace.Data[i] {
				t.Fatalf("n=%d: ApplyLeft2Into entry %d: %v != %v", n, i, dst.Data[i], inplace.Data[i])
			}
		}
	}
}

func TestGatherProdBlocks2MatchesFullProduct(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		rng := rand.New(rand.NewSource(int64(520 + n)))
		a := RandomUnitary(1<<n, rng)
		b := RandomUnitary(1<<n, rng)
		p := Mul(a, b)
		for trial := 0; trial < 3; trial++ {
			perm := rng.Perm(n)
			qHi, qLo := perm[0], perm[1]
			hi, lo := 1<<qHi, 1<<qLo
			dst := make([]complex128, 4*(1<<n))
			GatherProdBlocks2(dst, a, b, qHi, qLo)
			gi := 0
			for base := 0; base < 1<<n; base++ {
				if base&(hi|lo) != 0 {
					continue
				}
				idx := [4]int{base, base | lo, base | hi, base | hi | lo}
				for li := 0; li < 4; li++ {
					for lj := 0; lj < 4; lj++ {
						want := p.At(idx[li], idx[lj])
						got := dst[gi+li*4+lj]
						if d := got - want; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
							t.Fatalf("n=%d q=(%d,%d) block base %d (%d,%d): %v, want %v",
								n, qHi, qLo, base, li, lj, got, want)
						}
					}
				}
				gi += 16
			}

			// TraceBlocks2 over the gathered blocks = Tr(P*G_full).
			g := RandomUnitary(4, rng)
			full := expand(n, g, []int{qHi, qLo})
			got := TraceBlocks2(dst, (*[16]complex128)(g.Data))
			want := Mul(p, full).Trace()
			if d := got - want; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
				t.Fatalf("n=%d q=(%d,%d): TraceBlocks2 %v, want %v", n, qHi, qLo, got, want)
			}
		}
	}
}

func TestWideKernelAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := RandomUnitary(32, rng)
	dst := New(32, 32)
	g3 := RandomUnitary(8, rng)
	g4 := RandomUnitary(16, rng)
	g2 := RandomUnitary(4, rng)
	g1 := RandomUnitary(2, rng)
	state := make([]complex128, 32)
	state[0] = 1
	blocks := make([]complex128, 4*32)
	allocs := testing.AllocsPerRun(100, func() {
		ApplyLeft3(m, (*[64]complex128)(g3.Data), 4, 2, 0)
		ApplyRight3(m, (*[64]complex128)(g3.Data), 4, 2, 0)
		SubspaceTrace3(m, (*[64]complex128)(g3.Data), 4, 2, 0)
		ApplyVec3(state, (*[64]complex128)(g3.Data), 4, 2, 0)
		ApplyLeft4(m, (*[256]complex128)(g4.Data), 4, 3, 1, 0)
		ApplyRight4(m, (*[256]complex128)(g4.Data), 4, 3, 1, 0)
		SubspaceTrace4(m, (*[256]complex128)(g4.Data), 4, 3, 1, 0)
		ApplyVec4(state, (*[256]complex128)(g4.Data), 4, 3, 1, 0)
		ApplyLeft1Into(dst, m, (*[4]complex128)(g1.Data), 3)
		ApplyLeft2Into(dst, m, (*[16]complex128)(g2.Data), 3, 1)
		GatherProdBlocks2(blocks, m, dst, 3, 1)
		TraceBlocks2(blocks, (*[16]complex128)(g2.Data))
		var rc, rt, w, v [4]complex128
		LayerGradContract(m, dst, 3, 1, &rc, &rt, &w, &v)
		GatherIdentityBlocks1(blocks[:2*32], m, 3)
		EmbedGate1(dst, (*[4]complex128)(g1.Data), 3)
	})
	if allocs != 0 {
		t.Errorf("wide kernels allocate %v times per run, want 0", allocs)
	}
}

func TestScatterTabConcurrentUsePanics(t *testing.T) {
	// The ownership check turns a silent scratch-buffer race into a
	// deterministic panic.
	rng := rand.New(rand.NewSource(9))
	m := RandomUnitary(8, rng)
	g := RandomUnitary(2, rng)
	tab := NewScatterTab([]int{1})
	tab.acquire() // simulate another goroutine mid-kernel
	defer tab.release()
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyLeftTab on a busy tab did not panic")
		}
	}()
	ApplyLeftTab(m, g.Data, tab)
}

func TestScatterTabPerGoroutineTabsRaceFree(t *testing.T) {
	// The documented safe pattern: one tab per worker. Run under -race this
	// exercises concurrent kernel calls on disjoint tabs and shared
	// read-only inputs (the pattern internal/sim's UnitaryWorkers uses).
	rng := rand.New(rand.NewSource(10))
	g := RandomUnitary(8, rng)
	src := RandomUnitary(32, rng)
	const workers = 4
	var wg sync.WaitGroup
	out := make([]*Matrix, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tab := NewScatterTab([]int{3, 1, 0})
			m := src.Copy()
			for i := 0; i < 8; i++ {
				ApplyLeftTab(m, g.Data, tab)
			}
			out[w] = m
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if d := MaxAbsDiff(out[0], out[w]); d != 0 {
			t.Fatalf("worker %d diverged from worker 0 by %g", w, d)
		}
	}
}

func TestLayerGradContractMatchesFullTrace(t *testing.T) {
	// Contract semantics: with P = A·B, trace2(W, D) = Tr(P·(D⊗Rt)·CX_full)
	// and trace2(V, D) = Tr(P·(Rc⊗D)·CX_full), for any 2x2 factor D. Build
	// the reference from full-space products.
	kron2 := func(x, y *[4]complex128) *Matrix {
		m := New(4, 4)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				for k := 0; k < 2; k++ {
					for l := 0; l < 2; l++ {
						m.Data[(i*2+k)*4+j*2+l] = x[i*2+j] * y[k*2+l]
					}
				}
			}
		}
		return m
	}
	trace2 := func(w, x *[4]complex128) complex128 {
		return w[0]*x[0] + w[1]*x[2] + w[2]*x[1] + w[3]*x[3]
	}
	for _, n := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(530 + n)))
		a := RandomUnitary(1<<n, rng)
		c := RandomUnitary(1<<n, rng)
		p := Mul(a, c)
		rand4 := func() *[4]complex128 {
			var r [4]complex128
			for i := range r {
				r[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			return &r
		}
		for trial := 0; trial < 3; trial++ {
			perm := rng.Perm(n)
			qHi, qLo := perm[0], perm[1]
			rc, rt := rand4(), rand4()
			var w, v [4]complex128
			LayerGradContract(a, c, qHi, qLo, rc, rt, &w, &v)
			for d := 0; d < 2; d++ {
				dm := rand4()
				// dL = (D⊗Rt)·CX: CX on the right swaps columns 2 and 3.
				mkL := func(x, y *[4]complex128) *Matrix {
					l := kron2(x, y)
					for r := 0; r < 4; r++ {
						l.Data[r*4+2], l.Data[r*4+3] = l.Data[r*4+3], l.Data[r*4+2]
					}
					return expand(n, l, []int{qHi, qLo})
				}
				wantW := Mul(p, mkL(dm, rt)).Trace()
				if g := trace2(&w, dm); cabs2(g-wantW) > 1e-18*cabs2(wantW)+1e-18 {
					t.Fatalf("n=%d q=(%d,%d): control contract %v, want %v", n, qHi, qLo, g, wantW)
				}
				wantV := Mul(p, mkL(rc, dm)).Trace()
				if g := trace2(&v, dm); cabs2(g-wantV) > 1e-18*cabs2(wantV)+1e-18 {
					t.Fatalf("n=%d q=(%d,%d): target contract %v, want %v", n, qHi, qLo, g, wantV)
				}
			}
		}
	}
}

func cabs2(z complex128) float64 { return real(z)*real(z) + imag(z)*imag(z) }

func TestGatherIdentityBlocks1MatchesGatherProd(t *testing.T) {
	// GatherIdentityBlocks1 is GatherProdBlocks1 with a = I, entry for entry.
	for _, n := range []int{2, 3, 5} {
		rng := rand.New(rand.NewSource(int64(540 + n)))
		b := RandomUnitary(1<<n, rng)
		ident := Identity(1 << n)
		for q := 0; q < n; q++ {
			want := make([]complex128, 2*(1<<n))
			got := make([]complex128, 2*(1<<n))
			GatherProdBlocks1(want, ident, b, q)
			GatherIdentityBlocks1(got, b, q)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%d entry %d: %v != %v", n, q, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEmbedGate1MatchesApplyToIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(550))
	for n := 1; n <= 4; n++ {
		g := RandomUnitary(2, rng)
		for q := 0; q < n; q++ {
			want := New(1<<n, 1<<n)
			ApplyLeft1Into(want, Identity(1<<n), (*[4]complex128)(g.Data), q)
			got := New(1<<n, 1<<n)
			// Pre-dirty dst: EmbedGate1 must overwrite every entry.
			for i := range got.Data {
				got.Data[i] = complex(1, 1)
			}
			EmbedGate1(got, (*[4]complex128)(g.Data), q)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("n=%d q=%d entry %d: %v != %v", n, q, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}
