package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasisVector(t *testing.T) {
	v := BasisVector(4, 2)
	for i, x := range v {
		want := complex128(0)
		if i == 2 {
			want = 1
		}
		if x != want {
			t.Errorf("BasisVector(4,2)[%d] = %v", i, x)
		}
	}
}

func TestBasisVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range basis index")
		}
	}()
	BasisVector(4, 4)
}

func TestNormAndNormalize(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm(); math.Abs(got-5) > tol {
		t.Errorf("Norm = %g, want 5", got)
	}
	v.Normalize()
	if got := v.Norm(); math.Abs(got-1) > tol {
		t.Errorf("Norm after Normalize = %g, want 1", got)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	v := Vector{0, 0}
	v.Normalize() // must not NaN
	if v[0] != 0 || v[1] != 0 {
		t.Errorf("Normalize(0) changed vector: %v", v)
	}
}

func TestDot(t *testing.T) {
	i := complex(0, 1)
	a := Vector{1, i}
	b := Vector{1, 1}
	// <a|b> = conj(1)*1 + conj(i)*1 = 1 - i
	if got := Dot(a, b); cmplx.Abs(got-(1-i)) > tol {
		t.Errorf("Dot = %v, want 1-1i", got)
	}
}

func TestApplyMatrix(t *testing.T) {
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	v := Vector{1, 0}
	got := ApplyMatrix(x, v)
	if cmplx.Abs(got[0]) > tol || cmplx.Abs(got[1]-1) > tol {
		t.Errorf("X|0> = %v, want |1>", got)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	v := RandomState(8, rng)
	p := v.Probabilities()
	var s float64
	for _, x := range p {
		s += x
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", s)
	}
}

func TestPropUnitaryPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := RandomUnitary(8, r)
		v := RandomState(8, r)
		return math.Abs(ApplyMatrix(u, v).Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropDotConjSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := RandomState(4, r), RandomState(4, r)
		return cmplx.Abs(Dot(a, b)-cmplx.Conj(Dot(b, a))) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
