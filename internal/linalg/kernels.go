// Specialized gate-application kernels. These are the hot inner loops of
// synthesis (internal/synth) and simulation (internal/sim): applying a
// small k-qubit gate to a full matrix (from the left or the right), to a
// statevector, or tracing it against a matrix, all without expanding the
// gate to the full 2^n space and without allocating.
//
// The k=1 (2x2) and k=2 (4x4) cases are fully unrolled; the generic path
// uses a precomputed ScatterTab so the per-call index math from the naive
// implementation is hoisted to construction time. The generic path is the
// correctness oracle for the specialized kernels (see kernels_test.go).
//
// Gate-matrix convention (matches package gate): within a k-qubit gate the
// FIRST listed qubit is the most significant local bit.
package linalg

import "sync/atomic"

// ScatterTab precomputes the bit-scatter tables needed to apply a k-qubit
// gate on the listed qubits of an n-qubit object. Offs[l] is the global
// bit pattern of local basis index l, so the global index of local l
// within a group is base|Offs[l].
//
// A ScatterTab owns scratch buffers (idx, in) and is NOT safe for
// concurrent use: two goroutines sharing one tab silently corrupt each
// other's gather buffers. Parallel call sites (e.g. internal/sim's
// UnitaryWorkers over internal/par) must build one tab per worker. Every
// Tab kernel asserts single ownership with a cheap atomic check and panics
// on overlap — the race detector would also flag the data race, but the
// panic makes the misuse deterministic even in non-race builds.
type ScatterTab struct {
	K, Dim int
	Mask   int
	Offs   []int
	idx    []int
	in     []complex128
	busy   uint32
}

// acquire marks the tab in-use for the duration of one kernel call.
func (t *ScatterTab) acquire() {
	if !atomic.CompareAndSwapUint32(&t.busy, 0, 1) {
		panic("linalg: ScatterTab used concurrently; build one tab per goroutine")
	}
}

func (t *ScatterTab) release() {
	atomic.StoreUint32(&t.busy, 0)
}

// NewScatterTab builds the scatter table for a gate on the listed qubits
// (first listed = most significant local bit).
func NewScatterTab(qubits []int) *ScatterTab {
	k := len(qubits)
	dim := 1 << k
	t := &ScatterTab{
		K:    k,
		Dim:  dim,
		Offs: make([]int, dim),
		idx:  make([]int, dim),
		in:   make([]complex128, dim),
	}
	pos := make([]int, k)
	for i, q := range qubits {
		pos[k-1-i] = q
	}
	for _, p := range pos {
		t.Mask |= 1 << p
	}
	for l := 0; l < dim; l++ {
		off := 0
		for j := 0; j < k; j++ {
			if l&(1<<j) != 0 {
				off |= 1 << pos[j]
			}
		}
		t.Offs[l] = off
	}
	return t
}

// ApplyLeft1 computes m <- G_full*m in place for a 2x2 gate g on qubit q.
func ApplyLeft1(m *Matrix, g *[4]complex128, q int) {
	bit := 1 << q
	a, b, c, d := g[0], g[1], g[2], g[3]
	cols := m.Cols
	for base := 0; base < m.Rows; base++ {
		if base&bit != 0 {
			continue
		}
		r0 := m.Data[base*cols : base*cols+cols]
		r1 := m.Data[(base|bit)*cols : (base|bit)*cols+cols]
		for j, v0 := range r0 {
			v1 := r1[j]
			r0[j] = a*v0 + b*v1
			r1[j] = c*v0 + d*v1
		}
	}
}

// ApplyLeft2 computes m <- G_full*m in place for a 4x4 gate g on qubits
// (qHi, qLo), qHi being the most significant local bit.
func ApplyLeft2(m *Matrix, g *[16]complex128, qHi, qLo int) {
	hi, lo := 1<<qHi, 1<<qLo
	mask := hi | lo
	cols := m.Cols
	for base := 0; base < m.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		r0 := m.Data[base*cols : base*cols+cols]
		r1 := m.Data[(base|lo)*cols : (base|lo)*cols+cols]
		r2 := m.Data[(base|hi)*cols : (base|hi)*cols+cols]
		r3 := m.Data[(base|mask)*cols : (base|mask)*cols+cols]
		for j, v0 := range r0 {
			v1, v2, v3 := r1[j], r2[j], r3[j]
			r0[j] = g[0]*v0 + g[1]*v1 + g[2]*v2 + g[3]*v3
			r1[j] = g[4]*v0 + g[5]*v1 + g[6]*v2 + g[7]*v3
			r2[j] = g[8]*v0 + g[9]*v1 + g[10]*v2 + g[11]*v3
			r3[j] = g[12]*v0 + g[13]*v1 + g[14]*v2 + g[15]*v3
		}
	}
}

// ApplyLeftTab is the generic k-qubit form of ApplyLeft1/ApplyLeft2:
// m <- G_full*m for a Dim x Dim gate g (row-major, len Dim*Dim).
func ApplyLeftTab(m *Matrix, g []complex128, t *ScatterTab) {
	t.acquire()
	defer t.release()
	dim := t.Dim
	for base := 0; base < m.Rows; base++ {
		if base&t.Mask != 0 {
			continue
		}
		for l := 0; l < dim; l++ {
			t.idx[l] = base | t.Offs[l]
		}
		for col := 0; col < m.Cols; col++ {
			for l := 0; l < dim; l++ {
				t.in[l] = m.Data[t.idx[l]*m.Cols+col]
			}
			for r := 0; r < dim; r++ {
				grow := g[r*dim : (r+1)*dim]
				var s complex128
				for l, v := range t.in {
					if grow[l] != 0 {
						s += grow[l] * v
					}
				}
				m.Data[t.idx[r]*m.Cols+col] = s
			}
		}
	}
}

// ApplyRight1 computes m <- m*G_full in place for a 2x2 gate g on qubit q.
func ApplyRight1(m *Matrix, g *[4]complex128, q int) {
	bit := 1 << q
	a, b, c, d := g[0], g[1], g[2], g[3]
	cols := m.Cols
	for base := 0; base < cols; base++ {
		if base&bit != 0 {
			continue
		}
		c0, c1 := base, base|bit
		for off := 0; off < len(m.Data); off += cols {
			v0, v1 := m.Data[off+c0], m.Data[off+c1]
			m.Data[off+c0] = v0*a + v1*c
			m.Data[off+c1] = v0*b + v1*d
		}
	}
}

// ApplyRight2 computes m <- m*G_full in place for a 4x4 gate g on qubits
// (qHi, qLo).
func ApplyRight2(m *Matrix, g *[16]complex128, qHi, qLo int) {
	hi, lo := 1<<qHi, 1<<qLo
	mask := hi | lo
	cols := m.Cols
	for base := 0; base < cols; base++ {
		if base&mask != 0 {
			continue
		}
		c0, c1, c2, c3 := base, base|lo, base|hi, base|mask
		for off := 0; off < len(m.Data); off += cols {
			v0, v1 := m.Data[off+c0], m.Data[off+c1]
			v2, v3 := m.Data[off+c2], m.Data[off+c3]
			m.Data[off+c0] = v0*g[0] + v1*g[4] + v2*g[8] + v3*g[12]
			m.Data[off+c1] = v0*g[1] + v1*g[5] + v2*g[9] + v3*g[13]
			m.Data[off+c2] = v0*g[2] + v1*g[6] + v2*g[10] + v3*g[14]
			m.Data[off+c3] = v0*g[3] + v1*g[7] + v2*g[11] + v3*g[15]
		}
	}
}

// ApplyRightTab is the generic k-qubit form of ApplyRight1/ApplyRight2.
func ApplyRightTab(m *Matrix, g []complex128, t *ScatterTab) {
	t.acquire()
	defer t.release()
	dim := t.Dim
	for base := 0; base < m.Cols; base++ {
		if base&t.Mask != 0 {
			continue
		}
		for l := 0; l < dim; l++ {
			t.idx[l] = base | t.Offs[l]
		}
		for row := 0; row < m.Rows; row++ {
			off := row * m.Cols
			for l := 0; l < dim; l++ {
				t.in[l] = m.Data[off+t.idx[l]]
			}
			// (m*G)[row][idx[lj]] = sum_lm in[lm]*g[lm][lj].
			for lj := 0; lj < dim; lj++ {
				var s complex128
				for lm := 0; lm < dim; lm++ {
					gv := g[lm*dim+lj]
					if gv != 0 {
						s += t.in[lm] * gv
					}
				}
				m.Data[off+t.idx[lj]] = s
			}
		}
	}
}

// SubspaceTrace1 returns Tr(A*G_full) for a 2x2 gate g on qubit q without
// expanding G to the full space.
func SubspaceTrace1(a *Matrix, g *[4]complex128, q int) complex128 {
	bit := 1 << q
	cols := a.Cols
	var t complex128
	for base := 0; base < a.Rows; base++ {
		if base&bit != 0 {
			continue
		}
		r0, r1 := base, base|bit
		// Tr(A*G) = sum_{i,j} A[i][j]*G[j][i].
		t += a.Data[r0*cols+r0]*g[0] + a.Data[r0*cols+r1]*g[2] +
			a.Data[r1*cols+r0]*g[1] + a.Data[r1*cols+r1]*g[3]
	}
	return t
}

// SubspaceTrace2 returns Tr(A*G_full) for a 4x4 gate g on qubits (qHi, qLo).
func SubspaceTrace2(a *Matrix, g *[16]complex128, qHi, qLo int) complex128 {
	hi, lo := 1<<qHi, 1<<qLo
	mask := hi | lo
	cols := a.Cols
	var t complex128
	for base := 0; base < a.Rows; base++ {
		if base&mask != 0 {
			continue
		}
		i0, i1, i2, i3 := base, base|lo, base|hi, base|mask
		for li, ri := range [4]int{i0, i1, i2, i3} {
			arow := a.Data[ri*cols:]
			t += arow[i0]*g[li] + arow[i1]*g[4+li] + arow[i2]*g[8+li] + arow[i3]*g[12+li]
		}
	}
	return t
}

// SubspaceTraceTab is the generic k-qubit form of SubspaceTrace1/2.
func SubspaceTraceTab(a *Matrix, g []complex128, t *ScatterTab) complex128 {
	t.acquire()
	defer t.release()
	dim := t.Dim
	var tr complex128
	for base := 0; base < a.Rows; base++ {
		if base&t.Mask != 0 {
			continue
		}
		for l := 0; l < dim; l++ {
			t.idx[l] = base | t.Offs[l]
		}
		for li := 0; li < dim; li++ {
			arow := a.Data[t.idx[li]*a.Cols:]
			for lj := 0; lj < dim; lj++ {
				gv := g[lj*dim+li]
				if gv != 0 {
					tr += arow[t.idx[lj]] * gv
				}
			}
		}
	}
	return tr
}

// GatherProdBlocks1 computes, for each index group {r0, r0|1<<q} of the
// product P = a*b, the 2x2 block [P[r0][r0], P[r0][r1], P[r1][r0],
// P[r1][r1]] and appends the blocks to dst in base order. dst must have
// length 2*Rows (Rows/2 groups x 4 entries). This is the gradient
// bottleneck of synthesis: Tr(P*dG_full) for a 1-qubit dG reads only
// these entries of P, so gathering them costs O(dim^2) instead of the
// O(dim^3) full product, and one gather serves every parameter of the
// same gate (see TraceBlocks1).
func GatherProdBlocks1(dst []complex128, a, b *Matrix, q int) {
	bit := 1 << q
	cols := a.Cols
	gi := 0
	for base := 0; base < a.Rows; base++ {
		if base&bit != 0 {
			continue
		}
		r0, r1 := base, base|bit
		a0 := a.Data[r0*cols : r0*cols+cols]
		a1 := a.Data[r1*cols : r1*cols+cols]
		var p00, p01, p10, p11 complex128
		for m, av0 := range a0 {
			b0, b1 := b.Data[m*cols+r0], b.Data[m*cols+r1]
			av1 := a1[m]
			p00 += av0 * b0
			p01 += av0 * b1
			p10 += av1 * b0
			p11 += av1 * b1
		}
		dst[gi] = p00
		dst[gi+1] = p01
		dst[gi+2] = p10
		dst[gi+3] = p11
		gi += 4
	}
}

// TraceBlocks1 returns Tr(P*G_full) from blocks gathered by
// GatherProdBlocks1: Tr(P*G) = sum over groups of P[i][j]*G[j][i].
func TraceBlocks1(blocks []complex128, g *[4]complex128) complex128 {
	var t complex128
	for i := 0; i < len(blocks); i += 4 {
		t += blocks[i]*g[0] + blocks[i+1]*g[2] + blocks[i+2]*g[1] + blocks[i+3]*g[3]
	}
	return t
}

// ApplyVec1 applies a 2x2 gate g to qubit q of a statevector in place.
func ApplyVec1(state []complex128, g *[4]complex128, q int) {
	bit := 1 << q
	a, b, c, d := g[0], g[1], g[2], g[3]
	for i := 0; i < len(state); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		v0, v1 := state[i], state[j]
		state[i] = a*v0 + b*v1
		state[j] = c*v0 + d*v1
	}
}

// ApplyVec2 applies a 4x4 gate g to qubits (qHi, qLo) of a statevector in
// place.
func ApplyVec2(state []complex128, g *[16]complex128, qHi, qLo int) {
	hi, lo := 1<<qHi, 1<<qLo
	mask := hi | lo
	for i := 0; i < len(state); i++ {
		if i&mask != 0 {
			continue
		}
		i1, i2, i3 := i|lo, i|hi, i|mask
		v0, v1, v2, v3 := state[i], state[i1], state[i2], state[i3]
		state[i] = g[0]*v0 + g[1]*v1 + g[2]*v2 + g[3]*v3
		state[i1] = g[4]*v0 + g[5]*v1 + g[6]*v2 + g[7]*v3
		state[i2] = g[8]*v0 + g[9]*v1 + g[10]*v2 + g[11]*v3
		state[i3] = g[12]*v0 + g[13]*v1 + g[14]*v2 + g[15]*v3
	}
}

// ApplyVecTab is the generic k-qubit form of ApplyVec1/ApplyVec2.
func ApplyVecTab(state []complex128, g []complex128, t *ScatterTab) {
	t.acquire()
	defer t.release()
	dim := t.Dim
	for base := 0; base < len(state); base++ {
		if base&t.Mask != 0 {
			continue
		}
		for l := 0; l < dim; l++ {
			gi := base | t.Offs[l]
			t.idx[l] = gi
			t.in[l] = state[gi]
		}
		for r := 0; r < dim; r++ {
			grow := g[r*dim : (r+1)*dim]
			var s complex128
			for l, v := range t.in {
				if grow[l] != 0 {
					s += grow[l] * v
				}
			}
			state[t.idx[r]] = s
		}
	}
}
