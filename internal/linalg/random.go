package linalg

import (
	"math"
	"math/rand"
)

// RandomUnitary returns a Haar-ish random n x n unitary built by applying
// Gram-Schmidt orthonormalization (QR) to a complex Ginibre matrix.
func RandomUnitary(n int, rng *rand.Rand) *Matrix {
	m := New(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// Modified Gram-Schmidt on columns.
	cols := make([]Vector, n)
	for j := 0; j < n; j++ {
		c := NewVector(n)
		for i := 0; i < n; i++ {
			c[i] = m.At(i, j)
		}
		cols[j] = c
	}
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			proj := Dot(cols[k], cols[j])
			for i := 0; i < n; i++ {
				cols[j][i] -= proj * cols[k][i]
			}
		}
		cols[j].Normalize()
	}
	out := New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			out.Set(i, j, cols[j][i])
		}
	}
	return out
}

// RandomState returns a Haar-random normalized statevector of length n.
func RandomState(n int, rng *rand.Rand) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	v.Normalize()
	return v
}

// RandomPhase returns e^{i t} for a uniform t in [0, 2π).
func RandomPhase(rng *rand.Rand) complex128 {
	t := rng.Float64() * 2 * math.Pi
	return complex(math.Cos(t), math.Sin(t))
}
