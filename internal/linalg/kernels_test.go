package linalg

import (
	"math/rand"
	"testing"
)

// expand builds the full 2^n x 2^n matrix of a small gate on the listed
// qubits by scattering the gate entries, independently of the kernels
// under test.
func expand(n int, g *Matrix, qubits []int) *Matrix {
	k := len(qubits)
	dim := 1 << k
	pos := make([]int, k)
	for i, q := range qubits {
		pos[k-1-i] = q
	}
	var mask int
	for _, p := range pos {
		mask |= 1 << p
	}
	scatter := func(l int) int {
		o := 0
		for j := 0; j < k; j++ {
			if l&(1<<j) != 0 {
				o |= 1 << pos[j]
			}
		}
		return o
	}
	out := New(1<<n, 1<<n)
	for base := 0; base < 1<<n; base++ {
		if base&mask != 0 {
			continue
		}
		for r := 0; r < dim; r++ {
			for c := 0; c < dim; c++ {
				out.Set(base|scatter(r), base|scatter(c), g.At(r, c))
			}
		}
	}
	return out
}

func randomQubitSets(n int, rng *rand.Rand) [][]int {
	var sets [][]int
	for q := 0; q < n; q++ {
		sets = append(sets, []int{q})
	}
	for i := 0; i < 4; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		for b == a {
			b = rng.Intn(n)
		}
		sets = append(sets, []int{a, b})
	}
	return sets
}

func TestScatterTabOffsets(t *testing.T) {
	tab := NewScatterTab([]int{2, 0})
	// First listed qubit (2) is the MSB: local l = hi*2+lo maps hi->bit 2,
	// lo->bit 0.
	want := []int{0, 1, 4, 5}
	for l, w := range want {
		if tab.Offs[l] != w {
			t.Errorf("Offs[%d] = %d, want %d", l, tab.Offs[l], w)
		}
	}
	if tab.Mask != 5 {
		t.Errorf("Mask = %d, want 5", tab.Mask)
	}
}

func TestSpecializedKernelsMatchExpandedProduct(t *testing.T) {
	// k=1 and k=2 kernels vs the ground-truth full-matrix product, on
	// random unitaries across 3-5 qubits and random qubit placements.
	for _, n := range []int{3, 4, 5} {
		rng := rand.New(rand.NewSource(int64(100 + n)))
		m := RandomUnitary(1<<n, rng)
		for _, qs := range randomQubitSets(n, rng) {
			g := RandomUnitary(1<<len(qs), rng)
			full := expand(n, g, qs)

			left := m.Copy()
			if len(qs) == 1 {
				ApplyLeft1(left, (*[4]complex128)(g.Data), qs[0])
			} else {
				ApplyLeft2(left, (*[16]complex128)(g.Data), qs[0], qs[1])
			}
			if d := MaxAbsDiff(left, Mul(full, m)); d > 1e-9 {
				t.Errorf("n=%d qubits=%v: ApplyLeft diff %g", n, qs, d)
			}

			right := m.Copy()
			if len(qs) == 1 {
				ApplyRight1(right, (*[4]complex128)(g.Data), qs[0])
			} else {
				ApplyRight2(right, (*[16]complex128)(g.Data), qs[0], qs[1])
			}
			if d := MaxAbsDiff(right, Mul(m, full)); d > 1e-9 {
				t.Errorf("n=%d qubits=%v: ApplyRight diff %g", n, qs, d)
			}

			var tr complex128
			if len(qs) == 1 {
				tr = SubspaceTrace1(m, (*[4]complex128)(g.Data), qs[0])
			} else {
				tr = SubspaceTrace2(m, (*[16]complex128)(g.Data), qs[0], qs[1])
			}
			want := Mul(m, full).Trace()
			if d := tr - want; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
				t.Errorf("n=%d qubits=%v: SubspaceTrace = %v, want %v", n, qs, tr, want)
			}
		}
	}
}

func TestSpecializedKernelsMatchGenericTab(t *testing.T) {
	// The generic ScatterTab path is the oracle: specialized kernels must
	// agree with it to near machine precision.
	for _, n := range []int{3, 4, 5} {
		rng := rand.New(rand.NewSource(int64(200 + n)))
		m := RandomUnitary(1<<n, rng)
		for _, qs := range randomQubitSets(n, rng) {
			g := RandomUnitary(1<<len(qs), rng)
			tab := NewScatterTab(qs)

			specL, genL := m.Copy(), m.Copy()
			specR, genR := m.Copy(), m.Copy()
			var specT, genT complex128
			if len(qs) == 1 {
				ApplyLeft1(specL, (*[4]complex128)(g.Data), qs[0])
				ApplyRight1(specR, (*[4]complex128)(g.Data), qs[0])
				specT = SubspaceTrace1(m, (*[4]complex128)(g.Data), qs[0])
			} else {
				ApplyLeft2(specL, (*[16]complex128)(g.Data), qs[0], qs[1])
				ApplyRight2(specR, (*[16]complex128)(g.Data), qs[0], qs[1])
				specT = SubspaceTrace2(m, (*[16]complex128)(g.Data), qs[0], qs[1])
			}
			ApplyLeftTab(genL, g.Data, tab)
			ApplyRightTab(genR, g.Data, tab)
			genT = SubspaceTraceTab(m, g.Data, tab)

			if d := MaxAbsDiff(specL, genL); d > 1e-12 {
				t.Errorf("n=%d qubits=%v: left spec vs generic diff %g", n, qs, d)
			}
			if d := MaxAbsDiff(specR, genR); d > 1e-12 {
				t.Errorf("n=%d qubits=%v: right spec vs generic diff %g", n, qs, d)
			}
			if d := specT - genT; real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
				t.Errorf("n=%d qubits=%v: trace spec %v vs generic %v", n, qs, specT, genT)
			}
		}
	}
}

func TestVectorKernelsMatchMatrixApply(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		rng := rand.New(rand.NewSource(int64(300 + n)))
		state := make([]complex128, 1<<n)
		for i := range state {
			state[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for _, qs := range randomQubitSets(n, rng) {
			g := RandomUnitary(1<<len(qs), rng)
			full := expand(n, g, qs)

			want := ApplyMatrix(full, Vector(append([]complex128(nil), state...)))

			spec := append([]complex128(nil), state...)
			if len(qs) == 1 {
				ApplyVec1(spec, (*[4]complex128)(g.Data), qs[0])
			} else {
				ApplyVec2(spec, (*[16]complex128)(g.Data), qs[0], qs[1])
			}
			gen := append([]complex128(nil), state...)
			ApplyVecTab(gen, g.Data, NewScatterTab(qs))

			for i := range want {
				if d := spec[i] - want[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
					t.Fatalf("n=%d qubits=%v: ApplyVec[%d] = %v, want %v", n, qs, i, spec[i], want[i])
				}
				if d := gen[i] - spec[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
					t.Fatalf("n=%d qubits=%v: generic vs specialized differ at %d", n, qs, i)
				}
			}
		}
	}
}

func TestKernelAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := RandomUnitary(8, rng)
	g1 := RandomUnitary(2, rng)
	g2 := RandomUnitary(4, rng)
	tab := NewScatterTab([]int{2, 0})
	allocs := testing.AllocsPerRun(100, func() {
		ApplyLeft1(m, (*[4]complex128)(g1.Data), 1)
		ApplyRight1(m, (*[4]complex128)(g1.Data), 1)
		ApplyLeft2(m, (*[16]complex128)(g2.Data), 2, 0)
		ApplyRight2(m, (*[16]complex128)(g2.Data), 2, 0)
		SubspaceTrace1(m, (*[4]complex128)(g1.Data), 0)
		SubspaceTrace2(m, (*[16]complex128)(g2.Data), 2, 1)
		ApplyLeftTab(m, g2.Data, tab)
		ApplyRightTab(m, g2.Data, tab)
		SubspaceTraceTab(m, g2.Data, tab)
	})
	if allocs != 0 {
		t.Errorf("kernels allocate %v times per run, want 0", allocs)
	}
}
