// Package linalg provides dense complex linear algebra for quantum
// unitaries: matrix products, Kronecker products, conjugate transposes,
// traces, and the Hilbert-Schmidt process distance used throughout QUEST.
//
// Matrices are stored row-major in a flat []complex128. All operations
// allocate their result unless an explicit *Into variant is used; the
// *Into variants exist for the hot paths in synthesis and simulation.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense complex matrix stored in row-major order.
// The zero value is an empty (0x0) matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// New returns a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Copy returns a deep copy of m.
func (m *Matrix) Copy() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyInto copies m's contents into dst, which must share m's shape.
func (m *Matrix) CopyInto(dst *Matrix) {
	if dst.Rows != m.Rows || dst.Cols != m.Cols {
		panic("linalg: CopyInto shape mismatch")
	}
	copy(dst.Data, m.Data)
}

// IsSquare reports whether m has equal row and column counts.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a*b. dst must not alias a or b.
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("linalg: MulInto dst shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	// ikj loop order: stream through b's rows for cache friendliness.
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulChain multiplies matrices left to right: MulChain(a,b,c) = a*b*c.
func MulChain(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("linalg: MulChain of nothing")
	}
	out := ms[0].Copy()
	for _, m := range ms[1:] {
		out = Mul(out, m)
	}
	return out
}

// Kron returns the Kronecker product a ⊗ b.
func Kron(a, b *Matrix) *Matrix {
	out := New(a.Rows*b.Rows, a.Cols*b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			av := a.At(i, j)
			if av == 0 {
				continue
			}
			for k := 0; k < b.Rows; k++ {
				row := (i*b.Rows + k) * out.Cols
				boff := k * b.Cols
				coff := j * b.Cols
				for l := 0; l < b.Cols; l++ {
					out.Data[row+coff+l] = av * b.Data[boff+l]
				}
			}
		}
	}
	return out
}

// Dagger returns the conjugate transpose of m.
func (m *Matrix) Dagger() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return out
}

// Transpose returns the (unconjugated) transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() complex128 {
	if !m.IsSquare() {
		panic("linalg: Trace of non-square matrix")
	}
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	checkSameShape(a, b, "Add")
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a-b.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape(a, b, "Sub")
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s*m.
func Scale(s complex128, m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = s * v
	}
	return out
}

func checkSameShape(a, b *Matrix, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// FrobeniusNorm returns sqrt(sum |m_ij|^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|.
func MaxAbsDiff(a, b *Matrix) float64 {
	checkSameShape(a, b, "MaxAbsDiff")
	var mx float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// EqualApprox reports whether a and b agree elementwise within tol.
func EqualApprox(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

// IsUnitary reports whether m†m is the identity within tol.
func (m *Matrix) IsUnitary(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	prod := Mul(m.Dagger(), m)
	return EqualApprox(prod, Identity(m.Rows), tol)
}

// HSInner returns the Hilbert-Schmidt inner product Tr(a† b).
func HSInner(a, b *Matrix) complex128 {
	checkSameShape(a, b, "HSInner")
	var t complex128
	for i := range a.Data {
		t += cmplx.Conj(a.Data[i]) * b.Data[i]
	}
	return t
}

// HSDistance returns the QUEST process distance
//
//	sqrt(1 - |Tr(a† b)|² / N²)
//
// between two N x N unitaries. The value is clamped to [0, 1] to absorb
// floating-point round-off for near-identical matrices.
func HSDistance(a, b *Matrix) float64 {
	if !a.IsSquare() {
		panic("linalg: HSDistance of non-square matrix")
	}
	n := float64(a.Rows)
	t := cmplx.Abs(HSInner(a, b))
	v := 1 - (t*t)/(n*n)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return math.Sqrt(v)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(", ")
			}
			v := m.At(i, j)
			fmt.Fprintf(&b, "%.4f%+.4fi", real(v), imag(v))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
