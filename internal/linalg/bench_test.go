package linalg

import (
	"math/rand"
	"testing"
)

func BenchmarkMul16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandomUnitary(16, rng)
	y := RandomUnitary(16, rng)
	dst := New(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkKron4x4(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := RandomUnitary(4, rng)
	y := RandomUnitary(4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kron(x, y)
	}
}

func BenchmarkHSDistance16(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := RandomUnitary(16, rng)
	y := RandomUnitary(16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HSDistance(x, y)
	}
}

func BenchmarkRandomUnitary8(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < b.N; i++ {
		RandomUnitary(8, rng)
	}
}

// Specialized vs generic gate-apply kernels on a 16x16 (4-qubit) matrix:
// the pairs below share workloads, so their ns/op ratio is the dispatch
// win of the unrolled k=1/k=2 paths over the ScatterTab fallback.

func benchKernelMatrices(b *testing.B, k int) (*Matrix, []complex128) {
	rng := rand.New(rand.NewSource(5))
	m := RandomUnitary(16, rng)
	g := RandomUnitary(1<<k, rng)
	b.ReportAllocs()
	b.ResetTimer()
	return m, g.Data
}

func BenchmarkApplyLeft1Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 1)
	for i := 0; i < b.N; i++ {
		ApplyLeft1(m, (*[4]complex128)(g), 2)
	}
}

func BenchmarkApplyLeft1Generic(b *testing.B) {
	m, g := benchKernelMatrices(b, 1)
	tab := NewScatterTab([]int{2})
	for i := 0; i < b.N; i++ {
		ApplyLeftTab(m, g, tab)
	}
}

func BenchmarkApplyLeft2Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	for i := 0; i < b.N; i++ {
		ApplyLeft2(m, (*[16]complex128)(g), 3, 1)
	}
}

func BenchmarkApplyLeft2Generic(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	tab := NewScatterTab([]int{3, 1})
	for i := 0; i < b.N; i++ {
		ApplyLeftTab(m, g, tab)
	}
}

func BenchmarkApplyRight2Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	for i := 0; i < b.N; i++ {
		ApplyRight2(m, (*[16]complex128)(g), 3, 1)
	}
}

func BenchmarkApplyRight2Generic(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	tab := NewScatterTab([]int{3, 1})
	for i := 0; i < b.N; i++ {
		ApplyRightTab(m, g, tab)
	}
}

func BenchmarkSubspaceTrace2Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	for i := 0; i < b.N; i++ {
		SubspaceTrace2(m, (*[16]complex128)(g), 3, 1)
	}
}

func BenchmarkSubspaceTrace2Generic(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	tab := NewScatterTab([]int{3, 1})
	for i := 0; i < b.N; i++ {
		SubspaceTraceTab(m, g, tab)
	}
}

func BenchmarkApplyVec2Unrolled(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	state := make([]complex128, 1<<10)
	state[0] = 1
	g := RandomUnitary(4, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyVec2(state, (*[16]complex128)(g.Data), 7, 3)
	}
}

func BenchmarkApplyVec2Generic(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	state := make([]complex128, 1<<10)
	state[0] = 1
	g := RandomUnitary(4, rng)
	tab := NewScatterTab([]int{7, 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyVecTab(state, g.Data, tab)
	}
}
