package linalg

import (
	"math/rand"
	"testing"
)

func BenchmarkMul16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandomUnitary(16, rng)
	y := RandomUnitary(16, rng)
	dst := New(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkKron4x4(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := RandomUnitary(4, rng)
	y := RandomUnitary(4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kron(x, y)
	}
}

func BenchmarkHSDistance16(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := RandomUnitary(16, rng)
	y := RandomUnitary(16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HSDistance(x, y)
	}
}

func BenchmarkRandomUnitary8(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < b.N; i++ {
		RandomUnitary(8, rng)
	}
}
