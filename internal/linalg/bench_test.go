package linalg

import (
	"math/rand"
	"testing"
)

func BenchmarkMul16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandomUnitary(16, rng)
	y := RandomUnitary(16, rng)
	dst := New(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkKron4x4(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := RandomUnitary(4, rng)
	y := RandomUnitary(4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kron(x, y)
	}
}

func BenchmarkHSDistance16(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := RandomUnitary(16, rng)
	y := RandomUnitary(16, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HSDistance(x, y)
	}
}

func BenchmarkRandomUnitary8(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < b.N; i++ {
		RandomUnitary(8, rng)
	}
}

// Specialized vs generic gate-apply kernels on a 16x16 (4-qubit) matrix:
// the pairs below share workloads, so their ns/op ratio is the dispatch
// win of the unrolled k=1/k=2 paths over the ScatterTab fallback.

func benchKernelMatrices(b *testing.B, k int) (*Matrix, []complex128) {
	rng := rand.New(rand.NewSource(5))
	m := RandomUnitary(16, rng)
	g := RandomUnitary(1<<k, rng)
	b.ReportAllocs()
	b.ResetTimer()
	return m, g.Data
}

func BenchmarkApplyLeft1Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 1)
	for i := 0; i < b.N; i++ {
		ApplyLeft1(m, (*[4]complex128)(g), 2)
	}
}

func BenchmarkApplyLeft1Generic(b *testing.B) {
	m, g := benchKernelMatrices(b, 1)
	tab := NewScatterTab([]int{2})
	for i := 0; i < b.N; i++ {
		ApplyLeftTab(m, g, tab)
	}
}

func BenchmarkApplyLeft2Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	for i := 0; i < b.N; i++ {
		ApplyLeft2(m, (*[16]complex128)(g), 3, 1)
	}
}

func BenchmarkApplyLeft2Generic(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	tab := NewScatterTab([]int{3, 1})
	for i := 0; i < b.N; i++ {
		ApplyLeftTab(m, g, tab)
	}
}

func BenchmarkApplyRight2Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	for i := 0; i < b.N; i++ {
		ApplyRight2(m, (*[16]complex128)(g), 3, 1)
	}
}

func BenchmarkApplyRight2Generic(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	tab := NewScatterTab([]int{3, 1})
	for i := 0; i < b.N; i++ {
		ApplyRightTab(m, g, tab)
	}
}

func BenchmarkSubspaceTrace2Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	for i := 0; i < b.N; i++ {
		SubspaceTrace2(m, (*[16]complex128)(g), 3, 1)
	}
}

func BenchmarkSubspaceTrace2Generic(b *testing.B) {
	m, g := benchKernelMatrices(b, 2)
	tab := NewScatterTab([]int{3, 1})
	for i := 0; i < b.N; i++ {
		SubspaceTraceTab(m, g, tab)
	}
}

func BenchmarkApplyVec2Unrolled(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	state := make([]complex128, 1<<10)
	state[0] = 1
	g := RandomUnitary(4, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyVec2(state, (*[16]complex128)(g.Data), 7, 3)
	}
}

func BenchmarkApplyVec2Generic(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	state := make([]complex128, 1<<10)
	state[0] = 1
	g := RandomUnitary(4, rng)
	tab := NewScatterTab([]int{7, 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyVecTab(state, g.Data, tab)
	}
}

// Wide-block kernels (k=3/k=4) vs the ScatterTab fallback they replace.
// The acceptance bar for this layer is 0 allocs/op on the unrolled paths;
// the Generic pairs still allocate nothing per call but pay the tab's
// pointer-chasing (and, at the sim call sites they replace, a
// NewScatterTab allocation per gate application).

func BenchmarkApplyLeft3Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 3)
	for i := 0; i < b.N; i++ {
		ApplyLeft3(m, (*[64]complex128)(g), 3, 1, 0)
	}
}

func BenchmarkApplyLeft3Generic(b *testing.B) {
	m, g := benchKernelMatrices(b, 3)
	tab := NewScatterTab([]int{3, 1, 0})
	for i := 0; i < b.N; i++ {
		ApplyLeftTab(m, g, tab)
	}
}

func BenchmarkApplyLeft4Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 4)
	for i := 0; i < b.N; i++ {
		ApplyLeft4(m, (*[256]complex128)(g), 3, 2, 1, 0)
	}
}

func BenchmarkApplyLeft4Generic(b *testing.B) {
	m, g := benchKernelMatrices(b, 4)
	tab := NewScatterTab([]int{3, 2, 1, 0})
	for i := 0; i < b.N; i++ {
		ApplyLeftTab(m, g, tab)
	}
}

func BenchmarkApplyRight3Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 3)
	for i := 0; i < b.N; i++ {
		ApplyRight3(m, (*[64]complex128)(g), 3, 1, 0)
	}
}

func BenchmarkSubspaceTrace3Unrolled(b *testing.B) {
	m, g := benchKernelMatrices(b, 3)
	for i := 0; i < b.N; i++ {
		SubspaceTrace3(m, (*[64]complex128)(g), 3, 1, 0)
	}
}

func BenchmarkApplyVec3Unrolled(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	state := make([]complex128, 1<<10)
	state[0] = 1
	g := RandomUnitary(8, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyVec3(state, (*[64]complex128)(g.Data), 7, 3, 1)
	}
}

func BenchmarkApplyVec3Generic(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	state := make([]complex128, 1<<10)
	state[0] = 1
	g := RandomUnitary(8, rng)
	tab := NewScatterTab([]int{7, 3, 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyVecTab(state, g.Data, tab)
	}
}

func BenchmarkApplyVec4Unrolled(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	state := make([]complex128, 1<<10)
	state[0] = 1
	g := RandomUnitary(16, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyVec4(state, (*[256]complex128)(g.Data), 7, 5, 3, 1)
	}
}

func BenchmarkGatherProdBlocks2(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := RandomUnitary(16, rng)
	c := RandomUnitary(16, rng)
	dst := make([]complex128, 4*16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherProdBlocks2(dst, a, c, 3, 1)
	}
}

func BenchmarkLayerGradContract(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := RandomUnitary(8, rng)
	c := RandomUnitary(8, rng)
	var rc, rt, w, v [4]complex128
	for i := range rc {
		rc[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		rt[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LayerGradContract(a, c, 2, 0, &rc, &rt, &w, &v)
	}
}
