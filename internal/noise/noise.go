// Package noise implements the noisy execution substrate that stands in
// for the paper's IBMQ QASM simulator and IBMQ Manila hardware runs: a
// Monte-Carlo Pauli-trajectory statevector simulator with configurable
// per-gate error rates, analytic readout bit-flip errors, finite-shot
// sampling, and a synthetic Manila-class 5-qubit linear device.
//
// Substitution note (documented in DESIGN.md): real-hardware runs are
// replaced by this model. It preserves what matters for QUEST's claims —
// two-qubit errors dominate one-qubit errors by roughly an order of
// magnitude, and error compounds with gate count — so the comparative
// shapes of the paper's fidelity results are exercised end to end.
package noise

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/budget"
	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/transpile"
)

// Model is a stochastic Pauli error model with optional amplitude
// damping.
type Model struct {
	// OneQubitError is the probability that each qubit touched by a
	// one-qubit gate suffers a random Pauli afterwards.
	OneQubitError float64
	// TwoQubitError is the same probability for two-qubit gates (applied
	// independently to each involved qubit).
	TwoQubitError float64
	// ReadoutError is the per-qubit measurement bit-flip probability.
	ReadoutError float64
	// DampingError is the per-qubit amplitude-damping (T1 relaxation)
	// probability applied after every gate to each involved qubit,
	// simulated with the quantum-jump method.
	DampingError float64
}

// Uniform returns the paper's p_gate Pauli model at level p: two-qubit
// error p, one-qubit error p/10 (the paper notes CNOT error is an order
// of magnitude above one-qubit error), readout error p.
func Uniform(p float64) Model {
	return Model{OneQubitError: p / 10, TwoQubitError: p, ReadoutError: p}
}

// IsZero reports whether the model introduces no errors.
func (m Model) IsZero() bool {
	return m.OneQubitError == 0 && m.TwoQubitError == 0 && m.ReadoutError == 0 &&
		m.DampingError == 0
}

var paulis = [3]*linalg.Matrix{gate.PauliX, gate.PauliY, gate.PauliZ}

// Trajectory runs one Monte-Carlo noise trajectory of the circuit from
// |0...0> and returns the final statevector.
func (m Model) Trajectory(c *circuit.Circuit, rng *rand.Rand) linalg.Vector {
	state := sim.ZeroState(c.NumQubits)
	for _, op := range c.Ops {
		sim.ApplyOp(state, c.NumQubits, op)
		p := m.OneQubitError
		if len(op.Qubits) >= 2 {
			p = m.TwoQubitError
		}
		for _, q := range op.Qubits {
			if p > 0 && rng.Float64() < p {
				sim.ApplyMatrixOp(state, c.NumQubits, paulis[rng.Intn(3)], []int{q})
			}
			if m.DampingError > 0 {
				amplitudeDampingJump(state, c.NumQubits, q, m.DampingError, rng)
			}
		}
	}
	return state
}

// amplitudeDampingJump applies one quantum-jump step of the amplitude
// damping channel with decay probability gamma to qubit q: with
// probability gamma·P(q=1) the qubit decays to |0> (jump), otherwise the
// no-jump Kraus operator diag(1, sqrt(1-gamma)) is applied; both branches
// are renormalized. Averaged over trajectories this reproduces the exact
// channel (validated against package density in the tests).
func amplitudeDampingJump(state linalg.Vector, n, q int, gamma float64, rng *rand.Rand) {
	bit := 1 << q
	var p1 float64
	for i, amp := range state {
		if i&bit != 0 {
			p1 += real(amp)*real(amp) + imag(amp)*imag(amp)
		}
	}
	if p1 == 0 {
		return
	}
	pJump := gamma * p1
	if rng.Float64() < pJump {
		// Jump: K1 = sqrt(γ)|0><1| moves every q=1 amplitude onto its
		// q=0 partner and annihilates the rest; renormalize by sqrt(p1).
		inv := complex(1/math.Sqrt(p1), 0)
		for i := range state {
			if i&bit == 0 {
				state[i] = state[i|bit] * inv
			}
		}
		for i := range state {
			if i&bit != 0 {
				state[i] = 0
			}
		}
		return
	}
	// No jump: apply K0 = diag(1, sqrt(1-gamma)) and renormalize.
	scale := complex(math.Sqrt(1-gamma), 0)
	for i := range state {
		if i&bit != 0 {
			state[i] *= scale
		}
	}
	norm := complex(1/math.Sqrt(1-pJump), 0)
	for i := range state {
		state[i] *= norm
	}
}

// Options configures a noisy run.
type Options struct {
	// Shots is the number of measurement samples; 0 means return exact
	// trajectory-averaged probabilities without shot noise.
	Shots int
	// Trajectories is the number of Monte-Carlo noise trajectories
	// averaged (default 100).
	Trajectories int
	// Seed makes the run deterministic (default 1).
	Seed int64
	// Parallelism bounds the worker goroutines used to run trajectories
	// concurrently (0 or negative selects runtime.NumCPU()). The output
	// is bit-identical for every Parallelism value: trajectory t always
	// draws from its own RNG stream derived from (Seed, t), and partial
	// sums are reduced in a fixed order.
	Parallelism int
}

func (o *Options) defaults() {
	if o.Trajectories == 0 {
		o.Trajectories = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood), a cheap
// bijective mixer whose outputs pass BigCrush; it turns structured inputs
// like small consecutive integers into well-separated seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamSeed derives the seed of independent RNG stream idx of a run
// seeded with seed. Trajectory t uses stream t; negative indices are
// reserved for non-trajectory streams (shot sampling), which is what
// decouples shot noise from the trajectory count.
func streamSeed(seed, idx int64) int64 {
	// Chain rather than XOR the two mixes: XOR is commutative, so
	// (seed, idx) and (idx, seed) would otherwise share a stream.
	return int64(splitmix64(splitmix64(uint64(seed)) + uint64(idx)))
}

// shotStream is the reserved stream index for measurement-shot sampling.
const shotStream int64 = -1

// trajectoryChunk is how many consecutive trajectories one unit of
// parallel work accumulates before its partial sum is handed back. It is
// a fixed constant (never derived from the worker count) so the reduction
// order — chunk by chunk, trajectories ascending within a chunk — is the
// same for every Parallelism setting.
const trajectoryChunk = 8

// Run simulates the circuit under the model and returns the output
// distribution over the 2^n basis states. Runs are deterministic in
// (circuit, model, Shots, Trajectories, Seed) and invariant under
// Options.Parallelism; the shot-sampling RNG stream depends only on Seed,
// so changing Trajectories never perturbs the shot-noise realization.
func (m Model) Run(c *circuit.Circuit, opts Options) []float64 {
	probs, _ := m.RunCtx(context.Background(), c, opts)
	return probs
}

// RunCtx is Run under a context: cancellation is checked before the run
// and between Monte-Carlo trajectories. When ctx expires mid-run the
// typed budget error is returned with a nil distribution — a partially
// accumulated trajectory average is a biased estimator, so no partial
// output is offered here.
func (m Model) RunCtx(ctx context.Context, c *circuit.Circuit, opts Options) ([]float64, error) {
	opts.defaults()
	if err := budget.Check(ctx); err != nil {
		return nil, fmt.Errorf("noise: %w", err)
	}
	dim := 1 << c.NumQubits

	probs := make([]float64, dim)
	if m.OneQubitError == 0 && m.TwoQubitError == 0 && m.DampingError == 0 {
		copy(probs, sim.Probabilities(c))
	} else if err := m.accumulateTrajectories(ctx, c, opts, probs); err != nil {
		return nil, fmt.Errorf("noise: %w", err)
	}

	if m.ReadoutError > 0 {
		probs = ApplyReadoutError(probs, c.NumQubits, m.ReadoutError)
	}
	if opts.Shots > 0 {
		rng := rand.New(rand.NewSource(streamSeed(opts.Seed, shotStream)))
		probs = SampleShots(probs, opts.Shots, rng)
	}
	return probs, nil
}

// accumulateTrajectories adds the mean trajectory probability mass into
// probs. Trajectories are split into fixed-size chunks executed by a
// bounded worker pool; each chunk owns a private partial sum and the
// partials are reduced in chunk order, so the floating-point summation
// order (and hence the result, bit for bit) is independent of the worker
// count.
func (m Model) accumulateTrajectories(ctx context.Context, c *circuit.Circuit, opts Options, probs []float64) error {
	dim := len(probs)
	chunks := (opts.Trajectories + trajectoryChunk - 1) / trajectoryChunk
	partials := make([][]float64, chunks)
	err := par.ForEachErr(ctx, opts.Parallelism, chunks, func(cctx context.Context, ci int) error {
		partial := make([]float64, dim)
		lo := ci * trajectoryChunk
		hi := lo + trajectoryChunk
		if hi > opts.Trajectories {
			hi = opts.Trajectories
		}
		for t := lo; t < hi; t++ {
			if err := budget.Check(cctx); err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(streamSeed(opts.Seed, int64(t))))
			state := m.Trajectory(c, rng)
			for k, amp := range state {
				partial[k] += real(amp)*real(amp) + imag(amp)*imag(amp)
			}
		}
		partials[ci] = partial
		return nil
	})
	if err != nil {
		return err
	}
	for _, partial := range partials {
		for k, v := range partial {
			probs[k] += v
		}
	}
	inv := 1 / float64(opts.Trajectories)
	for k := range probs {
		probs[k] *= inv
	}
	return nil
}

// ApplyReadoutError applies an independent bit-flip channel with
// probability e to every qubit of the distribution (analytically, not by
// sampling).
func ApplyReadoutError(p []float64, n int, e float64) []float64 {
	out := append([]float64(nil), p...)
	for q := 0; q < n; q++ {
		bit := 1 << q
		for k := range out {
			if k&bit != 0 {
				continue
			}
			a, b := out[k], out[k|bit]
			out[k] = (1-e)*a + e*b
			out[k|bit] = e*a + (1-e)*b
		}
	}
	return out
}

// Batched sampling switches from a per-shot binary search to a cut-point
// guide table once the batch is large enough to amortize building it. Both
// paths consume the identical RNG stream (one Float64 per shot, in shot
// order) and resolve each draw to the identical index, so the histogram is
// bit-for-bit the same either way; the thresholds are purely a cost
// crossover.
const (
	guideMinShots = 64
	guideMinDim   = 4
)

// SampleShots draws `shots` samples from the distribution and returns the
// normalized empirical histogram. The input need not be normalized —
// sampling is proportional to the (non-negative) entries — but it must
// carry some mass: a zero-total distribution has no valid sample, so the
// all-zero histogram is returned rather than silently piling every shot
// into basis state 0.
//
// Large batches resolve each draw through a cut-point guide table
// (amortized O(1) per shot instead of a binary search); the sampled
// histogram is bit-identical to the direct path for the same rng state.
func SampleShots(p []float64, shots int, rng *rand.Rand) []float64 {
	cdf := make([]float64, len(p))
	var acc float64
	for i, v := range p {
		acc += v
		cdf[i] = acc
	}
	hist := make([]float64, len(p))
	if acc <= 0 || shots <= 0 {
		return hist
	}
	if shots >= guideMinShots && len(p) >= guideMinDim {
		guide := buildShotGuide(cdf, acc)
		for s := 0; s < shots; s++ {
			hist[guideIndex(cdf, guide, acc, rng.Float64()*acc)]++
		}
	} else {
		for s := 0; s < shots; s++ {
			hist[sampleIndex(cdf, acc, rng.Float64()*acc)]++
		}
	}
	inv := 1 / float64(shots)
	for i := range hist {
		hist[i] *= inv
	}
	return hist
}

// buildShotGuide precomputes the cut-point table: guide[j] is the first
// cdf index whose value reaches bound_j = (j/len(cdf))·total, so a draw r
// falling in equal-width bucket j starts its scan at guide[j] instead of
// bisecting the whole cdf. One bucket per cdf entry keeps the expected
// scan length below one step for any distribution shape.
func buildShotGuide(cdf []float64, total float64) []int32 {
	k := len(cdf)
	guide := make([]int32, k+1)
	idx := 0
	for j := 1; j <= k; j++ {
		bound := float64(j) / float64(k) * total
		for idx < len(cdf) && cdf[idx] < bound {
			idx++
		}
		guide[j] = int32(idx)
	}
	return guide
}

// guideIndex resolves one draw through the guide table. It returns exactly
// what sampleIndex returns for the same (cdf, total, r): the backward
// guard steps compensate for any float rounding in the bucket bound, after
// which cdf[k-1] < r (or k = 0), so the forward scan lands on the first
// index with cdf[k] >= r — the sort.SearchFloat64s answer.
func guideIndex(cdf []float64, guide []int32, total, r float64) int {
	if r >= total {
		return len(cdf) - 1
	}
	j := int(r / total * float64(len(guide)-1))
	if j < 0 {
		j = 0
	}
	if j >= len(guide)-1 {
		j = len(guide) - 2
	}
	k := int(guide[j])
	for k > 0 && cdf[k-1] >= r {
		k--
	}
	for k < len(cdf) && cdf[k] < r {
		k++
	}
	if k >= len(cdf) {
		k = len(cdf) - 1
	}
	return k
}

// sampleIndex locates r within the cumulative distribution, clamping to
// the last bucket so that rounding at the top of an under-normalized cdf
// (where cdf[len-1] can fall below the running total used to scale r) can
// never index past the histogram.
func sampleIndex(cdf []float64, total, r float64) int {
	if r >= total {
		return len(cdf) - 1
	}
	k := sort.SearchFloat64s(cdf, r)
	if k >= len(cdf) {
		k = len(cdf) - 1
	}
	return k
}

// Device models a NISQ machine: an error model plus a coupling map that
// circuits must be routed onto before execution.
type Device struct {
	// Name identifies the device in reports.
	Name string
	// Model is the device's error model.
	Model Model
	// Coupling is the hardware connectivity.
	Coupling *transpile.CouplingMap
}

// Manila returns a synthetic stand-in for the 5-qubit IBMQ Manila machine:
// linear topology, ~0.8% CNOT error, ~0.08% one-qubit error, ~2.5% readout
// error (typical calibration-era values for that device class).
func Manila() *Device {
	return &Device{
		Name: "manila-sim",
		Model: Model{
			OneQubitError: 0.0008,
			TwoQubitError: 0.008,
			ReadoutError:  0.025,
		},
		Coupling: transpile.LinearCoupling(5),
	}
}

// Run lowers and routes the circuit onto the device, simulates it under
// the device noise model and returns the output distribution in LOGICAL
// qubit order.
func (d *Device) Run(c *circuit.Circuit, opts Options) ([]float64, error) {
	return d.RunCtx(context.Background(), c, opts)
}

// RunCtx is Run under a context; see Model.RunCtx for the cancellation
// contract.
func (d *Device) RunCtx(ctx context.Context, c *circuit.Circuit, opts Options) ([]float64, error) {
	lowered := transpile.Lower(c)
	initial := transpile.ChooseInitialLayout(lowered, d.Coupling)
	routed, layout, err := transpile.SabreRoute(lowered, d.Coupling, initial)
	if err != nil {
		return nil, fmt.Errorf("noise: routing onto %s: %w", d.Name, err)
	}
	// Routing may introduce swap gates; lower them to CNOTs so they are
	// charged two-qubit errors per CNOT like real hardware.
	routed = transpile.Lower(routed)
	phys, err := d.Model.RunCtx(ctx, routed, opts)
	if err != nil {
		return nil, err
	}
	return transpile.PermuteDistribution(phys, layout, c.NumQubits), nil
}

// QuitoT returns a synthetic IBMQ Quito-class 5-qubit device: T-shaped
// topology (0-1-2 chain with 1-3 and 3-4 branches), slightly noisier than
// Manila and with mild T1 relaxation — a second device model for routing
// and noise studies.
func QuitoT() *Device {
	return &Device{
		Name: "quito-sim",
		Model: Model{
			OneQubitError: 0.001,
			TwoQubitError: 0.011,
			ReadoutError:  0.035,
			DampingError:  0.0005,
		},
		Coupling: transpile.NewCouplingMap(5, [][2]int{{0, 1}, {1, 2}, {1, 3}, {3, 4}}),
	}
}
