package noise

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/circuit"
)

// benchCircuit builds a trajectory-heavy workload: a deep random circuit
// on n qubits, the shape that dominates the noisy figures (Figs. 10-15).
func benchCircuit(n, ops int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(7))
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(3) {
		case 0:
			c.RY(rng.Intn(n), rng.Float64()*math.Pi)
		case 1:
			c.RZ(rng.Intn(n), rng.Float64()*math.Pi)
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		}
	}
	return c
}

// BenchmarkModelRun compares the serial and parallel trajectory engines on
// the acceptance workload: same seed, same trajectory budget, bit-identical
// output, only the worker count differs.
func BenchmarkModelRun(b *testing.B) {
	c := benchCircuit(6, 120)
	m := Uniform(0.01)
	workerCounts := []int{1, runtime.NumCPU()}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("parallelism=%d", workers), func(b *testing.B) {
			opts := Options{Trajectories: 200, Seed: 1, Parallelism: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Run(c, opts)
			}
		})
	}
}

// BenchmarkModelRunWithShots includes readout error and shot sampling, the
// exact configuration of the Fig. 10/11 device runs.
func BenchmarkModelRunWithShots(b *testing.B) {
	c := benchCircuit(5, 100)
	m := Manila().Model
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("parallelism=%d", workers), func(b *testing.B) {
			opts := Options{Trajectories: 300, Shots: 8192, Seed: 1, Parallelism: workers}
			for i := 0; i < b.N; i++ {
				m.Run(c, opts)
			}
		})
	}
}

func BenchmarkTrajectory(b *testing.B) {
	c := benchCircuit(6, 120)
	m := Uniform(0.01)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Trajectory(c, rng)
	}
}
