package noise

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/circuit"
)

// benchCircuit builds a trajectory-heavy workload: a deep random circuit
// on n qubits, the shape that dominates the noisy figures (Figs. 10-15).
func benchCircuit(n, ops int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(7))
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(3) {
		case 0:
			c.RY(rng.Intn(n), rng.Float64()*math.Pi)
		case 1:
			c.RZ(rng.Intn(n), rng.Float64()*math.Pi)
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		}
	}
	return c
}

// BenchmarkModelRun compares the serial and parallel trajectory engines on
// the acceptance workload: same seed, same trajectory budget, bit-identical
// output, only the worker count differs.
func BenchmarkModelRun(b *testing.B) {
	c := benchCircuit(6, 120)
	m := Uniform(0.01)
	workerCounts := []int{1, runtime.NumCPU()}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("parallelism=%d", workers), func(b *testing.B) {
			opts := Options{Trajectories: 200, Seed: 1, Parallelism: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Run(c, opts)
			}
		})
	}
}

// BenchmarkModelRunWithShots includes readout error and shot sampling, the
// exact configuration of the Fig. 10/11 device runs.
func BenchmarkModelRunWithShots(b *testing.B) {
	c := benchCircuit(5, 100)
	m := Manila().Model
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("parallelism=%d", workers), func(b *testing.B) {
			opts := Options{Trajectories: 300, Shots: 8192, Seed: 1, Parallelism: workers}
			for i := 0; i < b.N; i++ {
				m.Run(c, opts)
			}
		})
	}
}

func BenchmarkTrajectory(b *testing.B) {
	c := benchCircuit(6, 120)
	m := Uniform(0.01)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Trajectory(c, rng)
	}
}

// BenchmarkSampleShots measures the shot sampler alone at the Fig. 10/11
// configuration (5-qubit distribution, 8192 shots) and at a wider
// distribution, comparing the guide-table batch path against the per-shot
// binary search it replaced.
func BenchmarkSampleShots(b *testing.B) {
	for _, dim := range []int{32, 1024} {
		rng := rand.New(rand.NewSource(11))
		p := make([]float64, dim)
		for i := range p {
			p[i] = rng.Float64()
		}
		const shots = 8192
		b.Run(fmt.Sprintf("guide/dim=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SampleShots(p, shots, rng)
			}
		})
		b.Run(fmt.Sprintf("binary/dim=%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				binarySearchSampleShots(p, shots, rng)
			}
		})
	}
}
