package noise

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/budget"
)

func TestRunCtxMatchesRun(t *testing.T) {
	// The ctx variant with a live context is bit-identical to Run.
	c := bell()
	m := Uniform(0.05)
	opts := Options{Trajectories: 40, Shots: 256, Seed: 7}
	want := m.Run(c, opts)
	got, err := m.RunCtx(context.Background(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RunCtx diverges from Run at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := Uniform(0.05).RunCtx(ctx, bell(), Options{Trajectories: 40})
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if p != nil {
		t.Error("cancelled run returned a distribution")
	}
}

func TestRunCtxDeadlineStopsTrajectories(t *testing.T) {
	// A deadline far below the cost of the trajectory budget must stop
	// the loop promptly with the typed error (checked per trajectory).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	c := bell()
	for i := 0; i < 200; i++ { // deep circuit: many noisy ops per trajectory
		c.H(0)
		c.CX(0, 1)
	}
	start := time.Now()
	_, err := Uniform(0.05).RunCtx(ctx, c, Options{Trajectories: 1_000_000})
	if !errors.Is(err, budget.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("run took %v after a 10ms deadline", elapsed)
	}
}

func TestDeviceRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Manila().RunCtx(ctx, bell(), Options{Trajectories: 40})
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestDeviceRunCtxMatchesRun(t *testing.T) {
	d := QuitoT()
	c := bell()
	opts := Options{Trajectories: 30, Shots: 128, Seed: 3}
	want, err := d.Run(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.RunCtx(context.Background(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Device.RunCtx diverges at %d: %g vs %g", i, got[i], want[i])
		}
	}
}
