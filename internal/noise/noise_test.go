package noise

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func bell() *circuit.Circuit {
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	return c
}

func sumsToOne(t *testing.T, p []float64, context string) {
	t.Helper()
	var s float64
	for _, v := range p {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("%s: distribution sums to %g", context, s)
	}
}

func TestZeroNoiseMatchesIdeal(t *testing.T) {
	c := bell()
	p := Model{}.Run(c, Options{Seed: 1})
	ideal := sim.Probabilities(c)
	if metrics.TVD(p, ideal) > 1e-12 {
		t.Errorf("zero-noise run differs from ideal: %v vs %v", p, ideal)
	}
}

func TestNoiseIncreasesTVDWithErrorRate(t *testing.T) {
	// A workload whose output distribution is NOT invariant under Pauli
	// errors (unlike a uniform Bell-chain output).
	big := circuit.New(2)
	for i := 0; i < 10; i++ {
		big.RY(0, 0.4)
		big.CX(0, 1)
		big.RY(1, 0.3)
	}
	ideal := sim.Probabilities(big)
	var prev float64
	for _, p := range []float64{0.001, 0.01, 0.05} {
		out := Uniform(p).Run(big, Options{Seed: 2, Trajectories: 300})
		tvd := metrics.TVD(out, ideal)
		if tvd < prev-0.02 {
			t.Errorf("TVD decreased when noise grew: p=%g tvd=%g prev=%g", p, tvd, prev)
		}
		prev = tvd
	}
	if prev < 0.01 {
		t.Errorf("5%% noise barely moved the output (tvd=%g)", prev)
	}
}

func TestMoreCNOTsMoreError(t *testing.T) {
	// The core premise of QUEST: error grows with CNOT count.
	mk := func(reps int) *circuit.Circuit {
		c := circuit.New(2)
		for i := 0; i < reps; i++ {
			c.RY(0, 0.4)
			c.CX(0, 1)
			c.RY(1, 0.3)
		}
		return c
	}
	short, long := mk(1), mk(10)
	m := Uniform(0.02)
	tvdShort := metrics.TVD(m.Run(short, Options{Seed: 3, Trajectories: 400}), sim.Probabilities(short))
	tvdLong := metrics.TVD(m.Run(long, Options{Seed: 3, Trajectories: 400}), sim.Probabilities(long))
	if tvdLong <= tvdShort {
		t.Errorf("longer circuit has less error: short=%g long=%g", tvdShort, tvdLong)
	}
}

func TestRunNormalized(t *testing.T) {
	c := bell()
	p := Uniform(0.01).Run(c, Options{Seed: 4, Trajectories: 50})
	sumsToOne(t, p, "noisy run")
	p2 := Uniform(0.01).Run(c, Options{Seed: 5, Shots: 1024, Trajectories: 50})
	sumsToOne(t, p2, "noisy run with shots")
}

func TestRunDeterministic(t *testing.T) {
	c := bell()
	a := Uniform(0.01).Run(c, Options{Seed: 6, Shots: 256})
	b := Uniform(0.01).Run(c, Options{Seed: 6, Shots: 256})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("noisy run not deterministic for fixed seed")
		}
	}
}

func TestApplyReadoutError(t *testing.T) {
	// Deterministic |00> with 10% readout error per qubit.
	p := []float64{1, 0, 0, 0}
	out := ApplyReadoutError(p, 2, 0.1)
	if math.Abs(out[0]-0.81) > 1e-12 {
		t.Errorf("P(00) = %g, want 0.81", out[0])
	}
	if math.Abs(out[1]-0.09) > 1e-12 || math.Abs(out[2]-0.09) > 1e-12 {
		t.Errorf("P(01)/P(10) = %g/%g, want 0.09", out[1], out[2])
	}
	if math.Abs(out[3]-0.01) > 1e-12 {
		t.Errorf("P(11) = %g, want 0.01", out[3])
	}
	sumsToOne(t, out, "readout")
}

func TestSampleShotsZeroMassReturnsZeroHistogram(t *testing.T) {
	// Regression: an all-zero distribution used to pile every shot into
	// basis state 0 (acc == 0 makes every draw r == 0, and the cdf search
	// returns index 0). It must yield the all-zero histogram instead.
	rng := rand.New(rand.NewSource(21))
	hist := SampleShots([]float64{0, 0, 0, 0}, 1000, rng)
	for k, v := range hist {
		if v != 0 {
			t.Fatalf("zero-mass distribution produced mass at state %d: %g", k, v)
		}
	}
	if hist := SampleShots(nil, 10, rng); len(hist) != 0 {
		t.Errorf("empty distribution returned %v", hist)
	}
}

func TestSampleShotsUnderNormalized(t *testing.T) {
	// Sampling must be proportional to mass even when the input does not
	// sum to 1 (e.g. a truncated or unnormalized histogram).
	rng := rand.New(rand.NewSource(22))
	p := []float64{0.2, 0, 0.05, 0} // total mass 0.25
	hist := SampleShots(p, 100000, rng)
	sumsToOne(t, hist, "under-normalized input")
	if math.Abs(hist[0]-0.8) > 0.01 || math.Abs(hist[2]-0.2) > 0.01 {
		t.Errorf("histogram %v, want ~[0.8 0 0.2 0]", hist)
	}
	if hist[1] != 0 || hist[3] != 0 {
		t.Errorf("mass appeared on zero-probability states: %v", hist)
	}
}

func TestSampleIndexClampsTopOfRange(t *testing.T) {
	// The clamp path: with an under-normalized cdf whose top entry falls
	// below the scaling total, a draw at (or beyond) the top must land in
	// the last bucket instead of indexing past the histogram.
	cdf := []float64{0.5, 0.75} // under-normalized: total mass 0.75
	if k := sampleIndex(cdf, 0.75, 0.75); k != 1 {
		t.Errorf("sampleIndex(total) = %d, want last bucket", k)
	}
	if k := sampleIndex(cdf, 0.75, 0.9); k != 1 {
		t.Errorf("sampleIndex(beyond total) = %d, want last bucket", k)
	}
	if k := sampleIndex(cdf, 0.75, 0.6); k != 1 {
		t.Errorf("sampleIndex(0.6) = %d, want 1", k)
	}
	if k := sampleIndex(cdf, 0.75, 0.1); k != 0 {
		t.Errorf("sampleIndex(0.1) = %d, want 0", k)
	}
}

func TestRunInvariantUnderParallelism(t *testing.T) {
	// The tentpole determinism claim: bit-identical output for any worker
	// count, including with damping and shot sampling in play.
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.RY(2, 0.7)
	c.CX(1, 2)
	m := Model{OneQubitError: 0.01, TwoQubitError: 0.05, ReadoutError: 0.02, DampingError: 0.01}
	ref := m.Run(c, Options{Seed: 31, Trajectories: 123, Shots: 2048, Parallelism: 1})
	for _, workers := range []int{2, 3, 8, 0} {
		got := m.Run(c, Options{Seed: 31, Trajectories: 123, Shots: 2048, Parallelism: workers})
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("parallelism=%d: state %d differs: %g vs %g", workers, k, got[k], ref[k])
			}
		}
	}
}

func TestShotStreamIndependentOfTrajectoryCount(t *testing.T) {
	// Regression for the RNG coupling bug: shot sampling used to continue
	// the trajectory loop's RNG stream, so changing Trajectories silently
	// changed the shot-noise realization. H⊗H makes every trajectory's
	// distribution exactly uniform under Pauli errors, so the averaged
	// distribution is identical for any trajectory count — the sampled
	// histograms must then match bit for bit.
	c := circuit.New(2)
	c.H(0)
	c.H(1)
	m := Model{OneQubitError: 0.4}
	a := m.Run(c, Options{Seed: 17, Trajectories: 100, Shots: 4096})
	b := m.Run(c, Options{Seed: 17, Trajectories: 200, Shots: 4096})
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("shot realization coupled to trajectory count: state %d: %g vs %g", k, a[k], b[k])
		}
	}
}

func TestShotStreamReconstructable(t *testing.T) {
	// The seeding contract, asserted mechanically: a run with shots equals
	// the same run without shots followed by SampleShots on the dedicated
	// (Seed, shotStream) RNG stream.
	c := bell()
	m := Uniform(0.02)
	opts := Options{Seed: 9, Trajectories: 50}
	probs := m.Run(c, opts)
	want := SampleShots(probs, 512, rand.New(rand.NewSource(streamSeed(opts.Seed, shotStream))))
	opts.Shots = 512
	got := m.Run(c, opts)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("shot stream not reconstructable: state %d: %g vs %g", k, got[k], want[k])
		}
	}
}

func TestStreamSeedsDistinct(t *testing.T) {
	// Neighboring (seed, index) pairs must map to well-separated streams.
	seen := map[int64]bool{}
	for seed := int64(0); seed < 50; seed++ {
		for idx := int64(-1); idx < 50; idx++ {
			s := streamSeed(seed, idx)
			if seen[s] {
				t.Fatalf("stream seed collision at seed=%d idx=%d", seed, idx)
			}
			seen[s] = true
		}
	}
}

func TestSampleShotsConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := []float64{0.5, 0.25, 0.125, 0.125}
	hist := SampleShots(p, 200000, rng)
	if metrics.TVD(hist, p) > 0.01 {
		t.Errorf("sampled histogram far from distribution: %v", hist)
	}
	sumsToOne(t, hist, "sampled")
}

func TestUniformModelShape(t *testing.T) {
	m := Uniform(0.01)
	if m.TwoQubitError != 0.01 || math.Abs(m.OneQubitError-0.001) > 1e-15 {
		t.Errorf("Uniform(0.01) = %+v", m)
	}
	if !Uniform(0).IsZero() {
		t.Error("Uniform(0) not zero")
	}
}

func TestManilaDevice(t *testing.T) {
	d := Manila()
	if d.Coupling.NumQubits != 5 {
		t.Fatalf("Manila has %d qubits", d.Coupling.NumQubits)
	}
	if d.Model.TwoQubitError <= d.Model.OneQubitError {
		t.Error("Manila CNOT error should dominate 1q error")
	}
	// Run a Bell pair on non-adjacent qubits to force routing.
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 2)
	p, err := d.Run(c, Options{Seed: 8, Trajectories: 200})
	if err != nil {
		t.Fatal(err)
	}
	sumsToOne(t, p, "manila run")
	// Output should still be recognizably Bell-like: mass on |000> and |101>.
	if p[0]+p[5] < 0.8 {
		t.Errorf("Manila Bell output degraded too much: %v", p)
	}
	ideal := sim.Probabilities(c)
	if tvd := metrics.TVD(p, ideal); tvd < 1e-4 {
		t.Errorf("Manila run suspiciously noiseless (tvd=%g)", tvd)
	}
}

func TestDeviceRunRejectsOversized(t *testing.T) {
	c := circuit.New(6)
	c.H(0)
	if _, err := Manila().Run(c, Options{}); err == nil {
		t.Error("Manila accepted a 6-qubit circuit")
	}
}

func TestTrajectoryPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := bell()
	for i := 0; i < 20; i++ {
		state := Uniform(0.3).Trajectory(c, rng)
		if math.Abs(state.Norm()-1) > 1e-9 {
			t.Fatal("trajectory broke normalization")
		}
	}
}

func TestAmplitudeDampingJumpSingleQubit(t *testing.T) {
	// |1> with damping gamma: P(0) -> gamma exactly (averaged).
	c := circuit.New(1)
	c.X(0)
	m := Model{DampingError: 0.3}
	p := m.Run(c, Options{Trajectories: 20000, Seed: 11})
	if math.Abs(p[0]-0.3) > 0.02 {
		t.Errorf("P(0) after damping = %g, want ~0.3", p[0])
	}
}

func TestAmplitudeDampingJumpPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := bell()
	m := Model{DampingError: 0.4}
	for i := 0; i < 30; i++ {
		state := m.Trajectory(c, rng)
		if math.Abs(state.Norm()-1) > 1e-9 {
			t.Fatal("damping trajectory broke normalization")
		}
	}
}

func TestAmplitudeDampingOnSuperposition(t *testing.T) {
	// H|0> then damping: exact channel gives
	// P(1) = (1-gamma)/2; cross-validate the trajectory average.
	c := circuit.New(1)
	c.H(0)
	gamma := 0.5
	m := Model{DampingError: gamma}
	p := m.Run(c, Options{Trajectories: 40000, Seed: 13})
	want1 := (1 - gamma) / 2
	if math.Abs(p[1]-want1) > 0.02 {
		t.Errorf("P(1) = %g, want ~%g", p[1], want1)
	}
}

func TestQuitoDevice(t *testing.T) {
	d := QuitoT()
	if d.Coupling.NumQubits != 5 || d.Coupling.Distance(0, 4) != 3 {
		t.Fatalf("Quito topology wrong: d(0,4)=%d", d.Coupling.Distance(0, 4))
	}
	c := circuit.New(5)
	c.H(0)
	c.CX(0, 4) // needs routing through the T junction
	p, err := d.Run(c, Options{Seed: 9, Trajectories: 100})
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, v := range p {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("Quito run sums to %g", s)
	}
	// Bell-like mass on |00000> and |10001>.
	if p[0]+p[17] < 0.75 {
		t.Errorf("Quito Bell output degraded too much: P(00000)+P(10001) = %g", p[0]+p[17])
	}
}

func TestSampleShotsGuideMatchesBinarySearch(t *testing.T) {
	// The guide-table fast path must produce the bit-identical histogram
	// the per-shot binary search produces from the same RNG state, for
	// every distribution shape: skewed mass, zero runs, unnormalized
	// totals, dims around the guide threshold.
	shapes := map[string]func(rng *rand.Rand, dim int) []float64{
		"uniformish": func(rng *rand.Rand, dim int) []float64 {
			p := make([]float64, dim)
			for i := range p {
				p[i] = rng.Float64()
			}
			return p
		},
		"sparse": func(rng *rand.Rand, dim int) []float64 {
			p := make([]float64, dim)
			for i := range p {
				if rng.Float64() < 0.2 {
					p[i] = rng.Float64()
				}
			}
			if allZero(p) {
				p[dim/2] = 1
			}
			return p
		},
		"skewed": func(rng *rand.Rand, dim int) []float64 {
			p := make([]float64, dim)
			p[0] = 1e6
			for i := 1; i < dim; i++ {
				p[i] = rng.Float64() * 1e-6
			}
			return p
		},
	}
	rng := rand.New(rand.NewSource(31))
	for name, gen := range shapes {
		for _, dim := range []int{guideMinDim, 5, 32, 257} {
			p := gen(rng, dim)
			shots := guideMinShots * 4
			got := SampleShots(p, shots, rand.New(rand.NewSource(77)))
			want := binarySearchSampleShots(p, shots, rand.New(rand.NewSource(77)))
			for k := range want {
				if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
					t.Fatalf("%s dim=%d: hist[%d] = %g, binary-search path %g",
						name, dim, k, got[k], want[k])
				}
			}
		}
	}
}

func allZero(p []float64) bool {
	for _, v := range p {
		if v != 0 {
			return false
		}
	}
	return true
}

// binarySearchSampleShots is the pre-guide-table sampler, kept as the
// reference implementation for the equivalence test.
func binarySearchSampleShots(p []float64, shots int, rng *rand.Rand) []float64 {
	cdf := make([]float64, len(p))
	var acc float64
	for i, v := range p {
		acc += v
		cdf[i] = acc
	}
	hist := make([]float64, len(p))
	if acc <= 0 || shots <= 0 {
		return hist
	}
	for s := 0; s < shots; s++ {
		hist[sampleIndex(cdf, acc, rng.Float64()*acc)]++
	}
	inv := 1 / float64(shots)
	for i := range hist {
		hist[i] *= inv
	}
	return hist
}

func TestGuideIndexMatchesSampleIndexExhaustively(t *testing.T) {
	// Sweep draws across bucket boundaries (including the exact bound
	// values, where float rounding in the guide bucket is most likely to
	// bite) and check guideIndex against sampleIndex on each.
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 50; trial++ {
		dim := 1 + rng.Intn(64)
		cdf := make([]float64, dim)
		acc := 0.0
		for i := range cdf {
			if rng.Float64() < 0.3 {
				acc += rng.Float64()
			}
			cdf[i] = acc
		}
		if acc == 0 {
			continue
		}
		guide := buildShotGuide(cdf, acc)
		probe := func(r float64) {
			t.Helper()
			if g, w := guideIndex(cdf, guide, acc, r), sampleIndex(cdf, acc, r); g != w {
				t.Fatalf("dim=%d r=%g: guideIndex=%d sampleIndex=%d", dim, r, g, w)
			}
		}
		for j := 0; j <= dim; j++ {
			bound := float64(j) / float64(dim) * acc
			probe(bound)
			probe(math.Nextafter(bound, 0))
			probe(math.Nextafter(bound, acc*2))
		}
		for i := 0; i < 200; i++ {
			probe(rng.Float64() * acc)
		}
	}
}
