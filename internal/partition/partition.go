// Package partition implements QUEST's STEP 1 (Sec. 3.3): splitting a
// large circuit into blocks of at most maxSize qubits with a single
// front-to-back scan, the scalable "scan partitioner" the paper adopts
// from BQSKit. Blocks are emitted in topological order: executing the
// blocks sequentially reproduces the original circuit's unitary.
//
// Three entry points share one scan core:
//
//   - Scan materializes the whole partition at once (the historical API);
//   - Stream emits each block as soon as the scan PROVES no later op can
//     join it, which is what lets synthesis start on block 0 while the
//     scanner is still walking the tail of a multi-thousand-gate circuit;
//   - Count computes only the number of blocks, without materializing
//     any ops — the cheap pre-pass the overlapped pipeline uses to fix
//     the full-circuit threshold before the first block arrives.
//
// Stream is proven block-for-block identical to Scan by randomized tests:
// same blocks, same order, same qubit sets, same op sequences.
package partition

import (
	"context"
	"fmt"

	"repro/internal/budget"
	"repro/internal/circuit"
)

// Block is one partition: a sub-circuit on a small set of global qubits.
type Block struct {
	// Qubits lists the global qubit indices the block acts on, sorted
	// ascending. Local qubit i of Circuit corresponds to Qubits[i].
	Qubits []int
	// Circuit is the block's operations on local qubits 0..len(Qubits)-1.
	Circuit *circuit.Circuit
}

// CNOTCount returns the block's CNOT-equivalent gate count.
func (b Block) CNOTCount() int { return b.Circuit.CNOTCount() }

// openBlock accumulates op indices during the scan. Its qubit set is a
// sorted slice, not a map: blocks hold at most maxSize (≤ a handful of)
// qubits, so membership is a short linear scan and inserting stays
// allocation-free after the initial maxSize-capacity grab. This is the
// partitioner's per-gate hot path — see BenchmarkPartitionScan.
type openBlock struct {
	qubits []int // sorted ascending
	ops    []int // indices into the scanned circuit's Ops
}

// has reports whether q is in the block's qubit set.
func (b *openBlock) has(q int) bool {
	for _, p := range b.qubits {
		if p == q {
			return true
		}
	}
	return false
}

// fits reports whether adding the op's qubits keeps the block within
// maxSize.
func (b *openBlock) fits(qs []int, maxSize int) bool {
	extra := 0
	for _, q := range qs {
		if !b.has(q) {
			extra++
		}
	}
	return len(b.qubits)+extra <= maxSize
}

// add inserts q into the sorted qubit set if absent.
func (b *openBlock) add(q int) {
	i := 0
	for i < len(b.qubits) && b.qubits[i] < q {
		i++
	}
	if i < len(b.qubits) && b.qubits[i] == q {
		return
	}
	b.qubits = append(b.qubits, 0)
	copy(b.qubits[i+1:], b.qubits[i:])
	b.qubits[i] = q
}

// scanner runs the placement loop shared by Scan, Stream and Count.
type scanner struct {
	c         *circuit.Circuit
	maxSize   int
	blocks    []*openBlock // emitted entries are nil'd to release memory
	lastTouch []int        // lastTouch[q] = index of the last block touching q
	remaining []int        // remaining[q] = ops after the cursor touching q
	emitted   int          // blocks [0, emitted) have been handed out
	storeOps  bool         // Count runs with ops elided
}

func newScanner(c *circuit.Circuit, maxSize int, storeOps bool) (*scanner, error) {
	if maxSize < 1 {
		return nil, fmt.Errorf("partition: maxSize %d < 1", maxSize)
	}
	s := &scanner{
		c:         c,
		maxSize:   maxSize,
		lastTouch: make([]int, c.NumQubits),
		remaining: make([]int, c.NumQubits),
		storeOps:  storeOps,
	}
	for i := range s.lastTouch {
		s.lastTouch[i] = -1
	}
	for _, op := range c.Ops {
		if len(op.Qubits) > maxSize {
			return nil, fmt.Errorf("partition: op %s spans %d qubits > block size %d",
				op.Name, len(op.Qubits), maxSize)
		}
		for _, q := range op.Qubits {
			s.remaining[q]++
		}
	}
	return s, nil
}

// place assigns op index i to a block: the latest open block that can
// hold it and is not ordered before another block touching the op's
// qubits; a new block is opened when none fits. This preserves all
// per-qubit gate orderings, so sequential reassembly is exact.
func (s *scanner) place(i int) {
	op := s.c.Ops[i]
	last := -1
	for _, q := range op.Qubits {
		if s.lastTouch[q] > last {
			last = s.lastTouch[q]
		}
	}
	placed := -1
	for b := len(s.blocks) - 1; b >= last && b >= 0; b-- {
		if s.blocks[b].fits(op.Qubits, s.maxSize) {
			placed = b
			break
		}
	}
	if placed == -1 {
		s.blocks = append(s.blocks, &openBlock{qubits: make([]int, 0, s.maxSize)})
		placed = len(s.blocks) - 1
	}
	blk := s.blocks[placed]
	for _, q := range op.Qubits {
		blk.add(q)
		s.lastTouch[q] = placed
		s.remaining[q]--
	}
	if s.storeOps {
		blk.ops = append(blk.ops, i)
	}
}

// closedBefore returns the exclusive upper bound on the prefix of blocks
// the min-last-touch rule proves closed: a future op's placement index is
// at least the maximum last-touch over its own qubits, which is at least
// the minimum last-touch over every qubit that still has ops ahead of the
// cursor — so every block below that minimum can never receive another
// op. Qubits with no remaining ops (including qubits the circuit never
// uses) cannot appear in a future op and do not hold blocks open.
func (s *scanner) closedBefore() int {
	m := len(s.blocks)
	for q, rem := range s.remaining {
		if rem > 0 && s.lastTouch[q] < m {
			m = s.lastTouch[q]
		}
	}
	if m < 0 {
		return 0
	}
	return m
}

// blockClosed proves closure for one saturated block directly: a block
// already holding maxSize qubits can only receive a future op whose
// qubits ALL lie inside its qubit set, and such an op cannot reach index
// b when each member qubit either has no ops left or was last touched by
// a later block (placement never descends below the op's max last-touch).
// This closes the common fully-packed blocks long before the global
// min-last-touch passes them — e.g. a finished 4-qubit block at the head
// of a 60-qubit circuit.
func (s *scanner) blockClosed(b int) bool {
	blk := s.blocks[b]
	if len(blk.qubits) < s.maxSize {
		return false
	}
	for _, q := range blk.qubits {
		if s.remaining[q] > 0 && s.lastTouch[q] <= b {
			return false
		}
	}
	return true
}

// localize converts open block b into its emitted Block form, remapping
// global qubits to local indices 0..len(qubits)-1 (ascending order).
func (s *scanner) localize(b int) (Block, error) {
	blk := s.blocks[b]
	qs := append([]int(nil), blk.qubits...)
	bc := circuit.New(len(qs))
	var lq [4]int // registered gates touch ≤3 qubits; stack buffer covers them
	for _, oi := range blk.ops {
		op := s.c.Ops[oi]
		local := lq[:0]
		if len(op.Qubits) > len(lq) {
			local = make([]int, 0, len(op.Qubits))
		}
		for _, q := range op.Qubits {
			for i, g := range qs {
				if g == q {
					local = append(local, i)
					break
				}
			}
		}
		if err := bc.Append(op.Name, local, op.Params); err != nil {
			return Block{}, fmt.Errorf("partition: localize op %s: %w", op.Name, err)
		}
	}
	return Block{Qubits: qs, Circuit: bc}, nil
}

// Scan partitions the circuit into blocks of at most maxSize qubits.
// Each operation is placed in the latest open block that can hold it and
// that is not ordered before another block touching the op's qubits; a new
// block is opened when none fits. This preserves all per-qubit gate
// orderings, so sequential reassembly is exact.
func Scan(c *circuit.Circuit, maxSize int) ([]Block, error) {
	s, err := newScanner(c, maxSize, true)
	if err != nil {
		return nil, err
	}
	for i := range c.Ops {
		s.place(i)
	}
	out := make([]Block, 0, len(s.blocks))
	for b := range s.blocks {
		blk, err := s.localize(b)
		if err != nil {
			return nil, err
		}
		out = append(out, blk)
	}
	return out, nil
}

// Count returns the number of blocks Scan would produce, without
// materializing any block circuit. It is the overlapped pipeline's
// pre-pass: the full-circuit threshold is ε × Count before the first
// streamed block reaches synthesis.
func Count(c *circuit.Circuit, maxSize int) (int, error) {
	s, err := newScanner(c, maxSize, false)
	if err != nil {
		return 0, err
	}
	for i := range c.Ops {
		s.place(i)
	}
	return len(s.blocks), nil
}

// Stream partitions the circuit incrementally: emit is called once per
// block, in Scan's block order, as soon as the scan proves the block can
// receive no further op (see scanner.closedBefore) — block 0 is typically
// emitted while the scanner is still walking the circuit's tail. The
// blocks passed to emit are exactly Scan's blocks.
//
// Stream stops at the first emit error (returned verbatim) and checks ctx
// between ops, returning the typed budget error on expiry. It runs
// entirely on the caller's goroutine: cancellation cannot leak anything.
func Stream(ctx context.Context, c *circuit.Circuit, maxSize int, emit func(Block) error) error {
	s, err := newScanner(c, maxSize, true)
	if err != nil {
		return err
	}
	// emitClosed hands out the longest emittable prefix: blocks below the
	// global min-last-touch bound, plus saturated blocks blockClosed
	// proves directly. Emission stays strictly in index order (Scan's
	// order); a closed block behind an open one waits its turn.
	emitClosed := func(final bool) error {
		m := s.closedBefore()
		for s.emitted < len(s.blocks) &&
			(final || s.emitted < m || s.blockClosed(s.emitted)) {
			blk, err := s.localize(s.emitted)
			if err != nil {
				return err
			}
			s.blocks[s.emitted].ops = nil // handed out; keep qubits (fits scans past)
			s.emitted++
			if err := emit(blk); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range c.Ops {
		if err := budget.Check(ctx); err != nil {
			return err
		}
		s.place(i)
		if err := emitClosed(false); err != nil {
			return err
		}
	}
	return emitClosed(true)
}

// Reassemble rebuilds a full circuit on n qubits from blocks in order,
// mapping each block's local qubits back to its global qubits.
func Reassemble(n int, blocks []Block) (*circuit.Circuit, error) {
	c := circuit.New(n)
	for i, b := range blocks {
		if err := c.AppendCircuit(b.Circuit, b.Qubits); err != nil {
			return nil, fmt.Errorf("partition: reassemble block %d: %w", i, err)
		}
	}
	return c, nil
}
