// Package partition implements QUEST's STEP 1 (Sec. 3.3): splitting a
// large circuit into blocks of at most maxSize qubits with a single
// front-to-back scan, the scalable "scan partitioner" the paper adopts
// from BQSKit. Blocks are emitted in topological order: executing the
// blocks sequentially reproduces the original circuit's unitary.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
)

// Block is one partition: a sub-circuit on a small set of global qubits.
type Block struct {
	// Qubits lists the global qubit indices the block acts on, sorted
	// ascending. Local qubit i of Circuit corresponds to Qubits[i].
	Qubits []int
	// Circuit is the block's operations on local qubits 0..len(Qubits)-1.
	Circuit *circuit.Circuit
}

// CNOTCount returns the block's CNOT-equivalent gate count.
func (b Block) CNOTCount() int { return b.Circuit.CNOTCount() }

// openBlock accumulates global-qubit ops during the scan.
type openBlock struct {
	qubits map[int]bool
	ops    []circuit.Op
}

func (b *openBlock) fits(qs []int, maxSize int) bool {
	extra := 0
	for _, q := range qs {
		if !b.qubits[q] {
			extra++
		}
	}
	return len(b.qubits)+extra <= maxSize
}

// Scan partitions the circuit into blocks of at most maxSize qubits.
// Each operation is placed in the latest open block that can hold it and
// that is not ordered before another block touching the op's qubits; a new
// block is opened when none fits. This preserves all per-qubit gate
// orderings, so sequential reassembly is exact.
func Scan(c *circuit.Circuit, maxSize int) ([]Block, error) {
	if maxSize < 1 {
		return nil, fmt.Errorf("partition: maxSize %d < 1", maxSize)
	}
	for _, op := range c.Ops {
		if len(op.Qubits) > maxSize {
			return nil, fmt.Errorf("partition: op %s spans %d qubits > block size %d",
				op.Name, len(op.Qubits), maxSize)
		}
	}

	var blocks []*openBlock
	// lastTouch[q] = index of the last block that touched qubit q.
	lastTouch := make([]int, c.NumQubits)
	for i := range lastTouch {
		lastTouch[i] = -1
	}

	for _, op := range c.Ops {
		last := -1
		for _, q := range op.Qubits {
			if lastTouch[q] > last {
				last = lastTouch[q]
			}
		}
		placed := -1
		for b := len(blocks) - 1; b >= last && b >= 0; b-- {
			if blocks[b].fits(op.Qubits, maxSize) {
				placed = b
				break
			}
		}
		if placed == -1 {
			blocks = append(blocks, &openBlock{qubits: map[int]bool{}})
			placed = len(blocks) - 1
		}
		blk := blocks[placed]
		for _, q := range op.Qubits {
			blk.qubits[q] = true
			lastTouch[q] = placed
		}
		blk.ops = append(blk.ops, op.Clone())
	}

	out := make([]Block, 0, len(blocks))
	for _, b := range blocks {
		qs := make([]int, 0, len(b.qubits))
		for q := range b.qubits {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		local := map[int]int{}
		for i, q := range qs {
			local[q] = i
		}
		bc := circuit.New(len(qs))
		for _, op := range b.ops {
			lq := make([]int, len(op.Qubits))
			for i, q := range op.Qubits {
				lq[i] = local[q]
			}
			if err := bc.Append(op.Name, lq, op.Params); err != nil {
				return nil, fmt.Errorf("partition: localize op %s: %w", op.Name, err)
			}
		}
		out = append(out, Block{Qubits: qs, Circuit: bc})
	}
	return out, nil
}

// Reassemble rebuilds a full circuit on n qubits from blocks in order,
// mapping each block's local qubits back to its global qubits.
func Reassemble(n int, blocks []Block) (*circuit.Circuit, error) {
	c := circuit.New(n)
	for i, b := range blocks {
		if err := c.AppendCircuit(b.Circuit, b.Qubits); err != nil {
			return nil, fmt.Errorf("partition: reassemble block %d: %w", i, err)
		}
	}
	return c, nil
}
