package partition

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/budget"
	"repro/internal/circuit"
)

// scanReference is the pre-streaming map-based Scan, kept verbatim as the
// correctness oracle for the rewritten scan core and as the "before" side
// of BenchmarkPartitionScan.
func scanReference(c *circuit.Circuit, maxSize int) ([]Block, error) {
	type refBlock struct {
		qubits map[int]bool
		ops    []circuit.Op
	}
	fits := func(b *refBlock, qs []int) bool {
		extra := 0
		for _, q := range qs {
			if !b.qubits[q] {
				extra++
			}
		}
		return len(b.qubits)+extra <= maxSize
	}
	if maxSize < 1 {
		return nil, fmt.Errorf("partition: maxSize %d < 1", maxSize)
	}
	for _, op := range c.Ops {
		if len(op.Qubits) > maxSize {
			return nil, fmt.Errorf("partition: op %s spans %d qubits > block size %d",
				op.Name, len(op.Qubits), maxSize)
		}
	}
	var blocks []*refBlock
	lastTouch := make([]int, c.NumQubits)
	for i := range lastTouch {
		lastTouch[i] = -1
	}
	for _, op := range c.Ops {
		last := -1
		for _, q := range op.Qubits {
			if lastTouch[q] > last {
				last = lastTouch[q]
			}
		}
		placed := -1
		for b := len(blocks) - 1; b >= last && b >= 0; b-- {
			if fits(blocks[b], op.Qubits) {
				placed = b
				break
			}
		}
		if placed == -1 {
			blocks = append(blocks, &refBlock{qubits: map[int]bool{}})
			placed = len(blocks) - 1
		}
		blk := blocks[placed]
		for _, q := range op.Qubits {
			blk.qubits[q] = true
			lastTouch[q] = placed
		}
		blk.ops = append(blk.ops, op.Clone())
	}
	out := make([]Block, 0, len(blocks))
	for _, b := range blocks {
		qs := make([]int, 0, len(b.qubits))
		for q := range b.qubits {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		local := map[int]int{}
		for i, q := range qs {
			local[q] = i
		}
		bc := circuit.New(len(qs))
		for _, op := range b.ops {
			lq := make([]int, len(op.Qubits))
			for i, q := range op.Qubits {
				lq[i] = local[q]
			}
			if err := bc.Append(op.Name, lq, op.Params); err != nil {
				return nil, fmt.Errorf("partition: localize op %s: %w", op.Name, err)
			}
		}
		out = append(out, Block{Qubits: qs, Circuit: bc})
	}
	return out, nil
}

// sparseRandomCircuit exercises the closure logic's corner cases: idle
// qubits (never touched), qubits that go quiet early, and qubits that
// first appear late in the circuit.
func sparseRandomCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	active := 2 + rng.Intn(n-1)
	if active > n {
		active = n
	}
	for i := 0; i < ops; i++ {
		// Occasionally widen the active window so fresh qubits appear
		// mid-circuit; qubits beyond the final window stay idle forever.
		if active < n && rng.Intn(8) == 0 {
			active++
		}
		switch rng.Intn(5) {
		case 0:
			c.H(rng.Intn(active))
		case 1:
			c.RZ(rng.Intn(active), rng.Float64()*2*math.Pi)
		case 2:
			c.T(rng.Intn(active))
		default:
			if active < 2 {
				c.H(0)
				continue
			}
			a, b := rng.Intn(active), rng.Intn(active)
			for b == a {
				b = rng.Intn(active)
			}
			c.CX(a, b)
		}
	}
	return c
}

func blocksEqual(t *testing.T, tag string, got, want []Block) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d blocks, want %d", tag, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if len(g.Qubits) != len(w.Qubits) {
			t.Fatalf("%s: block %d qubits %v, want %v", tag, i, g.Qubits, w.Qubits)
		}
		for j := range g.Qubits {
			if g.Qubits[j] != w.Qubits[j] {
				t.Fatalf("%s: block %d qubits %v, want %v", tag, i, g.Qubits, w.Qubits)
			}
		}
		if g.Circuit.String() != w.Circuit.String() {
			t.Fatalf("%s: block %d circuit:\n%s\nwant:\n%s", tag, i, g.Circuit, w.Circuit)
		}
	}
}

// TestScanMatchesReference pins the rewritten scan core (sorted-slice
// qubit sets, op-index storage) block-for-block to the historical
// map-based implementation.
func TestScanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(8)
		ops := 1 + rng.Intn(120)
		maxSize := 2 + rng.Intn(3)
		c := sparseRandomCircuit(n, ops, rng)
		want, err := scanReference(c, maxSize)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Scan(c, maxSize)
		if err != nil {
			t.Fatal(err)
		}
		blocksEqual(t, fmt.Sprintf("trial %d (n=%d ops=%d bs=%d)", trial, n, ops, maxSize), got, want)
	}
}

// TestStreamEqualsScan is the streaming partitioner's central contract:
// same blocks, same order, same qubit sets as Scan, over randomized
// circuits including idle and late-appearing qubits.
func TestStreamEqualsScan(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(8)
		ops := 1 + rng.Intn(120)
		maxSize := 2 + rng.Intn(3)
		c := sparseRandomCircuit(n, ops, rng)
		want, err := Scan(c, maxSize)
		if err != nil {
			t.Fatal(err)
		}
		var got []Block
		if err := Stream(context.Background(), c, maxSize, func(b Block) error {
			got = append(got, b)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		blocksEqual(t, fmt.Sprintf("trial %d (n=%d ops=%d bs=%d)", trial, n, ops, maxSize), got, want)
	}
}

func TestCountMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		c := sparseRandomCircuit(n, 1+rng.Intn(100), rng)
		maxSize := 2 + rng.Intn(3)
		blocks, err := Scan(c, maxSize)
		if err != nil {
			t.Fatal(err)
		}
		count, err := Count(c, maxSize)
		if err != nil {
			t.Fatal(err)
		}
		if count != len(blocks) {
			t.Fatalf("trial %d: Count = %d, Scan produced %d blocks", trial, count, len(blocks))
		}
	}
}

// TestStreamEmitsBeforeScanEnd proves actual overlap: a saturated block
// whose qubits go quiet must be emitted while the scanner is still
// walking later gates — observed by cancelling the context from inside
// emit, which can only interrupt the remaining scan if the emit happened
// mid-scan.
func TestStreamEmitsBeforeScanEnd(t *testing.T) {
	c := circuit.New(4)
	c.CX(0, 1) // block 0: saturates {0,1}, then goes quiet
	for i := 0; i < 50; i++ {
		c.CX(2, 3)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emits := 0
	err := Stream(ctx, c, 2, func(b Block) error {
		emits++
		cancel()
		return nil
	})
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled (emission must happen mid-scan)", err)
	}
	if emits != 1 {
		t.Fatalf("emitted %d blocks before cancellation, want exactly the closed head block", emits)
	}
}

// TestStreamSaturatedHeadClosesEarly whiteboxes the closure rules: after
// the head block saturates and its qubits run out of ops, blockClosed
// must prove it closed even though idle qubits pin the global
// min-last-touch bound at zero.
func TestStreamSaturatedHeadClosesEarly(t *testing.T) {
	c := circuit.New(5) // qubit 4 stays idle: closedBefore alone never fires
	c.CX(0, 1)
	for i := 0; i < 10; i++ {
		c.CX(2, 3)
	}
	s, err := newScanner(c, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	s.place(0)
	// Qubits 0 and 1 have no ops left, so the saturated head block is
	// provably closed the moment its last op lands — no future op can be
	// a subset of {0,1}.
	if !s.blockClosed(0) {
		t.Fatal("saturated head block with exhausted qubits not proven closed")
	}
	if got := s.closedBefore(); got != 0 {
		t.Fatalf("closedBefore = %d; the idle qubit must pin the global bound at 0", got)
	}
	s.place(1) // first cx(2,3): opens block 1, still receiving ops
	if s.blockClosed(1) {
		t.Fatal("block 1 reported closed with ops on {2,3} still ahead")
	}
}

func TestStreamEmitErrorAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c := randomCircuit(5, 60, rng)
	sentinel := errors.New("stop")
	calls := 0
	err := Stream(context.Background(), c, 2, func(Block) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after returning an error", calls)
	}
}

func TestStreamCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := circuit.New(2)
	c.CX(0, 1)
	err := Stream(ctx, c, 2, func(Block) error {
		t.Fatal("emit called under a cancelled context")
		return nil
	})
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestStreamRejectsBadInput(t *testing.T) {
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	if err := Stream(context.Background(), c, 2, func(Block) error { return nil }); err == nil {
		t.Error("3-qubit op accepted into 2-qubit blocks")
	}
	if _, err := Count(c, 2); err == nil {
		t.Error("Count accepted a too-wide op")
	}
	if _, err := Count(c, 0); err == nil {
		t.Error("Count accepted maxSize 0")
	}
}

// benchCircuit is a deep many-qubit workload: the shape the streaming
// partitioner exists for.
func benchCircuit(n, ops int) *circuit.Circuit {
	rng := rand.New(rand.NewSource(99))
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), rng.Float64()*2*math.Pi)
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.CX(a, b)
		}
	}
	return c
}

func BenchmarkPartitionScan(b *testing.B) {
	c := benchCircuit(24, 8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scan(c, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionScanReference is the pre-PR map-based partitioner on
// the same workload: the "before" row of the scan hot-path fix.
func BenchmarkPartitionScanReference(b *testing.B) {
	c := benchCircuit(24, 8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scanReference(c, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionStream(b *testing.B) {
	c := benchCircuit(24, 8000)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := Stream(ctx, c, 3, func(Block) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitionCount(b *testing.B) {
	c := benchCircuit(24, 8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Count(c, 3); err != nil {
			b.Fatal(err)
		}
	}
}
