package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algos"
	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/sim"
)

func randomCircuit(n, ops int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < ops; i++ {
		switch rng.Intn(5) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.RZ(rng.Intn(n), rng.Float64()*2*math.Pi)
		case 2:
			c.RY(rng.Intn(n), rng.Float64()*2*math.Pi)
		default:
			a, b := rng.Intn(n), rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.CX(a, b)
		}
	}
	return c
}

func TestScanBlockSizeRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCircuit(6, 60, rng)
	blocks, err := Scan(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		if len(b.Qubits) > 3 {
			t.Errorf("block %d has %d qubits", i, len(b.Qubits))
		}
		if b.Circuit.NumQubits != len(b.Qubits) {
			t.Errorf("block %d circuit width mismatch", i)
		}
	}
}

func TestScanAllOpsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomCircuit(5, 40, rng)
	blocks, err := Scan(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range blocks {
		total += b.Circuit.Size()
	}
	if total != c.Size() {
		t.Errorf("blocks hold %d ops, original has %d", total, c.Size())
	}
}

func TestScanReassembleExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		c := randomCircuit(4, 30, rng)
		blocks, err := Scan(c, 3)
		if err != nil {
			t.Fatal(err)
		}
		re, err := Reassemble(4, blocks)
		if err != nil {
			t.Fatal(err)
		}
		if !linalg.EqualApprox(sim.Unitary(c), sim.Unitary(re), 1e-9) {
			t.Errorf("trial %d: reassembled circuit differs", trial)
		}
	}
}

func TestScanRejectsTooWideOp(t *testing.T) {
	c := circuit.New(3)
	c.CCX(0, 1, 2)
	if _, err := Scan(c, 2); err == nil {
		t.Error("3-qubit op accepted into 2-qubit blocks")
	}
	if _, err := Scan(c, 0); err == nil {
		t.Error("maxSize 0 accepted")
	}
}

func TestScanSingleBlockWhenSmall(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.CX(1, 2)
	blocks, err := Scan(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Errorf("got %d blocks, want 1", len(blocks))
	}
}

func TestScanPaperExampleShape(t *testing.T) {
	// Fig. 3-style circuit: 4 qubits, 3-qubit blocks. Gates confined to
	// qubits {0,1,2} then {1,2,3} must give exactly two blocks.
	c := circuit.New(4)
	c.CX(0, 1)
	c.CX(1, 2)
	c.CX(2, 3)
	c.CX(1, 3)
	blocks, err := Scan(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(blocks))
	}
	if len(blocks[0].Qubits) != 3 || blocks[0].Qubits[0] != 0 {
		t.Errorf("block 0 qubits = %v", blocks[0].Qubits)
	}
	if len(blocks[1].Qubits) != 3 || blocks[1].Qubits[0] != 1 {
		t.Errorf("block 1 qubits = %v", blocks[1].Qubits)
	}
}

func TestScanDisjointOpsShareBlocksWhenPossible(t *testing.T) {
	// Interleaved ops on {0,1} and {2,3} with 4-qubit blocks: one block.
	c := circuit.New(4)
	c.CX(0, 1)
	c.CX(2, 3)
	c.CX(0, 1)
	c.CX(2, 3)
	blocks, err := Scan(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Errorf("got %d blocks, want 1", len(blocks))
	}
}

func TestScanOnBenchmarks(t *testing.T) {
	for _, name := range algos.Names() {
		c, err := algos.Generate(name, 6)
		if err != nil {
			t.Fatal(err)
		}
		blocks, err := Scan(c, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		re, err := Reassemble(c.NumQubits, blocks)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !linalg.EqualApprox(sim.Unitary(c), sim.Unitary(re), 1e-9) {
			t.Errorf("%s: reassembly changed the unitary", name)
		}
	}
}

func TestPropScanReassembleUnitaryEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(2)
		c := randomCircuit(n, 25, r)
		maxSize := 2 + r.Intn(2)
		blocks, err := Scan(c, maxSize)
		if err != nil {
			return false
		}
		for _, b := range blocks {
			if len(b.Qubits) > maxSize {
				return false
			}
		}
		re, err := Reassemble(n, blocks)
		if err != nil {
			return false
		}
		return linalg.EqualApprox(sim.Unitary(c), sim.Unitary(re), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestReassembleEmptyBlocks(t *testing.T) {
	re, err := Reassemble(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Size() != 0 || re.NumQubits != 3 {
		t.Errorf("empty reassembly = %v", re)
	}
}
