package mitigation

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]Confusion{{Eps01: -0.1}}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := New([]Confusion{{Eps01: 0.5, Eps10: 0.5}}); err == nil {
		t.Error("singular confusion accepted")
	}
	if _, err := NewUniform(3, 0.02); err != nil {
		t.Errorf("valid uniform mitigator rejected: %v", err)
	}
}

func TestApplyLengthCheck(t *testing.T) {
	m, _ := NewUniform(2, 0.1)
	if _, err := m.Apply([]float64{1, 0}); err == nil {
		t.Error("wrong-length distribution accepted")
	}
}

func TestExactInversionOfReadoutChannel(t *testing.T) {
	// Apply the readout channel analytically, then mitigate: must
	// recover the original distribution exactly.
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.RY(2, 0.7)
	truth := sim.Probabilities(c)
	corrupted := noise.ApplyReadoutError(truth, 3, 0.08)
	m, err := NewUniform(3, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Apply(corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if tvd := metrics.TVD(truth, got); tvd > 1e-10 {
		t.Errorf("mitigation did not invert readout channel: TVD %g", tvd)
	}
}

func TestMitigationImprovesNoisyRun(t *testing.T) {
	c := circuit.New(2)
	for i := 0; i < 4; i++ {
		c.RY(0, 0.4)
		c.CX(0, 1)
		c.RY(1, 0.3)
	}
	truth := sim.Probabilities(c)
	nm := noise.Model{ReadoutError: 0.06}
	raw := nm.Run(c, noise.Options{Seed: 3})
	m, _ := NewUniform(2, 0.06)
	fixed, err := m.Apply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.TVD(truth, fixed) >= metrics.TVD(truth, raw) {
		t.Errorf("mitigation did not improve: raw %g, fixed %g",
			metrics.TVD(truth, raw), metrics.TVD(truth, fixed))
	}
}

func TestMitigationWithShotNoiseClips(t *testing.T) {
	// With finite shots the inverse can produce negatives; the result
	// must still be a valid distribution close to the truth.
	c := circuit.New(2)
	c.H(0)
	c.CX(0, 1)
	truth := sim.Probabilities(c)
	nm := noise.Model{ReadoutError: 0.05}
	raw := nm.Run(c, noise.Options{Seed: 5, Shots: 4096})
	m, _ := NewUniform(2, 0.05)
	fixed, err := m.Apply(raw)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range fixed {
		if v < 0 {
			t.Fatal("mitigated distribution has negative entries")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mitigated distribution sums to %g", sum)
	}
	if metrics.TVD(truth, fixed) > 0.05 {
		t.Errorf("mitigated TVD %g too large", metrics.TVD(truth, fixed))
	}
}

func TestAsymmetricConfusion(t *testing.T) {
	// Asymmetric errors (realistic: 1->0 decay dominates).
	conf := []Confusion{{Eps01: 0.01, Eps10: 0.08}}
	m, err := New(conf)
	if err != nil {
		t.Fatal(err)
	}
	// Prepared |1>: measured distribution (0.08, 0.92).
	measured := []float64{0.08, 0.92}
	fixed, err := m.Apply(measured)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fixed[1]-1) > 1e-10 {
		t.Errorf("asymmetric mitigation: P(1) = %g, want 1", fixed[1])
	}
}

func TestMitigationRandomDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, _ := NewUniform(3, 0.1)
	for trial := 0; trial < 20; trial++ {
		p := make([]float64, 8)
		var s float64
		for i := range p {
			p[i] = rng.Float64()
			s += p[i]
		}
		for i := range p {
			p[i] /= s
		}
		corrupted := noise.ApplyReadoutError(p, 3, 0.1)
		fixed, err := m.Apply(corrupted)
		if err != nil {
			t.Fatal(err)
		}
		if tvd := metrics.TVD(p, fixed); tvd > 1e-9 {
			t.Fatalf("trial %d: inversion error %g", trial, tvd)
		}
	}
}
