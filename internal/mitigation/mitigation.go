// Package mitigation implements measurement-error mitigation: inverting
// the per-qubit readout confusion matrix on measured distributions. This
// is the standard complement to the noise package's readout model — on a
// distribution corrupted only by readout bit flips, mitigation recovers
// the true distribution exactly (up to shot noise and clipping).
package mitigation

import (
	"fmt"
	"math"
)

// Confusion describes one qubit's readout errors:
// P(read 1 | prepared 0) = Eps01 and P(read 0 | prepared 1) = Eps10.
type Confusion struct {
	Eps01 float64
	Eps10 float64
}

// Symmetric returns the confusion of a symmetric bit-flip channel with
// probability e.
func Symmetric(e float64) Confusion { return Confusion{Eps01: e, Eps10: e} }

// invertible reports whether the confusion matrix can be inverted.
func (c Confusion) invertible() bool {
	det := (1-c.Eps01)*(1-c.Eps10) - c.Eps01*c.Eps10
	return math.Abs(det) > 1e-12
}

// Mitigator corrects measured distributions on n qubits.
type Mitigator struct {
	conf []Confusion
}

// New builds a mitigator from per-qubit confusions.
func New(conf []Confusion) (*Mitigator, error) {
	for q, c := range conf {
		if c.Eps01 < 0 || c.Eps01 > 1 || c.Eps10 < 0 || c.Eps10 > 1 {
			return nil, fmt.Errorf("mitigation: qubit %d: probabilities out of range", q)
		}
		if !c.invertible() {
			return nil, fmt.Errorf("mitigation: qubit %d: confusion matrix singular", q)
		}
	}
	return &Mitigator{conf: append([]Confusion(nil), conf...)}, nil
}

// NewUniform builds a mitigator for n qubits with the same symmetric
// readout error e on each (matching noise.Model.ReadoutError).
func NewUniform(n int, e float64) (*Mitigator, error) {
	conf := make([]Confusion, n)
	for i := range conf {
		conf[i] = Symmetric(e)
	}
	return New(conf)
}

// Apply corrects a measured distribution in place-free fashion: it applies
// the inverse confusion matrix per qubit, then clips negatives (a shot-
// noise artifact) and renormalizes. The input must have length 2^n for the
// mitigator's n qubits.
func (m *Mitigator) Apply(p []float64) ([]float64, error) {
	n := len(m.conf)
	if len(p) != 1<<n {
		return nil, fmt.Errorf("mitigation: distribution length %d != 2^%d", len(p), n)
	}
	out := append([]float64(nil), p...)
	for q, c := range m.conf {
		// Inverse of [[1-e01, e10], [e01, 1-e10]].
		det := (1-c.Eps01)*(1-c.Eps10) - c.Eps01*c.Eps10
		i00 := (1 - c.Eps10) / det
		i01 := -c.Eps10 / det
		i10 := -c.Eps01 / det
		i11 := (1 - c.Eps01) / det
		bit := 1 << q
		for k := range out {
			if k&bit != 0 {
				continue
			}
			a, b := out[k], out[k|bit]
			out[k] = i00*a + i01*b
			out[k|bit] = i10*a + i11*b
		}
	}
	// Clip and renormalize (inverse confusion can leave small negatives
	// on finite-shot histograms).
	var sum float64
	for i, v := range out {
		if v < 0 {
			out[i] = 0
		} else {
			sum += v
		}
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out, nil
}
