// Package hamiltonian provides the materials-simulation substrate behind
// the paper's TFIM/Heisenberg/XY workloads (generated there with ArQTiC):
// Pauli-string Hamiltonians, expectation values, matrix construction, and
// first- and second-order Trotterized time-evolution circuits.
package hamiltonian

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
)

// Term is one weighted Pauli string: Coefficient · P_0 ⊗ P_1 ⊗ ... where
// Paulis maps qubit index → 'X', 'Y' or 'Z' (identity elsewhere).
type Term struct {
	// Coefficient is the term's real weight (Hamiltonians are Hermitian).
	Coefficient float64
	// Paulis maps qubit → Pauli letter ('X', 'Y', 'Z').
	Paulis map[int]byte
}

// Clone returns a deep copy of the term.
func (t Term) Clone() Term {
	p := make(map[int]byte, len(t.Paulis))
	for q, b := range t.Paulis {
		p[q] = b
	}
	return Term{Coefficient: t.Coefficient, Paulis: p}
}

// qubits returns the term's sorted support.
func (t Term) qubits() []int {
	qs := make([]int, 0, len(t.Paulis))
	for q := range t.Paulis {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	return qs
}

// String renders the term like "0.5·XZ[0,2]".
func (t Term) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%g·", t.Coefficient)
	qs := t.qubits()
	for _, q := range qs {
		b.WriteByte(t.Paulis[q])
	}
	fmt.Fprintf(&b, "%v", qs)
	return b.String()
}

// Hamiltonian is a sum of Pauli-string terms on NumQubits qubits.
type Hamiltonian struct {
	NumQubits int
	Terms     []Term
}

// New returns an empty Hamiltonian on n qubits.
func New(n int) *Hamiltonian { return &Hamiltonian{NumQubits: n} }

// Add appends a term, validating its support and Pauli letters.
func (h *Hamiltonian) Add(coeff float64, paulis map[int]byte) error {
	if len(paulis) == 0 {
		return fmt.Errorf("hamiltonian: empty Pauli string")
	}
	cp := make(map[int]byte, len(paulis))
	for q, p := range paulis {
		if q < 0 || q >= h.NumQubits {
			return fmt.Errorf("hamiltonian: qubit %d out of range [0,%d)", q, h.NumQubits)
		}
		if p != 'X' && p != 'Y' && p != 'Z' {
			return fmt.Errorf("hamiltonian: bad Pauli %q", string(p))
		}
		cp[q] = p
	}
	h.Terms = append(h.Terms, Term{Coefficient: coeff, Paulis: cp})
	return nil
}

// MustAdd is Add that panics on error (for literal model definitions).
func (h *Hamiltonian) MustAdd(coeff float64, paulis map[int]byte) {
	if err := h.Add(coeff, paulis); err != nil {
		panic(err)
	}
}

// TFIM returns the open-chain transverse-field Ising Hamiltonian
// H = -J Σ Z_i Z_{i+1} - g Σ X_i.
func TFIM(n int, j, g float64) *Hamiltonian {
	h := New(n)
	for q := 0; q+1 < n; q++ {
		h.MustAdd(-j, map[int]byte{q: 'Z', q + 1: 'Z'})
	}
	for q := 0; q < n; q++ {
		h.MustAdd(-g, map[int]byte{q: 'X'})
	}
	return h
}

// Heisenberg returns H = -J Σ (XX + YY + ZZ) - g Σ Z on an open chain.
func Heisenberg(n int, j, g float64) *Hamiltonian {
	h := New(n)
	for q := 0; q+1 < n; q++ {
		h.MustAdd(-j, map[int]byte{q: 'X', q + 1: 'X'})
		h.MustAdd(-j, map[int]byte{q: 'Y', q + 1: 'Y'})
		h.MustAdd(-j, map[int]byte{q: 'Z', q + 1: 'Z'})
	}
	if g != 0 {
		for q := 0; q < n; q++ {
			h.MustAdd(-g, map[int]byte{q: 'Z'})
		}
	}
	return h
}

// XY returns H = -J Σ (XX + YY) on an open chain.
func XY(n int, j float64) *Hamiltonian {
	h := New(n)
	for q := 0; q+1 < n; q++ {
		h.MustAdd(-j, map[int]byte{q: 'X', q + 1: 'X'})
		h.MustAdd(-j, map[int]byte{q: 'Y', q + 1: 'Y'})
	}
	return h
}

var pauliMatrices = map[byte]*linalg.Matrix{
	'X': gate.PauliX,
	'Y': gate.PauliY,
	'Z': gate.PauliZ,
}

// Matrix builds the dense 2^n x 2^n Hamiltonian matrix (n ≲ 12).
func (h *Hamiltonian) Matrix() *linalg.Matrix {
	dim := 1 << h.NumQubits
	out := linalg.New(dim, dim)
	for _, t := range h.Terms {
		m := linalg.FromRows([][]complex128{{complex(t.Coefficient, 0)}})
		// Build qubit-by-qubit from the most significant qubit down so
		// qubit 0 is the least significant bit of the basis index.
		for q := h.NumQubits - 1; q >= 0; q-- {
			factor := linalg.Identity(2)
			if p, ok := t.Paulis[q]; ok {
				factor = pauliMatrices[p]
			}
			m = linalg.Kron(m, factor)
		}
		out = linalg.Add(out, m)
	}
	return out
}

// Expectation returns <ψ|H|ψ> for a statevector.
func (h *Hamiltonian) Expectation(state linalg.Vector) float64 {
	hv := linalg.ApplyMatrix(h.Matrix(), state)
	return real(linalg.Dot(state, hv))
}

// evolveTerm appends exp(-i·coeff·dt·P) for one Pauli string to the
// circuit: basis changes into Z, a CNOT ladder, RZ(2·coeff·dt), and the
// inverse ladder/basis changes.
func evolveTerm(c *circuit.Circuit, t Term, dt float64) {
	qs := t.qubits()
	// Basis change: X → H, Y → S† then H (so that the Pauli becomes Z).
	for _, q := range qs {
		switch t.Paulis[q] {
		case 'X':
			c.H(q)
		case 'Y':
			c.Sdg(q)
			c.H(q)
		}
	}
	// Parity ladder onto the last qubit.
	for i := 0; i+1 < len(qs); i++ {
		c.CX(qs[i], qs[i+1])
	}
	c.RZ(qs[len(qs)-1], 2*t.Coefficient*dt)
	for i := len(qs) - 2; i >= 0; i-- {
		c.CX(qs[i], qs[i+1])
	}
	for _, q := range qs {
		switch t.Paulis[q] {
		case 'X':
			c.H(q)
		case 'Y':
			c.H(q)
			c.S(q)
		}
	}
}

// Trotter returns `steps` first-order Trotter steps of exp(-iHt) with
// t = steps·dt: each step applies exp(-i·term·dt) for every term in order.
func (h *Hamiltonian) Trotter(steps int, dt float64) *circuit.Circuit {
	c := circuit.New(h.NumQubits)
	for s := 0; s < steps; s++ {
		for _, t := range h.Terms {
			evolveTerm(c, t, dt)
		}
	}
	return c
}

// Trotter2 returns `steps` second-order (Strang) Trotter steps: half-steps
// of the terms forward then backward, halving the Trotter error order.
func (h *Hamiltonian) Trotter2(steps int, dt float64) *circuit.Circuit {
	c := circuit.New(h.NumQubits)
	for s := 0; s < steps; s++ {
		for _, t := range h.Terms {
			evolveTerm(c, t, dt/2)
		}
		for i := len(h.Terms) - 1; i >= 0; i-- {
			evolveTerm(c, h.Terms[i], dt/2)
		}
	}
	return c
}

// ExactEvolution returns the exact evolution operator exp(-iHt) computed
// by scaling-and-squaring with a Taylor series (dense; n ≲ 10).
func (h *Hamiltonian) ExactEvolution(t float64) *linalg.Matrix {
	m := h.Matrix()
	// Scale so the argument is small, Taylor-expand, then square back.
	norm := m.FrobeniusNorm() * t
	squarings := 0
	for norm > 0.5 {
		norm /= 2
		squarings++
	}
	scale := t
	for i := 0; i < squarings; i++ {
		scale /= 2
	}
	dim := m.Rows
	// exp(-i·scale·M) via Taylor to machine precision.
	result := linalg.Identity(dim)
	term := linalg.Identity(dim)
	for k := 1; k <= 30; k++ {
		term = linalg.Mul(term, linalg.Scale(complex(0, -scale/float64(k)), m))
		result = linalg.Add(result, term)
		if term.FrobeniusNorm() < 1e-16 {
			break
		}
	}
	for i := 0; i < squarings; i++ {
		result = linalg.Mul(result, result)
	}
	return result
}
