package hamiltonian

import (
	"math"
	"testing"

	"repro/internal/algos"
	"repro/internal/linalg"
	"repro/internal/sim"
)

func TestAddValidation(t *testing.T) {
	h := New(2)
	if err := h.Add(1, nil); err == nil {
		t.Error("empty Pauli string accepted")
	}
	if err := h.Add(1, map[int]byte{5: 'Z'}); err == nil {
		t.Error("out-of-range qubit accepted")
	}
	if err := h.Add(1, map[int]byte{0: 'Q'}); err == nil {
		t.Error("bad Pauli letter accepted")
	}
	if err := h.Add(1, map[int]byte{0: 'Z', 1: 'X'}); err != nil {
		t.Errorf("valid term rejected: %v", err)
	}
}

func TestMatrixSingleZ(t *testing.T) {
	// H = Z on qubit 0 of 2: diag(+1,-1,+1,-1) with q0 = LSB.
	h := New(2)
	h.MustAdd(1, map[int]byte{0: 'Z'})
	m := h.Matrix()
	want := []float64{1, -1, 1, -1}
	for k := 0; k < 4; k++ {
		if math.Abs(real(m.At(k, k))-want[k]) > 1e-12 {
			t.Errorf("H[%d][%d] = %v, want %g", k, k, m.At(k, k), want[k])
		}
	}
}

func TestMatrixHermitian(t *testing.T) {
	h := Heisenberg(3, 1, 0.5)
	m := h.Matrix()
	if !linalg.EqualApprox(m, m.Dagger(), 1e-12) {
		t.Error("Hamiltonian matrix not Hermitian")
	}
}

func TestExpectationGroundState(t *testing.T) {
	// TFIM with J=1, g=0: |0000> is a ground state with energy -(n-1)·J
	// (all ZZ bonds aligned, coefficient -J each).
	h := TFIM(4, 1, 0)
	e := h.Expectation(linalg.BasisVector(16, 0))
	if math.Abs(e-(-3)) > 1e-12 {
		t.Errorf("TFIM |0000> energy = %g, want -3", e)
	}
}

func TestTrotterMatchesAlgosTFIM(t *testing.T) {
	// The hamiltonian-built first-order Trotter circuit must implement
	// the same unitary as the hand-written algos.TFIM generator.
	n, steps, dt := 3, 2, 0.1
	ours := TFIM(n, 1, 1).Trotter(steps, dt)
	theirs := algos.TFIM(n, steps, dt, 1, 1)
	d := linalg.HSDistance(sim.Unitary(ours), sim.Unitary(theirs))
	if d > 1e-6 {
		t.Errorf("hamiltonian TFIM Trotter differs from algos.TFIM: HS %g", d)
	}
}

func TestTrotterMatchesAlgosHeisenberg(t *testing.T) {
	n, steps, dt := 3, 2, 0.1
	ours := Heisenberg(n, 1, 1).Trotter(steps, dt)
	theirs := algos.Heisenberg(n, steps, dt, 1, 1)
	d := linalg.HSDistance(sim.Unitary(ours), sim.Unitary(theirs))
	if d > 1e-6 {
		t.Errorf("hamiltonian Heisenberg Trotter differs from algos: HS %g", d)
	}
}

func TestTrotterMatchesAlgosXY(t *testing.T) {
	n, steps, dt := 3, 2, 0.15
	ours := XY(n, 1).Trotter(steps, dt)
	theirs := algos.XY(n, steps, dt, 1)
	d := linalg.HSDistance(sim.Unitary(ours), sim.Unitary(theirs))
	if d > 1e-6 {
		t.Errorf("hamiltonian XY Trotter differs from algos: HS %g", d)
	}
}

func TestExactEvolutionUnitary(t *testing.T) {
	h := TFIM(3, 1, 1)
	u := h.ExactEvolution(0.7)
	if !u.IsUnitary(1e-9) {
		t.Error("exp(-iHt) not unitary")
	}
	// t = 0 → identity.
	if !linalg.EqualApprox(h.ExactEvolution(0), linalg.Identity(8), 1e-9) {
		t.Error("exp(0) != I")
	}
}

func TestTrotterConvergesToExact(t *testing.T) {
	h := TFIM(3, 1, 1)
	const totalT = 0.4
	exact := h.ExactEvolution(totalT)
	var prev float64 = math.Inf(1)
	for _, steps := range []int{1, 4, 16, 64} {
		c := h.Trotter(steps, totalT/float64(steps))
		d := linalg.HSDistance(exact, sim.Unitary(c))
		if d > prev+1e-9 {
			t.Errorf("Trotter error grew with more steps: %g -> %g", prev, d)
		}
		prev = d
	}
	if prev > 0.01 {
		t.Errorf("64-step Trotter error %g still large", prev)
	}
}

func TestTrotter2MoreAccurateThanTrotter1(t *testing.T) {
	h := Heisenberg(3, 1, 0.5)
	const totalT = 0.6
	exact := h.ExactEvolution(totalT)
	steps := 4
	d1 := linalg.HSDistance(exact, sim.Unitary(h.Trotter(steps, totalT/float64(steps))))
	d2 := linalg.HSDistance(exact, sim.Unitary(h.Trotter2(steps, totalT/float64(steps))))
	if d2 >= d1 {
		t.Errorf("second-order Trotter (%g) not better than first-order (%g)", d2, d1)
	}
}

func TestEvolveTermYBasis(t *testing.T) {
	// exp(-i·θ·Y) on one qubit must equal RY(2θ).
	h := New(1)
	h.MustAdd(0.3, map[int]byte{0: 'Y'})
	c := h.Trotter(1, 1)
	u := sim.Unitary(c)
	want := h.ExactEvolution(1)
	if d := linalg.HSDistance(u, want); d > 1e-9 {
		t.Errorf("Y-term evolution distance %g", d)
	}
}

func TestEnergyConservationUnderExactEvolution(t *testing.T) {
	h := TFIM(3, 1, 1)
	u := h.ExactEvolution(0.9)
	state := linalg.BasisVector(8, 3)
	e0 := h.Expectation(state)
	e1 := h.Expectation(linalg.ApplyMatrix(u, state))
	if math.Abs(e0-e1) > 1e-9 {
		t.Errorf("energy not conserved: %g -> %g", e0, e1)
	}
}

func TestTermString(t *testing.T) {
	tm := Term{Coefficient: 0.5, Paulis: map[int]byte{2: 'Z', 0: 'X'}}
	if got := tm.String(); got != "0.5·XZ[0 2]" {
		t.Errorf("Term.String = %q", got)
	}
}
