package analysis

// A forward may-union dataflow engine over the CFGs built in cfg.go.
//
// Facts are small sets of string tokens (a held lock, an unsynced file,
// an unjoined goroutine, an acquired pool slot). The join at merge
// points is set union, which makes every client a *may* analysis: a
// token present at a program point means "true on at least one path
// reaching here". The analyzers want exactly that polarity —
//
//   - lockflow: a lock that MAY still be held at a return is a leak on
//     the path that held it;
//   - fsyncorder: a journal write that MAY be unsynced at a success
//     return breaks fsync-before-ack on that path;
//   - goroleak: tracking "unjoined" (token added at the go statement,
//     removed at each join) turns must-join into may-unjoined — a token
//     surviving to Exit names a path that skipped the join;
//   - poolnonest: a slot that MAY be held at a nested acquisition is a
//     deadlock candidate.
//
// The fixpoint is a classic worklist: blocks are re-queued while their
// entry fact grows. Union facts over finite token sets grow
// monotonically, so termination is immediate.

import (
	"go/ast"
	"sort"
)

// A tokenSet is a dataflow fact: a set of string tokens.
type tokenSet map[string]bool

func (s tokenSet) clone() tokenSet {
	out := make(tokenSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// addAll unions other into s and reports whether s grew.
func (s tokenSet) addAll(other tokenSet) bool {
	grew := false
	for k := range other {
		if !s[k] {
			s[k] = true
			grew = true
		}
	}
	return grew
}

// sorted returns the tokens in deterministic order (for reports).
func (s tokenSet) sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// A flowResult holds the fixpoint of one analysis over one CFG.
type flowResult struct {
	cfg      *CFG
	in       []tokenSet // fact at each block's entry
	transfer func(fact tokenSet, n ast.Node)
}

// runFlow computes the forward may-union fixpoint of transfer over c.
// transfer mutates fact in place to reflect the effect of one node; it
// must be deterministic and must not retain fact.
func runFlow(c *CFG, transfer func(fact tokenSet, n ast.Node)) *flowResult {
	r := &flowResult{cfg: c, in: make([]tokenSet, len(c.Blocks)), transfer: transfer}
	for i := range r.in {
		r.in[i] = tokenSet{}
	}
	// Only blocks reachable from the entry participate: statements after
	// an unconditional return are dropped at construction, but control
	// statements there still build (disconnected) subgraphs whose edges
	// into Exit must not pollute the exit fact.
	reach := r.reachable()
	var work []*Block
	inWork := make([]bool, len(c.Blocks))
	for _, blk := range c.Blocks {
		if reach[blk.Index] {
			work = append(work, blk)
			inWork[blk.Index] = true
		}
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false
		out := r.in[blk.Index].clone()
		for _, n := range blk.Nodes {
			transfer(out, n)
		}
		for _, succ := range blk.Succs {
			if r.in[succ.Index].addAll(out) && !inWork[succ.Index] {
				work = append(work, succ)
				inWork[succ.Index] = true
			}
		}
	}
	return r
}

// visit replays the transfer over every reachable block, calling f with
// the fact holding immediately BEFORE each node. Facts passed to f are
// live scratch — f must not retain them.
func (r *flowResult) visit(f func(fact tokenSet, n ast.Node)) {
	reach := r.reachable()
	for _, blk := range r.cfg.Blocks {
		if !reach[blk.Index] {
			continue
		}
		fact := r.in[blk.Index].clone()
		for _, n := range blk.Nodes {
			f(fact, n)
			r.transfer(fact, n)
		}
	}
}

// exitFact returns the fact at the synthetic Exit block's entry — the
// union over every path that falls off the end or returns.
func (r *flowResult) exitFact() tokenSet {
	return r.in[r.cfg.Exit.Index]
}

// reachable marks blocks reachable from the entry block.
func (r *flowResult) reachable() []bool {
	seen := make([]bool, len(r.cfg.Blocks))
	var stack []*Block
	if len(r.cfg.Blocks) > 0 {
		stack = append(stack, r.cfg.Blocks[0])
		seen[0] = true
	}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// flowInspect visits the sub-expressions of one CFG node, honoring the
// graph's containment rules: a *ast.RangeStmt node stands for the
// per-iteration fetch, so only its X is visited (Body statements live in
// their own blocks); nested *ast.FuncLit bodies are never entered (each
// literal has its own CFG); *ast.DeferStmt calls are never entered
// either — they run at function exit, not at the defer statement, and
// analyzers model them through CFG.Defers.
func flowInspect(n ast.Node, f func(ast.Node) bool) {
	if rng, ok := n.(*ast.RangeStmt); ok {
		flowInspect(rng.X, f)
		return
	}
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case nil:
			return true
		}
		return f(n)
	})
}

// funcBodies walks a file and yields every function body with its
// declaring node: FuncDecls plus every nested FuncLit (each analyzed as
// its own function, matching the CFG containment rules). fnName is the
// declared name for FuncDecls and "" for literals.
func funcBodies(file *ast.File, f func(fnName string, ftype *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				f(n.Name.Name, n.Type, n.Body)
			}
		case *ast.FuncLit:
			f("", n.Type, n.Body)
		}
		return true
	})
}
