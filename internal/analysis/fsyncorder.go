package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FsyncOrder enforces the fsync-before-ack rule in the durability
// packages (internal/jobs, internal/ucache): a journal write must reach
// stable storage before the operation reports success. Concretely, on
// every path of a function body, a Write/WriteString/WriteAt on an
// *os.File must be followed by a Sync on the same file — either the
// method itself or a seam function whose name contains "sync" taking the
// file as its first argument (the packages' syncJournal/syncFile test
// seams) — before a `return nil` acknowledges the operation.
//
// The check fires only at returns whose final result is the literal nil
// in a function whose last result is an error: error returns (`return
// j.err`, `return fmt.Errorf(...)`) are failure paths where the write is
// moot, and void functions (ucache's best-effort appendRecord, which
// deliberately skips the sync and is re-written on the next rewrite) are
// out of scope by construction. Close is NOT a sync: close(2) does not
// guarantee durability.
var FsyncOrder = &Analyzer{
	Name: "fsyncorder",
	Doc: "in internal/jobs and internal/ucache, every journal write must " +
		"be Synced on all paths before success is returned (fsync-before-ack)",
	Run: runFsyncOrder,
}

func runFsyncOrder(pass *Pass) error {
	if !pkgPathWithin(pass.Pkg.Path, "jobs", "ucache") {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(_ string, ftype *ast.FuncType, body *ast.BlockStmt) {
			if !lastResultIsError(info, ftype) {
				return
			}
			fsyncOrderBody(pass, info, body)
		})
	}
	return nil
}

func fsyncOrderBody(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	cfg := FuncCFG(info, body)

	// A deferred sync runs before the function's caller can observe the
	// return, which still orders sync before ack.
	deferredSyncs := tokenSet{}
	for _, d := range cfg.Defers {
		if key, ok := syncedFileKey(info, d.Call); ok {
			deferredSyncs[key] = true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, ok := syncedFileKey(info, call); ok {
						deferredSyncs[key] = true
					}
				}
				return true
			})
		}
	}

	transfer := func(fact tokenSet, n ast.Node) {
		flowInspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, ok := dirtyFileKey(info, call); ok {
				fact[key] = true
			}
			if key, ok := syncedFileKey(info, call); ok {
				delete(fact, key)
			}
			return true
		})
	}
	flow := runFlow(cfg, transfer)

	flow.visit(func(fact tokenSet, n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || !returnsNil(info, ret) {
			return
		}
		// The return's own expressions run before the return: a
		// `return f.Sync()`-style ack would be clean, but so would a
		// sync buried in the result list — apply the node's transfer
		// before judging.
		at := fact.clone()
		transfer(at, ret)
		for _, key := range at.sorted() {
			if !deferredSyncs[key] {
				pass.Reportf(ret.Pos(), "%s written but not synced on this path before returning success (fsync-before-ack)", key)
			}
		}
	})
}

// dirtyFileKey classifies a call as a write to an *os.File, returning
// the file's receiver key.
func dirtyFileKey(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteAt":
	default:
		return "", false
	}
	recv := callReceiver(call)
	if recv == nil || !isOSFileExpr(info, recv) {
		return "", false
	}
	key := receiverKey(recv)
	if key == "" {
		return "", false
	}
	return key, true
}

// syncedFileKey classifies a call as a durability barrier for a file:
// file.Sync(), or seam(file, ...) where the callee object's name
// contains "sync" (the packages' syncJournal/syncFile variables).
func syncedFileKey(info *types.Info, call *ast.CallExpr) (string, bool) {
	if fn := calleeFunc(info, call); fn != nil && fn.Name() == "Sync" {
		if recv := callReceiver(call); recv != nil && isOSFileExpr(info, recv) {
			if key := receiverKey(recv); key != "" {
				return key, true
			}
		}
	}
	// Seam form: the callee may be a func-typed variable, which
	// calleeFunc does not resolve — classify by the named object.
	var callee types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee = info.Uses[fun]
	case *ast.SelectorExpr:
		callee = info.Uses[fun.Sel]
	}
	if callee == nil || !strings.Contains(strings.ToLower(callee.Name()), "sync") {
		return "", false
	}
	if len(call.Args) == 0 || !isOSFileExpr(info, call.Args[0]) {
		return "", false
	}
	if key := receiverKey(call.Args[0]); key != "" {
		return key, true
	}
	return "", false
}

// isOSFileExpr reports whether e's type is *os.File or os.File.
func isOSFileExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File"
}

// lastResultIsError reports whether the function's final result type is
// error.
func lastResultIsError(info *types.Info, ftype *ast.FuncType) bool {
	if ftype.Results == nil || len(ftype.Results.List) == 0 {
		return false
	}
	last := ftype.Results.List[len(ftype.Results.List)-1]
	tv, ok := info.Types[last.Type]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// returnsNil reports whether the return's final result is the untyped
// nil literal — the success acknowledgment the check gates. Bare returns
// and non-nil expressions (err, fmt.Errorf) are failure or indeterminate
// paths and stay unflagged: the analysis under-approximates rather than
// guess a named result's value.
func returnsNil(info *types.Info, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	id, ok := last.(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
