package analysis

// Call-site summaries: per-function facts computed from a callee's body
// and memoized on the Loader, so flow-sensitive analyzers can answer
// "does this call transitively do X" without whole-program analysis.
// A summary is computed once per *types.Func no matter how many packages
// call it — the Loader already memoizes packages, and the summary cache
// rides on it. Calls that cannot be resolved statically (function
// values, interface methods, packages outside the loaded tree such as
// the standard library) summarize as empty: the analyzers consciously
// under-approximate there, the same trade every linter makes.

import (
	"go/ast"
	"go/types"
	"strings"
)

// A funcSummary records the call-relevant facts of one function body.
type funcSummary struct {
	// poolOps is true when the body itself calls (*par.Pool).Acquire or
	// (*par.Pool).ForEachErr (directly, including inside nested literals
	// — a literal defined here runs with this function's pool discipline
	// unless it is itself a slot callback, which the analyzer checks at
	// its own call site).
	poolOps bool
	// callees are the statically resolved functions the body calls.
	callees []*types.Func
	// callbackParams are indices of this function's own parameters that
	// the body hands to a Pool slot (passed as the fn argument of
	// Pool.ForEachErr, or forwarded into another wrapper's callback
	// parameter): arguments at these positions run under a pool slot.
	callbackParams []int
	// wgFieldDone is true when the body calls Done (possibly deferred)
	// on a sync.WaitGroup that is a struct field: the goroutine's
	// lifecycle is owned by the struct (joined wherever the struct's
	// Wait lives), which goroleak accepts as managed.
	wgFieldDone bool
	// usesContext is true when the body references a context.Context
	// value: the goroutine observes cancellation.
	usesContext bool
}

// summaries is the per-loader memo. A nil entry marks an in-progress
// computation (call cycle): treated as empty, which terminates the
// recursion with an under-approximation.
func (l *Loader) summary(fn *types.Func) *funcSummary {
	if l.sums == nil {
		l.sums = map[*types.Func]*funcSummary{}
	}
	if s, ok := l.sums[fn]; ok {
		if s == nil {
			return &funcSummary{} // cycle: under-approximate
		}
		return s
	}
	l.sums[fn] = nil // in progress
	s := l.computeSummary(fn)
	l.sums[fn] = s
	return s
}

func (l *Loader) computeSummary(fn *types.Func) *funcSummary {
	s := &funcSummary{}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if pkgPath == "" {
		return s
	}
	if _, ok := l.resolve(pkgPath); !ok {
		return s // outside the loaded tree (stdlib): empty summary
	}
	pkg, err := l.Load(pkgPath)
	if err != nil {
		return s
	}
	decl := pkg.funcDecl(fn)
	if decl == nil || decl.Body == nil {
		return s
	}
	info := pkg.Info

	// Parameter objects, for callbackParams detection.
	paramIndex := map[types.Object]int{}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			paramIndex[sig.Params().At(i)] = i
		}
	}

	seenCallee := map[*types.Func]bool{}
	markCallbackArg := func(arg ast.Expr) {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if i, ok := paramIndex[info.Uses[id]]; ok {
				s.callbackParams = append(s.callbackParams, i)
			}
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(info, n)
			if callee == nil {
				return true
			}
			if isPoolSlotOp(callee) {
				s.poolOps = true
				if callee.Name() == "ForEachErr" && len(n.Args) == 3 {
					markCallbackArg(n.Args[2])
				}
				return true
			}
			if callee != fn && !seenCallee[callee] {
				seenCallee[callee] = true
				s.callees = append(s.callees, callee)
			}
			// Forwarding a parameter into another wrapper's callback slot.
			for _, ci := range l.summary(callee).callbackParams {
				if ci < len(n.Args) {
					markCallbackArg(n.Args[ci])
				}
			}
			if isWaitGroupDone(info, n) && isFieldSelector(info, n) {
				s.wgFieldDone = true
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				s.usesContext = true
			}
		}
		return true
	})
	return s
}

// reachesPoolOp reports whether fn, or anything it statically calls,
// performs a Pool slot operation.
func (l *Loader) reachesPoolOp(fn *types.Func) bool {
	return l.reachesPool(fn, map[*types.Func]bool{})
}

func (l *Loader) reachesPool(fn *types.Func, seen map[*types.Func]bool) bool {
	if seen[fn] {
		return false
	}
	seen[fn] = true
	s := l.summary(fn)
	if s.poolOps {
		return true
	}
	for _, c := range s.callees {
		if l.reachesPool(c, seen) {
			return true
		}
	}
	return false
}

// funcDecl finds the FuncDecl declaring fn inside the package's files,
// matched by the declaration position of the function's name.
func (p *Package) funcDecl(fn *types.Func) *ast.FuncDecl {
	for _, file := range p.Files {
		if file.Pos() > fn.Pos() || fn.Pos() > file.End() {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
				return fd
			}
		}
	}
	return nil
}

// isPoolSlotOp reports whether fn is (*par.Pool).Acquire or
// (*par.Pool).ForEachErr — the two ways code takes slots from the shared
// scheduler. Matching is structural (method named Acquire/ForEachErr on
// a type named Pool in an internal/par package) so fixture modules can
// impersonate the real pool.
func isPoolSlotOp(fn *types.Func) bool {
	if fn.Name() != "Acquire" && fn.Name() != "ForEachErr" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" || named.Obj().Pkg() == nil {
		return false
	}
	return pkgPathWithin(named.Obj().Pkg().Path(), "par")
}

// isSyncMethod reports whether call invokes the named method of the
// given sync package type (e.g. "WaitGroup", "Done").
func isSyncTypeMethod(info *types.Info, call *ast.CallExpr, typeName, method string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == typeName
}

func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	return isSyncTypeMethod(info, call, "WaitGroup", "Done")
}

func isWaitGroupWait(info *types.Info, call *ast.CallExpr) bool {
	return isSyncTypeMethod(info, call, "WaitGroup", "Wait")
}

// isFieldSelector reports whether the call's receiver expression roots
// in a struct field access (x.f.Method() with f a field), as opposed to
// a plain local/package variable.
func isFieldSelector(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := info.Selections[recv]; ok {
		return s.Kind() == types.FieldVal
	}
	return false
}

// receiverKey renders a stable intra-function key for the receiver of a
// method call (m.mu.Lock() -> "m.mu") or any expression naming a value.
// Purely textual: within one function body the same spelling names the
// same value for the patterns the analyzers track.
func receiverKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := receiverKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := receiverKey(e.X)
		if base == "" {
			return ""
		}
		return base + "[...]"
	case *ast.StarExpr:
		return receiverKey(e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return receiverKey(e.X)
		}
	case *ast.CallExpr:
		// Method chains through calls (reg().mu) have no stable name.
		return ""
	}
	return ""
}

// callReceiver returns the receiver expression of a method-style call
// (x.M(...) -> x), or nil.
func callReceiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// strippedName strips a package qualifier for diagnostics.
func funcDisplayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil && !strings.Contains(fn.Name(), ".") {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
