package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// LockFlow tracks sync.Mutex/RWMutex acquisition along every path of a
// function body and reports the two lock-discipline breaks PR 6–7 code
// reviews caught by hand:
//
//  1. a return path that can exit with the lock still held (an early
//     return between Lock and Unlock, with no deferred unlock);
//  2. a lock held across a blocking operation — a channel send/receive,
//     a range over a channel, a select without a default, a
//     WaitGroup.Wait, or a par.Pool slot call (Acquire/ForEachErr) —
//     which extends the critical section by an unbounded wait and is
//     one unlucky interleaving away from deadlock.
//
// Locks are keyed by the receiver's spelling (m.mu, q.mu), write and
// read modes separately; a matching `defer mu.Unlock()` anywhere in the
// body excuses exit paths (the runtime releases on every return).
// sync.Cond.Wait is deliberately NOT a blocking operation here: Wait
// requires the caller to hold the lock (internal/jobs' queue does
// exactly that), and a select with a default never blocks.
var LockFlow = &Analyzer{
	Name: "lockflow",
	Doc: "no return path may exit with a sync.Mutex/RWMutex held, and no " +
		"lock may be held across a channel operation or blocking pool call",
	Run: runLockFlow,
}

func runLockFlow(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			lockFlowBody(pass, info, body)
		})
	}
	return nil
}

func lockFlowBody(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// Quick reject: no lock calls, no analysis.
	if !mentionsLockCall(info, body) {
		return
	}
	nonBlocking := nonBlockingComms(body)
	cfg := FuncCFG(info, body)

	// Deferred unlocks excuse exit paths. A deferred closure releases
	// whatever it unlocks too (defer func() { mu.Unlock() }()).
	deferredUnlocks := tokenSet{}
	for _, d := range cfg.Defers {
		if tok, isAcquire := lockToken(info, d.Call); tok != "" && !isAcquire {
			deferredUnlocks[tok] = true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if tok, isAcquire := lockToken(info, call); tok != "" && !isAcquire {
						deferredUnlocks[tok] = true
					}
				}
				return true
			})
		}
	}

	transfer := func(fact tokenSet, n ast.Node) {
		flowInspect(n, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if tok, isAcquire := lockToken(info, call); tok != "" {
					if isAcquire {
						fact[tok] = true
					} else {
						delete(fact, tok)
					}
				}
			}
			return true
		})
	}
	flow := runFlow(cfg, transfer)

	reported := map[string]bool{}
	report := func(pos ast.Node, format string, args ...any) {
		key := strconvPos(pass.Pkg, pos.Pos()) + format
		if !reported[key] {
			reported[key] = true
			pass.Reportf(pos.Pos(), format, args...)
		}
	}

	flow.visit(func(fact tokenSet, n ast.Node) {
		if len(fact) > 0 {
			held := lockDisplay(fact.sorted()[0])
			for _, op := range blockingOps(info, n, nonBlocking) {
				report(op.node, "%s held across %s, a blocking operation", held, op.what)
			}
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, tok := range fact.sorted() {
				if !deferredUnlocks[tok] {
					report(ret, "return may leave %s held (no unlock on this path; consider defer)", lockDisplay(tok))
				}
			}
		}
	})

	// Fall-off-the-end exits: blocks that edge to Exit without a return.
	reach := flow.reachable()
	for _, blk := range cfg.Blocks {
		if !reach[blk.Index] || !hasSucc(blk, cfg.Exit) {
			continue
		}
		if n := len(blk.Nodes); n > 0 {
			if _, isRet := blk.Nodes[n-1].(*ast.ReturnStmt); isRet {
				continue
			}
		}
		out := flow.in[blk.Index].clone()
		for _, n := range blk.Nodes {
			transfer(out, n)
		}
		for _, tok := range out.sorted() {
			if !deferredUnlocks[tok] {
				pos := cfg.End
				if !reported["end"+tok] {
					reported["end"+tok] = true
					pass.Reportf(pos, "function may end with %s held (no unlock on this path; consider defer)", lockDisplay(tok))
				}
			}
		}
	}
}

// A blockingOp is one operation that can block indefinitely.
type blockingOp struct {
	node ast.Node
	what string
}

// blockingOps lists the blocking operations a CFG node performs,
// skipping comm statements that belong to a select with a default.
func blockingOps(info *types.Info, n ast.Node, nonBlocking map[ast.Node]bool) []blockingOp {
	if nonBlocking[n] {
		return nil
	}
	if rng, ok := n.(*ast.RangeStmt); ok {
		if rangedChannelObj(info, rng) != nil || isChanExpr(info, rng.X) {
			return []blockingOp{{rng, "a range over a channel"}}
		}
		return nil
	}
	var out []blockingOp
	flowInspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			out = append(out, blockingOp{n, "a channel send"})
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				out = append(out, blockingOp{n, "a channel receive"})
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			switch {
			case isPoolSlotOp(fn):
				out = append(out, blockingOp{n, "Pool." + fn.Name() + " (waits for a slot)"})
			case isWaitGroupWait(info, n):
				out = append(out, blockingOp{n, "WaitGroup.Wait"})
			}
		}
		return true
	})
	return out
}

// nonBlockingComms collects the comm statements of every select that has
// a default clause: those channel operations never block.
func nonBlockingComms(body *ast.BlockStmt) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
				out[cc.Comm] = true
			}
		}
		return true
	})
	return out
}

// lockToken classifies a call as a lock acquisition or release on a
// sync.Mutex/RWMutex, returning the held-token ("" when neither) and
// whether it acquires. Tokens carry the receiver spelling and the mode:
// "m.mu|W" for Lock/Unlock, "m.mu|R" for RLock/RUnlock.
func lockToken(info *types.Info, call *ast.CallExpr) (token string, isAcquire bool) {
	var mode string
	var acquire bool
	switch {
	case isSyncLockMethod(info, call, "Lock"):
		mode, acquire = "W", true
	case isSyncLockMethod(info, call, "Unlock"):
		mode, acquire = "W", false
	case isSyncLockMethod(info, call, "RLock"):
		mode, acquire = "R", true
	case isSyncLockMethod(info, call, "RUnlock"):
		mode, acquire = "R", false
	default:
		return "", false
	}
	recv := callReceiver(call)
	if recv == nil {
		return "", false
	}
	key := receiverKey(recv)
	if key == "" {
		return "", false
	}
	return key + "|" + mode, acquire
}

func isSyncLockMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	return isSyncTypeMethod(info, call, "Mutex", name) ||
		isSyncTypeMethod(info, call, "RWMutex", name)
}

func lockDisplay(token string) string {
	for i := len(token) - 1; i >= 0; i-- {
		if token[i] == '|' {
			if token[i+1:] == "R" {
				return token[:i] + " (read lock)"
			}
			return token[:i]
		}
	}
	return token
}

func mentionsLockCall(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if tok, _ := lockToken(info, call); tok != "" {
				found = true
			}
		}
		return true
	})
	return found
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func hasSucc(blk, target *Block) bool {
	for _, s := range blk.Succs {
		if s == target {
			return true
		}
	}
	return false
}

func strconvPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return p.Filename + ":" + strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Column)
}
