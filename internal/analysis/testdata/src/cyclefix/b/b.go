// Package b completes the import cycle with package a.
package b

import "cyclefix/a"

var V = a.V
