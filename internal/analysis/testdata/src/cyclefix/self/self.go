// Package self imports itself: the loader must diagnose the
// one-package cycle instead of recursing.
package self

import "cyclefix/self"

var V = self.V
