// Package a imports b which imports a: the loader must diagnose the
// cycle instead of recursing forever. (The go tool never builds testdata,
// so this deliberately-illegal pair only ever meets our loader.)
package a

import "cyclefix/b"

var V = b.V
