// Package zerofix exercises the zerosentinel analyzer: exported
// Config/Options fields whose docs declare the zero value legitimate or
// meaningful need a <Field>Set bool sentinel.
package zerofix

// Config drives the fixture pipeline.
type Config struct {
	// CXWeight is the objective weight on CNOT count. CXWeight = 0 is a
	// legitimate setting; because it coincides with the zero value it
	// must be requested explicitly.
	CXWeight float64 // want `CXWeight documents a meaningful zero value but has no CXWeightSet bool sentinel`

	// Gamma is the damping weight. A zero Gamma is a meaningful
	// configuration (damping off), selected by raising GammaSet.
	Gamma float64
	// GammaSet marks Gamma as explicitly chosen.
	GammaSet bool

	// Budget is the iteration budget; 0 means the default. (No marker
	// word: zero is not a distinct setting, so no sentinel is needed.)
	Budget int

	// quiet is unexported; the convention covers the public surface.
	// A zero quiet is a meaningful setting.
	quiet float64
}

// Options tunes the fixture solver.
type Options struct {
	// Tol is the match tolerance. A 0 tolerance is meaningful: it
	// selects strict bit-reproducible matching.
	Tol float64 // want `Tol documents a meaningful zero value but has no TolSet bool sentinel`
}

// SweepConfig's suffix also puts it under the convention.
type SweepConfig struct {
	// Step of 0 is a legitimate request for adaptive stepping.
	Step float64 // want `Step documents a meaningful zero value but has no StepSet bool sentinel`
}

// Runner is not a Config/Options type, so the convention does not apply.
type Runner struct {
	// Rate of 0 is a legitimate setting.
	Rate float64
}

type hidden struct {
	// Knob of 0 is a legitimate setting (unexported struct: skipped).
	Knob float64
}

// Capabilities-suffixed descriptors joined the convention with the
// noise-aware selection work: a zero capability profile can be a real
// declaration (an error-free device), not an absent one.
type DeviceCapabilities struct {
	// ErrorRate's zero value is a meaningful declaration (an error-free
	// gate class), so it needs its sentinel.
	ErrorRate float64 // want `ErrorRate documents a meaningful zero value but has no ErrorRateSet bool sentinel`

	// Routed reports coupling-map routing; 0/false is just "not routed",
	// no sentinel required.
	Routed bool
}

// NoiseProfile-suffixed structs are likewise covered.
type NoiseProfile struct {
	// Readout of zero is a legitimate setting (perfect measurement),
	// raised via ReadoutSet.
	Readout float64
	// ReadoutSet marks Readout as explicitly declared.
	ReadoutSet bool

	// SPAM of zero is a meaningful setting (no preparation error).
	SPAM float64 // want `SPAM documents a meaningful zero value but has no SPAMSet bool sentinel`
}
