// Package use exercises the errwrap analyzer against the fixture budget
// sentinels.
package use

import (
	"errors"
	"fmt"

	"errfix/internal/budget"
)

func Classify(err error) error {
	if err == budget.ErrDeadline { // want `ErrDeadline compared with ==`
		return nil
	}
	if budget.ErrCancelled != err { // want `ErrCancelled compared with !=`
		return nil
	}
	switch err {
	case budget.ErrNoConvergence: // want `switch case on ErrNoConvergence`
		return nil
	case nil:
		return nil
	}
	if errors.Is(err, budget.ErrDeadline) { // errors.Is: the correct form
		return fmt.Errorf("stage: %w", budget.ErrDeadline) // %w wrap: fine
	}
	if err == budget.NotASentinel { // not an Err* sentinel: fine
		return nil
	}
	return nil
}

func Wraps(attempt int) error {
	if attempt > 3 {
		return fmt.Errorf("gave up after %d attempts: %w", attempt, budget.ErrNoConvergence) // fine
	}
	return fmt.Errorf("stage: %v", budget.ErrDeadline) // want `ErrDeadline must be wrapped with %w \(got %v\)`
}

func Forgot(n int) error {
	return fmt.Errorf("gave up", budget.ErrNoConvergence) // want `ErrNoConvergence must be wrapped with %w \(got none\)`
}

func Dynamic(format string) error {
	return fmt.Errorf(format, budget.ErrCancelled) // want `ErrCancelled passed to fmt.Errorf with a non-constant format`
}

func OrdinaryErrors(err error) bool {
	return err == errReuse // plain sentinels in ordinary packages: fine
}

var errReuse = errors.New("reuse")
