// Package budget is a stand-in for repro/internal/budget: the errwrap
// analyzer recognizes sentinels by the internal/budget path suffix and
// the Err name prefix, so this fixture package exercises exactly that
// matching without importing the real tree.
package budget

import "errors"

var (
	ErrDeadline      = errors.New("deadline exceeded")
	ErrCancelled     = errors.New("cancelled")
	ErrNoConvergence = errors.New("no convergence")
)

// NotASentinel lacks the Err prefix.
var NotASentinel = errors.New("not a sentinel")
