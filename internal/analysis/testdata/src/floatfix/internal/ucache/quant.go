// Package ucache impersonates the quantization layer: float equality is
// by design here (keys are rounded to a grid so == is exact), so the
// floateq analyzer exempts the package (no want comments).
package ucache

func QuantizedEqual(a, b float64) bool {
	return a == b
}
