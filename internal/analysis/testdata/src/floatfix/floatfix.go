// Package floatfix exercises the floateq analyzer.
package floatfix

import "math"

type Sample struct{ V float64 }

func Compare(a, b float64, c complex128, n int) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if a != 1.5 { // want `floating-point != comparison`
		return true
	}
	if c == 2i { // want `floating-point == comparison`
		return true
	}
	if a == 0 { // exact-zero guard: fine
		return true
	}
	if c != 0 { // exact-zero guard: fine
		return true
	}
	if n == 1 { // integers: fine
		return true
	}
	if a != a { // want `floating-point != comparison`
		return math.IsNaN(a)
	}
	const x, y = 1.5, 2.5
	return x == y // both compile-time constants: fine
}

func Fields(s, t Sample) bool {
	return s.V == t.V // want `floating-point == comparison`
}
