// Package use exercises the ctxprop analyzer: every function that holds
// a context.Context must keep it flowing to context-aware callees.
package use

import (
	"context"

	"ctxfix/dep"
)

func work() {}

func workCtx(ctx context.Context) {}

func WithCtx(ctx context.Context) {
	dep.Run()                    // want `Run has a context-aware sibling RunCtx`
	_ = dep.RunCtx(ctx)          // correct variant: fine
	dep.Plain()                  // no sibling: fine
	dep.Solve()                  // SolveCtx's first param is not a context: fine
	work()                       // want `work has a context-aware sibling workCtx`
	ctx2 := context.Background() // want `context\.Background discards the context already in scope`
	_ = ctx2
	_ = context.TODO() // want `context\.TODO discards the context already in scope`
}

func Methods(ctx context.Context) {
	var e dep.Engine
	e.Minimize() // want `Minimize has a context-aware sibling MinimizeCtx`
	e.Start()    // want `Start has a context-aware sibling StartCtx`
	e.Stop()     // no sibling: fine
	_ = e.MinimizeCtx(ctx)
}

// NoCtx holds no context, so calling the plain variants (and minting a
// root context) is exactly what a non-Ctx wrapper does.
func NoCtx() {
	dep.Run()
	_ = dep.RunCtx(context.Background())
}

func Literals(ctx context.Context) {
	capture := func() {
		dep.Run() // want `Run has a context-aware sibling RunCtx`
	}
	capture()
	ownCtx := func(ctx context.Context) {
		dep.Run() // want `Run has a context-aware sibling RunCtx`
	}
	ownCtx(ctx)
}

// LiteralInPlainFunc: a literal with its own ctx parameter is governed
// by that parameter even when the enclosing function has none.
func LiteralInPlainFunc() {
	f := func(ctx context.Context) {
		dep.Run() // want `Run has a context-aware sibling RunCtx`
	}
	f(context.Background())
}
