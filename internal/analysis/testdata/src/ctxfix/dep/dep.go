// Package dep supplies the callee side of the ctxprop fixture: pairs of
// functions and methods with and without Ctx variants.
package dep

import "context"

func Run() {}

func RunCtx(ctx context.Context) error { return ctx.Err() }

// Plain has no Ctx sibling.
func Plain() {}

// Solve's lookalike sibling takes its context in the wrong position, so
// it is not a context-aware variant.
func Solve() {}

func SolveCtx(n int, ctx context.Context) {}

type Engine struct{}

func (Engine) Minimize() {}

func (Engine) MinimizeCtx(ctx context.Context) error { return ctx.Err() }

func (*Engine) Start() {}

func (*Engine) StartCtx(ctx context.Context) error { return ctx.Err() }

// Stop has no Ctx sibling.
func (*Engine) Stop() {}
