// Package ignorefix exercises the lint:ignore suppression rules through
// the floateq analyzer: a directive on the offending line or directly
// above it suppresses the finding; anything farther away does not.
package ignorefix

func SameLine(a, b float64) bool {
	return a == b // lint:ignore floateq golden values are compared bit-exactly on purpose
}

func LineAbove(a, b float64) bool {
	// lint:ignore floateq quantized inputs are bit-identical by construction
	return a == b
}

func TooFarAway(a, b float64) bool {
	// lint:ignore floateq this directive is two lines up and must not apply

	return a == b // want `floating-point == comparison`
}

func OtherCheck(a, b float64) bool {
	// lint:ignore determinism a directive for a different check must not apply
	return a == b // want `floating-point == comparison`
}
