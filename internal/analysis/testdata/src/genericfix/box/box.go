// Package box is a generic dependency for the loader tests: the source
// importer must type-check instantiations across package boundaries.
package box

type Box[T any] struct {
	v  T
	ok bool
}

func New[T any](v T) *Box[T] {
	return &Box[T]{v: v, ok: true}
}

func (b *Box[T]) Get() (T, bool) {
	return b.v, b.ok
}

func Map[T, U any](in []T, f func(T) U) []U {
	out := make([]U, len(in))
	for i, v := range in {
		out[i] = f(v)
	}
	return out
}

type Number interface {
	~int | ~int64 | ~float64
}

func Sum[T Number](in []T) T {
	var total T
	for _, v := range in {
		total += v
	}
	return total
}
