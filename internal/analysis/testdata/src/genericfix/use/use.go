// Package use instantiates the generic sibling package through the
// loader's importer, exercising generics over a nested package layout.
package use

import "genericfix/box"

func Lengths(words []string) []int {
	return box.Map(words, func(w string) int { return len(w) })
}

func Total(xs []float64) float64 {
	return box.Sum(xs)
}

func Boxed(v string) (string, bool) {
	b := box.New(v)
	return b.Get()
}
