// Package use seeds no-nesting violations against the fixture Pool plus
// the clean idioms poolnonest must accept.
package use

import (
	"context"

	"poolfix/internal/par"
)

var shared = par.NewPool(4)

func inner(ctx context.Context, i int) error { return nil }

func doWork(i int) {}

// A callback that re-enters the pool directly.
func direct(ctx context.Context, p *par.Pool) error {
	return p.ForEachErr(ctx, 8, func(ctx context.Context, i int) error {
		return p.ForEachErr(ctx, 2, inner) // want `pool slot callback re-enters the pool via Pool\.ForEachErr`
	})
}

// ...or through one level of helper.
func throughHelper(ctx context.Context, p *par.Pool) error {
	return p.ForEachErr(ctx, 8, func(ctx context.Context, i int) error {
		return nested(ctx, p) // want `pool slot callback calls use\.nested, which transitively acquires from the pool`
	})
}

func nested(ctx context.Context, p *par.Pool) error {
	return p.ForEachErr(ctx, 2, inner)
}

// A named callback handed through a wrapper: the wrapper forwards its fn
// parameter into ForEachErr, so its callers' arguments run under a slot.
func runAll(ctx context.Context, p *par.Pool, n int, fn func(ctx context.Context, i int) error) error {
	return p.ForEachErr(ctx, n, fn)
}

func viaWrapper(ctx context.Context, p *par.Pool) error {
	return runAll(ctx, p, 4, poolReenter) // want `use\.poolReenter runs under a pool slot and transitively acquires from the pool`
}

func poolReenter(ctx context.Context, i int) error {
	if err := shared.Acquire(ctx); err != nil {
		return err
	}
	defer shared.Release()
	doWork(i)
	return nil
}

// Clean: a well-behaved callback through the same wrapper.
func viaWrapperClean(ctx context.Context, p *par.Pool) error {
	return runAll(ctx, p, 4, inner)
}

// Manual Acquire/Release region: calls inside must not reach the pool.
func heldRegion(ctx context.Context, p *par.Pool) error {
	if err := p.Acquire(ctx); err != nil {
		return err
	}
	err := nested(ctx, p) // want `use\.nested called while a pool slot is held, and it transitively acquires from the pool`
	p.Release()
	return err
}

func heldRegionDirect(ctx context.Context, p *par.Pool) error {
	if err := p.Acquire(ctx); err != nil {
		return err
	}
	err := p.ForEachErr(ctx, 2, inner) // want `Pool\.ForEachErr called while a pool slot is held`
	p.Release()
	return err
}

// Clean: the canonical acquire-retry loop (a failed Acquire continues to
// the next attempt) with pool-free work under the slot.
func cleanRegion(ctx context.Context, p *par.Pool, n int) error {
	for i := 0; i < n; i++ {
		if err := p.Acquire(ctx); err != nil {
			continue
		}
		doWork(i)
		p.Release()
	}
	return nil
}

// Clean: releasing before re-entering the pool is allowed.
func releaseThenReenter(ctx context.Context, p *par.Pool) error {
	if err := p.Acquire(ctx); err != nil {
		return err
	}
	doWork(0)
	p.Release()
	return nested(ctx, p)
}
