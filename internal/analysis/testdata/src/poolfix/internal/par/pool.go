// Package par impersonates the real internal/par Pool so the poolnonest
// fixtures exercise the structural Pool matching (method set + package
// path segment) without importing the repo's own tree.
package par

import "context"

// Pool is a bounded slot scheduler; see the real internal/par for the
// full semantics. The no-nesting rule under test: code running under a
// slot must not acquire from the pool again.
type Pool struct {
	slots chan struct{}
}

func NewPool(n int) *Pool {
	p := &Pool{slots: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		p.slots <- struct{}{}
	}
	return p
}

func (p *Pool) Size() int { return cap(p.slots) }

func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case <-p.slots:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) Release() { p.slots <- struct{}{} }

func (p *Pool) ForEachErr(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	for i := 0; i < n; i++ {
		if err := p.Acquire(ctx); err != nil {
			return err
		}
		err := fn(ctx, i)
		p.Release()
		if err != nil {
			return err
		}
	}
	return nil
}
