// Package outofscope repeats the determinism violations in a package
// path outside internal/{synth,pipeline,noise,sim,linalg,ucache}: the
// analyzer must stay silent here (no want comments).
package outofscope

import (
	"math/rand"
	"time"
)

func Timing() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func GlobalSource() float64 {
	return rand.Float64()
}

func MapOrder(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
