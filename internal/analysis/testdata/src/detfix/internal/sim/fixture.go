// Package detsim is a determinism fixture that impersonates a package
// under internal/sim, so every check in the determinism analyzer is in
// scope.
package detsim

import (
	"math/rand"
	"sort"
	"time"
)

func Timing() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func GlobalSource(xs []int) float64 {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the global source`
	return rand.Float64()                                                 // want `rand\.Float64 draws from the global source`
}

func SeededStream(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors build seeded streams: fine
	return rng.Float64()
}

func MapOrder(m map[string]float64) ([]string, float64) {
	var keys []string
	total := 0.0
	for k, v := range m {
		keys = append(keys, k) // want `append to keys inside map iteration`
		total += v             // want `order-sensitive accumulation into total`
	}
	return keys, total
}

func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom: fine
	}
	sort.Strings(keys)
	return keys
}

func CountsAndLocals(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		var local []float64
		for _, v := range vs {
			local = append(local, v) // loop-local slice: fine
		}
		n += len(local) // integer accumulation is order-independent: fine
	}
	return n
}
