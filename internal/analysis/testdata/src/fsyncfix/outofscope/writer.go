// Package outofscope carries the same unsynced-ack pattern as the jobs
// fixture but lives outside internal/jobs and internal/ucache, where the
// fsync-before-ack rule does not apply: no findings.
package outofscope

import "os"

type sink struct {
	f *os.File
}

func (s *sink) append(payload []byte) error {
	if _, err := s.f.Write(payload); err != nil {
		return err
	}
	return nil
}
