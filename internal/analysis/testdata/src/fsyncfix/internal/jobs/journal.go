// Package jobs impersonates the real internal/jobs journal so the
// fsyncorder fixtures run against the package scope the check guards.
package jobs

import "os"

type journal struct {
	f *os.File
}

// syncJournal mirrors the real package's crash-test seam: a func-typed
// variable, not a method, so the analyzer must classify it by name.
var syncJournal = func(f *os.File) error { return f.Sync() }

// The canonical append: write, sync through the seam, then ack.
func (j *journal) appendGood(payload []byte) error {
	if _, err := j.f.Write(payload); err != nil {
		return err
	}
	if err := syncJournal(j.f); err != nil {
		return err
	}
	return nil
}

// Acking without any sync loses the record on power cut.
func (j *journal) appendBad(payload []byte) error {
	if _, err := j.f.Write(payload); err != nil {
		return err
	}
	return nil // want `j\.f written but not synced on this path`
}

// One branch skips the sync: only that path is a finding.
func (j *journal) appendBranchy(payload []byte, quick bool) error {
	if _, err := j.f.Write(payload); err != nil {
		return err
	}
	if quick {
		return nil // want `j\.f written but not synced on this path`
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	return nil
}

// Direct method sync is a barrier too.
func (j *journal) appendMethodSync(payload []byte) error {
	if _, err := j.f.Write(payload); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	return nil
}

// A deferred sync runs before the caller observes the return.
func (j *journal) appendDeferredSync(payload []byte) (err error) {
	defer func() {
		if serr := syncJournal(j.f); err == nil {
			err = serr
		}
	}()
	if _, err := j.f.Write(payload); err != nil {
		return err
	}
	return nil
}

// Close does not imply durability: close(2) flushes nothing to disk.
func (j *journal) writeAndClose(payload []byte) error {
	if _, err := j.f.Write(payload); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	return nil // want `j\.f written but not synced on this path`
}

// Void functions are out of scope: best-effort writes (the real
// ucache.appendRecord) carry no ack to order the sync against.
func (j *journal) bestEffort(payload []byte) {
	_, _ = j.f.Write(payload)
}

// Error paths are not acks: returning the write error unflagged.
func (j *journal) propagatesError(payload []byte) error {
	_, err := j.f.Write(payload)
	return err
}

// WriteString dirties the file the same way Write does.
func (j *journal) appendString(line string) error {
	if _, err := j.f.WriteString(line); err != nil {
		return err
	}
	return nil // want `j\.f written but not synced on this path`
}
