// Package lockflowfix seeds lock-discipline violations and the locking
// idioms lockflow must accept.
package lockflowfix

import (
	"errors"
	"sync"
)

func ready() bool { return false }

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	ch chan int
}

// An early return between Lock and Unlock leaks the lock.
func (c *counter) early(fail bool) error {
	c.mu.Lock()
	if fail {
		return errors.New("boom") // want `return may leave c\.mu held`
	}
	c.mu.Unlock()
	return nil
}

// defer excuses every exit path.
func (c *counter) deferred(fail bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fail {
		return errors.New("boom")
	}
	c.n++
	return nil
}

// Balanced lock/unlock with no return in between.
func (c *counter) balanced() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Unlocking on both branches is fine too.
func (c *counter) branchBalanced(fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errors.New("boom")
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// Read locks leak the same way.
func (c *counter) readEarly(fail bool) int {
	c.rw.RLock()
	if fail {
		return -1 // want `return may leave c\.rw \(read lock\) held`
	}
	v := c.n
	c.rw.RUnlock()
	return v
}

// A lock falling off the end of the function is held forever.
func (c *counter) fallOff(lock bool) {
	if lock {
		c.mu.Lock()
	}
} // want `function may end with c\.mu held`

// Channel operations under a lock stretch the critical section by an
// unbounded wait.
func (c *counter) sendUnderLock(v int) {
	c.mu.Lock()
	c.ch <- v // want `c\.mu held across a channel send`
	c.mu.Unlock()
}

func (c *counter) recvUnderLock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-c.ch // want `c\.mu held across a channel receive`
}

func (c *counter) rangeUnderLock() int {
	total := 0
	c.mu.Lock()
	for v := range c.ch { // want `c\.mu held across a range over a channel`
		total += v
	}
	c.mu.Unlock()
	return total
}

// A select without a default blocks; each armed case is a finding.
func (c *counter) selectUnderLock(stop chan struct{}) {
	c.mu.Lock()
	select {
	case v := <-c.ch: // want `c\.mu held across a channel receive`
		c.n += v
	case <-stop: // want `c\.mu held across a channel receive`
	}
	c.mu.Unlock()
}

// A select WITH a default never blocks: no finding.
func (c *counter) tryRecv() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-c.ch:
		return v, true
	default:
		return 0, false
	}
}

// Releasing before the channel op is the fix — and is clean.
func (c *counter) unlockThenSend(v int) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.ch <- v
}

// WaitGroup.Wait under a lock is a blocking join.
func (c *counter) waitUnderLock(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want `c\.mu held across WaitGroup\.Wait`
	c.mu.Unlock()
}

// sync.Cond.Wait REQUIRES the lock to be held: never a finding.
type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	work []int
}

func (q *queue) pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.work) == 0 {
		q.cond.Wait()
	}
	v := q.work[0]
	q.work = q.work[1:]
	return v
}
