// Package goroleakfix seeds goroutine-lifecycle violations and the
// managed idioms goroleak must accept.
package goroleakfix

import (
	"context"
	"errors"
	"sync"
)

func work() {}

func work2() error { return nil }

func ready() bool { return false }

// Unmanaged: no join, no cancellation.
func leakNoJoin() {
	go func() { // want `goroutine is neither joined nor cancellation-bounded`
		work()
	}()
}

func leakNamed() {
	go work() // want `goroutine is neither joined nor cancellation-bounded`
}

// Ctx-bounded bodies and launches are fine.
func ctxBounded(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

func ctxArg(ctx context.Context) {
	go helper(ctx)
}

func helper(ctx context.Context) { _ = ctx }

// A named callee whose body observes a context is fine too.
func namedCtxBody() {
	go pollLoop()
}

func pollLoop() {
	ctx := context.Background()
	<-ctx.Done()
}

// Local WaitGroup joined on every path.
func joinedEveryPath() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Local WaitGroup whose Wait an early return can skip.
func joinSkipped(fail bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine's join \(wg\) is skipped on some path to return`
		defer wg.Done()
		work()
	}()
	if fail {
		return errors.New("boom")
	}
	wg.Wait()
	return nil
}

// A deferred Wait joins on every exit, early returns included.
func deferredJoin(fail bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	defer wg.Wait()
	go func() {
		defer wg.Done()
		work()
	}()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// Result-channel join reaching every path.
func channelJoined() error {
	done := make(chan error, 1)
	go func() {
		done <- work2()
	}()
	return <-done
}

// ...and one an early return skips.
func channelJoinSkipped(fail bool) error {
	done := make(chan error, 1)
	go func() { // want `goroutine's join \(done\) is skipped on some path to return`
		done <- work2()
	}()
	if fail {
		return errors.New("boom")
	}
	return <-done
}

// Producer/consumer: the goroutine closes the channel, the function
// ranges to close.
func closeJoined() int {
	items := make(chan int)
	go func() {
		defer close(items)
		items <- 1
	}()
	total := 0
	for v := range items {
		total += v
	}
	return total
}

// Path-sensitivity through select: only one arm receives the done
// signal, so the other arm's path leaks.
func selectHalfJoined(stop chan struct{}) {
	done := make(chan struct{})
	go func() { // want `goroutine's join \(done\) is skipped on some path to return`
		work()
		close(done)
	}()
	select {
	case <-done:
	case <-stop:
	}
}

// Worker-feed: the goroutine ranges an outer channel, so its lifetime is
// bounded by the producer's close.
func workerFeed(items chan int) {
	go func() {
		for range items {
			work()
		}
	}()
}

// A done-channel receive from an enclosing scope bounds the goroutine.
func doneBounded(stop chan struct{}) {
	go func() {
		<-stop
		work()
	}()
}

// Object-managed: Done on a field WaitGroup; the owner's Close joins.
type mgr struct {
	wg sync.WaitGroup
}

func (m *mgr) spawnLit() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		work()
	}()
}

func (m *mgr) spawnNamed() {
	m.wg.Add(1)
	go m.worker()
}

func (m *mgr) worker() {
	defer m.wg.Done()
	work()
}

func (m *mgr) close() {
	m.wg.Wait()
}
