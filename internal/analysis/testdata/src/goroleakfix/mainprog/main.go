// Command mainprog exercises goroleak's main() exemption: goroutines
// launched directly from main are process-bounded and never reported.
package main

func serve() error { return nil }

func main() {
	errc := make(chan error, 1)
	go func() {
		errc <- serve()
	}()
	<-errc
}

// A non-main function in package main gets no exemption.
func alsoHere() {
	go serve() // want `goroutine is neither joined nor cancellation-bounded`
}
