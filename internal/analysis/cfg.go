package analysis

// Control-flow graphs over go/ast function bodies: the substrate for the
// flow-sensitive analyzers (goroleak, lockflow, fsyncorder, poolnonest).
// The construction is deliberately syntactic — no SSA, no virtual calls —
// because every invariant the analyzers encode is a "does every path from
// A reach B" question over one function body, and basic blocks over the
// AST answer it without any new dependency (the suite stays stdlib-only).
//
// Shape of the graph:
//
//   - Blocks[0] is the entry block; Exit is a synthetic block every
//     function exit (return, fall-off-the-end) edges into. Exit holds no
//     nodes.
//   - A block's Nodes are "simple" statements (assignments, expression
//     statements, sends, go/defer, returns, declarations) and the bare
//     condition/tag expressions of the control statements that end it.
//     A node never contains statements that live in another block, with
//     one documented exception: a *ast.RangeStmt appears in its loop-head
//     block to mark the per-iteration element fetch (a channel receive,
//     when ranging a channel) — clients must not recurse into its Body.
//     The flowInspect helper in dataflow.go encodes both rules.
//   - select statements put each comm clause's send/receive statement at
//     the head of that case's block, so path-sensitive analyses see the
//     channel operation only on the path that took the case.
//   - Calls to panic, os.Exit, log.Fatal* and runtime.Goexit terminate
//     their block with no successors: paths through them never reach
//     Exit, so "held at exit" style checks do not fire on crash paths.
//   - defer statements are ordinary nodes AND collected in Defers, since
//     their calls run at every exit; analyzers consult the list when
//     deciding what is released/joined on exit paths.
//
// break/continue (with labels), goto, fallthrough, labeled statements,
// if/else chains, for/range loops, switch/type-switch and select are all
// modeled. Nested function literals are NOT traversed: each literal gets
// its own CFG via FuncCFG.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Block is one basic block.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // Blocks[0] is the entry block
	Exit   *Block   // synthetic exit; every return edges here
	Defers []*ast.DeferStmt
	End    token.Pos // closing brace of the body, for fall-off-end reports
}

// FuncCFG builds the CFG of a function body. info may be nil; when given,
// it is used only to recognize terminating calls (panic/os.Exit/...).
func FuncCFG(info *types.Info, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{info: info, cfg: &CFG{End: body.End()}}
	entry := b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	b.jump(b.cfg.Exit)
	b.patchGotos()
	return b.cfg
}

type loopFrame struct {
	label            string
	breakTo, contTo  *Block
	isSwitchOrSelect bool // break applies, continue does not
}

type cfgBuilder struct {
	info   *types.Info
	cfg    *CFG
	cur    *Block // nil while the current point is unreachable
	loops  []loopFrame
	labels map[string]*Block   // label -> block starting the labeled stmt
	gotos  map[string][]*Block // pending gotos awaiting a label
	lstack []string            // labels attached to the next loop/switch
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// add appends a node to the current block (no-op while unreachable).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// jump edges the current block to target and leaves the point unreachable.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, target)
		b.cur = nil
	}
}

// startBlock opens a new current block reachable from the previous one.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The labeled statement starts its own block so goto/continue can
		// target it; loops/switches also register the label for their
		// break/continue frames.
		blk := b.startBlock()
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[s.Label.Name] = blk
		b.lstack = append(b.lstack, s.Label.Name)
		b.stmt(s.Stmt)
		// A non-loop labeled statement consumes the label.
		if n := len(b.lstack); n > 0 && b.lstack[n-1] == s.Label.Name {
			b.lstack = b.lstack[:n-1]
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		if cond == nil {
			return
		}
		// then branch
		b.cur = b.newBlock()
		cond.Succs = append(cond.Succs, b.cur)
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		// else branch
		var elseEnd *Block
		if s.Else != nil {
			b.cur = b.newBlock()
			cond.Succs = append(cond.Succs, b.cur)
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		// merge
		merge := b.newBlock()
		if s.Else == nil {
			cond.Succs = append(cond.Succs, merge)
		}
		for _, end := range []*Block{thenEnd, elseEnd} {
			if end != nil {
				end.Succs = append(end.Succs, merge)
			}
		}
		b.cur = merge

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		exit := b.newBlock()
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		if s.Cond != nil {
			head.Succs = append(head.Succs, exit)
		}
		post := b.newBlock()
		b.pushLoop(exit, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.jump(post)
		b.popLoop()
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.jump(head)
		b.cur = exit

	case *ast.RangeStmt:
		head := b.startBlock()
		// The RangeStmt node marks the per-iteration fetch; clients use
		// flowInspect, which visits only s.X.
		b.add(s)
		exit := b.newBlock()
		body := b.newBlock()
		head.Succs = append(head.Succs, body, exit)
		b.pushLoop(exit, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.jump(head)
		b.popLoop()
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body, nil)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.GoStmt, *ast.ExprStmt, *ast.SendStmt, *ast.AssignStmt,
		*ast.IncDecStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.add(s)
		if b.terminates(s) {
			b.cur = nil
		}

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	default:
		b.add(s)
	}
}

// caseClauses lowers a switch/type-switch body: the dispatch block edges
// to every case (and to the merge when there is no default); each case
// body ends at the merge, fallthrough edges into the next case's body.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, _ *types.Info) {
	dispatch := b.cur
	merge := b.newBlock()
	if dispatch == nil {
		b.cur = merge
		return
	}
	label := b.takeLabel()
	b.loops = append(b.loops, loopFrame{label: label, breakTo: merge, isSwitchOrSelect: true})

	hasDefault := false
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		clauses = append(clauses, cc)
		blk := b.newBlock()
		dispatch.Succs = append(dispatch.Succs, blk)
		caseBlocks = append(caseBlocks, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		dispatch.Succs = append(dispatch.Succs, merge)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		// fallthrough (always the last statement) edges to the next case.
		stmts := cc.Body
		fall := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				stmts, fall = stmts[:n-1], true
			}
		}
		b.stmtList(stmts)
		if fall && i+1 < len(caseBlocks) {
			b.jump(caseBlocks[i+1])
		} else {
			b.jump(merge)
		}
	}
	b.popLoop()
	b.cur = merge
}

// selectStmt lowers a select: the dispatch block edges to each comm
// clause's block, whose first node is the comm statement itself (the
// channel operation happens on that path only). A select without a
// default blocks until a case is ready, which is exactly how the edge
// structure reads.
func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	dispatch := b.cur
	merge := b.newBlock()
	if dispatch == nil {
		b.cur = merge
		return
	}
	label := b.takeLabel()
	b.loops = append(b.loops, loopFrame{label: label, breakTo: merge, isSwitchOrSelect: true})
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		blk := b.newBlock()
		dispatch.Succs = append(dispatch.Succs, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(merge)
	}
	b.popLoop()
	b.cur = merge
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if s.Label == nil || f.label == s.Label.Name {
				b.jump(f.breakTo)
				return
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if f.isSwitchOrSelect {
				continue
			}
			if s.Label == nil || f.label == s.Label.Name {
				b.jump(f.contTo)
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			if target, ok := b.labels[s.Label.Name]; ok {
				b.jump(target)
				return
			}
			// Forward goto: patch once the label is seen.
			if b.gotos == nil {
				b.gotos = map[string][]*Block{}
			}
			if b.cur != nil {
				b.gotos[s.Label.Name] = append(b.gotos[s.Label.Name], b.cur)
				b.cur = nil
			}
			return
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by caseClauses; a stray one ends the block.
		b.cur = nil
	}
}

func (b *cfgBuilder) patchGotos() {
	for name, srcs := range b.gotos {
		target, ok := b.labels[name]
		if !ok {
			target = b.cfg.Exit // malformed source; be lenient
		}
		for _, src := range srcs {
			src.Succs = append(src.Succs, target)
		}
	}
}

func (b *cfgBuilder) pushLoop(breakTo, contTo *Block) {
	b.loops = append(b.loops, loopFrame{label: b.takeLabel(), breakTo: breakTo, contTo: contTo})
}

func (b *cfgBuilder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

// takeLabel consumes the label attached to the statement being lowered.
func (b *cfgBuilder) takeLabel() string {
	if n := len(b.lstack); n > 0 {
		l := b.lstack[n-1]
		b.lstack = b.lstack[:n-1]
		return l
	}
	return ""
}

// terminates reports whether a simple statement never returns: a call to
// panic, os.Exit, log.Fatal*, or runtime.Goexit.
func (b *cfgBuilder) terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || b.info == nil {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := b.info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
			return true
		}
	}
	fn := calleeFunc(b.info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
	case "runtime":
		return fn.Name() == "Goexit"
	}
	return false
}
