// Package analysis is the repo's static-analysis framework: a small,
// stdlib-only (go/parser + go/types) analogue of golang.org/x/tools'
// analysis package, purpose-built to enforce the project invariants that
// PRs 1–4 established by hand and that golden tests only catch late:
//
//   - determinism: results are bit-reproducible for any Parallelism, so
//     the simulation/synthesis packages must not read wall clocks, the
//     global math/rand source, or map iteration order (see DESIGN.md §4b).
//   - ctxprop: a function holding a context.Context must not call the
//     non-Ctx variant of a callee that has one — the deadline-hole class
//     PR 2 closed by hand (DESIGN.md §4c).
//   - errwrap: internal/budget sentinels travel through fmt.Errorf %w
//     chains and are classified with errors.Is, never ==.
//   - zerosentinel: a Config/Options field documented as having a
//     meaningful zero value needs a <Field>Set bool sentinel (the
//     Config.CXWeight trap fixed in PR 4).
//   - floateq: no ==/!= on floating-point operands outside tests and the
//     ucache quantization code.
//
// A finding is suppressed by a `// lint:ignore <check> <reason>` comment
// on the offending line or the line directly above it; the reason is
// mandatory and `questlint -list-ignores` prints every suppression in
// the tree. The driver is cmd/questlint; `make lint` (part of
// `make verify`) runs it over the module.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one named check. Run inspects a fully type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name is the check identifier used in diagnostics and in the
	// suppression directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects pass.Pkg and calls pass.Reportf for each finding.
	// A non-nil error aborts the whole analysis run (reserved for
	// internal failures, not findings).
	Run func(pass *Pass) error
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding (or one directive error) with its source
// position.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Run applies every analyzer to every package, drops findings suppressed
// by lint:ignore directives, and returns the rest sorted by position
// (file, line, column, check). Malformed directives (missing check name
// or reason) surface as "lint" diagnostics — they cannot be suppressed.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, pkg.BadDirectives...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !pkg.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}

// Registry returns the project analyzers in stable order. cmd/questlint
// runs exactly this set; the suppression-hygiene test asserts that
// every suppression directive in the tree names one of these checks.
// The first five are the syntactic PR 1–4 invariants; the last four are
// the flow-sensitive PR 6–9 invariants built on the CFG/dataflow engine
// (cfg.go, dataflow.go, summary.go).
func Registry() []*Analyzer {
	return []*Analyzer{
		Determinism, CtxProp, ErrWrap, ZeroSentinel, FloatEq,
		Goroleak, LockFlow, FsyncOrder, PoolNoNest,
	}
}

// KnownCheck reports whether name is a registered analyzer name.
func KnownCheck(name string) bool {
	for _, a := range Registry() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// ValidateIgnores returns one "lint" diagnostic per lint:ignore
// directive whose check name is not in known. The driver calls this with
// the full registry so a typoed directive fails the lint run instead of
// silently suppressing nothing.
func ValidateIgnores(pkgs []*Package, known func(string) bool) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, ig := range pkg.Ignores {
			if !known(ig.Check) {
				out = append(out, Diagnostic{
					Check:   "lint",
					Pos:     ig.Pos,
					Message: fmt.Sprintf("lint:ignore names unknown check %q", ig.Check),
				})
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// StaleIgnores returns one "lint" diagnostic per suppression directive
// that excused nothing during a Run: the analyzer it names ran (per the
// ran predicate) yet produced no finding on the directive's line, so the
// suppression has outlived its reason and must be deleted. Call it after
// Run on the same packages; directives naming checks that did not run
// this invocation (a -checks subset) are left alone, as are unknown
// check names (ValidateIgnores already reports those).
func StaleIgnores(pkgs []*Package, ran func(string) bool) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, ig := range pkg.Ignores {
			if ig.used || !ran(ig.Check) {
				continue
			}
			out = append(out, Diagnostic{
				Check:   "lint",
				Pos:     ig.Pos,
				Message: fmt.Sprintf("stale lint:ignore: %s reports nothing here anymore; remove the directive", ig.Check),
			})
		}
	}
	sortDiagnostics(out)
	return out
}
