package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap locks in the internal/budget error contract (DESIGN.md §4c):
// the typed sentinels (budget.ErrDeadline, ErrCancelled,
// ErrNoConvergence) travel through any number of fmt.Errorf layers and
// are classified with errors.Is. Three shapes are flagged:
//
//   - a fmt.Errorf call that passes a sentinel under a verb other than
//     %w (an %v/%s wrap breaks every errors.Is upstream);
//   - == or != against a sentinel (fails on any wrapped error);
//   - a switch case listing a sentinel (== in disguise).
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "internal/budget sentinels must be wrapped with %w and classified with " +
		"errors.Is, never compared with == or switch cases",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, info, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					for _, side := range []ast.Expr{n.X, n.Y} {
						if s := budgetSentinel(info, side); s != nil {
							pass.Reportf(n.Pos(),
								"%s compared with %s: wrapped errors never match; use errors.Is",
								s.Name(), n.Op)
							break
						}
					}
				}
			case *ast.CaseClause:
				for _, e := range n.List {
					if s := budgetSentinel(info, e); s != nil {
						pass.Reportf(e.Pos(),
							"switch case on %s compares with ==; use if errors.Is chains instead",
							s.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// budgetSentinel resolves e to one of the internal/budget Err* sentinel
// variables (or a package-level alias of one elsewhere), or nil.
func budgetSentinel(info *types.Info, e ast.Expr) types.Object {
	obj := resolveObj(info, e)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	p := v.Pkg().Path()
	if p == "internal/budget" || strings.HasSuffix(p, "/internal/budget") {
		return v
	}
	return nil
}

// checkErrorfWrap verifies that a budget sentinel passed to fmt.Errorf
// sits under a %w verb.
func checkErrorfWrap(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return
	}
	verbs, ok := formatVerbs(info, call.Args[0])
	for i, arg := range call.Args[1:] {
		s := budgetSentinel(info, arg)
		if s == nil {
			continue
		}
		if !ok {
			// Non-constant format string: the verb cannot be checked
			// statically, which is itself a hazard for a sentinel wrap.
			pass.Reportf(arg.Pos(),
				"%s passed to fmt.Errorf with a non-constant format; use a constant format with %%w so errors.Is keeps working",
				s.Name())
			continue
		}
		if i >= len(verbs) || verbs[i] != 'w' {
			got := "none"
			if i < len(verbs) {
				got = "%" + string(verbs[i])
			}
			pass.Reportf(arg.Pos(),
				"%s must be wrapped with %%w (got %s); a non-wrapping verb breaks errors.Is upstream",
				s.Name(), got)
		}
	}
}

// formatVerbs extracts the verb letter for each argument position from a
// constant format string. ok=false when the format is not a compile-time
// constant or uses explicit argument indexes (%[1]v), which this checker
// does not model.
func formatVerbs(info *types.Info, e ast.Expr) ([]byte, bool) {
	tv, found := info.Types[e]
	if !found || tv.Value == nil {
		return nil, false
	}
	format, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return nil, false
	}
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags, width and precision (may consume * args — not modeled).
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue
		case '[':
			return nil, false // indexed argument, not modeled
		case '*':
			return nil, false // star width consumes args, not modeled
		default:
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}
