// Package analysistest is the expectation-comment harness for the
// project analyzers: fixture packages under testdata/src carry
// `// want "regexp"` comments on the lines where a diagnostic is
// expected, and Run fails the test on any mismatch in either direction —
// an unexpected diagnostic, or a want that nothing matched. Suppressed
// findings (lint:ignore) count as absent, so the suppression machinery
// is exercised by fixtures that carry directives and no wants.
package analysistest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRE extracts the quoted expectations from a `// want "..." "..."`
// comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package (rooted at root, typically
// "testdata/src") with a tree loader, applies the analyzer, and checks
// every diagnostic against the fixtures' want comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := analysis.NewTreeLoader(root)
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		if !consume(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Check, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

func collectWants(t *testing.T, pkgs []*analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWant(t, pkg, c)...)
				}
			}
		}
	}
	return wants
}

func parseWant(t *testing.T, pkg *analysis.Package, c *ast.Comment) []*expectation {
	t.Helper()
	body, ok := strings.CutPrefix(c.Text, "//")
	if !ok {
		return nil
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, "want")
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	matches := wantRE.FindAllStringSubmatch(rest, -1)
	if len(matches) == 0 {
		t.Fatalf("%s: malformed want comment %q", pos, c.Text)
	}
	var out []*expectation
	for _, m := range matches {
		raw := m[1]
		if m[2] != "" {
			raw = m[2]
		}
		// The double-quoted form supports \" escapes; undo them.
		raw = strings.ReplaceAll(raw, `\"`, `"`)
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
	}
	return out
}

// consume marks the first unmatched expectation on (file, line) whose
// pattern matches message.
func consume(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// MustFindings is a convenience for driver-level tests: it runs the
// analyzers over already-loaded packages and formats the diagnostics one
// per line.
func MustFindings(t *testing.T, analyzers []*analysis.Analyzer, pkgs []*analysis.Package) []string {
	t.Helper()
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		t.Fatalf("analysis run: %v", err)
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprint(d)
	}
	return out
}
