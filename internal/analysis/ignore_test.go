package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []Ignore, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	igs, bad := scanDirectives(fset, []*ast.File{f})
	return fset, igs, bad
}

func TestScanDirectives(t *testing.T) {
	src := `package p

// lint:ignore floateq golden values compared bit-exactly
var a = 1

var b = 2 // lint:ignore determinism elapsed metadata only

// lint:ignore errwrap
var c = 3

// lint:ignore
var d = 4

// lint:ignorenope not a directive
var e = 5
`
	_, igs, bad := parseOne(t, src)
	if len(igs) != 2 {
		t.Fatalf("got %d well-formed ignores, want 2: %+v", len(igs), igs)
	}
	if igs[0].Check != "floateq" || igs[0].Reason != "golden values compared bit-exactly" || igs[0].Pos.Line != 3 {
		t.Errorf("ignore[0] = %+v", igs[0])
	}
	if igs[1].Check != "determinism" || igs[1].Reason != "elapsed metadata only" || igs[1].Pos.Line != 6 {
		t.Errorf("ignore[1] = %+v", igs[1])
	}
	if len(bad) != 2 {
		t.Fatalf("got %d malformed directives, want 2: %+v", len(bad), bad)
	}
	if !strings.Contains(bad[0].Message, "needs a written reason") {
		t.Errorf("bad[0] = %+v", bad[0])
	}
	if !strings.Contains(bad[1].Message, "needs a check name and a reason") {
		t.Errorf("bad[1] = %+v", bad[1])
	}
}

func TestDirectiveText(t *testing.T) {
	cases := []struct {
		comment string
		text    string
		ok      bool
	}{
		{"// lint:ignore floateq reason", "floateq reason", true},
		{"//lint:ignore floateq reason", "floateq reason", true},
		{"// lint:ignore", "", true},
		{"// lint:ignorenope x", "", false},
		{"/* lint:ignore floateq reason */", "", false},
		{"// something else", "", false},
	}
	for _, c := range cases {
		text, ok := directiveText(c.comment)
		if text != c.text || ok != c.ok {
			t.Errorf("directiveText(%q) = %q, %v; want %q, %v", c.comment, text, ok, c.text, c.ok)
		}
	}
}

func TestValidateIgnores(t *testing.T) {
	src := `package p

// lint:ignore floateq a fine reason
var a = 1

// lint:ignore nonsuch a typoed check name
var b = 2
`
	_, igs, _ := parseOne(t, src)
	pkg := &Package{Path: "p", Ignores: igs}
	diags := ValidateIgnores([]*Package{pkg}, KnownCheck)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `unknown check "nonsuch"`) {
		t.Errorf("diagnostic = %+v", diags[0])
	}
}
