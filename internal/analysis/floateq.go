package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point (or complex) operands:
// after any arithmetic, exact equality is a rounding-error lottery —
// compare against a tolerance (or use math.IsNaN for the x != x idiom).
//
// Two deliberate carve-outs:
//
//   - comparisons against the exact constant zero. A float that was
//     assigned 0 and never touched compares == 0 exactly (IEEE 754), and
//     the codebase leans on that for zero-mass guards (metrics, noise)
//     and sparse-entry skips (linalg kernels);
//   - internal/ucache, whose quantization layer compares floats by
//     design (keys are rounded to a grid precisely so that == is exact).
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "forbid ==/!= on floating-point operands outside _test.go and the " +
		"ucache quantization code (exact-zero guards are allowed)",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) error {
	if pkgPathWithin(pass.Pkg.Path, "ucache") {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(info, be.X) && !isFloatOperand(info, be.Y) {
				return true
			}
			if isExactZero(info, be.X) || isExactZero(info, be.Y) {
				return true
			}
			if bothConstant(info, be.X, be.Y) {
				return true // compile-time comparison, exact by definition
			}
			pass.Reportf(be.Pos(),
				"floating-point %s comparison; compare |a-b| against a tolerance (or math.IsNaN for x != x)",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloatOperand(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isExactZero reports whether e is a compile-time constant equal to zero.
func isExactZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(tv.Value)) == 0 &&
			constant.Sign(constant.Imag(tv.Value)) == 0
	}
	return false
}

func bothConstant(info *types.Info, x, y ast.Expr) bool {
	tx, okx := info.Types[x]
	ty, oky := info.Types[y]
	return okx && oky && tx.Value != nil && ty.Value != nil
}
