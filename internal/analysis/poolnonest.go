package analysis

import (
	"go/ast"
	"go/types"
)

// PoolNoNest enforces par.Pool's no-nesting rule — until now only a
// comment on the Pool type: code running under a pool slot must not
// acquire from the pool again, directly or transitively, or all slots
// can be held by callers blocked on their own children (deadlock). Two
// complementary checks:
//
//  1. Callback reachability: for every call handing a function to a pool
//     slot — Pool.ForEachErr's fn argument, or a wrapper that forwards
//     its own parameter into one (detected by call-site summaries, so
//     pipeline-style runBlocks helpers are seen through) — the callback
//     must not reach Pool.Acquire/ForEachErr through any chain of
//     statically resolvable calls.
//  2. Slot-held regions: between a manual Pool.Acquire and its Release,
//     no call may re-enter the pool — a direct ForEachErr, or any callee
//     that transitively reaches a pool operation. (A direct re-Acquire
//     in this region is deliberately not reported: the canonical
//     `if err := p.Acquire(ctx); err != nil { continue }` retry loop
//     makes the may-analysis see the failed acquisition's token at the
//     next attempt; check 1 and the transitive-callee rule still catch
//     every interprocedural nesting.)
//
// Calls through function values and interfaces are not resolvable and
// are not followed — the same consciously-accepted blind spot as every
// static call-graph check.
var PoolNoNest = &Analyzer{
	Name: "poolnonest",
	Doc: "code reachable from a par.Pool slot (ForEachErr callback or " +
		"Acquire/Release region) must not acquire from the pool again",
	Run: runPoolNoNest,
}

func runPoolNoNest(pass *Pass) error {
	info := pass.Pkg.Info
	loader := pass.Pkg.loader
	for _, file := range pass.Pkg.Files {
		poolCallbacks(pass, info, loader, file)
		funcBodies(file, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			poolHeldRegions(pass, info, loader, body)
		})
	}
	return nil
}

// poolCallbacks checks every function handed to a pool slot.
func poolCallbacks(pass *Pass, info *types.Info, loader *Loader, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		var callbacks []ast.Expr
		if isPoolSlotOp(fn) && fn.Name() == "ForEachErr" && len(call.Args) == 3 {
			callbacks = append(callbacks, call.Args[2])
		} else if loader != nil {
			for _, i := range loader.summary(fn).callbackParams {
				if i < len(call.Args) {
					callbacks = append(callbacks, call.Args[i])
				}
			}
		}
		for _, cb := range callbacks {
			checkSlotCallback(pass, info, loader, cb)
		}
		return true
	})
}

func checkSlotCallback(pass *Pass, info *types.Info, loader *Loader, cb ast.Expr) {
	switch cb := ast.Unparen(cb).(type) {
	case *ast.FuncLit:
		ast.Inspect(cb.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return true
			}
			if isPoolSlotOp(callee) {
				pass.Reportf(call.Pos(), "pool slot callback re-enters the pool via Pool.%s (no-nesting rule: all slots can deadlock on their own children)", callee.Name())
			} else if loader != nil && loader.reachesPoolOp(callee) {
				pass.Reportf(call.Pos(), "pool slot callback calls %s, which transitively acquires from the pool (no-nesting rule)", funcDisplayName(callee))
			}
			return true
		})
	default:
		fn, _ := resolveObj(info, cb).(*types.Func)
		if fn == nil || loader == nil {
			return
		}
		if loader.reachesPoolOp(fn) {
			pass.Reportf(cb.Pos(), "%s runs under a pool slot and transitively acquires from the pool (no-nesting rule)", funcDisplayName(fn))
		}
	}
}

// poolHeldRegions runs the slot-held dataflow over one body.
func poolHeldRegions(pass *Pass, info *types.Info, loader *Loader, body *ast.BlockStmt) {
	if !mentionsAcquire(info, body) {
		return
	}
	cfg := FuncCFG(info, body)
	transfer := func(fact tokenSet, n ast.Node) {
		flowInspect(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if isPoolSlotOp(fn) && fn.Name() == "Acquire" {
				if key := poolKey(call); key != "" {
					fact[key] = true
				}
			}
			if isPoolRelease(fn) {
				if key := poolKey(call); key != "" {
					delete(fact, key)
				}
			}
			return true
		})
	}
	flow := runFlow(cfg, transfer)
	reported := map[ast.Node]bool{}
	flow.visit(func(fact tokenSet, n ast.Node) {
		if len(fact) == 0 {
			return
		}
		// Calls made while a slot is held run under the slot, including
		// function literals invoked here (protect-style wrappers run
		// their argument synchronously).
		inspectWithLits(n, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || reported[call] {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if isPoolSlotOp(fn) && fn.Name() == "ForEachErr" {
				reported[call] = true
				pass.Reportf(call.Pos(), "Pool.ForEachErr called while a pool slot is held (no-nesting rule)")
			} else if !isPoolSlotOp(fn) && !isPoolRelease(fn) && loader != nil && loader.reachesPoolOp(fn) {
				reported[call] = true
				pass.Reportf(call.Pos(), "%s called while a pool slot is held, and it transitively acquires from the pool (no-nesting rule)", funcDisplayName(fn))
			}
			return true
		})
	})
}

// inspectWithLits visits a CFG node's expressions like flowInspect but
// descends into function literals: a literal appearing at a slot-held
// program point is assumed to run under the slot. Deferred calls are
// still skipped — they run at exit, after the region's Release.
func inspectWithLits(n ast.Node, f func(ast.Node) bool) {
	if rng, ok := n.(*ast.RangeStmt); ok {
		ast.Inspect(rng.X, f)
		return
	}
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		if n == nil {
			return true
		}
		return f(n)
	})
}

func mentionsAcquire(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(info, call); fn != nil && isPoolSlotOp(fn) && fn.Name() == "Acquire" {
				found = true
			}
		}
		return true
	})
	return found
}

// poolKey names the pool a slot call operates on, by receiver spelling.
func poolKey(call *ast.CallExpr) string {
	recv := callReceiver(call)
	if recv == nil {
		return ""
	}
	key := receiverKey(recv)
	if key == "" {
		return ""
	}
	return "slot|" + key
}

// isPoolRelease reports whether fn is (*par.Pool).Release.
func isPoolRelease(fn *types.Func) bool {
	if fn.Name() != "Release" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Pool" || named.Obj().Pkg() == nil {
		return false
	}
	return pkgPathWithin(named.Obj().Pkg().Path(), "par")
}
