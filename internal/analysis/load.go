package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package, plus the suppression
// directives harvested from its comments. Test files (_test.go) are
// never loaded: every invariant the analyzers enforce is scoped to
// production code, and the expectation-comment fixtures are plain .go
// files.
type Package struct {
	// Path is the import path the package was loaded as.
	Path string
	// Dir is the directory its files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Ignores are the well-formed lint:ignore directives in the package.
	Ignores []Ignore
	// BadDirectives are malformed lint:ignore comments, reported as
	// un-suppressible "lint" diagnostics.
	BadDirectives []Diagnostic
	// loader is the Loader this package was checked by; the flow-sensitive
	// analyzers use it to resolve and summarize cross-package callees.
	loader *Loader
}

// A Loader parses and type-checks packages on demand, resolving module-
// local import paths to directories and everything else through the
// toolchain's importers. It memoizes: each package is checked once no
// matter how many importers reach it.
type Loader struct {
	Fset *token.FileSet
	// Module is the module path when the loader was built by
	// NewModuleLoader (what "./..." means to cmd/questlint); empty for
	// tree loaders.
	Module string
	// resolve maps an import path to the directory holding its source,
	// or ok=false to defer to the standard-library importers.
	resolve func(path string) (dir string, ok bool)
	std     types.Importer
	source  types.Importer
	pkgs    map[string]*loadEntry
	// sums memoizes per-function call-site summaries (summary.go); a nil
	// value marks a summary still being computed, breaking call cycles.
	sums map[*types.Func]*funcSummary
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewModuleLoader returns a loader rooted at a Go module directory:
// import paths under the module path resolve into its tree, everything
// else (the standard library) through the compiler importers.
func NewModuleLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	m := moduleRE.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	modPath := string(m[1])
	l := newLoader(func(path string) (string, bool) {
		if path == modPath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	})
	l.Module = modPath
	return l, nil
}

// NewTreeLoader returns a loader that resolves any import path with
// source under root (GOPATH-src style: path x/y loads root/x/y). The
// fixture harness uses it so testdata packages can impersonate arbitrary
// import paths — including repro/internal/budget — without touching the
// real tree.
func NewTreeLoader(root string) *Loader {
	return newLoader(func(path string) (string, bool) {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
		return "", false
	})
}

func newLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		resolve: resolve,
		std:     importer.Default(),
		source:  importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*loadEntry{},
	}
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a non-test Go source file the
// loader should parse.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// Load parses and type-checks the package at the given import path
// (which must resolve inside the loader's tree), memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %s does not resolve inside the loaded tree", path)
	}
	e := &loadEntry{loading: true}
	l.pkgs[path] = e
	e.pkg, e.err = l.check(path, dir)
	e.loading = false
	return e.pkg, e.err
}

func (l *Loader) check(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, en := range entries {
		if !en.IsDir() && isSourceFile(en.Name()) {
			names = append(names, en.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info, loader: l}
	pkg.Ignores, pkg.BadDirectives = scanDirectives(l.Fset, files)
	return pkg, nil
}

// Import implements types.Importer: module-local paths load from source,
// everything else resolves through the compiled-stdlib importer with a
// from-source fallback (toolchains without export data).
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.resolve(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	return l.source.Import(path)
}

// LoadTree loads every package under root (the loader must resolve
// rootPath to root): directories named testdata, hidden directories, and
// directories with no non-test Go files are skipped. Packages come back
// sorted by import path.
func (l *Loader) LoadTree(rootPath string) ([]*Package, error) {
	root, ok := l.resolve(rootPath)
	if !ok {
		return nil, fmt.Errorf("analysis: %s does not resolve inside the loaded tree", rootPath)
	}
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				if rel == "." {
					paths = append(paths, rootPath)
				} else {
					paths = append(paths, rootPath+"/"+filepath.ToSlash(rel))
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking %s: %w", root, err)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
