package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Goroleak flags goroutines launched with no lifecycle management: the
// leak class the PR 7/8 -race tests catch dynamically, promoted to a
// static check.
//
// A `go` statement is accepted when the goroutine observes cancellation
// or is joined on every path to the launching function's exit:
//
//   - the goroutine body (or the call launching it) uses a
//     context.Context — it observes cancellation;
//   - the body receives from or ranges over a channel declared outside
//     the goroutine — its lifetime is bounded by the sender/closer
//     (worker-feed and done-channel patterns);
//   - the body calls Done on a WaitGroup that is a struct field — the
//     owning object joins it (PR 7's Manager.worker/Close pattern);
//   - the body signals a function-local WaitGroup or channel (Done,
//     send, close), and a matching join (Wait, receive, range) reaches
//     every exit path of the launching function — checked by dataflow,
//     so an early return that skips wg.Wait() is a finding;
//   - the launching function is main() of package main: its goroutines
//     are process-bounded.
//
// A goroutine with none of these is reported at the go statement; one
// with a local join that some path skips is reported with the join it
// can miss.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc: "goroutines must be joined or cancellation-bounded on every " +
		"path (ctx, done channel, WaitGroup, or channel close)",
	Run: runGoroleak,
}

// goLaunch is one tracked `go` statement: joins maps each object whose
// join releases the goroutine (a local WaitGroup or channel).
type goLaunch struct {
	stmt  *ast.GoStmt
	token string
	joins map[types.Object]bool
}

func runGoroleak(pass *Pass) error {
	info := pass.Pkg.Info
	isMainPkg := pass.Pkg.Types.Name() == "main"
	for _, file := range pass.Pkg.Files {
		funcBodies(file, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
			if isMainPkg && name == "main" {
				return // process-bounded: main's goroutines die with it
			}
			goroleakBody(pass, info, body)
		})
	}
	return nil
}

func goroleakBody(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// Collect the go statements launched directly by this body (nested
	// literals are analyzed as their own bodies).
	var launches []*goLaunch
	byStmt := map[*ast.GoStmt]*goLaunch{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		exempt, joins := classifyGoroutine(pass.Pkg, info, body, g)
		if exempt {
			return true
		}
		if len(joins) == 0 {
			pass.Reportf(g.Pos(), "goroutine is neither joined nor cancellation-bounded: give it a ctx, a done channel, or a WaitGroup")
			return true
		}
		l := &goLaunch{stmt: g, token: goToken(pass.Pkg, g), joins: joins}
		launches = append(launches, l)
		byStmt[g] = l
		return true
	})
	if len(launches) == 0 {
		return
	}

	// A deferred join (defer wg.Wait()) runs on every exit: launches
	// joined that way need no path check.
	cfg := FuncCFG(info, body)
	deferred := map[types.Object]bool{}
	for _, d := range cfg.Defers {
		for o := range joinedObjects(info, d.Call) {
			deferred[o] = true
		}
	}
	tracked := launches[:0]
	for _, l := range launches {
		excused := false
		for o := range l.joins {
			if deferred[o] {
				excused = true
				break
			}
		}
		if !excused {
			tracked = append(tracked, l)
		}
	}
	if len(tracked) == 0 {
		return
	}

	byToken := map[string]*goLaunch{}
	for _, l := range tracked {
		byToken[l.token] = l
	}
	flow := runFlow(cfg, func(fact tokenSet, n ast.Node) {
		if g, ok := n.(*ast.GoStmt); ok {
			if l, ok := byStmt[g]; ok && byToken[l.token] != nil {
				fact[l.token] = true
			}
		}
		joined := joinedObjectsInNode(info, n)
		if len(joined) == 0 {
			return
		}
		for tok := range fact {
			l := byToken[tok]
			if l == nil {
				continue
			}
			for o := range joined {
				if l.joins[o] {
					delete(fact, tok)
					break
				}
			}
		}
	})
	for tok := range flow.exitFact() {
		l := byToken[tok]
		if l == nil {
			continue
		}
		pass.Reportf(l.stmt.Pos(), "goroutine's join (%s) is skipped on some path to return", joinNames(l.joins))
	}
}

// classifyGoroutine decides how a go statement is managed. exempt means
// no join is required; otherwise joins holds the local objects whose
// join releases the goroutine (empty = unmanaged, report immediately).
func classifyGoroutine(pkg *Package, info *types.Info, body *ast.BlockStmt, g *ast.GoStmt) (exempt bool, joins map[types.Object]bool) {
	// A context anywhere in the launch expression (argument or receiver)
	// means the goroutine can observe cancellation.
	ctxSeen := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && isContextType(obj.Type()) {
				ctxSeen = true
			}
		}
		return true
	})
	if ctxSeen {
		return true, nil
	}

	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return classifyLitBody(info, body, lit)
	}

	// Named function or method: judge by its summary.
	if fn := calleeFunc(info, g.Call); fn != nil && pkg.loader != nil {
		s := pkg.loader.summary(fn)
		if s.usesContext || s.wgFieldDone {
			return true, nil
		}
	}
	return false, nil
}

func classifyLitBody(info *types.Info, body *ast.BlockStmt, lit *ast.FuncLit) (exempt bool, joins map[types.Object]bool) {
	joins = map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				exempt = true // ctx-bounded
			}
		case *ast.UnaryExpr:
			if recvObj := channelObj(info, n); recvObj != nil && !declaredWithin(recvObj, lit) {
				exempt = true // bounded by an outer channel's sends/close
			}
		case *ast.RangeStmt:
			if recvObj := rangedChannelObj(info, n); recvObj != nil && !declaredWithin(recvObj, lit) {
				exempt = true // worker-feed: runs until the channel closes
			}
		case *ast.CallExpr:
			if isWaitGroupDone(info, n) {
				if isFieldSelector(info, n) {
					exempt = true // object-managed WaitGroup
				} else if o := callReceiverObj(info, n); localJoinObj(o, body, lit) {
					joins[o] = true
				}
			}
			if isBuiltinClose(info, n) && len(n.Args) == 1 {
				if o := rootObj(info, n.Args[0]); localJoinObj(o, body, lit) {
					joins[o] = true
				}
			}
		case *ast.SendStmt:
			if o := rootObj(info, n.Chan); localJoinObj(o, body, lit) {
				joins[o] = true
			}
		}
		return true
	})
	return exempt, joins
}

// localJoinObj reports whether o is a joinable local: declared in the
// launching function (so the function can join it) but outside the
// goroutine's own literal.
func localJoinObj(o types.Object, body *ast.BlockStmt, lit *ast.FuncLit) bool {
	return o != nil && declaredWithin(o, body) && !declaredWithin(o, lit)
}

// joinedObjectsInNode collects the objects a CFG node joins, honoring the
// graph's containment rules (RangeStmt = the per-iteration fetch).
func joinedObjectsInNode(info *types.Info, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	if rng, ok := n.(*ast.RangeStmt); ok {
		if o := rangedChannelObj(info, rng); o != nil {
			out[o] = true
		}
		return out
	}
	flowInspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for o := range joinedObjects(info, n) {
				out[o] = true
			}
		case *ast.UnaryExpr:
			if o := channelObj(info, n); o != nil {
				out[o] = true
			}
		}
		return true
	})
	return out
}

// joinedObjects returns the objects a single call joins: the receiver of
// WaitGroup.Wait.
func joinedObjects(info *types.Info, call *ast.CallExpr) map[types.Object]bool {
	out := map[types.Object]bool{}
	if isWaitGroupWait(info, call) {
		if o := callReceiverObj(info, call); o != nil {
			out[o] = true
		}
	}
	return out
}

// channelObj resolves <-ch to ch's object.
func channelObj(info *types.Info, u *ast.UnaryExpr) types.Object {
	if u.Op.String() != "<-" {
		return nil
	}
	return rootObj(info, u.X)
}

// rangedChannelObj resolves `for range ch` to ch's object when ch is a
// channel.
func rangedChannelObj(info *types.Info, rng *ast.RangeStmt) types.Object {
	tv, ok := info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return nil
	}
	return rootObj(info, rng.X)
}

func rootObj(info *types.Info, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	return info.Uses[id]
}

func callReceiverObj(info *types.Info, call *ast.CallExpr) types.Object {
	recv := callReceiver(call)
	if recv == nil {
		return nil
	}
	return rootObj(info, recv)
}

func isBuiltinClose(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func goToken(pkg *Package, g *ast.GoStmt) string {
	p := pkg.Fset.Position(g.Pos())
	return "go:" + p.Filename + ":" + strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Column)
}

func joinNames(joins map[types.Object]bool) string {
	names := tokenSet{}
	for o := range joins {
		names[o.Name()] = true
	}
	out := ""
	for _, n := range names.sorted() {
		if out != "" {
			out += ", "
		}
		out += n
	}
	return out
}
