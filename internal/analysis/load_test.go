package analysis

import (
	"strings"
	"testing"
)

func TestTreeLoaderLoadsAndTypechecks(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	pkg, err := l.Load("ctxfix/use")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Fatalf("package incompletely loaded: %+v", pkg)
	}
	if pkg.Types.Name() != "use" {
		t.Errorf("package name = %q, want %q", pkg.Types.Name(), "use")
	}
	// Memoized: the dependency was loaded while type-checking and loads
	// again as the identical object.
	dep1, err := l.Load("ctxfix/dep")
	if err != nil {
		t.Fatalf("Load dep: %v", err)
	}
	dep2, _ := l.Load("ctxfix/dep")
	if dep1 != dep2 {
		t.Error("Load is not memoized")
	}
}

func TestTreeLoaderStdlibImports(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	if _, err := l.Import("context"); err != nil {
		t.Fatalf("importing context: %v", err)
	}
}

func TestLoaderDiagnosesImportCycle(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	_, err := l.Load("cyclefix/a")
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("err = %v, want import cycle", err)
	}
}

func TestLoaderRejectsUnresolvablePath(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	if _, err := l.Load("no/such/package"); err == nil {
		t.Fatal("expected error for unresolvable path")
	}
}

func TestModuleLoaderOnThisRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	l, err := NewModuleLoader("../..")
	if err != nil {
		t.Fatalf("NewModuleLoader: %v", err)
	}
	pkg, err := l.Load("repro/internal/budget")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if obj := pkg.Types.Scope().Lookup("ErrDeadline"); obj == nil {
		t.Error("repro/internal/budget loaded without ErrDeadline")
	}
}

// TestTreeLoaderGenerics exercises the from-source type-checking path on
// a generic package instantiated across a nested package boundary: the
// loader's Import must hand the checker a box package whose type
// parameters survive instantiation in the user.
func TestTreeLoaderGenerics(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	pkg, err := l.Load("genericfix/use")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, name := range []string{"Lengths", "Total", "Boxed"} {
		if pkg.Types.Scope().Lookup(name) == nil {
			t.Errorf("genericfix/use loaded without %s", name)
		}
	}
	dep, err := l.Load("genericfix/box")
	if err != nil {
		t.Fatalf("Load dep: %v", err)
	}
	// The instantiating package must see the identical dependency the
	// loader memoized, not a re-checked copy.
	found := false
	for _, imp := range pkg.Types.Imports() {
		if imp == dep.Types {
			found = true
		}
	}
	if !found {
		t.Error("genericfix/use does not import the memoized genericfix/box")
	}
}

// TestLoaderDiagnosesSelfImportCycle is the single-package regression
// for the loading-flag cycle guard: a package importing itself must fail
// with the cycle diagnostic, not recurse or deadlock.
func TestLoaderDiagnosesSelfImportCycle(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	_, err := l.Load("cyclefix/self")
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("err = %v, want import cycle", err)
	}
}

// TestLoaderErrorsAreMemoized: a failing package must fail identically
// on the second Load instead of re-checking.
func TestLoaderErrorsAreMemoized(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	_, err1 := l.Load("cyclefix/a")
	_, err2 := l.Load("cyclefix/a")
	if err1 == nil || err2 == nil {
		t.Fatal("cyclefix/a unexpectedly loaded")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("memoized error differs: %q vs %q", err1, err2)
	}
}
