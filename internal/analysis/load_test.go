package analysis

import (
	"strings"
	"testing"
)

func TestTreeLoaderLoadsAndTypechecks(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	pkg, err := l.Load("ctxfix/use")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Fatalf("package incompletely loaded: %+v", pkg)
	}
	if pkg.Types.Name() != "use" {
		t.Errorf("package name = %q, want %q", pkg.Types.Name(), "use")
	}
	// Memoized: the dependency was loaded while type-checking and loads
	// again as the identical object.
	dep1, err := l.Load("ctxfix/dep")
	if err != nil {
		t.Fatalf("Load dep: %v", err)
	}
	dep2, _ := l.Load("ctxfix/dep")
	if dep1 != dep2 {
		t.Error("Load is not memoized")
	}
}

func TestTreeLoaderStdlibImports(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	if _, err := l.Import("context"); err != nil {
		t.Fatalf("importing context: %v", err)
	}
}

func TestLoaderDiagnosesImportCycle(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	_, err := l.Load("cyclefix/a")
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("err = %v, want import cycle", err)
	}
}

func TestLoaderRejectsUnresolvablePath(t *testing.T) {
	l := NewTreeLoader("testdata/src")
	if _, err := l.Load("no/such/package"); err == nil {
		t.Fatal("expected error for unresolvable path")
	}
}

func TestModuleLoaderOnThisRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load in -short mode")
	}
	l, err := NewModuleLoader("../..")
	if err != nil {
		t.Fatalf("NewModuleLoader: %v", err)
	}
	pkg, err := l.Load("repro/internal/budget")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if obj := pkg.Types.Scope().Lookup("ErrDeadline"); obj == nil {
		t.Error("repro/internal/budget loaded without ErrDeadline")
	}
}
