package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// resolveObj resolves an expression that names an object (identifier or
// selector), unwrapping parentheses; nil otherwise.
func resolveObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// signatureTakesContext reports whether the signature's first parameter
// is a context.Context.
func signatureTakesContext(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// pkgPathWithin reports whether an import path lies in one of the named
// internal packages (or a subpackage): pkgPathWithin("a/internal/sim/x",
// "sim") is true. Matching on the "internal/<name>" segment rather than
// the module prefix lets the testdata fixtures impersonate real package
// paths.
func pkgPathWithin(path string, names ...string) bool {
	for _, name := range names {
		seg := "internal/" + name
		if path == seg ||
			strings.HasSuffix(path, "/"+seg) ||
			strings.Contains(path, "/"+seg+"/") ||
			strings.HasPrefix(path, seg+"/") {
			return true
		}
	}
	return false
}

// declaredWithin reports whether obj's declaration lies inside node —
// used to distinguish loop-local accumulators from ones that outlive a
// map-iteration.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() != 0 && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// rootIdent walks to the base identifier of an lvalue-ish expression:
// x, x.f, x[i], *x all root at x; composite expressions root at nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
