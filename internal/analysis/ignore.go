package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	// lint:ignore <check> <reason>
//
// placed either at the end of the offending line or on its own line
// directly above it. The reason is mandatory: a suppression without a
// written justification is itself a finding.
const ignorePrefix = "lint:ignore"

// An Ignore is one well-formed suppression directive.
type Ignore struct {
	Pos    token.Position
	Check  string
	Reason string
	// used records that the directive suppressed at least one finding
	// during a Run; StaleIgnores reports the ones that excused nothing.
	used bool
}

// scanDirectives harvests every lint:ignore directive from the files'
// comments. Malformed directives (no check name, or no reason) come back
// as "lint" diagnostics, which Run surfaces un-suppressibly.
func scanDirectives(fset *token.FileSet, files []*ast.File) ([]Ignore, []Diagnostic) {
	var igs []Ignore
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					bad = append(bad, Diagnostic{Check: "lint", Pos: pos,
						Message: "lint:ignore needs a check name and a reason"})
				case len(fields) == 1:
					bad = append(bad, Diagnostic{Check: "lint", Pos: pos,
						Message: fmt.Sprintf("lint:ignore %s needs a written reason", fields[0])})
				default:
					igs = append(igs, Ignore{
						Pos:    pos,
						Check:  fields[0],
						Reason: strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return igs, bad
}

// directiveText returns the text after "lint:ignore" if the comment is a
// suppression directive. Only line comments count: a directive buried in
// a /* */ block is too easy to orphan from the code it excuses.
func directiveText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, ignorePrefix)
	if !ok {
		return "", false
	}
	// Require a clean token boundary so e.g. "lint:ignorexyz" is not a
	// directive.
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// suppressed reports whether d is excused by an ignore for the same
// check on the same line or the line directly above.
func (p *Package) suppressed(d Diagnostic) bool {
	for i := range p.Ignores {
		ig := &p.Ignores[i]
		if ig.Check != d.Check || ig.Pos.Filename != d.Pos.Filename {
			continue
		}
		if ig.Pos.Line == d.Pos.Line || ig.Pos.Line == d.Pos.Line-1 {
			ig.used = true
			return true
		}
	}
	return false
}
