package analysis

import (
	"go/ast"
	"regexp"
	"strings"
)

// ZeroSentinel enforces the zero-value convention documented on
// pipeline.Config (the Config.CXWeight trap PR 4 shipped as a real bug):
// a defaults() pass cannot tell "caller left the field zero" from
// "caller chose zero" — so any exported Config/Options field whose doc
// comment declares the zero value to be a legitimate or meaningful
// setting must be paired with a sibling `<Field>Set bool` sentinel that
// callers raise when they mean it.
//
// Detection is doc-driven on purpose: "0 means no limit"-style defaults
// are fine precisely because zero is NOT a distinct setting there, and
// the convention text requires the ambiguous fields to say so in their
// docs (with the words "legitimate" or "meaningful").
var ZeroSentinel = &Analyzer{
	Name: "zerosentinel",
	Doc: "an exported Config/Options/Capabilities/Profile field documented with a " +
		"legitimate/meaningful zero value must have a matching <Field>Set bool sentinel",
	Run: runZeroSentinel,
}

// zeroDocRE matches field docs that declare zero a real setting: the
// sentence must mention both the zero value and one of the convention's
// marker words.
var (
	zeroWordRE   = regexp.MustCompile(`(?i)\bzero\b|(^|[^.\w])0([^.\w]|$)`)
	markerWordRE = regexp.MustCompile(`(?i)\b(legitimate|meaningful)\b`)
)

func runZeroSentinel(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || !ts.Name.IsExported() || !configLikeName(ts.Name.Name) {
				return true
			}
			checkConfigStruct(pass, st)
			return true
		})
	}
	return nil
}

// configLikeName selects the struct families the convention covers:
// the historical Config/Options pair, plus the capability/profile
// descriptors the noise-aware-selection work added (backend.Capabilities
// carries a NoiseProfile whose zero value is a real setting — an
// error-free device — exactly the ambiguity the sentinel resolves).
func configLikeName(name string) bool {
	return name == "Config" || name == "Options" ||
		strings.HasSuffix(name, "Config") || strings.HasSuffix(name, "Options") ||
		strings.HasSuffix(name, "Capabilities") || strings.HasSuffix(name, "Profile")
}

func checkConfigStruct(pass *Pass, st *ast.StructType) {
	sentinels := map[string]bool{}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if strings.HasSuffix(name.Name, "Set") && isBoolExpr(f.Type) {
				sentinels[name.Name] = true
			}
		}
	}
	for _, f := range st.Fields.List {
		if f.Doc == nil {
			continue
		}
		doc := f.Doc.Text()
		if !markerWordRE.MatchString(doc) || !zeroWordRE.MatchString(doc) {
			continue
		}
		for _, name := range f.Names {
			if !name.IsExported() || strings.HasSuffix(name.Name, "Set") {
				continue
			}
			if !sentinels[name.Name+"Set"] {
				pass.Reportf(name.Pos(),
					"%s documents a meaningful zero value but has no %sSet bool sentinel; defaults() cannot tell \"unset\" from \"chose zero\" (the CXWeight trap)",
					name.Name, name.Name)
			}
		}
	}
}

func isBoolExpr(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "bool"
}
