package analysis

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the packages whose results must be
// bit-reproducible for any Parallelism (DESIGN.md §4b): the simulation
// and synthesis substrate plus the pipeline that composes it.
var deterministicPkgs = []string{"synth", "pipeline", "noise", "sim", "linalg", "ucache"}

// randConstructors are the math/rand package-level functions that build
// explicitly-seeded generators rather than drawing from the global
// source; calling them is the fix, not the bug.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

// Determinism enforces the bit-reproducibility invariant inside the
// simulation/synthesis packages: no wall-clock reads (time.Now,
// time.Since), no draws from the global math/rand source (every stream
// is a splitmix64-derived *rand.Rand), and no map iteration feeding
// slices or order-sensitive accumulators (Go randomizes map order per
// run). Keys collected from a map and sorted afterwards are fine.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand and map-order dependent " +
		"results in the deterministic packages (internal/{synth,pipeline,noise,sim,linalg,ucache})",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !pkgPathWithin(pass.Pkg.Path, deterministicPkgs...) {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkNondeterministicCall(pass, info, n)
				case *ast.RangeStmt:
					checkMapRange(pass, info, n, fd.Body)
				}
				return true
			})
		}
	}
	return nil
}

func checkNondeterministicCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Float64) are seeded streams
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a deterministic package; results must be bit-reproducible",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global source; use a seeded *rand.Rand stream",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags map iterations whose bodies feed results that
// outlive the loop in iteration order: appends to an outer slice (unless
// that slice is sorted later in the same function) and compound
// assignments to outer floating-point accumulators (float addition is
// not associative, so accumulation order changes the bits).
func checkMapRange(pass *Pass, info *types.Info, rng *ast.RangeStmt, enclosing *ast.BlockStmt) {
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if ok && id.Name == "append" && len(n.Args) > 0 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
					return true // a shadowing user function named append
				}
				if obj := outerObject(info, n.Args[0], rng); obj != nil && !sortedAfter(info, enclosing, rng, obj) {
					pass.Reportf(n.Pos(),
						"append to %s inside map iteration: element order follows randomized map order; collect and sort keys first",
						obj.Name())
				}
			}
		case *ast.AssignStmt:
			switch n.Tok.String() {
			case "+=", "-=", "*=", "/=":
				if len(n.Lhs) != 1 {
					return true
				}
				obj := outerObject(info, n.Lhs[0], rng)
				if obj == nil {
					return true
				}
				if isFloatish(info.TypeOf(n.Lhs[0])) {
					pass.Reportf(n.Pos(),
						"order-sensitive accumulation into %s inside map iteration: float reduction order follows randomized map order; iterate sorted keys",
						obj.Name())
				}
			}
		}
		return true
	})
}

// outerObject resolves e's root identifier to an object declared outside
// the range statement, or nil.
func outerObject(info *types.Info, e ast.Expr, rng *ast.RangeStmt) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || declaredWithin(obj, rng) {
		return nil
	}
	return obj
}

func isFloatish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// sortedAfter reports whether obj is passed to a sort/slices function
// after the range statement in the same enclosing body — the
// collect-then-sort idiom, which is deterministic.
func sortedAfter(info *types.Info, enclosing *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rng.End() {
			return !found
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
