package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer runs over its expectation-comment fixtures: the test
// fails if a want goes unmatched (the analyzer regressed and stopped
// seeing a seeded violation) or an unexpected diagnostic appears (the
// analyzer started flagging legitimate idioms).

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.Determinism,
		"detfix/internal/sim", "detfix/outofscope")
}

func TestCtxProp(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.CtxProp,
		"ctxfix/dep", "ctxfix/use")
}

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.ErrWrap,
		"errfix/internal/budget", "errfix/use")
}

func TestZeroSentinel(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.ZeroSentinel, "zerofix")
}

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.FloatEq,
		"floatfix", "floatfix/internal/ucache")
}

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.Goroleak,
		"goroleakfix", "goroleakfix/mainprog")
}

func TestLockFlow(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.LockFlow, "lockflowfix")
}

func TestFsyncOrder(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.FsyncOrder,
		"fsyncfix/internal/jobs", "fsyncfix/outofscope")
}

func TestPoolNoNest(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.PoolNoNest,
		"poolfix/internal/par", "poolfix/use")
}

func TestIgnoreDirectivesSuppress(t *testing.T) {
	analysistest.Run(t, "testdata/src", analysis.FloatEq, "ignorefix")
}

func TestRegistryNamesAreUniqueAndKnown(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.Registry() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if !analysis.KnownCheck(a.Name) {
			t.Errorf("KnownCheck(%q) = false for a registered analyzer", a.Name)
		}
	}
	if analysis.KnownCheck("nonsuch") {
		t.Error(`KnownCheck("nonsuch") = true`)
	}
}
