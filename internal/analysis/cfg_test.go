package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc type-checks src (a complete file) and returns the named
// function's body with the checker's info.
func parseFunc(t *testing.T, src, name string) (*types.Info, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return info, fd.Body
		}
	}
	t.Fatalf("no function %q in source", name)
	return nil, nil
}

func TestCFGReturnsEdgeToExit(t *testing.T) {
	info, body := parseFunc(t, `package p
func f(b bool) int {
	if b {
		return 1
	}
	return 2
}`, "f")
	cfg := FuncCFG(info, body)
	if len(cfg.Exit.Succs) != 0 {
		t.Errorf("Exit has successors: %v", cfg.Exit.Succs)
	}
	returns := 0
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
				if !hasSucc(blk, cfg.Exit) {
					t.Errorf("block %d holds a return but does not edge to Exit", blk.Index)
				}
			}
		}
	}
	if returns != 2 {
		t.Errorf("found %d returns in the graph, want 2", returns)
	}
}

func TestCFGLoopHasBackEdgeAndExit(t *testing.T) {
	info, body := parseFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
	}
}`, "f")
	cfg := FuncCFG(info, body)
	// The exit block must be reachable (the loop can terminate) and some
	// block must edge backwards (the loop can repeat).
	r := &flowResult{cfg: cfg}
	reach := r.reachable()
	if !reach[cfg.Exit.Index] {
		t.Error("Exit unreachable: loop never terminates in the graph")
	}
	backEdge := false
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			if s.Index < blk.Index {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Error("no back edge: loop body cannot repeat")
	}
}

func TestCFGPanicTerminatesBlock(t *testing.T) {
	info, body := parseFunc(t, `package p
import "os"
func f(b bool) {
	if b {
		panic("boom")
	}
	os.Exit(2)
}`, "f")
	cfg := FuncCFG(info, body)
	terminators := 0
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			var name string
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if name == "panic" || name == "Exit" {
				terminators++
				if len(blk.Succs) != 0 {
					t.Errorf("block %d ends in %s but has successors %v", blk.Index, name, blk.Succs)
				}
			}
		}
	}
	if terminators != 2 {
		t.Errorf("found %d terminating calls, want 2", terminators)
	}
}

func TestCFGCollectsDefers(t *testing.T) {
	info, body := parseFunc(t, `package p
func g() {}
func f(b bool) {
	defer g()
	if b {
		defer g()
	}
}`, "f")
	cfg := FuncCFG(info, body)
	if len(cfg.Defers) != 2 {
		t.Errorf("Defers = %d, want 2", len(cfg.Defers))
	}
}

func TestCFGSelectCommsArePerCase(t *testing.T) {
	info, body := parseFunc(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
	}
	return 0
}`, "f")
	cfg := FuncCFG(info, body)
	// Each comm statement must live in its own block (path sensitivity):
	// no single block may hold both channel receives.
	for _, blk := range cfg.Blocks {
		recvs := 0
		for _, n := range blk.Nodes {
			flowInspect(n, func(n ast.Node) bool {
				if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recvs++
				}
				return true
			})
		}
		if recvs > 1 {
			t.Errorf("block %d holds %d channel receives; comms must be per-case", blk.Index, recvs)
		}
	}
}

func TestCFGGotoAndLabels(t *testing.T) {
	info, body := parseFunc(t, `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`, "f")
	cfg := FuncCFG(info, body)
	r := &flowResult{cfg: cfg}
	reach := r.reachable()
	if !reach[cfg.Exit.Index] {
		t.Error("Exit unreachable through the goto loop")
	}
}

func TestFlowInspectSkipsFuncLitAndDefer(t *testing.T) {
	info, body := parseFunc(t, `package p
func g(func()) {}
func f() {
	g(func() { _ = 1 + 2 })
	defer g(nil)
}`, "f")
	_ = info
	seenBinary, seenDefer := false, false
	for _, stmt := range body.List {
		flowInspect(stmt, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.BinaryExpr:
				seenBinary = true
			case *ast.DeferStmt:
				seenDefer = true
			}
			return true
		})
	}
	if seenBinary {
		t.Error("flowInspect entered a FuncLit body")
	}
	if seenDefer {
		t.Error("flowInspect entered a DeferStmt")
	}
}
