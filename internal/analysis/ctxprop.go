package analysis

import (
	"go/ast"
	"go/types"
)

// CtxProp closes the deadline-hole class PR 2 fixed by hand: a function
// that was handed a context.Context must keep the caller's deadline and
// cancellation flowing downward. Two shapes are flagged inside any
// function (or literal) whose signature includes a context.Context:
//
//   - calling X(...) when the callee's package or method set also
//     defines XCtx(ctx, ...): the non-Ctx variant silently runs on
//     context.Background, so the caller's deadline stops propagating;
//   - calling context.Background() or context.TODO(): minting a fresh
//     root context discards the one in scope.
//
// Detached work (metrics flushes, background cache warms) is the
// legitimate exception; suppress those sites with a lint:ignore stating
// why the work must outlive the caller.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc: "a function holding a context.Context must call the Ctx variant of any " +
		"callee that has one, and must not mint fresh root contexts",
	Run: runCtxProp,
}

func runCtxProp(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var ftype *ast.FuncType
			switch n := n.(type) {
			case *ast.FuncDecl:
				body, ftype = n.Body, n.Type
			case *ast.FuncLit:
				body, ftype = n.Body, n.Type
			default:
				return true
			}
			if body == nil || !funcTypeTakesContext(info, ftype) {
				return true
			}
			checkCtxBody(pass, info, body)
			return true
		})
	}
	return nil
}

func funcTypeTakesContext(info *types.Info, ftype *ast.FuncType) bool {
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

func checkCtxBody(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		// A nested literal with its own context parameter is governed by
		// that parameter and visited by the file-level walk; skipping it
		// here avoids double reports. Literals that merely capture this
		// ctx stay part of this body.
		if lit, ok := n.(*ast.FuncLit); ok && funcTypeTakesContext(info, lit.Type) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s discards the context already in scope; pass the caller's ctx (or lint:ignore with why this work is detached)",
				fn.Name())
			return true
		}
		if sib := ctxSibling(fn); sib != nil {
			pass.Reportf(call.Pos(),
				"%s has a context-aware sibling %s; call it with the in-scope ctx so the deadline keeps propagating",
				fn.Name(), sib.Name())
		}
		return true
	})
}

// ctxSibling returns the <name>Ctx counterpart of fn — a function or
// method in the same package/method set whose first parameter is a
// context.Context — or nil.
func ctxSibling(fn *types.Func) *types.Func {
	name := fn.Name()
	if len(name) >= 3 && name[len(name)-3:] == "Ctx" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var cand types.Object
	if recv := sig.Recv(); recv != nil {
		cand, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name+"Ctx")
	} else {
		cand = fn.Pkg().Scope().Lookup(name + "Ctx")
	}
	sibling, ok := cand.(*types.Func)
	if !ok {
		return nil
	}
	sibSig, ok := sibling.Type().(*types.Signature)
	if !ok || !signatureTakesContext(sibSig) {
		return nil
	}
	return sibling
}
