package ucache

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// BenchmarkSynthesizeCold measures uncached block synthesis through the
// cache layer (every iteration uses a fresh seed so it always misses).
func BenchmarkSynthesizeCold(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	target := linalg.RandomUnitary(4, rng)
	c := New(4096, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := testOpts
		opts.Seed = int64(i + 1)
		if _, hit, err := c.Synthesize(target, opts); err != nil || hit {
			b.Fatal(err, hit)
		}
	}
}

// BenchmarkSynthesizeHit measures a warm cache lookup (hash + verify +
// deep copy of the result).
func BenchmarkSynthesizeHit(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	target := linalg.RandomUnitary(4, rng)
	c := New(8, 0)
	if _, _, err := c.Synthesize(target, testOpts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := c.Synthesize(target, testOpts); err != nil || !hit {
			b.Fatal(err, hit)
		}
	}
}
