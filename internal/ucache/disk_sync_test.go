package ucache

import (
	"errors"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/linalg"
)

// syncRecorder swaps the fsync seam for one that records which files get
// synced (by name, captured at call time — the tmp file is renamed away
// right after its sync) and restores the real seam on cleanup.
type syncRecorder struct {
	mu    sync.Mutex
	names []string
	err   error // injected failure, if any
}

func recordSyncs(t *testing.T) *syncRecorder {
	t.Helper()
	rec := &syncRecorder{}
	prev := syncFile
	syncFile = func(f *os.File) error {
		rec.mu.Lock()
		rec.names = append(rec.names, f.Name())
		err := rec.err
		rec.mu.Unlock()
		if err != nil {
			return err
		}
		return prev(f)
	}
	t.Cleanup(func() { syncFile = prev })
	return rec
}

func (r *syncRecorder) synced(suffix string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, name := range r.names {
		if strings.HasSuffix(name, suffix) {
			n++
		}
	}
	return n
}

func TestCloseSyncsJournal(t *testing.T) {
	rec := recordSyncs(t)
	dir := t.TempDir()
	c, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	mustSynth(t, c, linalg.RandomUnitary(4, rng))
	if got := rec.synced(journalName); got != 0 {
		t.Fatalf("journal synced %d times before Close (appends must not sync)", got)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := rec.synced(journalName); got != 1 {
		t.Fatalf("journal synced %d times on Close, want 1", got)
	}
}

func TestCompactionSyncsTmpBeforeRename(t *testing.T) {
	rec := recordSyncs(t)
	dir := t.TempDir()
	// Capacity 2: the third insert pushes the journal past 2*cap records
	// and triggers a compaction, whose image must be synced while it is
	// still the .tmp file.
	c, err := OpenDisk(dir, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 5; i++ {
		mustSynth(t, c, linalg.RandomUnitary(4, rng))
	}
	if got := rec.synced(journalName + ".tmp"); got < 1 {
		t.Fatalf("compaction tmp file synced %d times, want at least 1", got)
	}
	if _, err := os.Stat(journalPath(dir) + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind after compaction (stat err %v)", err)
	}
}

func TestCloseReportsSyncFailure(t *testing.T) {
	rec := recordSyncs(t)
	boom := errors.New("injected sync failure")
	dir := t.TempDir()
	c, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	mustSynth(t, c, linalg.RandomUnitary(4, rng))
	rec.mu.Lock()
	rec.err = boom
	rec.mu.Unlock()
	if err := c.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want the injected sync failure", err)
	}
}
