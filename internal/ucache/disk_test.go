package ucache

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/linalg"
	"repro/internal/qasm"
	"repro/internal/synth"
)

func journalPath(dir string) string { return filepath.Join(dir, journalName) }

// mustSynth populates the cache with one target and returns the cold result.
func mustSynth(t *testing.T, c *Cache, target *linalg.Matrix) synth.Result {
	t.Helper()
	res, hit, err := c.Synthesize(target, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("expected cold miss")
	}
	return res
}

func TestDiskWarmHitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(20))
	target := linalg.RandomUnitary(4, rng)

	c1, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := mustSynth(t, c1, target)
	if err := c1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// "Restart": a fresh cache over the same directory serves the entry
	// without re-synthesizing — the on-disk warm hit.
	c2, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	warm, hit, err := c2.Synthesize(target, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("reloaded cache missed")
	}
	if st := c2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats after restart = %+v, want 1 hit / 0 misses", st)
	}
	if len(warm.Candidates) != len(cold.Candidates) || warm.Evaluations != cold.Evaluations {
		t.Fatalf("warm result shape differs: %d candidates / %d evals, want %d / %d",
			len(warm.Candidates), warm.Evaluations, len(cold.Candidates), cold.Evaluations)
	}
	for i := range warm.Candidates {
		w, co := warm.Candidates[i], cold.Candidates[i]
		if math.Float64bits(w.Distance) != math.Float64bits(co.Distance) || w.CNOTs != co.CNOTs {
			t.Errorf("candidate %d: (%v, %d) != cold (%v, %d)", i, w.Distance, w.CNOTs, co.Distance, co.CNOTs)
		}
		if qasm.Write(w.Circuit) != qasm.Write(co.Circuit) {
			t.Errorf("candidate %d circuit differs after disk round-trip", i)
		}
	}
	if qasm.Write(warm.Best.Circuit) != qasm.Write(cold.Best.Circuit) {
		t.Error("best circuit differs after disk round-trip")
	}
}

func TestDiskTruncatedJournalTail(t *testing.T) {
	// A crash mid-append tears the final record. Loading must keep every
	// complete record and turn the torn one into a clean miss.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(21))
	t1 := linalg.RandomUnitary(4, rng)
	t2 := linalg.RandomUnitary(4, rng)

	c1, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustSynth(t, c1, t1)
	mustSynth(t, c1, t2)
	c1.Close()

	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journalPath(dir), data[:len(data)-37], 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatalf("truncated journal must open cleanly: %v", err)
	}
	defer c2.Close()
	if c2.Len() != 1 {
		t.Fatalf("Len = %d after losing the torn record, want 1", c2.Len())
	}
	if _, hit, err := c2.Synthesize(t1, testOpts); err != nil || !hit {
		t.Fatalf("intact record must hit: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c2.Synthesize(t2, testOpts); err != nil || hit {
		t.Fatalf("torn record must be a clean miss, got hit=%v err=%v", hit, err)
	}
}

func TestDiskCorruptRecordSkipped(t *testing.T) {
	// Bit rot inside one record fails its checksum; the rest of the
	// journal loads, and the damaged entry is a miss — never a wrong hit.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(22))
	t1 := linalg.RandomUnitary(4, rng)
	t2 := linalg.RandomUnitary(4, rng)

	c1, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustSynth(t, c1, t1)
	mustSynth(t, c1, t2)
	c1.Close()

	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte{'\n'})
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines, want header + 2 records", len(lines))
	}
	mid := len(lines[1]) / 2
	lines[1][mid] ^= 0x40 // flip a bit inside record 1's payload
	if err := os.WriteFile(journalPath(dir), bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatalf("corrupt record must not fail open: %v", err)
	}
	defer c2.Close()
	if _, hit, err := c2.Synthesize(t1, testOpts); err != nil || hit {
		t.Fatalf("corrupt record must be a clean miss, got hit=%v err=%v", hit, err)
	}
	if _, hit, err := c2.Synthesize(t2, testOpts); err != nil || !hit {
		t.Fatalf("undamaged record must still hit: hit=%v err=%v", hit, err)
	}
}

func TestDiskVersionMismatchStartsFresh(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(23))
	target := linalg.RandomUnitary(4, rng)

	c1, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustSynth(t, c1, target)
	c1.Close()

	// Rewrite the header as a future version with a VALID checksum: the
	// version check alone must reject the journal.
	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfterN(data, []byte{'\n'}, 2)
	head := formatLine([]byte(`{"v":99,"grid":1e-12,"tol":0,"cap":8}`))
	if err := os.WriteFile(journalPath(dir), append(head, lines[1]...), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatalf("version mismatch must open cleanly: %v", err)
	}
	defer c2.Close()
	if c2.Len() != 0 {
		t.Fatalf("foreign-version journal loaded %d entries, want 0", c2.Len())
	}
	if _, hit, err := c2.Synthesize(target, testOpts); err != nil || hit {
		t.Fatalf("want clean miss after version mismatch, got hit=%v err=%v", hit, err)
	}
}

func TestDiskToleranceMismatchStartsFresh(t *testing.T) {
	// Keys are derived from the quantization grid, so a journal written
	// under a different tolerance must be discarded wholesale.
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(24))
	target := linalg.RandomUnitary(4, rng)

	c1, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustSynth(t, c1, target)
	c1.Close()

	c2, err := OpenDisk(dir, 8, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 0 {
		t.Fatalf("journal written at tol=0 loaded into tol=1e-6 cache: %d entries", c2.Len())
	}
	c2.Close()
}

func TestDiskCapacityChangeKeepsEntries(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(25))
	target := linalg.RandomUnitary(4, rng)

	c1, err := OpenDisk(dir, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	mustSynth(t, c1, target)
	c1.Close()

	c2, err := OpenDisk(dir, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, hit, err := c2.Synthesize(target, testOpts); err != nil || !hit {
		t.Fatalf("capacity change must keep valid entries: hit=%v err=%v", hit, err)
	}
}

func TestDiskCompactionBoundsJournalAndKeepsLRU(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(26))
	const capacity = 2
	targets := make([]*linalg.Matrix, 6)
	c1, err := OpenDisk(dir, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range targets {
		targets[i] = linalg.RandomUnitary(4, rng)
		if _, _, err := c1.Synthesize(targets[i], testOpts); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(data, []byte{'\n'}); lines > 1+2*capacity {
		t.Fatalf("journal has %d lines after 6 inserts at cap %d; compaction must bound it to <= %d",
			lines, capacity, 1+2*capacity)
	}

	c2, err := OpenDisk(dir, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != capacity {
		t.Fatalf("reloaded Len = %d, want %d", c2.Len(), capacity)
	}
	// The two most recently inserted targets survive; older ones are gone.
	// Hits are probed first: a miss re-synthesizes and inserts, which would
	// evict the very entries under test from the capacity-2 cache.
	for _, i := range []int{4, 5} {
		if _, hit, err := c2.Synthesize(targets[i], testOpts); err != nil || !hit {
			t.Fatalf("target %d: hit=%v err=%v, want hit", i, hit, err)
		}
	}
	for _, i := range []int{0, 1, 2, 3} {
		if _, hit, err := c2.Synthesize(targets[i], testOpts); err != nil || hit {
			t.Fatalf("target %d: hit=%v err=%v, want miss", i, hit, err)
		}
	}
}

func TestDiskCloseIdempotentAndMemoryOnlyNoop(t *testing.T) {
	c := New(4, 0)
	if err := c.Close(); err != nil {
		t.Fatalf("memory-only Close: %v", err)
	}
	dir := t.TempDir()
	d, err := OpenDisk(dir, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestStatsSubDetectsCounterReset(t *testing.T) {
	prev := Stats{Hits: 10, Misses: 4, Evictions: 2}
	cur := Stats{Hits: 12, Misses: 5, Evictions: 2}
	if got := cur.Sub(prev); got != (Stats{Hits: 2, Misses: 1}) {
		t.Fatalf("normal delta = %+v", got)
	}
	// After a counter reset (e.g. cache reopened), the snapshot runs
	// behind the baseline; unsigned subtraction would wrap to ~2^64.
	reset := Stats{Hits: 3, Misses: 1, Evictions: 0}
	got := reset.Sub(prev)
	if got != reset {
		t.Fatalf("reset delta = %+v, want the post-reset counts %+v", got, reset)
	}
	if got.Hits > 1<<62 || got.Misses > 1<<62 {
		t.Fatal("delta wrapped negative")
	}
}

func TestPhaseFactorAnchorsOnLargestMagnitudeEntry(t *testing.T) {
	// Regression: the phase anchor must be the largest-magnitude entry,
	// not the first nonzero one. With leading entries at ~1e-12 (around
	// the quantization grid), anchoring on them would derive the phase
	// from numeric noise and split keys for phase-rotated copies.
	rng := rand.New(rand.NewSource(27))
	m := linalg.RandomUnitary(4, rng)
	for i := 0; i < m.Rows; i++ {
		v := m.At(i, 0)
		m.Set(i, 0, v*complex(1e-12/cmplx.Abs(v), 0))
	}
	p := phaseFactor(m)
	// The anchor entry lands on the positive real axis.
	best, bestMag := 0, 0.0
	for i, v := range m.Data {
		if mag := cmplx.Abs(v); mag > bestMag {
			best, bestMag = i, mag
		}
	}
	anchored := m.Data[best] * p
	if math.Abs(imag(anchored)) > 1e-15*bestMag || real(anchored) <= 0 {
		t.Fatalf("anchor rotated to %v, want positive real", anchored)
	}
	if bestMag < 1e-6 {
		t.Fatalf("test setup: largest magnitude %g unexpectedly tiny", bestMag)
	}
	// Key stability: a global phase rotation must not change the key.
	rot := m.Copy()
	phase := cmplx.Exp(complex(0, 0.7))
	for i := range rot.Data {
		rot.Data[i] *= phase
	}
	if TargetKey(m) != TargetKey(rot) {
		t.Fatal("TargetKey differs under global phase with tiny leading column")
	}
	c := New(4, 0)
	if c.key(m, testOpts.Canonical(2)) != c.key(rot, testOpts.Canonical(2)) {
		t.Fatal("cache key differs under global phase with tiny leading column")
	}
}
