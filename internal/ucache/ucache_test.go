package ucache

import (
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/linalg"
	"repro/internal/sim"
	"repro/internal/synth"
)

var testOpts = synth.Options{Threshold: 0.05, MaxCNOTs: 3, HarvestAll: true, Seed: 7}

func TestHitMatchesColdResult(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	target := linalg.RandomUnitary(4, rng)
	c := New(8, 0)

	cold, hit, err := c.Synthesize(target, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first lookup reported as hit")
	}
	warm, hit, err := c.Synthesize(target, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second lookup missed")
	}
	if len(warm.Candidates) != len(cold.Candidates) {
		t.Fatalf("hit has %d candidates, cold %d", len(warm.Candidates), len(cold.Candidates))
	}
	for i := range warm.Candidates {
		w, co := warm.Candidates[i], cold.Candidates[i]
		if w.Distance != co.Distance || w.CNOTs != co.CNOTs {
			t.Errorf("candidate %d: hit (%g, %d) != cold (%g, %d)", i, w.Distance, w.CNOTs, co.Distance, co.CNOTs)
		}
	}
	if warm.Best.Distance != cold.Best.Distance {
		t.Errorf("best distance: hit %g != cold %g", warm.Best.Distance, cold.Best.Distance)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss", st)
	}
}

func TestHitResultIsIndependentCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	target := linalg.RandomUnitary(4, rng)
	c := New(8, 0)
	first, _, err := c.Synthesize(target, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate-in-place the way internal/core does; the cache must be
	// unaffected.
	kept := first.Candidates[:0]
	for _, cand := range first.Candidates {
		cand.Distance = -1
		cand.Circuit.Ops = nil
		kept = append(kept, cand)
	}
	second, hit, err := c.Synthesize(target, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("expected hit")
	}
	for i, cand := range second.Candidates {
		if cand.Distance < 0 || len(cand.Circuit.Ops) == 0 {
			t.Fatalf("candidate %d leaked caller mutations: %+v", i, cand)
		}
	}
}

func TestGlobalPhaseHits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	target := linalg.RandomUnitary(4, rng)
	c := New(8, 0)
	if _, hit, err := c.Synthesize(target, testOpts); err != nil || hit {
		t.Fatal(err, hit)
	}
	rotated := target.Copy()
	phase := cmplx.Exp(complex(0, 1.234))
	for i := range rotated.Data {
		rotated.Data[i] *= phase
	}
	res, hit, err := c.Synthesize(rotated, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("global-phase-rotated target missed")
	}
	// HS distance is phase-invariant, so the stored distances stay valid
	// bounds; the inflation term is the numeric noise of d(T, e^{iφ}T).
	u := sim.Unitary(res.Best.Circuit)
	if d := linalg.HSDistance(rotated, u); d > res.Best.Distance+1e-7 {
		t.Errorf("true distance %g exceeds reported %g", d, res.Best.Distance)
	}
}

func TestNearHitInflatesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	target := linalg.RandomUnitary(4, rng)
	c := New(8, 1e-6) // generous tolerance so the perturbation below hits
	cold, _, err := c.Synthesize(target, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := target.Copy()
	perturbed.Data[0] += 1e-9
	res, hit, err := c.Synthesize(perturbed, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("perturbed target missed")
	}
	delta := linalg.HSDistance(target, perturbed)
	for i := range res.Candidates {
		want := cold.Candidates[i].Distance + delta
		if got := res.Candidates[i].Distance; got != want {
			t.Errorf("candidate %d distance %g, want inflated %g", i, got, want)
		}
	}
	// The inflated distances remain true upper bounds (triangle
	// inequality) — the Sec. 3.8 sum over these can only over-count.
	for _, cand := range res.Candidates {
		u := sim.Unitary(cand.Circuit)
		if d := linalg.HSDistance(perturbed, u); d > cand.Distance+1e-9 {
			t.Errorf("true distance %g exceeds reported bound %g", d, cand.Distance)
		}
	}
}

func TestHitReturnsCircuitWithinEpsilon(t *testing.T) {
	// Acceptance test: a hit must return a circuit within the requested
	// quality. Synthesize to threshold ε cold, then verify the hit's best
	// candidate still satisfies ε against the (re-requested) target.
	rng := rand.New(rand.NewSource(5))
	target := linalg.RandomUnitary(4, rng)
	const eps = 0.05
	opts := synth.Options{Threshold: eps, MaxCNOTs: 3, Seed: 11}
	c := New(8, 0)
	if _, _, err := c.Synthesize(target, opts); err != nil {
		t.Fatal(err)
	}
	res, hit, err := c.Synthesize(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("expected hit")
	}
	if res.Best.Distance > eps {
		t.Fatalf("hit best distance %g > requested ε %g", res.Best.Distance, eps)
	}
	u := sim.Unitary(res.Best.Circuit)
	if d := linalg.HSDistance(target, u); d > eps {
		t.Fatalf("hit circuit's true distance %g > requested ε %g", d, eps)
	}
}

func TestThresholdIgnoredUnderHarvestAll(t *testing.T) {
	// With HarvestAll the threshold only gates early exit (disabled), so
	// an ε-sweep over the same target should hit after the first ε.
	rng := rand.New(rand.NewSource(6))
	target := linalg.RandomUnitary(4, rng)
	c := New(8, 0)
	a := testOpts
	a.Threshold = 0.02
	if _, hit, err := c.Synthesize(target, a); err != nil || hit {
		t.Fatal(err, hit)
	}
	b := testOpts
	b.Threshold = 0.1
	if _, hit, err := c.Synthesize(target, b); err != nil || !hit {
		t.Fatalf("ε=0.1 after ε=0.02 under HarvestAll: hit=%v err=%v", hit, err)
	}
	// Without HarvestAll the threshold steers the search and must key.
	na := testOpts
	na.HarvestAll = false
	na.Threshold = 0.02
	if _, hit, err := c.Synthesize(target, na); err != nil || hit {
		t.Fatal(err, hit)
	}
	nb := na
	nb.Threshold = 0.1
	if _, hit, err := c.Synthesize(target, nb); err != nil || hit {
		t.Fatalf("threshold change without HarvestAll must miss: hit=%v err=%v", hit, err)
	}
}

func TestDefaultedOptionsShareEntries(t *testing.T) {
	// Beam:0 canonicalizes to Beam:2 — both spellings must map to the
	// same entry.
	rng := rand.New(rand.NewSource(7))
	target := linalg.RandomUnitary(4, rng)
	c := New(8, 0)
	a := testOpts
	a.Beam = 0
	if _, hit, err := c.Synthesize(target, a); err != nil || hit {
		t.Fatal(err, hit)
	}
	b := testOpts
	b.Beam = 2
	if _, hit, err := c.Synthesize(target, b); err != nil || !hit {
		t.Fatalf("explicit default Beam must hit: hit=%v err=%v", hit, err)
	}
}

func TestLRUEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := New(2, 0)
	targets := make([]*linalg.Matrix, 3)
	for i := range targets {
		targets[i] = linalg.RandomUnitary(2, rng)
		if _, _, err := c.Synthesize(targets[i], testOpts); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// targets[0] was least recently used and must be gone.
	if _, hit, err := c.Synthesize(targets[0], testOpts); err != nil || hit {
		t.Fatalf("evicted entry hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.Synthesize(targets[2], testOpts); err != nil || !hit {
		t.Fatalf("recent entry missed: hit=%v err=%v", hit, err)
	}
}

func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	target := linalg.RandomUnitary(4, rng)
	c := New(8, 0)
	const callers = 8
	results := make([]synth.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := c.Synthesize(target, testOpts)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", st.Misses)
	}
	if st.Hits != callers-1 {
		t.Errorf("hits = %d, want %d", st.Hits, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i].Best.Distance != results[0].Best.Distance {
			t.Errorf("caller %d best distance %g != caller 0 %g", i, results[i].Best.Distance, results[0].Best.Distance)
		}
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(8, 0)
	bad := linalg.Identity(4)
	bad.Set(0, 0, 2) // not unitary
	if _, _, err := c.Synthesize(bad, testOpts); err == nil {
		t.Fatal("non-unitary target accepted")
	}
	if c.Len() != 0 {
		t.Fatalf("error cached: Len = %d", c.Len())
	}
}

func TestTargetKeyPhaseInvariantAndContentSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	u := linalg.RandomUnitary(4, rng)
	rotated := u.Copy()
	phase := cmplx.Exp(complex(0, -2.1))
	for i := range rotated.Data {
		rotated.Data[i] *= phase
	}
	if TargetKey(u) != TargetKey(rotated) {
		t.Error("TargetKey not global-phase invariant")
	}
	other := linalg.RandomUnitary(4, rng)
	if TargetKey(u) == TargetKey(other) {
		t.Error("TargetKey collides for unrelated unitaries")
	}
}
