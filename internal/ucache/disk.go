// Disk persistence for the synthesis cache: an append-only, checksummed
// journal that lets warm hits survive process restarts.
//
// Journal format (one record per line, text):
//
//	<16 hex digits> <JSON payload>\n
//
// The hex prefix is the FNV-1a 64 checksum of the payload bytes. The first
// line's payload is a header {v, grid, tol, cap} identifying the journal
// version and the key-derivation parameters; every following line is one
// cache entry (key, phase-normalized target, full synthesis result).
//
// Invalidation rules:
//
//   - A header whose version, grid bits, or tolerance bits differ from the
//     opening cache is a clean miss: the journal is discarded and rewritten
//     empty. Keys are derived from grid/tol, so entries written under other
//     parameters must never be trusted (a stale key could alias a different
//     target bucket). A capacity change only rewrites the header; entries
//     stay valid and are trimmed to the new bound by the in-memory LRU.
//   - A record whose checksum does not match its payload (torn write,
//     truncated tail after a crash, bit rot) is skipped; loading continues
//     with the next line. Corruption can only lose entries, never fabricate
//     a hit: every lookup still verifies the stored target against the
//     request before returning a result.
//   - A record that decodes but fails structural validation (dimension
//     mismatch, unknown gate name, no candidates) is skipped the same way.
//
// Writes append one record per insert under the cache lock; a crash can
// only tear the final line, which the checksum rejects on the next load.
// Superseded and evicted records are left in place until the journal holds
// more than twice the cache capacity, at which point it is compacted: the
// live entries are rewritten (LRU order, oldest first) to a temporary file
// that atomically replaces the journal. Reloading therefore reconstructs
// the same entry set with the same recency order.
package ucache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/linalg"
	"repro/internal/synth"
)

// diskVersion identifies the journal layout; bump on any incompatible
// change to the header or record schema.
const diskVersion = 1

// syncFile is the fsync seam: the durability points below (journal on
// Close, compaction image before its rename) go through it so tests can
// assert the sync calls actually happen. Appends are NOT synced — an
// entry is a cache optimization, losing the tail of a journal to power
// loss only costs re-synthesis — but an image we just told the OS to
// rename over the journal, and a journal we are about to report as
// cleanly closed, must both be on stable storage first.
var syncFile = func(f *os.File) error { return f.Sync() }

// journalName is the journal's file name inside the cache directory.
const journalName = "synth.journal"

type diskHeader struct {
	V    int     `json:"v"`
	Grid float64 `json:"grid"`
	Tol  float64 `json:"tol"`
	Cap  int     `json:"cap"`
}

// diskMatrix carries a complex matrix as interleaved (re, im) pairs; JSON
// floats round-trip bit-for-bit (shortest-form encoding), so the stored
// target compares bit-identical after reload.
type diskMatrix struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

type diskOp struct {
	Name   string    `json:"name"`
	Qubits []int     `json:"qubits"`
	Params []float64 `json:"params,omitempty"`
}

type diskCircuit struct {
	NumQubits int      `json:"n"`
	Ops       []diskOp `json:"ops"`
}

type diskCandidate struct {
	Circuit  diskCircuit `json:"circuit"`
	Distance float64     `json:"distance"`
	CNOTs    int         `json:"cnots"`
}

type diskRecord struct {
	Key         uint64          `json:"key"`
	Target      diskMatrix      `json:"target"`
	Best        diskCandidate   `json:"best"`
	Candidates  []diskCandidate `json:"candidates"`
	Evaluations int             `json:"evals"`
}

// diskStore is the journal side of a disk-backed cache.
type diskStore struct {
	path    string
	f       *os.File
	records int   // journal body records, live + superseded
	err     error // first append/compact failure; surfaced by Close
}

// OpenDisk returns a cache whose entries persist in dir. The directory is
// created if needed; an existing journal written with the same version,
// grid, and tolerance is loaded (entries trimmed to capacity), anything
// else is discarded and started fresh. The returned cache behaves exactly
// like New(capacity, tol) plus persistence; call Close to release the
// journal file. Persistence is best-effort: if an append fails the cache
// keeps serving from memory and Close reports the first write error.
func OpenDisk(dir string, capacity int, tol float64) (*Cache, error) {
	c := New(capacity, tol)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ucache: create cache dir: %w", err)
	}
	ds := &diskStore{path: filepath.Join(dir, journalName)}

	data, err := os.ReadFile(ds.path)
	switch {
	case err == nil:
		headerOK := c.loadJournal(data, ds)
		// Start fresh on a bad/foreign header; rewrite also when the load
		// left dead weight beyond the compaction bound.
		if !headerOK || ds.records > 2*c.cap {
			if err := ds.rewrite(c); err != nil {
				return nil, err
			}
		}
	case os.IsNotExist(err):
		if err := ds.rewrite(c); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("ucache: read journal: %w", err)
	}

	f, err := os.OpenFile(ds.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ucache: open journal: %w", err)
	}
	ds.f = f
	c.stats = Stats{} // loading is not cache activity
	c.disk = ds
	return c, nil
}

// Close releases the journal file of a disk-backed cache and reports the
// first persistence error encountered, if any. On a memory-only cache it
// is a no-op.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disk == nil {
		return nil
	}
	ds := c.disk
	c.disk = nil
	if ds.f != nil {
		if err := syncFile(ds.f); ds.err == nil && err != nil {
			ds.err = fmt.Errorf("ucache: sync journal: %w", err)
		}
		if err := ds.f.Close(); ds.err == nil && err != nil {
			ds.err = fmt.Errorf("ucache: close journal: %w", err)
		}
	}
	return ds.err
}

// loadJournal parses journal bytes into the (empty) cache. It reports
// whether the header matched this cache's parameters; entries are only
// inserted when it did. ds.records counts the body lines seen, including
// skipped and superseded ones, so the caller can decide to compact.
func (c *Cache) loadJournal(data []byte, ds *diskStore) bool {
	lines := bytes.Split(data, []byte{'\n'})
	if len(lines) == 0 {
		return false
	}
	payload, ok := checkLine(lines[0])
	if !ok {
		return false
	}
	var h diskHeader
	if json.Unmarshal(payload, &h) != nil {
		return false
	}
	if h.V != diskVersion ||
		math.Float64bits(h.Grid) != math.Float64bits(c.grid) ||
		math.Float64bits(h.Tol) != math.Float64bits(c.tol) {
		return false
	}
	for _, line := range lines[1:] {
		if len(line) == 0 {
			continue
		}
		ds.records++
		payload, ok := checkLine(line)
		if !ok {
			continue // torn/corrupt record: skip, keep loading
		}
		var rec diskRecord
		if json.Unmarshal(payload, &rec) != nil {
			continue
		}
		target, res, ok := rec.decode()
		if !ok {
			continue
		}
		c.insert(rec.Key, target, res)
	}
	return h.Cap == c.cap
}

// appendRecord journals one freshly inserted entry. Caller holds c.mu.
// Failures are remembered and the cache degrades to memory-only behavior.
func (ds *diskStore) appendRecord(key uint64, target *linalg.Matrix, res synth.Result) {
	if ds.f == nil {
		return
	}
	rec := encodeRecord(key, target, res)
	payload, err := json.Marshal(rec)
	if err != nil {
		if ds.err == nil {
			ds.err = fmt.Errorf("ucache: encode record: %w", err)
		}
		return
	}
	if _, err := ds.f.Write(formatLine(payload)); err != nil {
		if ds.err == nil {
			ds.err = fmt.Errorf("ucache: append record: %w", err)
		}
		ds.f.Close()
		ds.f = nil
		return
	}
	ds.records++
}

// maybeCompact rewrites the journal once it holds more than twice the
// cache capacity in records. Caller holds c.mu.
func (c *Cache) maybeCompact() {
	ds := c.disk
	if ds == nil || ds.f == nil || ds.records <= 2*c.cap {
		return
	}
	if ds.f != nil {
		ds.f.Close()
		ds.f = nil
	}
	if err := ds.rewrite(c); err != nil {
		if ds.err == nil {
			ds.err = err
		}
		return
	}
	f, err := os.OpenFile(ds.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		if ds.err == nil {
			ds.err = fmt.Errorf("ucache: reopen journal: %w", err)
		}
		return
	}
	ds.f = f
}

// rewrite replaces the journal with a compact image of the cache: header
// plus live entries in LRU order (oldest first, so a sequential reload
// reconstructs the same recency order). The new image lands under a
// temporary name and atomically renames over the journal.
func (ds *diskStore) rewrite(c *Cache) error {
	var buf bytes.Buffer
	head, err := json.Marshal(diskHeader{V: diskVersion, Grid: c.grid, Tol: c.tol, Cap: c.cap})
	if err != nil {
		return fmt.Errorf("ucache: encode header: %w", err)
	}
	buf.Write(formatLine(head))
	n := 0
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		payload, err := json.Marshal(encodeRecord(e.key, e.target, e.res))
		if err != nil {
			return fmt.Errorf("ucache: encode record: %w", err)
		}
		buf.Write(formatLine(payload))
		n++
	}
	// The image is synced before the rename: without the fsync the rename
	// can become durable ahead of the data it points at, and a power loss
	// would leave a journal of committed entries reading back empty.
	tmp := ds.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ucache: write journal: %w", err)
	}
	if _, err := tf.Write(buf.Bytes()); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("ucache: write journal: %w", err)
	}
	if err := syncFile(tf); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("ucache: sync journal: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ucache: close journal: %w", err)
	}
	if err := os.Rename(tmp, ds.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ucache: replace journal: %w", err)
	}
	ds.records = n
	return nil
}

// formatLine renders "<fnv64a hex> <payload>\n".
func formatLine(payload []byte) []byte {
	h := fnv.New64a()
	h.Write(payload)
	out := make([]byte, 0, len(payload)+18)
	out = fmt.Appendf(out, "%016x ", h.Sum64())
	out = append(out, payload...)
	return append(out, '\n')
}

// checkLine splits a journal line into its payload and verifies the
// checksum prefix.
func checkLine(line []byte) ([]byte, bool) {
	if len(line) < 18 || line[16] != ' ' {
		return nil, false
	}
	var sum uint64
	if _, err := fmt.Sscanf(string(line[:16]), "%016x", &sum); err != nil {
		return nil, false
	}
	payload := line[17:]
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != sum {
		return nil, false
	}
	return payload, true
}

func encodeRecord(key uint64, target *linalg.Matrix, res synth.Result) diskRecord {
	return diskRecord{
		Key:         key,
		Target:      encodeMatrix(target),
		Best:        encodeCandidate(res.Best),
		Candidates:  encodeCandidates(res.Candidates),
		Evaluations: res.Evaluations,
	}
}

func encodeMatrix(m *linalg.Matrix) diskMatrix {
	data := make([]float64, 0, 2*len(m.Data))
	for _, v := range m.Data {
		data = append(data, real(v), imag(v))
	}
	return diskMatrix{Rows: m.Rows, Cols: m.Cols, Data: data}
}

func encodeCandidates(cs []synth.Candidate) []diskCandidate {
	out := make([]diskCandidate, len(cs))
	for i, c := range cs {
		out[i] = encodeCandidate(c)
	}
	return out
}

func encodeCandidate(c synth.Candidate) diskCandidate {
	ops := make([]diskOp, len(c.Circuit.Ops))
	for i, op := range c.Circuit.Ops {
		ops[i] = diskOp{Name: op.Name, Qubits: op.Qubits, Params: op.Params}
	}
	return diskCandidate{
		Circuit:  diskCircuit{NumQubits: c.Circuit.NumQubits, Ops: ops},
		Distance: c.Distance,
		CNOTs:    c.CNOTs,
	}
}

// decode validates and reconstructs a journal record. ok is false for any
// structurally invalid record (wrong dimensions, unknown gate, empty
// result) — such records are skipped at load.
func (r *diskRecord) decode() (*linalg.Matrix, synth.Result, bool) {
	if r.Target.Rows <= 0 || r.Target.Cols <= 0 ||
		len(r.Target.Data) != 2*r.Target.Rows*r.Target.Cols ||
		len(r.Candidates) == 0 {
		return nil, synth.Result{}, false
	}
	target := linalg.New(r.Target.Rows, r.Target.Cols)
	for i := range target.Data {
		target.Data[i] = complex(r.Target.Data[2*i], r.Target.Data[2*i+1])
	}
	best, ok := r.Best.decode()
	if !ok {
		return nil, synth.Result{}, false
	}
	res := synth.Result{Best: best, Evaluations: r.Evaluations}
	res.Candidates = make([]synth.Candidate, len(r.Candidates))
	for i := range r.Candidates {
		if res.Candidates[i], ok = r.Candidates[i].decode(); !ok {
			return nil, synth.Result{}, false
		}
	}
	return target, res, true
}

func (d *diskCandidate) decode() (synth.Candidate, bool) {
	if d.Circuit.NumQubits <= 0 {
		return synth.Candidate{}, false
	}
	c := circuit.New(d.Circuit.NumQubits)
	for _, op := range d.Circuit.Ops {
		spec, err := gate.Lookup(op.Name)
		if err != nil {
			return synth.Candidate{}, false
		}
		if len(op.Qubits) != spec.Qubits || len(op.Params) != spec.Params {
			return synth.Candidate{}, false
		}
		for _, q := range op.Qubits {
			if q < 0 || q >= d.Circuit.NumQubits {
				return synth.Candidate{}, false
			}
		}
		c.Ops = append(c.Ops, circuit.Op{Name: op.Name, Qubits: op.Qubits, Params: op.Params})
	}
	return synth.Candidate{Circuit: c, Distance: d.Distance, CNOTs: d.CNOTs}, true
}
