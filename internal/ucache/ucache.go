// Package ucache memoizes approximate-synthesis results by target unitary.
// Real circuits repeat structure — Trotter steps, mirrored subcircuits,
// repeated ansatz layers — so the QUEST pipeline keeps re-synthesizing the
// same (or nearly the same) block unitary. Synthesis costs seconds per
// block; a cache lookup costs a hash of the target matrix.
//
// Keys are global-phase invariant: the target is rotated so its
// largest-magnitude entry becomes positive real, entries are quantized
// to a grid no finer than the cache tolerance, and the quantized bits
// are hashed (FNV-1a) together with a fingerprint of the canonical
// synthesis options. Two targets that differ only by a global phase, or
// by less than the quantization grid, map to the same bucket; entries in
// a bucket are verified against the requested target before a result is
// returned.
//
// The cache has two matching modes:
//
//   - strict (tolerance 0, the default): only a bit-identical target
//     reuses an entry. Synthesis is deterministic, so a strict hit
//     returns exactly what re-running the search would have produced —
//     pipelines stay bit-reproducible for any worker count no matter
//     which worker populated the entry first.
//   - tolerance (tolerance > 0): targets equal up to a global phase
//     reuse an entry verbatim (the HS distance is phase-invariant), and
//     targets within the tolerance reuse it with inflated distances.
//     More hits, but when two blocks are near-identical rather than
//     identical, which one's synthesis lands in the cache depends on
//     completion order — reported distances remain valid bounds either
//     way, but runs are only reproducible for a fixed worker count.
//
// Correctness (QUEST Sec. 3.8): the pipeline's full-circuit distance
// bound is the sum of reported per-block distances, so a cache hit must
// never under-report. An exact hit (stored target equals the request
// bit-for-bit) returns the stored distances verbatim. A near hit within
// the tolerance returns distances inflated by d(T, T′), the HS distance
// between the stored and requested targets: the HS process distance is
// the sine of the Fubini-Study angle and satisfies the triangle
// inequality, so for every candidate V,
//
//	d(V, T′) ≤ d(V, T) + d(T, T′),
//
// and the inflated value remains a true upper bound — a hit can only
// tighten, never loosen, the Sec. 3.8 bound.
//
// Concurrent lookups of the same key are collapsed into one synthesis
// call (per-key singleflight); errors are never cached.
package ucache

import (
	"container/list"
	"context"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/linalg"
	"repro/internal/synth"
)

// DefaultCapacity is the entry bound of caches created with New(0, _).
const DefaultCapacity = 256

// DefaultTolerance is the suggested match tolerance for tolerance-mode
// caches (New's tol argument); strict-mode caches (tol <= 0) quantize
// keys at minGrid instead.
const DefaultTolerance = 1e-9

// minGrid floors the quantization grid so that a zero/tiny tolerance
// still buckets targets that differ only in the last few float bits.
const minGrid = 1e-12

// exactTol is the per-entry threshold below which a stored target is
// treated as identical to the request up to a global phase: distances
// are returned verbatim (the HS distance is phase-invariant). It sits
// far above per-entry float rounding (~1e-16) and far below any
// physically distinct target, and is checked entrywise because the
// direct HS distance d = sqrt(1-x) loses half the mantissa near x = 1
// (its noise floor is ~1e-8, which would misclassify identical targets
// as near hits).
const exactTol = 1e-12

// Stats counts cache activity. Hits include lookups served by a
// concurrent in-flight synthesis of the same key.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Sub returns s - prev, the activity between two snapshots. If any
// counter in s is smaller than in prev, the counters were reset between
// the snapshots (e.g. the cache was reopened) and an unsigned subtraction
// would wrap to a huge bogus delta — in that case s itself is returned,
// the activity since the reset.
func (s Stats) Sub(prev Stats) Stats {
	if s.Hits < prev.Hits || s.Misses < prev.Misses || s.Evictions < prev.Evictions {
		return s
	}
	return Stats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
	}
}

type entry struct {
	key    uint64
	target *linalg.Matrix
	res    synth.Result
}

// flight is one in-progress synthesis shared by concurrent callers.
type flight struct {
	done   chan struct{}
	target *linalg.Matrix
	res    synth.Result
	err    error
}

// Cache is a bounded, concurrency-safe synthesis memoizer. The zero
// value is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	tol     float64
	grid    float64
	ll      *list.List // front = most recently used; values are *entry
	buckets map[uint64][]*list.Element
	flights map[uint64]*flight
	stats   Stats
	disk    *diskStore // nil for memory-only caches; see OpenDisk
}

// New returns a cache bounded to capacity entries with the given match
// tolerance. Capacity <= 0 selects DefaultCapacity. Tolerance <= 0
// selects strict matching (only targets identical up to a global phase
// reuse an entry — the reproducible mode); a positive tolerance enables
// near-hit reuse with distance inflation (see the package comment,
// DefaultTolerance is the suggested value).
func New(capacity int, tol float64) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if tol < 0 {
		tol = 0
	}
	return &Cache{
		cap:     capacity,
		tol:     tol,
		grid:    math.Max(tol, minGrid),
		ll:      list.New(),
		buckets: map[uint64][]*list.Element{},
		flights: map[uint64]*flight{},
	}
}

var (
	sharedOnce sync.Once
	shared     *Cache
)

// Shared returns the process-wide default cache (DefaultCapacity,
// strict matching), created on first use.
func Shared() *Cache {
	sharedOnce.Do(func() { shared = New(0, 0) })
	return shared
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Synthesize is SynthesizeCtx with a background context.
func (c *Cache) Synthesize(target *linalg.Matrix, opts synth.Options) (synth.Result, bool, error) {
	return c.SynthesizeCtx(context.Background(), target, opts)
}

// SynthesizeCtx returns a synthesis result for the target, reusing a
// cached result when one matches the target (up to global phase, within
// the cache tolerance) under the same canonical options. The boolean
// reports whether the result came from the cache (or a shared in-flight
// call). Results are deep copies; callers may mutate them freely.
// Errors are returned to every waiting caller and never cached.
func (c *Cache) SynthesizeCtx(ctx context.Context, target *linalg.Matrix, opts synth.Options) (synth.Result, bool, error) {
	n := 0
	for 1<<n < target.Rows {
		n++
	}
	copts := opts.Canonical(n)
	key := c.key(target, copts)

	var f *flight
	for f == nil {
		c.mu.Lock()
		if res, ok := c.lookup(key, target); ok {
			c.stats.Hits++
			c.mu.Unlock()
			return res, true, nil
		}
		prev, inflight := c.flights[key]
		if !inflight {
			f = &flight{done: make(chan struct{}), target: target.Copy()}
			c.flights[key] = f
			c.stats.Misses++
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		select {
		case <-prev.done:
		case <-ctx.Done():
			return synth.Result{}, false, ctx.Err()
		}
		if prev.err != nil {
			return synth.Result{}, false, prev.err
		}
		if c.tol <= 0 && phaseAlignedDiff(prev.target, target) > exactTol {
			// Strict mode: the winner synthesized a different target that
			// merely shares our quantized key. Loop and synthesize our own
			// (the winner's entry is in the cache now, so the re-lookup
			// misses and we claim the flight slot).
			continue
		}
		// The winner's target matches ours (exactly in strict mode, within
		// the tolerance otherwise) — adjust like a cache hit.
		res := adjustedClone(prev.res, prev.target, target)
		c.mu.Lock()
		c.stats.Hits++
		c.mu.Unlock()
		return res, true, nil
	}

	res, err := synth.SynthesizeCtx(ctx, target, copts)
	// The caller owns (and mutates) the live res, so waiters must clone
	// from an immutable snapshot — the same one the cache stores; lookups
	// and waiters only ever deep-copy it.
	var stored synth.Result
	if err == nil {
		stored = cloneResult(res)
	}
	f.res, f.err = stored, err

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.insert(key, f.target, stored)
	}
	c.mu.Unlock()
	close(f.done)
	return res, false, err
}

// lookup scans the key's bucket for a stored target matching the request
// and returns an adjusted deep copy of its result. Caller holds c.mu.
func (c *Cache) lookup(key uint64, target *linalg.Matrix) (synth.Result, bool) {
	for _, el := range c.buckets[key] {
		e := el.Value.(*entry)
		if e.target.Rows != target.Rows || e.target.Cols != target.Cols {
			continue
		}
		if phaseAlignedDiff(e.target, target) <= exactTol {
			c.ll.MoveToFront(el)
			return cloneResult(e.res), true
		}
		if c.tol <= 0 {
			continue // strict mode: exact (up-to-phase) matches only
		}
		if d := linalg.HSDistance(e.target, target); d <= c.tol {
			c.ll.MoveToFront(el)
			return inflatedClone(e.res, d), true
		}
	}
	return synth.Result{}, false
}

// insert stores a result (already deep-copied) and evicts the least
// recently used entries beyond capacity. Caller holds c.mu. Disk-backed
// caches journal the entry and compact the journal when it outgrows twice
// the capacity (c.disk is still nil while OpenDisk replays the journal,
// so loading never re-journals).
func (c *Cache) insert(key uint64, target *linalg.Matrix, res synth.Result) {
	if c.disk != nil {
		c.disk.appendRecord(key, target, res)
	}
	el := c.ll.PushFront(&entry{key: key, target: target, res: res})
	c.buckets[key] = append(c.buckets[key], el)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		e := back.Value.(*entry)
		lst := c.buckets[e.key]
		for i, bel := range lst {
			if bel == back {
				lst = append(lst[:i], lst[i+1:]...)
				break
			}
		}
		if len(lst) == 0 {
			delete(c.buckets, e.key)
		} else {
			c.buckets[e.key] = lst
		}
		c.stats.Evictions++
	}
	c.maybeCompact()
}

// adjustedClone returns a deep copy of res adjusted from the stored
// target to the requested one: verbatim when they are bit-identical,
// distance-inflated otherwise.
func adjustedClone(res synth.Result, stored, requested *linalg.Matrix) synth.Result {
	if phaseAlignedDiff(stored, requested) <= exactTol {
		return cloneResult(res)
	}
	return inflatedClone(res, linalg.HSDistance(stored, requested))
}

// phaseAlignedDiff returns the largest entrywise difference between a
// and b after removing the global phase that best aligns a to b.
func phaseAlignedDiff(a, b *linalg.Matrix) float64 {
	t := linalg.HSInner(a, b)
	mag := math.Hypot(real(t), imag(t))
	p := complex(1, 0)
	if mag > 0 {
		p = t / complex(mag, 0)
	}
	worst := 0.0
	for i := range a.Data {
		d := a.Data[i]*p - b.Data[i]
		if m := math.Hypot(real(d), imag(d)); m > worst {
			worst = m
		}
	}
	return worst
}

// cloneResult deep-copies a synthesis result so cached state and caller
// state never alias (internal/core truncates Candidates in place).
func cloneResult(r synth.Result) synth.Result {
	out := r
	out.Candidates = make([]synth.Candidate, len(r.Candidates))
	for i, cand := range r.Candidates {
		cand.Circuit = cand.Circuit.Clone()
		out.Candidates[i] = cand
	}
	out.Best.Circuit = out.Best.Circuit.Clone()
	return out
}

// inflatedClone deep-copies a result with every reported distance
// increased by delta (the stored-to-requested target distance), keeping
// the distances valid upper bounds via the triangle inequality.
func inflatedClone(r synth.Result, delta float64) synth.Result {
	out := cloneResult(r)
	for i := range out.Candidates {
		out.Candidates[i].Distance += delta
	}
	out.Best.Distance += delta
	return out
}

// key hashes the phase-normalized, grid-quantized target together with
// the canonical options fingerprint.
func (c *Cache) key(target *linalg.Matrix, copts synth.Options) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }

	wu(uint64(target.Rows))
	wu(uint64(target.Cols))
	phase := phaseFactor(target)
	for _, v := range target.Data {
		w := v * phase
		wu(uint64(int64(math.Round(real(w) / c.grid))))
		wu(uint64(int64(math.Round(imag(w) / c.grid))))
	}

	// Options fingerprint: every knob that steers the search. Threshold
	// is skipped under HarvestAll, where it only gates early termination
	// that HarvestAll disables — so ε-sweeps over the same blocks hit.
	if !copts.HarvestAll {
		wf(copts.Threshold)
	}
	wu(uint64(int64(copts.MaxCNOTs)))
	wu(uint64(int64(copts.Beam)))
	wu(uint64(int64(copts.ReseedEvery)))
	wu(uint64(int64(copts.Restarts)))
	wu(uint64(int64(copts.KeepPerDepth)))
	if copts.HarvestAll {
		wu(1)
	} else {
		wu(0)
	}
	wu(uint64(copts.Seed))
	wu(uint64(int64(copts.Strategy)))
	wu(uint64(int64(copts.NodeBudget)))
	wu(uint64(len(copts.CouplingPairs)))
	for _, p := range copts.CouplingPairs {
		wu(uint64(int64(p[0])))
		wu(uint64(int64(p[1])))
	}
	return h.Sum64()
}

// phaseFactor returns the unit complex number that rotates the target's
// largest-magnitude entry (lowest index on ties) onto the positive real
// axis, removing the physically meaningless global phase from the key.
func phaseFactor(m *linalg.Matrix) complex128 {
	best := 0
	bestMag := 0.0
	for i, v := range m.Data {
		mag := real(v)*real(v) + imag(v)*imag(v)
		if mag > bestMag {
			bestMag = mag
			best = i
		}
	}
	v := m.Data[best]
	mag := math.Hypot(real(v), imag(v))
	if mag == 0 {
		return 1
	}
	return complex(real(v)/mag, -imag(v)/mag)
}

// TargetKey returns the phase-invariant content hash of a unitary at the
// default quantization grid, with no options mixed in. The pipeline uses
// it to derive per-block synthesis seeds from block content, so identical
// blocks run identical searches (and therefore share cache entries).
func TargetKey(m *linalg.Matrix) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	wu(uint64(m.Rows))
	wu(uint64(m.Cols))
	phase := phaseFactor(m)
	for _, v := range m.Data {
		w := v * phase
		wu(uint64(int64(math.Round(real(w) / DefaultTolerance))))
		wu(uint64(int64(math.Round(imag(w) / DefaultTolerance))))
	}
	return h.Sum64()
}
