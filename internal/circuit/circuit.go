// Package circuit defines the quantum circuit intermediate representation
// used across the repository: a flat list of gate operations on numbered
// qubits, plus the structural queries QUEST needs (CNOT count, depth,
// composition, inversion, qubit remapping).
//
// Global qubit-ordering convention: qubit 0 is the LEAST significant bit of
// a computational basis index (the Qiskit convention). Within a single
// gate's matrix the first qubit operand is the most significant local bit.
package circuit

import (
	"fmt"
	"strings"

	"repro/internal/gate"
)

// Op is one gate application.
type Op struct {
	// Name is a registered gate name (see package gate).
	Name string
	// Qubits are the operand qubit indices, in gate-operand order.
	Qubits []int
	// Params are the gate's real parameters (nil for fixed gates).
	Params []float64
}

// Spec returns the gate spec for the op.
func (o Op) Spec() *gate.Spec { return gate.MustLookup(o.Name) }

// Clone returns a deep copy of the op.
func (o Op) Clone() Op {
	c := Op{Name: o.Name}
	c.Qubits = append([]int(nil), o.Qubits...)
	if o.Params != nil {
		c.Params = append([]float64(nil), o.Params...)
	}
	return c
}

// String renders the op in QASM-like form.
func (o Op) String() string {
	var b strings.Builder
	b.WriteString(o.Name)
	if len(o.Params) > 0 {
		b.WriteByte('(')
		for i, p := range o.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	for i, q := range o.Qubits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	return b.String()
}

// Circuit is an ordered sequence of gate operations on NumQubits qubits.
// The zero value is an empty circuit on zero qubits.
type Circuit struct {
	NumQubits int
	Ops       []Op
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit {
	if n < 0 {
		panic("circuit: negative qubit count")
	}
	return &Circuit{NumQubits: n}
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := New(c.NumQubits)
	out.Ops = make([]Op, len(c.Ops))
	for i, o := range c.Ops {
		out.Ops[i] = o.Clone()
	}
	return out
}

// Append adds an operation, validating the gate name, operand count and
// qubit ranges.
func (c *Circuit) Append(name string, qubits []int, params []float64) error {
	s, err := gate.Lookup(name)
	if err != nil {
		return err
	}
	if len(qubits) != s.Qubits {
		return fmt.Errorf("circuit: gate %s expects %d qubits, got %d", name, s.Qubits, len(qubits))
	}
	if len(params) != s.Params {
		return fmt.Errorf("circuit: gate %s expects %d params, got %d", name, s.Params, len(params))
	}
	// Operand counts are tiny (≤3 for every registered gate), so the
	// duplicate check is a quadratic scan instead of a map: Append is on
	// the partitioner's per-gate path and must not allocate per op.
	for i, q := range qubits {
		if q < 0 || q >= c.NumQubits {
			return fmt.Errorf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits)
		}
		for _, p := range qubits[:i] {
			if p == q {
				return fmt.Errorf("circuit: duplicate qubit %d in %s", q, name)
			}
		}
	}
	c.Ops = append(c.Ops, Op{
		Name:   name,
		Qubits: append([]int(nil), qubits...),
		Params: append([]float64(nil), params...),
	})
	return nil
}

// MustAppend is Append that panics on error; used by circuit generators
// whose operands are correct by construction.
func (c *Circuit) MustAppend(name string, qubits []int, params []float64) {
	if err := c.Append(name, qubits, params); err != nil {
		panic(err)
	}
}

// Convenience builders for the common gates.

// H appends a Hadamard gate.
func (c *Circuit) H(q int) { c.MustAppend("h", []int{q}, nil) }

// X appends a Pauli-X gate.
func (c *Circuit) X(q int) { c.MustAppend("x", []int{q}, nil) }

// Y appends a Pauli-Y gate.
func (c *Circuit) Y(q int) { c.MustAppend("y", []int{q}, nil) }

// Z appends a Pauli-Z gate.
func (c *Circuit) Z(q int) { c.MustAppend("z", []int{q}, nil) }

// S appends an S gate.
func (c *Circuit) S(q int) { c.MustAppend("s", []int{q}, nil) }

// Sdg appends an S-dagger gate.
func (c *Circuit) Sdg(q int) { c.MustAppend("sdg", []int{q}, nil) }

// T appends a T gate.
func (c *Circuit) T(q int) { c.MustAppend("t", []int{q}, nil) }

// Tdg appends a T-dagger gate.
func (c *Circuit) Tdg(q int) { c.MustAppend("tdg", []int{q}, nil) }

// RX appends an X rotation.
func (c *Circuit) RX(q int, theta float64) { c.MustAppend("rx", []int{q}, []float64{theta}) }

// RY appends a Y rotation.
func (c *Circuit) RY(q int, theta float64) { c.MustAppend("ry", []int{q}, []float64{theta}) }

// RZ appends a Z rotation.
func (c *Circuit) RZ(q int, theta float64) { c.MustAppend("rz", []int{q}, []float64{theta}) }

// P appends a phase gate.
func (c *Circuit) P(q int, lambda float64) { c.MustAppend("p", []int{q}, []float64{lambda}) }

// U3 appends a generic one-qubit rotation.
func (c *Circuit) U3(q int, theta, phi, lambda float64) {
	c.MustAppend("u3", []int{q}, []float64{theta, phi, lambda})
}

// CX appends a CNOT with the given control and target.
func (c *Circuit) CX(control, target int) { c.MustAppend("cx", []int{control, target}, nil) }

// CZ appends a controlled-Z.
func (c *Circuit) CZ(a, b int) { c.MustAppend("cz", []int{a, b}, nil) }

// Swap appends a SWAP gate.
func (c *Circuit) Swap(a, b int) { c.MustAppend("swap", []int{a, b}, nil) }

// CCX appends a Toffoli gate.
func (c *Circuit) CCX(c1, c2, target int) { c.MustAppend("ccx", []int{c1, c2, target}, nil) }

// RZZ appends a ZZ interaction rotation.
func (c *Circuit) RZZ(a, b int, theta float64) { c.MustAppend("rzz", []int{a, b}, []float64{theta}) }

// RXX appends an XX interaction rotation.
func (c *Circuit) RXX(a, b int, theta float64) { c.MustAppend("rxx", []int{a, b}, []float64{theta}) }

// RYY appends a YY interaction rotation.
func (c *Circuit) RYY(a, b int, theta float64) { c.MustAppend("ryy", []int{a, b}, []float64{theta}) }

// CP appends a controlled-phase gate.
func (c *Circuit) CP(a, b int, lambda float64) { c.MustAppend("cp", []int{a, b}, []float64{lambda}) }

// CNOTCount returns the circuit's CNOT-equivalent two-qubit gate count,
// QUEST's primary cost metric (SWAP counts as 3, Toffoli as 6, ...).
func (c *Circuit) CNOTCount() int {
	var n int
	for _, o := range c.Ops {
		n += o.Spec().CNOTCost
	}
	return n
}

// Size returns the number of operations.
func (c *Circuit) Size() int { return len(c.Ops) }

// GateCounts returns a histogram of gate names.
func (c *Circuit) GateCounts() map[string]int {
	m := map[string]int{}
	for _, o := range c.Ops {
		m[o.Name]++
	}
	return m
}

// Depth returns the circuit depth: the longest chain of operations where
// consecutive operations share a qubit.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	depth := 0
	for _, o := range c.Ops {
		mx := 0
		for _, q := range o.Qubits {
			if level[q] > mx {
				mx = level[q]
			}
		}
		mx++
		for _, q := range o.Qubits {
			level[q] = mx
		}
		if mx > depth {
			depth = mx
		}
	}
	return depth
}

// ActiveQubits returns the sorted set of qubits touched by any operation.
func (c *Circuit) ActiveQubits() []int {
	seen := make([]bool, c.NumQubits)
	for _, o := range c.Ops {
		for _, q := range o.Qubits {
			seen[q] = true
		}
	}
	var out []int
	for q, s := range seen {
		if s {
			out = append(out, q)
		}
	}
	return out
}

// Inverse returns the circuit implementing the inverse unitary: operations
// reversed, each replaced by its gate inverse.
func (c *Circuit) Inverse() *Circuit {
	out := New(c.NumQubits)
	for i := len(c.Ops) - 1; i >= 0; i-- {
		o := c.Ops[i]
		name, params := o.Spec().Inverse(o.Params)
		out.MustAppend(name, o.Qubits, params)
	}
	return out
}

// AppendCircuit appends all of other's operations, remapping other's qubit
// i to qubitMap[i]. A nil qubitMap is the identity mapping.
func (c *Circuit) AppendCircuit(other *Circuit, qubitMap []int) error {
	if qubitMap == nil {
		qubitMap = make([]int, other.NumQubits)
		for i := range qubitMap {
			qubitMap[i] = i
		}
	}
	if len(qubitMap) != other.NumQubits {
		return fmt.Errorf("circuit: qubit map length %d, want %d", len(qubitMap), other.NumQubits)
	}
	for _, o := range other.Ops {
		qs := make([]int, len(o.Qubits))
		for i, q := range o.Qubits {
			qs[i] = qubitMap[q]
		}
		if err := c.Append(o.Name, qs, o.Params); err != nil {
			return err
		}
	}
	return nil
}

// MustAppendCircuit is AppendCircuit that panics on error.
func (c *Circuit) MustAppendCircuit(other *Circuit, qubitMap []int) {
	if err := c.AppendCircuit(other, qubitMap); err != nil {
		panic(err)
	}
}

// Slice returns a new circuit containing ops [from, to).
func (c *Circuit) Slice(from, to int) *Circuit {
	out := New(c.NumQubits)
	for _, o := range c.Ops[from:to] {
		out.Ops = append(out.Ops, o.Clone())
	}
	return out
}

// String renders the circuit one op per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit(%d qubits, %d ops, %d CNOTs)\n", c.NumQubits, len(c.Ops), c.CNOTCount())
	for _, o := range c.Ops {
		b.WriteString("  ")
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	return b.String()
}
