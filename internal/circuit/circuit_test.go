package circuit

import (
	"strings"
	"testing"
)

func TestAppendValidation(t *testing.T) {
	c := New(2)
	if err := c.Append("nope", []int{0}, nil); err == nil {
		t.Error("unknown gate accepted")
	}
	if err := c.Append("cx", []int{0}, nil); err == nil {
		t.Error("wrong operand count accepted")
	}
	if err := c.Append("cx", []int{0, 2}, nil); err == nil {
		t.Error("out-of-range qubit accepted")
	}
	if err := c.Append("cx", []int{1, 1}, nil); err == nil {
		t.Error("duplicate qubit accepted")
	}
	if err := c.Append("rz", []int{0}, nil); err == nil {
		t.Error("missing params accepted")
	}
	if err := c.Append("h", []int{0}, []float64{1}); err == nil {
		t.Error("extra params accepted")
	}
	if err := c.Append("cx", []int{0, 1}, nil); err != nil {
		t.Errorf("valid cx rejected: %v", err)
	}
}

func TestCNOTCount(t *testing.T) {
	c := New(3)
	c.H(0)
	c.CX(0, 1)
	c.Swap(1, 2)
	c.CCX(0, 1, 2)
	c.RZZ(0, 1, 0.5)
	// cx=1, swap=3, ccx=6, rzz=2 → 12
	if got := c.CNOTCount(); got != 12 {
		t.Errorf("CNOTCount = %d, want 12", got)
	}
}

func TestDepth(t *testing.T) {
	c := New(3)
	c.H(0) // depth 1 on q0
	c.H(1) // depth 1 on q1
	c.CX(0, 1)
	c.H(2)
	if got := c.Depth(); got != 2 {
		t.Errorf("Depth = %d, want 2", got)
	}
	c.CX(1, 2)
	if got := c.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
}

func TestGateCounts(t *testing.T) {
	c := New(2)
	c.H(0)
	c.H(1)
	c.CX(0, 1)
	m := c.GateCounts()
	if m["h"] != 2 || m["cx"] != 1 {
		t.Errorf("GateCounts = %v", m)
	}
}

func TestActiveQubits(t *testing.T) {
	c := New(5)
	c.H(1)
	c.CX(3, 1)
	got := c.ActiveQubits()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ActiveQubits = %v, want [1 3]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := New(2)
	c.RZ(0, 1.0)
	d := c.Clone()
	d.Ops[0].Params[0] = 2.0
	d.X(1)
	if c.Ops[0].Params[0] != 1.0 {
		t.Error("Clone shares param storage")
	}
	if len(c.Ops) != 1 {
		t.Error("Clone shares op slice")
	}
}

func TestAppendCircuitRemap(t *testing.T) {
	inner := New(2)
	inner.CX(0, 1)
	outer := New(4)
	if err := outer.AppendCircuit(inner, []int{3, 1}); err != nil {
		t.Fatal(err)
	}
	op := outer.Ops[0]
	if op.Qubits[0] != 3 || op.Qubits[1] != 1 {
		t.Errorf("remapped qubits = %v, want [3 1]", op.Qubits)
	}
}

func TestAppendCircuitBadMap(t *testing.T) {
	inner := New(2)
	inner.CX(0, 1)
	outer := New(4)
	if err := outer.AppendCircuit(inner, []int{0}); err == nil {
		t.Error("short qubit map accepted")
	}
	if err := outer.AppendCircuit(inner, []int{0, 9}); err == nil {
		t.Error("out-of-range map accepted")
	}
}

func TestSlice(t *testing.T) {
	c := New(2)
	c.H(0)
	c.CX(0, 1)
	c.H(1)
	s := c.Slice(1, 3)
	if s.Size() != 2 || s.Ops[0].Name != "cx" || s.Ops[1].Name != "h" {
		t.Errorf("Slice wrong: %v", s)
	}
}

func TestOpString(t *testing.T) {
	c := New(2)
	c.RZ(1, 0.5)
	if got := c.Ops[0].String(); !strings.Contains(got, "rz(0.5) q[1]") {
		t.Errorf("Op.String = %q", got)
	}
}

func TestInverseStructure(t *testing.T) {
	c := New(2)
	c.S(0)
	c.CX(0, 1)
	c.RZ(1, 0.7)
	inv := c.Inverse()
	if inv.Size() != 3 {
		t.Fatalf("Inverse size = %d", inv.Size())
	}
	if inv.Ops[0].Name != "rz" || inv.Ops[0].Params[0] != -0.7 {
		t.Errorf("Inverse[0] = %v", inv.Ops[0])
	}
	if inv.Ops[1].Name != "cx" {
		t.Errorf("Inverse[1] = %v", inv.Ops[1])
	}
	if inv.Ops[2].Name != "sdg" {
		t.Errorf("Inverse[2] = %v", inv.Ops[2])
	}
}

func TestDrawBasic(t *testing.T) {
	c := New(3)
	c.H(0)
	c.CX(0, 1)
	c.CX(1, 2)
	out := c.Draw()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("Draw produced %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "q0") || !strings.Contains(lines[0], "H") {
		t.Errorf("q0 row missing H: %q", lines[0])
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "X") {
		t.Errorf("Draw missing CX symbols:\n%s", out)
	}
}

func TestDrawEmpty(t *testing.T) {
	if got := New(0).Draw(); got != "" {
		t.Errorf("empty Draw = %q", got)
	}
	out := New(2).Draw()
	if !strings.Contains(out, "q0") || !strings.Contains(out, "q1") {
		t.Errorf("gate-free Draw = %q", out)
	}
}

func TestDrawParameterized(t *testing.T) {
	c := New(1)
	c.RZ(0, 0.5)
	out := c.Draw()
	if !strings.Contains(out, "RZ(0.5)") {
		t.Errorf("Draw = %q", out)
	}
}

func TestDrawConnectors(t *testing.T) {
	// CX between non-adjacent qubits needs a connector through q1's gap.
	c := New(3)
	c.CX(0, 2)
	out := c.Draw()
	if !strings.Contains(out, "|") {
		t.Errorf("Draw missing vertical connector:\n%s", out)
	}
}

func TestMustAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAppend with bad qubit did not panic")
		}
	}()
	c := New(1)
	c.MustAppend("cx", []int{0, 1}, nil)
}

func TestOpSpec(t *testing.T) {
	c := New(2)
	c.CX(0, 1)
	if spec := c.Ops[0].Spec(); spec.Name != "cx" || spec.Qubits != 2 {
		t.Errorf("Op.Spec = %+v", spec)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}
