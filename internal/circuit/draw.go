package circuit

import (
	"fmt"
	"strings"
)

// Draw renders the circuit as ASCII art, one row per qubit, gates placed
// into depth columns. Controls render as "*", CNOT targets as "X", other
// multi-qubit operands by their position index; vertical bars connect the
// operands of multi-qubit gates:
//
//	q0: -H--*-----
//	        |
//	q1: ----X--*--
//	           |
//	q2: -------X--
func (c *Circuit) Draw() string {
	if c.NumQubits == 0 {
		return ""
	}
	// Assign each op to a column using the same rule as Depth().
	level := make([]int, c.NumQubits)
	cols := [][]Op{}
	for _, o := range c.Ops {
		mx := 0
		for _, q := range o.Qubits {
			if level[q] > mx {
				mx = level[q]
			}
		}
		for _, q := range o.Qubits {
			level[q] = mx + 1
		}
		for len(cols) <= mx {
			cols = append(cols, nil)
		}
		cols[mx] = append(cols[mx], o)
	}

	// Render column by column into per-qubit gate rows and per-gap
	// connector rows.
	rows := make([]strings.Builder, c.NumQubits)
	gaps := make([]strings.Builder, c.NumQubits) // gap below qubit i
	for q := 0; q < c.NumQubits; q++ {
		fmt.Fprintf(&rows[q], "q%-2d: ", q)
		gaps[q].WriteString("     ")
	}

	for _, col := range cols {
		cells := make([]string, c.NumQubits)
		link := make([]bool, c.NumQubits) // vertical bar below qubit i
		width := 1
		for _, o := range col {
			labels := opLabels(o)
			lo, hi := o.Qubits[0], o.Qubits[0]
			for i, q := range o.Qubits {
				cells[q] = labels[i]
				if len(labels[i]) > width {
					width = len(labels[i])
				}
				if q < lo {
					lo = q
				}
				if q > hi {
					hi = q
				}
			}
			for q := lo; q < hi; q++ {
				link[q] = true
			}
		}
		for q := 0; q < c.NumQubits; q++ {
			cell := cells[q]
			pad := width - len(cell)
			rows[q].WriteByte('-')
			if cell == "" {
				rows[q].WriteString(strings.Repeat("-", width))
			} else {
				rows[q].WriteString(cell)
				rows[q].WriteString(strings.Repeat("-", pad))
			}
			rows[q].WriteByte('-')
			if link[q] {
				gaps[q].WriteString(" |" + strings.Repeat(" ", width))
			} else {
				gaps[q].WriteString(strings.Repeat(" ", width+2))
			}
		}
	}

	var out strings.Builder
	for q := 0; q < c.NumQubits; q++ {
		out.WriteString(strings.TrimRight(rows[q].String(), "-") + strings.Repeat("-", 1))
		out.WriteByte('\n')
		if q+1 < c.NumQubits {
			gap := strings.TrimRight(gaps[q].String(), " ")
			if gap != "" {
				out.WriteString(gap)
				out.WriteByte('\n')
			}
		}
	}
	return out.String()
}

// opLabels returns the cell label for each operand of an op.
func opLabels(o Op) []string {
	switch o.Name {
	case "cx":
		return []string{"*", "X"}
	case "cz":
		return []string{"*", "*"}
	case "cp", "crz", "ch":
		return []string{"*", strings.ToUpper(o.Name[1:])}
	case "ccx":
		return []string{"*", "*", "X"}
	case "swap":
		return []string{"x", "x"}
	}
	label := strings.ToUpper(o.Name)
	if len(o.Params) > 0 {
		label = fmt.Sprintf("%s(%.2g", strings.ToUpper(o.Name), o.Params[0])
		if len(o.Params) > 1 {
			label += ",..."
		}
		label += ")"
	}
	out := make([]string, len(o.Qubits))
	for i := range out {
		if len(o.Qubits) > 1 {
			out[i] = fmt.Sprintf("%s:%d", label, i)
		} else {
			out[i] = label
		}
	}
	return out
}
