// Package fidelity implements the device fidelity model used by the
// noise-aware selection objective: an ESP-style (estimated success
// probability) estimator that folds per-gate-class infidelities and SPAM
// error over a circuit's gate counts, in the shape of the Quantinuum H2
// benchmark estimator and the authors' follow-up paper (*Robust and
// Resource-Efficient Quantum Circuit Approximation*, arXiv:2108.12714).
//
// The model is deliberately coarse — one rate per gate class, no
// per-qubit calibration — because the selection annealer only needs a
// *ranking* signal: which of two candidate ensembles will come out of the
// device with more of its signal intact. The estimator-vs-simulator rank
// agreement is asserted by tests against the Monte-Carlo Manila model.
package fidelity

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/noise"
	"repro/internal/transpile"
)

// Profile holds a device's per-gate-class error rates. Each rate is the
// probability in [0,1] that the corresponding operation corrupts the
// state; 0 is error-free. The zero Profile therefore describes an ideal
// device.
type Profile struct {
	// OneQubit is the infidelity of one one-qubit gate.
	OneQubit float64
	// TwoQubit is the infidelity of one CNOT-equivalent two-qubit gate.
	TwoQubit float64
	// Readout is the per-qubit measurement bit-flip probability.
	Readout float64
	// SPAM is any additional per-qubit state-preparation-and-measurement
	// infidelity beyond Readout (hardware calibration reports often fold
	// preparation error in here; the simulator models have none).
	SPAM float64
}

// IsZero reports whether the profile describes an error-free device.
func (p Profile) IsZero() bool {
	return p.OneQubit == 0 && p.TwoQubit == 0 && p.Readout == 0 && p.SPAM == 0
}

// Validate checks that every rate is a probability in [0,1].
func (p Profile) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"one-qubit", p.OneQubit},
		{"two-qubit", p.TwoQubit},
		{"readout", p.Readout},
		{"spam", p.SPAM},
	} {
		if math.IsNaN(r.v) || r.v < 0 || r.v > 1 {
			return fmt.Errorf("fidelity: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	return nil
}

// FromNoiseModel derives a Profile from the stochastic simulator model.
// The simulator applies its Pauli error per *involved qubit* per gate and
// its amplitude-damping jump per involved qubit per gate, so the
// per-gate-class rates compose those per-qubit channels: a one-qubit gate
// suffers one Pauli+damping draw, a two-qubit gate suffers two
// independent two-qubit-rate draws.
func FromNoiseModel(m noise.Model) Profile {
	g1 := compose(m.OneQubitError, m.DampingError)
	perQubit := compose(m.TwoQubitError, m.DampingError)
	return Profile{
		OneQubit: g1,
		TwoQubit: compose(perQubit, perQubit),
		Readout:  m.ReadoutError,
	}
}

// compose combines two independent error probabilities: the operation
// survives only if both channels pass.
func compose(a, b float64) float64 { return 1 - (1-a)*(1-b) }

// Counts are the gate-class totals the estimator folds the profile over.
type Counts struct {
	// OneQubit is the number of one-qubit gates.
	OneQubit int
	// TwoQubit is the number of CNOT-equivalent two-qubit gates (a SWAP
	// counts as 3, a Toffoli as 6 — the repo-wide CNOT cost metric).
	TwoQubit int
	// Measured is the number of qubits read out (charged both the Readout
	// and SPAM rates).
	Measured int
}

// Add returns the element-wise sum of two count vectors.
func (n Counts) Add(o Counts) Counts {
	return Counts{
		OneQubit: n.OneQubit + o.OneQubit,
		TwoQubit: n.TwoQubit + o.TwoQubit,
		Measured: n.Measured + o.Measured,
	}
}

// Count tallies the estimator's gate classes for a circuit, assuming
// every qubit is measured at the end (how the pipeline evaluates output
// distributions). Multi-qubit gates are charged their CNOT-equivalent
// cost, matching how the routed simulator lowers them before applying
// per-gate noise.
func Count(c *circuit.Circuit) Counts {
	n := Counts{Measured: c.NumQubits}
	for _, op := range c.Ops {
		if len(op.Qubits) == 1 {
			n.OneQubit++
		} else {
			n.TwoQubit += op.Spec().CNOTCost
		}
	}
	return n
}

// Estimate returns the estimated success probability in exact product
// form: each gate class contributes (1-rate)^count, and every measured
// qubit additionally pays the SPAM factor.
func (p Profile) Estimate(n Counts) float64 {
	f := math.Pow(1-p.OneQubit, float64(n.OneQubit))
	f *= math.Pow(1-p.TwoQubit, float64(n.TwoQubit))
	f *= math.Pow((1-p.Readout)*(1-p.SPAM), float64(n.Measured))
	return f
}

// LogEstimate returns log(Estimate(n)) computed in the log domain:
// Σ count·log1p(-rate). For the tiny rates and large gate counts the
// selection annealer sums over, this form neither underflows nor loses
// the low-order bits that distinguish two candidate ensembles.
func (p Profile) LogEstimate(n Counts) float64 {
	var l float64
	if n.OneQubit > 0 {
		l += float64(n.OneQubit) * math.Log1p(-p.OneQubit)
	}
	if n.TwoQubit > 0 {
		l += float64(n.TwoQubit) * math.Log1p(-p.TwoQubit)
	}
	if n.Measured > 0 {
		l += float64(n.Measured) * (math.Log1p(-p.Readout) + math.Log1p(-p.SPAM))
	}
	return l
}

// EstimateCircuit estimates the success probability of running the
// circuit as-is (no routing) on a device with this profile.
func (p Profile) EstimateCircuit(c *circuit.Circuit) float64 {
	return p.Estimate(Count(c))
}

// EstimateOnDevice lowers and routes the circuit onto the device exactly
// as noise.Device.RunCtx does, then estimates the success probability of
// the routed form under the device's derived profile. This is the honest
// cross-circuit predictor: routing inflates two-qubit counts differently
// per circuit, and those swaps are charged device errors like any CNOT.
func EstimateOnDevice(c *circuit.Circuit, d *noise.Device) (float64, error) {
	lowered := transpile.Lower(c)
	initial := transpile.ChooseInitialLayout(lowered, d.Coupling)
	routed, _, err := transpile.SabreRoute(lowered, d.Coupling, initial)
	if err != nil {
		return 0, fmt.Errorf("fidelity: routing onto %s: %w", d.Name, err)
	}
	routed = transpile.Lower(routed)
	return FromNoiseModel(d.Model).Estimate(Count(routed)), nil
}
