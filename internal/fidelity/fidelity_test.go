package fidelity

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/noise"
)

func TestZeroProfileEstimatesUnity(t *testing.T) {
	var p Profile
	if !p.IsZero() {
		t.Fatal("zero Profile not IsZero")
	}
	n := Counts{OneQubit: 1000, TwoQubit: 1000, Measured: 64}
	if got := p.Estimate(n); got != 1 {
		t.Errorf("zero profile Estimate = %v, want 1", got)
	}
	if got := p.LogEstimate(n); got != 0 {
		t.Errorf("zero profile LogEstimate = %v, want 0", got)
	}
}

// TestEstimateMatchesLogEstimate is the exact-product vs log-domain
// agreement property: exp(LogEstimate) must match Estimate to float
// round-off over random profiles and counts, including the rate=1 and
// count=0 corners.
func TestEstimateMatchesLogEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		p := Profile{
			OneQubit: rng.Float64() * 0.05,
			TwoQubit: rng.Float64() * 0.1,
			Readout:  rng.Float64() * 0.1,
			SPAM:     rng.Float64() * 0.01,
		}
		n := Counts{
			OneQubit: rng.Intn(2000),
			TwoQubit: rng.Intn(1000),
			Measured: rng.Intn(30),
		}
		exact := p.Estimate(n)
		viaLog := math.Exp(p.LogEstimate(n))
		if diff := math.Abs(exact - viaLog); diff > 1e-12*math.Max(1, exact) {
			t.Fatalf("trial %d: Estimate=%v exp(LogEstimate)=%v diff=%v (p=%+v n=%+v)",
				trial, exact, viaLog, diff, p, n)
		}
	}
	// rate = 1 with a zero count must not poison the other terms
	// (0·log(0) would be NaN in a naive log-domain sum).
	p := Profile{OneQubit: 1}
	n := Counts{TwoQubit: 3}
	if got := p.Estimate(n); math.IsNaN(got) || got != 1 {
		t.Errorf("Estimate with unused rate-1 class = %v, want 1", got)
	}
	if got := p.LogEstimate(n); math.IsNaN(got) || got != 0 {
		t.Errorf("LogEstimate with unused rate-1 class = %v, want 0", got)
	}
}

// TestEstimateMonotonicity: adding gates can only lower the estimate.
func TestEstimateMonotonicity(t *testing.T) {
	p := FromNoiseModel(noise.Manila().Model)
	prev := p.Estimate(Counts{Measured: 5})
	for k := 1; k <= 50; k++ {
		cur := p.Estimate(Counts{OneQubit: 2 * k, TwoQubit: k, Measured: 5})
		if cur >= prev {
			t.Fatalf("estimate not strictly decreasing at k=%d: %v >= %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestFromNoiseModelComposition(t *testing.T) {
	m := noise.Model{OneQubitError: 0.001, TwoQubitError: 0.01, ReadoutError: 0.02, DampingError: 0.0005}
	p := FromNoiseModel(m)
	wantG1 := 1 - (1-0.001)*(1-0.0005)
	perQ := 1 - (1-0.01)*(1-0.0005)
	wantG2 := 1 - (1-perQ)*(1-perQ)
	if math.Abs(p.OneQubit-wantG1) > 1e-15 {
		t.Errorf("OneQubit = %v, want %v", p.OneQubit, wantG1)
	}
	if math.Abs(p.TwoQubit-wantG2) > 1e-15 {
		t.Errorf("TwoQubit = %v, want %v", p.TwoQubit, wantG2)
	}
	if p.Readout != 0.02 {
		t.Errorf("Readout = %v, want 0.02", p.Readout)
	}
	if p.SPAM != 0 {
		t.Errorf("SPAM = %v, want 0", p.SPAM)
	}
	if FromNoiseModel(noise.Model{}).IsZero() != true {
		t.Error("profile of the zero noise model should be zero")
	}
}

func TestValidate(t *testing.T) {
	good := []Profile{{}, {OneQubit: 0.5, TwoQubit: 1, Readout: 0.02, SPAM: 0.01}}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
	bad := []Profile{{OneQubit: -0.1}, {TwoQubit: 1.5}, {Readout: math.NaN()}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

func TestCountChargesCNOTEquivalents(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.RZ(1, 0.3)
	c.CX(0, 1)
	c.Swap(1, 2) // 3 CNOT-equivalents
	c.CCX(0, 1, 2)
	n := Count(c)
	if n.OneQubit != 2 {
		t.Errorf("OneQubit = %d, want 2", n.OneQubit)
	}
	ccxCost := circuit.Op{Name: "ccx", Qubits: []int{0, 1, 2}}.Spec().CNOTCost
	if want := 1 + 3 + ccxCost; n.TwoQubit != want {
		t.Errorf("TwoQubit = %d, want %d", n.TwoQubit, want)
	}
	if n.Measured != 3 {
		t.Errorf("Measured = %d, want 3", n.Measured)
	}
}

func TestEstimateOnDeviceChargesRouting(t *testing.T) {
	// A star of CNOTs from one hub qubit cannot be laid out locally on
	// Manila's 5-qubit line (the hub has at most two neighbors), so
	// routing must insert swaps and the on-device estimate is strictly
	// below the unrouted estimate of the same circuit.
	c := circuit.New(5)
	for target := 1; target < 5; target++ {
		c.CX(0, target)
	}
	d := noise.Manila()
	routed, err := EstimateOnDevice(c, d)
	if err != nil {
		t.Fatal(err)
	}
	unrouted := FromNoiseModel(d.Model).EstimateCircuit(c)
	if routed >= unrouted {
		t.Errorf("routed estimate %v not below unrouted %v", routed, unrouted)
	}
}

func BenchmarkEstimate(b *testing.B) {
	p := FromNoiseModel(noise.Manila().Model)
	n := Counts{OneQubit: 480, TwoQubit: 210, Measured: 5}
	for i := 0; i < b.N; i++ {
		sinkFloat = p.Estimate(n)
	}
}

func BenchmarkLogEstimate(b *testing.B) {
	p := FromNoiseModel(noise.Manila().Model)
	n := Counts{OneQubit: 480, TwoQubit: 210, Measured: 5}
	for i := 0; i < b.N; i++ {
		sinkFloat = p.LogEstimate(n)
	}
}

var sinkFloat float64
