package fidelity

import (
	"math"
	"sort"
	"testing"

	"repro/internal/algos"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
)

// TestEstimateRanksLikeManilaSimulator is the estimator-vs-simulator
// agreement property: across a spread of small benchmark circuits, the
// ESP estimate of the routed circuit must *rank* them the same way the
// Monte-Carlo Manila simulation does when fidelity is measured as
// 1 - TVD(ideal, noisy). The values themselves are not comparable — ESP
// is a success probability, TVD a distribution distance — but QUEST's
// selection only needs the ordering, so rank correlation is the contract.
func TestEstimateRanksLikeManilaSimulator(t *testing.T) {
	d := noise.Manila()
	// QFT-family circuits are deliberately absent: their ideal output on
	// |0...0> is uniform, which Pauli/readout noise maps to itself, so
	// 1-TVD stays ≈1 regardless of depth and carries no ranking signal.
	workloads := []struct {
		algo string
		n    int
	}{
		{"tfim", 4}, {"tfim", 5}, {"xy", 4}, {"xy", 5},
		{"qaoa", 4}, {"qaoa", 5}, {"vqe", 4}, {"vqe", 5},
		{"heisenberg", 4}, {"adder", 4}, {"hlf", 4}, {"multiplier", 4},
	}
	predicted := make([]float64, 0, len(workloads))
	measured := make([]float64, 0, len(workloads))
	for _, w := range workloads {
		c, err := algos.Generate(w.algo, w.n)
		if err != nil {
			t.Fatalf("generate %s-%d: %v", w.algo, w.n, err)
		}
		esp, err := EstimateOnDevice(c, d)
		if err != nil {
			t.Fatalf("estimate %s-%d: %v", w.algo, w.n, err)
		}
		ideal := sim.Probabilities(c)
		noisy, err := d.Run(c, noise.Options{Seed: 11, Trajectories: 200})
		if err != nil {
			t.Fatalf("run %s-%d: %v", w.algo, w.n, err)
		}
		predicted = append(predicted, esp)
		measured = append(measured, 1-metrics.TVD(ideal, noisy))
	}
	rho := spearman(predicted, measured)
	t.Logf("predicted=%v", predicted)
	t.Logf("measured =%v", measured)
	if rho < 0.6 {
		t.Errorf("Spearman rank correlation %v < 0.6: estimator ordering disagrees with the simulator", rho)
	}
}

// spearman returns the Spearman rank correlation of two equal-length
// samples (average ranks for ties).
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(len(ra))
	mb /= float64(len(rb))
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	out := make([]float64, len(x))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && x[idx[j]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}
