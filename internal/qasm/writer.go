package qasm

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
)

// writerAliases maps internal gate names back to OpenQASM 2.0 names.
var writerAliases = map[string]string{
	"p":  "u1",
	"cp": "cu1",
}

// Write renders a circuit as an OpenQASM 2.0 program with one register q
// and a matching classical register c, measuring every qubit at the end.
func Write(c *circuit.Circuit) string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	fmt.Fprintf(&b, "creg c[%d];\n", c.NumQubits)
	for _, op := range c.Ops {
		name := op.Name
		if alias, ok := writerAliases[name]; ok {
			name = alias
		}
		b.WriteString(name)
		if len(op.Params) > 0 {
			b.WriteByte('(')
			for i, p := range op.Params {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%.17g", p)
			}
			b.WriteByte(')')
		}
		b.WriteByte(' ')
		for i, q := range op.Qubits {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "q[%d]", q)
		}
		b.WriteString(";\n")
	}
	b.WriteString("measure q -> c;\n")
	return b.String()
}
