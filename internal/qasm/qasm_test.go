package qasm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/sim"
)

const sample = `
OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[2];
u3(pi/2, 0, pi) q[1];
barrier q;
measure q -> c;
`

func TestParseSample(t *testing.T) {
	c, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 3 {
		t.Errorf("NumQubits = %d, want 3", c.NumQubits)
	}
	if c.Size() != 4 {
		t.Fatalf("Size = %d, want 4 (measure/barrier dropped)", c.Size())
	}
	if c.Ops[1].Name != "cx" || c.Ops[1].Qubits[0] != 0 || c.Ops[1].Qubits[1] != 1 {
		t.Errorf("op[1] = %v", c.Ops[1])
	}
	if got := c.Ops[2].Params[0]; math.Abs(got-math.Pi/4) > 1e-12 {
		t.Errorf("rz param = %g, want pi/4", got)
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"pi", math.Pi},
		{"2*pi", 2 * math.Pi},
		{"pi/2", math.Pi / 2},
		{"-pi/4", -math.Pi / 4},
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"1-2-3", -4},
		{"sin(0)", 0},
		{"cos(0)", 1},
		{"sqrt(4)", 2},
		{"1.5e2", 150},
		{"--1", 1},
	}
	for _, tc := range cases {
		src := "qreg q[1];\nrz(" + tc.expr + ") q[0];\n"
		c, err := Parse(src)
		if err != nil {
			t.Errorf("expr %q: %v", tc.expr, err)
			continue
		}
		if got := c.Ops[0].Params[0]; math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("expr %q = %g, want %g", tc.expr, got, tc.want)
		}
	}
}

func TestParseBroadcast(t *testing.T) {
	src := "qreg q[3];\nh q;\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 {
		t.Fatalf("broadcast h q produced %d ops, want 3", c.Size())
	}
	for i, op := range c.Ops {
		if op.Name != "h" || op.Qubits[0] != i {
			t.Errorf("op[%d] = %v", i, op)
		}
	}
}

func TestParseMultipleRegisters(t *testing.T) {
	src := "qreg a[2];\nqreg b[2];\ncx a[1],b[0];\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 4 {
		t.Errorf("NumQubits = %d, want 4", c.NumQubits)
	}
	op := c.Ops[0]
	if op.Qubits[0] != 1 || op.Qubits[1] != 2 {
		t.Errorf("cx mapped to %v, want [1 2]", op.Qubits)
	}
}

func TestParseAliases(t *testing.T) {
	src := "qreg q[2];\nu1(0.5) q[0];\ncu1(0.25) q[0],q[1];\nu(1,2,3) q[0];\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops[0].Name != "p" || c.Ops[1].Name != "cp" || c.Ops[2].Name != "u3" {
		t.Errorf("aliases wrong: %v %v %v", c.Ops[0].Name, c.Ops[1].Name, c.Ops[2].Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"qreg q[2];\nbogus q[0];\n",        // unknown gate
		"qreg q[2];\nh q[5];\n",            // out of range
		"qreg q[2];\nrz q[0];\n",           // missing params
		"qreg q[2];\ncx q[0];\n",           // missing operand
		"qreg q[2];\nh r[0];\n",            // unknown register
		"qreg q[2];\nqreg q[2];\n",         // duplicate register
		"qreg q[2];\nrz(1/0) q[0];\n",      // division by zero
		"qreg q[2];\nh q[0]",               // missing semicolon
		"qreg q[2];\nrz(nonsense) q[0];\n", // unknown ident in expr
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted invalid program: %q", src)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	c := circuit.New(3)
	c.H(0)
	c.CX(0, 1)
	c.RZ(2, 0.123456789)
	c.U3(1, 0.1, -0.2, 0.3)
	c.Swap(0, 2)
	c.RZZ(1, 2, -1.5)

	src := Write(c)
	parsed, err := Parse(src)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, src)
	}
	u1, u2 := sim.Unitary(c), sim.Unitary(parsed)
	if !linalg.EqualApprox(u1, u2, 1e-10) {
		t.Error("round-trip changed circuit unitary")
	}
}

func TestWriteContainsHeader(t *testing.T) {
	c := circuit.New(1)
	c.H(0)
	out := Write(c)
	for _, want := range []string{"OPENQASM 2.0;", "qreg q[1];", "h q[0];", "measure q -> c;"} {
		if !strings.Contains(out, want) {
			t.Errorf("Write output missing %q:\n%s", want, out)
		}
	}
}

func TestPropRoundTripRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := circuit.New(3)
		for i := 0; i < 15; i++ {
			switch r.Intn(5) {
			case 0:
				c.H(r.Intn(3))
			case 1:
				c.RZ(r.Intn(3), r.Float64()*4-2)
			case 2:
				c.RY(r.Intn(3), r.Float64()*4-2)
			case 3:
				c.U3(r.Intn(3), r.Float64(), r.Float64(), r.Float64())
			case 4:
				a, b := r.Intn(3), r.Intn(3)
				if a == b {
					b = (b + 1) % 3
				}
				c.CX(a, b)
			}
		}
		parsed, err := Parse(Write(c))
		if err != nil {
			return false
		}
		return linalg.EqualApprox(sim.Unitary(c), sim.Unitary(parsed), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rng}); err != nil {
		t.Error(err)
	}
}

const macroSample = `
OPENQASM 2.0;
gate majority a,b,c {
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate rot(theta, phi) q {
  rz(theta/2) q;
  ry(phi) q;
  rz(-theta/2) q;
}
qreg q[3];
majority q[0],q[1],q[2];
rot(pi, pi/4) q[1];
`

func TestParseGateMacro(t *testing.T) {
	c, err := Parse(macroSample)
	if err != nil {
		t.Fatal(err)
	}
	// majority expands to cx,cx,ccx; rot to rz,ry,rz → 6 ops.
	if c.Size() != 6 {
		t.Fatalf("macro expansion gave %d ops: %v", c.Size(), c)
	}
	if c.Ops[0].Name != "cx" || c.Ops[0].Qubits[0] != 2 || c.Ops[0].Qubits[1] != 1 {
		t.Errorf("op[0] = %v, want cx q2,q1", c.Ops[0])
	}
	if c.Ops[2].Name != "ccx" {
		t.Errorf("op[2] = %v, want ccx", c.Ops[2])
	}
	if got := c.Ops[3].Params[0]; math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("rot theta/2 = %g, want pi/2", got)
	}
	if got := c.Ops[4].Params[0]; math.Abs(got-math.Pi/4) > 1e-12 {
		t.Errorf("rot phi = %g, want pi/4", got)
	}
	if got := c.Ops[5].Params[0]; math.Abs(got+math.Pi/2) > 1e-12 {
		t.Errorf("rot -theta/2 = %g, want -pi/2", got)
	}
}

func TestParseNestedMacros(t *testing.T) {
	src := `
qreg q[2];
gate inner q { h q; }
gate outer a,b { inner a; cx a,b; inner b; }
outer q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 3 || c.Ops[0].Name != "h" || c.Ops[1].Name != "cx" || c.Ops[2].Name != "h" {
		t.Errorf("nested macro expansion: %v", c)
	}
}

func TestParseMacroErrors(t *testing.T) {
	cases := []string{
		// unknown qubit in body
		"qreg q[1];\ngate g a { h b; }\ng q[0];\n",
		// wrong arity at call site
		"qreg q[2];\ngate g a { h a; }\ng q[0],q[1];\n",
		// wrong param count
		"qreg q[1];\ngate g(t) a { rz(t) a; }\ng q[0];\n",
		// duplicate definition
		"qreg q[1];\ngate g a { h a; }\ngate g a { x a; }\ng q[0];\n",
		// unbound parameter reference in body
		"qreg q[1];\ngate g a { rz(t) a; }\ng q[0];\n",
		// unknown gate inside body (caught at expansion)
		"qreg q[1];\ngate g a { bogus a; }\ng q[0];\n",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted invalid macro program: %q", src)
		}
	}
}

func TestParseMacroBroadcast(t *testing.T) {
	src := "qreg q[3];\ngate g a { h a; t a; }\ng q;\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 6 {
		t.Errorf("macro broadcast gave %d ops", c.Size())
	}
}

func TestParseMacroMatchesDirectCircuit(t *testing.T) {
	// The Cuccaro MAJ block as a macro must equal the directly built one.
	src := `
qreg q[3];
gate maj x,y,z { cx z,y; cx z,x; ccx x,y,z; }
maj q[0],q[1],q[2];
`
	parsed, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	direct := circuit.New(3)
	direct.CX(2, 1)
	direct.CX(2, 0)
	direct.CCX(0, 1, 2)
	if !linalg.EqualApprox(sim.Unitary(parsed), sim.Unitary(direct), 1e-12) {
		t.Error("macro circuit differs from direct construction")
	}
}

func TestParsePowerOperator(t *testing.T) {
	src := "qreg q[1];\nrz(2^3) q[0];\n"
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Ops[0].Params[0]; math.Abs(got-8) > 1e-12 {
		t.Errorf("2^3 = %g", got)
	}
}
