// Package qasm implements an OpenQASM 2.0 reader and writer for the subset
// of the language used by the QUEST benchmarks: version header, includes,
// qreg/creg declarations, standard-library gate applications with constant
// parameter expressions (numbers, pi, + - * / and parentheses), barrier,
// and measure statements.
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // one of ; , ( ) [ ] { } + - * / ^ and ->
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("qasm: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.pos
	switch {
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		return token{kind: tokIdent, text: string(l.src[start:l.pos]), line: l.line}, nil
	case unicode.IsDigit(c) || c == '.':
		seenE := false
		for l.pos < len(l.src) {
			r := l.src[l.pos]
			if unicode.IsDigit(r) || r == '.' {
				l.pos++
				continue
			}
			if (r == 'e' || r == 'E') && !seenE {
				seenE = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			break
		}
		return token{kind: tokNumber, text: string(l.src[start:l.pos]), line: l.line}, nil
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errorf("unterminated string")
		}
		text := string(l.src[start+1 : l.pos])
		l.pos++
		return token{kind: tokString, text: text, line: l.line}, nil
	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{kind: tokSymbol, text: "->", line: l.line}, nil
	case strings.ContainsRune(";,()[]{}+-*/^", c):
		l.pos++
		return token{kind: tokSymbol, text: string(c), line: l.line}, nil
	}
	return token{}, l.errorf("unexpected character %q", string(c))
}

// tokenize lexes the whole source up front.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
