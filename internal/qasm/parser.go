package qasm

import (
	"fmt"
	"strconv"

	"repro/internal/circuit"
	"repro/internal/gate"
)

// MaxQubits caps the total number of qubits a parsed program may
// declare. QASM files are external input: without a cap, a huge (or
// accumulated-to-overflow) qreg declaration would parse fine and then
// blow up downstream, where stages allocate O(n) index maps and O(2^n)
// statevectors — as a panic or an OOM kill rather than an error. 64
// matches the widest simulation path in the repository (the Clifford
// sampler); statevector stages top out far below it anyway.
const MaxQubits = 64

// gateAliases maps QASM gate names to the registry names used by the
// circuit IR where they differ.
var gateAliases = map[string]string{
	"u":    "u3",
	"u1":   "p",
	"cu1":  "cp",
	"cnot": "cx",
}

// Parse reads an OpenQASM 2.0 program and returns the equivalent circuit.
// All quantum registers are concatenated, in declaration order, into one
// contiguous qubit index space. Measure and barrier statements are
// accepted and dropped (the simulator measures the full final state).
// User gate definitions ("gate name(params) qubits { ... }") are expanded
// inline at every application site.
func Parse(src string) (*circuit.Circuit, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

type register struct {
	name   string
	size   int
	offset int
}

// macroOp is one statement in a gate-definition body.
type macroOp struct {
	name     string
	params   []expr
	operands []string
	line     int
}

// macro is a user-defined gate.
type macro struct {
	name   string
	params []string
	qubits []string
	body   []macroOp
}

type parser struct {
	toks   []token
	pos    int
	regs   map[string]register
	macros map[string]*macro
	next   int // next free qubit offset
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return fmt.Errorf("qasm: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectSymbol(s string) error {
	t := p.advance()
	if t.kind != tokSymbol || t.text != s {
		return p.errorf(t, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return t, p.errorf(t, "expected identifier, got %q", t.text)
	}
	return t, nil
}

func (p *parser) parseProgram() (*circuit.Circuit, error) {
	p.regs = map[string]register{}
	p.macros = map[string]*macro{}

	// Optional "OPENQASM 2.0;" header.
	if t := p.peek(); t.kind == tokIdent && t.text == "OPENQASM" {
		p.advance()
		if v := p.advance(); v.kind != tokNumber {
			return nil, p.errorf(v, "expected version number")
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
	}

	var stmts []func(*circuit.Circuit) error
	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokIdent {
			return nil, p.errorf(t, "expected statement, got %q", t.text)
		}
		switch t.text {
		case "include":
			p.advance()
			if f := p.advance(); f.kind != tokString {
				return nil, p.errorf(f, "expected include filename string")
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
		case "qreg":
			if err := p.parseQreg(); err != nil {
				return nil, err
			}
		case "creg":
			// Parse and ignore.
			p.advance()
			if _, err := p.expectIdent(); err != nil {
				return nil, err
			}
			if _, err := p.parseIndex(); err != nil {
				return nil, err
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
		case "barrier":
			p.advance()
			if err := p.skipToSemicolon(); err != nil {
				return nil, err
			}
		case "measure":
			p.advance()
			if err := p.skipToSemicolon(); err != nil {
				return nil, err
			}
		case "gate":
			if err := p.parseGateDef(); err != nil {
				return nil, err
			}
		case "opaque", "if", "reset":
			return nil, p.errorf(t, "unsupported statement %q", t.text)
		default:
			stmt, err := p.parseGateApplication()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, stmt)
		}
	}

	c := circuit.New(p.next)
	for _, s := range stmts {
		if err := s(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (p *parser) skipToSemicolon() error {
	for {
		t := p.advance()
		if t.kind == tokEOF {
			return p.errorf(t, "unexpected EOF, expected ';'")
		}
		if t.kind == tokSymbol && t.text == ";" {
			return nil
		}
	}
}

func (p *parser) parseQreg() error {
	p.advance() // qreg
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	size, err := p.parseIndex()
	if err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	if _, dup := p.regs[name.text]; dup {
		return p.errorf(name, "duplicate register %q", name.text)
	}
	if size > MaxQubits || p.next+size > MaxQubits {
		return p.errorf(name, "register %q brings the program to %d qubits, limit is %d", name.text, p.next+size, MaxQubits)
	}
	p.regs[name.text] = register{name: name.text, size: size, offset: p.next}
	p.next += size
	return nil
}

// parseIndex reads "[n]" and returns n.
func (p *parser) parseIndex() (int, error) {
	if err := p.expectSymbol("["); err != nil {
		return 0, err
	}
	t := p.advance()
	if t.kind != tokNumber {
		return 0, p.errorf(t, "expected integer index, got %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errorf(t, "bad index %q", t.text)
	}
	if err := p.expectSymbol("]"); err != nil {
		return 0, err
	}
	return n, nil
}

// parseGateDef parses "gate name(p1,p2) q1,q2 { body }".
func (p *parser) parseGateDef() error {
	p.advance() // gate
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	m := &macro{name: nameTok.text}
	if _, dup := p.macros[m.name]; dup {
		return p.errorf(nameTok, "duplicate gate definition %q", m.name)
	}

	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		p.advance()
		if t := p.peek(); !(t.kind == tokSymbol && t.text == ")") {
			for {
				id, err := p.expectIdent()
				if err != nil {
					return err
				}
				m.params = append(m.params, id.text)
				t := p.advance()
				if t.kind == tokSymbol && t.text == ")" {
					break
				}
				if t.kind != tokSymbol || t.text != "," {
					return p.errorf(t, "expected ',' or ')' in gate parameter list")
				}
			}
		} else {
			p.advance() // consume ")"
		}
	}

	for {
		id, err := p.expectIdent()
		if err != nil {
			return err
		}
		m.qubits = append(m.qubits, id.text)
		t := p.peek()
		if t.kind == tokSymbol && t.text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}

	paramSet := map[string]bool{}
	for _, name := range m.params {
		paramSet[name] = true
	}
	qubitSet := map[string]bool{}
	for _, name := range m.qubits {
		qubitSet[name] = true
	}

	for {
		t := p.peek()
		if t.kind == tokSymbol && t.text == "}" {
			p.advance()
			break
		}
		if t.kind == tokEOF {
			return p.errorf(t, "unexpected EOF in gate body")
		}
		if t.kind != tokIdent {
			return p.errorf(t, "expected gate application in gate body, got %q", t.text)
		}
		if t.text == "barrier" {
			p.advance()
			if err := p.skipToSemicolon(); err != nil {
				return err
			}
			continue
		}
		op, err := p.parseMacroOp(paramSet, qubitSet)
		if err != nil {
			return err
		}
		m.body = append(m.body, op)
	}
	p.macros[m.name] = m
	return nil
}

// parseMacroOp parses one gate application inside a macro body, where
// operands are bare formal qubit names.
func (p *parser) parseMacroOp(params, qubits map[string]bool) (macroOp, error) {
	nameTok, err := p.expectIdent()
	if err != nil {
		return macroOp{}, err
	}
	op := macroOp{name: nameTok.text, line: nameTok.line}
	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		p.advance()
		for {
			e, err := p.parseExpr(params)
			if err != nil {
				return macroOp{}, err
			}
			op.params = append(op.params, e)
			t := p.advance()
			if t.kind == tokSymbol && t.text == ")" {
				break
			}
			if t.kind != tokSymbol || t.text != "," {
				return macroOp{}, p.errorf(t, "expected ',' or ')' in parameter list")
			}
		}
	}
	for {
		id, err := p.expectIdent()
		if err != nil {
			return macroOp{}, err
		}
		if !qubits[id.text] {
			return macroOp{}, p.errorf(id, "unknown qubit %q in gate body", id.text)
		}
		op.operands = append(op.operands, id.text)
		t := p.advance()
		if t.kind == tokSymbol && t.text == ";" {
			return op, nil
		}
		if t.kind != tokSymbol || t.text != "," {
			return macroOp{}, p.errorf(t, "expected ',' or ';' after operand")
		}
	}
}

// resolve maps a QASM gate name to either a registered gate spec or a
// macro.
func (p *parser) resolve(name string) (*gate.Spec, *macro, error) {
	if m, ok := p.macros[name]; ok {
		return nil, m, nil
	}
	resolved := name
	if alias, ok := gateAliases[name]; ok {
		resolved = alias
	}
	spec, err := gate.Lookup(resolved)
	if err != nil {
		return nil, nil, err
	}
	return spec, nil, nil
}

// expand emits one gate (builtin or macro, recursively) onto the circuit.
func (p *parser) expand(c *circuit.Circuit, name string, params []float64, qubits []int, depth, line int) error {
	if depth > 64 {
		return fmt.Errorf("qasm: line %d: gate expansion too deep (recursive definition?)", line)
	}
	spec, m, err := p.resolve(name)
	if err != nil {
		return fmt.Errorf("qasm: line %d: %w", line, err)
	}
	if spec != nil {
		resolved := name
		if alias, ok := gateAliases[name]; ok {
			resolved = alias
		}
		if err := c.Append(resolved, qubits, params); err != nil {
			return fmt.Errorf("qasm: line %d: %w", line, err)
		}
		return nil
	}
	if len(params) != len(m.params) {
		return fmt.Errorf("qasm: line %d: gate %s expects %d params, got %d", line, name, len(m.params), len(params))
	}
	if len(qubits) != len(m.qubits) {
		return fmt.Errorf("qasm: line %d: gate %s expects %d qubits, got %d", line, name, len(m.qubits), len(qubits))
	}
	env := map[string]float64{}
	for i, pn := range m.params {
		env[pn] = params[i]
	}
	qmap := map[string]int{}
	for i, qn := range m.qubits {
		qmap[qn] = qubits[i]
	}
	for _, op := range m.body {
		vals, err := evalExprs(op.params, env)
		if err != nil {
			return fmt.Errorf("qasm: line %d: %w", op.line, err)
		}
		qs := make([]int, len(op.operands))
		for i, qn := range op.operands {
			qs[i] = qmap[qn]
		}
		if err := p.expand(c, op.name, vals, qs, depth+1, op.line); err != nil {
			return err
		}
	}
	return nil
}

// operand is either one qubit or a whole register (for broadcast).
type operand struct {
	reg   register
	index int // -1 for whole register
}

func (p *parser) parseGateApplication() (func(*circuit.Circuit) error, error) {
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	name := nameTok.text
	spec, m, err := p.resolve(name)
	if err != nil {
		return nil, p.errorf(nameTok, "unknown gate %q", name)
	}
	wantParams := len(gateParams(spec, m))
	wantQubits := len(gateQubits(spec, m))

	var params []float64
	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		p.advance()
		for {
			e, err := p.parseExpr(nil)
			if err != nil {
				return nil, err
			}
			v, err := e.eval(nil)
			if err != nil {
				return nil, p.errorf(nameTok, "%v", err)
			}
			params = append(params, v)
			t := p.advance()
			if t.kind == tokSymbol && t.text == ")" {
				break
			}
			if t.kind != tokSymbol || t.text != "," {
				return nil, p.errorf(t, "expected ',' or ')' in parameter list")
			}
		}
	}
	if len(params) != wantParams {
		return nil, p.errorf(nameTok, "gate %s expects %d params, got %d", name, wantParams, len(params))
	}

	var operands []operand
	for {
		regTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		reg, ok := p.regs[regTok.text]
		if !ok {
			return nil, p.errorf(regTok, "unknown register %q", regTok.text)
		}
		idx := -1
		if t := p.peek(); t.kind == tokSymbol && t.text == "[" {
			idx, err = p.parseIndex()
			if err != nil {
				return nil, err
			}
			if idx < 0 || idx >= reg.size {
				return nil, p.errorf(regTok, "index %d out of range for %s[%d]", idx, reg.name, reg.size)
			}
		}
		operands = append(operands, operand{reg: reg, index: idx})
		t := p.advance()
		if t.kind == tokSymbol && t.text == ";" {
			break
		}
		if t.kind != tokSymbol || t.text != "," {
			return nil, p.errorf(t, "expected ',' or ';' after operand")
		}
	}
	if len(operands) != wantQubits {
		return nil, p.errorf(nameTok, "gate %s expects %d qubits, got %d", name, wantQubits, len(operands))
	}

	line := nameTok.line
	return func(c *circuit.Circuit) error {
		// Broadcast: if any operand is a whole register, apply the gate
		// per element (all whole-register operands must agree in size).
		bcast := 0
		for _, o := range operands {
			if o.index == -1 {
				if bcast != 0 && o.reg.size != bcast {
					return fmt.Errorf("qasm: line %d: broadcast size mismatch", line)
				}
				bcast = o.reg.size
			}
		}
		reps := 1
		if bcast > 0 {
			reps = bcast
		}
		for r := 0; r < reps; r++ {
			qs := make([]int, len(operands))
			for i, o := range operands {
				if o.index == -1 {
					qs[i] = o.reg.offset + r
				} else {
					qs[i] = o.reg.offset + o.index
				}
			}
			if err := p.expand(c, name, params, qs, 0, line); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func gateParams(spec *gate.Spec, m *macro) []struct{} {
	if spec != nil {
		return make([]struct{}, spec.Params)
	}
	return make([]struct{}, len(m.params))
}

func gateQubits(spec *gate.Spec, m *macro) []struct{} {
	if spec != nil {
		return make([]struct{}, spec.Qubits)
	}
	return make([]struct{}, len(m.qubits))
}
