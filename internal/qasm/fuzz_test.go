package qasm

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that every program it
// accepts can be re-serialized and re-parsed to a circuit with the same
// structure (writer/parser closure).
func FuzzParse(f *testing.F) {
	seeds := []string{
		sample,
		macroSample,
		"qreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		"OPENQASM 2.0;\nqreg a[1];\nqreg b[2];\nrz(pi/3) b[1];\n",
		"qreg q[3];\nccx q[0],q[1],q[2];\nswap q[0],q[2];\n",
		"gate g(t) a { rz(t) a; }\nqreg q[1];\ng(0.5) q[0];\n",
		"qreg q[2];\nu3(1,2,3) q;\nbarrier q;\nmeasure q -> c;\n",
		"qreg q[1];\nrz(((1+2)*3)/4 - sin(0.5)) q[0];\n",
		"", "qreg", "qreg q[",
		"qreg q[1];\nh\n", "qreg q[999999999999999999999];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		c, err := Parse(src) // must not panic
		if err != nil {
			return
		}
		// Accepted programs round-trip structurally.
		out := Write(c)
		c2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of emitted QASM failed: %v\nprogram:\n%s", err, out)
		}
		if c2.NumQubits != c.NumQubits || c2.Size() != c.Size() {
			t.Fatalf("round trip changed structure: %d/%d qubits, %d/%d ops",
				c.NumQubits, c2.NumQubits, c.Size(), c2.Size())
		}
	})
}

// TestFuzzSeedsDirect runs the fuzz seeds as a plain test so they are
// exercised by `go test` without -fuzz.
func TestFuzzSeedsDirect(t *testing.T) {
	srcs := []string{
		sample, macroSample,
		"qreg q[3];\nccx q[0],q[1],q[2];\nswap q[0],q[2];\n",
		strings.Repeat("qreg q[1];\n", 1) + "h q[0];\n",
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("seed rejected: %v", err)
		}
	}
}
