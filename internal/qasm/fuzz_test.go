package qasm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusFiles returns the example QASM programs shipped with the repo
// (examples/circuits/*.qasm), the shared seed corpus of both fuzzers.
func corpusFiles(tb testing.TB) map[string]string {
	tb.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "circuits", "*.qasm"))
	if err != nil {
		tb.Fatal(err)
	}
	if len(paths) == 0 {
		tb.Fatal("no .qasm seed corpus found under examples/circuits")
	}
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			tb.Fatal(err)
		}
		out[filepath.Base(p)] = string(b)
	}
	return out
}

// FuzzParse checks that the parser never panics and that every program it
// accepts can be re-serialized and re-parsed to a circuit with the same
// structure (writer/parser closure).
func FuzzParse(f *testing.F) {
	seeds := []string{
		sample,
		macroSample,
		"qreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		"OPENQASM 2.0;\nqreg a[1];\nqreg b[2];\nrz(pi/3) b[1];\n",
		"qreg q[3];\nccx q[0],q[1],q[2];\nswap q[0],q[2];\n",
		"gate g(t) a { rz(t) a; }\nqreg q[1];\ng(0.5) q[0];\n",
		"qreg q[2];\nu3(1,2,3) q;\nbarrier q;\nmeasure q -> c;\n",
		"qreg q[1];\nrz(((1+2)*3)/4 - sin(0.5)) q[0];\n",
		"", "qreg", "qreg q[",
		"qreg q[1];\nh\n", "qreg q[999999999999999999999];",
		"qreg q[65];", "qreg a[64];\nqreg b[1];",
		"qreg a[9223372036854775807];\nqreg b[9223372036854775807];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	for _, s := range corpusFiles(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		c, err := Parse(src) // must not panic
		if err != nil {
			return
		}
		// Accepted programs round-trip structurally.
		out := Write(c)
		c2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of emitted QASM failed: %v\nprogram:\n%s", err, out)
		}
		if c2.NumQubits != c.NumQubits || c2.Size() != c.Size() {
			t.Fatalf("round trip changed structure: %d/%d qubits, %d/%d ops",
				c.NumQubits, c2.NumQubits, c.Size(), c2.Size())
		}
	})
}

// FuzzLex checks the lexer in isolation: tokenize never panics, the
// token stream always terminates in exactly one EOF token, and line
// numbers never decrease.
func FuzzLex(f *testing.F) {
	seeds := []string{
		"qreg q[2];\nh q[0];",
		"// comment only\n",
		"1.2e-3 .5 3. 1e+9 ->",
		"\"a string\" \"unterminated",
		"gate g(t) a { rz(t) a; }",
		"\x00\xff weird ☃ bytes",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	for _, s := range corpusFiles(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		toks, err := tokenize(src) // must not panic
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream does not end in EOF: %v", toks)
		}
		line := 1
		for i, tok := range toks {
			if tok.kind == tokEOF && i != len(toks)-1 {
				t.Fatalf("EOF token at %d of %d", i, len(toks))
			}
			if tok.line < line {
				t.Fatalf("line numbers decrease: %d after %d", tok.line, line)
			}
			line = tok.line
		}
	})
}

// TestFuzzSeedsDirect runs the fuzz seeds as a plain test so they are
// exercised by `go test` without -fuzz.
func TestFuzzSeedsDirect(t *testing.T) {
	srcs := []string{
		sample, macroSample,
		"qreg q[3];\nccx q[0],q[1],q[2];\nswap q[0],q[2];\n",
		strings.Repeat("qreg q[1];\n", 1) + "h q[0];\n",
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("seed rejected: %v", err)
		}
	}
}

// TestCorpusFilesParseAndRoundTrip pins the examples/circuits corpus:
// every file parses, re-serializes, and re-parses to the same structure.
func TestCorpusFilesParseAndRoundTrip(t *testing.T) {
	for name, src := range corpusFiles(t) {
		c, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if c.NumQubits == 0 || c.Size() == 0 {
			t.Errorf("%s: parsed to an empty circuit", name)
			continue
		}
		c2, err := Parse(Write(c))
		if err != nil {
			t.Errorf("%s: re-parse failed: %v", name, err)
			continue
		}
		if c2.NumQubits != c.NumQubits || c2.Size() != c.Size() {
			t.Errorf("%s: round trip changed structure", name)
		}
	}
}

// TestParseRejectsOversizedRegisters covers the MaxQubits cap: huge or
// offset-overflowing qreg declarations fail with an error (they used to
// parse and then panic or OOM in downstream allocations).
func TestParseRejectsOversizedRegisters(t *testing.T) {
	for _, src := range []string{
		"qreg q[65];",
		"qreg a[64];\nqreg b[1];",
		"qreg a[9223372036854775807];\nqreg b[9223372036854775807];",
		"qreg q[1000000000];",
	} {
		if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "limit") {
			t.Errorf("Parse(%q) = %v, want qubit-limit error", src, err)
		}
	}
	if _, err := Parse("qreg q[64];\nh q[0];"); err != nil {
		t.Errorf("register at the limit rejected: %v", err)
	}
}
