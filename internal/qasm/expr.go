package qasm

import (
	"fmt"
	"math"
)

// expr is a parameter expression AST node. Top-level gate applications
// evaluate with a nil environment; gate-macro bodies evaluate with the
// macro's formal parameters bound.
type expr interface {
	eval(env map[string]float64) (float64, error)
}

type numLit float64

func (n numLit) eval(map[string]float64) (float64, error) { return float64(n), nil }

type piLit struct{}

func (piLit) eval(map[string]float64) (float64, error) { return math.Pi, nil }

type paramRef string

func (r paramRef) eval(env map[string]float64) (float64, error) {
	if v, ok := env[string(r)]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("qasm: unbound parameter %q", string(r))
}

type unaryExpr struct {
	neg bool
	x   expr
}

func (u unaryExpr) eval(env map[string]float64) (float64, error) {
	v, err := u.x.eval(env)
	if err != nil {
		return 0, err
	}
	if u.neg {
		return -v, nil
	}
	return v, nil
}

type binaryExpr struct {
	op   byte // + - * / ^
	l, r expr
}

func (b binaryExpr) eval(env map[string]float64) (float64, error) {
	l, err := b.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("qasm: division by zero")
		}
		return l / r, nil
	case '^':
		return math.Pow(l, r), nil
	}
	return 0, fmt.Errorf("qasm: unknown operator %q", string(b.op))
}

type callExpr struct {
	name string
	fn   func(float64) float64
	arg  expr
}

func (c callExpr) eval(env map[string]float64) (float64, error) {
	v, err := c.arg.eval(env)
	if err != nil {
		return 0, err
	}
	return c.fn(v), nil
}

// Expression grammar: expr := term (('+'|'-') term)* ;
// term := factor (('*'|'/') factor)* ; factor := ('-'|'+') factor | primary
// primary := number | pi | param | fn '(' expr ')' | '(' expr ')'.
// params lists the identifiers allowed as parameter references (macro
// formals); outside macros it is nil and bare identifiers are errors.
func (p *parser) parseExpr(params map[string]bool) (expr, error) {
	v, err := p.parseTerm(params)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.advance()
			w, err := p.parseTerm(params)
			if err != nil {
				return nil, err
			}
			v = binaryExpr{op: t.text[0], l: v, r: w}
			continue
		}
		return v, nil
	}
}

func (p *parser) parseTerm(params map[string]bool) (expr, error) {
	v, err := p.parseFactor(params)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "^") {
			p.advance()
			w, err := p.parseFactor(params)
			if err != nil {
				return nil, err
			}
			v = binaryExpr{op: t.text[0], l: v, r: w}
			continue
		}
		return v, nil
	}
}

func (p *parser) parseFactor(params map[string]bool) (expr, error) {
	t := p.peek()
	if t.kind == tokSymbol && (t.text == "-" || t.text == "+") {
		p.advance()
		v, err := p.parseFactor(params)
		if err != nil {
			return nil, err
		}
		return unaryExpr{neg: t.text == "-", x: v}, nil
	}
	return p.parsePrimary(params)
}

var mathFuncs = map[string]func(float64) float64{
	"sin":  math.Sin,
	"cos":  math.Cos,
	"tan":  math.Tan,
	"exp":  math.Exp,
	"ln":   math.Log,
	"sqrt": math.Sqrt,
}

func (p *parser) parsePrimary(params map[string]bool) (expr, error) {
	t := p.advance()
	switch {
	case t.kind == tokNumber:
		var v float64
		if _, err := fmt.Sscanf(t.text, "%g", &v); err != nil {
			return nil, p.errorf(t, "bad number %q", t.text)
		}
		return numLit(v), nil
	case t.kind == tokIdent && t.text == "pi":
		return piLit{}, nil
	case t.kind == tokIdent:
		if fn, ok := mathFuncs[t.text]; ok {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			v, err := p.parseExpr(params)
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return callExpr{name: t.text, fn: fn, arg: v}, nil
		}
		if params != nil && params[t.text] {
			return paramRef(t.text), nil
		}
		return nil, p.errorf(t, "unknown identifier %q in expression", t.text)
	case t.kind == tokSymbol && t.text == "(":
		v, err := p.parseExpr(params)
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return v, nil
	}
	return nil, p.errorf(t, "unexpected token %q in expression", t.text)
}

// evalExprs evaluates a slice of expressions with the given environment.
func evalExprs(exprs []expr, env map[string]float64) ([]float64, error) {
	if len(exprs) == 0 {
		return nil, nil
	}
	out := make([]float64, len(exprs))
	for i, e := range exprs {
		v, err := e.eval(env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
