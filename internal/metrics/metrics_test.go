package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTVDIdentical(t *testing.T) {
	p := []float64{0.25, 0.25, 0.25, 0.25}
	if got := TVD(p, p); got != 0 {
		t.Errorf("TVD(p,p) = %g", got)
	}
}

func TestTVDDisjoint(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if got := TVD(p, q); !almostEqual(got, 1, 1e-12) {
		t.Errorf("TVD disjoint = %g, want 1", got)
	}
}

func TestTVDKnownValue(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.8, 0.2}
	if got := TVD(p, q); !almostEqual(got, 0.3, 1e-12) {
		t.Errorf("TVD = %g, want 0.3", got)
	}
}

func TestKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	want := 0.5*math.Log(2) + 0.5*math.Log(2.0/3.0)
	if got := KL(p, q); !almostEqual(got, want, 1e-12) {
		t.Errorf("KL = %g, want %g", got, want)
	}
}

func TestKLZeroHandling(t *testing.T) {
	if got := KL([]float64{0, 1}, []float64{0.5, 0.5}); !almostEqual(got, math.Log(2), 1e-12) {
		t.Errorf("KL with q=0 term = %g", got)
	}
	if got := KL([]float64{0.5, 0.5}, []float64{1, 0}); !math.IsInf(got, 1) {
		t.Errorf("KL with r=0 = %g, want +Inf", got)
	}
}

func TestJSDBounds(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if got := JSD(p, q); !almostEqual(got, 1, 1e-12) {
		t.Errorf("JSD disjoint = %g, want 1", got)
	}
	if got := JSD(p, p); got != 0 {
		t.Errorf("JSD(p,p) = %g", got)
	}
}

func TestAverageDistributions(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	got := AverageDistributions(a, b)
	if !almostEqual(got[0], 0.5, 1e-12) || !almostEqual(got[1], 0.5, 1e-12) {
		t.Errorf("Average = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{2, 2, 4})
	if !almostEqual(p[0], 0.25, 1e-12) || !almostEqual(p[2], 0.5, 1e-12) {
		t.Errorf("Normalize = %v", p)
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize(0) = %v", z)
	}
}

func TestAverageMagnetization(t *testing.T) {
	// all |00>: magnetization +1
	p := []float64{1, 0, 0, 0}
	if got := AverageMagnetization(p, 2); !almostEqual(got, 1, 1e-12) {
		t.Errorf("mag |00> = %g, want 1", got)
	}
	// all |11>: -1
	p = []float64{0, 0, 0, 1}
	if got := AverageMagnetization(p, 2); !almostEqual(got, -1, 1e-12) {
		t.Errorf("mag |11> = %g, want -1", got)
	}
	// |01>: qubit0 down... wait |01> index 1 = q0 is 1 → z = (-1 + 1)/2 = 0
	p = []float64{0, 1, 0, 0}
	if got := AverageMagnetization(p, 2); !almostEqual(got, 0, 1e-12) {
		t.Errorf("mag |01> = %g, want 0", got)
	}
}

func TestStaggeredMagnetization(t *testing.T) {
	// Néel state |0101...>: staggered magnetization +1.
	// Index with q0=0,q1=1,q2=0,q3=1 → bits 1010 binary = 10.
	p := make([]float64, 16)
	p[10] = 1
	if got := StaggeredMagnetization(p, 4); !almostEqual(got, 1, 1e-12) {
		t.Errorf("staggered Néel = %g, want 1", got)
	}
	// Uniform all-up |0000>: staggered magnetization 0.
	p = make([]float64, 16)
	p[0] = 1
	if got := StaggeredMagnetization(p, 4); !almostEqual(got, 0, 1e-12) {
		t.Errorf("staggered uniform = %g, want 0", got)
	}
}

func randomDist(n int, rng *rand.Rand) []float64 {
	p := make([]float64, n)
	var s float64
	for i := range p {
		p[i] = rng.Float64()
		s += p[i]
	}
	for i := range p {
		p[i] /= s
	}
	return p
}

func TestPropTVDAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randomDist(8, r), randomDist(8, r)
		d := TVD(p, q)
		// symmetric, in [0,1], zero iff equal (approx)
		return d >= 0 && d <= 1 && almostEqual(d, TVD(q, p), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropTVDTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, m := randomDist(8, r), randomDist(8, r), randomDist(8, r)
		return TVD(p, q) <= TVD(p, m)+TVD(m, q)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropJSDBoundsAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randomDist(8, r), randomDist(8, r)
		d := JSD(p, q)
		return d >= 0 && d <= 1 && almostEqual(d, JSD(q, p), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPropMagnetizationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomDist(16, r)
		m := AverageMagnetization(p, 4)
		s := StaggeredMagnetization(p, 4)
		return m >= -1-1e-12 && m <= 1+1e-12 && s >= -1-1e-12 && s <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}
