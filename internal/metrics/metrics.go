// Package metrics implements the output- and process-distance measures of
// QUEST Sec. 2: Total Variation Distance, Jensen-Shannon Divergence (with
// Kullback-Leibler divergence), the Hilbert-Schmidt process distance, and
// the magnetization observables used by the TFIM/Heisenberg case studies.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// TVD returns the total variation distance  ½ Σ_k |p(k) - q(k)|
// between two distributions of equal length. The result is in [0, 1] for
// normalized distributions.
func TVD(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("metrics: TVD length mismatch %d vs %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}

// KL returns the Kullback-Leibler divergence Σ_k q(k) log(q(k)/r(k)) in
// nats. Terms with q(k)=0 contribute zero; a term with q(k)>0 and r(k)=0
// contributes +Inf as per the definition.
func KL(q, r []float64) float64 {
	if len(q) != len(r) {
		panic(fmt.Sprintf("metrics: KL length mismatch %d vs %d", len(q), len(r)))
	}
	var s float64
	for i := range q {
		if q[i] == 0 {
			continue
		}
		if r[i] == 0 {
			return math.Inf(1)
		}
		s += q[i] * math.Log(q[i]/r[i])
	}
	return s
}

// JSD returns the Jensen-Shannon distance
//
//	sqrt( ½ [ D(p||m) + D(q||m) ] ),  m = (p+q)/2
//
// using natural-log KL divergence normalized by log 2 so the result is in
// [0, 1] (0 is identical distributions).
func JSD(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("metrics: JSD length mismatch %d vs %d", len(p), len(q)))
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = (p[i] + q[i]) / 2
	}
	v := (KL(p, m) + KL(q, m)) / 2 / math.Ln2
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return math.Sqrt(v)
}

// HSDistance is the process distance sqrt(1 - |Tr(U†V)|²/N²) re-exported
// for callers that import metrics but not linalg.
func HSDistance(u, v *linalg.Matrix) float64 { return linalg.HSDistance(u, v) }

// AverageDistributions returns the pointwise mean of the given
// distributions, QUEST's ensemble-output rule.
func AverageDistributions(dists ...[]float64) []float64 {
	if len(dists) == 0 {
		panic("metrics: AverageDistributions of nothing")
	}
	n := len(dists[0])
	out := make([]float64, n)
	for _, d := range dists {
		if len(d) != n {
			panic("metrics: AverageDistributions length mismatch")
		}
		for i, v := range d {
			out[i] += v
		}
	}
	inv := 1 / float64(len(dists))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Normalize scales a nonnegative histogram to sum to 1 (no-op on an
// all-zero histogram) and returns it.
func Normalize(p []float64) []float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	if s == 0 {
		return p
	}
	for i := range p {
		p[i] /= s
	}
	return p
}

// AverageMagnetization returns <Σ_q Z_q>/n for an n-qubit output
// distribution: the average magnetization observable that the TFIM and
// Heisenberg case studies track over time (Fig. 1/13/14). Z eigenvalue is
// +1 for bit 0 and -1 for bit 1.
func AverageMagnetization(p []float64, n int) float64 {
	if len(p) != 1<<n {
		panic(fmt.Sprintf("metrics: distribution length %d != 2^%d", len(p), n))
	}
	var m float64
	for k, pk := range p {
		if pk == 0 {
			continue
		}
		z := 0
		for q := 0; q < n; q++ {
			if k&(1<<q) == 0 {
				z++
			} else {
				z--
			}
		}
		m += pk * float64(z)
	}
	return m / float64(n)
}

// StaggeredMagnetization returns <Σ_q (-1)^q Z_q>/n, the antiferromagnetic
// order parameter used for the Heisenberg model.
func StaggeredMagnetization(p []float64, n int) float64 {
	if len(p) != 1<<n {
		panic(fmt.Sprintf("metrics: distribution length %d != 2^%d", len(p), n))
	}
	var m float64
	for k, pk := range p {
		if pk == 0 {
			continue
		}
		var z float64
		for q := 0; q < n; q++ {
			v := 1.0
			if k&(1<<q) != 0 {
				v = -1.0
			}
			if q%2 == 1 {
				v = -v
			}
			z += v
		}
		m += pk * z
	}
	return m / float64(n)
}
