package core_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math"
	"os"
	"testing"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/qasm"
	"repro/internal/ucache"
)

var update = flag.Bool("update", false, "regenerate testdata/golden_run.json from the current pipeline")

// The golden file pins core.Run end to end over 3 benchmark circuits ×
// 2 configs × 2 parallelism levels, with one cached run per circuit. The
// staged pipeline must reproduce every case bit-for-bit: choice vectors,
// CNOT counts, EpsilonSum float bits, the exact QASM of each selected
// circuit, degradation counts and cache stats.
//
// The fixture tracks the synthesis objective's exact arithmetic, so it
// must be regenerated (go test ./internal/core -run Golden -update) when
// the objective's evaluation order changes. History: originally generated
// by the pre-refactor monolithic core.Run (commit c5ddef0); regenerated
// after the fused-layer objective rewrite, which reassociates the same
// math into 4x4 segment kernels and so shifts results by last-bit
// rounding (values agree with the unfused path to ~1e-12, but the L-BFGS
// trajectories and therefore the harvested candidates can differ).

type goldenApprox struct {
	Choice     []int  `json:"choice"`
	CNOTs      int    `json:"cnots"`
	EpsSumBits uint64 `json:"eps_sum_bits"`
	CircuitSHA string `json:"circuit_sha"`
}

type goldenCase struct {
	Name          string         `json:"name"`
	Algo          string         `json:"algo"`
	Qubits        int            `json:"qubits"`
	Config        string         `json:"config"`
	Parallelism   int            `json:"parallelism"`
	Cached        bool           `json:"cached"`
	ThresholdBits uint64         `json:"threshold_bits"`
	NumBlocks     int            `json:"num_blocks"`
	Selected      []goldenApprox `json:"selected"`
	Degradations  int            `json:"degradations"`
	CacheHits     uint64         `json:"cache_hits"`
	CacheMisses   uint64         `json:"cache_misses"`
}

func goldenConfig(t *testing.T, name string) core.Config {
	t.Helper()
	switch name {
	case "default":
		return core.Config{MaxSamples: 4, AnnealIterations: 120, Seed: 1}
	case "nondefault":
		return core.Config{
			BlockSize: 2, Epsilon: 0.1, ThresholdCap: 0.4, MaxSamples: 3,
			CXWeight: 0.75, AnnealIterations: 100, SynthBeam: 1,
			SynthKeepPerDepth: 3, Seed: 7,
		}
	}
	t.Fatalf("unknown golden config %q", name)
	return core.Config{}
}

func runGoldenCase(t *testing.T, gc *goldenCase) *core.Result {
	t.Helper()
	c, err := algos.Generate(gc.Algo, gc.Qubits)
	if err != nil {
		t.Fatalf("generate %s-%d: %v", gc.Algo, gc.Qubits, err)
	}
	cfg := goldenConfig(t, gc.Config)
	cfg.Parallelism = gc.Parallelism
	if gc.Cached {
		cfg.SynthCache = ucache.New(256, 0)
	}
	res, err := core.Run(c, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestGoldenStagedPipelineMatchesSeed(t *testing.T) {
	raw, err := os.ReadFile("testdata/golden_run.json")
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(raw, &cases); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(cases) == 0 {
		t.Fatal("golden file has no cases")
	}

	if *update {
		for i := range cases {
			gc := &cases[i]
			res := runGoldenCase(t, gc)
			gc.ThresholdBits = math.Float64bits(res.Threshold)
			gc.NumBlocks = len(res.Blocks)
			gc.Degradations = len(res.Degradations)
			gc.CacheHits, gc.CacheMisses = 0, 0
			if gc.Cached {
				gc.CacheHits = res.CacheStats.Hits
				gc.CacheMisses = res.CacheStats.Misses
			}
			gc.Selected = gc.Selected[:0]
			for _, a := range res.Selected {
				sum := sha256.Sum256([]byte(qasm.Write(a.Circuit)))
				gc.Selected = append(gc.Selected, goldenApprox{
					Choice:     append([]int(nil), a.Choice...),
					CNOTs:      a.CNOTs,
					EpsSumBits: math.Float64bits(a.EpsilonSum),
					CircuitSHA: hex.EncodeToString(sum[:]),
				})
			}
		}
		out, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		if err := os.WriteFile("testdata/golden_run.json", append(out, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("regenerated testdata/golden_run.json with %d cases", len(cases))
		return
	}

	for _, gc := range cases {
		gc := gc
		t.Run(gc.Name, func(t *testing.T) {
			t.Parallel()
			res := runGoldenCase(t, &gc)
			if got := math.Float64bits(res.Threshold); got != gc.ThresholdBits {
				t.Errorf("threshold bits = %d, want %d", got, gc.ThresholdBits)
			}
			if len(res.Blocks) != gc.NumBlocks {
				t.Errorf("blocks = %d, want %d", len(res.Blocks), gc.NumBlocks)
			}
			if len(res.Degradations) != gc.Degradations {
				t.Errorf("degradations = %d, want %d", len(res.Degradations), gc.Degradations)
			}
			if gc.Cached {
				if res.CacheStats.Hits != gc.CacheHits || res.CacheStats.Misses != gc.CacheMisses {
					t.Errorf("cache stats = %d hits/%d misses, want %d/%d",
						res.CacheStats.Hits, res.CacheStats.Misses, gc.CacheHits, gc.CacheMisses)
				}
			}
			if len(res.Selected) != len(gc.Selected) {
				t.Fatalf("selected %d approximations, want %d", len(res.Selected), len(gc.Selected))
			}
			for i, a := range res.Selected {
				want := gc.Selected[i]
				if len(a.Choice) != len(want.Choice) {
					t.Fatalf("sample %d: choice length %d, want %d", i, len(a.Choice), len(want.Choice))
				}
				for k := range a.Choice {
					if a.Choice[k] != want.Choice[k] {
						t.Errorf("sample %d: choice[%d] = %d, want %d", i, k, a.Choice[k], want.Choice[k])
					}
				}
				if a.CNOTs != want.CNOTs {
					t.Errorf("sample %d: CNOTs = %d, want %d", i, a.CNOTs, want.CNOTs)
				}
				if got := math.Float64bits(a.EpsilonSum); got != want.EpsSumBits {
					t.Errorf("sample %d: EpsilonSum bits = %d, want %d", i, got, want.EpsSumBits)
				}
				sum := sha256.Sum256([]byte(qasm.Write(a.Circuit)))
				if got := hex.EncodeToString(sum[:]); got != want.CircuitSHA {
					t.Errorf("sample %d: circuit sha = %s, want %s", i, got, want.CircuitSHA)
				}
			}
		})
	}
}
