package core

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/metrics"
)

// Runner executes a circuit and returns its output distribution; it
// abstracts the ideal simulator, the noisy simulator, and device models so
// the ensemble rule is identical across backends.
type Runner func(*circuit.Circuit) ([]float64, error)

// EnsembleProbabilities runs every selected approximation through the
// runner and returns the pointwise average of their output distributions —
// QUEST's output rule (Sec. 3.6, Fig. 6).
func (r *Result) EnsembleProbabilities(run Runner) ([]float64, error) {
	if len(r.Selected) == 0 {
		return nil, fmt.Errorf("core: no selected approximations")
	}
	dists := make([][]float64, 0, len(r.Selected))
	for i, a := range r.Selected {
		p, err := run(a.Circuit)
		if err != nil {
			return nil, fmt.Errorf("core: running approximation %d: %w", i, err)
		}
		dists = append(dists, p)
	}
	return metrics.AverageDistributions(dists...), nil
}
