package core

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/metrics"
	"repro/internal/par"
)

// Runner executes a circuit and returns its output distribution; it
// abstracts the ideal simulator, the noisy simulator, and device models so
// the ensemble rule is identical across backends.
//
// Concurrency contract: ensemble evaluation calls the Runner from
// multiple goroutines, so a Runner must be safe for concurrent use. Every
// Runner built by this repository is — each call owns its statevector and
// derives private RNG streams from its seed — but a custom Runner that
// mutates shared state must either synchronize internally or be driven
// through EnsembleProbabilitiesWorkers(run, 1).
type Runner func(*circuit.Circuit) ([]float64, error)

// EnsembleProbabilities runs every selected approximation through the
// runner and returns the pointwise average of their output distributions —
// QUEST's output rule (Sec. 3.6, Fig. 6). Approximations are evaluated
// concurrently with runtime.NumCPU() workers; the result is identical for
// every worker count (distributions are averaged in selection order).
func (r *Result) EnsembleProbabilities(run Runner) ([]float64, error) {
	return r.EnsembleProbabilitiesWorkers(run, 0)
}

// EnsembleProbabilitiesWorkers is EnsembleProbabilities with an explicit
// worker-goroutine cap (0 or negative selects runtime.NumCPU(), 1 forces
// serial evaluation for Runners that are not concurrency-safe).
func (r *Result) EnsembleProbabilitiesWorkers(run Runner, workers int) ([]float64, error) {
	if len(r.Selected) == 0 {
		return nil, fmt.Errorf("core: no selected approximations")
	}
	dists := make([][]float64, len(r.Selected))
	errs := make([]error, len(r.Selected))
	par.ForEach(workers, len(r.Selected), func(i int) {
		p, err := run(r.Selected[i].Circuit)
		if err != nil {
			errs[i] = fmt.Errorf("core: running approximation %d: %w", i, err)
			return
		}
		dists[i] = p
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return metrics.AverageDistributions(dists...), nil
}
