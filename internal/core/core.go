// Package core preserves the historical import path of the QUEST
// pipeline (Sec. 3): partition a circuit into small blocks, generate many
// low-CNOT approximate circuits per block with approximate synthesis,
// then use a dual annealing engine driven by the paper's Algorithm 1 to
// select up to M "dissimilar" low-CNOT full circuit approximations whose
// averaged output tracks the original circuit. The per-block process
// distances bound the full-circuit process distance by the Sec. 3.8
// theorem: HS(full) ≤ Σ_k ε_k.
//
// The implementation lives in internal/pipeline as a typed composition
// of stages (partition → synthesis → selection) with explicit, reusable
// artifacts; this package re-exports the types and entry points so
// existing callers keep working, and Run/RunCtx here ARE the staged
// pipeline (asserted bit-for-bit against the pre-refactor outputs by
// TestGoldenStagedPipelineMatchesSeed). New code that wants stage-level
// access — computing a SynthesisArtifact once and re-selecting it across
// ε/M sweeps — should import internal/pipeline directly.
package core

import (
	"context"

	"repro/internal/circuit"
	"repro/internal/pipeline"
)

// Config controls the pipeline. The zero value selects the paper-like
// defaults; see pipeline.Config for the field documentation and the
// zero-value sentinel convention (CXWeightSet).
type Config = pipeline.Config

// Result is the pipeline output.
type Result = pipeline.Result

// BlockApproximations holds one partition block with its harvested
// approximate circuits.
type BlockApproximations = pipeline.BlockApproximations

// Approximation is one selected full-circuit approximation.
type Approximation = pipeline.Approximation

// Timing records where pipeline time went (Fig. 12).
type Timing = pipeline.Timing

// Degradation records one block that fell back to its exact (transpiled)
// circuit.
type Degradation = pipeline.Degradation

// Objective is a pluggable selection objective; see pipeline.Objective
// for the determinism contract and internal/backend.Objective for the
// spec-string resolver.
type Objective = pipeline.Objective

// Runner executes a circuit and returns an output distribution; see
// pipeline.Runner for the concurrency contract.
type Runner = pipeline.Runner

// RunnerCtx is a context-aware Runner.
type RunnerCtx = pipeline.RunnerCtx

// Run executes the QUEST pipeline on a circuit.
func Run(c *circuit.Circuit, cfg Config) (*Result, error) {
	return pipeline.Run(c, cfg)
}

// RunCtx executes the QUEST pipeline under a context: the composition of
// the partition, synthesis and selection stages. See pipeline.RunCtx for
// the budget/degradation semantics.
func RunCtx(ctx context.Context, c *circuit.Circuit, cfg Config) (*Result, error) {
	return pipeline.RunCtx(ctx, c, cfg)
}

// Assemble rebuilds a full-circuit approximation from a per-block
// candidate choice (choice[b] indexes blocks[b].Candidates).
func Assemble(numQubits int, blocks []BlockApproximations, choice []int) (Approximation, error) {
	return pipeline.Assemble(numQubits, blocks, choice)
}

// UpperBound is the Sec. 3.8 theorem: the process distance of a circuit
// assembled from approximate blocks is at most the sum of the blocks'
// process distances.
func UpperBound(blockDistances []float64) float64 {
	return pipeline.UpperBound(blockDistances)
}
