// Package core implements the QUEST pipeline (Sec. 3): partition a circuit
// into small blocks, generate many low-CNOT approximate circuits per block
// with approximate synthesis, then use a dual annealing engine driven by
// the paper's Algorithm 1 to select up to M "dissimilar" low-CNOT full
// circuit approximations whose averaged output tracks the original
// circuit. The per-block process distances bound the full-circuit process
// distance by the Sec. 3.8 theorem: HS(full) ≤ Σ_k ε_k.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/anneal"
	"repro/internal/budget"
	"repro/internal/circuit"
	"repro/internal/faultinject"
	"repro/internal/linalg"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/ucache"
)

// Config controls the pipeline. The zero value selects the paper-like
// defaults (documented per field).
type Config struct {
	// BlockSize is the maximum partition block size in qubits. The paper
	// uses 4; the default here is 3, which synthesizes much faster in
	// pure Go while exercising the identical code path (see DESIGN.md).
	BlockSize int
	// Epsilon is the per-block process-distance budget. The full-circuit
	// threshold is Epsilon × (number of blocks), i.e. proportional to
	// the block count exactly as in Sec. 4.1, but capped at ThresholdCap
	// so deep circuits cannot accumulate unboundedly coarse
	// approximations. Default 0.05.
	Epsilon float64
	// ThresholdCap bounds the full-circuit distance threshold from
	// above (default 0.5; HS distances approach 1 for unrelated
	// unitaries, so budgets beyond ~0.5 admit junk).
	ThresholdCap float64
	// MaxSamples is M, the maximum number of dissimilar approximations
	// selected (default 16).
	MaxSamples int
	// CXWeight is the objective weight on normalized CNOT count; the
	// dissimilarity weight is 1-CXWeight. Default 0.5 (balanced).
	CXWeight float64
	// SynthBeam, SynthRestarts and SynthKeepPerDepth tune the per-block
	// synthesis search (defaults 2, 1, 4).
	SynthBeam         int
	SynthRestarts     int
	SynthKeepPerDepth int
	// AnnealIterations is the dual annealing budget per selected sample
	// (default 400).
	AnnealIterations int
	// Parallelism is the number of blocks synthesized concurrently
	// (default runtime.NumCPU()); results are deterministic regardless.
	Parallelism int
	// Seed makes the whole pipeline deterministic (default 1).
	Seed int64
	// Timeout bounds the whole pipeline run; 0 means no limit. When it
	// expires RunCtx fails with an ErrDeadline-wrapped error — or, with
	// AllowDegraded, finishes immediately with a degraded result.
	Timeout time.Duration
	// BlockTimeout bounds each per-block synthesis attempt; 0 means no
	// limit. An attempt that hits it counts as a failed attempt and is
	// retried (see MaxRestarts).
	BlockTimeout time.Duration
	// MaxRestarts is how many extra synthesis attempts a failing block
	// gets, each with a jittered seed and a widened search (one extra
	// beam slot and restart per attempt). Default 2; negative disables
	// retries.
	MaxRestarts int
	// AllowDegraded lets the pipeline substitute a block's exact
	// (transpiled) circuit when the run or block time budget expires,
	// instead of failing the run; degraded blocks are recorded in
	// Result.Degradations. Quality failures (no candidate within the
	// threshold after all retries) always degrade this way — the exact
	// block is a valid, zero-error stand-in — regardless of this flag,
	// which only governs budget-driven degradation.
	AllowDegraded bool
	// SynthCache, when non-nil, memoizes per-block synthesis results by
	// target unitary (see internal/ucache). Blocks with identical
	// unitaries — Trotter steps, repeated subcircuits — then synthesize
	// once per run (or once across runs when the cache is shared).
	// Nil disables caching, so every block synthesis actually runs; the
	// timeout/retry/degradation machinery assumes that in its tests.
	SynthCache *ucache.Cache
}

func (c *Config) defaults() {
	if c.BlockSize == 0 {
		c.BlockSize = 3
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.ThresholdCap == 0 {
		c.ThresholdCap = 0.5
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 16
	}
	if c.CXWeight == 0 {
		c.CXWeight = 0.5
	}
	if c.SynthBeam == 0 {
		c.SynthBeam = 2
	}
	if c.SynthRestarts == 0 {
		c.SynthRestarts = 1
	}
	if c.SynthKeepPerDepth == 0 {
		c.SynthKeepPerDepth = 4
	}
	if c.AnnealIterations == 0 {
		c.AnnealIterations = 400
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	switch {
	case c.MaxRestarts == 0:
		c.MaxRestarts = 2
	case c.MaxRestarts < 0:
		c.MaxRestarts = 0
	}
}

// BlockApproximations holds one partition block with its harvested
// approximate circuits.
type BlockApproximations struct {
	// Block is the partition block (global qubits + local circuit).
	Block partition.Block
	// Unitary is the block's original unitary.
	Unitary *linalg.Matrix
	// Candidates are the approximate circuits, sorted by (CNOTs,
	// Distance); Candidates[i].Circuit acts on block-local qubits.
	Candidates []synth.Candidate
	// pairDist[i][j] is the HS distance between candidates i and j,
	// used by the Algorithm-1 similarity rule.
	pairDist [][]float64
}

// Approximation is one selected full-circuit approximation.
type Approximation struct {
	// Choice[b] is the candidate index used for block b.
	Choice []int
	// Circuit is the reassembled full circuit.
	Circuit *circuit.Circuit
	// CNOTs is the full circuit's CNOT count.
	CNOTs int
	// EpsilonSum is Σ_k ε_k over the chosen block candidates: by the
	// Sec. 3.8 theorem an upper bound on the full-circuit HS distance.
	EpsilonSum float64
}

// Timing records where pipeline time went (Fig. 12).
type Timing struct {
	Partition time.Duration
	Synthesis time.Duration
	Annealing time.Duration
}

// Total returns the summed pipeline time.
func (t Timing) Total() time.Duration { return t.Partition + t.Synthesis + t.Annealing }

// Degradation records one block that fell back to its exact (transpiled)
// circuit because synthesis failed to produce a usable approximation
// within its retry and time budgets. A degraded block contributes zero
// process distance, so the assembled circuits stay valid — the pipeline
// just loses CNOT savings on that block.
type Degradation struct {
	// Block is the index into Result.Blocks.
	Block int
	// Qubits are the block's global qubit indices.
	Qubits []int
	// Attempts is the number of synthesis attempts made.
	Attempts int
	// Reason describes the final failure (e.g. "no candidate within
	// threshold" or the last attempt's error text).
	Reason string
}

// Result is the pipeline output.
type Result struct {
	// Original is the input circuit.
	Original *circuit.Circuit
	// Blocks holds per-block approximation sets.
	Blocks []BlockApproximations
	// Selected are the chosen dissimilar approximations, in selection
	// order (the first has the lowest CNOT count).
	Selected []Approximation
	// Threshold is the full-circuit distance threshold used
	// (Epsilon × number of blocks).
	Threshold float64
	// Timing is the per-stage cost breakdown.
	Timing Timing
	// Degradations lists blocks that fell back to their exact circuit,
	// in block order. Empty on a fully approximated run.
	Degradations []Degradation
	// CacheStats is the synthesis-cache activity during this run
	// (zero when Config.SynthCache is nil). With a cache shared across
	// concurrent runs the numbers include the other runs' activity.
	CacheStats ucache.Stats
}

// BestCNOTs returns the smallest CNOT count among selected approximations.
func (r *Result) BestCNOTs() int {
	best := math.MaxInt
	for _, a := range r.Selected {
		if a.CNOTs < best {
			best = a.CNOTs
		}
	}
	return best
}

// UpperBound is the Sec. 3.8 theorem: the process distance of a circuit
// assembled from approximate blocks is at most the sum of the blocks'
// process distances.
func UpperBound(blockDistances []float64) float64 {
	var s float64
	for _, d := range blockDistances {
		s += d
	}
	return s
}

// Run executes the QUEST pipeline on a circuit.
func Run(c *circuit.Circuit, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), c, cfg)
}

// RunCtx executes the QUEST pipeline under a context. Config.Timeout (if
// set) is layered on top of ctx's own deadline. Cancellation is checked
// at every stage boundary and inside every stage's inner loops; when the
// budget expires the run fails with a typed, wrapped error
// (errors.Is(err, budget.ErrDeadline) or budget.ErrCancelled) — unless
// Config.AllowDegraded is set, in which case unfinished blocks fall back
// to their exact circuits (recorded in Result.Degradations) and a valid,
// degraded result is returned with a nil error.
func RunCtx(ctx context.Context, c *circuit.Circuit, cfg Config) (*Result, error) {
	cfg.defaults()
	if c.Size() == 0 {
		return nil, fmt.Errorf("core: empty circuit")
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}

	res := &Result{Original: c}

	// STEP 1: partition. Pure, fast compute — with AllowDegraded it runs
	// even on an expired budget, because producing the (fully degraded)
	// exact fallback still requires the block structure.
	t0 := time.Now()
	if err := budget.Check(ctx); err != nil && !cfg.AllowDegraded {
		return nil, fmt.Errorf("core: %w", err)
	}
	blocks, err := partition.Scan(c, cfg.BlockSize)
	if err != nil {
		return nil, fmt.Errorf("core: partition: %w", err)
	}
	res.Timing.Partition = time.Since(t0)
	res.Threshold = math.Min(cfg.Epsilon*float64(len(blocks)), cfg.ThresholdCap)

	// STEP 2: per-block approximate synthesis (parallel, deterministic:
	// block i's search is seeded from (Seed, i) and writes only slot i).
	// Retry/quality degradation is handled inside synthesizeBlock, so an
	// error out of this loop is either the run budget expiring or a
	// worker panic (surfaced as *par.PanicError).
	t0 = time.Now()
	var statsBefore ucache.Stats
	if cfg.SynthCache != nil {
		statsBefore = cfg.SynthCache.Stats()
	}
	res.Blocks = make([]BlockApproximations, len(blocks))
	degs := make([]*Degradation, len(blocks))
	synthErr := par.ForEachErr(ctx, cfg.Parallelism, len(blocks), func(bctx context.Context, i int) error {
		ba, deg, err := synthesizeBlock(bctx, i, blocks[i], cfg, res.Threshold)
		if err != nil {
			return fmt.Errorf("synthesize block %d: %w", i, err)
		}
		res.Blocks[i] = ba
		degs[i] = deg
		return nil
	})
	if cfg.SynthCache != nil {
		res.CacheStats = cfg.SynthCache.Stats().Sub(statsBefore)
	}
	if synthErr != nil {
		if !budget.Terminated(synthErr) || !cfg.AllowDegraded {
			return nil, fmt.Errorf("core: %w", synthErr)
		}
		// Budget expired with AllowDegraded: every unfinished block
		// degrades to its exact circuit so the result stays valid.
		for i := range res.Blocks {
			if res.Blocks[i].Candidates == nil {
				res.Blocks[i] = exactOnlyBlock(blocks[i])
				degs[i] = &Degradation{
					Block:    i,
					Qubits:   blocks[i].Qubits,
					Attempts: 0,
					Reason:   "run budget exhausted: " + synthErr.Error(),
				}
			}
		}
	}
	for _, d := range degs {
		if d != nil {
			res.Degradations = append(res.Degradations, *d)
		}
	}
	res.Timing.Synthesis = time.Since(t0)

	// STEP 3: dual-annealing selection of dissimilar approximations. A
	// budget error here still leaves res.Selected valid (the selection
	// loop falls back to the per-block best choice), so with
	// AllowDegraded the partial selection is returned as-is.
	t0 = time.Now()
	if err := selectApproximations(ctx, res, cfg); err != nil {
		if !budget.Terminated(err) || !cfg.AllowDegraded {
			return nil, err
		}
	}
	res.Timing.Annealing = time.Since(t0)
	return res, nil
}

// exactOnlyBlock builds the degraded approximation set for a block: its
// own (exact, zero-distance) circuit as the only candidate.
func exactOnlyBlock(b partition.Block) BlockApproximations {
	return BlockApproximations{
		Block:   b,
		Unitary: sim.Unitary(b.Circuit),
		Candidates: []synth.Candidate{{
			Circuit:  b.Circuit.Clone(),
			Distance: 0,
			CNOTs:    b.Circuit.CNOTCount(),
		}},
		pairDist: [][]float64{{0}},
	}
}

// synthesizeBlock harvests approximations for one block, retrying with
// jittered seeds and a widened search on failure, and degrading to the
// exact circuit when every attempt fails. Candidates whose process
// distance already exceeds the FULL circuit threshold can never appear
// in a feasible selection (the bound is a sum of non-negative terms), so
// they are pruned before the annealing stage.
//
// The returned *Degradation is non-nil when the block degraded. An error
// is returned only when the run's own budget expired (typed, unwrappable
// to budget.ErrDeadline/ErrCancelled) — or when a per-block budget
// expired and Config.AllowDegraded is off.
func synthesizeBlock(ctx context.Context, idx int, b partition.Block, cfg Config, threshold float64) (BlockApproximations, *Degradation, error) {
	u := sim.Unitary(b.Circuit)
	// The search seed is derived from the block's CONTENT (its unitary's
	// phase-invariant hash), not its position: identical blocks — e.g.
	// repeated Trotter steps — run identical searches, which both keeps
	// the pipeline deterministic for any Parallelism and makes their
	// synthesis results shareable through Config.SynthCache.
	seed := cfg.Seed ^ int64(ucache.TargetKey(u)&0x7fffffffffffffff)
	maxCNOTs := b.Circuit.CNOTCount()
	if maxCNOTs == 0 {
		maxCNOTs = -1 // rotation-only block: forbid CNOT layers entirely
	}

	attempts := 1 + cfg.MaxRestarts
	var kept []synth.Candidate
	lastReason := "no candidate within threshold"
	budgetFailure := false
	attempt := 0
	for ; attempt < attempts; attempt++ {
		if err := budget.Check(ctx); err != nil {
			return BlockApproximations{}, nil, err
		}
		// Deterministic fault injection: a hook at core.block.<idx> can
		// force this attempt to fail (e.g. with budget.ErrNoConvergence)
		// to exercise the retry and degradation paths.
		if faultinject.Enabled() {
			if err := faultinject.Fire(fmt.Sprintf("core.block.%d", idx)); err != nil {
				if budget.Terminated(err) {
					return BlockApproximations{}, nil, err
				}
				lastReason = err.Error()
				continue
			}
		}
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if cfg.BlockTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, cfg.BlockTimeout)
		}
		opts := synth.Options{
			Threshold:    math.Max(cfg.Epsilon/4, 1e-6),
			MaxCNOTs:     maxCNOTs,
			Beam:         cfg.SynthBeam + attempt,
			Restarts:     cfg.SynthRestarts + attempt,
			KeepPerDepth: cfg.SynthKeepPerDepth,
			HarvestAll:   true,
			Seed:         seed + int64(attempt)*15485863,
		}
		var sres synth.Result
		var err error
		if cfg.SynthCache != nil {
			sres, _, err = cfg.SynthCache.SynthesizeCtx(actx, u, opts)
		} else {
			sres, err = synth.SynthesizeCtx(actx, u, opts)
		}
		cancel()
		if err != nil {
			if budget.Terminated(err) && ctx.Err() != nil {
				// The run's budget, not the per-block one: abort.
				return BlockApproximations{}, nil, err
			}
			lastReason = err.Error()
			budgetFailure = budgetFailure || budget.Terminated(err)
			continue
		}
		kept = sres.Candidates[:0]
		for _, cand := range sres.Candidates {
			if cand.Distance <= threshold {
				kept = append(kept, cand)
			}
		}
		if len(kept) > 0 {
			break
		}
		lastReason = "no candidate within threshold"
	}

	if len(kept) == 0 {
		// Every attempt failed: degrade to the exact (transpiled) block.
		// A time-budget failure degrades only when the caller opted in;
		// quality failures always degrade (the exact block is a valid,
		// zero-error stand-in — the pre-retry behavior, now reported).
		if budgetFailure && !cfg.AllowDegraded {
			return BlockApproximations{}, nil, fmt.Errorf("block budget exhausted after %d attempts: %w", attempt, budget.ErrDeadline)
		}
		deg := &Degradation{Block: idx, Qubits: b.Qubits, Attempts: attempt, Reason: lastReason}
		return exactOnlyBlock(b), deg, nil
	}

	// The block's own circuit is always an exact candidate: it anchors
	// the selection space (QUEST can never do worse than the Baseline)
	// and guarantees an exact option when the synthesis search missed
	// the exact solution at low depth.
	hasExact := false
	for _, cand := range kept {
		if cand.Distance < 1e-7 && cand.CNOTs <= b.Circuit.CNOTCount() {
			hasExact = true
			break
		}
	}
	if !hasExact {
		kept = append(kept, synth.Candidate{
			Circuit:  b.Circuit.Clone(),
			Distance: 0,
			CNOTs:    b.Circuit.CNOTCount(),
		})
	}
	ba := BlockApproximations{Block: b, Unitary: u, Candidates: kept}
	// Precompute pairwise candidate distances for the similarity rule.
	// Candidate unitaries and the upper triangle fan out across workers
	// (each (i, j>i) cell is written exactly once); the mirror pass runs
	// after the barrier so it only reads completed cells.
	us := make([]*linalg.Matrix, len(ba.Candidates))
	par.ForEach(cfg.Parallelism, len(us), func(i int) {
		us[i] = sim.Unitary(ba.Candidates[i].Circuit)
	})
	ba.pairDist = make([][]float64, len(us))
	for i := range us {
		ba.pairDist[i] = make([]float64, len(us))
	}
	par.ForEach(cfg.Parallelism, len(us), func(i int) {
		for j := i + 1; j < len(us); j++ {
			ba.pairDist[i][j] = linalg.HSDistance(us[i], us[j])
		}
	})
	for i := range us {
		for j := 0; j < i; j++ {
			ba.pairDist[i][j] = ba.pairDist[j][i]
		}
	}
	return ba, nil, nil
}

// blockSimilar implements the paper's similarity criterion for one block:
// two candidates are similar when their mutual distance does not exceed
// the larger of their distances to the original.
func (ba *BlockApproximations) blockSimilar(i, j int) bool {
	if i == j {
		return true
	}
	di := ba.Candidates[i].Distance
	dj := ba.Candidates[j].Distance
	return ba.pairDist[i][j] <= math.Max(di, dj)
}

// similarity returns the fraction of blocks on which the two choice
// vectors pick similar candidates (the scalable full-circuit similarity
// of Sec. 3.6).
func similarity(blocks []BlockApproximations, a, b []int) float64 {
	if len(blocks) == 0 {
		return 1
	}
	m := 0
	for k := range blocks {
		if blocks[k].blockSimilar(a[k], b[k]) {
			m++
		}
	}
	return float64(m) / float64(len(blocks))
}

// choiceStats returns the CNOT count and Σε of a choice vector.
func choiceStats(blocks []BlockApproximations, choice []int) (cnots int, epsSum float64) {
	for k, ba := range blocks {
		cand := ba.Candidates[choice[k]]
		cnots += cand.CNOTs
		epsSum += cand.Distance
	}
	return cnots, epsSum
}

// selectApproximations runs the dual annealing engine repeatedly,
// implementing Algorithm 1 as the objective, until MaxSamples circuits are
// selected, the engine returns an already-selected circuit, or the ctx
// budget expires. On budget expiry it stops selecting, still guarantees
// at least one (fallback) selection, and returns the typed error so the
// caller can decide whether the partial selection is acceptable.
func selectApproximations(ctx context.Context, res *Result, cfg Config) error {
	blocks := res.Blocks
	nb := len(blocks)
	origCNOTs := res.Original.CNOTCount()
	if origCNOTs == 0 {
		origCNOTs = 1 // avoid division by zero for CNOT-free circuits
	}

	lower := make([]float64, nb)
	upper := make([]float64, nb)
	for k, ba := range blocks {
		upper[k] = float64(len(ba.Candidates))
	}
	toChoice := func(x []float64) []int {
		choice := make([]int, nb)
		for k, v := range x {
			i := int(math.Floor(v))
			if i >= len(blocks[k].Candidates) {
				i = len(blocks[k].Candidates) - 1
			}
			if i < 0 {
				i = 0
			}
			choice[k] = i
		}
		return choice
	}

	var selected [][]int
	// Algorithm 1: the objective for the next sample given selected set.
	// One annealer-friendly refinement over the paper's pseudocode: an
	// infeasible choice scores 1 + (Σε − threshold) instead of a flat
	// 1.0, so the plateau has a slope toward feasibility. Any value > 1
	// is still strictly worse than every feasible choice, so the
	// selection semantics of Algorithm 1 are unchanged.
	objective := func(x []float64) float64 {
		choice := toChoice(x)
		cnots, epsSum := choiceStats(blocks, choice)
		if epsSum > res.Threshold {
			return 1.0 + (epsSum - res.Threshold)
		}
		cnorm := float64(cnots) / float64(origCNOTs)
		if len(selected) == 0 {
			return cnorm
		}
		m := 0.0
		for _, s := range selected {
			m += similarity(blocks, choice, s)
		}
		m /= float64(len(selected))
		return (1-cfg.CXWeight)*m + cfg.CXWeight*cnorm
	}

	sameChoice := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	const dupRetries = 2
	var stopErr error
samples:
	for s := 0; s < cfg.MaxSamples; s++ {
		var choice []int
		ok := false
		for attempt := 0; attempt <= dupRetries; attempt++ {
			r, aerr := anneal.MinimizeCtx(ctx, objective, lower, upper, anneal.Options{
				MaxIterations: cfg.AnnealIterations,
				Seed:          cfg.Seed + int64(s)*104729 + int64(attempt)*1299709,
			})
			if aerr != nil {
				stopErr = aerr
				break samples
			}
			choice = toChoice(r.X)
			if _, epsSum := choiceStats(blocks, choice); epsSum > res.Threshold {
				continue // nothing feasible found this attempt
			}
			dup := false
			for _, prev := range selected {
				if sameChoice(choice, prev) {
					dup = true
					break
				}
			}
			if !dup {
				ok = true
				break
			}
		}
		if !ok {
			// Paper: terminate when the engine keeps returning already
			// selected (or infeasible) circuits.
			break
		}
		selected = append(selected, choice)
		approx, err := assemble(res.Original.NumQubits, blocks, choice)
		if err != nil {
			return err
		}
		res.Selected = append(res.Selected, approx)
	}

	// The annealer terminates when it keeps rediscovering the same
	// choice, which on small circuits can happen after a single sample —
	// leaving no ensemble to average. Greedily augment with the
	// best-scoring feasible single-block deviations so that the output
	// rule has dissimilar samples to work with whenever they exist.
	for stopErr == nil && len(selected) > 0 && len(selected) < cfg.MaxSamples {
		if stopErr = budget.Check(ctx); stopErr != nil {
			break
		}
		bestScore := math.Inf(1)
		var best []int
		for _, base := range selected {
			for b := range blocks {
				for i := range blocks[b].Candidates {
					if i == base[b] {
						continue
					}
					cand := append([]int(nil), base...)
					cand[b] = i
					if _, epsSum := choiceStats(blocks, cand); epsSum > res.Threshold {
						continue
					}
					dup := false
					for _, prev := range selected {
						if sameChoice(cand, prev) {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					x := make([]float64, nb)
					for k, v := range cand {
						x[k] = float64(v)
					}
					if score := objective(x); score < bestScore {
						bestScore = score
						best = cand
					}
				}
			}
		}
		if best == nil {
			break // space exhausted
		}
		selected = append(selected, best)
		approx, err := assemble(res.Original.NumQubits, blocks, best)
		if err != nil {
			return err
		}
		res.Selected = append(res.Selected, approx)
	}

	if len(res.Selected) == 0 {
		// Fall back to the per-block best candidates so callers always
		// get at least one approximation (equivalent to a very tight
		// exact synthesis result).
		choice := make([]int, nb)
		for k, ba := range blocks {
			best := 0
			for i, cand := range ba.Candidates {
				if cand.Distance < ba.Candidates[best].Distance {
					best = i
				}
			}
			choice[k] = best
		}
		approx, err := assemble(res.Original.NumQubits, blocks, choice)
		if err != nil {
			return err
		}
		res.Selected = append(res.Selected, approx)
	}
	if stopErr != nil {
		return fmt.Errorf("core: select: %w", stopErr)
	}
	return nil
}

// Assemble rebuilds a full-circuit approximation from a per-block
// candidate choice (choice[b] indexes blocks[b].Candidates). It is the
// building block for ablation studies that bypass the dual annealing
// selection (for example random sampling of the approximation space).
func Assemble(numQubits int, blocks []BlockApproximations, choice []int) (Approximation, error) {
	return assemble(numQubits, blocks, choice)
}

// assemble rebuilds a full circuit from a per-block candidate choice.
func assemble(numQubits int, blocks []BlockApproximations, choice []int) (Approximation, error) {
	full := circuit.New(numQubits)
	cnots := 0
	epsSum := 0.0
	for k, ba := range blocks {
		cand := ba.Candidates[choice[k]]
		if err := full.AppendCircuit(cand.Circuit, ba.Block.Qubits); err != nil {
			return Approximation{}, fmt.Errorf("core: assemble block %d: %w", k, err)
		}
		cnots += cand.CNOTs
		epsSum += cand.Distance
	}
	return Approximation{
		Choice:     append([]int(nil), choice...),
		Circuit:    full,
		CNOTs:      cnots,
		EpsilonSum: epsSum,
	}, nil
}
