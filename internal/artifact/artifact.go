// Package artifact reads and writes the on-disk layout of the paper's
// published artifact (Zenodo 5747894): per-block circuit and unitary files
// after partitioning, per-block approximation sets after synthesis, and
// the selected full-circuit solutions after dual annealing. The paper's
// artifact uses .npy for matrices; this reproduction uses JSON, which the
// Go standard library can round-trip losslessly.
//
// Layout under a root directory:
//
//	post_partitioning_files/qasm_block_<id>.qasm
//	post_partitioning_files/qbit_block_<id>.json
//	post_partitioning_files/unit_block_<id>.json
//	post_synthesis_files/block_<id>_candidates.json   (+ QASM per candidate)
//	dual_annealing_solutions/solutions.json
package artifact

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/qasm"
	"repro/internal/sim"
	"repro/internal/synth"
)

// matrixJSON serializes a complex matrix as separate real/imag arrays.
type matrixJSON struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Re   []float64 `json:"re"`
	Im   []float64 `json:"im"`
}

func encodeMatrix(m *linalg.Matrix) matrixJSON {
	out := matrixJSON{Rows: m.Rows, Cols: m.Cols,
		Re: make([]float64, len(m.Data)), Im: make([]float64, len(m.Data))}
	for i, v := range m.Data {
		out.Re[i] = real(v)
		out.Im[i] = imag(v)
	}
	return out
}

func decodeMatrix(j matrixJSON) (*linalg.Matrix, error) {
	if len(j.Re) != j.Rows*j.Cols || len(j.Im) != j.Rows*j.Cols {
		return nil, fmt.Errorf("artifact: matrix data length mismatch")
	}
	m := linalg.New(j.Rows, j.Cols)
	for i := range m.Data {
		m.Data[i] = complex(j.Re[i], j.Im[i])
	}
	return m, nil
}

// candidateJSON is one synthesis candidate on disk.
type candidateJSON struct {
	QASM     string  `json:"qasm"`
	Distance float64 `json:"distance"`
	CNOTs    int     `json:"cnots"`
}

// solutionJSON is one selected full-circuit approximation on disk.
type solutionJSON struct {
	Choice     []int   `json:"choice"`
	CNOTs      int     `json:"cnots"`
	EpsilonSum float64 `json:"epsilon_sum"`
	QASM       string  `json:"qasm"`
}

// solutionsFile is the dual_annealing_solutions payload.
type solutionsFile struct {
	NumQubits int            `json:"num_qubits"`
	Threshold float64        `json:"threshold"`
	Original  string         `json:"original_qasm"`
	Solutions []solutionJSON `json:"solutions"`
}

// Write lays a pipeline result out under root in the artifact structure.
func Write(root string, res *core.Result) error {
	partDir := filepath.Join(root, "post_partitioning_files")
	synthDir := filepath.Join(root, "post_synthesis_files")
	solDir := filepath.Join(root, "dual_annealing_solutions")
	for _, d := range []string{partDir, synthDir, solDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return fmt.Errorf("artifact: %w", err)
		}
	}

	for id, ba := range res.Blocks {
		if err := os.WriteFile(
			filepath.Join(partDir, fmt.Sprintf("qasm_block_%d.qasm", id)),
			[]byte(qasm.Write(ba.Block.Circuit)), 0o644); err != nil {
			return fmt.Errorf("artifact: %w", err)
		}
		if err := writeJSON(filepath.Join(partDir, fmt.Sprintf("qbit_block_%d.json", id)), ba.Block.Qubits); err != nil {
			return err
		}
		if err := writeJSON(filepath.Join(partDir, fmt.Sprintf("unit_block_%d.json", id)), encodeMatrix(ba.Unitary)); err != nil {
			return err
		}
		cands := make([]candidateJSON, len(ba.Candidates))
		for i, cand := range ba.Candidates {
			cands[i] = candidateJSON{
				QASM:     qasm.Write(cand.Circuit),
				Distance: cand.Distance,
				CNOTs:    cand.CNOTs,
			}
		}
		if err := writeJSON(filepath.Join(synthDir, fmt.Sprintf("block_%d_candidates.json", id)), cands); err != nil {
			return err
		}
	}

	sols := solutionsFile{
		NumQubits: res.Original.NumQubits,
		Threshold: res.Threshold,
		Original:  qasm.Write(res.Original),
	}
	for _, a := range res.Selected {
		sols.Solutions = append(sols.Solutions, solutionJSON{
			Choice:     a.Choice,
			CNOTs:      a.CNOTs,
			EpsilonSum: a.EpsilonSum,
			QASM:       qasm.Write(a.Circuit),
		})
	}
	return writeJSON(filepath.Join(solDir, "solutions.json"), sols)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("artifact: marshal %s: %w", path, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	return nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("artifact: parse %s: %w", path, err)
	}
	return nil
}

// Solutions is the loaded dual-annealing output.
type Solutions struct {
	NumQubits int
	Threshold float64
	Original  *circuit.Circuit
	Selected  []core.Approximation
}

// ReadSolutions loads dual_annealing_solutions/solutions.json from root.
func ReadSolutions(root string) (*Solutions, error) {
	var sf solutionsFile
	if err := readJSON(filepath.Join(root, "dual_annealing_solutions", "solutions.json"), &sf); err != nil {
		return nil, err
	}
	orig, err := qasm.Parse(sf.Original)
	if err != nil {
		return nil, fmt.Errorf("artifact: original circuit: %w", err)
	}
	out := &Solutions{NumQubits: sf.NumQubits, Threshold: sf.Threshold, Original: orig}
	for i, s := range sf.Solutions {
		c, err := qasm.Parse(s.QASM)
		if err != nil {
			return nil, fmt.Errorf("artifact: solution %d: %w", i, err)
		}
		out.Selected = append(out.Selected, core.Approximation{
			Choice:     s.Choice,
			Circuit:    c,
			CNOTs:      s.CNOTs,
			EpsilonSum: s.EpsilonSum,
		})
	}
	return out, nil
}

// Block is a loaded partition block.
type Block struct {
	ID      int
	Qubits  []int
	Circuit *circuit.Circuit
	Unitary *linalg.Matrix
}

// ReadBlocks loads the post_partitioning_files directory.
func ReadBlocks(root string) ([]Block, error) {
	dir := filepath.Join(root, "post_partitioning_files")
	var out []Block
	for id := 0; ; id++ {
		qasmPath := filepath.Join(dir, fmt.Sprintf("qasm_block_%d.qasm", id))
		src, err := os.ReadFile(qasmPath)
		if os.IsNotExist(err) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("artifact: %w", err)
		}
		c, err := qasm.Parse(string(src))
		if err != nil {
			return nil, fmt.Errorf("artifact: block %d circuit: %w", id, err)
		}
		var qubits []int
		if err := readJSON(filepath.Join(dir, fmt.Sprintf("qbit_block_%d.json", id)), &qubits); err != nil {
			return nil, err
		}
		var mj matrixJSON
		if err := readJSON(filepath.Join(dir, fmt.Sprintf("unit_block_%d.json", id)), &mj); err != nil {
			return nil, err
		}
		u, err := decodeMatrix(mj)
		if err != nil {
			return nil, err
		}
		out = append(out, Block{ID: id, Qubits: qubits, Circuit: c, Unitary: u})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("artifact: no blocks found under %s", dir)
	}
	return out, nil
}

// ReadCandidates loads one block's synthesis candidates.
func ReadCandidates(root string, blockID int) ([]synth.Candidate, error) {
	var cands []candidateJSON
	path := filepath.Join(root, "post_synthesis_files", fmt.Sprintf("block_%d_candidates.json", blockID))
	if err := readJSON(path, &cands); err != nil {
		return nil, err
	}
	out := make([]synth.Candidate, len(cands))
	for i, cj := range cands {
		c, err := qasm.Parse(cj.QASM)
		if err != nil {
			return nil, fmt.Errorf("artifact: candidate %d: %w", i, err)
		}
		out[i] = synth.Candidate{Circuit: c, Distance: cj.Distance, CNOTs: cj.CNOTs}
	}
	return out, nil
}

// Verify re-checks a stored artifact: every block's QASM matches its
// stored unitary, and every solution's Σε bound holds against the original
// circuit (for circuits small enough to build the unitary).
func Verify(root string) error {
	blocks, err := ReadBlocks(root)
	if err != nil {
		return err
	}
	for _, b := range blocks {
		// The stored unitary was computed from the same QASM, so the
		// comparison is exact elementwise (phase included); elementwise
		// also catches non-unitary corruption that the clamped HS
		// distance would mask.
		u := sim.Unitary(b.Circuit)
		if d := linalg.MaxAbsDiff(u, b.Unitary); d > 1e-9 {
			return fmt.Errorf("artifact: block %d circuit/unitary mismatch (max diff %g)", b.ID, d)
		}
	}
	sols, err := ReadSolutions(root)
	if err != nil {
		return err
	}
	if sols.NumQubits <= 10 {
		orig := sim.Unitary(sols.Original)
		for i, a := range sols.Selected {
			actual := linalg.HSDistance(orig, sim.Unitary(a.Circuit))
			if actual > a.EpsilonSum+1e-6 {
				return fmt.Errorf("artifact: solution %d violates bound (%g > %g)", i, actual, a.EpsilonSum)
			}
		}
	}
	return nil
}
