package artifact

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/linalg"
)

func runPipeline(t *testing.T) *core.Result {
	t.Helper()
	c := algos.TFIM(4, 2, 0.1, 1, 1)
	res, err := core.Run(c, core.Config{
		MaxSamples: 3, AnnealIterations: 120, SynthKeepPerDepth: 3, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteReadRoundTrip(t *testing.T) {
	res := runPipeline(t)
	root := t.TempDir()
	if err := Write(root, res); err != nil {
		t.Fatal(err)
	}

	// Directory structure matches the paper's artifact.
	for _, d := range []string{"post_partitioning_files", "post_synthesis_files", "dual_annealing_solutions"} {
		if _, err := os.Stat(filepath.Join(root, d)); err != nil {
			t.Fatalf("missing artifact directory %s", d)
		}
	}

	blocks, err := ReadBlocks(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != len(res.Blocks) {
		t.Fatalf("round trip lost blocks: %d vs %d", len(blocks), len(res.Blocks))
	}
	for i, b := range blocks {
		want := res.Blocks[i]
		if !linalg.EqualApprox(b.Unitary, want.Unitary, 1e-12) {
			t.Errorf("block %d unitary changed in round trip", i)
		}
		if len(b.Qubits) != len(want.Block.Qubits) {
			t.Errorf("block %d qubits changed", i)
		}
	}

	cands, err := ReadCandidates(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(res.Blocks[0].Candidates) {
		t.Errorf("candidates lost: %d vs %d", len(cands), len(res.Blocks[0].Candidates))
	}
	for i, cand := range cands {
		want := res.Blocks[0].Candidates[i]
		if cand.CNOTs != want.CNOTs || cand.Distance != want.Distance {
			t.Errorf("candidate %d metadata changed", i)
		}
	}

	sols, err := ReadSolutions(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols.Selected) != len(res.Selected) {
		t.Fatalf("solutions lost: %d vs %d", len(sols.Selected), len(res.Selected))
	}
	for i, s := range sols.Selected {
		if s.CNOTs != res.Selected[i].CNOTs {
			t.Errorf("solution %d CNOTs changed", i)
		}
	}
}

func TestVerifyAcceptsValidArtifact(t *testing.T) {
	res := runPipeline(t)
	root := t.TempDir()
	if err := Write(root, res); err != nil {
		t.Fatal(err)
	}
	if err := Verify(root); err != nil {
		t.Errorf("Verify rejected a valid artifact: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	res := runPipeline(t)
	root := t.TempDir()
	if err := Write(root, res); err != nil {
		t.Fatal(err)
	}
	// Corrupt block 0's unitary.
	path := filepath.Join(root, "post_partitioning_files", "unit_block_0.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := []byte(string(data))
	// Flip the first numeric digit we find after "re".
	for i := 0; i < len(corrupted)-1; i++ {
		if corrupted[i] == '0' && corrupted[i+1] == '.' {
			corrupted[i] = '9'
			break
		}
	}
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Verify(root); err == nil {
		t.Error("Verify accepted a corrupted artifact")
	}
}

func TestReadMissingArtifact(t *testing.T) {
	if _, err := ReadBlocks(t.TempDir()); err == nil {
		t.Error("ReadBlocks succeeded on empty directory")
	}
	if _, err := ReadSolutions(t.TempDir()); err == nil {
		t.Error("ReadSolutions succeeded on empty directory")
	}
}
