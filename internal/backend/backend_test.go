package backend

import (
	"context"
	"math"
	"testing"

	"repro/internal/algos"
	"repro/internal/noise"
	"repro/internal/sim"
)

func TestRegistrySpecs(t *testing.T) {
	names := Names()
	want := map[string]bool{"ideal": false, "noisy": false, "manila": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("registry missing %q (have %v)", n, names)
		}
	}

	cases := []struct {
		spec   string
		name   string
		noisy  bool
		routed bool
	}{
		{"ideal", "ideal", false, false},
		{"noisy", "noisy:0.01", true, false},
		{"noisy:0.005", "noisy:0.005", true, false},
		{"manila", "manila-sim", true, true},
	}
	for _, tc := range cases {
		b, err := Get(tc.spec)
		if err != nil {
			t.Fatalf("Get(%q): %v", tc.spec, err)
		}
		if b.Name() != tc.name {
			t.Errorf("Get(%q).Name() = %q, want %q", tc.spec, b.Name(), tc.name)
		}
		caps := b.Capabilities()
		if caps.Noisy != tc.noisy || caps.Routed != tc.routed {
			t.Errorf("Get(%q) caps = %+v, want noisy=%v routed=%v", tc.spec, caps, tc.noisy, tc.routed)
		}
	}

	for _, bad := range []string{"", "nope", "noisy:x", "noisy:1.5", "ideal:3", "manila:a"} {
		if _, err := Get(bad); err == nil {
			t.Errorf("Get(%q): want error, got nil", bad)
		}
	}
}

func TestIdealBackendMatchesSimulator(t *testing.T) {
	c, err := algos.Generate("tfim", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get("ideal")
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.RunCtx(context.Background(), c, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Probabilities(c)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("prob[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNoisyBackendMatchesModel(t *testing.T) {
	c, err := algos.Generate("qft", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get("noisy:0.02")
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.RunCtx(context.Background(), c, 512, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := noise.Uniform(0.02).Run(c, noise.Options{Shots: 512, Seed: 11})
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("prob[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDeviceBackendCapabilities(t *testing.T) {
	b := FromDevice(noise.Manila())
	if got := b.Capabilities().MaxQubits; got != 5 {
		t.Errorf("manila MaxQubits = %d, want 5", got)
	}
	c, err := algos.Generate("tfim", 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.RunCtx(context.Background(), c, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
}

func TestAsRunnerAdapters(t *testing.T) {
	c, err := algos.Generate("tfim", 3)
	if err != nil {
		t.Fatal(err)
	}
	b := Ideal()
	r := AsRunner(b, 0, 0)
	p1, err := r(c)
	if err != nil {
		t.Fatal(err)
	}
	rc := AsRunnerCtx(b, 0, 0)
	p2, err := rc(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if math.Float64bits(p1[i]) != math.Float64bits(p2[i]) {
			t.Fatalf("runner adapters disagree at %d", i)
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rc(cancelled, c); err == nil {
		t.Error("ideal backend ignored cancelled context")
	}
}
