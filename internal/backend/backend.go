// Package backend unifies circuit execution behind one interface. The
// pipeline produces approximate circuits; something has to run them — the
// ideal statevector simulator, the stochastic Pauli noise simulator, or a
// routed device model. Before this package each caller wired its own
// closure over sim/noise; a Backend names the target, declares its
// capabilities, and runs circuits under a context, and the registry lets
// CLIs select one by spec string (`-backend ideal|noisy[:p]|manila`).
package backend

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/circuit"
	"repro/internal/fidelity"
	"repro/internal/noise"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// SimMaxQubits is the qubit cap declared by the non-routed simulator
// backends (ideal, noisy): a 2^26-amplitude statevector is ~1 GiB, the
// practical ceiling of the dense engines. Device-model backends declare
// their coupling map's size instead. Every built-in backend therefore
// reports a non-zero MaxQubits, so capability checks never have to
// special-case "unbounded".
const SimMaxQubits = 26

// Capabilities describes what a backend can execute and how.
type Capabilities struct {
	// MaxQubits is the largest circuit the backend accepts; 0 means
	// bounded only by simulator memory (no built-in backend reports 0,
	// see SimMaxQubits).
	MaxQubits int
	// Noisy reports whether outputs include stochastic gate/readout
	// errors.
	Noisy bool
	// Routed reports whether circuits are routed onto a coupling map
	// (i.e. the backend models hardware connectivity, not all-to-all).
	Routed bool
	// NoiseProfile is the backend's per-gate-class error model, the
	// input to the predicted-fidelity selection objective. The zero
	// profile is a meaningful value (an error-free device), so it is
	// paired with the NoiseProfileSet sentinel: consult the profile only
	// when NoiseProfileSet is true.
	NoiseProfile fidelity.Profile
	// NoiseProfileSet marks NoiseProfile as populated. Every built-in
	// backend sets it; third-party Backend implementations may not.
	NoiseProfileSet bool
}

// Backend executes circuits and returns output probability distributions.
// Implementations must be safe for concurrent RunCtx calls: the ensemble
// averager fans circuits out across workers.
type Backend interface {
	// Name is the registry identity (e.g. "ideal", "noisy", "manila").
	Name() string
	// Capabilities describes the backend's execution model.
	Capabilities() Capabilities
	// RunCtx executes the circuit with the given shot and seed settings
	// and returns its output distribution. shots <= 0 requests exact
	// (infinite-shot) probabilities where the backend supports them.
	RunCtx(ctx context.Context, c *circuit.Circuit, shots int, seed int64) ([]float64, error)
}

// funcBackend adapts a name, capabilities and a run function.
type funcBackend struct {
	name string
	caps Capabilities
	run  func(ctx context.Context, c *circuit.Circuit, shots int, seed int64) ([]float64, error)
}

func (b *funcBackend) Name() string               { return b.name }
func (b *funcBackend) Capabilities() Capabilities { return b.caps }
func (b *funcBackend) RunCtx(ctx context.Context, c *circuit.Circuit, shots int, seed int64) ([]float64, error) {
	return b.run(ctx, c, shots, seed)
}

// Ideal returns the noiseless statevector backend. Shots and seed are
// ignored: the output is the exact distribution.
func Ideal() Backend {
	return &funcBackend{
		name: "ideal",
		caps: Capabilities{MaxQubits: SimMaxQubits, NoiseProfileSet: true},
		run: func(ctx context.Context, c *circuit.Circuit, _ int, _ int64) ([]float64, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return sim.Probabilities(c), nil
		},
	}
}

// Noisy returns a backend over the paper's uniform Pauli noise model at
// level p (two-qubit error p, one-qubit error p/10, readout error p).
func Noisy(p float64) Backend {
	return FromModel(fmt.Sprintf("noisy:%g", p), noise.Uniform(p))
}

// FromModel wraps an arbitrary noise model as a backend.
func FromModel(name string, m noise.Model) Backend {
	return &funcBackend{
		name: name,
		caps: Capabilities{
			MaxQubits:       SimMaxQubits,
			Noisy:           !m.IsZero(),
			NoiseProfile:    fidelity.FromNoiseModel(m),
			NoiseProfileSet: true,
		},
		run: func(ctx context.Context, c *circuit.Circuit, shots int, seed int64) ([]float64, error) {
			return m.RunCtx(ctx, c, noise.Options{Shots: shots, Seed: seed})
		},
	}
}

// FromDevice wraps a device model (noise + coupling constraints) as a
// backend; circuits are routed onto the device before execution and the
// output is reported in logical qubit order.
func FromDevice(d *noise.Device) Backend {
	caps := Capabilities{
		Noisy:           !d.Model.IsZero(),
		Routed:          true,
		NoiseProfile:    fidelity.FromNoiseModel(d.Model),
		NoiseProfileSet: true,
	}
	caps.MaxQubits = SimMaxQubits
	if d.Coupling != nil {
		caps.MaxQubits = d.Coupling.NumQubits
	}
	return &funcBackend{
		name: d.Name,
		caps: caps,
		run: func(ctx context.Context, c *circuit.Circuit, shots int, seed int64) ([]float64, error) {
			return d.RunCtx(ctx, c, noise.Options{Shots: shots, Seed: seed})
		},
	}
}

// AsRunner adapts a backend to the pipeline.Runner signature used by
// Result.EnsembleProbabilities, fixing shots and seed.
func AsRunner(b Backend, shots int, seed int64) pipeline.Runner {
	return func(c *circuit.Circuit) ([]float64, error) {
		return b.RunCtx(context.Background(), c, shots, seed)
	}
}

// AsRunnerCtx adapts a backend to the context-aware pipeline.RunnerCtx
// used by Result.EnsembleProbabilitiesCtx.
func AsRunnerCtx(b Backend, shots int, seed int64) pipeline.RunnerCtx {
	return func(ctx context.Context, c *circuit.Circuit) ([]float64, error) {
		return b.RunCtx(ctx, c, shots, seed)
	}
}

// The registry maps backend names to constructors. A constructor receives
// the parameter portion of the spec ("" when absent): Get("noisy:0.005")
// invokes the "noisy" constructor with arg "0.005".
var (
	regMu    sync.RWMutex
	registry = map[string]func(arg string) (Backend, error){}
)

// Register installs a backend constructor under a name. Registering a
// name twice panics: backend identity must be unambiguous.
func Register(name string, ctor func(arg string) (Backend, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || strings.Contains(name, ":") {
		panic(fmt.Sprintf("backend: invalid registry name %q", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry[name] = ctor
}

// Names lists the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get resolves a backend spec of the form "name" or "name:arg", e.g.
// "ideal", "noisy" (default error level), "noisy:0.005", "manila".
func Get(spec string) (Backend, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	regMu.RLock()
	ctor, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (have %s)", name, strings.Join(Names(), ", "))
	}
	b, err := ctor(arg)
	if err != nil {
		return nil, fmt.Errorf("backend: %s: %w", name, err)
	}
	return b, nil
}

// DefaultNoiseLevel is the error level of the bare "noisy" spec: the
// paper's headline p = 1% two-qubit error point.
const DefaultNoiseLevel = 0.01

func init() {
	Register("ideal", func(arg string) (Backend, error) {
		if arg != "" {
			return nil, fmt.Errorf("takes no parameter, got %q", arg)
		}
		return Ideal(), nil
	})
	Register("noisy", func(arg string) (Backend, error) {
		p := DefaultNoiseLevel
		if arg != "" {
			var err error
			p, err = strconv.ParseFloat(arg, 64)
			if err != nil || p < 0 || p >= 1 {
				return nil, fmt.Errorf("bad error level %q (want a float in [0,1))", arg)
			}
		}
		return Noisy(p), nil
	})
	Register("manila", func(arg string) (Backend, error) {
		if arg != "" {
			return nil, fmt.Errorf("takes no parameter, got %q", arg)
		}
		return FromDevice(noise.Manila()), nil
	})
}
