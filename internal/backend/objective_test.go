package backend

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fidelity"
	"repro/internal/noise"
	"repro/internal/pipeline"
)

// TestBuiltinCapabilitiesAreComplete: every registered built-in backend
// must declare a non-zero MaxQubits and a populated noise profile — the
// Capabilities gaps this refactor closed.
func TestBuiltinCapabilitiesAreComplete(t *testing.T) {
	for _, name := range Names() {
		b, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		caps := b.Capabilities()
		if caps.MaxQubits <= 0 {
			t.Errorf("%s: MaxQubits = %d, want > 0", name, caps.MaxQubits)
		}
		if !caps.NoiseProfileSet {
			t.Errorf("%s: NoiseProfileSet = false", name)
		}
		if caps.Noisy == caps.NoiseProfile.IsZero() {
			t.Errorf("%s: Noisy = %v but profile IsZero = %v", name, caps.Noisy, caps.NoiseProfile.IsZero())
		}
	}
}

func TestCapabilityProfileValues(t *testing.T) {
	ideal, _ := Get("ideal")
	if caps := ideal.Capabilities(); !caps.NoiseProfile.IsZero() || caps.MaxQubits != SimMaxQubits {
		t.Errorf("ideal caps = %+v, want zero profile and MaxQubits %d", caps, SimMaxQubits)
	}
	manila, _ := Get("manila")
	want := fidelity.FromNoiseModel(noise.Manila().Model)
	if got := manila.Capabilities().NoiseProfile; got != want {
		t.Errorf("manila profile = %+v, want %+v", got, want)
	}
	noisy, _ := Get("noisy:0.02")
	if got := noisy.Capabilities().NoiseProfile; got != fidelity.FromNoiseModel(noise.Uniform(0.02)) {
		t.Errorf("noisy:0.02 profile = %+v", got)
	}
}

// TestUnknownBackendErrorListsNames: a typoed -backend spec must name the
// registered alternatives.
func TestUnknownBackendErrorListsNames(t *testing.T) {
	_, err := Get("maniila")
	if err == nil {
		t.Fatal("want error")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered backend %q", err, name)
		}
	}
}

func TestObjectiveSpecParsing(t *testing.T) {
	cases := []struct {
		spec string
		want string // canonical Spec(), "" when an error is expected
	}{
		{"", "cnot"},
		{"cnot", "cnot"},
		{"fidelity", "fidelity:manila"},
		{"fidelity:manila", "fidelity:manila"},
		{"fidelity:noisy:0.02", "fidelity:noisy:0.02"},
		{"fidelity:ideal", "fidelity:ideal"},
		{"hybrid:0.5", "hybrid:0.5:manila"},
		{"hybrid:0.50", "hybrid:0.5:manila"},
		{"hybrid:1:noisy", "hybrid:1:noisy"},
		{"cnot:x", ""},
		{"fidelity:nope", ""},
		{"hybrid", ""},
		{"hybrid:2", ""},
		{"hybrid:x:manila", ""},
		{"espresso", ""},
	}
	for _, tc := range cases {
		obj, err := Objective(tc.spec)
		if tc.want == "" {
			if err == nil {
				t.Errorf("Objective(%q) = %q, want error", tc.spec, obj.Spec())
			}
			continue
		}
		if err != nil {
			t.Errorf("Objective(%q): %v", tc.spec, err)
			continue
		}
		if obj.Spec() != tc.want {
			t.Errorf("Objective(%q).Spec() = %q, want %q", tc.spec, obj.Spec(), tc.want)
		}
	}
}

// TestObjectiveCanonicalizationUnifiesKeys: two spellings of the same
// objective must produce identical Spec() strings, because the spec
// enters selection-artifact fingerprints.
func TestObjectiveCanonicalizationUnifiesKeys(t *testing.T) {
	a, err := Objective("fidelity")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Objective("fidelity:manila")
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec() != b.Spec() {
		t.Errorf("specs %q vs %q", a.Spec(), b.Spec())
	}
}

// TestFidelityObjectiveCostMatchesProfile: the resolved objective must
// score with exactly the backend's declared profile.
func TestFidelityObjectiveCostMatchesProfile(t *testing.T) {
	obj, err := Objective("fidelity:manila")
	if err != nil {
		t.Fatal(err)
	}
	p := fidelity.FromNoiseModel(noise.Manila().Model)
	st := pipeline.ChoiceStats{CNOTs: 15, Gates1Q: 30, EpsSum: 0.08}
	info := pipeline.CircuitInfo{NumQubits: 4, OrigCNOTs: 24}
	dev := p.Estimate(fidelity.Counts{OneQubit: 30, TwoQubit: 15, Measured: 4})
	want := 1 - dev*(1-0.08)
	if got := obj.Cost(st, info); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	// The ideal profile yields pure approximation-error cost.
	idealObj, err := Objective("fidelity:ideal")
	if err != nil {
		t.Fatal(err)
	}
	if got := idealObj.Cost(st, info); math.Abs(got-0.08) > 1e-12 {
		t.Errorf("ideal-profile Cost = %v, want 0.08", got)
	}
}
