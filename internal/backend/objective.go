package backend

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fidelity"
	"repro/internal/pipeline"
)

// DefaultFidelityBackend is the device profile the bare "fidelity" and
// "hybrid:<w>" objective specs resolve against: the synthetic Manila
// device, the repository's hardware stand-in.
const DefaultFidelityBackend = "manila"

// Objective resolves a selection-objective spec to the pipeline objective
// it names. Accepted forms:
//
//	"" | "cnot"              the paper's normalized-CNOT-count objective
//	"fidelity[:<backend>]"   predicted device fidelity under the named
//	                         backend's noise profile (default "manila");
//	                         <backend> is any registry spec, so
//	                         "fidelity:noisy:0.02" works
//	"hybrid:<w>[:<backend>]" w·cnot + (1−w)·fidelity with w in [0,1]
//
// The returned objective's Spec() is canonicalized (default backend and
// weight made explicit), so two specs naming the same objective
// fingerprint selection artifacts identically.
func Objective(spec string) (pipeline.Objective, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	switch name {
	case "", "cnot":
		if arg != "" {
			return nil, fmt.Errorf("backend: objective %q: cnot takes no parameter", spec)
		}
		return pipeline.CNOTObjective(), nil
	case "fidelity":
		if arg == "" {
			arg = DefaultFidelityBackend
		}
		profile, err := noiseProfile(arg)
		if err != nil {
			return nil, fmt.Errorf("backend: objective %q: %w", spec, err)
		}
		return pipeline.FidelityObjective("fidelity:"+arg, profile)
	case "hybrid":
		wStr, backendSpec := arg, DefaultFidelityBackend
		if i := strings.IndexByte(arg, ':'); i >= 0 {
			wStr, backendSpec = arg[:i], arg[i+1:]
		}
		w, err := strconv.ParseFloat(wStr, 64)
		if err != nil || w < 0 || w > 1 {
			return nil, fmt.Errorf("backend: objective %q: bad weight %q (want a float in [0,1])", spec, wStr)
		}
		profile, err := noiseProfile(backendSpec)
		if err != nil {
			return nil, fmt.Errorf("backend: objective %q: %w", spec, err)
		}
		canonical := fmt.Sprintf("hybrid:%g:%s", w, backendSpec)
		return pipeline.HybridObjective(canonical, w, profile)
	default:
		return nil, fmt.Errorf("backend: unknown objective %q (want cnot, fidelity[:<backend>] or hybrid:<w>[:<backend>])", spec)
	}
}

// noiseProfile resolves a backend spec and returns its declared noise
// profile, rejecting backends that do not publish one.
func noiseProfile(spec string) (fidelity.Profile, error) {
	b, err := Get(spec)
	if err != nil {
		return fidelity.Profile{}, err
	}
	caps := b.Capabilities()
	if !caps.NoiseProfileSet {
		return fidelity.Profile{}, fmt.Errorf("backend %q declares no noise profile", spec)
	}
	return caps.NoiseProfile, nil
}
