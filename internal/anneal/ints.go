package anneal

import (
	"context"
	"math"
)

// IntObjective is an objective over an integer lattice point. The slice
// passed to the callback is reused between evaluations and must not be
// retained.
type IntObjective func(choice []int) float64

// IntResult is the outcome of MinimizeIntsCtx.
type IntResult struct {
	// X is the best lattice point found (X[k] in [0, sizes[k])).
	X []int
	// F is the objective value at X.
	F float64
	// Iterations and Evaluations mirror opt.Result.
	Iterations  int
	Evaluations int
	// Converged reports whether the search ran to completion (false when
	// the context budget expired mid-search).
	Converged bool
}

// MinimizeIntsCtx searches for the minimum of f over the integer lattice
// {0..sizes[0]-1} × ... × {0..sizes[d-1]-1} by relaxing each dimension to
// the continuous interval [0, sizes[k]) and flooring — the discrete
// search QUEST's Algorithm 1 runs over per-block candidate indices. The
// continuous engine underneath is MinimizeCtx, unchanged: for a fixed
// (f, sizes, Options) the visited float points, RNG stream and therefore
// the returned lattice point are bit-identical to driving MinimizeCtx by
// hand with the same floor/clamp mapping.
func MinimizeIntsCtx(ctx context.Context, f IntObjective, sizes []int, o Options) (IntResult, error) {
	d := len(sizes)
	lower := make([]float64, d)
	upper := make([]float64, d)
	for k, n := range sizes {
		if n <= 0 {
			panic("anneal: empty lattice dimension")
		}
		upper[k] = float64(n)
	}
	choice := make([]int, d)
	wrapped := func(x []float64) float64 {
		floorClamp(x, sizes, choice)
		return f(choice)
	}
	res, err := MinimizeCtx(ctx, wrapped, lower, upper, o)
	out := IntResult{
		X:           make([]int, d),
		F:           res.F,
		Iterations:  res.Iterations,
		Evaluations: res.Evaluations,
		Converged:   res.Converged,
	}
	floorClamp(res.X, sizes, out.X)
	return out, err
}

// floorClamp maps a continuous point into the lattice: floor each
// coordinate and clamp into [0, sizes[k]-1] (the upper bound itself is
// reachable because the box is closed at sizes[k]).
func floorClamp(x []float64, sizes []int, dst []int) {
	for k, v := range x {
		i := int(math.Floor(v))
		if i >= sizes[k] {
			i = sizes[k] - 1
		}
		if i < 0 {
			i = 0
		}
		dst[k] = i
	}
}
