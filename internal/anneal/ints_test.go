package anneal

import (
	"context"
	"math"
	"testing"
)

// TestMinimizeIntsMatchesFloatMapping pins the refactor contract: for the
// same seed and budget, MinimizeIntsCtx must visit exactly the points the
// historical caller pattern visited (MinimizeCtx over [0,n) boxes with a
// floor/clamp mapping applied to every evaluation and to the result).
func TestMinimizeIntsMatchesFloatMapping(t *testing.T) {
	sizes := []int{5, 3, 7, 2}
	score := func(choice []int) float64 {
		s := 0.0
		for k, v := range choice {
			d := float64(v) - float64(sizes[k]-1)/2
			s += d * d * float64(k+1)
		}
		return math.Sin(s) + s/10
	}
	opts := Options{MaxIterations: 300, Seed: 42}

	gotInt, err := MinimizeIntsCtx(context.Background(), score, sizes, opts)
	if err != nil {
		t.Fatal(err)
	}

	lower := make([]float64, len(sizes))
	upper := make([]float64, len(sizes))
	for k, n := range sizes {
		upper[k] = float64(n)
	}
	toChoice := func(x []float64) []int {
		choice := make([]int, len(x))
		floorClamp(x, sizes, choice)
		return choice
	}
	var wantEvals int
	ref, err := MinimizeCtx(context.Background(), func(x []float64) float64 {
		wantEvals++
		return score(toChoice(x))
	}, lower, upper, opts)
	if err != nil {
		t.Fatal(err)
	}

	wantX := toChoice(ref.X)
	for k := range wantX {
		if gotInt.X[k] != wantX[k] {
			t.Fatalf("X = %v, want %v", gotInt.X, wantX)
		}
	}
	if gotInt.F != ref.F {
		t.Errorf("F = %v, want %v (must be bit-identical)", gotInt.F, ref.F)
	}
	if gotInt.Evaluations != wantEvals {
		t.Errorf("Evaluations = %d, want %d", gotInt.Evaluations, wantEvals)
	}
	if !gotInt.Converged {
		t.Error("Converged = false, want true")
	}
}

func TestMinimizeIntsFindsLatticeMinimum(t *testing.T) {
	// Separable convex bowl with the minimum at a known lattice point.
	target := []int{3, 0, 6}
	sizes := []int{5, 4, 8}
	f := func(choice []int) float64 {
		s := 0.0
		for k, v := range choice {
			d := float64(v - target[k])
			s += d * d
		}
		return s
	}
	res, err := MinimizeIntsCtx(context.Background(), f, sizes, Options{MaxIterations: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.F != 0 {
		t.Fatalf("F = %v at %v, want exact minimum at %v", res.F, res.X, target)
	}
}

func TestMinimizeIntsHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MinimizeIntsCtx(ctx, func(choice []int) float64 { return float64(choice[0]) }, []int{4}, Options{MaxIterations: 100, Seed: 1, NoLocalSearch: true})
	if err == nil {
		t.Fatal("want budget error from cancelled context")
	}
	if res.Converged {
		t.Error("Converged = true under cancellation")
	}
}

func TestMinimizeIntsRejectsEmptyDimension(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on empty lattice dimension")
		}
	}()
	_, _ = MinimizeIntsCtx(context.Background(), func([]int) float64 { return 0 }, []int{3, 0}, Options{})
}
