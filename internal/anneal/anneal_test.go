package anneal

import (
	"math"
	"testing"
)

// rastrigin is a classic multimodal test function; global minimum 0 at 0.
func rastrigin(x []float64) float64 {
	s := 10 * float64(len(x))
	for _, v := range x {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return s
}

func TestMinimizeQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + (x[1]+2)*(x[1]+2)
	}
	res := Minimize(f, []float64{-5, -5}, []float64{5, 5}, Options{Seed: 1})
	if res.F > 1e-6 {
		t.Errorf("quadratic F = %g X = %v", res.F, res.X)
	}
}

func TestMinimizeRastrigin2D(t *testing.T) {
	res := Minimize(rastrigin, []float64{-5.12, -5.12}, []float64{5.12, 5.12},
		Options{Seed: 3, MaxIterations: 2000})
	if res.F > 1e-4 {
		t.Errorf("rastrigin F = %g X = %v", res.F, res.X)
	}
}

func TestMinimizeRastrigin4DNoLocal(t *testing.T) {
	// Without local search the annealer alone should still get close to
	// a good basin.
	lo := []float64{-5.12, -5.12, -5.12, -5.12}
	hi := []float64{5.12, 5.12, 5.12, 5.12}
	res := Minimize(rastrigin, lo, hi, Options{Seed: 5, MaxIterations: 4000, NoLocalSearch: true})
	if res.F > 5 {
		t.Errorf("rastrigin-4d (no local) F = %g", res.F)
	}
}

func TestMinimizeRespectsBounds(t *testing.T) {
	seen := true
	f := func(x []float64) float64 {
		for _, v := range x {
			if v < -1-1e-12 || v > 2+1e-12 {
				seen = false
			}
		}
		return x[0] * x[0]
	}
	res := Minimize(f, []float64{-1, -1}, []float64{2, 2}, Options{Seed: 7, MaxIterations: 500})
	if !seen {
		t.Error("objective evaluated out of bounds")
	}
	for _, v := range res.X {
		if v < -1-1e-9 || v > 2+1e-9 {
			t.Errorf("result out of bounds: %v", res.X)
		}
	}
}

func TestMinimizeDeterministic(t *testing.T) {
	r1 := Minimize(rastrigin, []float64{-5, -5}, []float64{5, 5}, Options{Seed: 11, MaxIterations: 300})
	r2 := Minimize(rastrigin, []float64{-5, -5}, []float64{5, 5}, Options{Seed: 11, MaxIterations: 300})
	if r1.F != r2.F {
		t.Errorf("not deterministic: %g vs %g", r1.F, r2.F)
	}
}

func TestMinimizeDiscreteMapping(t *testing.T) {
	// The QUEST use case: continuous coordinates mapped to discrete
	// approximation indices. Global minimum at indices (3, 1).
	table := [][]float64{
		{5, 4, 6, 7},
		{3, 2, 4, 5},
		{4, 3, 5, 6},
		{2, 0.5, 3, 4},
	}
	f := func(x []float64) float64 {
		i := int(math.Min(3, math.Floor(x[0])))
		j := int(math.Min(3, math.Floor(x[1])))
		return table[i][j]
	}
	res := Minimize(f, []float64{0, 0}, []float64{4, 4}, Options{Seed: 13, MaxIterations: 800})
	if res.F != 0.5 {
		t.Errorf("discrete mapping F = %g, want 0.5", res.F)
	}
}

func TestMinimizeDegenerateBounds(t *testing.T) {
	// One dimension pinned: lower == upper.
	f := func(x []float64) float64 { return x[0]*x[0] + (x[1]-3)*(x[1]-3) }
	res := Minimize(f, []float64{2, -5}, []float64{2, 5}, Options{Seed: 17, MaxIterations: 300})
	if math.Abs(res.X[0]-2) > 1e-12 {
		t.Errorf("pinned dimension moved: %v", res.X)
	}
	if math.Abs(res.X[1]-3) > 1e-2 {
		t.Errorf("free dimension not optimized: %v", res.X)
	}
}

func TestMinimizePanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for inverted bounds")
		}
	}()
	Minimize(rastrigin, []float64{1}, []float64{0}, Options{})
}

func TestVisitStepFinite(t *testing.T) {
	res := Minimize(func(x []float64) float64 { return x[0] * x[0] },
		[]float64{-1e6}, []float64{1e6}, Options{Seed: 19, MaxIterations: 2000})
	if math.IsNaN(res.F) || math.IsInf(res.F, 0) {
		t.Error("annealer produced non-finite objective")
	}
}
