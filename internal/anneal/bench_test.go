package anneal

import "testing"

func BenchmarkMinimizeRastrigin4D(b *testing.B) {
	lo := []float64{-5.12, -5.12, -5.12, -5.12}
	hi := []float64{5.12, 5.12, 5.12, 5.12}
	for i := 0; i < b.N; i++ {
		Minimize(rastrigin, lo, hi, Options{Seed: int64(i + 1), MaxIterations: 500})
	}
}
