// Package anneal implements the dual annealing global minimizer QUEST uses
// to search the block-approximation selection space (Sec. 3.6): classical
// generalized simulated annealing (GSA) with the Tsallis heavy-tailed
// visiting distribution, a generalized Metropolis acceptance rule, periodic
// reannealing restarts, and an optional Nelder-Mead local-search phase —
// the "dual" in dual annealing.
package anneal

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/budget"
	"repro/internal/opt"
)

// Options configures Minimize. The zero value selects defaults matching
// SciPy's dual_annealing.
type Options struct {
	// MaxIterations is the number of annealing iterations (default 1000).
	MaxIterations int
	// InitialTemp is the starting visiting temperature (default 5230).
	InitialTemp float64
	// RestartTempRatio triggers a reannealing restart when the
	// temperature falls below InitialTemp·ratio (default 2e-5).
	RestartTempRatio float64
	// Visit is the Tsallis visiting parameter q_v in (1, 3] (default 2.62).
	Visit float64
	// Accept is the acceptance parameter q_a (default -5).
	Accept float64
	// Seed makes the search deterministic (default 1).
	Seed int64
	// NoLocalSearch disables the Nelder-Mead refinement phase.
	NoLocalSearch bool
}

func (o *Options) defaults() {
	if o.MaxIterations == 0 {
		o.MaxIterations = 1000
	}
	if o.InitialTemp == 0 {
		o.InitialTemp = 5230
	}
	if o.RestartTempRatio == 0 {
		o.RestartTempRatio = 2e-5
	}
	if o.Visit == 0 {
		o.Visit = 2.62
	}
	if o.Accept == 0 {
		o.Accept = -5.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Minimize searches for the global minimum of f over the box
// [lower[i], upper[i]]^d and returns the best point found.
func Minimize(f opt.Objective, lower, upper []float64, o Options) opt.Result {
	res, _ := MinimizeCtx(context.Background(), f, lower, upper, o)
	return res
}

// MinimizeCtx is Minimize under a context: cancellation is checked at
// every annealing iteration and inside the local-search phase. When ctx
// expires the best point found so far is returned together with the
// typed budget error, so callers can still use the partial optimum.
// Malformed bounds panic exactly as in Minimize (programmer error, not
// input error).
func MinimizeCtx(ctx context.Context, f opt.Objective, lower, upper []float64, o Options) (opt.Result, error) {
	if len(lower) != len(upper) {
		panic("anneal: bound length mismatch")
	}
	for i := range lower {
		if lower[i] > upper[i] {
			panic("anneal: lower > upper")
		}
	}
	o.defaults()
	d := len(lower)
	rng := rand.New(rand.NewSource(o.Seed))
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	randomPoint := func() []float64 {
		x := make([]float64, d)
		for i := range x {
			x[i] = lower[i] + rng.Float64()*(upper[i]-lower[i])
		}
		return x
	}

	cur := randomPoint()
	fCur := eval(cur)
	best := append([]float64(nil), cur...)
	fBest := fCur
	qv := o.Visit
	tq := math.Exp2(qv-1) - 1 // t-dependence constant

	cand := make([]float64, d)
	iterations := 0
	sinceRestart := 0
	var stopErr error
	for it := 0; it < o.MaxIterations; it++ {
		if stopErr = budget.Check(ctx); stopErr != nil {
			break
		}
		iterations++
		sinceRestart++
		temp := o.InitialTemp * tq / (math.Pow(float64(sinceRestart)+1, qv-1) - 1)
		if temp < o.InitialTemp*o.RestartTempRatio {
			// Reannealing restart from a fresh random point.
			cur = randomPoint()
			fCur = eval(cur)
			sinceRestart = 0
			continue
		}

		// Visiting step: perturb every dimension with a Tsallis-
		// distributed jump, wrapped into the bounds.
		for i := 0; i < d; i++ {
			span := upper[i] - lower[i]
			if span == 0 {
				cand[i] = lower[i]
				continue
			}
			step := visitStep(qv, temp, rng)
			v := cur[i] + step
			// Wrap into [lower, upper] (as SciPy does).
			v = math.Mod(v-lower[i], span)
			if v < 0 {
				v += span
			}
			cand[i] = lower[i] + v
		}
		fCand := eval(cand)

		accept := false
		if fCand <= fCur {
			accept = true
		} else {
			// Generalized Metropolis rule with parameter q_a < 1.
			base := 1 - (1-o.Accept)*(fCand-fCur)/temp
			if base > 0 {
				p := math.Pow(base, 1/(1-o.Accept))
				accept = rng.Float64() < p
			}
		}
		if accept {
			copy(cur, cand)
			fCur = fCand
			if fCur < fBest {
				fBest = fCur
				copy(best, cur)
				if !o.NoLocalSearch {
					// Dual phase: refine the new incumbent locally.
					res, lsErr := localSearch(ctx, eval, best, lower, upper)
					if res.F < fBest {
						fBest = res.F
						copy(best, res.X)
					}
					if lsErr != nil {
						stopErr = lsErr
						break
					}
				}
			}
		}
	}
	if !o.NoLocalSearch && stopErr == nil {
		res, lsErr := localSearch(ctx, eval, best, lower, upper)
		if res.F < fBest {
			fBest = res.F
			copy(best, res.X)
		}
		stopErr = lsErr
	}
	out := opt.Result{X: best, F: fBest, Iterations: iterations, Evaluations: evals, Converged: stopErr == nil}
	return out, stopErr
}

// localSearch runs a bound-clamped Nelder-Mead from x0.
func localSearch(ctx context.Context, f opt.Objective, x0, lower, upper []float64) (opt.Result, error) {
	clamped := func(x []float64) float64 {
		y := make([]float64, len(x))
		for i := range x {
			y[i] = math.Max(lower[i], math.Min(upper[i], x[i]))
		}
		return f(y)
	}
	res, err := nelderMeadStepScaledCtx(ctx, clamped, x0, lower, upper)
	for i := range res.X {
		res.X[i] = math.Max(lower[i], math.Min(upper[i], res.X[i]))
	}
	return res, err
}

// NelderMeadStepScaled runs Nelder-Mead with the initial simplex scaled to
// a fraction of each dimension's range.
func NelderMeadStepScaled(f opt.Objective, x0, lower, upper []float64) opt.Result {
	res, _ := nelderMeadStepScaledCtx(context.Background(), f, x0, lower, upper)
	return res
}

func nelderMeadStepScaledCtx(ctx context.Context, f opt.Objective, x0, lower, upper []float64) (opt.Result, error) {
	span := 0.0
	for i := range lower {
		span += upper[i] - lower[i]
	}
	step := 0.1
	if len(lower) > 0 {
		step = 0.1 * span / float64(len(lower))
	}
	if step <= 0 {
		step = 0.1
	}
	return opt.NelderMeadCtx(ctx, f, x0, opt.NelderMeadOptions{InitialStep: step, MaxIterations: 100 * (len(x0) + 1)})
}

// visitStep draws one coordinate of the Tsallis visiting distribution for
// visiting parameter qv and temperature temp (Tsallis & Stariolo 1996, as
// implemented in SciPy's dual_annealing).
func visitStep(qv, temp float64, rng *rand.Rand) float64 {
	factor1 := math.Exp(math.Log(temp) / (qv - 1))
	factor2 := math.Exp((4 - qv) * math.Log(qv-1))
	factor3 := math.Exp((2 - qv) * math.Ln2 / (qv - 1))
	factor4 := math.Sqrt(math.Pi) * factor1 * factor2 / (factor3 * (3 - qv))
	factor5 := 1/(qv-1) - 0.5
	d1 := 2 - factor5
	lg, _ := math.Lgamma(d1)
	factor6 := math.Pi * (1 - factor5) / math.Sin(math.Pi*(1-factor5)) / math.Exp(lg)
	sigmax := math.Exp(-(qv - 1) * math.Log(factor6/factor4) / (3 - qv))

	x := sigmax * rng.NormFloat64()
	y := rng.NormFloat64()
	den := math.Exp((qv - 1) * math.Log(math.Abs(y)) / (3 - qv))
	v := x / den
	// Guard against the heavy tail producing non-finite or huge steps.
	const tailLimit = 1e8
	switch {
	case math.IsNaN(v) || math.IsInf(v, 0):
		return tailLimit * (rng.Float64()*2 - 1)
	case v > tailLimit:
		return tailLimit * rng.Float64()
	case v < -tailLimit:
		return -tailLimit * rng.Float64()
	}
	return v
}
