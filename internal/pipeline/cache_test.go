package pipeline

import (
	"runtime"
	"testing"

	"repro/internal/algos"
	"repro/internal/ucache"
)

// TFIM Trotter circuits repeat the same layer structure, so the
// partition yields duplicate block unitaries — the case the synthesis
// cache exists for.

func TestRunWithCacheMatchesWithout(t *testing.T) {
	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cold, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SynthCache = ucache.New(64, 0)
	cached, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Selected) != len(cold.Selected) {
		t.Fatalf("cache changed sample count: %d vs %d", len(cached.Selected), len(cold.Selected))
	}
	for i := range cold.Selected {
		a, b := cold.Selected[i], cached.Selected[i]
		if a.CNOTs != b.CNOTs || a.EpsilonSum != b.EpsilonSum {
			t.Errorf("sample %d: cached (%d, %g) != uncached (%d, %g)",
				i, b.CNOTs, b.EpsilonSum, a.CNOTs, a.EpsilonSum)
		}
		for k := range a.Choice {
			if a.Choice[k] != b.Choice[k] {
				t.Fatalf("sample %d block %d: cached choice %d != uncached %d",
					i, k, b.Choice[k], a.Choice[k])
			}
		}
	}
	if cached.CacheStats.Misses == 0 {
		t.Error("cached run recorded no misses")
	}
	if cold.CacheStats != (ucache.Stats{}) {
		t.Errorf("uncached run reported cache stats %+v", cold.CacheStats)
	}
}

func TestRunCacheHitsOnRepeatedBlocksAndRuns(t *testing.T) {
	// Three Trotter steps of the same layer: duplicate blocks must hit
	// within a single run (content-derived seeds make their searches
	// identical), and a second identical run must be served almost
	// entirely from cache.
	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cfg.SynthCache = ucache.New(64, 0)
	first, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheStats.Hits == 0 {
		t.Errorf("no intra-run hits on a 3-step Trotter circuit: %+v", first.CacheStats)
	}
	second, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheStats.Misses != 0 {
		t.Errorf("second identical run missed %d times", second.CacheStats.Misses)
	}
	if second.CacheStats.Hits == 0 {
		t.Error("second identical run recorded no hits")
	}
}

func TestRunWithCacheDeterministicAcrossParallelism(t *testing.T) {
	// The PR-1 guarantee must survive caching: hits are exact (same
	// unitary, same canonical options), so whether a block is served by
	// the cache or recomputed, the result is identical — regardless of
	// which worker populated the entry first.
	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cfg.SynthCache = ucache.New(64, 0)
	cfg.Parallelism = 1
	r1, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.NumCPU()} {
		wcfg := cfg
		wcfg.SynthCache = ucache.New(64, 0) // fresh cache per worker count
		wcfg.Parallelism = workers
		r2, err := Run(c, wcfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Selected) != len(r2.Selected) {
			t.Fatalf("parallelism %d changed sample count: %d vs %d",
				workers, len(r1.Selected), len(r2.Selected))
		}
		for i := range r1.Selected {
			a, b := r1.Selected[i], r2.Selected[i]
			if a.CNOTs != b.CNOTs || a.EpsilonSum != b.EpsilonSum {
				t.Fatalf("parallelism %d sample %d: (%d, %g) != (%d, %g)",
					workers, i, b.CNOTs, b.EpsilonSum, a.CNOTs, a.EpsilonSum)
			}
			for k := range a.Choice {
				if a.Choice[k] != b.Choice[k] {
					t.Fatalf("parallelism %d sample %d block %d: choice %d != %d",
						workers, i, k, b.Choice[k], a.Choice[k])
				}
			}
		}
	}
}
