package pipeline

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/algos"
	"repro/internal/budget"
	"repro/internal/faultinject"
)

// TestCancelMidSynthesisNoGoroutineLeak cancels the context while the
// synthesis stage is verifiably mid-flight (a fault-injection stall
// holds block 0 open) and asserts two things the serving layer depends
// on: the error is budget.ErrCancelled under errors.Is even though the
// cancel races worker completion, and every stage worker goroutine
// exits — a questd worker pool would otherwise accumulate leaked
// goroutines on every cancelled or drained job.
func TestCancelMidSynthesisNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cfg.Parallelism = 2

	// Hold block 0's first synthesis attempt open long enough that the
	// cancellation below is guaranteed to land mid-stage.
	restore := faultinject.Set("core.block.0", faultinject.Stall(150*time.Millisecond))
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := Synthesize(ctx, c, cfg)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, budget.ErrCancelled) {
			t.Fatalf("err = %v, want budget.ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Synthesize did not return after cancellation")
	}

	// Workers unwind asynchronously after the stage error: poll until
	// the goroutine count settles back to the baseline (with slack for
	// runtime housekeeping goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizer/timer goroutines to finish
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancelled synthesis: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
