// Package pipeline implements the QUEST pipeline (Sec. 3) as a typed
// composition of stages with explicit artifacts:
//
//	*circuit.Circuit
//	   │  PartitionStage       (Sec. 3.3, scan partitioner)
//	   ▼
//	*PartitionArtifact          blocks + full-circuit threshold
//	   │  SynthesisStage       (Sec. 3.5, per-block approximate synthesis)
//	   ▼
//	*SynthesisArtifact          per-block candidate sets (+ raw harvest)
//	   │  SelectionStage       (Sec. 3.6, Algorithm 1 / dual annealing)
//	   ▼
//	*SelectionArtifact          dissimilar approximations → *Result
//
// Run / RunCtx execute the full composition and are bit-identical to the
// historical monolithic core.Run for the same Config (asserted by the
// golden test in internal/core). Each stage is also usable on its own,
// which is what makes evaluation sweeps cheap: a SynthesisArtifact is
// computed once and re-selected against many (ε, M, CXWeight) settings
// with Reselect, skipping the dominant synthesis cost (Fig. 12).
//
// The per-block process distances bound the full-circuit process distance
// by the Sec. 3.8 theorem: HS(full) ≤ Σ_k ε_k.
package pipeline

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/partition"
	"repro/internal/synth"
	"repro/internal/ucache"
)

// Stage is one typed pipeline step: a named, context-aware transformation
// of an In artifact into an Out artifact. Stages own their budget
// (deadline/cancellation) handling and their degradation policy, so a
// composed pipeline behaves identically to the hand-interleaved loop it
// replaced.
type Stage[In, Out any] struct {
	// Name identifies the stage in errors and instrumentation.
	Name string
	run  func(ctx context.Context, in In) (Out, error)
}

// NewStage wraps a function as a named Stage.
func NewStage[In, Out any](name string, run func(ctx context.Context, in In) (Out, error)) Stage[In, Out] {
	return Stage[In, Out]{Name: name, run: run}
}

// Run executes the stage.
func (s Stage[In, Out]) Run(ctx context.Context, in In) (Out, error) {
	return s.run(ctx, in)
}

// Then composes two stages into one: a's output artifact feeds b. An
// error from a short-circuits b.
func Then[A, B, C any](a Stage[A, B], b Stage[B, C]) Stage[A, C] {
	return Stage[A, C]{
		Name: a.Name + "+" + b.Name,
		run: func(ctx context.Context, in A) (C, error) {
			mid, err := a.Run(ctx, in)
			if err != nil {
				var zero C
				return zero, err
			}
			return b.Run(ctx, mid)
		},
	}
}

// PartitionArtifact is the output of PartitionStage: the block structure
// of one circuit plus the full-circuit distance threshold. It is
// invalidated by a change of circuit or Config.BlockSize; the Threshold
// it carries additionally reflects Epsilon and ThresholdCap (Reselect
// recomputes it for new settings).
type PartitionArtifact struct {
	// Original is the input circuit.
	Original *circuit.Circuit
	// Blocks are the partition blocks in topological order.
	Blocks []partition.Block
	// Threshold is the full-circuit distance threshold
	// min(Epsilon × len(Blocks), ThresholdCap).
	Threshold float64
	// Key fingerprints the Config fields this artifact depends on.
	Key string
	// Elapsed is the stage's wall-clock cost.
	Elapsed time.Duration
}

// SynthesisArtifact is the output of SynthesisStage: every block's
// approximate-candidate set. It is the expensive artifact — synthesis
// dominates pipeline cost (Fig. 12) — and the unit of reuse: selection
// side sweeps (ε, M, CXWeight, AnnealIterations) re-run against it via
// Reselect without resynthesizing.
type SynthesisArtifact struct {
	// Partition is the upstream artifact.
	Partition *PartitionArtifact
	// Blocks holds per-block approximation sets, aligned with
	// Partition.Blocks.
	Blocks []BlockApproximations
	// Degradations lists blocks that fell back to their exact circuit
	// during synthesis, in block order.
	Degradations []Degradation
	// CacheStats is the synthesis-cache activity during the stage (zero
	// when Config.SynthCache is nil).
	CacheStats ucache.Stats
	// Cfg is the resolved Config the artifact was synthesized under;
	// Key fingerprints the fields that invalidate the artifact.
	Cfg Config
	Key string
	// Elapsed is the stage's wall-clock cost.
	Elapsed time.Duration
}

// SelectionArtifact is the output of SelectionStage: the dissimilar
// approximations chosen by Algorithm 1 for one (threshold, M, CXWeight)
// setting over a SynthesisArtifact.
type SelectionArtifact struct {
	// Synthesis is the upstream artifact.
	Synthesis *SynthesisArtifact
	// Selected are the chosen approximations in selection order.
	Selected []Approximation
	// Degradations lists blocks degraded during candidate re-filtering
	// (empty on the primary path; Reselect may add entries when a
	// tighter threshold empties a block's reusable candidate set).
	Degradations []Degradation
	// Key fingerprints the Config fields this artifact depends on.
	Key string
	// Elapsed is the stage's wall-clock cost.
	Elapsed time.Duration
}

// Result assembles the artifact chain into the historical flat pipeline
// result consumed by callers and serializers.
func (sa *SelectionArtifact) Result() *Result {
	syn := sa.Synthesis
	res := &Result{
		Original:  syn.Partition.Original,
		Blocks:    syn.Blocks,
		Selected:  sa.Selected,
		Threshold: syn.Partition.Threshold,
		Timing: Timing{
			Partition: syn.Partition.Elapsed,
			Synthesis: syn.Elapsed,
			Annealing: sa.Elapsed,
		},
		CacheStats: syn.CacheStats,
	}
	res.Degradations = append(res.Degradations, syn.Degradations...)
	res.Degradations = append(res.Degradations, sa.Degradations...)
	if len(res.Degradations) == 0 {
		res.Degradations = nil
	}
	return res
}

// BlockApproximations holds one partition block with its harvested
// approximate circuits.
type BlockApproximations struct {
	// Block is the partition block (global qubits + local circuit).
	Block partition.Block
	// Unitary is the block's original unitary.
	Unitary *linalg.Matrix
	// Candidates are the approximate circuits, sorted by (CNOTs,
	// Distance); Candidates[i].Circuit acts on block-local qubits.
	Candidates []synth.Candidate
	// all is the raw candidate harvest of the successful synthesis
	// attempt, before threshold pruning and exact-anchor insertion. It
	// is what Reselect re-filters under a different threshold; nil for
	// degraded blocks (their only candidate is the exact circuit).
	all []synth.Candidate
	// pairDist[i][j] is the HS distance between candidates i and j,
	// used by the Algorithm-1 similarity rule.
	pairDist [][]float64
}

// Approximation is one selected full-circuit approximation.
type Approximation struct {
	// Choice[b] is the candidate index used for block b.
	Choice []int
	// Circuit is the reassembled full circuit.
	Circuit *circuit.Circuit
	// CNOTs is the full circuit's CNOT count.
	CNOTs int
	// EpsilonSum is Σ_k ε_k over the chosen block candidates: by the
	// Sec. 3.8 theorem an upper bound on the full-circuit HS distance.
	EpsilonSum float64
}

// Timing records where pipeline time went (Fig. 12).
type Timing struct {
	Partition time.Duration
	Synthesis time.Duration
	Annealing time.Duration
}

// Total returns the summed pipeline time.
func (t Timing) Total() time.Duration { return t.Partition + t.Synthesis + t.Annealing }

// Degradation records one block that fell back to its exact (transpiled)
// circuit because synthesis failed to produce a usable approximation
// within its retry and time budgets. A degraded block contributes zero
// process distance, so the assembled circuits stay valid — the pipeline
// just loses CNOT savings on that block.
type Degradation struct {
	// Block is the index into Result.Blocks.
	Block int
	// Qubits are the block's global qubit indices.
	Qubits []int
	// Attempts is the number of synthesis attempts made.
	Attempts int
	// Reason describes the final failure (e.g. "no candidate within
	// threshold" or the last attempt's error text).
	Reason string
}

// Result is the pipeline output.
type Result struct {
	// Original is the input circuit.
	Original *circuit.Circuit
	// Blocks holds per-block approximation sets.
	Blocks []BlockApproximations
	// Selected are the chosen dissimilar approximations, in selection
	// order (the first has the lowest CNOT count).
	Selected []Approximation
	// Threshold is the full-circuit distance threshold used
	// (Epsilon × number of blocks).
	Threshold float64
	// Timing is the per-stage cost breakdown.
	Timing Timing
	// Degradations lists blocks that fell back to their exact circuit,
	// in block order. Empty on a fully approximated run.
	Degradations []Degradation
	// CacheStats is the synthesis-cache activity during this run
	// (zero when Config.SynthCache is nil). With a cache shared across
	// concurrent runs the numbers include the other runs' activity.
	CacheStats ucache.Stats
}

// BestCNOTs returns the smallest CNOT count among selected approximations.
func (r *Result) BestCNOTs() int {
	best := math.MaxInt
	for _, a := range r.Selected {
		if a.CNOTs < best {
			best = a.CNOTs
		}
	}
	return best
}

// UpperBound is the Sec. 3.8 theorem: the process distance of a circuit
// assembled from approximate blocks is at most the sum of the blocks'
// process distances.
func UpperBound(blockDistances []float64) float64 {
	var s float64
	for _, d := range blockDistances {
		s += d
	}
	return s
}

// Run executes the QUEST pipeline on a circuit.
func Run(c *circuit.Circuit, cfg Config) (*Result, error) {
	return RunCtx(context.Background(), c, cfg)
}

// RunCtx executes the QUEST pipeline under a context: the composition
// PartitionStage → SynthesisStage → SelectionStage. Config.Timeout (if
// set) is layered on top of ctx's own deadline. Cancellation is checked
// at every stage boundary and inside every stage's inner loops; when the
// budget expires the run fails with a typed, wrapped error
// (errors.Is(err, budget.ErrDeadline) or budget.ErrCancelled) — unless
// Config.AllowDegraded is set, in which case unfinished blocks fall back
// to their exact circuits (recorded in Result.Degradations) and a valid,
// degraded result is returned with a nil error.
func RunCtx(ctx context.Context, c *circuit.Circuit, cfg Config) (*Result, error) {
	cfg.defaults()
	if c.Size() == 0 {
		return nil, fmt.Errorf("pipeline: empty circuit")
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	sel, err := Stages(cfg).Run(ctx, c)
	if err != nil {
		return nil, err
	}
	return sel.Result(), nil
}

// Stages returns the full pipeline as one composed stage. The Config is
// resolved once so every stage sees identical defaults. With
// Config.Overlap the partition+synthesis half is the streaming fusion
// (OverlappedSynthesisStage) instead of the staged pair; the artifacts
// are bit-identical either way.
func Stages(cfg Config) Stage[*circuit.Circuit, *SelectionArtifact] {
	cfg.defaults()
	return Then(synthesisFront(cfg), SelectionStage(cfg))
}

// synthesisFront is the circuit → SynthesisArtifact half of the pipeline
// under cfg: staged by default, streaming when Config.Overlap is set.
func synthesisFront(cfg Config) Stage[*circuit.Circuit, *SynthesisArtifact] {
	if cfg.Overlap {
		return OverlappedSynthesisStage(cfg)
	}
	return Then(PartitionStage(cfg), SynthesisStage(cfg))
}
