package pipeline

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/algos"
	"repro/internal/circuit"
	"repro/internal/qasm"
)

func testCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := algos.Generate("tfim", 4)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return c
}

func fastCfg() Config {
	return Config{MaxSamples: 4, AnnealIterations: 100, Seed: 3}
}

// sameSelection asserts two results selected bit-identical approximations.
func sameSelection(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Selected) != len(b.Selected) {
		t.Fatalf("%s: selected %d vs %d approximations", label, len(a.Selected), len(b.Selected))
	}
	for i := range a.Selected {
		x, y := a.Selected[i], b.Selected[i]
		if x.CNOTs != y.CNOTs {
			t.Errorf("%s: sample %d CNOTs %d vs %d", label, i, x.CNOTs, y.CNOTs)
		}
		if math.Float64bits(x.EpsilonSum) != math.Float64bits(y.EpsilonSum) {
			t.Errorf("%s: sample %d EpsilonSum %v vs %v", label, i, x.EpsilonSum, y.EpsilonSum)
		}
		if qasm.Write(x.Circuit) != qasm.Write(y.Circuit) {
			t.Errorf("%s: sample %d circuits differ", label, i)
		}
	}
}

// A Reselect whose config matches the artifact's must be bit-identical to
// the full pipeline run (the re-filter path and the primary path share
// finishBlock).
func TestReselectSameConfigBitIdentical(t *testing.T) {
	c := testCircuit(t)
	cfg := fastCfg()

	full, err := Run(c, cfg)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	art, err := Synthesize(context.Background(), c, cfg)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	re, err := Reselect(context.Background(), art, cfg)
	if err != nil {
		t.Fatalf("reselect: %v", err)
	}
	sameSelection(t, "same-config", full, re)
	if math.Float64bits(re.Threshold) != math.Float64bits(full.Threshold) {
		t.Errorf("threshold %v vs %v", re.Threshold, full.Threshold)
	}
}

// MaxSamples does not enter the synthesis stage, so an M-sweep over one
// SynthesisArtifact must be bit-identical to full re-runs at each M.
func TestReselectAcrossMaxSamplesMatchesFullRuns(t *testing.T) {
	c := testCircuit(t)
	base := fastCfg()
	art, err := Synthesize(context.Background(), c, base)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	for _, m := range []int{1, 2, 6} {
		cfg := base
		cfg.MaxSamples = m
		full, err := Run(c, cfg)
		if err != nil {
			t.Fatalf("full run M=%d: %v", m, err)
		}
		re, err := Reselect(context.Background(), art, cfg)
		if err != nil {
			t.Fatalf("reselect M=%d: %v", m, err)
		}
		sameSelection(t, "M-sweep", full, re)
	}
}

// An ε-sweep over one artifact re-filters the harvested candidates; the
// Sec. 3.8 bound must hold at each swept threshold.
func TestReselectAcrossEpsilonRespectsNewThreshold(t *testing.T) {
	c := testCircuit(t)
	base := fastCfg()
	base.Epsilon = 0.4
	base.ThresholdCap = 1e9
	art, err := Synthesize(context.Background(), c, base)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	for _, eps := range []float64{0.01, 0.05, 0.2, 0.4} {
		cfg := base
		cfg.Epsilon = eps
		res, err := Reselect(context.Background(), art, cfg)
		if err != nil {
			t.Fatalf("reselect eps=%v: %v", eps, err)
		}
		if len(res.Selected) == 0 {
			t.Fatalf("eps=%v: no selections", eps)
		}
		for i, a := range res.Selected {
			if a.EpsilonSum > res.Threshold+1e-12 {
				t.Errorf("eps=%v sample %d: Σε %v exceeds threshold %v", eps, i, a.EpsilonSum, res.Threshold)
			}
		}
		// The synthesis timing of a reselect is the re-filter residue; it
		// must not claim the artifact's full synthesis cost.
		if res.Timing.Synthesis > art.Elapsed && art.Elapsed > 0 {
			t.Errorf("eps=%v: reselect synthesis timing %v exceeds artifact's %v",
				eps, res.Timing.Synthesis, art.Elapsed)
		}
	}
}

func TestReselectRejectsBlockSizeMismatch(t *testing.T) {
	c := testCircuit(t)
	art, err := Synthesize(context.Background(), c, fastCfg())
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	bad := fastCfg()
	bad.BlockSize = 2
	if _, err := Reselect(context.Background(), art, bad); err == nil {
		t.Fatal("want error on BlockSize mismatch, got nil")
	}
}

// Save/Load must round-trip the artifact so a loaded artifact reselects
// bit-identically to the in-memory one.
func TestSynthesisArtifactSaveLoadRoundTrip(t *testing.T) {
	c := testCircuit(t)
	cfg := fastCfg()
	art, err := Synthesize(context.Background(), c, cfg)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	var buf bytes.Buffer
	if err := art.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadSynthesis(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Key != art.Key {
		t.Errorf("key %q vs %q", loaded.Key, art.Key)
	}
	want, err := Reselect(context.Background(), art, cfg)
	if err != nil {
		t.Fatalf("reselect original: %v", err)
	}
	got, err := Reselect(context.Background(), loaded, cfg)
	if err != nil {
		t.Fatalf("reselect loaded: %v", err)
	}
	sameSelection(t, "save-load", want, got)

	// Reuse across ε must survive the round-trip too (raw harvest kept).
	tight := cfg
	tight.Epsilon = 0.01
	wantT, err := Reselect(context.Background(), art, tight)
	if err != nil {
		t.Fatalf("reselect original tight: %v", err)
	}
	gotT, err := Reselect(context.Background(), loaded, tight)
	if err != nil {
		t.Fatalf("reselect loaded tight: %v", err)
	}
	sameSelection(t, "save-load-tight", wantT, gotT)
}

// Composing the stages by hand must equal RunCtx (which is itself the
// composition).
func TestStageCompositionMatchesRunCtx(t *testing.T) {
	c := testCircuit(t)
	cfg := fastCfg()
	want, err := Run(c, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	ctx := context.Background()
	resolved := cfg
	resolved.defaults()
	pa, err := PartitionStage(resolved).Run(ctx, c)
	if err != nil {
		t.Fatalf("partition stage: %v", err)
	}
	sa, err := SynthesisStage(resolved).Run(ctx, pa)
	if err != nil {
		t.Fatalf("synthesis stage: %v", err)
	}
	sel, err := SelectionStage(resolved).Run(ctx, sa)
	if err != nil {
		t.Fatalf("selection stage: %v", err)
	}
	sameSelection(t, "manual-composition", want, sel.Result())
}
