package pipeline

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/algos"
	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/metrics"
	"repro/internal/noise"
	"repro/internal/sim"
)

// testConfig keeps pipeline runs fast in unit tests.
func testConfig() Config {
	return Config{
		BlockSize:        3,
		Epsilon:          0.05,
		MaxSamples:       6,
		AnnealIterations: 150,
		SynthBeam:        2,
		Seed:             1,
	}
}

func TestUpperBound(t *testing.T) {
	if got := UpperBound([]float64{0.1, 0.2, 0.05}); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("UpperBound = %g", got)
	}
	if got := UpperBound(nil); got != 0 {
		t.Errorf("UpperBound(nil) = %g", got)
	}
}

func TestUpperBoundTheoremHolds(t *testing.T) {
	// Property-check the Sec 3.8 theorem itself: assemble approximate
	// blocks and compare actual full-circuit distance to Σ ε_k.
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Two 2-qubit blocks on a 3-qubit circuit (overlapping on q1).
		b1, b2 := linalg.RandomUnitary(4, r), linalg.RandomUnitary(4, r)
		// Perturb each to create "approximations".
		p1, p2 := perturb(b1, r), perturb(b2, r)
		e1, e2 := linalg.HSDistance(b1, p1), linalg.HSDistance(b2, p2)

		id := linalg.Identity(2)
		full := linalg.Mul(linalg.Kron(b2, id), linalg.Kron(id, b1))
		fullApprox := linalg.Mul(linalg.Kron(p2, id), linalg.Kron(id, p1))
		actual := linalg.HSDistance(full, fullApprox)
		return actual <= e1+e2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func perturb(u *linalg.Matrix, rng *rand.Rand) *linalg.Matrix {
	// Small random unitary perturbation: U · exp-ish via a random
	// near-identity unitary built from a scaled Ginibre + QR.
	eps := linalg.RandomUnitary(u.Rows, rng)
	mix := linalg.Add(linalg.Scale(complex(8, 0), linalg.Identity(u.Rows)), eps)
	// Orthonormalize columns of mix via the RandomUnitary trick: reuse
	// Gram-Schmidt by multiplying into a unitary basis.
	q := gramSchmidt(mix)
	return linalg.Mul(u, q)
}

func gramSchmidt(m *linalg.Matrix) *linalg.Matrix {
	n := m.Rows
	cols := make([]linalg.Vector, n)
	for j := 0; j < n; j++ {
		c := linalg.NewVector(n)
		for i := 0; i < n; i++ {
			c[i] = m.At(i, j)
		}
		cols[j] = c
	}
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			proj := linalg.Dot(cols[k], cols[j])
			for i := 0; i < n; i++ {
				cols[j][i] -= proj * cols[k][i]
			}
		}
		cols[j].Normalize()
	}
	out := linalg.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			out.Set(i, j, cols[j][i])
		}
	}
	return out
}

func TestRunEmptyCircuit(t *testing.T) {
	if _, err := Run(circuit.New(2), testConfig()); err == nil {
		t.Error("empty circuit accepted")
	}
}

func TestRunSmallTFIM(t *testing.T) {
	c := algos.TFIM(4, 3, 0.1, 1, 1)
	res, err := Run(c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) == 0 {
		t.Fatal("no blocks")
	}
	if len(res.Selected) == 0 {
		t.Fatal("no approximations selected")
	}
	// Every selected approximation respects the bound threshold.
	for i, a := range res.Selected {
		if a.EpsilonSum > res.Threshold+1e-12 {
			t.Errorf("approximation %d epsilon sum %g > threshold %g", i, a.EpsilonSum, res.Threshold)
		}
		if a.Circuit.NumQubits != c.NumQubits {
			t.Errorf("approximation %d has %d qubits", i, a.Circuit.NumQubits)
		}
	}
	// The theorem: actual full distance ≤ Σ ε (verifiable at 4 qubits).
	orig := sim.Unitary(c)
	for i, a := range res.Selected {
		actual := linalg.HSDistance(orig, sim.Unitary(a.Circuit))
		if actual > a.EpsilonSum+1e-6 {
			t.Errorf("approximation %d: actual distance %g > bound %g", i, actual, a.EpsilonSum)
		}
	}
}

func TestRunReducesCNOTs(t *testing.T) {
	// Heisenberg has many CNOT-equivalents; QUEST should cut them a lot.
	c := algos.Heisenberg(4, 3, 0.1, 1, 1)
	res, err := Run(c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	orig := c.CNOTCount()
	best := res.BestCNOTs()
	if best >= orig {
		t.Errorf("no CNOT reduction: %d -> %d", orig, best)
	}
	t.Logf("Heisenberg-4: %d -> %d CNOTs (%.0f%% reduction), %d samples",
		orig, best, 100*float64(orig-best)/float64(orig), len(res.Selected))
}

func TestRunEnsembleOutputClose(t *testing.T) {
	c := algos.TFIM(4, 3, 0.1, 1, 1)
	res, err := Run(c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ideal := sim.Probabilities(c)
	ens, err := res.EnsembleProbabilities(func(a *circuit.Circuit) ([]float64, error) {
		return sim.Probabilities(a), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tvd := metrics.TVD(ideal, ens)
	if tvd > 0.15 {
		t.Errorf("ensemble TVD = %g, want small", tvd)
	}
	t.Logf("TFIM-4 ensemble TVD = %g over %d samples", tvd, len(res.Selected))
}

func TestRunDeterministic(t *testing.T) {
	c := algos.TFIM(4, 2, 0.1, 1, 1)
	cfg := testConfig()
	r1, err1 := Run(c, cfg)
	r2, err2 := Run(c, cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(r1.Selected) != len(r2.Selected) {
		t.Fatalf("different sample counts: %d vs %d", len(r1.Selected), len(r2.Selected))
	}
	for i := range r1.Selected {
		if r1.Selected[i].CNOTs != r2.Selected[i].CNOTs ||
			math.Abs(r1.Selected[i].EpsilonSum-r2.Selected[i].EpsilonSum) > 1e-12 {
			t.Errorf("sample %d differs between runs", i)
		}
	}
}

func TestRunFirstSampleHasLowestCNOTs(t *testing.T) {
	// The first selection round weights CNOTs only, so the first sample
	// should be (near) the CNOT-minimal feasible approximation.
	c := algos.XY(4, 2, 0.1, 1)
	res, err := Run(c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := res.Selected[0].CNOTs
	for i, a := range res.Selected[1:] {
		if a.CNOTs < first {
			t.Logf("note: sample %d has %d CNOTs < first %d (dissimilarity trade-off)", i+1, a.CNOTs, first)
		}
	}
	if first > c.CNOTCount() {
		t.Errorf("first sample has MORE CNOTs (%d) than original (%d)", first, c.CNOTCount())
	}
}

func TestSimilarityBounds(t *testing.T) {
	c := algos.TFIM(4, 2, 0.1, 1, 1)
	res, err := Run(c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) < 2 {
		t.Skip("need at least two samples")
	}
	a, b := res.Selected[0].Choice, res.Selected[1].Choice
	s := similarity(res.Blocks, a, b)
	if s < 0 || s > 1 {
		t.Errorf("similarity out of range: %g", s)
	}
	if got := similarity(res.Blocks, a, a); got != 1 {
		t.Errorf("self-similarity = %g, want 1", got)
	}
}

func TestTimingPopulated(t *testing.T) {
	c := algos.TFIM(4, 2, 0.1, 1, 1)
	res, err := Run(c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Synthesis <= 0 {
		t.Error("synthesis timing not recorded")
	}
	if res.Timing.Total() < res.Timing.Synthesis {
		t.Error("total < synthesis")
	}
}

func TestEnsembleNoSelections(t *testing.T) {
	r := &Result{}
	if _, err := r.EnsembleProbabilities(func(*circuit.Circuit) ([]float64, error) {
		return nil, nil
	}); err == nil {
		t.Error("EnsembleProbabilities with no selections should fail")
	}
}

func TestThresholdCap(t *testing.T) {
	c := algos.TFIM(4, 8, 0.1, 1, 1) // many blocks
	cfg := testConfig()
	cfg.Epsilon = 0.2 // would give threshold > 1 uncapped
	res, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Threshold > 0.5+1e-12 {
		t.Errorf("threshold %g exceeds default cap", res.Threshold)
	}
	cfg.ThresholdCap = 2
	res2, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Threshold <= 0.5 {
		t.Errorf("custom cap ignored: %g", res2.Threshold)
	}
}

func TestParallelismDoesNotChangeResults(t *testing.T) {
	// The determinism claim on Config.Parallelism: the pipeline selects
	// IDENTICAL approximations — same per-block candidate choices, not
	// just the same CNOT counts — for every worker count.
	c := algos.TFIM(4, 2, 0.1, 1, 1)
	cfg := testConfig()
	cfg.Parallelism = 1
	r1, err := Run(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		cfg.Parallelism = workers
		r2, err := Run(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Selected) != len(r2.Selected) {
			t.Fatalf("parallelism %d changed sample count: %d vs %d",
				workers, len(r1.Selected), len(r2.Selected))
		}
		for i := range r1.Selected {
			a, b := r1.Selected[i], r2.Selected[i]
			if a.CNOTs != b.CNOTs || a.EpsilonSum != b.EpsilonSum {
				t.Errorf("parallelism %d: sample %d stats differ", workers, i)
			}
			for k := range a.Choice {
				if a.Choice[k] != b.Choice[k] {
					t.Errorf("parallelism %d: sample %d picks candidate %d for block %d, serial picked %d",
						workers, i, b.Choice[k], k, a.Choice[k])
				}
			}
		}
	}
}

func TestEnsembleProbabilitiesInvariantUnderWorkers(t *testing.T) {
	// Ensemble evaluation must be bit-identical for any worker count,
	// including through the noisy runner (whose RNG streams are derived
	// per call, never shared).
	c := algos.TFIM(4, 2, 0.1, 1, 1)
	res, err := Run(c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := noise.Uniform(0.01)
	runner := func(a *circuit.Circuit) ([]float64, error) {
		return m.Run(a, noise.Options{Shots: 1024, Trajectories: 20, Seed: 5, Parallelism: 1}), nil
	}
	ref, err := res.EnsembleProbabilitiesWorkers(runner, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.NumCPU(), 0} {
		got, err := res.EnsembleProbabilitiesWorkers(runner, workers)
		if err != nil {
			t.Fatal(err)
		}
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("workers=%d: ensemble output differs at state %d", workers, k)
			}
		}
	}
}

func TestEnsembleProbabilitiesReportsFirstError(t *testing.T) {
	c := algos.TFIM(4, 2, 0.1, 1, 1)
	res, err := Run(c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("backend down")
	_, err = res.EnsembleProbabilities(func(*circuit.Circuit) ([]float64, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("ensemble error not propagated: %v", err)
	}
}

func TestOriginalBlockAlwaysAvailable(t *testing.T) {
	// Every block must contain an exact candidate with CNOTs ≤ the
	// block's own count, so QUEST can never be forced above Baseline.
	c := algos.Heisenberg(4, 2, 0.1, 1, 1)
	res, err := Run(c, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, ba := range res.Blocks {
		found := false
		for _, cand := range ba.Candidates {
			if cand.Distance < 1e-7 && cand.CNOTs <= ba.Block.CNOTCount() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("block %d has no exact candidate within its own CNOT budget", i)
		}
	}
}
