package pipeline

import "testing"

// CXWeight's zero value is a legitimate setting (pure-dissimilarity
// objective), so defaults() must only fill in the paper's 0.5 when the
// CXWeightSet sentinel says the caller left the field untouched.
func TestCXWeightSentinel(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want float64
	}{
		{"unset zero gets default", Config{}, 0.5},
		{"explicit zero survives", Config{CXWeight: 0, CXWeightSet: true}, 0},
		{"explicit value survives", Config{CXWeight: 0.75}, 0.75},
		{"explicit value with sentinel survives", Config{CXWeight: 0.75, CXWeightSet: true}, 0.75},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.defaults()
			if tc.cfg.CXWeight != tc.want {
				t.Errorf("CXWeight = %v, want %v", tc.cfg.CXWeight, tc.want)
			}
			if !tc.cfg.CXWeightSet {
				t.Error("defaults() did not mark CXWeight as resolved")
			}
		})
	}
}

// defaults() must be idempotent: re-resolving a resolved config (as
// Reselect does with an artifact's stored Cfg) changes nothing.
func TestDefaultsIdempotent(t *testing.T) {
	cfg := Config{CXWeight: 0, CXWeightSet: true, MaxSamples: 3}
	cfg.defaults()
	once := cfg
	cfg.defaults()
	if cfg != once {
		t.Errorf("defaults() not idempotent: %+v vs %+v", cfg, once)
	}
}
