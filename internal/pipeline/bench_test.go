package pipeline

import (
	"context"
	"testing"

	"repro/internal/algos"
	"repro/internal/fidelity"
)

// The ε-sweep benchmark pair quantifies the artifact-reuse win recorded
// in BENCH_pipeline.json: a Fig. 16-style threshold sweep either re-runs
// the whole pipeline per ε-point (Full) or synthesizes once at the
// tightest ε and re-runs only the selection stage per point (Reselect).
// Synthesis dominates the pipeline cost (Fig. 12), so the reuse should
// win by the sweep's point count, roughly.

var sweepEpsilons = []float64{0.01, 0.03, 0.05, 0.1, 0.2, 0.4}

func sweepConfig() Config {
	return Config{
		MaxSamples:       4,
		AnnealIterations: 120,
		ThresholdCap:     1e9,
		Seed:             1,
	}
}

func BenchmarkEpsilonSweepFull(b *testing.B) {
	c, err := algos.Generate("tfim", 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, eps := range sweepEpsilons {
			cfg := sweepConfig()
			cfg.Epsilon = eps
			if _, err := Run(c, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// The selection benchmark pair records what a pluggable objective costs
// in the selection stage itself (BENCH_synth.json section "fidelity"):
// one Reselect over a fixed synthesis artifact under the paper's CNOT
// objective vs the device-fidelity objective, whose per-evaluation extra
// work is the log-domain ESP fold.
func benchmarkReselect(b *testing.B, obj Objective) {
	b.Helper()
	c, err := algos.Generate("tfim", 4)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	cfg := sweepConfig()
	cfg.Epsilon = 0.1
	cfg.Objective = obj
	art, err := Synthesize(ctx, c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reselect(ctx, art, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectionCNOT(b *testing.B) { benchmarkReselect(b, CNOTObjective()) }

func BenchmarkSelectionFidelity(b *testing.B) {
	// Representative superconducting-device rates (Manila-scale); the
	// benchmark cannot resolve the registry's profile without importing
	// backend, which would cycle.
	obj, err := FidelityObjective("fidelity:bench", fidelity.Profile{
		OneQubit: 2e-4, TwoQubit: 8e-3, Readout: 2e-2,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchmarkReselect(b, obj)
}

func BenchmarkEpsilonSweepReselect(b *testing.B) {
	c, err := algos.Generate("tfim", 4)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := sweepConfig()
		base.Epsilon = sweepEpsilons[0]
		art, err := Synthesize(ctx, c, base)
		if err != nil {
			b.Fatal(err)
		}
		for _, eps := range sweepEpsilons {
			cfg := base
			cfg.Epsilon = eps
			if _, err := Reselect(ctx, art, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}
