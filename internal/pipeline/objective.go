package pipeline

import (
	"fmt"
	"math"

	"repro/internal/fidelity"
)

// ChoiceStats are the aggregate statistics of one full-circuit choice
// vector (one candidate picked per block) that selection objectives may
// score.
type ChoiceStats struct {
	// CNOTs is the total CNOT-equivalent two-qubit gate count.
	CNOTs int
	// Gates1Q is the total one-qubit gate count.
	Gates1Q int
	// EpsSum is Σε, the Sec. 3.8 upper bound on the full-circuit process
	// distance.
	EpsSum float64
}

// CircuitInfo is the per-run context an Objective scores against.
type CircuitInfo struct {
	// NumQubits is the original circuit's width (every qubit is measured).
	NumQubits int
	// OrigCNOTs is the original circuit's CNOT count, clamped to at least
	// 1 so normalization never divides by zero.
	OrigCNOTs int
}

// Objective scores one feasible choice vector during annealing selection;
// lower is better. Implementations must be deterministic pure functions
// of their inputs — the annealer re-evaluates choices and the artifact
// fingerprint assumes a spec uniquely identifies the scoring function.
//
// Contract: feasible choices must score in [0, 1] so the infeasibility
// penalty (1 + threshold excess, applied by the selection stage before
// the objective is consulted) stays strictly worse than every feasible
// choice. The selection stage blends the objective's cost with ensemble
// dissimilarity using CXWeight exactly as Algorithm 1 blends its CNOT
// term, so a new objective changes *what* is optimized, not *how*.
type Objective interface {
	// Spec is the canonical objective spec string ("cnot",
	// "fidelity:manila", "hybrid:0.5:manila", ...). It enters selectKey
	// and therefore every selection-artifact fingerprint.
	Spec() string
	// Cost scores a feasible choice; lower is better.
	Cost(s ChoiceStats, info CircuitInfo) float64
}

// cnotObjective is the paper's objective: CNOT count normalized by the
// original circuit's. The arithmetic is kept bit-identical to the
// pre-refactor hard-wired energy (float64(CNOTs)/float64(OrigCNOTs)); the
// golden tests pin this.
type cnotObjective struct{}

func (cnotObjective) Spec() string { return "cnot" }
func (cnotObjective) Cost(s ChoiceStats, info CircuitInfo) float64 {
	return float64(s.CNOTs) / float64(info.OrigCNOTs)
}

// CNOTObjective returns the default selection objective: minimize the
// normalized CNOT count (QUEST Sec. 3.6).
func CNOTObjective() Objective { return cnotObjective{} }

// fidelityObjective scores a choice by predicted *end-to-end* output
// infidelity on a device: 1 − F_device · F_approx, where F_device is the
// ESP estimate of running the candidate gates on the device profile and
// F_approx = max(0, 1−Σε) discounts the approximation error itself. Both
// factors live in [0,1], so the cost does too. Minimizing it trades extra
// approximation error for saved gate error exactly when the device model
// says the trade wins — the arXiv:2108.12714 selection rule.
type fidelityObjective struct {
	spec    string
	profile fidelity.Profile
}

func (o fidelityObjective) Spec() string { return o.spec }
func (o fidelityObjective) Cost(s ChoiceStats, info CircuitInfo) float64 {
	dev := math.Exp(o.profile.LogEstimate(fidelity.Counts{
		OneQubit: s.Gates1Q,
		TwoQubit: s.CNOTs,
		Measured: info.NumQubits,
	}))
	approx := 1 - s.EpsSum
	if approx < 0 {
		approx = 0
	}
	return 1 - dev*approx
}

// FidelityObjective returns the predicted-fidelity objective over a
// device noise profile. The spec must be the canonical string the caller
// resolved the profile from (e.g. "fidelity:manila"): it fingerprints the
// objective in selection artifacts.
func FidelityObjective(spec string, p fidelity.Profile) (Objective, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: objective %q: %w", spec, err)
	}
	return fidelityObjective{spec: spec, profile: p}, nil
}

// hybridObjective blends the CNOT and fidelity costs with weight w on the
// CNOT term. Both components are in [0,1] for feasible choices with
// CNOTs ≤ OrigCNOTs, so the blend respects the Objective range contract.
type hybridObjective struct {
	spec string
	w    float64
	fid  fidelityObjective
}

func (o hybridObjective) Spec() string { return o.spec }
func (o hybridObjective) Cost(s ChoiceStats, info CircuitInfo) float64 {
	return o.w*cnotObjective{}.Cost(s, info) + (1-o.w)*o.fid.Cost(s, info)
}

// HybridObjective returns the w·cnot + (1−w)·fidelity blend. w must lie
// in [0,1]; the spec is the canonical string (e.g. "hybrid:0.5:manila").
func HybridObjective(spec string, w float64, p fidelity.Profile) (Objective, error) {
	if math.IsNaN(w) || w < 0 || w > 1 {
		return nil, fmt.Errorf("pipeline: objective %q: weight %v outside [0,1]", spec, w)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: objective %q: %w", spec, err)
	}
	return hybridObjective{spec: spec, w: w, fid: fidelityObjective{profile: p}}, nil
}
