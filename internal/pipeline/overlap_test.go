package pipeline

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/algos"
	"repro/internal/budget"
	"repro/internal/circuit"
	"repro/internal/faultinject"
	"repro/internal/par"
)

// assertArtifactsEqual is the golden comparison for the overlapped path's
// bit-identity claim: every field of the SynthesisArtifact chain except
// wall-clock telemetry must match the staged artifact exactly — blocks,
// thresholds, candidates (circuits, distances, CNOT counts), the raw
// harvest, pairwise distances, degradations, and keys.
func assertArtifactsEqual(t *testing.T, staged, overlapped *SynthesisArtifact) {
	t.Helper()
	sp, op := staged.Partition, overlapped.Partition
	if !reflect.DeepEqual(sp.Blocks, op.Blocks) {
		t.Fatal("partition blocks differ between staged and overlapped paths")
	}
	if sp.Threshold != op.Threshold || sp.Key != op.Key {
		t.Fatalf("partition threshold/key differ: %g/%q vs %g/%q",
			sp.Threshold, sp.Key, op.Threshold, op.Key)
	}
	if !reflect.DeepEqual(staged.Blocks, overlapped.Blocks) {
		t.Fatal("synthesized blocks differ between staged and overlapped paths")
	}
	if !reflect.DeepEqual(staged.Degradations, overlapped.Degradations) {
		t.Fatalf("degradations differ: %v vs %v", staged.Degradations, overlapped.Degradations)
	}
	if staged.Key != overlapped.Key {
		t.Fatalf("synthesis keys differ: %q vs %q", staged.Key, overlapped.Key)
	}
	if staged.CacheStats != overlapped.CacheStats {
		t.Fatalf("cache stats differ: %+v vs %+v", staged.CacheStats, overlapped.CacheStats)
	}
}

// TestOverlapMatchesStagedGolden is the tentpole's acceptance test: the
// streaming partition+synthesis fusion must produce bit-identical
// artifacts to the staged composition — through selection — on circuits
// with different block structures.
func TestOverlapMatchesStagedGolden(t *testing.T) {
	cases := map[string]*circuit.Circuit{
		"tfim":       algos.TFIM(4, 3, 0.1, 1, 1),
		"heisenberg": algos.Heisenberg(4, 2, 0.1, 1, 1),
		"xy5":        algos.XY(5, 2, 0.1, 1),
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			staged, err := Synthesize(context.Background(), c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Overlap = true
			overlapped, err := Synthesize(context.Background(), c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertArtifactsEqual(t, staged, overlapped)

			// And through selection: the full composed pipelines agree.
			selStaged, err := SelectionStage(cfg).Run(context.Background(), staged)
			if err != nil {
				t.Fatal(err)
			}
			selOverlap, err := SelectionStage(cfg).Run(context.Background(), overlapped)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(selStaged.Selected, selOverlap.Selected) {
				t.Fatal("selected approximations differ between staged and overlapped paths")
			}
		})
	}
}

// TestOverlapQualityDegradationGolden forces block 1 to fail every
// synthesis attempt and asserts both paths degrade it identically (same
// block, same attempt count, same reason, exact-only candidate set).
func TestOverlapQualityDegradationGolden(t *testing.T) {
	restore := faultinject.Set("core.block.1", faultinject.FailAlways(errors.New("injected synth failure")))
	defer restore()

	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	staged, err := Synthesize(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = true
	overlapped, err := Synthesize(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(staged.Degradations) == 0 {
		t.Fatal("fault injection produced no degradation")
	}
	assertArtifactsEqual(t, staged, overlapped)
}

// TestOverlapRunCtx exercises the public entry point with Overlap set:
// RunCtx must route through the fused stage and produce the same Result
// as the staged default.
func TestOverlapRunCtx(t *testing.T) {
	c := algos.TFIM(4, 2, 0.1, 1, 1)
	cfg := testConfig()
	rs, err := RunCtx(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = true
	ro, err := RunCtx(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs.Selected, ro.Selected) {
		t.Fatal("RunCtx results differ between staged and overlapped paths")
	}
	if ro.Timing.Partition <= 0 || ro.Timing.Synthesis <= 0 {
		t.Errorf("overlapped timing not recorded: %+v", ro.Timing)
	}
}

// TestOverlapSharedSchedulerGolden runs several overlapped compilations
// concurrently against ONE shared scheduler pool and asserts each result
// is bit-identical to its solo staged run — the cross-circuit scheduler
// must never change outputs, only wall-clock.
func TestOverlapSharedSchedulerGolden(t *testing.T) {
	circuits := []*circuit.Circuit{
		algos.TFIM(4, 2, 0.1, 1, 1),
		algos.Heisenberg(4, 2, 0.1, 1, 1),
		algos.XY(4, 2, 0.1, 1),
	}
	base := testConfig()
	want := make([]*SynthesisArtifact, len(circuits))
	for i, c := range circuits {
		art, err := Synthesize(context.Background(), c, base)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = art
	}

	pool := par.NewPool(3)
	got := make([]*SynthesisArtifact, len(circuits))
	errs := make([]error, len(circuits))
	done := make(chan int, len(circuits))
	for i, c := range circuits {
		go func(i int, c *circuit.Circuit) {
			cfg := base
			cfg.Overlap = true
			cfg.Scheduler = pool
			got[i], errs[i] = Synthesize(context.Background(), c, cfg)
			done <- i
		}(i, c)
	}
	for range circuits {
		<-done
	}
	for i := range circuits {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		assertArtifactsEqual(t, want[i], got[i])
	}
}

// TestOverlapCancelNoGoroutineLeak is the overlapped twin of
// TestCancelMidSynthesisNoGoroutineLeak: cancelling mid-flight must
// surface budget.ErrCancelled and unwind the producer goroutine and
// every consumer.
func TestOverlapCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cfg.Parallelism = 2
	cfg.Overlap = true

	restore := faultinject.Set("core.block.0", faultinject.Stall(150*time.Millisecond))
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := Synthesize(ctx, c, cfg)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, budget.ErrCancelled) {
			t.Fatalf("err = %v, want budget.ErrCancelled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("overlapped Synthesize did not return after cancellation")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancelled overlapped synthesis: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOverlapBudgetDegraded expires the run budget mid-synthesis with
// AllowDegraded set: the overlapped path must still return a valid,
// fully-populated result — every block present with at least its exact
// candidate — exactly like the staged path's degradation contract.
func TestOverlapBudgetDegraded(t *testing.T) {
	restore := faultinject.Set("core.block.0", faultinject.Stall(100*time.Millisecond))
	defer restore()

	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cfg.Overlap = true
	cfg.AllowDegraded = true
	cfg.Timeout = 50 * time.Millisecond

	res, err := RunCtx(context.Background(), c, cfg)
	if err != nil {
		t.Fatalf("AllowDegraded run failed: %v", err)
	}
	if len(res.Degradations) == 0 {
		t.Fatal("expired budget produced no degradations")
	}
	for i, ba := range res.Blocks {
		if len(ba.Candidates) == 0 {
			t.Fatalf("block %d has no candidates in degraded result", i)
		}
	}
	if len(res.Selected) == 0 {
		t.Fatal("degraded result selected nothing")
	}
}

// TestOverlapRejectsBadCircuit: structural partition errors must surface
// from the pre-pass, before any goroutine spawns.
func TestOverlapRejectsBadCircuit(t *testing.T) {
	c := algos.TFIM(4, 2, 0.1, 1, 1)
	cfg := testConfig()
	cfg.Overlap = true
	cfg.BlockSize = 1 // 2-qubit gates cannot fit
	if _, err := Synthesize(context.Background(), c, cfg); err == nil {
		t.Fatal("oversized ops accepted")
	}
}
