package pipeline

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sync"

	"repro/internal/budget"
	"repro/internal/circuit"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/ucache"
)

// OverlappedSynthesisStage fuses STEP 1 and STEP 2 into one streaming
// stage: partition.Stream emits each block the moment the scan proves it
// closed, and a consumer pool synthesizes blocks as they arrive — block 0
// is searching while the scanner is still walking the circuit's tail,
// instead of waiting behind the full-materialize barrier the staged
// composition has.
//
// The output is bit-identical to Then(PartitionStage(cfg),
// SynthesisStage(cfg)) — same blocks (Stream ≡ Scan), same per-block
// searches (content-derived seeds, the full-circuit threshold is fixed up
// front by a cheap partition.Count pre-pass), same degradation and cache
// semantics — asserted by the overlapped-vs-staged golden test. Only
// wall-clock and Elapsed telemetry differ.
//
// Concurrency: consumers come from Config.Scheduler when set (the shared
// cross-run pool), otherwise from a private Parallelism-sized group, with
// par's semantics: slot-write determinism, error-by-lowest-index, panics
// surfaced as *par.PanicError, typed budget errors. With AllowDegraded
// the scan still runs to completion on an expired budget (the degraded
// result needs the full block structure), exactly like PartitionStage.
func OverlappedSynthesisStage(cfg Config) Stage[*circuit.Circuit, *SynthesisArtifact] {
	cfg.defaults()
	return NewStage("partition+synthesis(overlap)", func(ctx context.Context, c *circuit.Circuit) (*SynthesisArtifact, error) {
		partElapsed := stageClock()
		if err := budget.Check(ctx); err != nil && !cfg.AllowDegraded {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		// The pre-pass fixes the block count — and with it the
		// full-circuit threshold every per-block filter needs — without
		// materializing a single block. It also surfaces structural
		// errors (too-wide ops) before any goroutine exists.
		n, err := partition.Count(c, cfg.BlockSize)
		if err != nil {
			return nil, fmt.Errorf("pipeline: partition: %w", err)
		}
		pa := &PartitionArtifact{
			Original:  c,
			Blocks:    make([]partition.Block, n),
			Threshold: math.Min(cfg.Epsilon*float64(n), cfg.ThresholdCap),
			Key:       cfg.partitionKey(),
		}
		var statsBefore ucache.Stats
		if cfg.SynthCache != nil {
			statsBefore = cfg.SynthCache.Stats()
		}
		synthElapsed := stageClock()
		art := &SynthesisArtifact{
			Partition: pa,
			Blocks:    make([]BlockApproximations, n),
			Cfg:       cfg,
			Key:       cfg.synthKey(),
		}
		degs := make([]*Degradation, n)

		gctx, cancel := context.WithCancel(ctx)
		defer cancel()

		// Producer: the scan runs on its own goroutine, emitting block
		// indices as they close. The channel is buffered to the full
		// block count, so the producer never blocks on a slow consumer
		// and always runs the scan to completion or error; consumers
		// range to channel close, so no goroutine can leak under any
		// cancellation order.
		items := make(chan int, n)
		prodDone := make(chan error, 1)
		sctx := gctx
		if cfg.AllowDegraded {
			// Degradation needs every block's exact circuit: the scan
			// must finish even after the run budget expires, exactly as
			// PartitionStage runs on an expired budget.
			sctx = context.WithoutCancel(ctx)
		}
		go func() {
			i := 0
			err := partition.Stream(sctx, c, cfg.BlockSize, func(b partition.Block) error {
				pa.Blocks[i] = b
				items <- i // buffered to n: never blocks
				i++
				return nil
			})
			pa.Elapsed = partElapsed()
			close(items)
			prodDone <- err
		}()

		// Consumers: synthesize blocks as they arrive. Slot-write
		// determinism (block i writes only art.Blocks[i]/degs[i]/errs[i])
		// makes results independent of arrival interleaving.
		workers := par.Workers(cfg.Parallelism)
		if cfg.Scheduler != nil {
			workers = cfg.Scheduler.Size()
		}
		if workers > n {
			workers = n
		}
		errs := make([]error, n)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(worker int) {
				defer wg.Done()
				for i := range items {
					if gctx.Err() != nil {
						continue // group failed: drain the channel cheaply
					}
					if cfg.Scheduler != nil {
						if err := cfg.Scheduler.Acquire(gctx); err != nil {
							continue
						}
					}
					err := protectBlock(gctx, worker, i, func(bctx context.Context, i int) error {
						ba, deg, err := synthesizeBlock(bctx, i, pa.Blocks[i], cfg, pa.Threshold)
						if err != nil {
							return fmt.Errorf("synthesize block %d: %w", i, err)
						}
						art.Blocks[i] = ba
						degs[i] = deg
						return nil
					})
					if cfg.Scheduler != nil {
						cfg.Scheduler.Release()
					}
					if err != nil {
						errs[i] = err
						cancel() // siblings drain at their next check
					}
				}
			}(w)
		}
		wg.Wait()
		prodErr := <-prodDone

		if prodErr != nil {
			if budget.Terminated(prodErr) {
				return nil, fmt.Errorf("pipeline: %w", prodErr)
			}
			return nil, fmt.Errorf("pipeline: partition: %w", prodErr)
		}
		synthErr := firstError(errs)
		if synthErr == nil {
			// Consumers may have skipped indices if the parent budget
			// expired after the last error check; report it like
			// par.ForEachErr does.
			synthErr = budget.Check(ctx)
		}
		if cfg.SynthCache != nil {
			art.CacheStats = cfg.SynthCache.Stats().Sub(statsBefore)
		}
		if synthErr != nil {
			if !budget.Terminated(synthErr) || !cfg.AllowDegraded {
				return nil, fmt.Errorf("pipeline: %w", synthErr)
			}
			// Budget expired with AllowDegraded: every unfinished block
			// degrades to its exact circuit so the result stays valid.
			for i := range art.Blocks {
				if art.Blocks[i].Candidates == nil {
					art.Blocks[i] = exactOnlyBlock(pa.Blocks[i])
					degs[i] = &Degradation{
						Block:    i,
						Qubits:   pa.Blocks[i].Qubits,
						Attempts: 0,
						Reason:   "run budget exhausted: " + synthErr.Error(),
					}
				}
			}
		}
		for _, d := range degs {
			if d != nil {
				art.Degradations = append(art.Degradations, *d)
			}
		}
		art.Elapsed = synthElapsed()
		return art, nil
	})
}

// firstError returns the lowest-index error, the same deterministic
// choice par.ForEachErr makes.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// protectBlock runs one consumer step with par's panic isolation.
func protectBlock(ctx context.Context, worker, index int, fn func(context.Context, int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &par.PanicError{Worker: worker, Index: index, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, index)
}
