package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/algos"
	"repro/internal/anneal"
	"repro/internal/budget"
	"repro/internal/faultinject"
)

// TestSentinelsRoundTripPipelineWrapShapes pins the wrapping contract:
// every budget sentinel must survive errors.Is through the exact
// fmt.Errorf shapes the pipeline stacks on top of it, and must never
// alias another sentinel.
func TestSentinelsRoundTripPipelineWrapShapes(t *testing.T) {
	sentinels := []error{budget.ErrDeadline, budget.ErrCancelled, budget.ErrNoConvergence}
	wraps := []func(error) error{
		// synthesizeBlock's retry-exhaustion shape (stages.go).
		func(err error) error { return fmt.Errorf("block budget exhausted after %d attempts: %w", 3, err) },
		// SynthesisStage's per-block shape under ForEachErr.
		func(err error) error { return fmt.Errorf("synthesize block %d: %w", 1, err) },
		// The stage-level prefix every hard failure leaves with.
		func(err error) error { return fmt.Errorf("pipeline: %w", err) },
	}
	for _, sentinel := range sentinels {
		err := sentinel
		for depth, wrap := range wraps {
			err = wrap(err)
			if !errors.Is(err, sentinel) {
				t.Errorf("%v lost through %d wrap layer(s): %v", sentinel, depth+1, err)
			}
			for _, other := range sentinels {
				if other != sentinel && errors.Is(err, other) {
					t.Errorf("wrapped %v also matches %v", sentinel, other)
				}
			}
		}
		wantTerminated := sentinel != budget.ErrNoConvergence
		if got := budget.Terminated(err); got != wantTerminated {
			t.Errorf("Terminated(wrapped %v) = %v, want %v", sentinel, got, wantTerminated)
		}
	}
}

// TestRunCtxDeadlineDiscriminatesSentinels asserts the full-pipeline
// deadline error classifies as ErrDeadline and ONLY ErrDeadline.
func TestRunCtxDeadlineDiscriminatesSentinels(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline actually expire
	_, err := RunCtx(ctx, algos.TFIM(4, 3, 0.1, 1, 1), testConfig())
	if !errors.Is(err, budget.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if errors.Is(err, budget.ErrCancelled) || errors.Is(err, budget.ErrNoConvergence) {
		t.Errorf("deadline error also matches another sentinel: %v", err)
	}
	if !budget.Terminated(err) {
		t.Errorf("Terminated(%v) = false, want true", err)
	}
}

// TestRunCtxCancelDiscriminatesSentinels is the cancellation twin.
func TestRunCtxCancelDiscriminatesSentinels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, algos.TFIM(4, 3, 0.1, 1, 1), testConfig())
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if errors.Is(err, budget.ErrDeadline) || errors.Is(err, budget.ErrNoConvergence) {
		t.Errorf("cancellation error also matches another sentinel: %v", err)
	}
	if !budget.Terminated(err) {
		t.Errorf("Terminated(%v) = false, want true", err)
	}
}

// TestAnnealLayerRoundTripsSentinels drives anneal.MinimizeCtx — the
// deepest wrapping layer under SelectionStage — with an expired and a
// cancelled context and asserts the typed sentinel survives the extra
// fmt.Errorf layer the selection loop would add.
func TestAnnealLayerRoundTripsSentinels(t *testing.T) {
	f := func(x []float64) float64 { return x[0] * x[0] }
	lower, upper := []float64{-1}, []float64{1}

	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	time.Sleep(time.Millisecond)
	_, err := anneal.MinimizeCtx(dctx, f, lower, upper, anneal.Options{MaxIterations: 100, Seed: 1})
	if !errors.Is(fmt.Errorf("pipeline: %w", err), budget.ErrDeadline) {
		t.Errorf("anneal deadline err = %v, want ErrDeadline through a wrap", err)
	}

	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	_, err = anneal.MinimizeCtx(cctx, f, lower, upper, anneal.Options{MaxIterations: 100, Seed: 1})
	if !errors.Is(fmt.Errorf("pipeline: %w", err), budget.ErrCancelled) {
		t.Errorf("anneal cancel err = %v, want ErrCancelled through a wrap", err)
	}
}

// TestNoConvergenceIsRetryableNotTerminal injects ErrNoConvergence into
// every synthesis attempt of one block: the pipeline must treat it as a
// quality failure (retry, then degrade and succeed), never as a
// termination sentinel, and the degradation reason must carry the
// sentinel's text for the operator.
func TestNoConvergenceIsRetryableNotTerminal(t *testing.T) {
	restore := faultinject.Set("core.block.0", faultinject.FailAlways(
		fmt.Errorf("synth attempt: %w", budget.ErrNoConvergence)))
	defer restore()

	res, err := Run(algos.TFIM(4, 2, 0.1, 1, 1), testConfig())
	if err != nil {
		t.Fatalf("Run = %v, want degraded success (ErrNoConvergence is retryable)", err)
	}
	found := false
	for _, d := range res.Degradations {
		if d.Block == 0 {
			found = true
			if !strings.Contains(d.Reason, budget.ErrNoConvergence.Error()) {
				t.Errorf("degradation reason %q does not mention %q", d.Reason, budget.ErrNoConvergence)
			}
		}
	}
	if !found {
		t.Fatal("block 0 did not degrade despite failing every attempt")
	}
}
