package pipeline

import "time"

// stageClock is the ONLY place the pipeline reads the wall clock. The
// Elapsed fields on artifacts are operator telemetry — they never feed a
// computation, a fingerprint key, or a golden output (the 13-case golden
// test pins everything result-shaped and ignores Elapsed) — so the
// determinism invariant is suppressed here, once, with the audit trail
// below, instead of at every stage. Usage:
//
//	elapsed := stageClock()
//	... do the stage's work ...
//	art.Elapsed = elapsed()
func stageClock() func() time.Duration {
	// lint:ignore determinism Elapsed is wall-clock telemetry only; it never feeds results, artifact keys, or golden outputs
	t0 := time.Now()
	return func() time.Duration {
		// lint:ignore determinism see stageClock: telemetry-only read, centralized so stages stay clock-free
		return time.Since(t0)
	}
}
