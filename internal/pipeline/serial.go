package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/partition"
	"repro/internal/qasm"
	"repro/internal/sim"
	"repro/internal/synth"
)

// The on-disk SynthesisArtifact encoding: JSON with circuits as OpenQASM
// 2.0 (the writer prints parameters with %.17g, so float64 round-trips
// bit-exactly) and distances as plain JSON numbers (encoding/json emits
// the shortest representation that round-trips a float64 exactly).
// Unitaries and pairwise candidate distances are NOT stored: both are
// deterministic functions of the circuits and are recomputed on load, so
// a loaded artifact Reselects bit-identically to the artifact it was
// saved from.

const synthArtifactVersion = 1

type candJSON struct {
	QASM     string  `json:"qasm"`
	Distance float64 `json:"distance"`
	CNOTs    int     `json:"cnots"`
}

type blockJSON struct {
	Qubits     []int      `json:"qubits"`
	QASM       string     `json:"qasm"`
	Candidates []candJSON `json:"candidates"`
	// Raw is the unpruned harvest Reselect re-filters; empty for
	// degraded blocks.
	Raw []candJSON `json:"raw,omitempty"`
}

type synthArtifactJSON struct {
	Version      int           `json:"version"`
	Key          string        `json:"key"`
	PartitionKey string        `json:"partition_key"`
	BlockSize    int           `json:"block_size"`
	Epsilon      float64       `json:"epsilon"`
	ThresholdCap float64       `json:"threshold_cap"`
	Seed         int64         `json:"seed"`
	Threshold    float64       `json:"threshold"`
	Original     string        `json:"original"`
	Blocks       []blockJSON   `json:"blocks"`
	Degradations []Degradation `json:"degradations,omitempty"`
	ElapsedNS    int64         `json:"elapsed_ns"`
	PartElapsed  int64         `json:"partition_elapsed_ns"`
}

func encodeCands(cands []synth.Candidate) []candJSON {
	out := make([]candJSON, len(cands))
	for i, c := range cands {
		out[i] = candJSON{QASM: qasm.Write(c.Circuit), Distance: c.Distance, CNOTs: c.CNOTs}
	}
	return out
}

func decodeCands(cands []candJSON) ([]synth.Candidate, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	out := make([]synth.Candidate, len(cands))
	for i, c := range cands {
		circ, err := qasm.Parse(c.QASM)
		if err != nil {
			return nil, fmt.Errorf("candidate %d: %w", i, err)
		}
		out[i] = synth.Candidate{Circuit: circ, Distance: c.Distance, CNOTs: c.CNOTs}
	}
	return out, nil
}

// Save writes the artifact in its portable JSON encoding, so an expensive
// synthesis pass can be computed once (per suite, per CI shard, per
// machine) and re-selected against many configurations later.
func (art *SynthesisArtifact) Save(w io.Writer) error {
	doc := synthArtifactJSON{
		Version:      synthArtifactVersion,
		Key:          art.Key,
		PartitionKey: art.Partition.Key,
		BlockSize:    art.Cfg.BlockSize,
		Epsilon:      art.Cfg.Epsilon,
		ThresholdCap: art.Cfg.ThresholdCap,
		Seed:         art.Cfg.Seed,
		Threshold:    art.Partition.Threshold,
		Original:     qasm.Write(art.Partition.Original),
		Degradations: art.Degradations,
		ElapsedNS:    art.Elapsed.Nanoseconds(),
		PartElapsed:  art.Partition.Elapsed.Nanoseconds(),
	}
	for _, ba := range art.Blocks {
		doc.Blocks = append(doc.Blocks, blockJSON{
			Qubits:     ba.Block.Qubits,
			QASM:       qasm.Write(ba.Block.Circuit),
			Candidates: encodeCands(ba.Candidates),
			Raw:        encodeCands(ba.all),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// LoadSynthesis reads an artifact saved with Save. Circuits, unitaries
// and pairwise candidate distances are reconstructed deterministically;
// the result Reselects bit-identically to the saved artifact.
func LoadSynthesis(r io.Reader) (*SynthesisArtifact, error) {
	var doc synthArtifactJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("pipeline: load artifact: %w", err)
	}
	if doc.Version != synthArtifactVersion {
		return nil, fmt.Errorf("pipeline: load artifact: unsupported version %d", doc.Version)
	}
	orig, err := qasm.Parse(doc.Original)
	if err != nil {
		return nil, fmt.Errorf("pipeline: load artifact: original: %w", err)
	}
	cfg := Config{
		BlockSize:    doc.BlockSize,
		Epsilon:      doc.Epsilon,
		ThresholdCap: doc.ThresholdCap,
		Seed:         doc.Seed,
	}
	cfg.defaults()
	art := &SynthesisArtifact{
		Partition: &PartitionArtifact{
			Original:  orig,
			Threshold: doc.Threshold,
			Key:       doc.PartitionKey,
			Elapsed:   time.Duration(doc.PartElapsed),
		},
		Degradations: doc.Degradations,
		Cfg:          cfg,
		Key:          doc.Key,
		Elapsed:      time.Duration(doc.ElapsedNS),
	}
	for i, bj := range doc.Blocks {
		bc, err := qasm.Parse(bj.QASM)
		if err != nil {
			return nil, fmt.Errorf("pipeline: load artifact: block %d: %w", i, err)
		}
		cands, err := decodeCands(bj.Candidates)
		if err != nil {
			return nil, fmt.Errorf("pipeline: load artifact: block %d: %w", i, err)
		}
		raw, err := decodeCands(bj.Raw)
		if err != nil {
			return nil, fmt.Errorf("pipeline: load artifact: block %d raw: %w", i, err)
		}
		blk := partition.Block{Qubits: bj.Qubits, Circuit: bc}
		ba := BlockApproximations{
			Block:      blk,
			Unitary:    sim.Unitary(bc),
			Candidates: cands,
			all:        raw,
		}
		ba.pairDist = pairDistances(cands, cfg.Parallelism)
		art.Blocks = append(art.Blocks, ba)
		art.Partition.Blocks = append(art.Partition.Blocks, blk)
	}
	return art, nil
}
