package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/algos"
	"repro/internal/budget"
	"repro/internal/circuit"
	"repro/internal/faultinject"
	"repro/internal/linalg"
	"repro/internal/par"
	"repro/internal/sim"
)

func TestRunCtxDeadlineReturnsTypedErrorQuickly(t *testing.T) {
	// A Table-1 style benchmark under a deadline far below its synthesis
	// cost must fail with an ErrDeadline-wrapped error, promptly: every
	// inner loop checks the budget, so the only slack is finishing the
	// current optimizer iteration. The deadline must be unwinnable on
	// any hardware — a fast machine finishes this whole run in tens of
	// milliseconds, so anything close to that races the synthesis.
	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cfg.Timeout = time.Millisecond

	start := time.Now()
	res, err := RunCtx(context.Background(), c, cfg)
	elapsed := time.Since(start)

	if !errors.Is(err, budget.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res != nil {
		t.Error("result should be nil on a hard deadline failure")
	}
	// Allow generous slack over the deadline so CI scheduling jitter
	// cannot flake the test; even the loose bound proves the deadline
	// cut the run short rather than letting it finish.
	if elapsed > 500*time.Millisecond {
		t.Errorf("run took %v after a 1ms deadline", elapsed)
	}
}

func TestRunCtxCancelledReturnsTypedError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, algos.TFIM(4, 3, 0.1, 1, 1), testConfig())
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

func TestRunCtxDeadlineAllowDegradedYieldsValidResult(t *testing.T) {
	// With AllowDegraded, a deadline that expires before any block can
	// synthesize degrades every block to its exact circuit: the run
	// succeeds, reports the degradations, and the (single, fallback)
	// selected approximation is unitarily equivalent to the original.
	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cfg.Timeout = time.Millisecond
	cfg.AllowDegraded = true

	res, err := RunCtx(context.Background(), c, cfg)
	if err != nil {
		t.Fatalf("RunCtx = %v, want degraded success", err)
	}
	if len(res.Blocks) == 0 {
		t.Fatal("no blocks")
	}
	if len(res.Degradations) == 0 {
		t.Fatal("no degradations recorded despite a 1ms budget")
	}
	if len(res.Selected) == 0 {
		t.Fatal("no approximation selected")
	}
	for _, d := range res.Degradations {
		if d.Block < 0 || d.Block >= len(res.Blocks) {
			t.Errorf("degradation names block %d of %d", d.Block, len(res.Blocks))
		}
		if d.Reason == "" {
			t.Error("degradation has empty reason")
		}
	}
	for i, a := range res.Selected {
		if a.Circuit.NumQubits != c.NumQubits {
			t.Errorf("approximation %d has %d qubits, want %d", i, a.Circuit.NumQubits, c.NumQubits)
		}
		if a.EpsilonSum > res.Threshold+1e-12 {
			t.Errorf("approximation %d epsilon sum %g > threshold %g", i, a.EpsilonSum, res.Threshold)
		}
	}
	// Fully degraded ⇒ the assembled circuit implements the original
	// unitary exactly (every block substituted its own circuit).
	if len(res.Degradations) == len(res.Blocks) {
		d := linalg.HSDistance(sim.Unitary(c), sim.Unitary(res.Selected[0].Circuit))
		if d > 1e-6 {
			t.Errorf("fully degraded approximation has distance %g from original", d)
		}
	}
}

func TestRunDegradesFaultInjectedBlock(t *testing.T) {
	// Force block 1 to fail every synthesis attempt with a retryable
	// error: the pipeline must retry MaxRestarts times, then substitute
	// the exact block, record the degradation, and still succeed.
	restore := faultinject.Set("core.block.1", faultinject.FailAlways(budget.ErrNoConvergence))
	defer restore()

	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cfg.MaxRestarts = 2

	res, err := Run(c, cfg)
	if err != nil {
		t.Fatalf("Run = %v, want degraded success", err)
	}
	if len(res.Blocks) < 2 {
		t.Fatalf("want at least 2 blocks, got %d", len(res.Blocks))
	}
	if len(res.Degradations) != 1 {
		t.Fatalf("degradations = %+v, want exactly one", res.Degradations)
	}
	d := res.Degradations[0]
	if d.Block != 1 {
		t.Errorf("degraded block = %d, want 1", d.Block)
	}
	if d.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + MaxRestarts)", d.Attempts)
	}
	if !strings.Contains(d.Reason, "no convergence") {
		t.Errorf("reason %q does not name the failure", d.Reason)
	}
	ba := res.Blocks[1]
	if len(ba.Candidates) != 1 || ba.Candidates[0].Distance != 0 {
		t.Errorf("degraded block candidates = %+v, want single exact candidate", ba.Candidates)
	}
	if len(res.Selected) == 0 {
		t.Fatal("no approximation selected")
	}
	for i, a := range res.Selected {
		if a.Circuit.NumQubits != c.NumQubits {
			t.Errorf("approximation %d has %d qubits", i, a.Circuit.NumQubits)
		}
	}
}

func TestRunSurfacesWorkerPanicWithContext(t *testing.T) {
	// A panic inside a synthesis worker must not kill the process: it is
	// recovered into a *par.PanicError carrying the worker index, item
	// index, panic value, and stack, and surfaced as the run's error.
	restore := faultinject.Set("core.block.0", faultinject.PanicOnCall(1, "injected crash"))
	defer restore()

	_, err := Run(algos.TFIM(4, 3, 0.1, 1, 1), testConfig())
	if err == nil {
		t.Fatal("Run succeeded despite an injected worker panic")
	}
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *par.PanicError in the chain", err)
	}
	if pe.Value != "injected crash" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if pe.Worker < 0 {
		t.Errorf("worker index = %d", pe.Worker)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error lacks a stack trace")
	}
	if !strings.Contains(err.Error(), "worker") {
		t.Errorf("error text %q does not mention the worker", err)
	}
}

func TestRunBlockTimeoutWithoutAllowDegradedFails(t *testing.T) {
	// A per-block budget too small for any attempt is a hard error when
	// degradation was not opted into.
	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cfg.BlockTimeout = time.Microsecond
	cfg.MaxRestarts = 1

	_, err := Run(c, cfg)
	if !errors.Is(err, budget.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestEnsembleProbabilitiesCtxCancelledAndPanicIsolated(t *testing.T) {
	c := algos.TFIM(4, 2, 0.1, 1, 1)
	res, err := Run(c, testConfig())
	if err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err = res.EnsembleProbabilitiesCtx(cancelled, func(context.Context, *circuit.Circuit) ([]float64, error) {
		ran = true
		return nil, nil
	}, 2)
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if ran {
		t.Error("runner ran under a cancelled context")
	}

	_, err = res.EnsembleProbabilitiesCtx(context.Background(), func(context.Context, *circuit.Circuit) ([]float64, error) {
		panic("backend exploded")
	}, 2)
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *par.PanicError", err)
	}
	if pe.Value != "backend exploded" {
		t.Errorf("panic value = %v", pe.Value)
	}
}

func TestRunBlockTimeoutAllowDegradedSucceeds(t *testing.T) {
	c := algos.TFIM(4, 3, 0.1, 1, 1)
	cfg := testConfig()
	cfg.BlockTimeout = time.Microsecond
	cfg.MaxRestarts = -1 // single attempt per block
	cfg.AllowDegraded = true

	res, err := Run(c, cfg)
	if err != nil {
		t.Fatalf("Run = %v, want degraded success", err)
	}
	// The slow (3-qubit) blocks must fall back to their exact circuits.
	// Not every block: a context deadline only takes effect when a budget
	// check observes it, and a small block's synthesis legitimately
	// finishes inside that latency window — the faster the kernels get,
	// the more blocks slip through, so the count pinned here is only that
	// the degradation path fired at all.
	if len(res.Degradations) == 0 {
		t.Errorf("degradations = 0 of %d blocks, want the slow blocks to degrade", len(res.Blocks))
	}
	for _, d := range res.Degradations {
		if d.Reason == "" {
			t.Error("degradation with empty reason")
		}
	}
	if len(res.Selected) == 0 {
		t.Fatal("no approximation selected")
	}
}
