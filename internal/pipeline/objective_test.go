package pipeline

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/algos"
	"repro/internal/fidelity"
	"repro/internal/noise"
)

func manilaProfile() fidelity.Profile {
	return fidelity.FromNoiseModel(noise.Manila().Model)
}

// TestExplicitCNOTObjectiveIsDefault: a Config with Objective set to
// CNOTObjective() must produce bit-identical selections to the historical
// nil-Objective Config.
func TestExplicitCNOTObjectiveIsDefault(t *testing.T) {
	c, err := algos.Generate("tfim", 4)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{MaxSamples: 6, Seed: 3}
	withObj := base
	withObj.Objective = CNOTObjective()

	r1, err := Run(c, base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c, withObj)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Selected) != len(r2.Selected) {
		t.Fatalf("selected %d vs %d approximations", len(r1.Selected), len(r2.Selected))
	}
	for i := range r1.Selected {
		if !reflect.DeepEqual(r1.Selected[i].Choice, r2.Selected[i].Choice) {
			t.Errorf("sample %d: choice %v vs %v", i, r1.Selected[i].Choice, r2.Selected[i].Choice)
		}
		if math.Float64bits(r1.Selected[i].EpsilonSum) != math.Float64bits(r2.Selected[i].EpsilonSum) {
			t.Errorf("sample %d: Σε differs bitwise", i)
		}
	}
}

func TestCNOTObjectiveCost(t *testing.T) {
	obj := CNOTObjective()
	if obj.Spec() != "cnot" {
		t.Errorf("Spec = %q", obj.Spec())
	}
	got := obj.Cost(ChoiceStats{CNOTs: 18}, CircuitInfo{NumQubits: 4, OrigCNOTs: 24})
	if want := float64(18) / float64(24); got != want {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestFidelityObjectiveCost(t *testing.T) {
	p := manilaProfile()
	obj, err := FidelityObjective("fidelity:manila", p)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Spec() != "fidelity:manila" {
		t.Errorf("Spec = %q", obj.Spec())
	}
	st := ChoiceStats{CNOTs: 20, Gates1Q: 40, EpsSum: 0.1}
	info := CircuitInfo{NumQubits: 4, OrigCNOTs: 24}
	dev := p.Estimate(fidelity.Counts{OneQubit: 40, TwoQubit: 20, Measured: 4})
	want := 1 - dev*0.9
	if got := obj.Cost(st, info); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	// Feasible costs stay in [0,1] even when Σε exceeds 1.
	if got := obj.Cost(ChoiceStats{CNOTs: 5, EpsSum: 1.7}, info); got != 1 {
		t.Errorf("Cost with Σε>1 = %v, want 1", got)
	}

	// More CNOTs must cost more; more approximation error must cost more.
	base := obj.Cost(st, info)
	if c := obj.Cost(ChoiceStats{CNOTs: 25, Gates1Q: 40, EpsSum: 0.1}, info); c <= base {
		t.Error("extra CNOTs did not increase cost")
	}
	if c := obj.Cost(ChoiceStats{CNOTs: 20, Gates1Q: 40, EpsSum: 0.2}, info); c <= base {
		t.Error("extra approximation error did not increase cost")
	}

	if _, err := FidelityObjective("fidelity:bad", fidelity.Profile{OneQubit: -1}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestHybridObjectiveCost(t *testing.T) {
	p := manilaProfile()
	hyb, err := HybridObjective("hybrid:0.25:manila", 0.25, p)
	if err != nil {
		t.Fatal(err)
	}
	cnot := CNOTObjective()
	fid, err := FidelityObjective("fidelity:manila", p)
	if err != nil {
		t.Fatal(err)
	}
	st := ChoiceStats{CNOTs: 12, Gates1Q: 30, EpsSum: 0.05}
	info := CircuitInfo{NumQubits: 5, OrigCNOTs: 30}
	want := 0.25*cnot.Cost(st, info) + 0.75*fid.Cost(st, info)
	if got := hyb.Cost(st, info); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
	for _, w := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := HybridObjective("hybrid:x", w, p); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
}

// TestSelectKeyCarriesObjectiveSpec: switching objectives must invalidate
// selection artifacts (distinct selectKey) while leaving the synthesis
// fingerprint untouched (an objective switch is a cheap Reselect).
func TestSelectKeyCarriesObjectiveSpec(t *testing.T) {
	base := Config{}.Resolved()
	fid := base
	var err error
	fid.Objective, err = FidelityObjective("fidelity:manila", manilaProfile())
	if err != nil {
		t.Fatal(err)
	}
	if base.selectKey() == fid.selectKey() {
		t.Error("selectKey identical across objectives")
	}
	if !strings.Contains(base.selectKey(), "obj=cnot") {
		t.Errorf("default selectKey %q lacks obj=cnot", base.selectKey())
	}
	if !strings.Contains(fid.selectKey(), "obj=fidelity:manila") {
		t.Errorf("fidelity selectKey %q lacks the objective spec", fid.selectKey())
	}
	if base.synthKey() != fid.synthKey() {
		t.Error("synthKey differs across objectives; candidate harvest must be reusable")
	}
	// An unresolved config derives the same default spec.
	if got := (Config{}).objectiveSpec(); got != "cnot" {
		t.Errorf("unresolved objectiveSpec = %q", got)
	}
}

// TestReselectWithFidelityObjective: one SynthesisArtifact must serve
// both objectives, and the fidelity objective must produce a valid
// selection whose artifact key records the objective.
func TestReselectWithFidelityObjective(t *testing.T) {
	c, err := algos.Generate("tfim", 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cfg := Config{MaxSamples: 6, Seed: 3}
	sa, err := Synthesize(ctx, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reselect(ctx, sa, cfg); err != nil {
		t.Fatal(err)
	}
	fidCfg := cfg
	fidCfg.Objective, err = FidelityObjective("fidelity:manila", manilaProfile())
	if err != nil {
		t.Fatal(err)
	}
	fidSel, err := Reselect(ctx, sa, fidCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fidSel.Selected) == 0 {
		t.Fatal("fidelity objective selected nothing")
	}
	thr := fidSel.Threshold
	for i, ap := range fidSel.Selected {
		if ap.EpsilonSum > thr {
			t.Errorf("sample %d infeasible: Σε %v > %v", i, ap.EpsilonSum, thr)
		}
	}
}
