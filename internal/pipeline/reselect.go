package pipeline

import (
	"context"
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Synthesize runs the partition and synthesis stages only and returns the
// reusable SynthesisArtifact. It is the sweep-side entry point: compute
// the artifact once, then call Reselect for every (ε, M, CXWeight,
// AnnealIterations) point — the dominant synthesis cost (Fig. 12) is paid
// a single time.
func Synthesize(ctx context.Context, c *circuit.Circuit, cfg Config) (*SynthesisArtifact, error) {
	cfg.defaults()
	if c.Size() == 0 {
		return nil, fmt.Errorf("pipeline: empty circuit")
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	return synthesisFront(cfg).Run(ctx, c)
}

// Reselect re-runs the selection stage only, against a previously
// computed SynthesisArtifact, under a possibly different Config — the
// artifact-reuse contract behind ε/M sweeps (Fig. 16 and the
// ensemble-size ablation).
//
// Semantics:
//
//   - The artifact's block structure is authoritative: cfg.BlockSize must
//     match the artifact's (the blocks cannot be re-derived here).
//   - The full-circuit threshold is recomputed from cfg (Epsilon ×
//     blocks, capped at ThresholdCap) and every block's candidate set is
//     re-filtered from the artifact's raw synthesis harvest, re-anchored
//     with the exact circuit, and re-scored for the similarity rule —
//     through the same finishBlock path the primary pipeline uses. A
//     Reselect whose recomputed threshold equals the artifact's is
//     therefore bit-identical to the full run that produced the artifact.
//   - Under a different ε the candidates are the ones harvested at the
//     artifact's ε, not the ones a fresh run at the new ε would find: the
//     harvest itself is threshold-independent (HarvestAll grows the tree
//     to its CNOT cap regardless), but a fresh run at a tight ε retries
//     blocks with widened beams until a candidate fits its threshold,
//     while a coarse-ε artifact accepted the first attempt. Selection
//     still enforces the new Σε ≤ threshold constraint against true
//     per-candidate distances, so the Sec. 3.8 bound holds exactly at the
//     new ε; only the candidate pool differs. Sweeps therefore synthesize
//     once at the TIGHTEST ε of the sweep — that pool satisfies every
//     wider threshold too.
//   - A block whose reusable candidates all exceed the new threshold
//     degrades to its exact circuit (recorded in Result.Degradations), as
//     a fresh run would after exhausting retries.
//
// The returned Result reports the artifact's partition timing, this
// call's own re-filtering cost as the synthesis timing (the cheap residue
// of the work the reuse skipped), its own annealing time, and the
// artifact's cache stats.
func Reselect(ctx context.Context, art *SynthesisArtifact, cfg Config) (*Result, error) {
	cfg.defaults()
	if cfg.BlockSize != art.Cfg.BlockSize {
		return nil, fmt.Errorf("pipeline: reselect: BlockSize %d does not match artifact's %d (key %q)",
			cfg.BlockSize, art.Cfg.BlockSize, art.Key)
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	view, err := art.refilter(cfg)
	if err != nil {
		return nil, err
	}
	sel, err := SelectionStage(cfg).Run(ctx, view)
	if err != nil {
		return nil, err
	}
	return sel.Result(), nil
}

// refilter derives a SynthesisArtifact view for a new Config: the same
// blocks and raw harvest, with Candidates re-pruned against the new
// threshold. The receiver is not mutated and may be shared across
// sequential Reselect calls.
func (art *SynthesisArtifact) refilter(cfg Config) (*SynthesisArtifact, error) {
	elapsed := stageClock()
	pa := art.Partition
	threshold := math.Min(cfg.Epsilon*float64(len(pa.Blocks)), cfg.ThresholdCap)
	view := &SynthesisArtifact{
		Partition: &PartitionArtifact{
			Original:  pa.Original,
			Blocks:    pa.Blocks,
			Threshold: threshold,
			Key:       pa.Key,
			Elapsed:   pa.Elapsed,
		},
		Blocks:     make([]BlockApproximations, len(art.Blocks)),
		CacheStats: art.CacheStats,
		Cfg:        cfg,
		Key:        cfg.synthKey(),
	}
	view.Degradations = append(view.Degradations, art.Degradations...)
	degraded := make(map[int]bool, len(art.Degradations))
	for _, d := range art.Degradations {
		degraded[d.Block] = true
	}
	for i, ba := range art.Blocks {
		if degraded[i] || ba.all == nil {
			// The block degraded during synthesis (or the artifact was
			// loaded without its raw harvest): its exact-only candidate
			// set is threshold-independent, reuse it as-is.
			view.Blocks[i] = ba
			continue
		}
		kept := filterByThreshold(ba.all, threshold)
		if len(kept) == 0 {
			view.Blocks[i] = exactOnlyBlock(ba.Block)
			view.Degradations = append(view.Degradations, Degradation{
				Block:    i,
				Qubits:   ba.Block.Qubits,
				Attempts: 0,
				Reason:   "no reusable candidate within threshold",
			})
			continue
		}
		nb := finishBlock(ba.Block, ba.Unitary, kept, cfg.Parallelism)
		nb.all = ba.all
		view.Blocks[i] = nb
	}
	// The re-filtering cost is attributed to synthesis: it is the
	// (cheap) residue of the synthesis work the reuse skipped.
	view.Elapsed = elapsed()
	return view, nil
}
