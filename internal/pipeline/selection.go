package pipeline

import (
	"context"
	"fmt"
	"math"

	"repro/internal/anneal"
	"repro/internal/budget"
	"repro/internal/circuit"
)

// blockSimilar implements the paper's similarity criterion for one block:
// two candidates are similar when their mutual distance does not exceed
// the larger of their distances to the original.
func (ba *BlockApproximations) blockSimilar(i, j int) bool {
	if i == j {
		return true
	}
	di := ba.Candidates[i].Distance
	dj := ba.Candidates[j].Distance
	return ba.pairDist[i][j] <= math.Max(di, dj)
}

// similarity returns the fraction of blocks on which the two choice
// vectors pick similar candidates (the scalable full-circuit similarity
// of Sec. 3.6).
func similarity(blocks []BlockApproximations, a, b []int) float64 {
	if len(blocks) == 0 {
		return 1
	}
	m := 0
	for k := range blocks {
		if blocks[k].blockSimilar(a[k], b[k]) {
			m++
		}
	}
	return float64(m) / float64(len(blocks))
}

// choiceStats returns the CNOT count and Σε of a choice vector.
func choiceStats(blocks []BlockApproximations, choice []int) (cnots int, epsSum float64) {
	for k, ba := range blocks {
		cand := ba.Candidates[choice[k]]
		cnots += cand.CNOTs
		epsSum += cand.Distance
	}
	return cnots, epsSum
}

// oneQubitGates counts a candidate circuit's one-qubit gates, the third
// aggregate (besides CNOTs and Σε) the pluggable objectives score.
func oneQubitGates(c *circuit.Circuit) int {
	n := 0
	for _, op := range c.Ops {
		if len(op.Qubits) == 1 {
			n++
		}
	}
	return n
}

// selectApproximations runs the dual annealing engine repeatedly,
// implementing Algorithm 1 as the objective, until MaxSamples circuits are
// selected, the engine returns an already-selected circuit, or the ctx
// budget expires. On budget expiry it stops selecting, still guarantees
// at least one (fallback) selection, and returns the typed error so the
// caller can decide whether the partial selection is acceptable.
func selectApproximations(ctx context.Context, sa *SynthesisArtifact, cfg Config) ([]Approximation, error) {
	blocks := sa.Blocks
	threshold := sa.Partition.Threshold
	original := sa.Partition.Original
	nb := len(blocks)
	origCNOTs := original.CNOTCount()
	if origCNOTs == 0 {
		origCNOTs = 1 // avoid division by zero for CNOT-free circuits
	}

	sizes := make([]int, nb)
	g1 := make([][]int, nb)
	for k, ba := range blocks {
		sizes[k] = len(ba.Candidates)
		g1[k] = make([]int, len(ba.Candidates))
		for i, cand := range ba.Candidates {
			g1[k][i] = oneQubitGates(cand.Circuit)
		}
	}

	obj := cfg.Objective
	if obj == nil {
		obj = CNOTObjective()
	}
	info := CircuitInfo{NumQubits: original.NumQubits, OrigCNOTs: origCNOTs}
	stats := func(choice []int) ChoiceStats {
		var st ChoiceStats
		for k, ba := range blocks {
			cand := ba.Candidates[choice[k]]
			st.CNOTs += cand.CNOTs
			st.Gates1Q += g1[k][choice[k]]
			st.EpsSum += cand.Distance
		}
		return st
	}

	var out []Approximation
	var selected [][]int
	// Algorithm 1: the energy for the next sample given the selected set,
	// with the cost term delegated to the pluggable objective. One
	// annealer-friendly refinement over the paper's pseudocode: an
	// infeasible choice scores 1 + (Σε − threshold) instead of a flat
	// 1.0, so the plateau has a slope toward feasibility. Any value > 1
	// is still strictly worse than every feasible choice (objectives
	// score feasible choices in [0,1]), so the selection semantics of
	// Algorithm 1 are unchanged.
	energy := func(choice []int) float64 {
		st := stats(choice)
		if st.EpsSum > threshold {
			return 1.0 + (st.EpsSum - threshold)
		}
		cost := obj.Cost(st, info)
		if len(selected) == 0 {
			return cost
		}
		m := 0.0
		for _, s := range selected {
			m += similarity(blocks, choice, s)
		}
		m /= float64(len(selected))
		return (1-cfg.CXWeight)*m + cfg.CXWeight*cost
	}

	sameChoice := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	const dupRetries = 2
	var stopErr error
samples:
	for s := 0; s < cfg.MaxSamples; s++ {
		var choice []int
		ok := false
		for attempt := 0; attempt <= dupRetries; attempt++ {
			r, aerr := anneal.MinimizeIntsCtx(ctx, energy, sizes, anneal.Options{
				MaxIterations: cfg.AnnealIterations,
				Seed:          cfg.Seed + int64(s)*104729 + int64(attempt)*1299709,
			})
			if aerr != nil {
				stopErr = aerr
				break samples
			}
			choice = r.X
			if _, epsSum := choiceStats(blocks, choice); epsSum > threshold {
				continue // nothing feasible found this attempt
			}
			dup := false
			for _, prev := range selected {
				if sameChoice(choice, prev) {
					dup = true
					break
				}
			}
			if !dup {
				ok = true
				break
			}
		}
		if !ok {
			// Paper: terminate when the engine keeps returning already
			// selected (or infeasible) circuits.
			break
		}
		selected = append(selected, choice)
		approx, err := assemble(original.NumQubits, blocks, choice)
		if err != nil {
			return out, err
		}
		out = append(out, approx)
	}

	// The annealer terminates when it keeps rediscovering the same
	// choice, which on small circuits can happen after a single sample —
	// leaving no ensemble to average. Greedily augment with the
	// best-scoring feasible single-block deviations so that the output
	// rule has dissimilar samples to work with whenever they exist.
	for stopErr == nil && len(selected) > 0 && len(selected) < cfg.MaxSamples {
		if stopErr = budget.Check(ctx); stopErr != nil {
			break
		}
		bestScore := math.Inf(1)
		var best []int
		for _, base := range selected {
			for b := range blocks {
				for i := range blocks[b].Candidates {
					if i == base[b] {
						continue
					}
					cand := append([]int(nil), base...)
					cand[b] = i
					if _, epsSum := choiceStats(blocks, cand); epsSum > threshold {
						continue
					}
					dup := false
					for _, prev := range selected {
						if sameChoice(cand, prev) {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					if score := energy(cand); score < bestScore {
						bestScore = score
						best = cand
					}
				}
			}
		}
		if best == nil {
			break // space exhausted
		}
		selected = append(selected, best)
		approx, err := assemble(original.NumQubits, blocks, best)
		if err != nil {
			return out, err
		}
		out = append(out, approx)
	}

	if len(out) == 0 {
		// Fall back to the per-block best candidates so callers always
		// get at least one approximation (equivalent to a very tight
		// exact synthesis result).
		choice := make([]int, nb)
		for k, ba := range blocks {
			best := 0
			for i, cand := range ba.Candidates {
				if cand.Distance < ba.Candidates[best].Distance {
					best = i
				}
			}
			choice[k] = best
		}
		approx, err := assemble(original.NumQubits, blocks, choice)
		if err != nil {
			return out, err
		}
		out = append(out, approx)
	}
	if stopErr != nil {
		return out, fmt.Errorf("pipeline: select: %w", stopErr)
	}
	return out, nil
}

// Assemble rebuilds a full-circuit approximation from a per-block
// candidate choice (choice[b] indexes blocks[b].Candidates). It is the
// building block for ablation studies that bypass the dual annealing
// selection (for example random sampling of the approximation space).
func Assemble(numQubits int, blocks []BlockApproximations, choice []int) (Approximation, error) {
	return assemble(numQubits, blocks, choice)
}

// assemble rebuilds a full circuit from a per-block candidate choice.
func assemble(numQubits int, blocks []BlockApproximations, choice []int) (Approximation, error) {
	full := circuit.New(numQubits)
	cnots := 0
	epsSum := 0.0
	for k, ba := range blocks {
		cand := ba.Candidates[choice[k]]
		if err := full.AppendCircuit(cand.Circuit, ba.Block.Qubits); err != nil {
			return Approximation{}, fmt.Errorf("pipeline: assemble block %d: %w", k, err)
		}
		cnots += cand.CNOTs
		epsSum += cand.Distance
	}
	return Approximation{
		Choice:     append([]int(nil), choice...),
		Circuit:    full,
		CNOTs:      cnots,
		EpsilonSum: epsSum,
	}, nil
}
