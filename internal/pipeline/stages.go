package pipeline

import (
	"context"
	"fmt"
	"math"

	"repro/internal/budget"
	"repro/internal/circuit"
	"repro/internal/faultinject"
	"repro/internal/linalg"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/ucache"
)

// PartitionStage scans the circuit into blocks of at most cfg.BlockSize
// qubits (STEP 1, Sec. 3.3). Pure, fast compute — with AllowDegraded it
// runs even on an expired budget, because producing the (fully degraded)
// exact fallback still requires the block structure.
func PartitionStage(cfg Config) Stage[*circuit.Circuit, *PartitionArtifact] {
	cfg.defaults()
	return NewStage("partition", func(ctx context.Context, c *circuit.Circuit) (*PartitionArtifact, error) {
		elapsed := stageClock()
		if err := budget.Check(ctx); err != nil && !cfg.AllowDegraded {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		blocks, err := partition.Scan(c, cfg.BlockSize)
		if err != nil {
			return nil, fmt.Errorf("pipeline: partition: %w", err)
		}
		return &PartitionArtifact{
			Original:  c,
			Blocks:    blocks,
			Threshold: math.Min(cfg.Epsilon*float64(len(blocks)), cfg.ThresholdCap),
			Key:       cfg.partitionKey(),
			Elapsed:   elapsed(),
		}, nil
	})
}

// SynthesisStage harvests approximate circuits for every block (STEP 2,
// Sec. 3.5), in parallel and deterministically: block i's search is
// seeded from its content and writes only slot i. Retry/quality
// degradation is handled per block; an error out of the stage is either
// the run budget expiring or a worker panic (surfaced as
// *par.PanicError). On budget expiry with AllowDegraded every unfinished
// block degrades to its exact circuit and the stage still succeeds.
func SynthesisStage(cfg Config) Stage[*PartitionArtifact, *SynthesisArtifact] {
	cfg.defaults()
	return NewStage("synthesis", func(ctx context.Context, pa *PartitionArtifact) (*SynthesisArtifact, error) {
		elapsed := stageClock()
		var statsBefore ucache.Stats
		if cfg.SynthCache != nil {
			statsBefore = cfg.SynthCache.Stats()
		}
		art := &SynthesisArtifact{
			Partition: pa,
			Blocks:    make([]BlockApproximations, len(pa.Blocks)),
			Cfg:       cfg,
			Key:       cfg.synthKey(),
		}
		degs := make([]*Degradation, len(pa.Blocks))
		synthErr := forEachBlock(ctx, cfg, len(pa.Blocks), func(bctx context.Context, i int) error {
			ba, deg, err := synthesizeBlock(bctx, i, pa.Blocks[i], cfg, pa.Threshold)
			if err != nil {
				return fmt.Errorf("synthesize block %d: %w", i, err)
			}
			art.Blocks[i] = ba
			degs[i] = deg
			return nil
		})
		if cfg.SynthCache != nil {
			art.CacheStats = cfg.SynthCache.Stats().Sub(statsBefore)
		}
		if synthErr != nil {
			if !budget.Terminated(synthErr) || !cfg.AllowDegraded {
				return nil, fmt.Errorf("pipeline: %w", synthErr)
			}
			// Budget expired with AllowDegraded: every unfinished block
			// degrades to its exact circuit so the result stays valid.
			for i := range art.Blocks {
				if art.Blocks[i].Candidates == nil {
					art.Blocks[i] = exactOnlyBlock(pa.Blocks[i])
					degs[i] = &Degradation{
						Block:    i,
						Qubits:   pa.Blocks[i].Qubits,
						Attempts: 0,
						Reason:   "run budget exhausted: " + synthErr.Error(),
					}
				}
			}
		}
		for _, d := range degs {
			if d != nil {
				art.Degradations = append(art.Degradations, *d)
			}
		}
		art.Elapsed = elapsed()
		return art, nil
	})
}

// SelectionStage runs the dual-annealing Algorithm-1 selection (STEP 3,
// Sec. 3.6) over a SynthesisArtifact. A budget error still leaves the
// selection valid (the loop falls back to the per-block best choice), so
// with AllowDegraded the partial selection is returned as-is.
func SelectionStage(cfg Config) Stage[*SynthesisArtifact, *SelectionArtifact] {
	cfg.defaults()
	return NewStage("selection", func(ctx context.Context, sa *SynthesisArtifact) (*SelectionArtifact, error) {
		elapsed := stageClock()
		art := &SelectionArtifact{Synthesis: sa, Key: cfg.selectKey()}
		selected, err := selectApproximations(ctx, sa, cfg)
		art.Selected = selected
		art.Elapsed = elapsed()
		if err != nil && (!budget.Terminated(err) || !cfg.AllowDegraded) {
			return nil, err
		}
		return art, nil
	})
}

// forEachBlock fans the per-block synthesis loop out: over the shared
// cross-run scheduler when Config.Scheduler is set (one machine-wide
// slot budget across every concurrent compilation), otherwise over a
// private Parallelism-sized pool. Both sides follow the slot-write rule,
// so the choice never changes results.
func forEachBlock(ctx context.Context, cfg Config, n int, fn func(ctx context.Context, i int) error) error {
	if cfg.Scheduler != nil {
		return cfg.Scheduler.ForEachErr(ctx, n, fn)
	}
	return par.ForEachErr(ctx, cfg.Parallelism, n, fn)
}

// exactOnlyBlock builds the degraded approximation set for a block: its
// own (exact, zero-distance) circuit as the only candidate.
func exactOnlyBlock(b partition.Block) BlockApproximations {
	return BlockApproximations{
		Block:   b,
		Unitary: sim.Unitary(b.Circuit),
		Candidates: []synth.Candidate{{
			Circuit:  b.Circuit.Clone(),
			Distance: 0,
			CNOTs:    b.Circuit.CNOTCount(),
		}},
		pairDist: [][]float64{{0}},
	}
}

// synthesizeBlock harvests approximations for one block, retrying with
// jittered seeds and a widened search on failure, and degrading to the
// exact circuit when every attempt fails. Candidates whose process
// distance already exceeds the FULL circuit threshold can never appear
// in a feasible selection (the bound is a sum of non-negative terms), so
// they are pruned before the annealing stage; the raw harvest is retained
// on the artifact for Reselect.
//
// The returned *Degradation is non-nil when the block degraded. An error
// is returned only when the run's own budget expired (typed, unwrappable
// to budget.ErrDeadline/ErrCancelled) — or when a per-block budget
// expired and Config.AllowDegraded is off.
func synthesizeBlock(ctx context.Context, idx int, b partition.Block, cfg Config, threshold float64) (BlockApproximations, *Degradation, error) {
	u := sim.Unitary(b.Circuit)
	// The search seed is derived from the block's CONTENT (its unitary's
	// phase-invariant hash), not its position: identical blocks — e.g.
	// repeated Trotter steps — run identical searches, which both keeps
	// the pipeline deterministic for any Parallelism and makes their
	// synthesis results shareable through Config.SynthCache.
	seed := cfg.Seed ^ int64(ucache.TargetKey(u)&0x7fffffffffffffff)
	maxCNOTs := b.Circuit.CNOTCount()
	if maxCNOTs == 0 {
		maxCNOTs = -1 // rotation-only block: forbid CNOT layers entirely
	}

	attempts := 1 + cfg.MaxRestarts
	var raw, kept []synth.Candidate
	lastReason := "no candidate within threshold"
	budgetFailure := false
	attempt := 0
	for ; attempt < attempts; attempt++ {
		if err := budget.Check(ctx); err != nil {
			return BlockApproximations{}, nil, err
		}
		// Deterministic fault injection: a hook at core.block.<idx> can
		// force this attempt to fail (e.g. with budget.ErrNoConvergence)
		// to exercise the retry and degradation paths.
		if faultinject.Enabled() {
			if err := faultinject.Fire(fmt.Sprintf("core.block.%d", idx)); err != nil {
				if budget.Terminated(err) {
					return BlockApproximations{}, nil, err
				}
				lastReason = err.Error()
				continue
			}
		}
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if cfg.BlockTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, cfg.BlockTimeout)
		}
		opts := synth.Options{
			Threshold:    math.Max(cfg.Epsilon/4, 1e-6),
			MaxCNOTs:     maxCNOTs,
			Beam:         cfg.SynthBeam + attempt,
			Restarts:     cfg.SynthRestarts + attempt,
			KeepPerDepth: cfg.SynthKeepPerDepth,
			HarvestAll:   true,
			Seed:         seed + int64(attempt)*15485863,
		}
		var sres synth.Result
		var err error
		if cfg.SynthCache != nil {
			sres, _, err = cfg.SynthCache.SynthesizeCtx(actx, u, opts)
		} else {
			sres, err = synth.SynthesizeCtx(actx, u, opts)
		}
		cancel()
		if err != nil {
			if budget.Terminated(err) && ctx.Err() != nil {
				// The run's budget, not the per-block one: abort.
				return BlockApproximations{}, nil, err
			}
			lastReason = err.Error()
			budgetFailure = budgetFailure || budget.Terminated(err)
			continue
		}
		raw = sres.Candidates
		kept = filterByThreshold(raw, threshold)
		if len(kept) > 0 {
			break
		}
		lastReason = "no candidate within threshold"
	}

	if len(kept) == 0 {
		// Every attempt failed: degrade to the exact (transpiled) block.
		// A time-budget failure degrades only when the caller opted in;
		// quality failures always degrade (the exact block is a valid,
		// zero-error stand-in — the pre-retry behavior, now reported).
		if budgetFailure && !cfg.AllowDegraded {
			return BlockApproximations{}, nil, fmt.Errorf("block budget exhausted after %d attempts: %w", attempt, budget.ErrDeadline)
		}
		deg := &Degradation{Block: idx, Qubits: b.Qubits, Attempts: attempt, Reason: lastReason}
		return exactOnlyBlock(b), deg, nil
	}

	ba := finishBlock(b, u, kept, cfg.Parallelism)
	ba.all = raw
	return ba, nil, nil
}

// filterByThreshold returns, in order, the candidates whose process
// distance does not exceed the full-circuit threshold. It never aliases
// the input slice's backing array (the raw harvest outlives the filter).
func filterByThreshold(cands []synth.Candidate, threshold float64) []synth.Candidate {
	var kept []synth.Candidate
	for _, cand := range cands {
		if cand.Distance <= threshold {
			kept = append(kept, cand)
		}
	}
	return kept
}

// finishBlock turns a pruned candidate list into a selection-ready
// BlockApproximations: it anchors the exact circuit and precomputes the
// pairwise candidate distances the similarity rule reads. Both the
// primary synthesis path and Reselect's re-filtering path go through this
// one function, which is what makes a Reselect under an unchanged
// threshold bit-identical to the full run.
func finishBlock(b partition.Block, u *linalg.Matrix, kept []synth.Candidate, parallelism int) BlockApproximations {
	// The block's own circuit is always an exact candidate: it anchors
	// the selection space (QUEST can never do worse than the Baseline)
	// and guarantees an exact option when the synthesis search missed
	// the exact solution at low depth.
	hasExact := false
	for _, cand := range kept {
		if cand.Distance < 1e-7 && cand.CNOTs <= b.Circuit.CNOTCount() {
			hasExact = true
			break
		}
	}
	if !hasExact {
		kept = append(kept, synth.Candidate{
			Circuit:  b.Circuit.Clone(),
			Distance: 0,
			CNOTs:    b.Circuit.CNOTCount(),
		})
	}
	ba := BlockApproximations{Block: b, Unitary: u, Candidates: kept}
	ba.pairDist = pairDistances(kept, parallelism)
	return ba
}

// pairDistances precomputes pairwise candidate distances for the
// similarity rule. Candidate unitaries and the upper triangle fan out
// across workers (each (i, j>i) cell is written exactly once); the mirror
// pass runs after the barrier so it only reads completed cells.
func pairDistances(cands []synth.Candidate, parallelism int) [][]float64 {
	us := make([]*linalg.Matrix, len(cands))
	par.ForEach(parallelism, len(us), func(i int) {
		us[i] = sim.Unitary(cands[i].Circuit)
	})
	pd := make([][]float64, len(us))
	for i := range us {
		pd[i] = make([]float64, len(us))
	}
	par.ForEach(parallelism, len(us), func(i int) {
		for j := i + 1; j < len(us); j++ {
			pd[i][j] = linalg.HSDistance(us[i], us[j])
		}
	})
	for i := range us {
		for j := 0; j < i; j++ {
			pd[i][j] = pd[j][i]
		}
	}
	return pd
}
