package pipeline

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/metrics"
	"repro/internal/par"
)

// Runner executes a circuit and returns its output distribution; it
// abstracts the ideal simulator, the noisy simulator, and device models so
// the ensemble rule is identical across backends (see internal/backend
// for the named, capability-tagged implementations).
//
// Concurrency contract: ensemble evaluation calls the Runner from
// multiple goroutines, so a Runner must be safe for concurrent use. Every
// Runner built by this repository is — each call owns its statevector and
// derives private RNG streams from its seed — but a custom Runner that
// mutates shared state must either synchronize internally or be driven
// through EnsembleProbabilitiesWorkers(run, 1).
type Runner func(*circuit.Circuit) ([]float64, error)

// RunnerCtx is a Runner that honors context cancellation (for example
// noise.Model.RunCtx); ensemble evaluation passes each call a context
// that is cancelled as soon as any sibling fails.
type RunnerCtx func(context.Context, *circuit.Circuit) ([]float64, error)

// EnsembleProbabilities runs every selected approximation through the
// runner and returns the pointwise average of their output distributions —
// QUEST's output rule (Sec. 3.6, Fig. 6). Approximations are evaluated
// concurrently with runtime.NumCPU() workers; the result is identical for
// every worker count (distributions are averaged in selection order).
func (r *Result) EnsembleProbabilities(run Runner) ([]float64, error) {
	return r.EnsembleProbabilitiesWorkers(run, 0)
}

// EnsembleProbabilitiesWorkers is EnsembleProbabilities with an explicit
// worker-goroutine cap (0 or negative selects runtime.NumCPU(), 1 forces
// serial evaluation for Runners that are not concurrency-safe).
func (r *Result) EnsembleProbabilitiesWorkers(run Runner, workers int) ([]float64, error) {
	return r.EnsembleProbabilitiesCtx(context.Background(),
		func(_ context.Context, c *circuit.Circuit) ([]float64, error) { return run(c) }, workers)
}

// EnsembleProbabilitiesCtx is EnsembleProbabilitiesWorkers under a
// context with a ctx-aware runner: a cancelled budget stops handing out
// approximations, the first runner failure cancels its siblings, and a
// panicking runner is isolated into a *par.PanicError instead of killing
// the process. The first failure by selection order is returned.
func (r *Result) EnsembleProbabilitiesCtx(ctx context.Context, run RunnerCtx, workers int) ([]float64, error) {
	if len(r.Selected) == 0 {
		return nil, fmt.Errorf("core: no selected approximations")
	}
	dists := make([][]float64, len(r.Selected))
	err := par.ForEachErr(ctx, workers, len(r.Selected), func(rctx context.Context, i int) error {
		p, err := run(rctx, r.Selected[i].Circuit)
		if err != nil {
			return fmt.Errorf("core: running approximation %d: %w", i, err)
		}
		dists[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return metrics.AverageDistributions(dists...), nil
}
