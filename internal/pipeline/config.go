package pipeline

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/par"
	"repro/internal/ucache"
)

// Config controls the pipeline. The zero value selects the paper-like
// defaults (documented per field).
//
// Zero-value convention: a field whose zero value is also a legitimate
// setting must be paired with an explicit ...Set sentinel bool that
// defaults() consults before substituting the default (see CXWeightSet).
// Fields whose zero value is never meaningful (sizes, budgets, seeds) may
// keep the bare "0 means default" rule.
type Config struct {
	// BlockSize is the maximum partition block size in qubits. The paper
	// uses 4; the default here is 3, which synthesizes much faster in
	// pure Go while exercising the identical code path (see DESIGN.md).
	BlockSize int
	// Epsilon is the per-block process-distance budget. The full-circuit
	// threshold is Epsilon × (number of blocks), i.e. proportional to
	// the block count exactly as in Sec. 4.1, but capped at ThresholdCap
	// so deep circuits cannot accumulate unboundedly coarse
	// approximations. Default 0.05.
	Epsilon float64
	// ThresholdCap bounds the full-circuit distance threshold from
	// above (default 0.5; HS distances approach 1 for unrelated
	// unitaries, so budgets beyond ~0.5 admit junk).
	ThresholdCap float64
	// MaxSamples is M, the maximum number of dissimilar approximations
	// selected (default 16).
	MaxSamples int
	// CXWeight is the objective weight on normalized CNOT count; the
	// dissimilarity weight is 1-CXWeight. Default 0.5 (balanced). The
	// pure-dissimilarity objective CXWeight = 0 is a legitimate
	// Algorithm-1 setting; because it coincides with the zero value it
	// must be requested explicitly by also setting CXWeightSet.
	CXWeight float64
	// CXWeightSet marks CXWeight as explicitly chosen, so CXWeight = 0
	// means "pure dissimilarity" instead of "use the 0.5 default".
	// Leaving it false preserves the historical zero-value behavior.
	CXWeightSet bool
	// Objective scores feasible choice vectors during annealing selection
	// (lower is better); its Spec() enters selectKey and therefore every
	// selection-artifact fingerprint. Nil selects CNOTObjective(), the
	// paper's normalized-CNOT-count objective, whose scoring is pinned
	// bit-identical to the pre-plugin pipeline by the golden tests. See
	// FidelityObjective and HybridObjective for the noise-aware
	// alternatives (resolve spec strings with backend.Objective).
	Objective Objective
	// SynthBeam, SynthRestarts and SynthKeepPerDepth tune the per-block
	// synthesis search (defaults 2, 1, 4).
	SynthBeam         int
	SynthRestarts     int
	SynthKeepPerDepth int
	// AnnealIterations is the dual annealing budget per selected sample
	// (default 400).
	AnnealIterations int
	// Parallelism is the number of blocks synthesized concurrently
	// (default runtime.NumCPU()); results are deterministic regardless.
	Parallelism int
	// Seed makes the whole pipeline deterministic (default 1).
	Seed int64
	// Timeout bounds the whole pipeline run; 0 means no limit. When it
	// expires RunCtx fails with an ErrDeadline-wrapped error — or, with
	// AllowDegraded, finishes immediately with a degraded result.
	Timeout time.Duration
	// BlockTimeout bounds each per-block synthesis attempt; 0 means no
	// limit. An attempt that hits it counts as a failed attempt and is
	// retried (see MaxRestarts).
	BlockTimeout time.Duration
	// MaxRestarts is how many extra synthesis attempts a failing block
	// gets, each with a jittered seed and a widened search (one extra
	// beam slot and restart per attempt). Default 2; negative disables
	// retries.
	MaxRestarts int
	// AllowDegraded lets the pipeline substitute a block's exact
	// (transpiled) circuit when the run or block time budget expires,
	// instead of failing the run; degraded blocks are recorded in
	// Result.Degradations. Quality failures (no candidate within the
	// threshold after all retries) always degrade this way — the exact
	// block is a valid, zero-error stand-in — regardless of this flag,
	// which only governs budget-driven degradation.
	AllowDegraded bool
	// SynthCache, when non-nil, memoizes per-block synthesis results by
	// target unitary (see internal/ucache). Blocks with identical
	// unitaries — Trotter steps, repeated subcircuits — then synthesize
	// once per run (or once across runs when the cache is shared).
	// Nil disables caching, so every block synthesis actually runs; the
	// timeout/retry/degradation machinery assumes that in its tests.
	SynthCache *ucache.Cache
	// Scheduler, when non-nil, is a shared cross-run worker pool: block
	// synthesis draws per-block slots from it instead of spawning
	// Parallelism private workers, so N concurrent compilations (a
	// corpus run, questd's worker fleet) keep exactly Scheduler.Size()
	// blocks in flight machine-wide — small circuits stop
	// undersubscribing and concurrent runs stop oversubscribing. Results
	// are bit-identical with or without it, for any pool size (the
	// slot-write determinism rule; asserted by tests). Nil keeps the
	// historical per-run pool. Scheduler never enters artifact keys.
	Scheduler *par.Pool
	// Overlap selects the streaming partition path: blocks are emitted
	// by partition.Stream as the scan proves them closed and synthesis
	// consumes them immediately, so block 0 synthesizes while the
	// scanner is still walking the circuit's tail. Artifacts are
	// bit-identical to the staged path (golden-tested); only wall-clock
	// and the Elapsed telemetry differ. Zero value keeps the staged
	// path.
	Overlap bool
}

func (c *Config) defaults() {
	if c.BlockSize == 0 {
		c.BlockSize = 3
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
	if c.ThresholdCap == 0 {
		c.ThresholdCap = 0.5
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = 16
	}
	if !c.CXWeightSet && c.CXWeight == 0 {
		c.CXWeight = 0.5
	}
	c.CXWeightSet = true
	if c.SynthBeam == 0 {
		c.SynthBeam = 2
	}
	if c.SynthRestarts == 0 {
		c.SynthRestarts = 1
	}
	if c.SynthKeepPerDepth == 0 {
		c.SynthKeepPerDepth = 4
	}
	if c.AnnealIterations == 0 {
		c.AnnealIterations = 400
	}
	if c.Objective == nil {
		c.Objective = CNOTObjective()
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	switch {
	case c.MaxRestarts == 0:
		c.MaxRestarts = 2
	case c.MaxRestarts < 0:
		c.MaxRestarts = 0
	}
}

// Resolved returns the Config with every default filled in, exactly as
// the pipeline stages resolve it before running. External fingerprints
// of a run's configuration (the questd artifact store's content keys)
// must hash the resolved Config, not the sparse input — two sparse
// Configs that resolve identically must address the same artifact.
func (c Config) Resolved() Config {
	c.defaults()
	return c
}

// Artifact-invalidation contract (see DESIGN.md "Pipeline architecture"):
// each stage's output is valid for exactly the Config fields in its key.
// A sweep may reuse an upstream artifact whenever the fields it varies
// appear only in downstream keys — ε and M sweeps vary selection-side
// fields, so a SynthesisArtifact computed once serves every point.

// partitionKey fingerprints the Config fields that invalidate a
// PartitionArtifact: the block structure depends only on BlockSize (the
// threshold it carries additionally depends on Epsilon and ThresholdCap,
// but Reselect recomputes it, so it does not enter the key).
func (c Config) partitionKey() string {
	return fmt.Sprintf("bs=%d", c.BlockSize)
}

// synthKey fingerprints the Config fields that invalidate a
// SynthesisArtifact: everything the per-block candidate harvest depends
// on. Epsilon appears because it sets the per-block search target ε/4;
// a sweep that reuses one artifact across ε points trades that coupling
// away explicitly (see Reselect).
func (c Config) synthKey() string {
	return fmt.Sprintf("%s,eps=%x,beam=%d,restarts=%d,keep=%d,seed=%d,maxrestarts=%d",
		c.partitionKey(), c.Epsilon, c.SynthBeam, c.SynthRestarts,
		c.SynthKeepPerDepth, c.Seed, c.MaxRestarts)
}

// selectKey fingerprints the Config fields that invalidate a
// SelectionArtifact beyond its input SynthesisArtifact. The objective
// spec is part of the key — switching objectives must re-run selection —
// but deliberately not part of synthKey: the candidate harvest is
// objective-independent, so an objective switch is a cheap Reselect over
// the same SynthesisArtifact (and the jobs artifact store keys only the
// synthesis side).
func (c Config) selectKey() string {
	return fmt.Sprintf("%s,thr=%x/%x,m=%d,cx=%x,iters=%d,obj=%s",
		c.synthKey(), c.Epsilon, c.ThresholdCap, c.MaxSamples, c.CXWeight,
		c.AnnealIterations, c.objectiveSpec())
}

// objectiveSpec returns the canonical spec of the configured objective,
// tolerating an unresolved (nil) Objective so key derivation never
// depends on defaults() having run.
func (c Config) objectiveSpec() string {
	if c.Objective == nil {
		return CNOTObjective().Spec()
	}
	return c.Objective.Spec()
}
