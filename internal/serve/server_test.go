package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/algos"
	"repro/internal/jobs"
	"repro/internal/pipeline"
	"repro/internal/qasm"
)

func testServer(t *testing.T, workers int) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	return testServerOpts(t, jobs.Options{
		Dir:     t.TempDir(),
		Workers: workers,
		Pipeline: pipeline.Config{
			BlockSize:        3,
			Epsilon:          0.05,
			MaxSamples:       6,
			AnnealIterations: 150,
			SynthBeam:        2,
			Seed:             1,
		},
	})
}

func testServerOpts(t *testing.T, opts jobs.Options) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	m, err := jobs.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(m).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return ts, m
}

func submitBody(t *testing.T, extra string) *bytes.Reader {
	t.Helper()
	src, err := json.Marshal(qasm.Write(algos.GHZ(3)))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"qasm": %s%s}`, src, extra)
	return bytes.NewReader([]byte(body))
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSubmitPollFetchRoundTrip(t *testing.T) {
	ts, _ := testServer(t, 2)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("Location = %q", loc)
	}
	j := decode[jobs.Job](t, resp)
	if j.ID == "" || j.State != jobs.Queued {
		t.Fatalf("submitted job = %+v", j)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		got := decode[jobs.Job](t, resp)
		if got.State == jobs.Done {
			break
		}
		if got.State.Terminal() {
			t.Fatalf("job landed on %s: %s", got.State, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	p := decode[jobs.ResultPayload](t, resp)
	if p.ID != j.ID || p.SHA == "" || len(p.Selected) == 0 {
		t.Fatalf("result payload = %+v", p)
	}
}

func TestSubmitErrors(t *testing.T) {
	ts, _ := testServer(t, -1)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"qasm": "garbage"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad qasm status = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", resp.StatusCode)
	}
}

func TestQueueFullStormReturns429WithRetryAfter(t *testing.T) {
	ts, _ := testServerOpts(t, jobs.Options{
		Dir:      t.TempDir(),
		Workers:  -1, // nothing drains the queue: the storm must shed
		QueueCap: 3,
		Pipeline: pipeline.Config{BlockSize: 3, Epsilon: 0.05, MaxSamples: 6, AnnealIterations: 150, SynthBeam: 2, Seed: 1},
	})

	shed := 0
	for i := 0; i < 6; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
			submitBody(t, fmt.Sprintf(`, "tenant": "t%d"`, i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("storm submit %d status = %d", i, resp.StatusCode)
		}
	}
	if shed != 3 {
		t.Fatalf("shed %d of 6, want 3", shed)
	}
}

func TestTenantCapReturns429(t *testing.T) {
	ts, _ := testServerOpts(t, jobs.Options{
		Dir:       t.TempDir(),
		Workers:   -1,
		QueueCap:  10,
		TenantCap: 1,
		Pipeline:  pipeline.Config{BlockSize: 3, Epsilon: 0.05, MaxSamples: 6, AnnealIterations: 150, SynthBeam: 2, Seed: 1},
	})
	for i, want := range []int{http.StatusAccepted, http.StatusTooManyRequests} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, `, "tenant": "solo"`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("submit %d status = %d, want %d", i, resp.StatusCode, want)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	ts, _ := testServer(t, -1)

	resp, err := http.Get(ts.URL + "/v1/jobs/j-404")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown status = %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	j := decode[jobs.Job](t, resp)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result before done status = %d, want 409", resp.StatusCode)
	}
}

func TestCancelRoute(t *testing.T) {
	ts, _ := testServer(t, -1)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	j := decode[jobs.Job](t, resp)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", resp.StatusCode)
	}
	// Second cancel: terminal conflict.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel status = %d, want 409", resp.StatusCode)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	ts, m := testServer(t, -1)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	st := decode[jobs.Stats](t, resp)
	if !st.JournalOK {
		t.Fatalf("healthz stats = %+v", st)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status = %d", resp.StatusCode)
	}

	// Drain: readiness flips to 503 and submissions bounce with
	// Retry-After.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("submit while draining = %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestSubmitObjectiveRoundTrip: an objective in the params body rides
// through to the job, and a malformed spec maps to 400.
func TestSubmitObjectiveRoundTrip(t *testing.T) {
	ts, _ := testServer(t, 2)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		submitBody(t, `, "params": {"objective": "fidelity:manila"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	j := decode[jobs.Job](t, resp)
	if j.Params.Objective != "fidelity:manila" {
		t.Fatalf("objective not recorded: %+v", j.Params)
	}

	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json",
		submitBody(t, `, "params": {"objective": "espresso"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad objective status = %d, want 400", resp.StatusCode)
	}
}
