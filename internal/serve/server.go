// Package serve exposes a jobs.Manager as questd's HTTP API.
//
// Routes (all JSON):
//
//	POST   /v1/jobs             submit {qasm, tenant?, priority?, from?, params?} → 202 + job
//	GET    /v1/jobs/{id}        job status → 200
//	GET    /v1/jobs/{id}/result completed result payload → 200
//	DELETE /v1/jobs/{id}        cancel → 202 (200 once terminal)
//	GET    /healthz             operational stats → 200 (500 when the journal is unhealthy)
//	GET    /readyz              readiness → 200 ("ok") / 503 while draining
//
// Error mapping is explicit, because overload must be distinguishable
// from failure: a shed submission (queue or tenant bound) is 429 with a
// Retry-After header, a draining server is 503 with Retry-After, a
// malformed submission is 400, an unknown job 404, a result requested
// before completion 409. Anything else is 500.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/faultinject"
	"repro/internal/jobs"
)

// maxBodyBytes bounds a submission body (QASM sources are small; a
// multi-megabyte body is a client bug or an attack).
const maxBodyBytes = 4 << 20

// retryAfterShed is the Retry-After hint (seconds) on a 429: roughly
// one synthesis-job service time, so a polite client's next attempt
// lands after a queue slot has likely freed.
const retryAfterShed = 1

// retryAfterDrain is the Retry-After hint (seconds) on a 503: the
// client should find the replacement process after a restart window.
const retryAfterDrain = 5

// Server adapts a jobs.Manager to HTTP. Create with New, mount
// Handler().
type Server struct {
	m *jobs.Manager
}

// New wraps a manager.
func New(m *jobs.Manager) *Server { return &Server{m: m} }

// Handler returns the API routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// SubmitRequest is the POST /v1/jobs body.
type SubmitRequest struct {
	// QASM is the OpenQASM 2.0 circuit source.
	QASM string `json:"qasm"`
	// Tenant attributes the job to a per-tenant queue quota.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the queue (higher first).
	Priority int `json:"priority,omitempty"`
	// From names a completed job whose synthesis artifact this job
	// reselects under its own params (the ε/M sweep path).
	From string `json:"from,omitempty"`
	// Params override the server's pipeline defaults per job.
	Params jobs.Params `json:"params"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// mapSubmitError turns the manager's typed admission errors into status
// codes; the shedding pair and draining carry Retry-After.
func mapSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrInvalid):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrTenantFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterShed))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, jobs.ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDrain))
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Fire("serve.submit"); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("serve: submit: %w", err))
		return
	}
	var req SubmitRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.m.Submit(jobs.Request{
		QASM:     req.QASM,
		Tenant:   req.Tenant,
		Priority: req.Priority,
		From:     req.From,
		Params:   req.Params,
	})
	if err != nil {
		mapSubmitError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	p, err := s.m.Result(r.Context(), r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, p)
	case errors.Is(err, jobs.ErrUnknownJob):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrNotDone):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.m.Cancel(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
	case errors.Is(err, jobs.ErrUnknownJob):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, jobs.ErrTerminal):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// handleHealth serves liveness plus the operational snapshot: 200 while
// every acknowledged transition is durable, 500 once the journal has
// latched a persistence failure (the process keeps serving what it has,
// but an operator must know acknowledgements stopped being crash-safe).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.m.Stats()
	status := http.StatusOK
	if !st.JournalOK {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, st)
}

// handleReady serves readiness: 503 as soon as draining starts, so a
// load balancer stops routing before the listener closes.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.m.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterDrain))
		writeError(w, http.StatusServiceUnavailable, jobs.ErrDraining)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
