package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/budget"
)

// TestForEachErrSingleItemRunsInline pins the n==1 fast path: no worker
// goroutines are spawned, so a panic is recovered on worker 0 and the
// single index still runs under the group context.
func TestForEachErrSingleItemRunsInline(t *testing.T) {
	ran := 0
	err := ForEachErr(context.Background(), 8, 1, func(ctx context.Context, i int) error {
		ran++
		if ctx.Err() != nil {
			t.Error("group context already done on the inline path")
		}
		return nil
	})
	if err != nil || ran != 1 {
		t.Fatalf("err = %v, ran = %d; want nil, 1", err, ran)
	}

	err = ForEachErr(context.Background(), 8, 1, func(context.Context, int) error {
		panic("inline boom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Worker != 0 || pe.Index != 0 {
		t.Errorf("inline panic attributed to worker %d index %d, want 0/0", pe.Worker, pe.Index)
	}
}

// TestForEachErrWorkersExceedN asserts the worker count clamps to n:
// concurrency never exceeds the item count and every index runs exactly
// once.
func TestForEachErrWorkersExceedN(t *testing.T) {
	const n = 3
	var inFlight, peak atomic.Int64
	hits := make([]atomic.Int64, n)
	err := ForEachErr(context.Background(), 64, n, func(_ context.Context, i int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		hits[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Errorf("index %d ran %d times", i, got)
		}
	}
	if peak.Load() > n {
		t.Errorf("peak concurrency %d exceeds n=%d", peak.Load(), n)
	}
}

// TestForEachErrPanicAtLastIndex panics on the final item only: the
// recovered *PanicError must name index n-1 even though every other
// index completed successfully first.
func TestForEachErrPanicAtLastIndex(t *testing.T) {
	const n = 50
	var completed atomic.Int64
	err := ForEachErr(context.Background(), 4, n, func(_ context.Context, i int) error {
		if i == n-1 {
			panic("last item boom")
		}
		completed.Add(1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != n-1 {
		t.Errorf("panic index = %d, want %d", pe.Index, n-1)
	}
	if pe.Value != "last item boom" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if completed.Load() > n-1 {
		t.Errorf("%d successful completions for %d non-panicking items", completed.Load(), n-1)
	}
}

// TestForEachErrCancellationRacingCompletion cancels the parent context
// from inside the very last item, racing the loop's own completion.
// Whatever the interleaving, the error must be the typed budget sentinel
// — never a raw context.Canceled leaking through.
func TestForEachErrCancellationRacingCompletion(t *testing.T) {
	const n = 32
	for trial := 0; trial < 50; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		err := ForEachErr(ctx, 4, n, func(_ context.Context, i int) error {
			if i == n-1 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, budget.ErrCancelled) {
			t.Fatalf("trial %d: err = %v, want ErrCancelled (cancel raced completion)", trial, err)
		}
		if err != nil && (errors.Is(err, context.Canceled) && !budget.Terminated(err)) {
			t.Fatalf("trial %d: raw context error leaked: %v", trial, err)
		}
	}

	// The mirror race: cancellation from OUTSIDE the loop, fired
	// concurrently with fast items. Either the loop finishes first (nil)
	// or the typed sentinel reports the cut — nothing else.
	for trial := 0; trial < 50; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			cancel()
			close(done)
		}()
		err := ForEachErr(ctx, 4, n, func(context.Context, int) error { return nil })
		<-done
		if err != nil && !errors.Is(err, budget.ErrCancelled) {
			t.Fatalf("trial %d: err = %v, want nil or ErrCancelled", trial, err)
		}
	}
}
