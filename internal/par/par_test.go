package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/budget"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	ForEach(workers, 200, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent calls, cap is %d", p, workers)
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -5, func(int) { ran = true })
	if ran {
		t.Error("fn ran for n <= 0")
	}
}

func TestForEachSerialOrderWithOneWorker(t *testing.T) {
	var order []int
	ForEach(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestForEachWorkersExceedN(t *testing.T) {
	// Regression: more workers than items must clamp to n goroutines,
	// cover every index exactly once, and never run an index twice.
	const n = 3
	var cur, peak atomic.Int32
	counts := make([]int32, n)
	ForEach(64, n, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		atomic.AddInt32(&counts[i], 1)
		runtime.Gosched()
		cur.Add(-1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	if p := peak.Load(); p > n {
		t.Errorf("observed %d concurrent calls for n=%d items", p, n)
	}
}

func TestForEachErrZeroAndNegativeN(t *testing.T) {
	ran := false
	for _, n := range []int{0, -5} {
		if err := ForEachErr(context.Background(), 4, n, func(context.Context, int) error {
			ran = true
			return nil
		}); err != nil {
			t.Fatalf("n=%d: err = %v", n, err)
		}
	}
	if ran {
		t.Error("fn ran for n <= 0")
	}
}

func TestForEachErrCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 500
		counts := make([]int32, n)
		err := ForEachErr(context.Background(), workers, n, func(_ context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEachErr(context.Background(), workers, 64, func(_ context.Context, i int) error {
			if i == 5 || i == 6 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "fail at 5") {
			// With early cancellation only one of the two may run; if
			// both ran, index 5 must win.
			if err == nil || !strings.Contains(err.Error(), "fail at") {
				t.Fatalf("workers=%d: err = %v, want a fn error", workers, err)
			}
		}
	}
}

func TestForEachErrErrorCancelsGroup(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int32
	err := ForEachErr(context.Background(), 4, 10_000, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		if ctx.Err() != nil {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestForEachErrRecoversPanicWithWorkerAndStack(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachErr(context.Background(), workers, 100, func(_ context.Context, i int) error {
			if i == 17 {
				panic("injected worker crash")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 17 {
			t.Errorf("workers=%d: panic index = %d, want 17", workers, pe.Index)
		}
		if pe.Worker < 0 || pe.Worker >= 4 {
			t.Errorf("workers=%d: worker index = %d out of range", workers, pe.Worker)
		}
		if pe.Value != "injected worker crash" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "par") {
			t.Errorf("workers=%d: missing stack trace", workers)
		}
		if !strings.Contains(err.Error(), "worker") || !strings.Contains(err.Error(), "17") {
			t.Errorf("workers=%d: error text %q lacks worker/index", workers, err)
		}
	}
}

func TestForEachErrCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEachErr(ctx, 4, 100, func(context.Context, int) error {
		ran = true
		return nil
	})
	if !errors.Is(err, budget.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if ran {
		t.Error("fn ran under a cancelled context")
	}
}

func TestForEachErrDeadlineStopsLoop(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var done atomic.Int32
	start := time.Now()
	err := ForEachErr(ctx, 2, 1_000_000, func(context.Context, int) error {
		done.Add(1)
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, budget.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("loop ran %v after a 20ms deadline", elapsed)
	}
	if n := done.Load(); n == 1_000_000 {
		t.Error("loop completed despite deadline")
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
	t.Error("ForEach returned instead of panicking")
}
