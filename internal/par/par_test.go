package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	ForEach(workers, 200, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		runtime.Gosched()
		cur.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent calls, cap is %d", p, workers)
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -5, func(int) { ran = true })
	if ran {
		t.Error("fn ran for n <= 0")
	}
}

func TestForEachSerialOrderWithOneWorker(t *testing.T) {
	var order []int
	ForEach(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
	t.Error("ForEach returned instead of panicking")
}
